type stats = {
  initial_cost : float;
  final_cost : float;
  moves : int;
  accepted : int;
}

let refine ?iterations ?(t_start = 0.0) ?(t_end = 0.0) ?criticality ~seed pl =
  let g = pl.Placement.graph in
  let movable = g.Hypergraph.node_of_vertex in
  let n_cells = Array.length movable in
  let nets = Placement.nets_with_io pl in
  let n_nodes = Array.length pl.Placement.x in
  if n_cells = 0 then
    { initial_cost = 0.0; final_cost = 0.0; moves = 0; accepted = 0 }
  else begin
    let rng = Random.State.make [| seed |] in
    (* Net weights: critical nets count more. *)
    let crit id =
      match criticality with None -> 0.0 | Some c -> c.(id)
    in
    let weight =
      Array.map
        (fun net -> 1.0 +. (3.0 *. Array.fold_left (fun a id -> max a (crit id)) 0.0 net))
        nets
    in
    (* Incidence: node id -> net indices. *)
    let deg = Array.make n_nodes 0 in
    Array.iter (fun net -> Array.iter (fun id -> deg.(id) <- deg.(id) + 1) net) nets;
    let incident = Array.init n_nodes (fun id -> Array.make deg.(id) 0) in
    let fill = Array.make n_nodes 0 in
    Array.iteri
      (fun e net ->
        Array.iter
          (fun id ->
            incident.(id).(fill.(id)) <- e;
            fill.(id) <- fill.(id) + 1)
          net)
      nets;
    let net_cost = Array.mapi (fun e net -> weight.(e) *. Placement.net_hpwl pl net) nets in
    let total = ref (Array.fold_left ( +. ) 0.0 net_cost) in
    let initial_cost = !total in
    let iterations =
      match iterations with Some i -> i | None -> 100 * n_cells
    in
    let t_start =
      if t_start > 0.0 then t_start
      else max 1.0 (initial_cost /. float_of_int (max 1 (Array.length nets)))
    in
    let t_end = if t_end > 0.0 then t_end else t_start /. 1000.0 in
    let alpha =
      exp (log (t_end /. t_start) /. float_of_int (max 1 iterations))
    in
    let temp = ref t_start in
    let accepted = ref 0 in
    (* Recompute the cost delta of the nets touching the given nodes. *)
    let delta_of touched =
      List.fold_left
        (fun acc e ->
          let fresh = weight.(e) *. Placement.net_hpwl pl nets.(e) in
          acc +. (fresh -. net_cost.(e)))
        0.0 touched
    in
    let commit touched =
      List.iter
        (fun e -> net_cost.(e) <- weight.(e) *. Placement.net_hpwl pl nets.(e))
        touched
    in
    let touched_of ids =
      List.sort_uniq compare
        (List.concat_map (fun id -> Array.to_list incident.(id)) ids)
    in
    let window_w = ref (pl.Placement.die_w /. 2.0) in
    let window_h = ref (pl.Placement.die_h /. 2.0) in
    for step = 1 to iterations do
      let id = movable.(Random.State.int rng n_cells) in
      let swap = Random.State.bool rng && n_cells > 1 in
      let ox = pl.Placement.x.(id) and oy = pl.Placement.y.(id) in
      let other =
        if swap then
          let id2 = movable.(Random.State.int rng n_cells) in
          if id2 <> id then
            Some (id2, pl.Placement.x.(id2), pl.Placement.y.(id2))
          else None
        else None
      in
      (match other with
      | Some (id2, ox2, oy2) ->
          pl.Placement.x.(id) <- ox2;
          pl.Placement.y.(id) <- oy2;
          pl.Placement.x.(id2) <- ox;
          pl.Placement.y.(id2) <- oy
      | None ->
          let clamp v lo hi = max lo (min hi v) in
          pl.Placement.x.(id) <-
            clamp (ox +. Random.State.float rng (2.0 *. !window_w) -. !window_w)
              0.0 pl.Placement.die_w;
          pl.Placement.y.(id) <-
            clamp (oy +. Random.State.float rng (2.0 *. !window_h) -. !window_h)
              0.0 pl.Placement.die_h);
      let ids =
        match other with Some (id2, _, _) -> [ id; id2 ] | None -> [ id ]
      in
      let touched = touched_of ids in
      let d = delta_of touched in
      let accept =
        d <= 0.0
        || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
      in
      if accept then begin
        commit touched;
        total := !total +. d;
        incr accepted
      end
      else begin
        pl.Placement.x.(id) <- ox;
        pl.Placement.y.(id) <- oy;
        match other with
        | Some (id2, ox2, oy2) ->
            pl.Placement.x.(id2) <- ox2;
            pl.Placement.y.(id2) <- oy2
        | None -> ()
      end;
      temp := !temp *. alpha;
      if step mod (max 1 (iterations / 20)) = 0 then begin
        window_w := max (pl.Placement.die_w /. 50.0) (!window_w *. 0.8);
        window_h := max (pl.Placement.die_h /. 50.0) (!window_h *. 0.8)
      end
    done;
    {
      initial_cost;
      final_cost = !total;
      moves = iterations;
      accepted = !accepted;
    }
  end
