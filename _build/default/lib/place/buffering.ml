module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun

let max_structural_fanout nl =
  Array.fold_left
    (fun acc sinks -> max acc (Array.length sinks))
    0 (Netlist.fanout nl)

let buf_kind = Kind.Mapped { cell = "buf"; fn = Bfun.var ~arity:1 0 }

let insert ~max_fanout nl =
  if max_fanout < 1 then invalid_arg "Buffering.insert: max_fanout < 1";
  let fanout = Netlist.fanout nl in
  let dst = Netlist.create ~name:(Netlist.design_name nl) () in
  let n = Netlist.size nl in
  (* Per source node: the list of tap nodes in [dst] and a running sink
     counter; sink [c] reads tap [c / max_fanout]. *)
  let taps = Array.make n [||] in
  let used = Array.make n 0 in
  (* [make_taps v n] creates [n] buffers ultimately driven by [v], as a tree
     in which no driver (including [v]) exceeds [max_fanout]. *)
  let rec make_taps v n =
    if n <= max_fanout then
      List.init n (fun _ -> Netlist.gate dst buf_kind [| v |])
    else begin
      let parents = make_taps v ((n + max_fanout - 1) / max_fanout) in
      List.concat
        (List.mapi
           (fun k p ->
             let lo = k * max_fanout in
             let cnt = min max_fanout (n - lo) in
             List.init (max 0 cnt) (fun _ -> Netlist.gate dst buf_kind [| p |]))
           parents)
    end
  in
  let register i v =
    let f = Array.length fanout.(i) in
    if f <= max_fanout then taps.(i) <- [| v |]
    else
      let k = (f + max_fanout - 1) / max_fanout in
      taps.(i) <- Array.of_list (make_taps v k)
  in
  let tap i =
    let idx = min (used.(i) / max_fanout) (Array.length taps.(i) - 1) in
    used.(i) <- used.(i) + 1;
    taps.(i).(idx)
  in
  let new_id = Array.make n (-1) in
  List.iter
    (fun i ->
      let name = Option.value ~default:(Printf.sprintf "pi%d" i)
          (Netlist.node nl i).Netlist.name in
      new_id.(i) <- Netlist.input dst name;
      register i new_id.(i))
    (Netlist.inputs nl);
  List.iter
    (fun i ->
      new_id.(i) <- Netlist.dff ?name:(Netlist.node nl i).Netlist.name dst;
      register i new_id.(i))
    (Netlist.flops nl);
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    match node.Netlist.kind with
    | Kind.Input | Kind.Dff | Kind.Output -> ()
    | k ->
        let fanins = Array.map tap node.Netlist.fanins in
        new_id.(i) <- Netlist.gate dst k fanins;
        register i new_id.(i)
  done;
  List.iter
    (fun f ->
      let d = (Netlist.node nl f).Netlist.fanins.(0) in
      Netlist.connect dst ~flop:new_id.(f) ~d:(tap d))
    (Netlist.flops nl);
  List.iter
    (fun o ->
      let node = Netlist.node nl o in
      let name = Option.value ~default:(Printf.sprintf "po%d" o) node.Netlist.name in
      ignore (Netlist.output dst name (tap node.Netlist.fanins.(0))))
    (Netlist.outputs nl);
  dst
