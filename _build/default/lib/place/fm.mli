(** Fiduccia–Mattheyses bipartitioning with gain buckets — the kernel of the
    recursive min-cut global placer. *)

type result = {
  side : bool array;  (** per-vertex: false = left, true = right *)
  cut : int;  (** hyperedges spanning both sides *)
}

val cut_size : int array array -> bool array -> int
(** Cut of a partition under the given nets. *)

val run :
  ?passes:int -> ?balance:float -> seed:int ->
  nets:int array array -> areas:float array -> int -> result
(** [run ~seed ~nets ~areas n] bipartitions vertices [0..n-1] minimizing net
    cut, keeping each side's area within [balance] (default 0.55) of the
    total.  Starts from a seeded random balanced partition and applies up to
    [passes] (default 8) FM passes. *)
