let place ?(min_bin = 8) ~seed pl =
  let g = pl.Placement.graph in
  let n = Hypergraph.num_vertices g in
  let rng = Random.State.make [| seed |] in
  (* Scratch: global vertex id -> local index in the current region. *)
  let local = Array.make n (-1) in
  (* [vertices] and [nets] use global vertex ids; nets are pre-filtered to
     this region, so total work is O(net size * depth). *)
  let rec split vertices nets x0 y0 x1 y1 vertical =
    let k = Array.length vertices in
    if k = 0 then ()
    else if k <= min_bin then
      Array.iter
        (fun v ->
          let id = g.Hypergraph.node_of_vertex.(v) in
          pl.Placement.x.(id) <- x0 +. Random.State.float rng (max 1e-6 (x1 -. x0));
          pl.Placement.y.(id) <- y0 +. Random.State.float rng (max 1e-6 (y1 -. y0)))
        vertices
    else begin
      Array.iteri (fun i v -> local.(v) <- i) vertices;
      let sub_nets =
        List.filter_map
          (fun net ->
            let members =
              Array.to_list net |> List.filter (fun v -> local.(v) >= 0)
            in
            match members with
            | [] | [ _ ] -> None
            | ms -> Some (Array.of_list (List.map (fun v -> local.(v)) ms)))
          nets
        |> Array.of_list
      in
      let areas = Array.map (fun v -> g.Hypergraph.vertex_area.(v)) vertices in
      let r =
        Fm.run ~seed:(Random.State.int rng 0x3FFFFFFF) ~nets:sub_nets ~areas k
      in
      let left = ref [] and right = ref [] in
      Array.iteri
        (fun i v ->
          if r.Fm.side.(i) then right := v :: !right else left := v :: !left)
        vertices;
      let side_of v = r.Fm.side.(local.(v)) in
      let left_nets = ref [] and right_nets = ref [] in
      List.iter
        (fun net ->
          let lm = ref [] and rm = ref [] in
          Array.iter
            (fun v ->
              if local.(v) >= 0 then
                if side_of v then rm := v :: !rm else lm := v :: !lm)
            net;
          (match !lm with
          | [] | [ _ ] -> ()
          | ms -> left_nets := Array.of_list ms :: !left_nets);
          match !rm with
          | [] | [ _ ] -> ()
          | ms -> right_nets := Array.of_list ms :: !right_nets)
        nets;
      (* Clear scratch before recursing (the children reuse it). *)
      Array.iter (fun v -> local.(v) <- -1) vertices;
      let left = Array.of_list !left and right = Array.of_list !right in
      if vertical then begin
        let xm = (x0 +. x1) /. 2.0 in
        split left !left_nets x0 y0 xm y1 false;
        split right !right_nets xm y0 x1 y1 false
      end
      else begin
        let ym = (y0 +. y1) /. 2.0 in
        split left !left_nets x0 y0 x1 ym true;
        split right !right_nets x0 ym x1 y1 true
      end
    end
  in
  let all_nets = Array.to_list g.Hypergraph.nets in
  split (Array.init n Fun.id) all_nets 0.0 0.0 pl.Placement.die_w
    pl.Placement.die_h true
