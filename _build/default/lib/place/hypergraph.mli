(** Hypergraph view of a netlist for partitioning and placement: one vertex
    per placeable node (gates and flops), one hyperedge per multi-terminal
    net (a driver and its fanouts).  Primary I/O nodes become fixed terminals
    rather than vertices. *)

type t = {
  nl : Vpga_netlist.Netlist.t;
  vertex_of_node : int array;  (** node id -> vertex id or -1 *)
  node_of_vertex : int array;
  nets : int array array;  (** each net: member vertex ids (>= 2) *)
  vertex_area : float array;
}

val build : Vpga_netlist.Netlist.t -> t

val num_vertices : t -> int
val num_nets : t -> int
val total_area : t -> float
