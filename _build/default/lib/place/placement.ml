module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type t = {
  graph : Hypergraph.t;
  die_w : float;
  die_h : float;
  x : float array;
  y : float array;
}

let die_of_area ?(utilization = 0.7) area =
  let side = sqrt (area /. utilization) in
  (side, side)

let nets_with_io_of nl =
  let fanout = Netlist.fanout nl in
  let nets = ref [] in
  Array.iteri
    (fun id sinks ->
      let node = Netlist.node nl id in
      let drives =
        match node.Netlist.kind with
        | Kind.Output -> false (* output pads drive nothing *)
        | Kind.Const _ -> false (* constants are tie-offs, not wires *)
        | _ -> Array.length sinks > 0
      in
      if drives then nets := Array.append [| id |] sinks :: !nets)
    fanout;
  Array.of_list !nets

let create ?utilization nl =
  let graph = Hypergraph.build nl in
  let die_w, die_h = die_of_area ?utilization (Hypergraph.total_area graph) in
  let n = Netlist.size nl in
  let x = Array.make n (die_w /. 2.0) and y = Array.make n (die_h /. 2.0) in
  let spread ids x0 =
    let k = List.length ids in
    List.iteri
      (fun i id ->
        x.(id) <- x0;
        y.(id) <- die_h *. (float_of_int (i + 1) /. float_of_int (k + 1)))
      ids
  in
  spread (Netlist.inputs nl) 0.0;
  spread (Netlist.outputs nl) die_w;
  { graph; die_w; die_h; x; y }

let net_hpwl t net =
  let minx = ref infinity and maxx = ref neg_infinity in
  let miny = ref infinity and maxy = ref neg_infinity in
  Array.iter
    (fun id ->
      if t.x.(id) < !minx then minx := t.x.(id);
      if t.x.(id) > !maxx then maxx := t.x.(id);
      if t.y.(id) < !miny then miny := t.y.(id);
      if t.y.(id) > !maxy then maxy := t.y.(id))
    net;
  !maxx -. !minx +. (!maxy -. !miny)

let nets_with_io t = nets_with_io_of t.graph.Hypergraph.nl

let hpwl t =
  Array.fold_left (fun acc net -> acc +. net_hpwl t net) 0.0 (nets_with_io t)

let scatter ~seed t =
  let rng = Random.State.make [| seed |] in
  Array.iter
    (fun id ->
      t.x.(id) <- Random.State.float rng t.die_w;
      t.y.(id) <- Random.State.float rng t.die_h)
    t.graph.Hypergraph.node_of_vertex
