(** Timing-aware simulated-annealing detailed placement.

    Refines a global placement by random cell displacements and swaps under a
    geometric cooling schedule.  The cost is total HPWL, with nets on
    timing-critical paths weighted up when a criticality map is supplied
    (the "cost function [that] takes into consideration the criticality of
    the cells" of the paper's packing/physical-synthesis loop). *)

type stats = { initial_cost : float; final_cost : float; moves : int; accepted : int }

val refine :
  ?iterations:int ->
  ?t_start:float ->
  ?t_end:float ->
  ?criticality:float array ->
  seed:int ->
  Placement.t ->
  stats
(** Mutates cell coordinates.  [iterations] defaults to [100 * cells];
    [criticality] is a per-node weight in [0,1] (nets driven by critical
    nodes cost more).  Deterministic for a fixed seed. *)
