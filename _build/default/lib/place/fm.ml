type result = { side : bool array; cut : int }

let cut_size nets side =
  Array.fold_left
    (fun acc net ->
      let l = Array.exists (fun v -> not side.(v)) net in
      let r = Array.exists (fun v -> side.(v)) net in
      if l && r then acc + 1 else acc)
    0 nets

(* Gain buckets are doubly linked lists indexed by gain offset, rebuilt per
   FM pass; see inside [run]. *)
let run ?(passes = 8) ?(balance = 0.55) ~seed ~nets ~areas n =
  let rng = Random.State.make [| seed |] in
  let total_area = Array.fold_left ( +. ) 0.0 areas in
  (* Allow at least one largest-cell of slack, or no move is ever legal. *)
  let max_cell = Array.fold_left max 0.0 areas in
  let max_side = max (balance *. total_area) ((total_area /. 2.0) +. max_cell) in
  (* incidence *)
  let deg = Array.make n 0 in
  Array.iter (fun net -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) net) nets;
  let incident = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun e net ->
      Array.iter
        (fun v ->
          incident.(v).(fill.(v)) <- e;
          fill.(v) <- fill.(v) + 1)
        net)
    nets;
  let max_deg = Array.fold_left max 1 deg in
  (* random balanced initial partition: shuffle, greedily fill left to half *)
  let side = Array.make n false in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let acc = ref 0.0 in
  Array.iter
    (fun v ->
      if !acc > total_area /. 2.0 then side.(v) <- true
      else acc := !acc +. areas.(v))
    order;
  let area_of = [| ref 0.0; ref 0.0 |] in
  let side_idx v = if side.(v) then 1 else 0 in
  let recompute_areas () =
    area_of.(0) := 0.0;
    area_of.(1) := 0.0;
    for v = 0 to n - 1 do
      let a = area_of.(side_idx v) in
      a := !a +. areas.(v)
    done
  in
  recompute_areas ();
  (* Per-net side counts. *)
  let count = Array.map (fun _ -> [| 0; 0 |]) nets in
  let recount () =
    Array.iteri
      (fun e net ->
        count.(e).(0) <- 0;
        count.(e).(1) <- 0;
        Array.iter
          (fun v -> count.(e).(side_idx v) <- count.(e).(side_idx v) + 1)
          net)
      nets
  in
  let compute_gain v =
    let from = side_idx v and dest = 1 - side_idx v in
    Array.fold_left
      (fun g e ->
        let g = if count.(e).(from) = 1 then g + 1 else g in
        if count.(e).(dest) = 0 then g - 1 else g)
      0 incident.(v)
  in
  (* gain buckets *)
  let heads = Array.make ((2 * max_deg) + 1) (-1) in
  let nxt = Array.make n (-1) and prv = Array.make n (-1) in
  let gain = Array.make n 0 in
  let in_bucket = Array.make n false in
  let slot g = g + max_deg in
  let bucket_insert v =
    let s = slot gain.(v) in
    nxt.(v) <- heads.(s);
    prv.(v) <- -1;
    if heads.(s) >= 0 then prv.(heads.(s)) <- v;
    heads.(s) <- v;
    in_bucket.(v) <- true
  in
  let bucket_remove v =
    if in_bucket.(v) then begin
      let s = slot gain.(v) in
      if prv.(v) >= 0 then nxt.(prv.(v)) <- nxt.(v) else heads.(s) <- nxt.(v);
      if nxt.(v) >= 0 then prv.(nxt.(v)) <- prv.(v);
      in_bucket.(v) <- false
    end
  in
  let update_gain v delta =
    if in_bucket.(v) then begin
      bucket_remove v;
      gain.(v) <- gain.(v) + delta;
      bucket_insert v
    end
    else gain.(v) <- gain.(v) + delta
  in
  let pick () =
    (* highest-gain movable vertex that keeps balance *)
    let rec scan s =
      if s < 0 then -1
      else begin
        let rec walk v =
          if v < 0 then -1
          else
            let dest = 1 - side_idx v in
            if !(area_of.(dest)) +. areas.(v) <= max_side then v else walk nxt.(v)
        in
        match walk heads.(s) with -1 -> scan (s - 1) | v -> v
      end
    in
    scan (2 * max_deg)
  in
  let best_cut = ref (cut_size nets side) in
  let pass () =
    recount ();
    Array.fill heads 0 (Array.length heads) (-1);
    for v = 0 to n - 1 do
      gain.(v) <- compute_gain v;
      in_bucket.(v) <- false
    done;
    for v = 0 to n - 1 do
      bucket_insert v
    done;
    let moves = ref [] in
    let cur_cut = ref (cut_size nets side) in
    let best_prefix = ref 0 and best_prefix_cut = ref !cur_cut in
    let n_moves = ref 0 in
    let continue = ref true in
    while !continue do
      match pick () with
      | -1 -> continue := false
      | v ->
          bucket_remove v;
          let from = side_idx v in
          let dest = 1 - from in
          cur_cut := !cur_cut - gain.(v);
          (* incremental gain updates, standard FM *)
          Array.iter
            (fun e ->
              let c = count.(e) in
              (* before the move *)
              if c.(dest) = 0 then
                Array.iter
                  (fun u -> if u <> v && in_bucket.(u) then update_gain u 1)
                  nets.(e)
              else if c.(dest) = 1 then
                Array.iter
                  (fun u ->
                    if u <> v && in_bucket.(u) && side_idx u = dest then
                      update_gain u (-1))
                  nets.(e);
              c.(from) <- c.(from) - 1;
              c.(dest) <- c.(dest) + 1;
              (* after the move *)
              if c.(from) = 0 then
                Array.iter
                  (fun u -> if u <> v && in_bucket.(u) then update_gain u (-1))
                  nets.(e)
              else if c.(from) = 1 then
                Array.iter
                  (fun u ->
                    if u <> v && in_bucket.(u) && side_idx u = from then
                      update_gain u 1)
                  nets.(e))
            incident.(v);
          let af = area_of.(from) and ad = area_of.(dest) in
          af := !af -. areas.(v);
          ad := !ad +. areas.(v);
          side.(v) <- not side.(v);
          moves := v :: !moves;
          incr n_moves;
          if !cur_cut < !best_prefix_cut then begin
            best_prefix_cut := !cur_cut;
            best_prefix := !n_moves
          end
    done;
    (* roll back moves beyond the best prefix *)
    let all_moves = List.rev !moves in
    List.iteri
      (fun i v ->
        if i >= !best_prefix then begin
          side.(v) <- not side.(v)
        end)
      all_moves;
    recompute_areas ();
    !best_prefix_cut
  in
  let rec iterate remaining =
    if remaining > 0 then begin
      let c = pass () in
      if c < !best_cut then begin
        best_cut := c;
        iterate (remaining - 1)
      end
    end
  in
  iterate passes;
  { side; cut = cut_size nets side }
