(** Recursive min-cut global placement: FM bipartitioning alternating
    vertical/horizontal cutlines down to small bins, then spreading each
    bin's cells inside its region.  Produces the detailed-placement seed the
    annealer refines — together they substitute for the paper's Dolphin
    physical synthesis. *)

val place : ?min_bin:int -> seed:int -> Placement.t -> unit
(** Mutates the placement's cell coordinates.  [min_bin] (default 8) is the
    number of cells below which a region stops splitting. *)
