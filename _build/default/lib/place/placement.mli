(** A placement: coordinates (um) for every netlist node on a die.

    Placeable cells live inside the core; primary inputs/outputs sit on the
    die boundary (left/right edges respectively, evenly spread). *)

type t = {
  graph : Hypergraph.t;
  die_w : float;
  die_h : float;
  x : float array;  (** per netlist node id *)
  y : float array;
}

val die_of_area : ?utilization:float -> float -> float * float
(** Square die sized so the given cell area fits at [utilization]
    (default 0.7, a typical standard-cell row utilization). *)

val create : ?utilization:float -> Vpga_netlist.Netlist.t -> t
(** Builds the hypergraph, sizes the die and pins I/O to the boundary; cell
    coordinates start at the die center. *)

val net_hpwl : t -> int array -> float
(** Half-perimeter wirelength of one net given as netlist node ids. *)

val hpwl : t -> float
(** Total half-perimeter wirelength over all nets (I/O included). *)

val nets_with_io : t -> int array array
(** Nets as netlist-node-id arrays, including I/O terminals (used by HPWL,
    annealing and routing). *)

val scatter : seed:int -> t -> unit
(** Uniform random cell coordinates (baseline / annealing start). *)
