lib/place/fm.ml: Array Fun List Random
