lib/place/anneal.ml: Array Hypergraph List Placement Random
