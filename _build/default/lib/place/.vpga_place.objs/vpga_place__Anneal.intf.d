lib/place/anneal.mli: Placement
