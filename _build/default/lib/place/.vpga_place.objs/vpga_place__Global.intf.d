lib/place/global.mli: Placement
