lib/place/placement.mli: Hypergraph Vpga_netlist
