lib/place/buffering.mli: Vpga_netlist
