lib/place/hypergraph.ml: Array List Vpga_mapper Vpga_netlist
