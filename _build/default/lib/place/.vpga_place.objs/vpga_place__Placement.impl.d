lib/place/placement.ml: Array Hypergraph List Random Vpga_netlist
