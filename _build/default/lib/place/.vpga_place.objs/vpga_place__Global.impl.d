lib/place/global.ml: Array Fm Fun Hypergraph List Placement Random
