lib/place/hypergraph.mli: Vpga_netlist
