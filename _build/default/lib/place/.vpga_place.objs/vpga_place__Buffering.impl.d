lib/place/buffering.ml: Array List Option Printf Vpga_logic Vpga_netlist
