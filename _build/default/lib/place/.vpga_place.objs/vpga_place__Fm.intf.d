lib/place/fm.mli:
