(** Fanout buffering — the netlist-side half of physical synthesis ("buffer
    insertion ... to meet timing constraints", paper Section 3.1).

    Nets whose fanout exceeds the limit get a star of buffers after the
    driver, each serving at most [max_fanout] sinks, bounding the load any
    single component cell must drive. *)

val insert : max_fanout:int -> Vpga_netlist.Netlist.t -> Vpga_netlist.Netlist.t
(** Equivalent netlist where every driver (gate, flop or primary input)
    drives at most [max_fanout] sinks.  Inserted buffers are
    [Mapped {cell = "buf"}] cells. *)

val max_structural_fanout : Vpga_netlist.Netlist.t -> int
