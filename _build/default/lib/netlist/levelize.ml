type t = { order : int array; level : int array; depth : int }

exception Combinational_cycle of int list

(* Combinational fanins of a node: a flop's D edge does not count (it is a
   sequential boundary), and a flop's own Q is a source. *)
let comb_fanins n =
  match n.Netlist.kind with Kind.Dff -> [||] | _ -> n.Netlist.fanins

let run nl =
  let n = Netlist.size nl in
  let level = Array.make n 0 in
  let state = Array.make n `White in
  let order = Array.make n (-1) in
  let pos = ref 0 in
  let rec visit path i =
    match state.(i) with
    | `Black -> ()
    | `Grey -> raise (Combinational_cycle (i :: path))
    | `White ->
        state.(i) <- `Grey;
        let node = Netlist.node nl i in
        let fis = comb_fanins node in
        Array.iter (visit (i :: path)) fis;
        let lv =
          Array.fold_left (fun acc f -> max acc (level.(f) + 1)) 0 fis
        in
        (* Sources sit at level 0; buffers/outputs still advance a level so
           [level] is a valid topological rank. *)
        level.(i) <- (match node.Netlist.kind with
                      | Kind.Input | Kind.Dff | Kind.Const _ -> 0
                      | _ -> lv);
        state.(i) <- `Black;
        order.(!pos) <- i;
        incr pos
  in
  for i = 0 to n - 1 do visit [] i done;
  let depth = Array.fold_left max 0 level in
  { order; level; depth }

let is_acyclic nl =
  match run nl with _ -> true | exception Combinational_cycle _ -> false
