(** Topological ordering of the combinational portion of a netlist.

    Primary inputs, constants and flop outputs (Q pins) are level-0 sources;
    each combinational gate's level is one more than the maximum level of its
    fanins; flop D pins and primary outputs are sinks. *)

type t = {
  order : int array;  (** node ids, combinational-topological order *)
  level : int array;  (** per-node logic level; sources are 0 *)
  depth : int;        (** maximum level *)
}

exception Combinational_cycle of int list
(** Raised with (a fragment of) the offending cycle's node ids. *)

val run : Netlist.t -> t
(** @raise Combinational_cycle if gates form a cycle not broken by a flop. *)

val is_acyclic : Netlist.t -> bool
