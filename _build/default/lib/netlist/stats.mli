(** Netlist statistics in the units the paper reports: equivalent 2-input
    NAND gates, flop ratios and kind histograms. *)

val nand2_equivalents : Kind.t -> float
(** Conventional gate-equivalent weight of a kind (a NAND2 is 1.0, an
    inverter 0.5, a DFF 4.0, a 3-LUT 6.0, ...). *)

val gate_count : Netlist.t -> float
(** Total NAND2-equivalent count (primary I/O excluded). *)

val flop_count : Netlist.t -> int
val combinational_count : Netlist.t -> int
val flop_ratio : Netlist.t -> float
(** Flops / (flops + combinational gates): the datapath-vs-control signature
    the paper's Firewire discussion turns on. *)

val histogram : Netlist.t -> (string * int) list
(** Gate-kind histogram, sorted descending by count. *)
