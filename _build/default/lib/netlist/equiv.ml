type verdict =
  | Equivalent
  | Mismatch of { cycle : int; output : int; vectors : bool array list }

let same_interface a b =
  List.length (Netlist.inputs a) = List.length (Netlist.inputs b)
  && List.length (Netlist.outputs a) = List.length (Netlist.outputs b)

let compare_outputs poa pob =
  let rec go k =
    if k >= Array.length poa then None
    else if poa.(k) <> pob.(k) then Some k
    else go (k + 1)
  in
  go 0

let run_sequence sima simb seq =
  Simulate.reset sima;
  Simulate.reset simb;
  let rec go cycle history = function
    | [] -> None
    | pi :: rest -> begin
        let history = pi :: history in
        let poa = Simulate.step sima pi and pob = Simulate.step simb pi in
        match compare_outputs poa pob with
        | Some k -> Some (cycle, k, List.rev history)
        | None -> go (cycle + 1) history rest
      end
  in
  go 0 [] seq

let check ?(vectors = 64) ?(sequence_length = 8) ~seed a b =
  if not (same_interface a b) then
    invalid_arg "Equiv.check: interface mismatch";
  let rng = Random.State.make [| seed |] in
  let npi = List.length (Netlist.inputs a) in
  let sima = Simulate.create a and simb = Simulate.create b in
  let rec attempt v =
    if v >= vectors then Equivalent
    else
      let seq =
        List.init sequence_length (fun _ ->
            Array.init npi (fun _ -> Random.State.bool rng))
      in
      match run_sequence sima simb seq with
      | Some (cycle, output, vs) -> Mismatch { cycle; output; vectors = vs }
      | None -> attempt (v + 1)
  in
  attempt 0

let check_exhaustive a b =
  if not (same_interface a b) then
    invalid_arg "Equiv.check_exhaustive: interface mismatch";
  let npi = List.length (Netlist.inputs a) in
  if npi > 16 then invalid_arg "Equiv.check_exhaustive: too many inputs";
  let sima = Simulate.create a and simb = Simulate.create b in
  let rec go m =
    if m >= 1 lsl npi then Equivalent
    else
      let pi = Array.init npi (fun i -> (m lsr i) land 1 = 1) in
      let poa = Simulate.eval_comb sima pi and pob = Simulate.eval_comb simb pi in
      match compare_outputs poa pob with
      | Some k -> Mismatch { cycle = 0; output = k; vectors = [ pi ] }
      | None -> go (m + 1)
  in
  go 0
