module Bfun = Vpga_logic.Bfun

type t =
  | Input
  | Output
  | Const of bool
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2
  | And3
  | Or3
  | Nand3
  | Nor3
  | Xor3
  | Maj3
  | Dff
  | Mapped of { cell : string; fn : Bfun.t }

let arity = function
  | Input | Const _ -> 0
  | Output | Buf | Inv | Dff -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 -> 2
  | Mux2 | And3 | Or3 | Nand3 | Nor3 | Xor3 | Maj3 -> 3
  | Mapped { fn; _ } -> Bfun.arity fn

let is_sequential = function
  | Dff -> true
  | Input | Output | Const _ | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2
  | Xnor2 | Mux2 | And3 | Or3 | Nand3 | Nor3 | Xor3 | Maj3 | Mapped _ ->
      false

let fn k =
  let v2 i = Bfun.var ~arity:2 i in
  let v3 i = Bfun.var ~arity:3 i in
  let open Bfun in
  match k with
  | Input -> invalid_arg "Kind.fn: Input has no function"
  | Output -> invalid_arg "Kind.fn: Output has no function"
  | Dff -> invalid_arg "Kind.fn: Dff is sequential"
  | Const b -> const ~arity:0 b
  | Buf -> var ~arity:1 0
  | Inv -> lnot (var ~arity:1 0)
  | And2 -> v2 0 &&& v2 1
  | Or2 -> v2 0 ||| v2 1
  | Nand2 -> lnot (v2 0 &&& v2 1)
  | Nor2 -> lnot (v2 0 ||| v2 1)
  | Xor2 -> v2 0 ^^^ v2 1
  | Xnor2 -> lnot (v2 0 ^^^ v2 1)
  | Mux2 -> mux ~sel:(v3 0) (v3 1) (v3 2)
  | And3 -> v3 0 &&& v3 1 &&& v3 2
  | Or3 -> v3 0 ||| v3 1 ||| v3 2
  | Nand3 -> lnot (v3 0 &&& v3 1 &&& v3 2)
  | Nor3 -> lnot (v3 0 ||| v3 1 ||| v3 2)
  | Xor3 -> v3 0 ^^^ v3 1 ^^^ v3 2
  | Maj3 -> (v3 0 &&& v3 1) ||| (v3 1 &&& v3 2) ||| (v3 0 &&& v3 2)
  | Mapped { fn; _ } -> fn

let eval k args =
  match k with
  | Input -> invalid_arg "Kind.eval: Input"
  | Dff -> invalid_arg "Kind.eval: Dff"
  | Output | Buf ->
      if Array.length args <> 1 then invalid_arg "Kind.eval: arity";
      args.(0)
  | Const b ->
      if Array.length args <> 0 then invalid_arg "Kind.eval: arity";
      b
  | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2 | And3 | Or3 | Nand3
  | Nor3 | Xor3 | Maj3 | Mapped _ ->
      let f = fn k in
      if Array.length args <> Bfun.arity f then invalid_arg "Kind.eval: arity";
      let m = ref 0 in
      Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) args;
      Bfun.eval f !m

let name = function
  | Input -> "input"
  | Output -> "output"
  | Const true -> "const1"
  | Const false -> "const0"
  | Buf -> "buf"
  | Inv -> "inv"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"
  | And3 -> "and3"
  | Or3 -> "or3"
  | Nand3 -> "nand3"
  | Nor3 -> "nor3"
  | Xor3 -> "xor3"
  | Maj3 -> "maj3"
  | Dff -> "dff"
  | Mapped { cell; _ } -> cell

let pp ppf k =
  match k with
  | Mapped { cell; fn } -> Format.fprintf ppf "%s[%a]" cell Bfun.pp fn
  | _ -> Format.pp_print_string ppf (name k)
