(** Cycle-accurate two-valued simulation. *)

type t

val create : Netlist.t -> t
(** Builds a simulator; flops reset to 0.
    @raise Levelize.Combinational_cycle on an ill-formed netlist. *)

val reset : t -> unit

val step : t -> bool array -> bool array
(** [step sim pi] applies one clock cycle: evaluates combinational logic with
    primary-input values [pi] (in {!Netlist.inputs} order), samples flop D
    pins, then returns the primary-output values {e before} the flop update
    (i.e. the outputs visible during the cycle).  Flops update afterwards. *)

val eval_comb : t -> bool array -> bool array
(** Combinational evaluation only: no state update. *)

val value : t -> int -> bool
(** Most recently computed value of a node. *)

val run : Netlist.t -> bool array list -> bool array list
(** Convenience: reset, then [step] through a list of input vectors. *)
