lib/netlist/kind.mli: Format Vpga_logic
