lib/netlist/netlist.ml: Array Format Hashtbl Kind List Option Printf String
