lib/netlist/netlist.mli: Format Kind
