lib/netlist/simulate.ml: Array Kind Levelize List Netlist
