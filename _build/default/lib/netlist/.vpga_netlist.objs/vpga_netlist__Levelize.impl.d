lib/netlist/levelize.ml: Array Kind Netlist
