lib/netlist/stats.ml: Array Hashtbl Kind List Netlist Option
