lib/netlist/levelize.mli: Netlist
