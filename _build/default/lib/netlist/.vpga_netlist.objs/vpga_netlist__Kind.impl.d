lib/netlist/kind.ml: Array Format Vpga_logic
