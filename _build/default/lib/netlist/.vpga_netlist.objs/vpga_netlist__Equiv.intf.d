lib/netlist/equiv.mli: Netlist
