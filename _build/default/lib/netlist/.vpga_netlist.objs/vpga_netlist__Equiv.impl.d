lib/netlist/equiv.ml: Array List Netlist Random Simulate
