lib/netlist/stats.mli: Kind Netlist
