lib/netlist/simulate.mli: Netlist
