(** Node kinds of the gate-level netlist IR.

    Two families share the IR: the {e generic} gates produced by the design
    generators (design entry), and {e mapped} cells — a component cell of a
    PLB architecture together with its via-programmed Boolean function.
    Mapped cells carry the library-cell name used to look up area and timing
    in a {!Vpga_cells} library. *)

type t =
  | Input        (** primary input; no fanins *)
  | Output       (** primary output; fanins [[|src|]] *)
  | Const of bool
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2         (** fanins [[|sel; d0; d1|]]: [sel ? d1 : d0] *)
  | And3
  | Or3
  | Nand3
  | Nor3
  | Xor3
  | Maj3         (** majority of three — the full-adder carry *)
  | Dff          (** fanins [[|d|]]; the node's value is Q *)
  | Mapped of { cell : string; fn : Vpga_logic.Bfun.t }
      (** library cell [cell] via-programmed to compute [fn] of its fanins *)

val arity : t -> int
(** Number of fanins the kind requires ([Input] is 0; [Mapped] is the arity
    of its function). *)

val is_sequential : t -> bool

val eval : t -> bool array -> bool
(** Combinational semantics. @raise Invalid_argument on [Input], [Dff] or a
    wrong-sized argument vector. *)

val fn : t -> Vpga_logic.Bfun.t
(** Truth table of a combinational kind over its fanins.
    @raise Invalid_argument on [Input], [Output], [Dff]. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
