(** Randomized equivalence checking between two netlists with identical
    primary-input/output interfaces.

    Used as the flow's sanity net: every transformation (mapping, compaction,
    buffering) must leave the design observationally equivalent. *)

type verdict =
  | Equivalent
  | Mismatch of { cycle : int; output : int; vectors : bool array list }

val check :
  ?vectors:int -> ?sequence_length:int -> seed:int ->
  Netlist.t -> Netlist.t -> verdict
(** [check ~seed a b] drives both designs with [vectors] random input
    sequences of [sequence_length] cycles from reset and compares all primary
    outputs each cycle.  Defaults: 64 sequences of 8 cycles.
    @raise Invalid_argument if interfaces differ. *)

val check_exhaustive : Netlist.t -> Netlist.t -> verdict
(** Exhaustive single-cycle check for combinational designs with at most 16
    primary inputs. *)
