(** Gate-level netlist: a DAG of {!Kind} nodes with primary inputs/outputs and
    single-clock D flip-flops.

    Netlists are built through the mutable builder API ([input], [gate], ...)
    and then treated as immutable.  Node ids are dense integers assigned in
    creation order. *)

type node = { id : int; kind : Kind.t; fanins : int array; name : string option }

type t

val create : ?name:string -> unit -> t

val design_name : t -> string

val input : t -> string -> int
(** Add a primary input; returns its node id. *)

val gate : ?name:string -> t -> Kind.t -> int array -> int
(** Add a combinational gate or DFF; returns its node id.
    @raise Invalid_argument on arity mismatch, unknown fanin id, or an
    attempt to add [Input]/[Output] kinds. *)

val output : t -> string -> int -> int
(** Mark a node as driving a named primary output; returns the output node. *)

val dff : ?name:string -> t -> int
(** Add a D flip-flop with an unconnected D pin (for feedback paths); the
    returned id is the flop's Q.  Connect D later with {!connect}. *)

val connect : t -> flop:int -> d:int -> unit
(** Connect the D pin of a flop created with {!dff} (or rewire a {!gate}-built
    flop). *)

val size : t -> int
val node : t -> int -> node
val nodes : t -> node array
val inputs : t -> int list
(** Primary input node ids, in creation order. *)

val outputs : t -> int list
(** Output node ids, in creation order. *)

val flops : t -> int list

val fanout : t -> int array array
(** [fanout t].(i) lists the ids of nodes reading node [i]. *)

val validate : t -> (unit, string) result
(** Structural checks: fanin arities, id ranges, no dangling outputs. *)

val map_combinational :
  ?name:string -> t -> (t -> node -> int array -> int) -> t
(** [map_combinational t f] rebuilds the netlist, copying inputs, flops and
    outputs and letting [f dst node new_fanins] translate each combinational
    node (possibly into several gates in [dst]); returns the new netlist.
    Used by technology mapping and compaction. *)

val pp_stats : Format.formatter -> t -> unit
