type t = {
  nl : Netlist.t;
  topo : Levelize.t;
  values : bool array;
  state : bool array; (* indexed like nodes; only flop slots used *)
}

let create nl =
  let topo = Levelize.run nl in
  let n = Netlist.size nl in
  { nl; topo; values = Array.make n false; state = Array.make n false }

let reset sim = Array.fill sim.state 0 (Array.length sim.state) false

let eval_comb_internal sim pi =
  let ins = Netlist.inputs sim.nl in
  if List.length ins <> Array.length pi then
    invalid_arg "Simulate: wrong number of primary inputs";
  List.iteri (fun k i -> sim.values.(i) <- pi.(k)) ins;
  Array.iter
    (fun i ->
      let node = Netlist.node sim.nl i in
      match node.Netlist.kind with
      | Kind.Input -> ()
      | Kind.Dff -> sim.values.(i) <- sim.state.(i)
      | k ->
          let args = Array.map (fun f -> sim.values.(f)) node.Netlist.fanins in
          sim.values.(i) <- Kind.eval k args)
    sim.topo.Levelize.order;
  Array.of_list
    (List.map (fun o -> sim.values.(o)) (Netlist.outputs sim.nl))

let eval_comb sim pi = eval_comb_internal sim pi

let step sim pi =
  let po = eval_comb_internal sim pi in
  List.iter
    (fun i ->
      let d = (Netlist.node sim.nl i).Netlist.fanins.(0) in
      sim.state.(i) <- sim.values.(d))
    (Netlist.flops sim.nl);
  po

let value sim i = sim.values.(i)

let run nl vectors =
  let sim = create nl in
  reset sim;
  List.map (step sim) vectors
