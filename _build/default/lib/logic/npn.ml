let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* All functions NPN-equivalent to [f]. *)
let orbit f =
  let n = Bfun.arity f in
  let perms = permutations (List.init n Fun.id) in
  let variants = ref [] in
  List.iter
    (fun perm ->
      let p = Array.of_list perm in
      let g = Bfun.permute_inputs f p in
      for mask = 0 to (1 lsl n) - 1 do
        (* negate inputs in [mask] by swapping cofactors *)
        let h = ref g in
        for i = 0 to n - 1 do
          if (mask lsr i) land 1 = 1 then begin
            let lo, hi = Bfun.cofactor_pair !h ~var:i in
            h := Bfun.expand ~sel_var:i ~lo:hi ~hi:lo
          end
        done;
        variants := !h :: Bfun.lnot !h :: !variants
      done)
    perms;
  !variants

let canonical f =
  List.fold_left
    (fun best g -> if Bfun.compare g best < 0 then g else best)
    f (orbit f)

let equivalent a b = Bfun.equal (canonical a) (canonical b)

let classes ~arity =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let c = canonical f in
      if not (Hashtbl.mem seen (Bfun.table c)) then
        Hashtbl.add seen (Bfun.table c) c)
    (Bfun.all ~arity);
  Hashtbl.fold (fun _ c acc -> c :: acc) seen []
  |> List.sort Bfun.compare

let class_size f =
  let tables = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace tables (Bfun.table g) ()) (orbit f);
  Hashtbl.length tables
