type t = { arity : int; tt : int }

let max_arity = 5

let mask_of_arity arity = (1 lsl (1 lsl arity)) - 1

let make ~arity tt =
  if arity < 0 || arity > max_arity then
    invalid_arg (Printf.sprintf "Bfun.make: arity %d out of [0,%d]" arity max_arity);
  { arity; tt = tt land mask_of_arity arity }

let arity f = f.arity
let table f = f.tt

let const ~arity b = make ~arity (if b then -1 else 0)

(* Projection patterns: input i is true on minterms whose bit i is set.  For
   arity 3, var 0 = 0xAA, var 1 = 0xCC, var 2 = 0xF0. *)
let var ~arity i =
  if i < 0 || i >= arity then
    invalid_arg (Printf.sprintf "Bfun.var: input %d out of arity %d" i arity);
  let n = 1 lsl arity in
  let rec fill acc m =
    if m >= n then acc
    else fill (if (m lsr i) land 1 = 1 then acc lor (1 lsl m) else acc) (m + 1)
  in
  { arity; tt = fill 0 0 }

let eval f m =
  let n = 1 lsl f.arity in
  if m < 0 || m >= n then invalid_arg "Bfun.eval: minterm out of range";
  (f.tt lsr m) land 1 = 1

let same_arity a b =
  if a.arity <> b.arity then invalid_arg "Bfun: arity mismatch";
  a.arity

let lnot f = { f with tt = lnot f.tt land mask_of_arity f.arity }

let ( &&& ) a b =
  let arity = same_arity a b in
  { arity; tt = a.tt land b.tt }

let ( ||| ) a b =
  let arity = same_arity a b in
  { arity; tt = a.tt lor b.tt }

let ( ^^^ ) a b =
  let arity = same_arity a b in
  { arity; tt = a.tt lxor b.tt }

let nand a b = lnot (a &&& b)

let mux ~sel f0 f1 =
  let _ = same_arity sel f0 and _ = same_arity sel f1 in
  (sel &&& f1) ||| (lnot sel &&& f0)

let equal a b = a.arity = b.arity && a.tt = b.tt
let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c else Int.compare a.tt b.tt
let hash f = Hashtbl.hash (f.arity, f.tt)

let cofactor f ~var b =
  if var < 0 || var >= f.arity then invalid_arg "Bfun.cofactor: bad input index";
  let n = 1 lsl f.arity in
  let pol = if b then 1 else 0 in
  let rec fill acc j m =
    if m >= n then acc
    else if (m lsr var) land 1 = pol then
      let acc = if (f.tt lsr m) land 1 = 1 then acc lor (1 lsl j) else acc in
      fill acc (j + 1) (m + 1)
    else fill acc j (m + 1)
  in
  { arity = f.arity - 1; tt = fill 0 0 0 }

let expand ~sel_var ~lo ~hi =
  let arity = same_arity lo hi + 1 in
  if sel_var < 0 || sel_var >= arity then invalid_arg "Bfun.expand: bad input index";
  let n = 1 lsl arity in
  let rec fill acc m =
    if m >= n then acc
    else
      (* Index into the cofactor: drop bit [sel_var] of m. *)
      let low = m land ((1 lsl sel_var) - 1) in
      let high = (m lsr (sel_var + 1)) lsl sel_var in
      let j = low lor high in
      let src = if (m lsr sel_var) land 1 = 1 then hi else lo in
      let acc = if (src.tt lsr j) land 1 = 1 then acc lor (1 lsl m) else acc in
      fill acc (m + 1)
  in
  { arity; tt = fill 0 0 }

let depends_on f i =
  not (equal (cofactor f ~var:i false) (cofactor f ~var:i true))

let support f =
  List.filter (depends_on f) (List.init f.arity Fun.id)

let support_size f = List.length (support f)

let popcount f =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 f.tt

let is_const f = f.tt = 0 || f.tt = mask_of_arity f.arity

let is_literal f =
  List.exists
    (fun i ->
      let v = var ~arity:f.arity i in
      equal f v || equal f (lnot v))
    (List.init f.arity Fun.id)

let extend f ~arity =
  if arity < f.arity then invalid_arg "Bfun.extend: arity shrinks";
  if arity > max_arity then invalid_arg "Bfun.extend: arity too large";
  let rec go tt a =
    if a = arity then tt else go (tt lor (tt lsl (1 lsl a))) (a + 1)
  in
  { arity; tt = go f.tt f.arity }

let permute_inputs f p =
  if Array.length p <> f.arity then invalid_arg "Bfun.permute_inputs: bad permutation";
  let n = 1 lsl f.arity in
  let rec fill acc m =
    if m >= n then acc
    else
      let m' = ref 0 in
      for i = 0 to f.arity - 1 do
        if (m lsr i) land 1 = 1 then m' := !m' lor (1 lsl p.(i))
      done;
      let acc = if (f.tt lsr m) land 1 = 1 then acc lor (1 lsl !m') else acc in
      fill acc (m + 1)
  in
  { arity = f.arity; tt = fill 0 0 }

let cofactor_pair f ~var = (cofactor f ~var false, cofactor f ~var true)

let all ~arity =
  if arity > 4 then invalid_arg "Bfun.all: arity too large to enumerate";
  List.init (1 lsl (1 lsl arity)) (fun tt -> make ~arity tt)

let to_string f =
  let n = 1 lsl f.arity in
  String.init n (fun k ->
      let m = n - 1 - k in
      if (f.tt lsr m) land 1 = 1 then '1' else '0')

let pp ppf f = Format.fprintf ppf "%d'%s" f.arity (to_string f)
