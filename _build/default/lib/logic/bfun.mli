(** Boolean functions of up to 5 inputs, represented as truth-table bitmasks.

    Minterm [m] (an integer whose bit [i] is the value of input [i]) is true
    iff bit [m] of the table is set.  Functions of arity [n] use the low
    [2^n] bits; all other bits are kept at zero so that structural equality
    coincides with functional equality at a given arity. *)

type t = private { arity : int; tt : int }

val max_arity : int
(** Largest supported arity (5: a 32-bit table fits a 63-bit OCaml [int]). *)

val make : arity:int -> int -> t
(** [make ~arity tt] builds a function from a raw truth table.  Bits above
    [2^arity] are masked off.  @raise Invalid_argument on bad arity. *)

val arity : t -> int
val table : t -> int

val const : arity:int -> bool -> t
val var : arity:int -> int -> t
(** [var ~arity i] is the projection onto input [i]. *)

val eval : t -> int -> bool
(** [eval f m] evaluates [f] on minterm [m]. *)

val lnot : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val nand : t -> t -> t
val mux : sel:t -> t -> t -> t
(** [mux ~sel f0 f1] is [if sel then f1 else f0], pointwise. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val cofactor : t -> var:int -> bool -> t
(** [cofactor f ~var b] is the Shannon cofactor [f] with input [var] fixed to
    [b], expressed over the remaining [arity f - 1] inputs (in order). *)

val expand : sel_var:int -> lo:t -> hi:t -> t
(** Inverse of {!cofactor}: rebuilds an [n+1]-ary function from the two
    [n]-ary cofactors with respect to input [sel_var]. *)

val depends_on : t -> int -> bool
(** Whether the function's value depends on the given input. *)

val support : t -> int list
(** Inputs the function actually depends on, ascending. *)

val support_size : t -> int

val popcount : t -> int
(** Number of satisfying minterms. *)

val is_const : t -> bool
val is_literal : t -> bool
(** True for projections of a single input, in either polarity. *)

val extend : t -> arity:int -> t
(** [extend f ~arity] reinterprets [f] over a larger arity; the added
    (higher-index) inputs are don't-cares. *)

val permute_inputs : t -> int array -> t
(** [permute_inputs f p] renames input [i] to [p.(i)]; [p] must be a
    permutation of [0 .. arity-1]. *)

val cofactor_pair : t -> var:int -> t * t
(** [(cofactor f ~var false, cofactor f ~var true)]. *)

val all : arity:int -> t list
(** All [2^(2^arity)] functions, ascending by table. *)

val to_string : t -> string
(** Truth table as a binary string, most significant minterm first. *)

val pp : Format.formatter -> t -> unit
