(** Section 2.1 of the paper: feasibility of 3-input functions on the S3
    structure (a 2:1 MUX whose data legs are driven by two ND2WI gates) and on
    the modified S3 cell (one leg replaced by a 2:1 MUX with a programmable
    output inverter).

    The select of the structure is the designated third input (index 2, the
    paper's [s] in [f(a,b,s)]); the analysis is over the Shannon cofactors
    [g = f|s=0] and [h = f|s=1].  Exactly 196 = 14 x 14 functions are
    S3-feasible; the 60 infeasible ones fall in the paper's five Figure-2
    categories. *)

type category =
  | Nd2_xor   (** one cofactor ND2WI-feasible, the other is XOR (28) *)
  | Nd2_xnor  (** one cofactor ND2WI-feasible, the other is XNOR (28) *)
  | Both_xor  (** g = h = XOR: [f] is a 2-input XOR (1) *)
  | Both_xnor (** g = h = XNOR: [f] is a 2-input XNOR (1) *)
  | Complement_pair
      (** h = not g with XOR-type cofactors: [f] is a 3-input XOR/XNOR (2) *)

val category_name : category -> string
val all_categories : category list

val select_var : int
(** The designated select input (2). *)

val feasible : Bfun.t -> bool
(** S3-feasibility of a 3-input function: both cofactors with respect to the
    select are ND2WI-feasible. *)

val classify_infeasible : Bfun.t -> category
(** Figure-2 category of an S3-infeasible function.
    @raise Invalid_argument if the function is S3-feasible. *)

val feasible_any_select : Bfun.t -> bool
(** Feasibility when the via-patterned fabric may route any of the three
    inputs to the select pin (a superset of {!feasible}; 238 functions). *)

val modified_feasible : Bfun.t -> bool
(** Feasibility on the modified S3 cell of Figure 3.  The MUX leg implements
    any 2-input function; categories 3-5 use the single-MUX and chained-MUX
    realizations the paper describes.  This is total: all 256 functions. *)

type census = {
  s3_feasible : int;
  s3_infeasible : int;
  by_category : (category * int) list;
  any_select_feasible : int;
  modified_feasible : int;
}

val census : unit -> census
(** Exhaustive classification of all 256 3-input functions. *)

val pp_census : Format.formatter -> census -> unit
