type category =
  | Nd2_xor
  | Nd2_xnor
  | Both_xor
  | Both_xnor
  | Complement_pair

let category_name = function
  | Nd2_xor -> "ND2WI cofactor + XOR cofactor"
  | Nd2_xnor -> "ND2WI cofactor + XNOR cofactor"
  | Both_xor -> "both cofactors XOR (2-input XOR)"
  | Both_xnor -> "both cofactors XNOR (2-input XNOR)"
  | Complement_pair -> "complementary XOR-type cofactors (3-input XOR/XNOR)"

let all_categories = [ Nd2_xor; Nd2_xnor; Both_xor; Both_xnor; Complement_pair ]

let select_var = 2

let check_arity f =
  if Bfun.arity f <> 3 then invalid_arg "S3: arity must be 3"

let cofactors f = Bfun.cofactor_pair f ~var:select_var

let feasible f =
  check_arity f;
  let g, h = cofactors f in
  Gates.nd2wi_feasible g && Gates.nd2wi_feasible h

let classify_infeasible f =
  check_arity f;
  let g, h = cofactors f in
  match (Gates.is_xor_type g, Gates.is_xor_type h) with
  | false, false -> invalid_arg "S3.classify_infeasible: function is S3-feasible"
  | true, true ->
      if Bfun.equal g h then
        if Bfun.equal g Gates.xor2 then Both_xor else Both_xnor
      else Complement_pair
  | true, false | false, true ->
      let x = if Gates.is_xor_type g then g else h in
      if Bfun.equal x Gates.xor2 then Nd2_xor else Nd2_xnor

let feasible_any_select f =
  check_arity f;
  List.exists
    (fun s ->
      let g, h = Bfun.cofactor_pair f ~var:s in
      Gates.nd2wi_feasible g && Gates.nd2wi_feasible h)
    [ 0; 1; 2 ]

(* The modified cell's MUX leg covers all 16 2-input functions, so any f with
   at least one non-XOR-type cofactor is feasible.  When both cofactors are
   XOR-type, the paper's categories 3-5 apply: equal cofactors mean f is a
   2-input XOR/XNOR (a single MUX with input polarities), complementary
   cofactors mean f is a 3-input XOR/XNOR (two chained MUXes plus the
   programmable inverter).  Every XOR-type pair is equal or complementary,
   so the modified cell is total. *)
let modified_feasible f =
  check_arity f;
  let g, h = cofactors f in
  (not (Gates.is_xor_type g && Gates.is_xor_type h))
  || Bfun.equal g h
  || Bfun.equal g (Bfun.lnot h)

type census = {
  s3_feasible : int;
  s3_infeasible : int;
  by_category : (category * int) list;
  any_select_feasible : int;
  modified_feasible : int;
}

let census () =
  let fs = Bfun.all ~arity:3 in
  let counts = Hashtbl.create 8 in
  let bump c = Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)) in
  let feas = ref 0 and any = ref 0 and modi = ref 0 in
  List.iter
    (fun f ->
      if feasible f then incr feas else bump (classify_infeasible f);
      if feasible_any_select f then incr any;
      if modified_feasible f then incr modi)
    fs;
  {
    s3_feasible = !feas;
    s3_infeasible = 256 - !feas;
    by_category =
      List.map
        (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt counts c)))
        all_categories;
    any_select_feasible = !any;
    modified_feasible = !modi;
  }

let pp_census ppf c =
  Format.fprintf ppf "S3-feasible: %d / 256@." c.s3_feasible;
  Format.fprintf ppf "S3-infeasible: %d, by Figure-2 category:@." c.s3_infeasible;
  List.iter
    (fun (cat, n) -> Format.fprintf ppf "  %-52s %3d@." (category_name cat) n)
    c.by_category;
  Format.fprintf ppf "Feasible with free select choice: %d / 256@." c.any_select_feasible;
  Format.fprintf ppf "Modified S3 cell: %d / 256@." c.modified_feasible
