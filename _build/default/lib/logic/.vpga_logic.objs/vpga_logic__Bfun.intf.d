lib/logic/bfun.mli: Format
