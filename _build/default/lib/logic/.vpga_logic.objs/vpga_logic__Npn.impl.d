lib/logic/npn.ml: Array Bfun Fun Hashtbl List
