lib/logic/s3.ml: Bfun Format Gates Hashtbl List Option
