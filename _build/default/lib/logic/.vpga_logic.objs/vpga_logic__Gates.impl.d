lib/logic/gates.ml: Bfun Fun Hashtbl Lazy List
