lib/logic/gates.mli: Bfun
