lib/logic/bfun.ml: Array Format Fun Hashtbl Int List Printf String
