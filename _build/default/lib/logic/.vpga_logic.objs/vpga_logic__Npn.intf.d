lib/logic/npn.mli: Bfun
