lib/logic/s3.mli: Bfun Format
