let xor2 = Bfun.make ~arity:2 0b0110
let xnor2 = Bfun.make ~arity:2 0b1001

let is_xor_type f = Bfun.equal f xor2 || Bfun.equal f xnor2

let nd2wi_feasible f =
  if Bfun.arity f <> 2 then invalid_arg "Gates.nd2wi_feasible: arity must be 2";
  not (is_xor_type f)

let nd2wi_strict f =
  if Bfun.arity f <> 2 then invalid_arg "Gates.nd2wi_strict: arity must be 2";
  let p = Bfun.popcount f in
  p = 1 || p = 3

let and_type f =
  let p = Bfun.popcount f in
  let n = 1 lsl Bfun.arity f in
  p = 1 || p = n - 1

(* Shrink a function to the variables it depends on. *)
let project_to_support f =
  let rec go f =
    match List.find_opt (fun i -> not (Bfun.depends_on f i)) (List.init (Bfun.arity f) Fun.id) with
    | None -> f
    | Some i -> go (Bfun.cofactor f ~var:i false)
  in
  go f

let nd3wi_feasible f =
  if Bfun.arity f <> 3 then invalid_arg "Gates.nd3wi_feasible: arity must be 3";
  let g = project_to_support f in
  Bfun.is_const g || Bfun.is_literal g || and_type g

(* All truth tables reachable by one 2:1 MUX whose pins are driven by
   (possibly inverted) inputs or constants. *)
let mux_tables =
  lazy
    (let sources =
       let vs = List.init 3 (fun i -> Bfun.var ~arity:3 i) in
       Bfun.const ~arity:3 false :: Bfun.const ~arity:3 true
       :: (vs @ List.map Bfun.lnot vs)
     in
     let set = Hashtbl.create 64 in
     List.iter
       (fun sel ->
         List.iter
           (fun d0 ->
             List.iter
               (fun d1 ->
                 let f = Bfun.mux ~sel d0 d1 in
                 Hashtbl.replace set (Bfun.table f) ())
               sources)
           sources)
       sources;
     set)

let mux_feasible f =
  if Bfun.arity f <> 3 then invalid_arg "Gates.mux_feasible: arity must be 3";
  Hashtbl.mem (Lazy.force mux_tables) (Bfun.table f)
