(** NPN canonicalization: equivalence of Boolean functions under input
    negation, input permutation and output negation.

    Via-patterned cells with programmable polarities implement whole NPN
    classes at once, so architecture coverage statements (Section 2) are
    naturally per-class; there are 14 NPN classes of 3-input functions. *)

val canonical : Bfun.t -> Bfun.t
(** The minimum (by truth table) representative of the function's NPN
    class.  Exhaustive over the [2 * 2^n * n!] transforms — intended for
    [n <= 4]. *)

val equivalent : Bfun.t -> Bfun.t -> bool
(** Same NPN class. *)

val classes : arity:int -> Bfun.t list
(** Canonical representatives of all NPN classes at the given arity,
    ascending (14 entries at arity 3). *)

val class_size : Bfun.t -> int
(** Number of distinct functions in the function's NPN class. *)
