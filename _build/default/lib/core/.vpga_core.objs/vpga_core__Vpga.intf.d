lib/core/vpga.mli: Vpga_aig Vpga_cells Vpga_designs Vpga_flow Vpga_logic Vpga_mapper Vpga_maxflow Vpga_netlist Vpga_pack Vpga_place Vpga_plb Vpga_route Vpga_timing
