lib/flow/flow.ml: Array Printf Vpga_mapper Vpga_netlist Vpga_pack Vpga_place Vpga_plb Vpga_route Vpga_timing
