lib/flow/export.mli: Vpga_netlist Vpga_pack Vpga_place
