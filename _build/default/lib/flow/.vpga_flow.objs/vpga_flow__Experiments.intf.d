lib/flow/experiments.mli: Flow Vpga_logic Vpga_netlist Vpga_plb
