lib/flow/flow.mli: Vpga_netlist Vpga_plb
