lib/flow/report.ml: Experiments Flow Format List String Vpga_logic Vpga_plb
