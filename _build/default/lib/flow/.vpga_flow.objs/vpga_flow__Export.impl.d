lib/flow/export.ml: Array Buffer List Printf String Vpga_logic Vpga_netlist Vpga_pack Vpga_place Vpga_plb
