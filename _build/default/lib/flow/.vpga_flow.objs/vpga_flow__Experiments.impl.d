lib/flow/experiments.ml: Alu Firewire Float Flow Fpu List Netswitch Vpga_designs Vpga_logic Vpga_mapper Vpga_pack Vpga_place Vpga_plb Vpga_route Vpga_timing
