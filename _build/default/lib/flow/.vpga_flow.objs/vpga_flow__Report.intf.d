lib/flow/report.mli: Experiments Format
