(** Layout and netlist writers — the flow's output artifacts (the paper's
    flow "produces a GDSII description of the layout in the form of a
    regular array of PLBs"; these are the open equivalents).

    - {!verilog}: structural Verilog of a (mapped or generic) netlist, with
      every combinational node emitted as a sum-of-products [assign] and
      flops as [always @(posedge clk)] processes — simulatable by any
      Verilog tool.
    - {!def_}: a DEF-flavoured text dump of the die, component placements
      and (when packed) tile assignments.
    - {!svg}: a rendering of the PLB array with per-tile occupancy. *)

val verilog : Vpga_netlist.Netlist.t -> string

val def_ :
  ?packing:Vpga_pack.Quadrisect.t ->
  Vpga_place.Placement.t ->
  string

val svg : Vpga_pack.Quadrisect.t -> Vpga_place.Placement.t -> string

val write_file : string -> string -> unit
(** [write_file path contents]. *)
