module Config = Vpga_plb.Config
module S3 = Vpga_logic.S3

let hr ppf n = Format.fprintf ppf "%s@." (String.make n '-')

let table1 ppf rows =
  Format.fprintf ppf "Table 1: Die-Area (um^2)@.";
  hr ppf 78;
  Format.fprintf ppf "%-16s | %12s %12s | %12s %12s@." ""
    "Granular a" "Granular b" "LUT a" "LUT b";
  hr ppf 78;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s | %12.0f %12.0f | %12.0f %12.0f@."
        r.Experiments.name r.Experiments.granular.Flow.a.Flow.die_area
        r.Experiments.granular.Flow.b.Flow.die_area
        r.Experiments.lut.Flow.a.Flow.die_area
        r.Experiments.lut.Flow.b.Flow.die_area)
    rows;
  hr ppf 78

let table2 ppf rows =
  Format.fprintf ppf
    "Table 2: Path Slack 1-10 (ns, avg of 10 worst; 0.5 ns cycle)@.";
  hr ppf 88;
  Format.fprintf ppf "%-16s | %8s | %11s %11s | %11s %11s@." "" "kGates"
    "Granular a" "Granular b" "LUT a" "LUT b";
  hr ppf 88;
  List.iter
    (fun r ->
      let ns ps = ps /. 1000.0 in
      Format.fprintf ppf "%-16s | %8.1f | %11.3f %11.3f | %11.3f %11.3f@."
        r.Experiments.name
        (r.Experiments.granular.Flow.a.Flow.gate_count /. 1000.0)
        (ns r.Experiments.granular.Flow.a.Flow.avg_top10_slack)
        (ns r.Experiments.granular.Flow.b.Flow.avg_top10_slack)
        (ns r.Experiments.lut.Flow.a.Flow.avg_top10_slack)
        (ns r.Experiments.lut.Flow.b.Flow.avg_top10_slack))
    rows;
  hr ppf 88

let headlines ppf h =
  Format.fprintf ppf "Headline claims (paper Section 3.2 -> measured):@.";
  Format.fprintf ppf
    "  datapath die-area reduction (granular vs LUT, flow b): %5.1f%%  (paper ~32%%)@."
    (100.0 *. h.Experiments.datapath_area_reduction);
  Format.fprintf ppf
    "  FPU die-area reduction:                                %5.1f%%  (paper ~40%%)@."
    (100.0 *. h.Experiments.fpu_area_reduction);
  Format.fprintf ppf
    "  packing (a->b) area-overhead reduction:                %5.1f%%  (paper ~48%%)@."
    (100.0 *. h.Experiments.packing_overhead_reduction);
  Format.fprintf ppf
    "  Firewire area reversal (granular worse):               %5b  (paper: yes)@."
    h.Experiments.firewire_reversal;
  Format.fprintf ppf
    "  top-10 slack improvement (granular vs LUT, flow b):    %5.1f%%  (paper ~18%%)@."
    (100.0 *. h.Experiments.slack_improvement);
  Format.fprintf ppf
    "  slack-degradation (a->b) reduction:                    %5.1f%%  (paper ~68%%)@."
    (100.0 *. h.Experiments.degradation_reduction);
  Format.fprintf ppf
    "  legalization-displacement delta (granular vs LUT):     %5.1f%%  (measured; ~0 here)@."
    (100.0 *. h.Experiments.displacement_reduction)

let s3 ppf () =
  Format.fprintf ppf "S3 classification of the 256 3-input functions (Figure 2):@.";
  S3.pp_census ppf (S3.census ())

let full_adder ppf () =
  Format.fprintf ppf "Full-adder packing (Section 2.2):@.";
  List.iter
    (fun (arch, tiles) -> Format.fprintf ppf "  %-14s %d PLB tile(s)@." arch tiles)
    (Experiments.full_adder_tiles ())

let config_delays ppf () =
  Format.fprintf ppf
    "Logic configurations (Section 2.3): delay at 10 fF load, cell area@.";
  List.iter
    (fun (c, d, a) ->
      Format.fprintf ppf "  %-8s %7.1f ps %8.1f um^2@." (Config.name c) d a)
    (Experiments.config_delays ())

let compaction ppf scale =
  Format.fprintf ppf "Regularity-driven compaction (paper: ~15%% gate-area saving):@.";
  List.iter
    (fun (design, arch, before, after, gain) ->
      Format.fprintf ppf "  %-16s %-14s %9.0f -> %9.0f um^2  (%.1f%%)@." design
        arch before after (100.0 *. gain))
    (Experiments.compaction_table scale)

let config_distribution ppf rows =
  Format.fprintf ppf
    "Granular-PLB configuration distribution (paper: most LUT functions become NDMX/XOAMX):@.";
  List.iter
    (fun (design, hist) ->
      Format.fprintf ppf "  %-16s" design;
      List.iter
        (fun (c, n) -> Format.fprintf ppf " %s:%d" (Config.name c) n)
        hist;
      Format.fprintf ppf "@.")
    (Experiments.config_distribution rows)

let firewire_remedy ppf scale =
  Format.fprintf ppf
    "Domain-specific PLB exploration (paper future work): Firewire, flow b@.";
  List.iter
    (fun (arch, die, slack) ->
      Format.fprintf ppf "  %-14s die %8.0f um^2, top-10 slack %8.1f ps@." arch
        die slack)
    (Experiments.firewire_remedy scale)

let ablation ppf scale =
  Format.fprintf ppf
    "Ablation (granular ALU, flow b): refinement loop and criticality weighting@.";
  List.iter
    (fun (setting, (o : Flow.outcome)) ->
      Format.fprintf ppf
        "  %-26s die %8.0f um^2, wire %8.0f um, top-10 slack %8.1f ps@."
        setting o.Flow.die_area o.Flow.wirelength o.Flow.avg_top10_slack)
    (Experiments.ablation scale)

let power ppf rows =
  Format.fprintf ppf
    "Power (uW at the 0.5 ns cycle; flow b, post-layout loads):@.";
  Format.fprintf ppf "  %-16s %12s %12s@." "" "Granular" "LUT";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-16s %12.0f %12.0f@." r.Experiments.name
        r.Experiments.granular.Flow.b.Flow.power_uw
        r.Experiments.lut.Flow.b.Flow.power_uw)
    rows

let vias ppf scale =
  Format.fprintf ppf
    "Configuration vias programmed per design (the via-patterning cost):@.";
  List.iter
    (fun (design, arch, used) ->
      Format.fprintf ppf "  %-16s %-14s %8d vias@." design arch used)
    (Experiments.via_table scale)

let routing_styles ppf scale =
  Format.fprintf ppf
    "Routing-architecture exploration (paper future work): top-10 slack, ps@.";
  Format.fprintf ppf "  %-16s %12s %12s@." "" "custom" "regular";
  List.iter
    (fun (design, custom, regular) ->
      Format.fprintf ppf "  %-16s %12.1f %12.1f@." design custom regular)
    (Experiments.routing_styles scale)
