module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun
module Placement = Vpga_place.Placement
module Quadrisect = Vpga_pack.Quadrisect

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Sum-of-products Verilog expression for [fn] over named operands. *)
let sop_expr fn operands =
  let n = Bfun.arity fn in
  if Bfun.is_const fn then (if Bfun.eval fn 0 then "1'b1" else "1'b0")
  else begin
    let minterms = ref [] in
    for m = 0 to (1 lsl n) - 1 do
      if Bfun.eval fn m then begin
        let lits =
          List.init n (fun i ->
              if (m lsr i) land 1 = 1 then operands.(i)
              else "~" ^ operands.(i))
        in
        minterms := ("(" ^ String.concat " & " lits ^ ")") :: !minterms
      end
    done;
    String.concat " | " (List.rev !minterms)
  end

let verilog nl =
  let buf = Buffer.create 4096 in
  let name = sanitize (Netlist.design_name nl) in
  let wire id = Printf.sprintf "n%d" id in
  let inputs = Netlist.inputs nl and outputs = Netlist.outputs nl in
  let port_name node fallback =
    match node.Netlist.name with Some s -> sanitize s | None -> fallback
  in
  let ports =
    "clk"
    :: List.map (fun i -> port_name (Netlist.node nl i) (wire i)) inputs
    @ List.map (fun o -> port_name (Netlist.node nl o) (wire o)) outputs
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" name (String.concat ", " ports));
  Buffer.add_string buf "  input clk;\n";
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  input %s;\n" (port_name (Netlist.node nl i) (wire i))))
    inputs;
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  output %s;\n" (port_name (Netlist.node nl o) (wire o))))
    outputs;
  (* internal wires and flop registers *)
  Array.iter
    (fun node ->
      match node.Netlist.kind with
      | Kind.Input | Kind.Output -> ()
      | Kind.Dff ->
          Buffer.add_string buf
            (Printf.sprintf "  reg %s = 1'b0;\n" (wire node.Netlist.id))
      | _ ->
          Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (wire node.Netlist.id)))
    (Netlist.nodes nl);
  (* input aliases *)
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  wire %s = %s;\n" (wire i)
           (port_name (Netlist.node nl i) (wire i))))
    inputs;
  (* combinational logic *)
  Array.iter
    (fun node ->
      match node.Netlist.kind with
      | Kind.Input | Kind.Output | Kind.Dff -> ()
      | Kind.Const b ->
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = 1'b%d;\n" (wire node.Netlist.id)
               (if b then 1 else 0))
      | k ->
          let operands = Array.map wire node.Netlist.fanins in
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = %s; // %s\n" (wire node.Netlist.id)
               (sop_expr (Kind.fn k) operands)
               (Kind.name k)))
    (Netlist.nodes nl);
  (* flops *)
  if Netlist.flops nl <> [] then begin
    Buffer.add_string buf "  always @(posedge clk) begin\n";
    List.iter
      (fun f ->
        let d = (Netlist.node nl f).Netlist.fanins.(0) in
        Buffer.add_string buf
          (Printf.sprintf "    %s <= %s;\n" (wire f) (wire d)))
      (Netlist.flops nl);
    Buffer.add_string buf "  end\n"
  end;
  (* outputs *)
  List.iter
    (fun o ->
      let node = Netlist.node nl o in
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n"
           (port_name node (wire o))
           (wire node.Netlist.fanins.(0))))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let def_ ?packing pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "DESIGN %s ;\n" (Netlist.design_name nl));
  Buffer.add_string buf
    (Printf.sprintf "DIEAREA ( 0 0 ) ( %.1f %.1f ) ;\n" pl.Placement.die_w
       pl.Placement.die_h);
  (match packing with
  | Some q ->
      Buffer.add_string buf
        (Printf.sprintf "PLBARRAY %d BY %d TILE %s ;\n" q.Quadrisect.cols
           q.Quadrisect.rows q.Quadrisect.arch.Vpga_plb.Arch.name)
  | None -> ());
  let comps =
    Array.to_list (Netlist.nodes nl)
    |> List.filter (fun n ->
           match n.Netlist.kind with
           | Kind.Input | Kind.Output | Kind.Const _ -> false
           | _ -> true)
  in
  Buffer.add_string buf (Printf.sprintf "COMPONENTS %d ;\n" (List.length comps));
  List.iter
    (fun node ->
      let id = node.Netlist.id in
      let tile =
        match packing with
        | Some q when q.Quadrisect.tile_of_node.(id) >= 0 ->
            Printf.sprintf " TILE %d" q.Quadrisect.tile_of_node.(id)
        | Some _ | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  - n%d %s PLACED ( %.1f %.1f )%s ;\n" id
           (Kind.name node.Netlist.kind)
           pl.Placement.x.(id) pl.Placement.y.(id) tile))
    comps;
  Buffer.add_string buf "END DESIGN\n";
  Buffer.contents buf

let svg q pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let cols = q.Quadrisect.cols and rows = q.Quadrisect.rows in
  let occupancy = Array.make (cols * rows) 0 in
  Array.iter
    (fun t -> if t >= 0 then occupancy.(t) <- occupancy.(t) + 1)
    q.Quadrisect.tile_of_node;
  let cell = 14 in
  let w = (cols * cell) + 2 and h = (rows * cell) + 2 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       w h w h);
  Buffer.add_string buf
    (Printf.sprintf "<title>%s on %s (%dx%d PLB array)</title>\n"
       (Netlist.design_name nl) q.Quadrisect.arch.Vpga_plb.Arch.name cols rows);
  let max_occ = Array.fold_left max 1 occupancy in
  Array.iteri
    (fun t occ ->
      let c = t mod cols and r = t / cols in
      let shade = 255 - (occ * 200 / max_occ) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
            fill=\"rgb(%d,%d,255)\" stroke=\"#999\" stroke-width=\"0.5\"><title>tile %d: %d items</title></rect>\n"
           (1 + (c * cell))
           (1 + (r * cell))
           cell cell shade shade t occ))
    occupancy;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  (try output_string oc contents
   with e ->
     close_out oc;
     raise e);
  close_out oc
