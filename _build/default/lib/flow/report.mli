(** Text renderers for the paper's tables (printed by the bench harness and
    the [vpga] CLI). *)

val table1 : Format.formatter -> Experiments.row list -> unit
(** Paper Table 1: die area (um^2) per design, granular vs LUT PLB, flows a
    and b. *)

val table2 : Format.formatter -> Experiments.row list -> unit
(** Paper Table 2: average slack over the 10 most critical paths (ns). *)

val headlines : Format.formatter -> Experiments.headline -> unit
val s3 : Format.formatter -> unit -> unit
val full_adder : Format.formatter -> unit -> unit
val config_delays : Format.formatter -> unit -> unit
val compaction : Format.formatter -> Experiments.scale -> unit
val config_distribution : Format.formatter -> Experiments.row list -> unit
val firewire_remedy : Format.formatter -> Experiments.scale -> unit
val ablation : Format.formatter -> Experiments.scale -> unit
val power : Format.formatter -> Experiments.row list -> unit
val vias : Format.formatter -> Experiments.scale -> unit
val routing_styles : Format.formatter -> Experiments.scale -> unit
