module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Simulate = Vpga_netlist.Simulate
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize
module Config = Vpga_plb.Config

let activities ?(cycles = 256) ~seed nl =
  let n = Netlist.size nl in
  let rng = Random.State.make [| seed |] in
  let sim = Simulate.create nl in
  Simulate.reset sim;
  let npi = List.length (Netlist.inputs nl) in
  let toggles = Array.make n 0 in
  let prev = Array.make n false in
  for cycle = 1 to cycles do
    let pi = Array.init npi (fun _ -> Random.State.bool rng) in
    ignore (Simulate.step sim pi);
    for id = 0 to n - 1 do
      let v = Simulate.value sim id in
      if cycle > 1 && v <> prev.(id) then toggles.(id) <- toggles.(id) + 1;
      prev.(id) <- v
    done
  done;
  Array.map (fun t -> float_of_int t /. float_of_int (max 1 (cycles - 1))) toggles

type report = { dynamic_uw : float; leakage_uw : float; total_uw : float }

(* Synthetic-technology constants (see DESIGN.md). *)
let leakage_uw_per_um2 = 0.004
let internal_cap_factor = 1.5

let node_area n =
  match n.Netlist.kind with
  | Kind.Dff -> (Characterize.find "dff").Cell.area
  | Kind.Mapped { cell; _ } -> (
      match Config.of_cell_name cell with
      | Some c -> Config.cell_area c
      | None -> (Characterize.find cell).Cell.area)
  | Kind.Buf | Kind.Inv -> (Characterize.find "inv").Cell.area
  | _ -> 0.0

let estimate ?(period = 500.0) ?(vdd = 1.8) ?(wire = fun _ -> (0.0, 0.0))
    ~activities nl =
  let n = Netlist.size nl in
  if Array.length activities <> n then
    invalid_arg "Power.estimate: activity vector size mismatch";
  let fanout = Netlist.fanout nl in
  let freq_ghz = 1000.0 /. period in
  (* per node: switched cap = sink pins + wire + internal *)
  let dynamic = ref 0.0 in
  let leakage = ref 0.0 in
  for id = 0 to n - 1 do
    let node = Netlist.node nl id in
    let sink_cap =
      Array.fold_left
        (fun acc s -> acc +. Sta.pin_cap (Netlist.node nl s))
        0.0 fanout.(id)
    in
    let wire_cap, _ = wire id in
    let internal =
      internal_cap_factor *. Sta.pin_cap node
    in
    let cap_ff = sink_cap +. wire_cap +. internal in
    (* 0.5 * a * C * V^2 * f; fF * V^2 * GHz = uW *)
    dynamic := !dynamic +. (0.5 *. activities.(id) *. cap_ff *. vdd *. vdd *. freq_ghz);
    leakage := !leakage +. (leakage_uw_per_um2 *. node_area node)
  done;
  { dynamic_uw = !dynamic; leakage_uw = !leakage; total_uw = !dynamic +. !leakage }
