lib/timing/sta.ml: Array Float Lazy List Vpga_cells Vpga_netlist Vpga_plb
