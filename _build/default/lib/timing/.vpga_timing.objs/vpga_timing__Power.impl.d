lib/timing/power.ml: Array List Random Sta Vpga_cells Vpga_netlist Vpga_plb
