lib/timing/sta.mli: Vpga_netlist
