lib/timing/power.mli: Vpga_netlist
