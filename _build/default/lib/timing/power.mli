(** Power estimation for mapped netlists.

    The paper's cell-selection criterion is a "good power-delay tradeoff"
    and its LUT critique covers "delay, power and area"; this module
    supplies the power axis: switching activities from random simulation,
    dynamic power from switched capacitance ([0.5 a C Vdd^2 f]), and an
    area-proportional leakage term. *)

val activities : ?cycles:int -> seed:int -> Vpga_netlist.Netlist.t -> float array
(** Per-node toggle rate (transitions per clock cycle) measured by driving
    [cycles] (default 256) uniform-random input vectors from reset. *)

type report = {
  dynamic_uw : float;  (** switched-capacitance power, uW *)
  leakage_uw : float;
  total_uw : float;
}

val estimate :
  ?period:float ->
  ?vdd:float ->
  ?wire:(int -> float * float) ->
  activities:float array ->
  Vpga_netlist.Netlist.t ->
  report
(** [period] ps (default 500), [vdd] volts (default 1.8), [wire] as in
    {!Sta.run}.  Capacitances are the same sink-pin + wire loads STA uses,
    so power and timing see one consistent extraction. *)
