(** Static timing analysis over a technology-mapped netlist with extracted
    wire parasitics — the post-layout timing step of the flow (paper: "static
    timing analysis ... with data from post-layout extraction").

    All times in ps.  Single clock; endpoints are flop D pins (required =
    period - setup) and primary outputs (required = period). *)

type endpoint = { node : int;  (** endpoint node id (flop or output) *) slack : float }

type result = {
  period : float;
  arrival : float array;  (** per node: output arrival time *)
  slack : float array;  (** per node: worst slack of paths through it *)
  endpoints : endpoint list;  (** ascending by slack *)
  wns : float;  (** worst negative slack (min endpoint slack) *)
  critical_path : int list;  (** node ids, source to endpoint *)
}

val run :
  ?period:float ->
  ?wire:(int -> float * float) ->
  Vpga_netlist.Netlist.t ->
  result
(** [run ~period ~wire nl] — [wire driver] returns (wire capacitance fF,
    wire resistance ps/fF) of the driver's net; default models an ideal
    (zero-parasitic) interconnect.  [period] defaults to 500 ps (the paper's
    0.5 ns cycle time).
    @raise Invalid_argument on a netlist with unmapped generic gates. *)

val top_slacks : result -> int -> float list
(** The [n] worst endpoint slacks (the paper's "Path Slack 1-10" metric). *)

val average_top_slack : result -> int -> float

val pin_cap : Vpga_netlist.Netlist.node -> float
(** Input-pin capacitance of a node (fF), as used for loads — shared with
    the power model. *)

val criticality : result -> float array
(** Per-node criticality in [0,1]: 1 on the critical path, 0 on paths with a
    full period of slack.  Feeds the placement/packing cost functions. *)
