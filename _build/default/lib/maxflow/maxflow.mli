(** Dinic max-flow / min-cut on small directed graphs.

    This is the kernel of the FlowMap-style clustering used by the paper's
    logic-compaction step: node-split unit-capacity networks whose min cut
    answers "is there a k-feasible cut?". *)

type t

val create : int -> t
(** [create n] makes an empty flow network with nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (a reverse residual edge of capacity 0 is added
    automatically).  [cap] may be [max_int] for infinity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes the max flow; saturates at [max_int] if the sink is reachable
    through infinite-capacity paths only.  May be called once per network. *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow}: nodes reachable from the source in the residual graph
    (the source side of a minimum cut). *)

val infinity : int
