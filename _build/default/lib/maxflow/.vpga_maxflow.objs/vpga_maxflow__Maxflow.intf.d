lib/maxflow/maxflow.mli:
