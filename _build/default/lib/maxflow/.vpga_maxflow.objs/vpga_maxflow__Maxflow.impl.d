lib/maxflow/maxflow.ml: Array List Queue
