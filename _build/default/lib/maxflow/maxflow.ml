(* Dinic's algorithm with adjacency stored as a flat edge list; edge i and
   its residual partner are (i lxor 1). *)

type t = {
  n : int;
  mutable edges_dst : int array;
  mutable edges_cap : int array;
  mutable edge_count : int;
  adj : int list array; (* per-node edge indices, reversed *)
  mutable adj_frozen : int array array option;
  level : int array;
  iter : int array;
}

let infinity = max_int

let create n =
  {
    n;
    edges_dst = Array.make 16 0;
    edges_cap = Array.make 16 0;
    edge_count = 0;
    adj = Array.make n [];
    adj_frozen = None;
    level = Array.make n (-1);
    iter = Array.make n 0;
  }

let grow t =
  if t.edge_count + 2 > Array.length t.edges_dst then begin
    let len = 2 * Array.length t.edges_dst in
    let dst = Array.make len 0 and cap = Array.make len 0 in
    Array.blit t.edges_dst 0 dst 0 t.edge_count;
    Array.blit t.edges_cap 0 cap 0 t.edge_count;
    t.edges_dst <- dst;
    t.edges_cap <- cap
  end

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if t.adj_frozen <> None then invalid_arg "Maxflow.add_edge: already solved";
  grow t;
  let e = t.edge_count in
  t.edges_dst.(e) <- dst;
  t.edges_cap.(e) <- cap;
  t.edges_dst.(e + 1) <- src;
  t.edges_cap.(e + 1) <- 0;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst);
  t.edge_count <- t.edge_count + 2

let freeze t =
  match t.adj_frozen with
  | Some a -> a
  | None ->
      let a = Array.map (fun l -> Array.of_list (List.rev l)) t.adj in
      t.adj_frozen <- Some a;
      a

let bfs t adj ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(source) <- 0;
  Queue.push source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        let v = t.edges_dst.(e) in
        if t.edges_cap.(e) > 0 && t.level.(v) < 0 then begin
          t.level.(v) <- t.level.(u) + 1;
          Queue.push v q
        end)
      adj.(u)
  done;
  t.level.(sink) >= 0

let rec dfs t adj u ~sink pushed =
  if u = sink then pushed
  else begin
    let res = ref 0 in
    let a = adj.(u) in
    while !res = 0 && t.iter.(u) < Array.length a do
      let e = a.(t.iter.(u)) in
      let v = t.edges_dst.(e) in
      if t.edges_cap.(e) > 0 && t.level.(v) = t.level.(u) + 1 then begin
        let d = dfs t adj v ~sink (min pushed t.edges_cap.(e)) in
        if d > 0 then begin
          if t.edges_cap.(e) <> infinity then
            t.edges_cap.(e) <- t.edges_cap.(e) - d;
          if t.edges_cap.(e lxor 1) <> infinity then
            t.edges_cap.(e lxor 1) <- t.edges_cap.(e lxor 1) + d;
          res := d
        end
        else t.iter.(u) <- t.iter.(u) + 1
      end
      else t.iter.(u) <- t.iter.(u) + 1
    done;
    !res
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let adj = freeze t in
  let flow = ref 0 in
  while !flow <> infinity && bfs t adj ~source ~sink do
    Array.fill t.iter 0 t.n 0;
    let rec pump () =
      let f = dfs t adj source ~sink infinity in
      if f = infinity then flow := infinity
      else if f > 0 then begin
        if !flow <> infinity then flow := !flow + f;
        pump ()
      end
    in
    pump ()
  done;
  if !flow = infinity then infinity else !flow

let min_cut_side t ~source =
  let adj = freeze t in
  let side = Array.make t.n false in
  let q = Queue.create () in
  side.(source) <- true;
  Queue.push source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        let v = t.edges_dst.(e) in
        if t.edges_cap.(e) > 0 && not side.(v) then begin
          side.(v) <- true;
          Queue.push v q
        end)
      adj.(u)
  done;
  side
