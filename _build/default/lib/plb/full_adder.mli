(** Section 2.2: packing a full adder into a single granular PLB.

    Sum = A xor B xor Cin uses the XOA (propagate P = A xor B) chained into a
    second MUX; Cout = P.Cin + (not P).G reuses P as the select of the third
    MUX, with the generate G = A.B on the ND3WI gate. *)

val reference : unit -> Vpga_netlist.Netlist.t
(** Behavioural full adder (XOR3 + MAJ3) for equivalence checking. *)

val granular_realization : unit -> Vpga_netlist.Netlist.t
(** The paper's single-PLB realization as a mapped netlist over granular
    component cells (xoa, mux2, nd3wi). *)

val items : unit -> Packer.item list
(** The resource items of the realization (for {!Packer.fits}). *)

val tiles_needed : Arch.t -> int
(** 1 on the granular PLB; 2 on the LUT-based PLB (sum and carry each burn a
    3-LUT since neither is ND3WI-feasible). *)
