lib/plb/arch.ml: Format List Printf String Vpga_cells
