lib/plb/packer.ml: Arch Config List Vector Vpga_logic
