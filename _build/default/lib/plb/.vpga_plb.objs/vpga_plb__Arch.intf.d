lib/plb/arch.mli: Format Vpga_cells
