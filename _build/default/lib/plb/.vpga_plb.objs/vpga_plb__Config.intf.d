lib/plb/config.mli: Arch Format Vpga_cells Vpga_logic
