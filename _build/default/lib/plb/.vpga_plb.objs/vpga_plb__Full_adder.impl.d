lib/plb/full_adder.ml: Arch Config Packer Vpga_logic Vpga_netlist
