lib/plb/full_adder.mli: Arch Packer Vpga_netlist
