lib/plb/packer.mli: Arch Config Vpga_logic
