lib/plb/config.ml: Arch Format Hashtbl Lazy List String Vpga_cells Vpga_logic
