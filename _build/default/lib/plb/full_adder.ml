module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun

let reference () =
  let nl = Netlist.create ~name:"fa_ref" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let cin = Netlist.input nl "cin" in
  let sum = Netlist.gate nl Kind.Xor3 [| a; b; cin |] in
  let cout = Netlist.gate nl Kind.Maj3 [| a; b; cin |] in
  ignore (Netlist.output nl "sum" sum);
  ignore (Netlist.output nl "cout" cout);
  nl

let xor2 = Bfun.(var ~arity:2 0 ^^^ var ~arity:2 1)
let and2 = Bfun.(var ~arity:2 0 &&& var ~arity:2 1)
let mux3 = Bfun.(mux ~sel:(var ~arity:3 0) (var ~arity:3 1) (var ~arity:3 2))

let granular_realization () =
  let nl = Netlist.create ~name:"fa_granular" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let cin = Netlist.input nl "cin" in
  (* P = a xor b on the XOA; shared by the sum and carry paths. *)
  let p = Netlist.gate nl (Kind.Mapped { cell = "xoa"; fn = xor2 }) [| a; b |] in
  (* sum = P xor cin on the second MUX. *)
  let sum =
    Netlist.gate nl (Kind.Mapped { cell = "mux2"; fn = xor2 }) [| p; cin |]
  in
  (* G = a.b on the ND3WI (third input tied). *)
  let g = Netlist.gate nl (Kind.Mapped { cell = "nd3wi"; fn = and2 }) [| a; b |] in
  (* Cout = mux(P; G, cin) on the third MUX. *)
  let cout =
    Netlist.gate nl (Kind.Mapped { cell = "mux2"; fn = mux3 }) [| p; g; cin |]
  in
  ignore (Netlist.output nl "sum" sum);
  ignore (Netlist.output nl "cout" cout);
  nl

(* As tile items: the sum path is an XOAMX (XOA chained into a MUX); the
   carry path adds one MUX plus the ND3WI — the NDMX-shaped resource demand.
   The XOA is counted once, in the sum item. *)
let items () =
  let xor3 = Bfun.(var ~arity:3 0 ^^^ var ~arity:3 1 ^^^ var ~arity:3 2) in
  [
    Packer.item Config.Xoamx xor3;
    { Packer.config = Config.Ndmx; pins = 1 (* cin; a,b already in tile *); flop = false };
  ]

let tiles_needed arch =
  if arch.Arch.name = "granular_plb" then Packer.tiles_needed arch (items ())
  else
    (* On the LUT-based PLB each output picks its own configuration; neither
       XOR3 nor MAJ3 is ND3WI-feasible, so each burns a 3-LUT. *)
    let v i = Bfun.var ~arity:3 i in
    let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2) in
    let maj3 = Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2)) in
    Packer.tiles_needed arch
      [
        Packer.item (Config.choose arch xor3) xor3;
        Packer.item (Config.choose arch maj3) maj3;
      ]
