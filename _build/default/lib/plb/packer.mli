(** Intra-PLB resource packing: which sets of logic configurations (plus a
    flop) can share a single PLB tile.

    The paper's examples for the granular PLB — three MX plus one ND3; one
    MX, one XOAMX and one ND3; one NDMX plus one XOAMX (the second NDMX
    realized on the XOA); a full adder in a single tile — all follow from
    the resource vectors in {!Config.demand}. *)

type item = { config : Config.t; pins : int; flop : bool }
(** One function to place in a tile: its configuration, the number of
    distinct external input signals it needs, and whether its output is
    registered in the tile's flop. *)

val item : ?flop:bool -> Config.t -> Vpga_logic.Bfun.t -> item
(** Build an item from a configuration and the function it implements (pin
    count = support size). *)

val fits : Arch.t -> item list -> bool
(** Resource-vector, pin and flop feasibility of co-locating the items in a
    single tile (backtracking over demand alternatives). *)

val pack : Arch.t -> item list -> item list list
(** First-fit-decreasing bin packing of items into tiles; every returned
    tile satisfies {!fits}.  Deterministic. *)

val tiles_needed : Arch.t -> item list -> int
