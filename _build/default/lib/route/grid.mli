(** Global-routing grid: the die divided into bins, with a capacity (track
    count) on every bin-to-bin boundary.  This models the VPGA's ASIC-style
    routing on the metal layers above the PLB array. *)

type t = {
  cols : int;
  rows : int;
  bin_w : float;  (** um *)
  bin_h : float;
  capacity : int;  (** tracks per boundary *)
  usage : int array;  (** per edge *)
  history : float array;  (** PathFinder history cost, per edge *)
}

val create : cols:int -> rows:int -> bin_w:float -> bin_h:float -> capacity:int -> t

val of_placement : ?target_cols:int -> ?capacity:int -> Vpga_place.Placement.t -> t
(** Grid sized from a placement's die: ~45 um bins (8-48 columns) and a
    boundary capacity proportional to bin size ({!tracks_per_um}). *)

val tracks_per_um : float
(** Routing tracks per um of bin boundary in the synthetic technology. *)

val bin_of : t -> x:float -> y:float -> int
(** Bin index containing a coordinate (clamped to the die). *)

val num_bins : t -> int
val num_edges : t -> int

val neighbors : t -> int -> (int * int) list
(** [(edge, bin)] pairs adjacent to a bin. *)

val edge_between : t -> int -> int -> int
(** Edge index between two adjacent bins. @raise Invalid_argument otherwise. *)

val edge_length : t -> int -> float
(** Physical length represented by crossing an edge, um. *)

val overflow : t -> int
(** Total usage above capacity, summed over edges. *)

val center : t -> int -> float * float
