type t = {
  cols : int;
  rows : int;
  bin_w : float;
  bin_h : float;
  capacity : int;
  usage : int array;
  history : float array;
}

(* Edge layout: horizontal edges first ((cols-1) * rows of them, edge c,r =
   r*(cols-1)+c between bins (c,r) and (c+1,r)), then vertical edges
   (cols * (rows-1), edge c,r = base + r*cols+c between (c,r) and (c,r+1)). *)

let num_h t = (t.cols - 1) * t.rows
let num_edges t = num_h t + (t.cols * (t.rows - 1))
let num_bins t = t.cols * t.rows

let create ~cols ~rows ~bin_w ~bin_h ~capacity =
  if cols < 1 || rows < 1 then invalid_arg "Grid.create: empty grid";
  let t =
    { cols; rows; bin_w; bin_h; capacity; usage = [||]; history = [||] }
  in
  let e = num_edges t in
  { t with usage = Array.make (max 1 e) 0; history = Array.make (max 1 e) 0.0 }

(* Routing tracks available per um of bin boundary: a handful of metal
   layers at sub-um pitch (see DESIGN.md's synthetic technology). *)
let tracks_per_um = 4.0

let of_placement ?target_cols ?capacity pl =
  let die_w = pl.Vpga_place.Placement.die_w in
  let die_h = pl.Vpga_place.Placement.die_h in
  let cols =
    match target_cols with
    | Some c -> max 2 c
    | None ->
        (* target ~45 um bins *)
        min 48 (max 8 (int_of_float (Float.round (die_w /. 45.0))))
  in
  let rows =
    max 2
      (int_of_float (Float.round (float_of_int cols *. die_h /. max 1e-6 die_w)))
  in
  let bin_w = die_w /. float_of_int cols in
  let bin_h = die_h /. float_of_int rows in
  let capacity =
    match capacity with
    | Some c -> c
    | None -> max 8 (int_of_float (min bin_w bin_h *. tracks_per_um))
  in
  create ~cols ~rows ~bin_w ~bin_h ~capacity

let bin_of t ~x ~y =
  let c = min (t.cols - 1) (max 0 (int_of_float (x /. t.bin_w))) in
  let r = min (t.rows - 1) (max 0 (int_of_float (y /. t.bin_h))) in
  (r * t.cols) + c

let coords t b = (b mod t.cols, b / t.cols)

let h_edge t c r = (r * (t.cols - 1)) + c
let v_edge t c r = num_h t + (r * t.cols) + c

let neighbors t b =
  let c, r = coords t b in
  let acc = ref [] in
  if c > 0 then acc := (h_edge t (c - 1) r, b - 1) :: !acc;
  if c < t.cols - 1 then acc := (h_edge t c r, b + 1) :: !acc;
  if r > 0 then acc := (v_edge t c (r - 1), b - t.cols) :: !acc;
  if r < t.rows - 1 then acc := (v_edge t c r, b + t.cols) :: !acc;
  !acc

let edge_between t a b =
  let ca, ra = coords t a and cb, rb = coords t b in
  if ra = rb && abs (ca - cb) = 1 then h_edge t (min ca cb) ra
  else if ca = cb && abs (ra - rb) = 1 then v_edge t ca (min ra rb)
  else invalid_arg "Grid.edge_between: bins not adjacent"

let edge_length t e = if e < num_h t then t.bin_w else t.bin_h

let overflow t =
  Array.fold_left (fun acc u -> acc + max 0 (u - t.capacity)) 0 t.usage

let center t b =
  let c, r = coords t b in
  ((float_of_int c +. 0.5) *. t.bin_w, (float_of_int r +. 0.5) *. t.bin_h)
