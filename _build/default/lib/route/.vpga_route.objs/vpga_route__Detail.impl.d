lib/route/detail.ml: Array Grid Hashtbl List Option Printf Router String
