lib/route/pathfinder.mli: Grid Router Vpga_place
