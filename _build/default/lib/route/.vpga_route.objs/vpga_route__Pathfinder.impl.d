lib/route/pathfinder.ml: Array Grid Hashtbl List Router Vpga_place
