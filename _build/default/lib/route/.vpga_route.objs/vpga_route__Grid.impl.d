lib/route/grid.ml: Array Float Vpga_place
