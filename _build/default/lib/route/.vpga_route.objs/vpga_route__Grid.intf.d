lib/route/grid.mli: Vpga_place
