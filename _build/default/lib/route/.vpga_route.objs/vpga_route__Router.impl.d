lib/route/router.ml: Array Float Grid Int List Set
