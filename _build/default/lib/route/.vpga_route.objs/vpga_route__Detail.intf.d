lib/route/detail.mli: Grid Hashtbl Router
