lib/route/router.mli: Grid
