(** Maze routing: A* tree growth for multi-terminal nets with
    congestion-aware edge costs. *)

type route = {
  net : int array;  (** netlist node ids (driver first) *)
  edges : int list;  (** grid edge indices used *)
  wirelength : float;  (** um *)
}

val route_net :
  Grid.t -> pres_fac:float -> pins:int list -> int list option
(** Route a single net over the given pin bins; returns the edges used (empty
    when all pins share a bin), or [None] if disconnected (cannot happen on a
    grid).  Updates no usage — caller commits. *)

val commit : Grid.t -> int list -> unit
val uncommit : Grid.t -> int list -> unit

val wirelength_of : Grid.t -> int list -> float
