(** Technology mapping onto the restricted component-cell library of a PLB
    architecture — the Design-Compiler substitute of the flow's
    "Synthesis, Mapping" box.

    Mapping is {e local} (one generic gate at a time, like tree covering
    against a small library): each gate's function is realized with the
    cheapest component-cell structure of the target architecture.  Cross-gate
    restructuring is deliberately left to the regularity-driven
    {!Compact} step, whose benefit the paper quantifies separately. *)

val map : Vpga_plb.Arch.t -> Vpga_netlist.Netlist.t -> Vpga_netlist.Netlist.t
(** Returns an equivalent netlist whose combinational nodes are all
    [Kind.Mapped] component cells of the architecture's library
    (plus DFFs). *)

val cell_area : Vpga_netlist.Netlist.t -> float
(** Total component-cell area of a mapped netlist, um^2 (the paper's "total
    gate area").  DFFs included; primary I/O excluded. *)

val cell_area_of_node : Vpga_netlist.Netlist.node -> float
(** Area of one node: component-cell or configuration area for mapped nodes,
    a NAND2-equivalent estimate for generic gates, 0 for I/O. *)
