module Aig = Vpga_aig.Aig
module Maxflow = Vpga_maxflow.Maxflow

(* Transitive fanin cone of [t] (node ids, including [t], PIs and const). *)
let cone aig t =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      if (not (Aig.is_pi aig id)) && not (Aig.is_const id) then begin
        let l0, l1 = Aig.fanins aig id in
        visit (Aig.node_of l0);
        visit (Aig.node_of l1)
      end
    end
  in
  visit t;
  seen

(* Does node [t] admit a k-feasible cut all of whose leaves have labels < p,
   where p is the max fanin label?  Decided by max-flow on the node-split
   cone with label-p nodes collapsed into the sink. *)
let min_height_cut_exists aig ~k t labels =
  let l0, l1 = Aig.fanins aig t in
  let p = max labels.(Aig.node_of l0) labels.(Aig.node_of l1) in
  let members = cone aig t in
  let collapsed id = id = t || labels.(id) = p in
  (* Assign flow-network indices to non-collapsed cone nodes. *)
  let index = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id () ->
      if not (collapsed id) then Hashtbl.add index id (Hashtbl.length index))
    members;
  let n_split = Hashtbl.length index in
  let source = 0 and sink = 1 in
  let v_in id = 2 + (2 * Hashtbl.find index id) in
  let v_out id = 3 + (2 * Hashtbl.find index id) in
  let net = Maxflow.create (2 + (2 * n_split)) in
  let inf = Maxflow.infinity in
  (* Node capacities. *)
  Hashtbl.iter
    (fun id () ->
      if not (collapsed id) then
        Maxflow.add_edge net ~src:(v_in id) ~dst:(v_out id) ~cap:1)
    members;
  let infeasible = ref false in
  (* Source feeds the cone's own sources (PIs / const). *)
  Hashtbl.iter
    (fun id () ->
      if Aig.is_pi aig id || Aig.is_const id then
        if collapsed id then infeasible := true
        else Maxflow.add_edge net ~src:source ~dst:(v_in id) ~cap:inf)
    members;
  (* Internal edges. *)
  Hashtbl.iter
    (fun id () ->
      if (not (Aig.is_pi aig id)) && not (Aig.is_const id) then begin
        let f0, f1 = Aig.fanins aig id in
        let connect src_id =
          if not (collapsed src_id) then
            Maxflow.add_edge net ~src:(v_out src_id)
              ~dst:(if collapsed id then sink else v_in id)
              ~cap:inf
        in
        connect (Aig.node_of f0);
        connect (Aig.node_of f1)
      end)
    members;
  if !infeasible then false
  else Maxflow.max_flow net ~source ~sink <= k

let labels aig ~k =
  let n = Aig.size aig in
  let labels = Array.make n 0 in
  for id = 1 to n - 1 do
    if not (Aig.is_pi aig id) then begin
      let l0, l1 = Aig.fanins aig id in
      let p = max labels.(Aig.node_of l0) labels.(Aig.node_of l1) in
      labels.(id) <-
        (if min_height_cut_exists aig ~k id labels then p else p + 1)
    end
  done;
  labels

let depth aig ~k = Array.fold_left max 0 (labels aig ~k)
