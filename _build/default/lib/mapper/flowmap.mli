(** Exact FlowMap labeling (Cong & Ding) via max-flow min-cut — the
    "maxflow-mincut algorithm similar to Flowmap" the paper's compaction is
    built on.

    [label v] is the depth of a depth-optimal k-feasible-cut cover at node
    [v]; a node's label exceeds the max fanin label only when no k-feasible
    cut of that height exists, decided by a unit-node-capacity max-flow
    computation on the collapsed fanin cone.

    Exact labeling is quadratic; use it on blocks up to a few thousand AND
    nodes (the production cover in {!Compact} uses priority cuts instead,
    which this module's tests cross-validate). *)

val labels : Vpga_aig.Aig.t -> k:int -> int array
(** Per-node FlowMap label; PIs and the constant are 0. *)

val depth : Vpga_aig.Aig.t -> k:int -> int
(** Maximum label = depth of the depth-optimal k-LUT mapping. *)

val min_height_cut_exists : Vpga_aig.Aig.t -> k:int -> int -> int array -> bool
(** [min_height_cut_exists aig ~k v labels] decides, via max-flow, whether
    node [v] has a k-feasible cut all of whose leaves have labels strictly
    below the maximum fanin label (exposed for testing). *)
