lib/mapper/flowmap.ml: Array Hashtbl Vpga_aig Vpga_maxflow
