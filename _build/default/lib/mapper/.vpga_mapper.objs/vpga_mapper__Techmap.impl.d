lib/mapper/techmap.ml: Array Fun List Vpga_cells Vpga_logic Vpga_netlist Vpga_plb
