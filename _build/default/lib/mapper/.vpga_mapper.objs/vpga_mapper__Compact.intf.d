lib/mapper/compact.mli: Vpga_netlist Vpga_plb
