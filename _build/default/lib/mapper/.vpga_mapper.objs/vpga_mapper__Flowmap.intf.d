lib/mapper/flowmap.mli: Vpga_aig
