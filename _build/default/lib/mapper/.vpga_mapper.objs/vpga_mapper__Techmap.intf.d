lib/mapper/techmap.mli: Vpga_netlist Vpga_plb
