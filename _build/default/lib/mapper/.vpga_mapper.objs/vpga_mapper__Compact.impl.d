lib/mapper/compact.ml: Array Hashtbl List Option Printf Vpga_aig Vpga_logic Vpga_netlist Vpga_plb
