module Bfun = Vpga_logic.Bfun
module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Aig = Vpga_aig.Aig
module Cut = Vpga_aig.Cut
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config

let cut_k = 3
let max_cuts = 16

let config_of_tt arch tt = Config.choose arch (Bfun.extend tt ~arity:3)

(* Cover cost: the share of a PLB tile the supernode's configuration will
   occupy after packing (see {!Config.tile_cost}). *)
let cut_area arch (c : Cut.t) = Config.tile_cost arch (config_of_tt arch c.Cut.tt)

(* Cover selection over the AIG.  [`Area] minimizes area flow (the paper's
   compaction objective); [`Depth] minimizes estimated arrival first, with
   area flow as the tiebreak (the Design-Compiler-style timing-driven
   mode). *)
let select_cover ?(objective = `Area) arch bound =
  let aig = bound.Aig.aig in
  let n = Aig.size aig in
  let cuts = Cut.enumerate aig ~k:cut_k ~max_cuts in
  (* Reference estimate: structural fanout plus root references. *)
  let refs = Array.make n 0 in
  for id = 1 to n - 1 do
    if not (Aig.is_pi aig id) then begin
      let l0, l1 = Aig.fanins aig id in
      refs.(Aig.node_of l0) <- refs.(Aig.node_of l0) + 1;
      refs.(Aig.node_of l1) <- refs.(Aig.node_of l1) + 1
    end
  done;
  List.iter
    (fun (_, l) -> refs.(Aig.node_of l) <- refs.(Aig.node_of l) + 1)
    bound.Aig.roots;
  let area_flow = Array.make n 0.0 in
  let arrival = Array.make n 0.0 in
  let best_cut = Array.make n None in
  let nominal_load = 10.0 in
  for id = 1 to n - 1 do
    if not (Aig.is_pi aig id) then begin
      let eval_area (c : Cut.t) =
        Array.fold_left
          (fun acc leaf -> acc +. area_flow.(leaf))
          (cut_area arch c) c.Cut.leaves
      in
      let eval_arrival (c : Cut.t) =
        let at =
          Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0.0 c.Cut.leaves
        in
        at +. Config.delay (config_of_tt arch c.Cut.tt) ~load:nominal_load
      in
      let better c (bc, ba, bt) =
        let a = eval_area c and t = eval_arrival c in
        let wins =
          match objective with
          | `Area -> a < ba || (a = ba && t < bt)
          | `Depth -> t < bt || (t = bt && a < ba)
        in
        if wins then (Some c, a, t) else (bc, ba, bt)
      in
      let candidates =
        List.filter (fun c -> Cut.leaf_count c > 1 || c.Cut.leaves.(0) <> id)
          cuts.(id)
      in
      let chosen, a, t =
        List.fold_left
          (fun acc c -> better c acc)
          (None, infinity, infinity) candidates
      in
      match chosen with
      | None -> assert false (* AND nodes always have their fanin cut *)
      | Some c ->
          best_cut.(id) <- Some c;
          area_flow.(id) <- a /. float_of_int (max 1 refs.(id));
          arrival.(id) <- t
    end
  done;
  (cuts, best_cut)

(* Nodes actually used by the cover, reachable from the roots through the
   chosen cuts. *)
let needed_nodes aig roots best_cut =
  let needed = Hashtbl.create 256 in
  let rec visit id =
    if not (Hashtbl.mem needed id) then begin
      Hashtbl.add needed id ();
      if (not (Aig.is_const id)) && not (Aig.is_pi aig id) then
        match best_cut.(id) with
        | Some c -> Array.iter visit c.Cut.leaves
        | None -> assert false
    end
  in
  List.iter (fun (_, l) -> visit (Aig.node_of l)) roots;
  needed

(* Full-adder extraction (paper Section 2.2): among supernodes sharing the
   same three leaves, a 3-input-XOR "sum" will be realized as an XOAMX whose
   first stage is the propagate P = x_i xor x_j; sibling supernodes of the
   form mux(P; source, source) — e.g. the majority carry — can then occupy a
   single extra MUX ([Config.Carry]) instead of their own XOA.  Only
   meaningful on architectures that have MUX resources. *)
let carry_overrides arch aig best_cut needed =
  let overrides = Hashtbl.create 16 in
  if Arch.Vector.get arch.Arch.capacity Arch.Mux = 0 then overrides
  else begin
    let groups = Hashtbl.create 64 in
    Hashtbl.iter
      (fun id () ->
        if (not (Aig.is_const id)) && not (Aig.is_pi aig id) then
          match best_cut.(id) with
          | Some c when Cut.leaf_count c = 3 ->
              let key = Array.to_list c.Cut.leaves in
              Hashtbl.replace groups key
                ((id, c.Cut.tt)
                :: Option.value ~default:[] (Hashtbl.find_opt groups key))
          | Some _ | None -> ())
      needed;
    let xor3 = Bfun.(var ~arity:3 0 ^^^ var ~arity:3 1 ^^^ var ~arity:3 2) in
    Hashtbl.iter
      (fun _key members ->
        let sums =
          List.filter
            (fun (_, tt) -> Bfun.equal tt xor3 || Bfun.equal tt (Bfun.lnot xor3))
            members
        in
        if sums <> [] then begin
          (* The XOA pair of the sum is free (XOR3 is symmetric); the first
             carry fixes it, later carries must agree. *)
          let fixed = ref None in
          List.iter
            (fun (id, tt) ->
              if not (List.exists (fun (s, _) -> s = id) sums) then
                match Config.carry_pair tt with
                | Some pair
                  when (match !fixed with None -> true | Some p -> p = pair) ->
                    fixed := Some pair;
                    Hashtbl.replace overrides id Config.Carry
                | Some _ | None -> ())
            members
        end)
      groups;
    overrides
  end

let run ?objective arch nl =
  let bound = Aig.of_netlist nl in
  let aig = bound.Aig.aig in
  let _, best_cut = select_cover ?objective arch bound in
  let needed = needed_nodes aig bound.Aig.roots best_cut in
  let overrides = carry_overrides arch aig best_cut needed in
  let dst = Netlist.create ~name:(Netlist.design_name nl) () in
  (* Recreate the interface. *)
  let src_size = Netlist.size nl in
  let new_of_src = Array.make src_size (-1) in
  List.iter
    (fun i ->
      let name = Option.value ~default:(Printf.sprintf "pi%d" i)
          (Netlist.node nl i).Netlist.name in
      new_of_src.(i) <- Netlist.input dst name)
    (Netlist.inputs nl);
  List.iter
    (fun i -> new_of_src.(i) <- Netlist.dff ?name:(Netlist.node nl i).Netlist.name dst)
    (Netlist.flops nl);
  (* Emit selected supernodes bottom-up, positive polarity. *)
  let emitted = Array.make (Aig.size aig) (-1) in
  let rec emit_node id =
    if emitted.(id) >= 0 then emitted.(id)
    else begin
      let v =
        if Aig.is_const id then Netlist.gate dst (Kind.Const false) [||]
        else if Aig.is_pi aig id then
          new_of_src.(bound.Aig.pi_sources.(Aig.pi_index aig id))
        else begin
          let c =
            match best_cut.(id) with Some c -> c | None -> assert false
          in
          let fanins = Array.map emit_node c.Cut.leaves in
          let cfg =
            match Hashtbl.find_opt overrides id with
            | Some cfg -> cfg
            | None -> config_of_tt arch c.Cut.tt
          in
          Netlist.gate dst
            (Kind.Mapped { cell = Config.cell_name cfg; fn = c.Cut.tt })
            fanins
        end
      in
      emitted.(id) <- v;
      v
    end
  in
  (* A root literal: positive polarity reuses the node's supernode; negative
     polarity derives the complemented supernode from the same cut without
     forcing the positive one into existence (Invb for PIs/constant). *)
  let neg_emitted = Hashtbl.create 16 in
  let emit_root l =
    let id = Aig.node_of l in
    if not (Aig.is_complement l) then emit_node id
    else
      match Hashtbl.find_opt neg_emitted id with
      | Some v -> v
      | None ->
          let v =
            if Aig.is_const id then Netlist.gate dst (Kind.Const true) [||]
            else if Aig.is_pi aig id then
              let inv1 = Bfun.lnot (Bfun.var ~arity:1 0) in
              Netlist.gate dst
                (Kind.Mapped { cell = Config.cell_name Config.Invb; fn = inv1 })
                [| emit_node id |]
            else
              let c =
                match best_cut.(id) with Some c -> c | None -> assert false
              in
              let fanins = Array.map emit_node c.Cut.leaves in
              let tt = Bfun.lnot c.Cut.tt in
              let cfg =
                match Hashtbl.find_opt overrides id with
                | Some cfg -> cfg
                | None -> config_of_tt arch tt
              in
              Netlist.gate dst
                (Kind.Mapped { cell = Config.cell_name cfg; fn = tt })
                fanins
          in
          Hashtbl.replace neg_emitted id v;
          v
  in
  List.iter
    (fun (root, l) ->
      let v = emit_root l in
      match root with
      | Aig.Po o ->
          let name = Option.value ~default:(Printf.sprintf "po%d" o)
              (Netlist.node nl o).Netlist.name in
          ignore (Netlist.output dst name v)
      | Aig.Flop_d f -> Netlist.connect dst ~flop:new_of_src.(f) ~d:v)
    bound.Aig.roots;
  dst

let config_histogram nl =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      match n.Netlist.kind with
      | Kind.Mapped { cell; _ } -> (
          match Config.of_cell_name cell with
          | Some c ->
              Hashtbl.replace counts c
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
          | None -> ())
      | _ -> ())
    (Netlist.nodes nl);
  List.filter_map
    (fun c ->
      match Hashtbl.find_opt counts c with
      | Some n -> Some (c, n)
      | None -> None)
    Config.all
