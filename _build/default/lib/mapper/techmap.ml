module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize

(* Drop inputs the function does not depend on, narrowing the fanin list to
   match. *)
let project fn fanins =
  let support = Bfun.support fn in
  if List.length support = Bfun.arity fn then (fn, fanins)
  else
    let rec shrink fn fanins =
      match
        List.find_opt
          (fun i -> not (Bfun.depends_on fn i))
          (List.init (Bfun.arity fn) Fun.id)
      with
      | None -> (fn, fanins)
      | Some i ->
          let fanins =
            Array.init
              (Array.length fanins - 1)
              (fun j -> if j < i then fanins.(j) else fanins.(j + 1))
          in
          shrink (Bfun.cofactor fn ~var:i false) fanins
    in
    shrink fn fanins

let mapped cell fn = Kind.Mapped { cell; fn }

let is_lut_arch arch = arch.Arch.name = "lut_plb"

(* Cell count a 2-or-fewer-input subfunction will need (select heuristic). *)
let subcost fn =
  if Bfun.is_const fn then 0
  else if Bfun.is_literal fn then if Bfun.table fn land 1 = 0 then 0 else 1
  else 1

let rec emit arch dst fn fanins =
  let fn, fanins = project fn fanins in
  match Bfun.arity fn with
  | 0 -> Netlist.gate dst (Kind.Const (Bfun.eval fn 0)) [||]
  | 1 ->
      if Bfun.table fn = 0b10 then fanins.(0)
      else Netlist.gate dst (mapped "inv" fn) fanins
  | 2 ->
      if Gates.is_xor_type fn then
        if is_lut_arch arch then Netlist.gate dst (mapped "lut3" fn) fanins
        else Netlist.gate dst (mapped "xoa" fn) fanins
      else Netlist.gate dst (mapped "nd3wi" fn) fanins
  | 3 ->
      if Gates.nd3wi_feasible fn then Netlist.gate dst (mapped "nd3wi" fn) fanins
      else if is_lut_arch arch then Netlist.gate dst (mapped "lut3" fn) fanins
      else if Gates.mux_feasible fn then
        Netlist.gate dst (mapped "mux2" fn) fanins
      else begin
        (* Shannon-decompose around the cheapest select input; cofactors are
           2-input subfunctions, realized recursively, then recombined on a
           2:1 MUX. *)
        let cost s =
          let lo, hi = Bfun.cofactor_pair fn ~var:s in
          subcost lo + subcost hi
        in
        let s =
          List.fold_left
            (fun best v -> if cost v < cost best then v else best)
            0 [ 1; 2 ]
        in
        let lo, hi = Bfun.cofactor_pair fn ~var:s in
        let sub =
          Array.init 2 (fun i -> if i < s then fanins.(i) else fanins.(i + 1))
        in
        let nlo = emit arch dst lo sub and nhi = emit arch dst hi sub in
        let mux3 =
          Bfun.(mux ~sel:(var ~arity:3 0) (var ~arity:3 1) (var ~arity:3 2))
        in
        Netlist.gate dst (mapped "mux2" mux3) [| fanins.(s); nlo; nhi |]
      end
  | _ -> invalid_arg "Techmap: gate arity above 3"

let map arch nl =
  Netlist.map_combinational ~name:(Netlist.design_name nl) nl
    (fun dst node fanins ->
      match node.Netlist.kind with
      | Kind.Const b -> Netlist.gate dst (Kind.Const b) [||]
      | k -> emit arch dst (Kind.fn k) fanins)

let cell_area_of_node n =
  match n.Netlist.kind with
  | Kind.Dff -> (Characterize.find "dff").Cell.area
  | Kind.Mapped { cell; _ } -> (
      match Config.of_cell_name cell with
      | Some c -> Config.cell_area c
      | None -> (Characterize.find cell).Cell.area)
  | Kind.Input | Kind.Output | Kind.Const _ -> 0.0
  | Kind.Buf | Kind.Inv -> (Characterize.find "inv").Cell.area
  | ( Kind.And2 | Kind.Or2 | Kind.Nand2 | Kind.Nor2 | Kind.Xor2 | Kind.Xnor2
    | Kind.Mux2 | Kind.And3 | Kind.Or3 | Kind.Nand3 | Kind.Nor3 | Kind.Xor3
    | Kind.Maj3 ) as k ->
      (* NAND2-equivalent estimate for not-yet-mapped gates. *)
      Vpga_netlist.Stats.nand2_equivalents k
      *. (Characterize.find "nd2wi").Cell.area

let cell_area nl =
  Array.fold_left
    (fun acc n -> acc +. cell_area_of_node n)
    0.0 (Netlist.nodes nl)
