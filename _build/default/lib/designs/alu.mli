(** The "ALU" benchmark: a registered W-bit arithmetic/logic unit —
    datapath-dominated, adder- and mux-heavy (the workload class where the
    paper's granular PLB wins).

    Operations (op[2:0]): 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shift left,
    6 shift right, 7 set-less-than (unsigned).  Inputs and the result are
    registered; flags (zero, carry) are combinational outputs of the result
    register. *)

val build : ?width:int -> unit -> Vpga_netlist.Netlist.t
(** Default width 32. *)

val reference : width:int -> op:int -> a:int -> b:int -> int
(** Software model of the combinational core (result only). *)
