module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type packet = { valid : bool; dest : int; data : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let build ?(ports = 4) ?(width = 32) () =
  if not (is_pow2 ports) then invalid_arg "Netswitch.build: ports not a power of 2";
  let lg = Wordgen.log2_up ports in
  let nl =
    Netlist.create ~name:(Printf.sprintf "netswitch_%dx%d_w%d" ports ports width) ()
  in
  let one = Netlist.gate nl (Kind.Const true) [||] in
  (* Registered input stage. *)
  let in_port i =
    let v = Wordgen.input_bus nl (Printf.sprintf "in%d_valid" i) 1 in
    let dest = Wordgen.input_bus nl (Printf.sprintf "in%d_dest" i) lg in
    let data = Wordgen.input_bus nl (Printf.sprintf "in%d_data" i) width in
    ( (Wordgen.register_bus nl v).(0),
      Wordgen.register_bus nl dest,
      Wordgen.register_bus nl data )
  in
  let inputs = Array.init ports in_port in
  (* Shared rotation pointer: free-running counter. *)
  let ptr = Wordgen.counter nl ~width:lg ~enable:one in
  (* Per output port: request vector, rotating-priority grant, crossbar. *)
  for o = 0 to ports - 1 do
    let req =
      Array.map
        (fun (v, dest, _) ->
          Netlist.gate nl Kind.And2 [| v; Wordgen.equal_const nl dest o |])
        inputs
    in
    (* rot.(j) = req.((j + ptr) mod ports): barrel rotate by ptr. *)
    let rotate vec amount_bits =
      let n = Array.length vec in
      let stage bus k sel =
        Array.init n (fun j ->
            Netlist.gate nl Kind.Mux2 [| sel; bus.(j); bus.((j + k) mod n) |])
      in
      let bus = ref vec in
      Array.iteri (fun lvl sel -> bus := stage !bus (1 lsl lvl) sel) amount_bits;
      !bus
    in
    let rot = rotate req ptr in
    (* Priority encode the rotated vector: first set bit. *)
    let any = Wordgen.reduce_or nl rot in
    let idx = Array.make lg (Netlist.gate nl (Kind.Const false) [||]) in
    let idx =
      (* idx = index of first set bit: scan from 0. *)
      let taken = ref rot.(0) in
      let cur = ref (Wordgen.constant nl ~width:lg 0) in
      for j = 1 to ports - 1 do
        let jconst = Wordgen.constant nl ~width:lg j in
        let pick =
          Netlist.gate nl Kind.And2
            [| rot.(j); Netlist.gate nl Kind.Inv [| !taken |] |]
        in
        cur := Wordgen.mux_bus nl ~sel:pick !cur jconst;
        taken := Netlist.gate nl Kind.Or2 [| !taken; rot.(j) |]
      done;
      ignore idx;
      !cur
    in
    (* grant index = (idx + ptr) mod ports *)
    let gidx, _ = Wordgen.ripple_adder nl idx ptr in
    let datas = Array.to_list (Array.map (fun (_, _, d) -> d) inputs) in
    let data = Wordgen.mux_tree nl ~sel:gidx datas in
    let vq = Wordgen.register_bus nl [| any |] in
    let dq = Wordgen.register_bus nl data in
    ignore (Netlist.output nl (Printf.sprintf "out%d_valid" o) vq.(0));
    Wordgen.output_bus nl (Printf.sprintf "out%d_data" o) dq
  done;
  nl

let reference_step ~ports ~width ~ptr packets =
  let mask = (1 lsl width) - 1 in
  Array.init ports (fun o ->
      let rec scan j =
        if j >= ports then (false, 0)
        else
          let i = (j + ptr) mod ports in
          let p = packets.(i) in
          if p.valid && p.dest land (ports - 1) = o then (true, p.data land mask)
          else scan (j + 1)
      in
      scan 0)
