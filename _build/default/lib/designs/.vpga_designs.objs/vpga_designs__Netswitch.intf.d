lib/designs/netswitch.mli: Vpga_netlist
