lib/designs/netswitch.ml: Array Printf Vpga_netlist Wordgen
