lib/designs/fsm.ml: Array List Vpga_netlist Wordgen
