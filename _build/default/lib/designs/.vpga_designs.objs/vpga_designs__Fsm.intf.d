lib/designs/fsm.mli: Vpga_netlist Wordgen
