lib/designs/firewire.mli: Vpga_netlist
