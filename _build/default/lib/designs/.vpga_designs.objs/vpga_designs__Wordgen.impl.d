lib/designs/wordgen.ml: Array List Printf Vpga_netlist
