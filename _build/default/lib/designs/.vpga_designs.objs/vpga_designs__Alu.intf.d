lib/designs/alu.mli: Vpga_netlist
