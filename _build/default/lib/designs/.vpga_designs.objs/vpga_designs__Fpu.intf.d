lib/designs/fpu.mli: Vpga_netlist
