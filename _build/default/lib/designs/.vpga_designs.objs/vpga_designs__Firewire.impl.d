lib/designs/firewire.ml: Array Vpga_netlist Wordgen
