lib/designs/alu.ml: Array Printf Vpga_netlist Wordgen
