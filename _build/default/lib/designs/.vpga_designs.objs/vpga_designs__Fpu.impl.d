lib/designs/fpu.ml: Array Printf Vpga_netlist Wordgen
