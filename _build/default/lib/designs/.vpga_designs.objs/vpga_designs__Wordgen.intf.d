lib/designs/wordgen.mli: Vpga_netlist
