(** The "Network switch" benchmark: an N x N crossbar with per-output
    rotating-priority arbitration — registered input/output stages and a
    mux-dominated datapath (the paper's largest design).

    Cycle behaviour (both {!build} and {!reference}): inputs (valid, dest,
    data) are registered; each output port grants the requesting input
    closest after a free-running rotation pointer and registers (valid,
    data); all ports share the same pointer, which increments every cycle
    starting from 0. *)

val build : ?ports:int -> ?width:int -> unit -> Vpga_netlist.Netlist.t
(** [ports] must be a power of two (default 4); [width] default 32. *)

type packet = { valid : bool; dest : int; data : int }

val reference_step :
  ports:int -> width:int -> ptr:int -> packet array -> (bool * int) array
(** Software model of the combinational core: given the registered input
    packets and the rotation pointer, the (valid, data) pair latched into
    each output register.  Tests drive the pipeline alignment themselves
    (inputs register at cycle t+1, outputs appear at t+2; the pointer is the
    cycle index). *)
