module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

let crc_poly = 0x1021

(* States *)
let s_idle = 0
let s_header = 1
let s_data = 2
let s_crc = 3
let s_ack = 4

let build ?(data_bits = 32) () =
  let nl = Netlist.create ~name:"firewire" () in
  let rx = Netlist.input nl "rx" in
  let cfg_we = Netlist.input nl "cfg_we" in
  let cfg_data = Wordgen.input_bus nl "cfg_data" 8 in
  (* State and counters as raw flops (feedback). *)
  let flops w = Array.init w (fun _ -> Netlist.dff nl) in
  let st = flops 3 in
  let bitcnt = flops 6 in
  let hdr = flops 16 in
  let dreg = flops 16 in
  let crc = flops 16 in
  let rxcrc = flops 16 in
  let crc_ok = Netlist.dff nl in
  let frames = flops 8 in
  let errs = flops 8 in
  let wd = flops 8 in
  let node_id = flops 8 in
  let last_hdr = flops 16 in
  let zero = Netlist.gate nl (Kind.Const false) [||] in
  let in_state s = Wordgen.equal_const nl st s in
  let is_idle = in_state s_idle in
  let is_header = in_state s_header in
  let is_data = in_state s_data in
  let is_crc = in_state s_crc in
  let is_ack = in_state s_ack in
  let and2 a b = Netlist.gate nl Kind.And2 [| a; b |] in
  let or2 a b = Netlist.gate nl Kind.Or2 [| a; b |] in
  let cnt_is v = Wordgen.equal_const nl bitcnt v in
  let start = and2 is_idle rx in
  let hdr_done = and2 is_header (cnt_is 15) in
  let data_done = and2 is_data (cnt_is (data_bits - 1)) in
  let crc_done = and2 is_crc (cnt_is 15) in
  let ack_done = and2 is_ack (cnt_is 7) in
  let timeout =
    and2 (Netlist.gate nl Kind.Inv [| is_idle |]) (Wordgen.equal_const nl wd 255)
  in
  (* Next state: priority mux chain. *)
  let const3 v = Wordgen.constant nl ~width:3 v in
  let next_st =
    let n = st in
    let n = Wordgen.mux_bus nl ~sel:start n (const3 s_header) in
    let n = Wordgen.mux_bus nl ~sel:hdr_done n (const3 s_data) in
    let n = Wordgen.mux_bus nl ~sel:data_done n (const3 s_crc) in
    let n = Wordgen.mux_bus nl ~sel:crc_done n (const3 s_ack) in
    let n = Wordgen.mux_bus nl ~sel:ack_done n (const3 s_idle) in
    Wordgen.mux_bus nl ~sel:timeout n (const3 s_idle)
  in
  Array.iteri (fun i q -> Netlist.connect nl ~flop:q ~d:next_st.(i)) st;
  (* Bit counter. *)
  let phase_change =
    or2 start (or2 hdr_done (or2 data_done (or2 crc_done ack_done)))
  in
  let next_cnt =
    let inc = Wordgen.incrementer nl bitcnt in
    let n = Wordgen.mux_bus nl ~sel:is_idle inc (Wordgen.constant nl ~width:6 0) in
    Wordgen.mux_bus nl ~sel:phase_change n (Wordgen.constant nl ~width:6 0)
  in
  Array.iteri (fun i q -> Netlist.connect nl ~flop:q ~d:next_cnt.(i)) bitcnt;
  (* Shift registers. *)
  let shift_en reg en =
    let shifted =
      Array.init (Array.length reg) (fun i -> if i = 0 then rx else reg.(i - 1))
    in
    Array.iteri
      (fun i q ->
        let d = Netlist.gate nl Kind.Mux2 [| en; q; shifted.(i) |] in
        Netlist.connect nl ~flop:q ~d)
      reg
  in
  shift_en hdr is_header;
  shift_en dreg is_data;
  shift_en rxcrc is_crc;
  (* CRC over header + data bits; cleared on frame start. *)
  let crc_next = Wordgen.crc_step nl ~poly:crc_poly ~state:crc ~din:rx in
  let crc_en = or2 is_header is_data in
  Array.iteri
    (fun i q ->
      let kept = Netlist.gate nl Kind.Mux2 [| crc_en; q; crc_next.(i) |] in
      let d = Netlist.gate nl Kind.Mux2 [| start; kept; zero |] in
      Netlist.connect nl ~flop:q ~d)
    crc;
  (* CRC check at the last CRC-phase cycle: the 16th bit is still on rx, so
     compare against the shifted-in view of the receive register. *)
  let rxcrc_now =
    Array.init 16 (fun i -> if i = 0 then rx else rxcrc.(i - 1))
  in
  let ok_now = Wordgen.equal_bus nl crc rxcrc_now in
  Netlist.connect nl ~flop:crc_ok
    ~d:(Netlist.gate nl Kind.Mux2 [| crc_done; crc_ok; ok_now |]);
  (* Statistics and watchdog. *)
  let bump reg en =
    let inc = Wordgen.incrementer nl reg in
    Array.iteri
      (fun i q ->
        Netlist.connect nl ~flop:q
          ~d:(Netlist.gate nl Kind.Mux2 [| en; q; inc.(i) |]))
      reg
  in
  bump frames ack_done;
  bump errs (and2 crc_done (Netlist.gate nl Kind.Inv [| ok_now |]));
  let wd_inc = Wordgen.incrementer nl wd in
  Array.iteri
    (fun i q ->
      Netlist.connect nl ~flop:q
        ~d:(Netlist.gate nl Kind.Mux2 [| is_idle; wd_inc.(i); zero |]))
    wd;
  (* Config register and header snapshot. *)
  Array.iteri
    (fun i q ->
      Netlist.connect nl ~flop:q
        ~d:(Netlist.gate nl Kind.Mux2 [| cfg_we; q; cfg_data.(i) |]))
    node_id;
  Array.iteri
    (fun i q ->
      Netlist.connect nl ~flop:q
        ~d:(Netlist.gate nl Kind.Mux2 [| hdr_done; q; hdr.(i) |]))
    last_hdr;
  (* Outputs. *)
  let tx = and2 is_ack crc_ok in
  ignore (Netlist.output nl "tx" tx);
  Wordgen.output_bus nl "state" st;
  Wordgen.output_bus nl "frames" frames;
  Wordgen.output_bus nl "errs" errs;
  Wordgen.output_bus nl "last_hdr" last_hdr;
  Wordgen.output_bus nl "data_tail" dreg;
  Wordgen.output_bus nl "node_id" node_id;
  ignore (Netlist.output nl "crc_ok" crc_ok);
  nl
