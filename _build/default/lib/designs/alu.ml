module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

let build ?(width = 32) () =
  let nl = Netlist.create ~name:(Printf.sprintf "alu%d" width) () in
  let op_in = Wordgen.input_bus nl "op" 3 in
  let a_in = Wordgen.input_bus nl "a" width in
  let b_in = Wordgen.input_bus nl "b" width in
  (* registered inputs *)
  let op = Wordgen.register_bus nl op_in in
  let a = Wordgen.register_bus nl a_in in
  let b = Wordgen.register_bus nl b_in in
  let sum, carry = Wordgen.carry_select_adder nl a b in
  let diff, borrow = Wordgen.subtractor nl a b in
  let land_ = Wordgen.and_bus nl a b in
  let lor_ = Wordgen.or_bus nl a b in
  let lxor_ = Wordgen.xor_bus nl a b in
  let amount = Array.sub b 0 (Wordgen.log2_up width) in
  let shl = Wordgen.shift_left nl a ~amount in
  let shr = Wordgen.shift_right nl a ~amount in
  let slt =
    let r = Wordgen.constant nl ~width 0 in
    let r = Array.copy r in
    r.(0) <- borrow;
    r
  in
  let result =
    Wordgen.mux_tree nl ~sel:op [ sum; diff; land_; lor_; lxor_; shl; shr; slt ]
  in
  let result_q = Wordgen.register_bus nl result in
  Wordgen.output_bus nl "result" result_q;
  let zero =
    Netlist.gate nl Kind.Inv [| Wordgen.reduce_or nl result_q |]
  in
  ignore (Netlist.output nl "zero" zero);
  let carry_q = Wordgen.register_bus nl [| carry |] in
  ignore (Netlist.output nl "carry" carry_q.(0));
  nl

let reference ~width ~op ~a ~b =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  let shamt = b land ((1 lsl Wordgen.log2_up width) - 1) in
  (match op land 7 with
  | 0 -> a + b
  | 1 -> a - b
  | 2 -> a land b
  | 3 -> a lor b
  | 4 -> a lxor b
  | 5 -> a lsl shamt
  | 6 -> a lsr shamt
  | _ -> if a < b then 1 else 0)
  land mask
