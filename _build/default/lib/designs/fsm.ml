module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type transition = { from : int; cond : int; next : int }

type t = {
  nl : Netlist.t;
  states : int;
  bus : Wordgen.bus;
  mutable transitions : transition list; (* reversed registration order *)
  mutable finalized : bool;
}

let create nl ~states =
  if states < 2 then invalid_arg "Fsm.create: need at least 2 states";
  let width = Wordgen.log2_up states in
  let bus = Array.init width (fun _ -> Netlist.dff nl) in
  { nl; states; bus; transitions = []; finalized = false }

let state_bus t = t.bus

let state_is t s =
  if s < 0 || s >= t.states then invalid_arg "Fsm.state_is: state out of range";
  Wordgen.equal_const t.nl t.bus s

let on t ~from ~cond ~next =
  if t.finalized then invalid_arg "Fsm.on: already finalized";
  if from < 0 || from >= t.states || next < 0 || next >= t.states then
    invalid_arg "Fsm.on: state out of range";
  t.transitions <- { from; cond; next } :: t.transitions

let always t ~from ~next =
  let one = Netlist.gate t.nl (Kind.Const true) [||] in
  on t ~from ~cond:one ~next

(* Priority encoding: fold transitions from lowest to highest priority so
   the earliest registration is applied last (wins). *)
let finalize t =
  if t.finalized then invalid_arg "Fsm.finalize: already finalized";
  t.finalized <- true;
  let width = Array.length t.bus in
  let next =
    List.fold_left
      (fun acc tr ->
        let here = state_is t tr.from in
        let take = Netlist.gate t.nl Kind.And2 [| here; tr.cond |] in
        Wordgen.mux_bus t.nl ~sel:take acc
          (Wordgen.constant t.nl ~width tr.next))
      (Array.copy t.bus) t.transitions
  in
  Array.iteri (fun i q -> Netlist.connect t.nl ~flop:q ~d:next.(i)) t.bus
