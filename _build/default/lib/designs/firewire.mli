(** The "Firewire" benchmark: a small serial-link controller dominated by
    sequential/control logic — an FSM, shift registers, a CRC-16, timers and
    configuration/status registers.  Its flop-to-combinational ratio is the
    highest of the four designs, which is what drives the paper's observed
    area reversal on the granular PLB ("the design is dominated by
    sequential rather than combinational logic").

    Frame protocol (bit-serial input [rx], frame start = rx high while
    IDLE): 16 header bits, then 32 data bits, then 16 CRC bits; the
    controller checks the running CRC-16/CCITT against the received CRC
    and acknowledges on [tx] for 8 cycles. *)

val build : ?data_bits:int -> unit -> Vpga_netlist.Netlist.t
(** [data_bits] (default 32) is the data-phase length. *)

val crc_poly : int
(** 0x1021 (CRC-16/CCITT), shared with the tests' software CRC. *)
