module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

(* Carry-save array multiplier (m x m -> 2m). *)
let multiplier nl a b = Wordgen.csa_multiplier nl a b

let build ?(exp_bits = 8) ?(mant_bits = 24) ?(pipelined = false) () =
  let e = exp_bits and m = mant_bits in
  let nl =
    Netlist.create
      ~name:(Printf.sprintf "fpu_e%d_m%d%s" e m (if pipelined then "_p" else ""))
      ()
  in
  let op_in = Wordgen.input_bus nl "op" 1 in
  let sa_in = Wordgen.input_bus nl "sa" 1 in
  let ea_in = Wordgen.input_bus nl "ea" e in
  let ma_in = Wordgen.input_bus nl "ma" m in
  let sb_in = Wordgen.input_bus nl "sb" 1 in
  let eb_in = Wordgen.input_bus nl "eb" e in
  let mb_in = Wordgen.input_bus nl "mb" m in
  let reg = Wordgen.register_bus nl in
  let op = (reg op_in).(0) in
  let sa = (reg sa_in).(0) and ea = reg ea_in and ma = reg ma_in in
  let sb = (reg sb_in).(0) and eb = reg eb_in and mb = reg mb_in in

  (* ---- adder path ---- *)
  let exp_lt = Wordgen.less_than nl ea eb in
  let exp_eq = Wordgen.equal_bus nl ea eb in
  let mant_lt = Wordgen.less_than nl ma mb in
  let a_smaller =
    Netlist.gate nl Kind.Or2
      [| exp_lt; Netlist.gate nl Kind.And2 [| exp_eq; mant_lt |] |]
  in
  let big_e = Wordgen.mux_bus nl ~sel:a_smaller ea eb in
  let big_m = Wordgen.mux_bus nl ~sel:a_smaller ma mb in
  let small_e = Wordgen.mux_bus nl ~sel:a_smaller eb ea in
  let small_m = Wordgen.mux_bus nl ~sel:a_smaller mb ma in
  let big_s = Netlist.gate nl Kind.Mux2 [| a_smaller; sa; sb |] in
  let d, _ = Wordgen.subtractor nl big_e small_e in
  let k = Wordgen.log2_up (m + 1) in
  let amt =
    if e <= k then Array.append d (Array.make (k - e) (Netlist.gate nl (Kind.Const false) [||]))
    else begin
      let sat = Wordgen.reduce_or nl (Array.sub d k (e - k)) in
      let ones = Wordgen.constant nl ~width:k ((1 lsl k) - 1) in
      Wordgen.mux_bus nl ~sel:sat (Array.sub d 0 k) ones
    end
  in
  let aligned = Wordgen.shift_right nl small_m ~amount:amt in
  let same_sign =
    Netlist.gate nl Kind.Xnor2 [| sa; sb |]
  in
  (* same-sign: add with possible carry normalization *)
  let ssum, scarry = Wordgen.ripple_adder nl big_m aligned in
  let sum_shifted =
    Array.init m (fun i -> if i = m - 1 then scarry else ssum.(i + 1))
  in
  let add_mant = Wordgen.mux_bus nl ~sel:scarry ssum sum_shifted in
  let add_exp =
    Wordgen.mux_bus nl ~sel:scarry big_e (Wordgen.incrementer nl big_e)
  in
  (* opposite-sign: subtract and renormalize *)
  let sdiff, _ = Wordgen.subtractor nl big_m aligned in
  let lz = Wordgen.leading_zero_count nl sdiff in
  let cl = Array.length lz in
  let sub_mant = Wordgen.shift_left nl sdiff ~amount:lz in
  let lz_e =
    if cl >= e then Array.sub lz 0 e
    else
      Array.append lz
        (Array.make (e - cl) (Netlist.gate nl (Kind.Const false) [||]))
  in
  let sub_exp, _ = Wordgen.subtractor nl big_e lz_e in
  let fadd_mant = Wordgen.mux_bus nl ~sel:same_sign sub_mant add_mant in
  let fadd_exp = Wordgen.mux_bus nl ~sel:same_sign sub_exp add_exp in
  let fadd_sign = big_s in

  (* ---- multiplier path ---- *)
  let p = multiplier nl ma mb in
  let top = p.((2 * m) - 1) in
  let hi = Array.sub p m m in
  let lo = Array.sub p (m - 1) m in
  let fmul_mant = Wordgen.mux_bus nl ~sel:top lo hi in
  let esum, _ = Wordgen.ripple_adder nl ea eb in
  let fmul_exp = Wordgen.mux_bus nl ~sel:top esum (Wordgen.incrementer nl esum) in
  let fmul_sign = Netlist.gate nl Kind.Xor2 [| sa; sb |] in

  (* ---- optional mid-pipeline rank, then select and register ---- *)
  let reg1 bus = if pipelined then Wordgen.register_bus nl bus else bus in
  let fadd_mant = reg1 fadd_mant and fadd_exp = reg1 fadd_exp in
  let fmul_mant = reg1 fmul_mant and fmul_exp = reg1 fmul_exp in
  let fadd_sign = (reg1 [| fadd_sign |]).(0) in
  let fmul_sign = (reg1 [| fmul_sign |]).(0) in
  let op = (reg1 [| op |]).(0) in
  let mant = Wordgen.mux_bus nl ~sel:op fadd_mant fmul_mant in
  let exp = Wordgen.mux_bus nl ~sel:op fadd_exp fmul_exp in
  let sign = Netlist.gate nl Kind.Mux2 [| op; fadd_sign; fmul_sign |] in
  let mant_q = reg mant and exp_q = reg exp and sign_q = reg [| sign |] in
  Wordgen.output_bus nl "mant" mant_q;
  Wordgen.output_bus nl "exp" exp_q;
  ignore (Netlist.output nl "sign" sign_q.(0));
  nl

let reference ~exp_bits ~mant_bits ~op ~a:(sa, ea, ma) ~b:(sb, eb, mb) =
  let e = exp_bits and m = mant_bits in
  let emask = (1 lsl e) - 1 and mmask = (1 lsl m) - 1 in
  let sa = sa land 1 and sb = sb land 1 in
  let ea = ea land emask and eb = eb land emask in
  let ma = ma land mmask and mb = mb land mmask in
  if op land 1 = 1 then begin
    (* multiply *)
    let p = ma * mb in
    let top = (p lsr ((2 * m) - 1)) land 1 = 1 in
    let mant = if top then (p lsr m) land mmask else (p lsr (m - 1)) land mmask in
    let exp = (ea + eb + if top then 1 else 0) land emask in
    (sa lxor sb, exp, mant)
  end
  else begin
    let a_smaller = ea < eb || (ea = eb && ma < mb) in
    let big_s, big_e, big_m, small_e, small_m =
      if a_smaller then (sb, eb, mb, ea, ma) else (sa, ea, ma, eb, mb)
    in
    let d = big_e - small_e in
    let k =
      let rec go k v = if v >= m + 1 then k else go (k + 1) (2 * v) in
      go 0 1
    in
    let amt = if d >= 1 lsl k then (1 lsl k) - 1 else d in
    let aligned = if amt >= 63 then 0 else (small_m lsr amt) land mmask in
    if sa = sb then begin
      let s = big_m + aligned in
      let carry = s land (1 lsl m) <> 0 in
      let mant = if carry then (s lsr 1) land mmask else s land mmask in
      let exp = (big_e + if carry then 1 else 0) land emask in
      (big_s, exp, mant)
    end
    else begin
      let dft = (big_m - aligned) land mmask in
      let lz =
        let rec go i = if i < 0 then m else if (dft lsr i) land 1 = 1 then m - 1 - i else go (i - 1) in
        go (m - 1)
      in
      let mant = (dft lsl lz) land mmask in
      let exp = (big_e - lz) land emask in
      (big_s, exp, mant)
    end
  end
