(** Word-level netlist construction kit: buses, adders, shifters, muxes,
    comparators, registers, counters and CRC steps.  All the benchmark
    designs are generated from these primitives.

    A bus is an array of node ids, least-significant bit first. *)

type bus = int array

module Netlist := Vpga_netlist.Netlist

val input_bus : Netlist.t -> string -> int -> bus
val output_bus : Netlist.t -> string -> bus -> unit
val constant : Netlist.t -> width:int -> int -> bus

val not_bus : Netlist.t -> bus -> bus
val and_bus : Netlist.t -> bus -> bus -> bus
val or_bus : Netlist.t -> bus -> bus -> bus
val xor_bus : Netlist.t -> bus -> bus -> bus

val reduce_or : Netlist.t -> bus -> int
val reduce_and : Netlist.t -> bus -> int

val full_adder : Netlist.t -> int -> int -> int -> int * int
(** [(sum, carry)] *)

val ripple_adder : Netlist.t -> ?cin:int -> bus -> bus -> bus * int
(** [(sum, carry_out)]; widths must match. *)

val carry_select_adder :
  ?block:int -> Netlist.t -> ?cin:int -> bus -> bus -> bus * int
(** Carry-select adder: ripple blocks of [block] bits (default 4) computed
    for both incoming carries and selected by the true carry — depth
    O(n/block + block) instead of O(n). *)

val csa_reduce : Netlist.t -> bus list -> bus * bus
(** Carry-save (3:2) reduction of any number of equal-width addends down to
    a sum/carry pair (carries pre-shifted; add the two results to finish). *)

val csa_multiplier : Netlist.t -> bus -> bus -> bus
(** [m x m -> 2m] multiplier: partial products reduced with {!csa_reduce},
    finished with a carry-select adder — logarithmic reduction depth. *)

val subtractor : Netlist.t -> bus -> bus -> bus * int
(** [(difference, borrow_out)] — two's-complement [a - b]; borrow_out is 1
    when [a < b] (unsigned). *)

val incrementer : Netlist.t -> bus -> bus

val mux_bus : Netlist.t -> sel:int -> bus -> bus -> bus
(** [sel = 0] picks the first bus. *)

val mux_tree : Netlist.t -> sel:bus -> bus list -> bus
(** Select among [2^|sel|] buses (list may be shorter; missing entries
    replicate the last). *)

val equal_const : Netlist.t -> bus -> int -> int
val equal_bus : Netlist.t -> bus -> bus -> int
val less_than : Netlist.t -> bus -> bus -> int
(** Unsigned [a < b]. *)

val shift_left : Netlist.t -> bus -> amount:bus -> bus
(** Logarithmic barrel shifter; vacated bits are 0. *)

val shift_right : Netlist.t -> bus -> amount:bus -> bus

val leading_zero_count : Netlist.t -> bus -> bus
(** Width [ceil(log2 (w+1))] count of leading (most-significant) zeros. *)

val register_bus : Netlist.t -> ?enable:int -> bus -> bus
(** A rank of D flops capturing the bus each cycle (or when [enable]). *)

val counter : Netlist.t -> width:int -> enable:int -> bus
(** Free-running binary counter with enable. *)

val crc_step : Netlist.t -> poly:int -> state:bus -> din:int -> bus
(** One bit-serial CRC/LFSR step: next state combinational logic. *)

val log2_up : int -> int
