module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type bus = int array

let log2_up n =
  let rec go k v = if v >= n then k else go (k + 1) (2 * v) in
  go 0 1

let input_bus nl name w =
  Array.init w (fun i -> Netlist.input nl (Printf.sprintf "%s[%d]" name i))

let output_bus nl name bus =
  Array.iteri
    (fun i b -> ignore (Netlist.output nl (Printf.sprintf "%s[%d]" name i) b))
    bus

let constant nl ~width v =
  Array.init width (fun i ->
      Netlist.gate nl (Kind.Const ((v lsr i) land 1 = 1)) [||])

let map2 nl kind a b =
  if Array.length a <> Array.length b then invalid_arg "Wordgen: width mismatch";
  Array.mapi (fun i ai -> Netlist.gate nl kind [| ai; b.(i) |]) a

let not_bus nl a = Array.map (fun b -> Netlist.gate nl Kind.Inv [| b |]) a
let and_bus nl a b = map2 nl Kind.And2 a b
let or_bus nl a b = map2 nl Kind.Or2 a b
let xor_bus nl a b = map2 nl Kind.Xor2 a b

let reduce nl kind a =
  match Array.to_list a with
  | [] -> invalid_arg "Wordgen.reduce: empty bus"
  | first :: rest ->
      List.fold_left (fun acc b -> Netlist.gate nl kind [| acc; b |]) first rest

let reduce_or nl a = reduce nl Kind.Or2 a
let reduce_and nl a = reduce nl Kind.And2 a

let full_adder nl a b c =
  ( Netlist.gate nl Kind.Xor3 [| a; b; c |],
    Netlist.gate nl Kind.Maj3 [| a; b; c |] )

let ripple_adder nl ?cin a b =
  if Array.length a <> Array.length b then
    invalid_arg "Wordgen.ripple_adder: width mismatch";
  let w = Array.length a in
  let cin =
    match cin with Some c -> c | None -> Netlist.gate nl (Kind.Const false) [||]
  in
  let sum = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder nl a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

(* Ripple block returning per-bit sums and the block carry-out. *)
let ripple_block nl a b cin lo len =
  let sum = Array.make len 0 in
  let carry = ref cin in
  for i = 0 to len - 1 do
    let s = Netlist.gate nl Kind.Xor3 [| a.(lo + i); b.(lo + i); !carry |] in
    let c = Netlist.gate nl Kind.Maj3 [| a.(lo + i); b.(lo + i); !carry |] in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let carry_select_adder ?(block = 4) nl ?cin a b =
  if Array.length a <> Array.length b then
    invalid_arg "Wordgen.carry_select_adder: width mismatch";
  let w = Array.length a in
  let zero = Netlist.gate nl (Kind.Const false) [||] in
  let one = Netlist.gate nl (Kind.Const true) [||] in
  let cin = match cin with Some c -> c | None -> zero in
  let out = Array.make w 0 in
  let rec go lo carry =
    if lo >= w then carry
    else begin
      let len = min block (w - lo) in
      if lo = 0 then begin
        (* first block ripples directly from cin *)
        let sum, c = ripple_block nl a b carry lo len in
        Array.blit sum 0 out lo len;
        go (lo + len) c
      end
      else begin
        let sum0, c0 = ripple_block nl a b zero lo len in
        let sum1, c1 = ripple_block nl a b one lo len in
        let sel = carry in
        for i = 0 to len - 1 do
          out.(lo + i) <- Netlist.gate nl Kind.Mux2 [| sel; sum0.(i); sum1.(i) |]
        done;
        let c = Netlist.gate nl Kind.Mux2 [| sel; c0; c1 |] in
        go (lo + len) c
      end
    end
  in
  let cout = go 0 cin in
  (out, cout)

let csa_reduce nl addends =
  match addends with
  | [] -> invalid_arg "Wordgen.csa_reduce: no addends"
  | [ only ] ->
      (only, constant nl ~width:(Array.length only) 0)
  | first :: _ ->
      let w = Array.length first in
      let zero = Netlist.gate nl (Kind.Const false) [||] in
      let compress3 x y z =
        let sum =
          Array.init w (fun i -> Netlist.gate nl Kind.Xor3 [| x.(i); y.(i); z.(i) |])
        in
        let carry =
          Array.init w (fun i ->
              if i = 0 then zero
              else
                Netlist.gate nl Kind.Maj3
                  [| x.(i - 1); y.(i - 1); z.(i - 1) |])
        in
        (sum, carry)
      in
      let rec reduce = function
        | [ s; c ] -> (s, c)
        | [ s ] -> (s, constant nl ~width:w 0)
        | x :: y :: z :: rest ->
            let s, c = compress3 x y z in
            reduce (rest @ [ s; c ])
        | [] -> assert false
      in
      List.iter
        (fun addend ->
          if Array.length addend <> w then
            invalid_arg "Wordgen.csa_reduce: width mismatch")
        addends;
      reduce addends

let csa_multiplier nl a b =
  let m = Array.length a in
  let zero = Netlist.gate nl (Kind.Const false) [||] in
  let partials =
    Array.to_list
      (Array.mapi
         (fun i bi ->
           Array.init (2 * m) (fun j ->
               if j >= i && j < i + m then
                 Netlist.gate nl Kind.And2 [| a.(j - i); bi |]
               else zero))
         b)
  in
  let s, c = csa_reduce nl partials in
  fst (carry_select_adder nl s c)

let subtractor nl a b =
  let one = Netlist.gate nl (Kind.Const true) [||] in
  let diff, carry = ripple_adder nl ~cin:one a (not_bus nl b) in
  (* carry = 1 means no borrow *)
  (diff, Netlist.gate nl Kind.Inv [| carry |])

let incrementer nl a =
  let zero = constant nl ~width:(Array.length a) 0 in
  let one = Netlist.gate nl (Kind.Const true) [||] in
  fst (ripple_adder nl ~cin:one a zero)

let mux_bus nl ~sel a b =
  if Array.length a <> Array.length b then invalid_arg "Wordgen.mux_bus: width";
  Array.mapi (fun i ai -> Netlist.gate nl Kind.Mux2 [| sel; ai; b.(i) |]) a

let mux_tree nl ~sel buses =
  match buses with
  | [] -> invalid_arg "Wordgen.mux_tree: no buses"
  | first :: _ ->
      let n = 1 lsl Array.length sel in
      let pick i =
        let rec nth k = function
          | [] -> first
          | [ x ] -> x
          | x :: rest -> if k = 0 then x else nth (k - 1) rest
        in
        nth i buses
      in
      let rec build lo levels =
        if levels = 0 then pick lo
        else
          let a = build lo (levels - 1) in
          let b = build (lo + (1 lsl (levels - 1))) (levels - 1) in
          mux_bus nl ~sel:sel.(levels - 1) a b
      in
      ignore n;
      build 0 (Array.length sel)

let equal_bus nl a b =
  let diff = xor_bus nl a b in
  Netlist.gate nl Kind.Inv [| reduce_or nl diff |]

let equal_const nl a v =
  let bits =
    Array.mapi
      (fun i bit ->
        if (v lsr i) land 1 = 1 then bit else Netlist.gate nl Kind.Inv [| bit |])
      a
  in
  reduce_and nl bits

let less_than nl a b =
  let _, borrow = subtractor nl a b in
  borrow

let shift nl ~left a ~amount =
  let w = Array.length a in
  let zero = Netlist.gate nl (Kind.Const false) [||] in
  let stage bus k sel =
    Array.init w (fun i ->
        let src = if left then i - k else i + k in
        let shifted = if src < 0 || src >= w then zero else bus.(src) in
        Netlist.gate nl Kind.Mux2 [| sel; bus.(i); shifted |])
  in
  let bus = ref a in
  Array.iteri (fun lvl sel -> bus := stage !bus (1 lsl lvl) sel) amount;
  !bus

let shift_left nl a ~amount = shift nl ~left:true a ~amount
let shift_right nl a ~amount = shift nl ~left:false a ~amount

let leading_zero_count nl a =
  let w = Array.length a in
  let cw = log2_up (w + 1) in
  (* Priority scan from the MSB: count = index of first 1 from the top. *)
  let counts =
    List.init (w + 1) (fun k -> constant nl ~width:cw k)
  in
  (* result = if a[w-1] then 0 else if a[w-2] then 1 else ... else w *)
  let rec build i =
    if i < 0 then List.nth counts w
    else
      let rest = build (i - 1) in
      mux_bus nl ~sel:a.(i) rest (List.nth counts (w - 1 - i))
  in
  build (w - 1)

let register_bus nl ?enable bus =
  Array.map
    (fun b ->
      let q = Netlist.dff nl in
      let d =
        match enable with
        | None -> b
        | Some en -> Netlist.gate nl Kind.Mux2 [| en; q; b |]
      in
      Netlist.connect nl ~flop:q ~d;
      q)
    bus

let counter nl ~width ~enable =
  let qs = Array.init width (fun _ -> Netlist.dff nl) in
  let carry = ref enable in
  Array.iter
    (fun q ->
      let d = Netlist.gate nl Kind.Xor2 [| q; !carry |] in
      let c = Netlist.gate nl Kind.And2 [| q; !carry |] in
      Netlist.connect nl ~flop:q ~d;
      carry := c)
    qs;
  qs

let crc_step nl ~poly ~state ~din =
  let w = Array.length state in
  let feedback = Netlist.gate nl Kind.Xor2 [| state.(w - 1); din |] in
  Array.init w (fun i ->
      let shifted_in =
        if i = 0 then Netlist.gate nl (Kind.Const false) [||] else state.(i - 1)
      in
      if (poly lsr i) land 1 = 1 then
        Netlist.gate nl Kind.Xor2 [| shifted_in; feedback |]
      else shifted_in)
