(** Declarative finite-state-machine compiler for control-dominated designs.

    States are small integers held in a binary-encoded register rank
    (reset state = 0, matching the flops' reset value).  Transitions are
    prioritized in registration order — the first matching [on] edge wins;
    with no match the machine holds its state.

    {[
      let fsm = Fsm.create nl ~states:3 in
      Fsm.on fsm ~from:0 ~cond:start ~next:1;
      Fsm.on fsm ~from:1 ~cond:done_ ~next:2;
      Fsm.on fsm ~from:2 ~cond:ack ~next:0;
      Fsm.finalize fsm;
      let busy = Fsm.state_is fsm 1 in ...
    ]} *)

module Netlist := Vpga_netlist.Netlist

type t

val create : Netlist.t -> states:int -> t
(** Allocates the (log2 states)-bit state register; reset state is 0.
    @raise Invalid_argument for fewer than 2 states. *)

val state_bus : t -> Wordgen.bus
(** The registered state bits (LSB first). *)

val state_is : t -> int -> int
(** Combinational "in state s" signal. *)

val on : t -> from:int -> cond:int -> next:int -> unit
(** Register a transition taken when the machine is in [from] and [cond]
    holds.  Earlier registrations take priority.
    @raise Invalid_argument after {!finalize} or for out-of-range states. *)

val always : t -> from:int -> next:int -> unit
(** Unconditional transition out of [from] (lowest priority for that
    state). *)

val finalize : t -> unit
(** Builds the next-state logic and connects the state register.  Must be
    called exactly once. *)
