(** The "FPU" benchmark: a simplified floating-point add/multiply datapath —
    barrel shifters, wide ripple adders, an array multiplier and a
    leading-zero normalizer.  The largest adder/mux-dominated design, like
    the paper's 24k-gate FPU.

    Format: [s | exp(e) | mant(m)], value = mant * 2^exp (no implicit bit,
    no bias, truncating arithmetic, exponents wrap mod 2^e — a simplified,
    bit-exactly specified semantics shared by {!build} and {!reference}).
    op = 0 is add, op = 1 multiply. *)

val build :
  ?exp_bits:int -> ?mant_bits:int -> ?pipelined:bool -> unit ->
  Vpga_netlist.Netlist.t
(** Defaults: 8-bit exponent, 24-bit mantissa.  Inputs and result are
    registered; [pipelined] (false) adds a mid-datapath register rank
    (latency 3 instead of 2), halving the per-cycle critical path. *)

val reference :
  exp_bits:int -> mant_bits:int -> op:int ->
  a:int * int * int -> b:int * int * int -> int * int * int
(** Bit-exact software model over (sign, exp, mant) triples. *)
