(** K-feasible cut enumeration with cut functions (priority cuts).

    A cut of node [n] is a set of at most [k] nodes ("leaves") such that
    every path from a PI to [n] passes through a leaf; its function is the
    truth table of [n] over the leaves.  These are the "supernodes
    corresponding to functions with 3 or less inputs" of the paper's
    compaction step. *)

type t = {
  leaves : int array;  (** AIG node ids, ascending *)
  tt : Vpga_logic.Bfun.t;  (** function of the node over the leaves *)
}

val trivial : int -> t
(** The singleton cut of a node (identity function). *)

val enumerate : Aig.t -> k:int -> max_cuts:int -> t list array
(** [enumerate aig ~k ~max_cuts] returns, for every node id, its priority
    cuts (the trivial cut always included; smaller cuts preferred).
    PIs and the constant node get only their trivial cut. *)

val leaf_count : t -> int
