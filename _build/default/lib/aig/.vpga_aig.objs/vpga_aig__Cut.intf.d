lib/aig/cut.mli: Aig Vpga_logic
