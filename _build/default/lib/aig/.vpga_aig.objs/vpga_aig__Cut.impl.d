lib/aig/cut.ml: Aig Array List Vpga_logic
