lib/aig/aig.mli: Vpga_logic Vpga_netlist
