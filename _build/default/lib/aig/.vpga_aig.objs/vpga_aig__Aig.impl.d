lib/aig/aig.ml: Array Hashtbl List Vpga_logic Vpga_netlist
