lib/cells/characterize.mli: Cell
