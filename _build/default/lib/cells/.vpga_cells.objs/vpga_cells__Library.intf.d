lib/cells/library.mli: Cell Format
