lib/cells/cell.mli: Format
