lib/cells/cell.ml: Format
