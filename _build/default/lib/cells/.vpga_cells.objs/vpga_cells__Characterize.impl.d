lib/cells/characterize.ml: Cell List
