lib/cells/library.ml: Cell Characterize Format List
