type seq = { setup : float; clk_to_q : float }

type t = {
  name : string;
  area : float;
  input_cap : float;
  intrinsic : float;
  resistance : float;
  via_sites : int;
  sequential : seq option;
}

let delay c ~load = c.intrinsic +. (c.resistance *. load)

let pp ppf c =
  Format.fprintf ppf
    "%s: area=%.1fum2 cin=%.1ffF t0=%.1fps r=%.2fps/fF vias=%d%s" c.name c.area
    c.input_cap c.intrinsic c.resistance c.via_sites
    (match c.sequential with
    | None -> ""
    | Some s -> Format.asprintf " (setup=%.0f clk-q=%.0f)" s.setup s.clk_to_q)
