type t = { name : string; cells : Cell.t list }

let of_names name names = { name; cells = List.map Characterize.find names }

let lut_plb = of_names "lut_plb" [ "lut3"; "nd3wi"; "inv"; "buf"; "dff" ]

let granular_plb =
  of_names "granular_plb" [ "mux2"; "xoa"; "nd3wi"; "inv"; "buf"; "dff" ]

let find t name =
  match List.find_opt (fun c -> c.Cell.name = name) t.cells with
  | Some c -> c
  | None -> raise Not_found

let mem t name = List.exists (fun c -> c.Cell.name = name) t.cells

let total_area t =
  List.fold_left (fun acc c -> acc +. c.Cell.area) 0.0 t.cells

let pp ppf t =
  Format.fprintf ppf "library %s:@." t.name;
  List.iter (fun c -> Format.fprintf ppf "  %a@." Cell.pp c) t.cells
