(** Restricted standard-cell libraries: "the component cells of the given PLB
    architecture" (paper Section 3.1).  Technology mapping and the Flow-a
    ASIC baseline are limited to exactly these cells. *)

type t = { name : string; cells : Cell.t list }

val lut_plb : t
(** Component cells of the Figure-1 LUT-based PLB: lut3, nd3wi, inv, buf,
    dff. *)

val granular_plb : t
(** Component cells of the Figure-4 granular PLB: mux2, xoa, nd3wi, inv, buf,
    dff. *)

val find : t -> string -> Cell.t
(** @raise Not_found if the cell is not part of the library. *)

val mem : t -> string -> bool
val total_area : t -> float
val pp : Format.formatter -> t -> unit
