(** Logical-effort characterization of the component cells — the substitute
    for the paper's CellRater step ("Cell Characterization" in Figure 6).

    Each cell template is described by its logical effort [g] (input cap
    relative to an inverter delivering the same drive), parasitic delay [p]
    (in units of the technology constant tau), a drive multiple [x], and its
    layout footprint.  Characterization turns templates into {!Cell.t}
    records with absolute ps/fF/um^2 values:

    - input capacitance: [g * x * cin_unit]
    - drive resistance: [tau / (x * cin_unit)]
    - intrinsic delay: [p * tau] *)

val tau : float
(** Technology time constant, ps (a ~180nm-class value; see DESIGN.md on
    absolute-number calibration). *)

val cin_unit : float
(** Input capacitance of a unit inverter, fF. *)

type template = {
  t_name : string;
  logical_effort : float;
  parasitic : float;
  drive : float;  (** sizing multiple relative to a unit inverter *)
  t_area : float;
  t_via_sites : int;
  t_sequential : Cell.seq option;
}

val characterize : template -> Cell.t

val templates : template list
(** Templates for every component cell used by either PLB architecture:
    inv, buf, nd2wi, nd3wi, mux2, xoa, lut3, dff. *)

val all_cells : Cell.t list

val find : string -> Cell.t
(** @raise Not_found for an unknown cell name. *)

val fo4 : Cell.t -> float
(** Fan-out-of-4 delay of a cell: a characterization sanity metric. *)
