let tau = 14.0
let cin_unit = 2.0

type template = {
  t_name : string;
  logical_effort : float;
  parasitic : float;
  drive : float;
  t_area : float;
  t_via_sites : int;
  t_sequential : Cell.seq option;
}

let characterize t =
  {
    Cell.name = t.t_name;
    area = t.t_area;
    input_cap = t.logical_effort *. t.drive *. cin_unit;
    intrinsic = t.parasitic *. tau;
    resistance = tau /. (t.drive *. cin_unit);
    via_sites = t.t_via_sites;
    sequential = t.t_sequential;
  }

(* Logical-effort values follow Sutherland/Sproull conventions; the LUT3 is a
   three-level pass-transistor mux tree with via-programmed rails, hence the
   large parasitic delay and footprint (the paper: "the VPGA LUT is
   substantially inferior to an equivalent standard cell ... when configured
   as a simple logic function").  The XOA mux is deliberately sized up
   (paper: "sized differently from the other two MUXes to minimize logic
   delay"). *)
let templates =
  [
    { t_name = "inv"; logical_effort = 1.0; parasitic = 1.0; drive = 2.0;
      t_area = 6.0; t_via_sites = 2; t_sequential = None };
    { t_name = "buf"; logical_effort = 1.0; parasitic = 2.0; drive = 4.0;
      t_area = 10.0; t_via_sites = 2; t_sequential = None };
    { t_name = "nd2wi"; logical_effort = 4.0 /. 3.0; parasitic = 2.0;
      drive = 2.0; t_area = 12.0; t_via_sites = 6; t_sequential = None };
    { t_name = "nd3wi"; logical_effort = 5.0 /. 3.0; parasitic = 3.0;
      drive = 2.0; t_area = 16.0; t_via_sites = 8; t_sequential = None };
    { t_name = "mux2"; logical_effort = 2.0; parasitic = 3.5; drive = 2.0;
      t_area = 20.0; t_via_sites = 10; t_sequential = None };
    { t_name = "xoa"; logical_effort = 2.0; parasitic = 3.0; drive = 3.0;
      t_area = 26.0; t_via_sites = 12; t_sequential = None };
    { t_name = "lut3"; logical_effort = 2.6; parasitic = 11.0; drive = 2.0;
      t_area = 86.0; t_via_sites = 16; t_sequential = None };
    { t_name = "dff"; logical_effort = 1.5; parasitic = 6.0; drive = 2.0;
      t_area = 42.0; t_via_sites = 4;
      t_sequential = Some { Cell.setup = 55.0; clk_to_q = 84.0 } };
  ]

let all_cells = List.map characterize templates

let find name =
  match List.find_opt (fun c -> c.Cell.name = name) all_cells with
  | Some c -> c
  | None -> raise Not_found

let fo4 c = Cell.delay c ~load:(4.0 *. c.Cell.input_cap)
