(** A characterized component cell of a PLB architecture.

    Each component cell has a fixed size (the paper: "each component cell has
    a fixed size which is chosen to give a good power-delay tradeoff"), so a
    single linear delay model per cell suffices:
    [delay = intrinsic + resistance * load]. *)

type seq = { setup : float; clk_to_q : float }

type t = {
  name : string;
  area : float;  (** layout area, um^2 *)
  input_cap : float;  (** per input pin, fF *)
  intrinsic : float;  (** parasitic delay, ps *)
  resistance : float;  (** effective drive resistance, ps/fF *)
  via_sites : int;  (** potential via locations used for configuration *)
  sequential : seq option;
}

val delay : t -> load:float -> float
(** Pin-to-output delay in ps under [load] fF.  For a sequential cell this is
    the clk-to-Q delay (intrinsic already includes it). *)

val pp : Format.formatter -> t -> unit
