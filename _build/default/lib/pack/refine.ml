module Netlist = Vpga_netlist.Netlist
module Packer = Vpga_plb.Packer
module Placement = Vpga_place.Placement

type stats = { moves : int; accepted : int; initial_cost : float; final_cost : float }

let run ?iterations ?(radius = 4) ?criticality ~seed q pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let n = Netlist.size nl in
  let rng = Random.State.make [| seed |] in
  let item_of = Array.make n None in
  Array.iter
    (fun node -> item_of.(node.Netlist.id) <- Quadrisect.item_of_node node)
    (Netlist.nodes nl);
  let packed =
    Array.of_list
      (List.filter
         (fun id -> q.Quadrisect.tile_of_node.(id) >= 0 && item_of.(id) <> None)
         (List.init n Fun.id))
  in
  let n_packed = Array.length packed in
  if n_packed = 0 then
    { moves = 0; accepted = 0; initial_cost = 0.0; final_cost = 0.0 }
  else begin
    let cols = q.Quadrisect.cols and rows = q.Quadrisect.rows in
    let members = Array.make (cols * rows) [] in
    Array.iter
      (fun id ->
        let t = q.Quadrisect.tile_of_node.(id) in
        members.(t) <- id :: members.(t))
      packed;
    let items_of tile = List.filter_map (fun id -> item_of.(id)) members.(tile) in
    (* Net bookkeeping (criticality-weighted HPWL), as in the annealer. *)
    let nets = Placement.nets_with_io pl in
    let crit id = match criticality with None -> 0.0 | Some c -> c.(id) in
    let weight =
      Array.map
        (fun net ->
          1.0 +. (3.0 *. Array.fold_left (fun a id -> max a (crit id)) 0.0 net))
        nets
    in
    let deg = Array.make n 0 in
    Array.iter (fun net -> Array.iter (fun id -> deg.(id) <- deg.(id) + 1) net) nets;
    let incident = Array.init n (fun id -> Array.make deg.(id) 0) in
    let fill = Array.make n 0 in
    Array.iteri
      (fun e net ->
        Array.iter
          (fun id ->
            incident.(id).(fill.(id)) <- e;
            fill.(id) <- fill.(id) + 1)
          net)
      nets;
    let net_cost =
      Array.mapi (fun e net -> weight.(e) *. Placement.net_hpwl pl net) nets
    in
    let total = ref (Array.fold_left ( +. ) 0.0 net_cost) in
    let initial_cost = !total in
    let delta_of touched =
      List.fold_left
        (fun acc e ->
          acc +. ((weight.(e) *. Placement.net_hpwl pl nets.(e)) -. net_cost.(e)))
        0.0 touched
    in
    let commit touched =
      List.iter
        (fun e -> net_cost.(e) <- weight.(e) *. Placement.net_hpwl pl nets.(e))
        touched
    in
    let touched_of ids =
      List.sort_uniq compare
        (List.concat_map (fun id -> Array.to_list incident.(id)) ids)
    in
    let set_tile id tile =
      let old = q.Quadrisect.tile_of_node.(id) in
      members.(old) <- List.filter (fun u -> u <> id) members.(old);
      members.(tile) <- id :: members.(tile);
      q.Quadrisect.tile_of_node.(id) <- tile;
      let x, y = Quadrisect.tile_center q tile in
      pl.Placement.x.(id) <- x;
      pl.Placement.y.(id) <- y
    in
    let iterations =
      match iterations with Some i -> i | None -> 60 * n_packed
    in
    let t_start =
      max 1.0 (initial_cost /. float_of_int (max 1 (Array.length nets)))
    in
    let t_end = t_start /. 1000.0 in
    let alpha = exp (log (t_end /. t_start) /. float_of_int (max 1 iterations)) in
    let temp = ref t_start in
    let accepted = ref 0 in
    for _ = 1 to iterations do
      let id = packed.(Random.State.int rng n_packed) in
      let cur = q.Quadrisect.tile_of_node.(id) in
      let cc = cur mod cols and cr = cur / cols in
      let dc = Random.State.int rng ((2 * radius) + 1) - radius in
      let dr = Random.State.int rng ((2 * radius) + 1) - radius in
      let nc = min (cols - 1) (max 0 (cc + dc)) in
      let nr = min (rows - 1) (max 0 (cr + dr)) in
      let dest = (nr * cols) + nc in
      if dest <> cur then begin
        let item = match item_of.(id) with Some i -> i | None -> assert false in
        (* Try a plain move; if the destination is full, try swapping with a
           random resident. *)
        let try_swap_with =
          if Packer.fits q.Quadrisect.arch (item :: items_of dest) then None
          else
            match members.(dest) with
            | [] -> Some (-1) (* nothing to swap; give up *)
            | l -> Some (List.nth l (Random.State.int rng (List.length l)))
        in
        let apply () =
          match try_swap_with with
          | None ->
              set_tile id dest;
              Some [ id ]
          | Some other when other >= 0 ->
              let other_item =
                match item_of.(other) with Some i -> i | None -> assert false
              in
              let dest_without =
                List.filter_map
                  (fun u -> if u = other then None else item_of.(u))
                  members.(dest)
              in
              let cur_without =
                List.filter_map
                  (fun u -> if u = id then None else item_of.(u))
                  members.(cur)
              in
              if
                Packer.fits q.Quadrisect.arch (item :: dest_without)
                && Packer.fits q.Quadrisect.arch (other_item :: cur_without)
              then begin
                set_tile id dest;
                set_tile other cur;
                Some [ id; other ]
              end
              else None
          | Some _ -> None
        in
        match apply () with
        | None -> ()
        | Some moved ->
            let touched = touched_of moved in
            let d = delta_of touched in
            let accept =
              d <= 0.0
              || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
            in
            if accept then begin
              commit touched;
              total := !total +. d;
              incr accepted
            end
            else begin
              (* undo *)
              match moved with
              | [ only ] -> set_tile only cur
              | [ a; b ] ->
                  set_tile a cur;
                  set_tile b dest
              | _ -> assert false
            end
      end;
      temp := !temp *. alpha
    done;
    { moves = iterations; accepted = !accepted; initial_cost; final_cost = !total }
  end
