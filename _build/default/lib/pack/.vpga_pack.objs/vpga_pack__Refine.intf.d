lib/pack/refine.mli: Quadrisect Vpga_place
