lib/pack/quadrisect.mli: Vpga_netlist Vpga_place Vpga_plb
