lib/pack/quadrisect.ml: Array Float List Vpga_logic Vpga_netlist Vpga_place Vpga_plb
