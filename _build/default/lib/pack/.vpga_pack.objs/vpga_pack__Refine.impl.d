lib/pack/refine.ml: Array Fun List Quadrisect Random Vpga_netlist Vpga_place Vpga_plb
