(** Post-legalization refinement: the paper's iterative loop between the
    packing step and physical synthesis ("the packing algorithm [runs] in an
    iterative loop with the physical synthesis tool Dolphin ... It ensures
    that the performance degradation due to legalizing the ASIC-style
    placement is minimal").

    Simulated annealing over tile assignments: single-item moves to nearby
    tiles and item swaps, accepted only when the destination tiles remain
    feasible ({!Vpga_plb.Packer.fits}), minimizing criticality-weighted
    half-perimeter wirelength.  Mutates the quadrisection result and the
    snapped placement coordinates in place. *)

type stats = { moves : int; accepted : int; initial_cost : float; final_cost : float }

val run :
  ?iterations:int ->
  ?radius:int ->
  ?criticality:float array ->
  seed:int ->
  Quadrisect.t ->
  Vpga_place.Placement.t ->
  stats
(** [run ~seed q pl] — [pl] must already be snapped to [q]'s tile grid;
    [radius] (default 4) bounds how far (in tiles) a single move may go;
    [iterations] defaults to [60 * packed items]. *)
