(* Quickstart: build a small design, push it through the full VPGA flow on
   both PLB architectures, and print what the paper's Tables 1/2 would show
   for it.

     dune exec examples/quickstart.exe *)

open Vpga_core.Vpga

let () =
  (* An 8-bit ALU: a small datapath-dominated design. *)
  let design = Alu.build ~width:8 () in
  Format.printf "Design: %a@." Netlist.pp_stats design;

  (* Run flow a (ASIC-style) and flow b (packed PLB array) on both PLBs. *)
  let lut, granular = compare_architectures ~seed:1 design in

  let show name (pair : Flow.pair) =
    let o b = if b then pair.Flow.b else pair.Flow.a in
    Format.printf
      "%-14s flow a: die %8.0f um^2, top-10 slack %7.1f ps@." name
      (o false).Flow.die_area (o false).Flow.avg_top10_slack;
    Format.printf
      "%-14s flow b: die %8.0f um^2, top-10 slack %7.1f ps  (PLB array %s)@."
      name (o true).Flow.die_area (o true).Flow.avg_top10_slack
      (match (o true).Flow.array_dims with
      | Some (c, r) -> Printf.sprintf "%dx%d" c r
      | None -> "-")
  in
  show "LUT-based PLB" lut;
  show "granular PLB" granular;
  Format.printf "@.Granular vs LUT (flow b): %.1f%% smaller die, %.1f ps more slack@."
    (100.0 *. (1.0 -. (granular.Flow.b.Flow.die_area /. lut.Flow.b.Flow.die_area)))
    (granular.Flow.b.Flow.avg_top10_slack -. lut.Flow.b.Flow.avg_top10_slack)
