(* A deeper look at one datapath design (the FPU) going through the flow:
   compaction gain, configuration histogram, placement/routing statistics,
   and the flow-a vs flow-b comparison on both PLB architectures.

     dune exec examples/datapath_flow.exe *)

open Vpga_core.Vpga

let () =
  let design = Fpu.build ~exp_bits:6 ~mant_bits:12 () in
  Format.printf "Design: %a@." Netlist.pp_stats design;
  List.iter
    (fun arch ->
      Format.printf "@.=== %s ===@." arch.Arch.name;
      (* Stage-by-stage, the flow's front end: *)
      let mapped = Techmap.map arch design in
      let compacted = Compact.run arch design in
      Format.printf "technology mapping: %6.0f um^2 of component cells@."
        (Techmap.cell_area mapped);
      Format.printf "after compaction:   %6.0f um^2 (%.1f%% saved; paper ~15%%)@."
        (Techmap.cell_area compacted)
        (100.0 *. (1.0 -. Techmap.cell_area compacted /. Techmap.cell_area mapped));
      Format.printf "configurations:";
      List.iter
        (fun (c, n) -> Format.printf " %s:%d" (Config.name c) n)
        (Compact.config_histogram compacted);
      Format.printf "@.";
      (* And the two flows: *)
      let pair = run_flow ~seed:1 arch design in
      let show (o : Flow.outcome) =
        Format.printf
          "  flow %s: die %8.0f um^2, wire %7.0f um, top-10 slack %8.1f ps%s@."
          (match o.Flow.kind with Flow.Flow_a -> "a" | Flow.Flow_b -> "b")
          o.Flow.die_area o.Flow.wirelength o.Flow.avg_top10_slack
          (match o.Flow.array_dims with
          | Some (c, r) ->
              Printf.sprintf "  [PLB array %dx%d, %d tiles used, displacement %.0f um]"
                c r o.Flow.tiles_used o.Flow.displacement
          | None -> "")
      in
      show pair.Flow.a;
      show pair.Flow.b)
    Arch.all
