(* Export the flow's output artifacts: structural Verilog of the mapped
   netlist, a DEF-flavoured placement dump and an SVG rendering of the PLB
   array — the open equivalents of the paper's "GDSII description of the
   layout in the form of a regular array of PLBs".

     dune exec examples/export_layout.exe
     (writes alu8.v / alu8.def / alu8.svg into the current directory) *)

open Vpga_core.Vpga

let () =
  let design = Alu.build ~width:8 () in
  let arch = Arch.granular_plb in
  (* Front-end + placement + packing, step by step. *)
  let compacted = Compact.run arch design in
  let buffered = Buffering.insert ~max_fanout:8 compacted in
  let pl = Placement.create buffered in
  Global_place.place ~seed:1 pl;
  ignore (Anneal.refine ~iterations:40000 ~seed:2 pl);
  let q = Quadrisect.legalize arch pl in
  Quadrisect.snap q pl;
  ignore (Refine.run ~iterations:40000 ~seed:3 q pl);
  (* Routed + detailed. *)
  let routed = Pathfinder.route_placement pl in
  let detail = Detail.run routed.Pathfinder.grid routed.Pathfinder.routes in
  Format.printf
    "%s on %s: %dx%d PLB array, %.0f um of wire, %d tracks deep, %d vias@."
    (Netlist.design_name design) arch.Arch.name q.Quadrisect.cols
    q.Quadrisect.rows
    (Pathfinder.total_wirelength routed)
    (detail.Detail.max_track + 1) detail.Detail.total_vias;
  (* Artifacts. *)
  Export.write_file "alu8.v" (Export.verilog buffered);
  Export.write_file "alu8.def" (Export.def_ ~packing:q pl);
  Export.write_file "alu8.svg" (Export.svg q pl);
  Format.printf "wrote alu8.v, alu8.def, alu8.svg@."
