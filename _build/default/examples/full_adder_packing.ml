(* The Section-2.2 result: a full adder fits in ONE granular PLB but needs
   TWO LUT-based PLBs.  This example builds the paper's realization (shared
   propagate on the XOA, carry as mux(P; G, Cin)), proves it equivalent to
   the behavioural full adder, and shows the tile packing.

     dune exec examples/full_adder_packing.exe *)

open Vpga_core.Vpga

let () =
  let reference = Full_adder.reference () in
  let realization = Full_adder.granular_realization () in
  (match Equiv.check_exhaustive reference realization with
  | Equiv.Equivalent -> Format.printf "Realization is equivalent: yes@."
  | Equiv.Mismatch _ -> failwith "realization broken");
  Format.printf "@.Granular realization:@.%a@." Netlist.pp_stats realization;
  Report.full_adder Format.std_formatter ();
  (* Why: neither sum (XOR3) nor carry (MAJ3) is ND3WI-feasible, so on the
     LUT-based PLB each burns its single 3-LUT. *)
  let v i = Bfun.var ~arity:3 i in
  let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2) in
  let maj3 = Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2)) in
  List.iter
    (fun (name, f) ->
      Format.printf
        "  %-6s nd3wi-feasible: %-5b lut config: %-4s granular config: %s@."
        name (Gates.nd3wi_feasible f)
        (Config.name (Config.choose Arch.lut_plb f))
        (Config.name (Config.choose Arch.granular_plb f)))
    [ ("sum", xor3); ("carry", maj3) ];
  (* An 8-bit ripple-carry adder through the compactor: the cover discovers
     the shared-propagate structure on its own. *)
  let nl = Netlist.create ~name:"rca8" () in
  let a = Wordgen.input_bus nl "a" 8 in
  let b = Wordgen.input_bus nl "b" 8 in
  let sum, cout = Wordgen.ripple_adder nl a b in
  Wordgen.output_bus nl "sum" sum;
  ignore (Netlist.output nl "cout" cout);
  List.iter
    (fun arch ->
      let compacted = Compact.run arch nl in
      let items =
        Array.to_list (Netlist.nodes compacted)
        |> List.filter_map Quadrisect.item_of_node
      in
      Format.printf "@.%s: rca8 packs into %d tiles (%d supernodes)@."
        arch.Arch.name
        (Packer.tiles_needed arch items)
        (List.length items))
    Arch.all
