(* Explore the Section-2 Boolean analysis: classify all 256 3-input
   functions (S3 feasibility, Figure-2 categories) and show, for a few named
   functions, which logic configuration each PLB uses and at what delay.

     dune exec examples/function_explorer.exe *)

open Vpga_core.Vpga

let v i = Bfun.var ~arity:3 i

let named_functions =
  [
    ("and3", Bfun.(v 0 &&& v 1 &&& v 2));
    ("nand3", Bfun.(lnot (v 0 &&& v 1 &&& v 2)));
    ("mux(c;a,b)", Bfun.mux ~sel:(v 2) (v 0) (v 1));
    ("xor2", Bfun.(v 0 ^^^ v 1));
    ("xor3", Bfun.(v 0 ^^^ v 1 ^^^ v 2));
    ("majority", Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2)));
    ("one-hot", Bfun.make ~arity:3 0x16);
    ("aoi", Bfun.(lnot ((v 0 &&& v 1) ||| v 2)));
  ]

let () =
  Report.s3 Format.std_formatter ();
  Format.printf "@.Per-function mapping (load = 10 fF):@.";
  Format.printf "  %-12s %-18s %-10s %8s   %-10s %8s@." "function" "tt"
    "granular" "ps" "lut-plb" "ps";
  List.iter
    (fun (name, f) ->
      let cg = Config.choose Arch.granular_plb f in
      let cl = Config.choose Arch.lut_plb f in
      Format.printf "  %-12s %-18s %-10s %8.1f   %-10s %8.1f@." name
        (Bfun.to_string f) (Config.name cg)
        (Config.delay cg ~load:10.0)
        (Config.name cl)
        (Config.delay cl ~load:10.0))
    named_functions;
  Format.printf "@.";
  Report.config_delays Format.std_formatter ()
