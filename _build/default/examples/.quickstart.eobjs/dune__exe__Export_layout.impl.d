examples/export_layout.ml: Alu Anneal Arch Buffering Compact Detail Export Format Global_place Netlist Pathfinder Placement Quadrisect Refine Vpga_core
