examples/function_explorer.mli:
