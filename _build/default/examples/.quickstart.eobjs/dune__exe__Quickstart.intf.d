examples/quickstart.mli:
