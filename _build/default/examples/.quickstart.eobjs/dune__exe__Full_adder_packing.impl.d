examples/full_adder_packing.ml: Arch Array Bfun Compact Config Equiv Format Full_adder Gates List Netlist Packer Quadrisect Report Vpga_core Wordgen
