examples/datapath_flow.mli:
