examples/full_adder_packing.mli:
