examples/export_layout.mli:
