examples/datapath_flow.ml: Arch Compact Config Flow Format Fpu List Netlist Printf Techmap Vpga_core
