examples/custom_design.ml: Arch Array Flow Format Kind List Netlist Printf Simulate Vpga_core Wordgen
