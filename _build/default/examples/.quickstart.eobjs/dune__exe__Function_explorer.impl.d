examples/function_explorer.ml: Arch Bfun Config Format List Report Vpga_core
