examples/quickstart.ml: Alu Flow Format Netlist Printf Vpga_core
