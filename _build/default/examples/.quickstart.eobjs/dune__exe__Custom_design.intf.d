examples/custom_design.mli:
