(* Bring your own RTL: build a custom design with the word-level kit (a
   4-tap moving-average filter), verify it by simulation, and map it onto
   the granular VPGA.

     dune exec examples/custom_design.exe *)

open Vpga_core.Vpga

let width = 8

(* y = (x + x1 + x2 + x3) / 4 over a sliding window of the last 4 samples. *)
let build () =
  let nl = Netlist.create ~name:"movavg4" () in
  let x = Wordgen.input_bus nl "x" width in
  let x1 = Wordgen.register_bus nl x in
  let x2 = Wordgen.register_bus nl x1 in
  let x3 = Wordgen.register_bus nl x2 in
  (* widen to 10 bits before summing *)
  let widen bus =
    let zero = Netlist.gate nl (Kind.Const false) [||] in
    Array.append bus [| zero; zero |]
  in
  let s01, _ = Wordgen.ripple_adder nl (widen x) (widen x1) in
  let s23, _ = Wordgen.ripple_adder nl (widen x2) (widen x3) in
  let total, _ = Wordgen.ripple_adder nl s01 s23 in
  (* divide by 4 = drop two low bits *)
  let y = Array.sub total 2 width in
  Wordgen.output_bus nl "y" (Wordgen.register_bus nl y);
  nl

let () =
  let nl = build () in
  Format.printf "Design: %a@." Netlist.pp_stats nl;
  (* Check behaviour against a software model for a pulse input. *)
  let sim = Simulate.create nl in
  Simulate.reset sim;
  let bits v = Array.init width (fun i -> (v lsr i) land 1 = 1) in
  let samples = [ 100; 100; 100; 100; 0; 0; 0; 0; 200; 200; 200; 200; 0 ] in
  let window = ref [ 0; 0; 0; 0 ] in
  List.iteri
    (fun t v ->
      let po = Simulate.step sim (bits v) in
      let out = ref 0 in
      Array.iteri (fun i b -> if b then out := !out lor (1 lsl i)) po;
      (* output register lags the window by one cycle *)
      if t >= 1 then begin
        let expect = List.fold_left ( + ) 0 !window / 4 in
        assert (!out = expect land 0xFF)
      end;
      window := v :: List.filteri (fun i _ -> i < 3) !window)
    samples;
  Format.printf "Simulation against the software model: ok@.";
  (* Map onto the granular VPGA. *)
  let pair = run_flow ~seed:1 Arch.granular_plb nl in
  Format.printf
    "Granular VPGA: %s PLB array, die %.0f um^2, top-10 slack %.1f ps@."
    (match pair.Flow.b.Flow.array_dims with
    | Some (c, r) -> Printf.sprintf "%dx%d" c r
    | None -> "-")
    pair.Flow.b.Flow.die_area pair.Flow.b.Flow.avg_top10_slack
