(* End-to-end flow tests: both flows on the four (test-scale) designs, and
   the shape of the paper's Section-3.2 claims. *)

module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
open Vpga_flow

(* One shared run of the whole evaluation at test scale. *)
let rows = lazy (Experiments.run_all ~seed:1 Experiments.Test)

let test_outcomes_sane () =
  List.iter
    (fun r ->
      List.iter
        (fun (pair : Flow.pair) ->
          List.iter
            (fun (o : Flow.outcome) ->
              let l = r.Experiments.name in
              Alcotest.(check bool) (l ^ " positive die") true (o.Flow.die_area > 0.0);
              Alcotest.(check bool) (l ^ " positive cells") true (o.Flow.cell_area > 0.0);
              Alcotest.(check bool) (l ^ " wirelength") true (o.Flow.wirelength > 0.0);
              Alcotest.(check bool) (l ^ " slack below period") true
                (o.Flow.avg_top10_slack < 500.0))
            [ pair.Flow.a; pair.Flow.b ])
        [ r.Experiments.lut; r.Experiments.granular ])
    (Lazy.force rows)

let test_flow_b_larger_than_a () =
  (* the regular array always costs area over the ASIC placement — the
     "die-area overhead ... due to the additional packing step" *)
  List.iter
    (fun r ->
      List.iter
        (fun (pair : Flow.pair) ->
          Alcotest.(check bool)
            (r.Experiments.name ^ " b >= a")
            true
            (pair.Flow.b.Flow.die_area >= pair.Flow.a.Flow.die_area))
        [ r.Experiments.lut; r.Experiments.granular ])
    (Lazy.force rows)

let test_headline_shape () =
  let h = Experiments.headlines (Lazy.force rows) in
  (* The paper's direction-of-effect claims (magnitudes are
     substrate-dependent; see EXPERIMENTS.md). *)
  Alcotest.(check bool) "granular reduces datapath die area" true
    (h.Experiments.datapath_area_reduction > 0.10);
  Alcotest.(check bool) "FPU reduction substantial" true
    (h.Experiments.fpu_area_reduction > 0.10);
  Alcotest.(check bool) "granular reduces packing overhead" true
    (h.Experiments.packing_overhead_reduction > 0.0);
  Alcotest.(check bool) "firewire reversal (paper's area caveat)" true
    h.Experiments.firewire_reversal;
  Alcotest.(check bool) "granular improves top-10 slack" true
    (h.Experiments.slack_improvement > 0.05)

let test_granular_beats_lut_on_datapath () =
  List.iter
    (fun r ->
      if r.Experiments.name <> "Firewire" then begin
        Alcotest.(check bool)
          (r.Experiments.name ^ ": granular flow-b die smaller")
          true
          (r.Experiments.granular.Flow.b.Flow.die_area
          < r.Experiments.lut.Flow.b.Flow.die_area);
        Alcotest.(check bool)
          (r.Experiments.name ^ ": granular flow-b slack better")
          true
          (r.Experiments.granular.Flow.b.Flow.avg_top10_slack
          > r.Experiments.lut.Flow.b.Flow.avg_top10_slack)
      end)
    (Lazy.force rows)

let test_compaction_gains () =
  (* paper: "this compaction step resulted in a significant reduction in
     total gate area of about 15% on the average" *)
  let table = Experiments.compaction_table Experiments.Test in
  let gains = List.map (fun (_, _, _, _, g) -> g) table in
  let mean = List.fold_left ( +. ) 0.0 gains /. float_of_int (List.length gains) in
  Alcotest.(check bool)
    (Printf.sprintf "mean compaction gain %.1f%% in [5%%, 60%%]" (100.0 *. mean))
    true
    (mean > 0.05 && mean < 0.60);
  List.iter
    (fun (d, a, before, after, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: compaction never grows area" d a)
        true (after <= before))
    table

let test_config_distribution () =
  (* paper: "majority of the functions that are mapped to a 3-LUT in the
     LUT-based PLB are mapped to a NDMX or XOAMX configuration" — on the
     granular PLB, LUTs are gone and mux-family configurations dominate *)
  List.iter
    (fun (design, hist) ->
      Alcotest.(check bool) (design ^ ": no LUTs on granular") true
        (not (List.mem_assoc Config.Lut hist));
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
      let mux_family =
        List.fold_left
          (fun acc (c, n) ->
            match c with
            | Config.Mx | Config.Ndmx | Config.Xoamx | Config.Xoandmx
            | Config.Mux3 | Config.Carry ->
                acc + n
            | Config.Invb | Config.Nd2 | Config.Nd3 | Config.Lut -> acc)
          0 hist
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: mux-family configurations are significant (%d/%d)"
           design mux_family total)
        true
        (float_of_int mux_family > 0.2 *. float_of_int total))
    (Experiments.config_distribution (Lazy.force rows))

let test_s3_and_full_adder_experiments () =
  let c = Experiments.s3_census () in
  Alcotest.(check int) "E1" 196 c.Vpga_logic.S3.s3_feasible;
  Alcotest.(check int) "E2" 256 c.Vpga_logic.S3.modified_feasible;
  Alcotest.(check (list (pair string int)))
    "E3"
    [ ("lut_plb", 2); ("granular_plb", 1) ]
    (Experiments.full_adder_tiles ())

let test_config_delay_table () =
  let t = Experiments.config_delays () in
  let find c = List.find (fun (c', _, _) -> c' = c) t in
  let (_, d_lut, _) = find Config.Lut in
  List.iter
    (fun c ->
      let (_, d, _) = find c in
      Alcotest.(check bool)
        (Config.name c ^ " faster than the 3-LUT (paper section 2.3)")
        true (d < d_lut))
    [ Config.Mx; Config.Nd3; Config.Ndmx; Config.Xoamx; Config.Xoandmx ]

let test_firewire_remedy () =
  (* E10, the paper's future-work claim: a flop-richer granular PLB removes
     the Firewire area reversal. *)
  match Experiments.firewire_remedy Experiments.Test with
  | [ (_, lut_die, _); (_, g_die, g_slack); (_, g2_die, g2_slack) ] ->
      Alcotest.(check bool) "2ff variant beats plain granular on area" true
        (g2_die < g_die);
      Alcotest.(check bool) "2ff variant removes the reversal" true
        (g2_die < lut_die);
      Alcotest.(check bool) "2ff variant does not hurt timing" true
        (g2_slack >= g_slack -. 100.0)
  | _ -> Alcotest.fail "unexpected remedy table shape"

let test_routing_styles () =
  (* E14: switched regular routing costs timing vs the VPGA's ASIC-style
     custom routing — the reason the paper routes "on top of, instead of
     adjacent to the PLB array" *)
  List.iter
    (fun (design, custom, regular) ->
      Alcotest.(check bool)
        (design ^ ": custom routing is faster")
        true (custom > regular))
    (Experiments.routing_styles Experiments.Test)

let test_displacement_mechanism () =
  (* perturbation data: legalization keeps cells within a few tiles of the
     ASIC placement on both architectures (reported, not a directional
     claim; see EXPERIMENTS.md) *)
  let h = Experiments.headlines (Lazy.force rows) in
  Alcotest.(check bool) "displacement delta bounded" true
    (Float.abs h.Experiments.displacement_reduction < 1.0);
  List.iter
    (fun r ->
      List.iter
        (fun (pair : Flow.pair) ->
          Alcotest.(check bool)
            (r.Experiments.name ^ ": perturbation within a few tiles")
            true
            (pair.Flow.b.Flow.displacement_tiles < 3.0))
        [ r.Experiments.lut; r.Experiments.granular ])
    (Lazy.force rows)

let test_seed_stability () =
  (* the area claims are packing-driven, not seed-driven: they must hold
     verbatim under a different flow seed *)
  let rows2 = Experiments.run_all ~seed:7 Experiments.Test in
  let h = Experiments.headlines rows2 in
  Alcotest.(check bool) "area reduction stable across seeds" true
    (h.Experiments.datapath_area_reduction > 0.10);
  Alcotest.(check bool) "firewire reversal stable across seeds" true
    h.Experiments.firewire_reversal;
  (* and die areas are bit-identical to the seed-1 run *)
  List.iter2
    (fun r1 r2 ->
      Alcotest.(check (float 0.0))
        (r1.Experiments.name ^ ": flow-b die is seed-independent")
        r1.Experiments.granular.Flow.b.Flow.die_area
        r2.Experiments.granular.Flow.b.Flow.die_area)
    (Lazy.force rows) rows2

(* Fuzz: small random sequential designs survive the entire flow on both
   architectures (the flow's own equivalence gates verify functionality). *)
let prop_flow_fuzz =
  QCheck.Test.make ~name:"random designs survive both flows" ~count:6
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nl = Vpga_netlist.Netlist.create ~name:"fuzz" () in
      let module N = Vpga_netlist.Netlist in
      let module K = Vpga_netlist.Kind in
      let pis = List.init 4 (fun i -> N.input nl (Printf.sprintf "i%d" i)) in
      let flops = List.init 3 (fun _ -> N.dff nl) in
      let pool = ref (pis @ flops) in
      let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
      for _ = 1 to 25 do
        let k =
          match Random.State.int rng 8 with
          | 0 -> K.And2
          | 1 -> K.Or2
          | 2 -> K.Xor2
          | 3 -> K.Nand2
          | 4 -> K.Mux2
          | 5 -> K.Maj3
          | 6 -> K.Xor3
          | _ -> K.Inv
        in
        pool := N.gate nl k (Array.init (K.arity k) (fun _ -> pick ())) :: !pool
      done;
      List.iter (fun f -> N.connect nl ~flop:f ~d:(pick ())) flops;
      ignore (N.output nl "o1" (pick ()));
      ignore (N.output nl "o2" (pick ()));
      List.for_all
        (fun arch ->
          let pair = Flow.run ~seed:(seed + 1) arch nl in
          pair.Flow.b.Flow.die_area > 0.0 && pair.Flow.a.Flow.die_area > 0.0)
        Arch.all)

let test_flow_equivalence_gate () =
  (* identical designs pass the gate... *)
  let good = Vpga_designs.Alu.build ~width:4 () in
  Flow.check_equivalence good (Vpga_designs.Alu.build ~width:4 ());
  (* ...and a behavioural difference under the same interface is caught *)
  let module N = Vpga_netlist.Netlist in
  let module K = Vpga_netlist.Kind in
  let mk kind =
    let nl = N.create ~name:"gate" () in
    let a = N.input nl "a" in
    let b = N.input nl "b" in
    ignore (N.output nl "y" (N.gate nl kind [| a; b |]));
    nl
  in
  match Flow.check_equivalence (mk K.And2) (mk K.Or2) with
  | () -> Alcotest.fail "mutation not caught by the flow gate"
  | exception Failure _ -> ()

let () =
  Alcotest.run "vpga_flow"
    [
      ( "outcomes",
        [
          Alcotest.test_case "sane" `Quick test_outcomes_sane;
          Alcotest.test_case "flow b costs area" `Quick test_flow_b_larger_than_a;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "headline shape" `Quick test_headline_shape;
          Alcotest.test_case "granular wins datapath" `Quick
            test_granular_beats_lut_on_datapath;
          Alcotest.test_case "compaction" `Quick test_compaction_gains;
          Alcotest.test_case "config distribution" `Quick test_config_distribution;
          Alcotest.test_case "s3 and full adder" `Quick
            test_s3_and_full_adder_experiments;
          Alcotest.test_case "config delays" `Quick test_config_delay_table;
          Alcotest.test_case "firewire remedy (E10)" `Quick test_firewire_remedy;
          Alcotest.test_case "routing styles (E14)" `Quick test_routing_styles;
          Alcotest.test_case "seed stability" `Slow test_seed_stability;
          Alcotest.test_case "displacement data" `Quick
            test_displacement_mechanism;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "equivalence gate" `Quick test_flow_equivalence_gate;
          QCheck_alcotest.to_alcotest prop_flow_fuzz;
        ] );
    ]
