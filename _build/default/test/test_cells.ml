(* Tests for the cell library, logical-effort characterization and the
   power model. *)

module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize
module Library = Vpga_cells.Library
module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Config = Vpga_plb.Config
module Power = Vpga_timing.Power
module Sta = Vpga_timing.Sta

let test_templates_characterize () =
  List.iter
    (fun t ->
      let c = Characterize.characterize t in
      Alcotest.(check string) "name preserved" t.Characterize.t_name c.Cell.name;
      Alcotest.(check bool) "positive area" true (c.Cell.area > 0.0);
      Alcotest.(check bool) "positive cap" true (c.Cell.input_cap > 0.0);
      Alcotest.(check bool) "positive intrinsic" true (c.Cell.intrinsic > 0.0);
      Alcotest.(check bool) "positive resistance" true (c.Cell.resistance > 0.0))
    Characterize.templates

let test_find () =
  List.iter
    (fun name ->
      Alcotest.(check string) name name (Characterize.find name).Cell.name)
    [ "inv"; "buf"; "nd2wi"; "nd3wi"; "mux2"; "xoa"; "lut3"; "dff" ];
  Alcotest.check_raises "unknown cell" Not_found (fun () ->
      ignore (Characterize.find "nonsense"))

let test_delay_model () =
  let mux = Characterize.find "mux2" in
  (* linear and monotone in load *)
  let d0 = Cell.delay mux ~load:0.0 in
  let d10 = Cell.delay mux ~load:10.0 in
  let d20 = Cell.delay mux ~load:20.0 in
  Alcotest.(check (float 1e-9)) "intrinsic at zero load" mux.Cell.intrinsic d0;
  Alcotest.(check (float 1e-9)) "linearity" (d10 -. d0) (d20 -. d10);
  Alcotest.(check bool) "monotone" true (d20 > d10 && d10 > d0)

let test_relative_speeds () =
  let fo4 n = Characterize.fo4 (Characterize.find n) in
  (* the paper's central premise: the LUT3 is much slower than the simple
     gates when computing simple functions *)
  Alcotest.(check bool) "lut3 slowest" true
    (List.for_all
       (fun n -> fo4 "lut3" > fo4 n)
       [ "inv"; "nd2wi"; "nd3wi"; "mux2"; "xoa" ]);
  Alcotest.(check bool) "lut3 at least 1.5x a mux" true
    (fo4 "lut3" > 1.5 *. fo4 "mux2");
  (* the XOA is sized up: stronger drive than the plain mux *)
  let xoa = Characterize.find "xoa" and mux = Characterize.find "mux2" in
  Alcotest.(check bool) "xoa drives harder" true
    (xoa.Cell.resistance < mux.Cell.resistance)

let test_dff_seq () =
  match (Characterize.find "dff").Cell.sequential with
  | Some s ->
      Alcotest.(check bool) "setup positive" true (s.Cell.setup > 0.0);
      Alcotest.(check bool) "clk-q positive" true (s.Cell.clk_to_q > 0.0)
  | None -> Alcotest.fail "dff not sequential"

let test_libraries () =
  Alcotest.(check bool) "lut library has the LUT" true
    (Library.mem Library.lut_plb "lut3");
  Alcotest.(check bool) "granular has no LUT" false
    (Library.mem Library.granular_plb "lut3");
  Alcotest.(check bool) "granular has xoa" true
    (Library.mem Library.granular_plb "xoa");
  Alcotest.(check bool) "both have dff" true
    (Library.mem Library.lut_plb "dff" && Library.mem Library.granular_plb "dff");
  Alcotest.(check bool) "areas positive" true
    (Library.total_area Library.lut_plb > 0.0);
  Alcotest.check_raises "find outside library" Not_found (fun () ->
      ignore (Library.find Library.granular_plb "lut3"))

let test_via_counts () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Config.name c ^ " has vias")
        true
        (Config.via_count c > 0))
    Config.all;
  (* multi-cell configurations program more vias than single-cell ones *)
  Alcotest.(check bool) "xoandmx > mx" true
    (Config.via_count Config.Xoandmx > Config.via_count Config.Mx)

(* --- Power ----------------------------------------------------------------- *)

let mapped_design () =
  Vpga_mapper.Compact.run Vpga_plb.Arch.granular_plb
    (Vpga_designs.Alu.build ~width:6 ())

let test_activities () =
  let nl = mapped_design () in
  let a = Power.activities ~cycles:128 ~seed:3 nl in
  Alcotest.(check int) "one entry per node" (Netlist.size nl) (Array.length a);
  Alcotest.(check bool) "activities in [0,1]" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) a);
  (* random inputs toggle about half the time *)
  let inputs = Netlist.inputs nl in
  let mean =
    List.fold_left (fun acc i -> acc +. a.(i)) 0.0 inputs
    /. float_of_int (List.length inputs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "input activity ~0.5 (%.2f)" mean)
    true
    (mean > 0.35 && mean < 0.65);
  (* deterministic for a fixed seed *)
  let b = Power.activities ~cycles:128 ~seed:3 nl in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_power_estimate () =
  let nl = mapped_design () in
  let activities = Power.activities ~cycles:128 ~seed:3 nl in
  let p = Power.estimate ~activities nl in
  Alcotest.(check bool) "positive dynamic" true (p.Power.dynamic_uw > 0.0);
  Alcotest.(check bool) "positive leakage" true (p.Power.leakage_uw > 0.0);
  Alcotest.(check (float 1e-6)) "total = dyn + leak"
    (p.Power.dynamic_uw +. p.Power.leakage_uw)
    p.Power.total_uw;
  (* slower clock -> less dynamic power, same leakage *)
  let p2 = Power.estimate ~period:1000.0 ~activities nl in
  Alcotest.(check bool) "dynamic scales with f" true
    (p2.Power.dynamic_uw < p.Power.dynamic_uw);
  Alcotest.(check (float 1e-6)) "leakage unchanged" p.Power.leakage_uw
    p2.Power.leakage_uw;
  (* wire load adds power *)
  let p3 = Power.estimate ~wire:(fun _ -> (30.0, 0.1)) ~activities nl in
  Alcotest.(check bool) "wire cap adds power" true
    (p3.Power.dynamic_uw > p.Power.dynamic_uw)

let test_power_lut_costs_more () =
  (* same design, both architectures: the LUT-based mapping burns more
     capacitance and area, hence more power *)
  let nl = Vpga_designs.Alu.build ~width:6 () in
  let power arch =
    let mapped = Vpga_mapper.Compact.run arch nl in
    let activities = Power.activities ~cycles:128 ~seed:3 mapped in
    (Power.estimate ~activities mapped).Power.total_uw
  in
  Alcotest.(check bool) "granular uses less power" true
    (power Vpga_plb.Arch.granular_plb < power Vpga_plb.Arch.lut_plb)

let test_sta_pin_cap () =
  let nl = mapped_design () in
  Array.iter
    (fun node ->
      match node.Netlist.kind with
      | Kind.Mapped _ | Kind.Dff | Kind.Output ->
          Alcotest.(check bool) "positive pin cap" true (Sta.pin_cap node > 0.0)
      | _ -> ())
    (Netlist.nodes nl)

let () =
  Alcotest.run "vpga_cells"
    [
      ( "characterize",
        [
          Alcotest.test_case "templates" `Quick test_templates_characterize;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "delay model" `Quick test_delay_model;
          Alcotest.test_case "relative speeds" `Quick test_relative_speeds;
          Alcotest.test_case "dff" `Quick test_dff_seq;
        ] );
      ( "library",
        [
          Alcotest.test_case "membership" `Quick test_libraries;
          Alcotest.test_case "via counts" `Quick test_via_counts;
        ] );
      ( "power",
        [
          Alcotest.test_case "activities" `Quick test_activities;
          Alcotest.test_case "estimate" `Quick test_power_estimate;
          Alcotest.test_case "lut costs more" `Quick test_power_lut_costs_more;
          Alcotest.test_case "pin caps" `Quick test_sta_pin_cap;
        ] );
    ]
