(* Tests for Vpga_logic: truth-table functions, gate feasibility, and the
   paper's Section 2.1 S3 analysis. *)

open Vpga_logic

let bfun3 = QCheck.map (Bfun.make ~arity:3) (QCheck.int_bound 255)

(* --- Bfun ------------------------------------------------------------- *)

let test_var_patterns () =
  Alcotest.(check int) "var0/3" 0xAA (Bfun.table (Bfun.var ~arity:3 0));
  Alcotest.(check int) "var1/3" 0xCC (Bfun.table (Bfun.var ~arity:3 1));
  Alcotest.(check int) "var2/3" 0xF0 (Bfun.table (Bfun.var ~arity:3 2));
  Alcotest.(check int) "var0/2" 0xA (Bfun.table (Bfun.var ~arity:2 0))

let test_eval () =
  let f = Bfun.make ~arity:3 0b10010110 in
  (* f = xor3 *)
  for m = 0 to 7 do
    let expect = (m land 1) lxor ((m lsr 1) land 1) lxor ((m lsr 2) land 1) = 1 in
    Alcotest.(check bool) (Printf.sprintf "xor3@%d" m) expect (Bfun.eval f m)
  done

let test_ops () =
  let a = Bfun.var ~arity:2 0 and b = Bfun.var ~arity:2 1 in
  Alcotest.(check int) "and" 0b1000 Bfun.(table (a &&& b));
  Alcotest.(check int) "or" 0b1110 Bfun.(table (a ||| b));
  Alcotest.(check int) "xor" 0b0110 Bfun.(table (a ^^^ b));
  Alcotest.(check int) "nand" 0b0111 Bfun.(table (nand a b));
  Alcotest.(check int) "not a" 0b0101 Bfun.(table (lnot a))

let test_mux () =
  let s = Bfun.var ~arity:3 2
  and a = Bfun.var ~arity:3 0
  and b = Bfun.var ~arity:3 1 in
  let m = Bfun.mux ~sel:s a b in
  for i = 0 to 7 do
    let sv = (i lsr 2) land 1 = 1
    and av = i land 1 = 1
    and bv = (i lsr 1) land 1 = 1 in
    Alcotest.(check bool)
      (Printf.sprintf "mux@%d" i)
      (if sv then bv else av)
      (Bfun.eval m i)
  done

let test_const_bounds () =
  Alcotest.(check int) "const1/3" 0xFF (Bfun.table (Bfun.const ~arity:3 true));
  Alcotest.(check int) "const0/3" 0 (Bfun.table (Bfun.const ~arity:3 false));
  Alcotest.check_raises "arity 6 rejected" (Invalid_argument "Bfun.make: arity 6 out of [0,5]")
    (fun () -> ignore (Bfun.make ~arity:6 0));
  let f = Bfun.const ~arity:5 true in
  Alcotest.(check int) "popcount 32" 32 (Bfun.popcount f)

let prop_shannon =
  QCheck.Test.make ~name:"shannon expansion is the identity" ~count:256 bfun3
    (fun f ->
      List.for_all
        (fun v ->
          let lo, hi = Bfun.cofactor_pair f ~var:v in
          Bfun.equal f (Bfun.expand ~sel_var:v ~lo ~hi))
        [ 0; 1; 2 ])

let prop_cofactor_drops_dependence =
  QCheck.Test.make ~name:"cofactor does not depend on removed var" ~count:256
    bfun3 (fun f ->
      let c = Bfun.cofactor f ~var:1 true in
      Bfun.arity c = 2)

let prop_demorgan =
  QCheck.Test.make ~name:"de morgan" ~count:200
    (QCheck.pair bfun3 bfun3)
    (fun (a, b) ->
      Bfun.(equal (lnot (a &&& b)) (lnot a ||| lnot b))
      && Bfun.(equal (lnot (a ||| b)) (lnot a &&& lnot b)))

let prop_xor_involution =
  QCheck.Test.make ~name:"xor involution" ~count:200
    (QCheck.pair bfun3 bfun3)
    (fun (a, b) -> Bfun.(equal ((a ^^^ b) ^^^ b) a))

let prop_permute_roundtrip =
  QCheck.Test.make ~name:"permute round trip" ~count:256 bfun3 (fun f ->
      let p = [| 2; 0; 1 |] in
      let q = [| 1; 2; 0 |] in
      (* q inverts p *)
      Bfun.equal f (Bfun.permute_inputs (Bfun.permute_inputs f p) q))

let test_support () =
  let a = Bfun.var ~arity:3 0 in
  Alcotest.(check (list int)) "literal support" [ 0 ] (Bfun.support a);
  Alcotest.(check (list int))
    "const support" []
    (Bfun.support (Bfun.const ~arity:3 true));
  let f = Bfun.(var ~arity:3 0 ^^^ var ~arity:3 2) in
  Alcotest.(check (list int)) "xor02 support" [ 0; 2 ] (Bfun.support f);
  Alcotest.(check bool) "literal" true (Bfun.is_literal (Bfun.lnot a));
  Alcotest.(check bool) "xor not literal" false (Bfun.is_literal f)

let test_to_string () =
  Alcotest.(check string) "xor2" "0110" (Bfun.to_string Gates.xor2)

(* --- Gates ------------------------------------------------------------ *)

let test_nd2wi () =
  let feasible =
    List.filter Gates.nd2wi_feasible (Bfun.all ~arity:2) |> List.length
  in
  Alcotest.(check int) "14 of 16 2-input functions" 14 feasible;
  let strict =
    List.filter Gates.nd2wi_strict (Bfun.all ~arity:2) |> List.length
  in
  Alcotest.(check int) "8 nondegenerate AND-types" 8 strict;
  Alcotest.(check bool) "xor infeasible" false (Gates.nd2wi_feasible Gates.xor2);
  Alcotest.(check bool) "xnor infeasible" false (Gates.nd2wi_feasible Gates.xnor2)

let test_nd3wi () =
  let v i = Bfun.var ~arity:3 i in
  let nand3 = Bfun.(lnot (v 0 &&& v 1 &&& v 2)) in
  let maj = Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2)) in
  let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2) in
  let nand2_embedded = Bfun.(lnot (v 0 &&& v 1)) in
  Alcotest.(check bool) "nand3" true (Gates.nd3wi_feasible nand3);
  Alcotest.(check bool) "and3" true (Gates.nd3wi_feasible Bfun.(v 0 &&& v 1 &&& v 2));
  Alcotest.(check bool) "or with inverted lit" true
    (Gates.nd3wi_feasible Bfun.(v 0 ||| lnot (v 1) ||| v 2));
  Alcotest.(check bool) "embedded nand2" true (Gates.nd3wi_feasible nand2_embedded);
  Alcotest.(check bool) "literal" true (Gates.nd3wi_feasible (v 1));
  Alcotest.(check bool) "const" true (Gates.nd3wi_feasible (Bfun.const ~arity:3 false));
  Alcotest.(check bool) "majority infeasible" false (Gates.nd3wi_feasible maj);
  Alcotest.(check bool) "xor3 infeasible" false (Gates.nd3wi_feasible xor3);
  let count =
    List.filter Gates.nd3wi_feasible (Bfun.all ~arity:3) |> List.length
  in
  (* 2 constants + 6 literals + 3*8 two-input AND-types + 2*C(3,1)... the
     exact census: AND-types over k>=2 chosen support, any polarity, and/or. *)
  Alcotest.(check int) "nd3wi census" (2 + 6 + 24 + 16) count

let test_mux_feasible () =
  let v i = Bfun.var ~arity:3 i in
  let mux = Bfun.mux ~sel:(v 2) (v 0) (v 1) in
  let xor02 = Bfun.(v 0 ^^^ v 2) in
  let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2) in
  Alcotest.(check bool) "mux itself" true (Gates.mux_feasible mux);
  Alcotest.(check bool) "xor2 via mux" true (Gates.mux_feasible xor02);
  Alcotest.(check bool) "and2 via mux" true (Gates.mux_feasible Bfun.(v 0 &&& v 1));
  Alcotest.(check bool) "xor3 not single mux" false (Gates.mux_feasible xor3);
  Alcotest.(check bool) "maj not single mux" false
    (Gates.mux_feasible Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2)))

(* --- S3 analysis (paper Section 2.1) ----------------------------------- *)

let census = lazy (S3.census ())

let test_s3_counts () =
  let c = Lazy.force census in
  Alcotest.(check int) "196 S3-feasible (paper)" 196 c.S3.s3_feasible;
  Alcotest.(check int) "60 infeasible" 60 c.S3.s3_infeasible;
  Alcotest.(check int) "modified covers all 256 (paper)" 256 c.S3.modified_feasible

let test_s3_categories () =
  let c = Lazy.force census in
  let get cat = List.assoc cat c.S3.by_category in
  Alcotest.(check int) "cat1 nd2+xor" 28 (get S3.Nd2_xor);
  Alcotest.(check int) "cat2 nd2+xnor" 28 (get S3.Nd2_xnor);
  Alcotest.(check int) "cat3 2-input xor" 1 (get S3.Both_xor);
  Alcotest.(check int) "cat4 2-input xnor" 1 (get S3.Both_xnor);
  Alcotest.(check int) "cat5 3-input xor/xnor" 2 (get S3.Complement_pair)

let test_s3_examples () =
  let v i = Bfun.var ~arity:3 i in
  (* mux(s; a, b) has literal cofactors: feasible *)
  Alcotest.(check bool) "mux feasible" true
    (S3.feasible (Bfun.mux ~sel:(v 2) (v 0) (v 1)));
  (* xor3 infeasible, category 5 *)
  let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2) in
  Alcotest.(check bool) "xor3 infeasible" false (S3.feasible xor3);
  Alcotest.(check bool) "xor3 cat5" true
    (S3.classify_infeasible xor3 = S3.Complement_pair);
  (* a xor b (select-independent) is category 3 w.r.t. fixed select... *)
  let xorab = Bfun.(v 0 ^^^ v 1) in
  Alcotest.(check bool) "xor(a,b) infeasible w.r.t. fixed select" false
    (S3.feasible xorab);
  Alcotest.(check bool) "xor(a,b) cat3" true
    (S3.classify_infeasible xorab = S3.Both_xor);
  (* ...but feasible if the fabric can re-route the select *)
  Alcotest.(check bool) "xor(a,b) feasible with free select" true
    (S3.feasible_any_select xorab);
  Alcotest.check_raises "classify on feasible rejected"
    (Invalid_argument "S3.classify_infeasible: function is S3-feasible")
    (fun () -> ignore (S3.classify_infeasible (Bfun.const ~arity:3 false)))

let test_s3_any_select_count () =
  let c = Lazy.force census in
  Alcotest.(check int) "free-select feasibility" 238 c.S3.any_select_feasible;
  Alcotest.(check bool) "paper's 'at least 196' is conservative"
    true (c.S3.any_select_feasible >= c.S3.s3_feasible)

let prop_infeasible_has_xor_cofactor =
  QCheck.Test.make ~name:"infeasible iff an xor-type cofactor w.r.t. select"
    ~count:256 bfun3 (fun f ->
      let g, h = Bfun.cofactor_pair f ~var:S3.select_var in
      let has_xor = Gates.is_xor_type g || Gates.is_xor_type h in
      S3.feasible f = not has_xor)

let prop_modified_superset =
  QCheck.Test.make ~name:"modified S3 covers S3" ~count:256 bfun3 (fun f ->
      (not (S3.feasible f)) || S3.modified_feasible f)

(* --- NPN ---------------------------------------------------------------- *)

let test_npn_classes () =
  Alcotest.(check int) "2-input NPN classes" 4
    (List.length (Npn.classes ~arity:2));
  Alcotest.(check int) "3-input NPN classes" 14
    (List.length (Npn.classes ~arity:3));
  (* orbit sizes partition the space *)
  let total =
    List.fold_left (fun acc c -> acc + Npn.class_size c) 0 (Npn.classes ~arity:3)
  in
  Alcotest.(check int) "classes partition all 256" 256 total

let test_npn_examples () =
  let v i = Bfun.var ~arity:3 i in
  Alcotest.(check bool) "and3 ~ nor3" true
    (Npn.equivalent
       Bfun.(v 0 &&& v 1 &&& v 2)
       Bfun.(lnot (v 0 ||| v 1 ||| v 2)));
  Alcotest.(check bool) "xor3 ~ xnor3" true
    (Npn.equivalent
       Bfun.(v 0 ^^^ v 1 ^^^ v 2)
       Bfun.(lnot (v 0 ^^^ v 1 ^^^ v 2)));
  Alcotest.(check bool) "and3 !~ xor3" false
    (Npn.equivalent Bfun.(v 0 &&& v 1 &&& v 2) Bfun.(v 0 ^^^ v 1 ^^^ v 2))

let prop_npn_canonical_idempotent =
  QCheck.Test.make ~name:"canonical is idempotent and class-invariant"
    ~count:100 bfun3 (fun f ->
      let c = Npn.canonical f in
      Bfun.equal (Npn.canonical c) c && Npn.equivalent f c)

let prop_npn_invariant_under_negation =
  QCheck.Test.make ~name:"canonical invariant under output negation"
    ~count:100 bfun3 (fun f ->
      Bfun.equal (Npn.canonical f) (Npn.canonical (Bfun.lnot f)))

(* ND3WI feasibility is an NPN-class property: programmable inversion means
   a cell that implements f implements its whole class up to permutation. *)
let prop_nd3wi_npn_closed =
  QCheck.Test.make ~name:"nd3wi feasibility is NPN-invariant" ~count:100
    bfun3 (fun f ->
      Gates.nd3wi_feasible f = Gates.nd3wi_feasible (Npn.canonical f))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vpga_logic"
    [
      ( "bfun",
        [
          Alcotest.test_case "var patterns" `Quick test_var_patterns;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "ops" `Quick test_ops;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "const and bounds" `Quick test_const_bounds;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "to_string" `Quick test_to_string;
          qt prop_shannon;
          qt prop_cofactor_drops_dependence;
          qt prop_demorgan;
          qt prop_xor_involution;
          qt prop_permute_roundtrip;
        ] );
      ( "npn",
        [
          Alcotest.test_case "class censuses" `Quick test_npn_classes;
          Alcotest.test_case "examples" `Quick test_npn_examples;
          qt prop_npn_canonical_idempotent;
          qt prop_npn_invariant_under_negation;
          qt prop_nd3wi_npn_closed;
        ] );
      ( "gates",
        [
          Alcotest.test_case "nd2wi census" `Quick test_nd2wi;
          Alcotest.test_case "nd3wi feasibility" `Quick test_nd3wi;
          Alcotest.test_case "single-mux feasibility" `Quick test_mux_feasible;
        ] );
      ( "s3",
        [
          Alcotest.test_case "feasible counts" `Quick test_s3_counts;
          Alcotest.test_case "figure-2 categories" `Quick test_s3_categories;
          Alcotest.test_case "examples" `Quick test_s3_examples;
          Alcotest.test_case "free-select count" `Quick test_s3_any_select_count;
          qt prop_infeasible_has_xor_cofactor;
          qt prop_modified_superset;
        ] );
    ]
