(* Tests for the netlist IR: builder, levelization, simulation, equivalence
   checking and statistics. *)

open Vpga_netlist
module Bfun = Vpga_logic.Bfun

(* A 1-bit full adder over generic gates. *)
let full_adder () =
  let nl = Netlist.create ~name:"fa" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let cin = Netlist.input nl "cin" in
  let sum = Netlist.gate nl Kind.Xor3 [| a; b; cin |] in
  let cout = Netlist.gate nl Kind.Maj3 [| a; b; cin |] in
  ignore (Netlist.output nl "sum" sum);
  ignore (Netlist.output nl "cout" cout);
  nl

(* A 3-bit counter: tests flops and feedback. *)
let counter3 () =
  let nl = Netlist.create ~name:"cnt3" () in
  let en = Netlist.input nl "en" in
  let q0 = Netlist.dff ~name:"q0" nl in
  let q1 = Netlist.dff ~name:"q1" nl in
  let q2 = Netlist.dff ~name:"q2" nl in
  let d0 = Netlist.gate nl Kind.Xor2 [| q0; en |] in
  let c0 = Netlist.gate nl Kind.And2 [| q0; en |] in
  let d1 = Netlist.gate nl Kind.Xor2 [| q1; c0 |] in
  let c1 = Netlist.gate nl Kind.And2 [| q1; c0 |] in
  let d2 = Netlist.gate nl Kind.Xor2 [| q2; c1 |] in
  Netlist.connect nl ~flop:q0 ~d:d0;
  Netlist.connect nl ~flop:q1 ~d:d1;
  Netlist.connect nl ~flop:q2 ~d:d2;
  ignore (Netlist.output nl "b0" q0);
  ignore (Netlist.output nl "b1" q1);
  ignore (Netlist.output nl "b2" q2);
  nl

let test_builder () =
  let nl = full_adder () in
  Alcotest.(check int) "inputs" 3 (List.length (Netlist.inputs nl));
  Alcotest.(check int) "outputs" 2 (List.length (Netlist.outputs nl));
  Alcotest.(check int) "no flops" 0 (List.length (Netlist.flops nl));
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Netlist.gate: xor2 expects 2 fanins, got 3")
    (fun () -> ignore (Netlist.gate nl Kind.Xor2 [| 0; 1; 2 |]))

let test_validate_unconnected_flop () =
  let nl = Netlist.create () in
  let _q = Netlist.dff nl in
  (match Netlist.validate nl with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error _ -> ())

let test_fanout () =
  let nl = full_adder () in
  let fo = Netlist.fanout nl in
  (* input a (id 0) feeds both xor3 and maj3 *)
  Alcotest.(check int) "a fans out to 2" 2 (Array.length fo.(0))

let test_levelize () =
  let nl = full_adder () in
  let lv = Levelize.run nl in
  Alcotest.(check int) "depth (gates then outputs)" 2 lv.Levelize.depth;
  Alcotest.(check bool) "acyclic" true (Levelize.is_acyclic nl);
  let cnt = counter3 () in
  Alcotest.(check bool) "counter acyclic (flop breaks loop)" true
    (Levelize.is_acyclic cnt)

let test_comb_cycle_detected () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  (* A combinational cycle is not expressible with the forward-only builder
     (only flop D pins may point forward), so assert the builder rejects a
     forward combinational fanin. *)
  Alcotest.check_raises "forward-only builder"
    (Invalid_argument "Netlist.gate: fanin id out of range")
    (fun () -> ignore (Netlist.gate nl Kind.And2 [| a; 99 |]))

let test_simulate_full_adder () =
  let nl = full_adder () in
  let sim = Simulate.create nl in
  for m = 0 to 7 do
    let a = m land 1 and b = (m lsr 1) land 1 and c = (m lsr 2) land 1 in
    let po = Simulate.eval_comb sim [| a = 1; b = 1; c = 1 |] in
    let total = a + b + c in
    Alcotest.(check bool) (Printf.sprintf "sum@%d" m) (total land 1 = 1) po.(0);
    Alcotest.(check bool) (Printf.sprintf "cout@%d" m) (total >= 2) po.(1)
  done

let test_simulate_counter () =
  let nl = counter3 () in
  let sim = Simulate.create nl in
  Simulate.reset sim;
  (* count 10 enabled cycles: outputs are the pre-update state *)
  let seen = ref [] in
  for _ = 1 to 10 do
    let po = Simulate.step sim [| true |] in
    let v =
      (if po.(0) then 1 else 0) + (if po.(1) then 2 else 0)
      + if po.(2) then 4 else 0
    in
    seen := v :: !seen
  done;
  Alcotest.(check (list int)) "counts 0..9 mod 8"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 0; 1 ]
    (List.rev !seen);
  (* disabled: holds value *)
  let po = Simulate.step sim [| false |] in
  let po' = Simulate.step sim [| false |] in
  Alcotest.(check (pair bool bool)) "hold" (po.(0), po.(1)) (po'.(0), po'.(1))

let test_map_combinational () =
  let nl = counter3 () in
  (* identity mapping must preserve behaviour *)
  let nl' =
    Netlist.map_combinational nl (fun dst n fi -> Netlist.gate dst n.Netlist.kind fi)
  in
  match Equiv.check ~seed:42 nl nl' with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch _ -> Alcotest.fail "identity map not equivalent"

let test_equiv_detects_mutation () =
  let good = full_adder () in
  let bad = Netlist.create ~name:"fa_bad" () in
  let a = Netlist.input bad "a" in
  let b = Netlist.input bad "b" in
  let cin = Netlist.input bad "cin" in
  let sum = Netlist.gate bad Kind.Xor3 [| a; b; cin |] in
  let cout = Netlist.gate bad Kind.And3 [| a; b; cin |] in
  (* wrong carry *)
  ignore (Netlist.output bad "sum" sum);
  ignore (Netlist.output bad "cout" cout);
  (match Equiv.check ~seed:7 good bad with
  | Equiv.Equivalent -> Alcotest.fail "mutation not caught"
  | Equiv.Mismatch { output; _ } ->
      Alcotest.(check int) "carry output differs" 1 output);
  match Equiv.check_exhaustive good bad with
  | Equiv.Equivalent -> Alcotest.fail "mutation not caught exhaustively"
  | Equiv.Mismatch _ -> ()

let test_equiv_interface_mismatch () =
  let a = full_adder () and b = counter3 () in
  Alcotest.check_raises "interface"
    (Invalid_argument "Equiv.check: interface mismatch")
    (fun () -> ignore (Equiv.check ~seed:1 a b))

let test_stats () =
  let nl = full_adder () in
  Alcotest.(check (float 1e-9)) "gate count" 8.0 (Stats.gate_count nl);
  Alcotest.(check int) "comb count" 2 (Stats.combinational_count nl);
  let cnt = counter3 () in
  Alcotest.(check int) "flops" 3 (Stats.flop_count cnt);
  Alcotest.(check bool) "flop ratio in (0,1)" true
    (Stats.flop_ratio cnt > 0.0 && Stats.flop_ratio cnt < 1.0);
  let hist = Stats.histogram nl in
  Alcotest.(check int) "xor3 count" 1 (List.assoc "xor3" hist)

(* Random DAG generator for property tests. *)
let random_comb_netlist seed =
  let rng = Random.State.make [| seed |] in
  let nl = Netlist.create ~name:"rand" () in
  let pis = Array.init 4 (fun i -> Netlist.input nl (Printf.sprintf "i%d" i)) in
  let pool = ref (Array.to_list pis) in
  let pick () =
    let l = !pool in
    List.nth l (Random.State.int rng (List.length l))
  in
  for _ = 1 to 20 do
    let k =
      match Random.State.int rng 5 with
      | 0 -> Kind.And2
      | 1 -> Kind.Or2
      | 2 -> Kind.Xor2
      | 3 -> Kind.Nand2
      | _ -> Kind.Inv
    in
    let fis =
      Array.init (Kind.arity k) (fun _ -> pick ())
    in
    pool := Netlist.gate nl k fis :: !pool
  done;
  ignore (Netlist.output nl "o" (pick ()));
  nl

let prop_random_netlists_valid =
  QCheck.Test.make ~name:"random DAGs validate and levelize" ~count:50
    QCheck.small_int (fun seed ->
      let nl = random_comb_netlist seed in
      (match Netlist.validate nl with Ok () -> true | Error _ -> false)
      && Levelize.is_acyclic nl)

let prop_identity_map_equiv =
  QCheck.Test.make ~name:"identity map preserves equivalence" ~count:25
    QCheck.small_int (fun seed ->
      let nl = random_comb_netlist seed in
      let nl' =
        Netlist.map_combinational nl (fun dst n fi ->
            Netlist.gate dst n.Netlist.kind fi)
      in
      Equiv.check_exhaustive nl nl' = Equiv.Equivalent)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vpga_netlist"
    [
      ( "builder",
        [
          Alcotest.test_case "full adder" `Quick test_builder;
          Alcotest.test_case "unconnected flop" `Quick test_validate_unconnected_flop;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "forward-only" `Quick test_comb_cycle_detected;
        ] );
      ( "levelize",
        [ Alcotest.test_case "levels and cycles" `Quick test_levelize ] );
      ( "simulate",
        [
          Alcotest.test_case "full adder truth table" `Quick test_simulate_full_adder;
          Alcotest.test_case "counter" `Quick test_simulate_counter;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "identity map" `Quick test_map_combinational;
          Alcotest.test_case "detects mutation" `Quick test_equiv_detects_mutation;
          Alcotest.test_case "interface mismatch" `Quick test_equiv_interface_mismatch;
        ] );
      ("stats", [ Alcotest.test_case "counts" `Quick test_stats ]);
      ( "properties",
        [ qt prop_random_netlists_valid; qt prop_identity_map_equiv ] );
    ]
