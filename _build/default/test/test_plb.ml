(* Tests for the PLB architectures, logic configurations, intra-PLB packing
   and the Section-2.2 full-adder result. *)

open Vpga_plb
module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module Equiv = Vpga_netlist.Equiv

let v i = Bfun.var ~arity:3 i
let xor3 = Bfun.(v 0 ^^^ v 1 ^^^ v 2)
let maj3 = Bfun.((v 0 &&& v 1) ||| (v 1 &&& v 2) ||| (v 0 &&& v 2))
let bfun3 = QCheck.map (Bfun.make ~arity:3) (QCheck.int_bound 255)

(* --- Arch -------------------------------------------------------------- *)

let test_arch_calibration () =
  let g = Arch.granular_plb and l = Arch.lut_plb in
  Alcotest.(check (float 0.01)) "granular tile 20% larger (paper)" 1.20
    (g.Arch.tile_area /. l.Arch.tile_area);
  Alcotest.(check (float 0.01)) "granular comb area 26.6% larger (paper)" 1.266
    (g.Arch.comb_area /. l.Arch.comb_area);
  Alcotest.(check bool) "granular has more via sites" true
    (g.Arch.via_sites > l.Arch.via_sites)

let test_vector () =
  let open Arch in
  let a = Vector.of_list [ (Mux, 2); (Xoa, 1) ] in
  let b = Vector.of_list [ (Mux, 1) ] in
  Alcotest.(check int) "get" 2 (Vector.get a Mux);
  Alcotest.(check int) "add" 3 (Vector.get (Vector.add a b) Mux);
  Alcotest.(check bool) "fits" true (Vector.fits b ~cap:a);
  Alcotest.(check bool) "not fits" false (Vector.fits a ~cap:b);
  Alcotest.(check int) "total" 3 (Vector.total a)

(* --- Config ------------------------------------------------------------ *)

let test_config_examples () =
  let check_cfg name f expected =
    Alcotest.(check string) name (Config.name expected)
      (Config.name (Config.choose Arch.granular_plb f))
  in
  check_cfg "and2 -> nd2" Bfun.(v 0 &&& v 1) Config.Nd2;
  check_cfg "nand3 -> nd3" Bfun.(lnot (v 0 &&& v 1 &&& v 2)) Config.Nd3;
  check_cfg "mux -> mx" (Bfun.mux ~sel:(v 2) (v 0) (v 1)) Config.Mx;
  check_cfg "xor2 -> mx" Bfun.(v 0 ^^^ v 1) Config.Mx;
  check_cfg "literal -> invb" (v 1) Config.Invb;
  (* xor3 chains the XOA into a MUX with the programmable inverter *)
  check_cfg "xor3 -> xoamx" xor3 Config.Xoamx;
  (* maj(a,b,c) = mux(a xor b; a, c): also an XOA-into-MUX chain *)
  check_cfg "maj3 -> xoamx" maj3 Config.Xoamx;
  (* "exactly one of three" needs the ND3WI alongside the two MUXes *)
  check_cfg "one-hot -> xoandmx" (Bfun.make ~arity:3 0x16) Config.Xoandmx;
  (* "exactly two of three" likewise *)
  check_cfg "two-hot -> xoandmx" (Bfun.make ~arity:3 0x68) Config.Xoandmx

let test_config_lut_arch () =
  let choose = Config.choose Arch.lut_plb in
  Alcotest.(check string) "xor3 -> lut" "lut" (Config.name (choose xor3));
  Alcotest.(check string) "maj3 -> lut" "lut" (Config.name (choose maj3));
  Alcotest.(check string) "nand3 -> nd3" "nd3"
    (Config.name (choose Bfun.(lnot (v 0 &&& v 1 &&& v 2))))

let prop_choose_is_feasible =
  QCheck.Test.make ~name:"chosen config is feasible" ~count:256 bfun3 (fun f ->
      List.for_all
        (fun arch -> Config.feasible (Config.choose arch f) f)
        Arch.all)

let prop_feasibility_monotone =
  QCheck.Test.make ~name:"xoamx implies xoandmx implies total" ~count:256 bfun3
    (fun f ->
      (not (Config.feasible Config.Xoamx f) || Config.feasible Config.Xoandmx f)
      && Config.feasible Config.Mux3 f)

let test_config_censuses () =
  let all3 = Bfun.all ~arity:3 in
  let count c = List.length (List.filter (Config.feasible c) all3) in
  (* single mux = Gates.mux_feasible census *)
  let mux_census =
    List.length (List.filter Gates.mux_feasible all3)
  in
  Alcotest.(check int) "mx census matches gates" mux_census (count Config.Mx);
  Alcotest.(check int) "nd3 census" 48 (count Config.Nd3);
  (* every 3-input function fits some non-LUT config on the granular PLB *)
  Alcotest.(check int) "xoandmx total" 256 (count Config.Xoandmx);
  (* ndmx strictly between mx and xoamx *)
  Alcotest.(check bool) "mx < ndmx" true (count Config.Mx < count Config.Ndmx);
  Alcotest.(check bool) "ndmx < xoamx" true
    (count Config.Ndmx < count Config.Xoamx)

let test_config_delay_ordering () =
  let load = 10.0 in
  let d c = Config.delay c ~load in
  Alcotest.(check bool) "nd3 faster than lut" true (d Config.Nd3 < d Config.Lut);
  Alcotest.(check bool) "mx faster than lut" true (d Config.Mx < d Config.Lut);
  (* the paper's key claim: even two-stage granular configs beat the LUT *)
  Alcotest.(check bool) "ndmx faster than lut" true (d Config.Ndmx < d Config.Lut);
  Alcotest.(check bool) "xoamx faster than lut" true (d Config.Xoamx < d Config.Lut);
  Alcotest.(check bool) "single stage faster than chained" true
    (d Config.Mx < d Config.Xoamx)

let test_demand_alternatives () =
  let open Arch in
  let demands = Config.demand granular_plb Config.Mx in
  Alcotest.(check int) "mx has two homes" 2 (List.length demands);
  let d = Config.demand granular_plb Config.Xoandmx in
  (match d with
  | [ v ] ->
      Alcotest.(check int) "xoandmx uses xoa" 1 (Vector.get v Xoa);
      Alcotest.(check int) "xoandmx uses nd3" 1 (Vector.get v Nd3);
      Alcotest.(check int) "xoandmx uses mux" 1 (Vector.get v Mux)
  | _ -> Alcotest.fail "xoandmx should have a single demand")

let test_tile_cost () =
  let open Config in
  (* scarcity pricing: single-slot resources cost a full kind-share *)
  let g = Arch.granular_plb and l = Arch.lut_plb in
  Alcotest.(check bool) "lut slot dominates on the lut arch" true
    (tile_cost l Lut > tile_cost l Nd3);
  Alcotest.(check bool) "mx cheapest granular logic slot" true
    (tile_cost g Mx <= tile_cost g Xoamx
    && tile_cost g Mx <= tile_cost g Xoandmx);
  Alcotest.(check bool) "three nd2 supernodes cost more than one lut" true
    (3.0 *. tile_cost l Nd2 > tile_cost l Lut);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (name c ^ " positive tile cost")
        true
        (tile_cost g c >= 0.0))
    all

let test_granular_2ff () =
  let v = Arch.granular_2ff in
  Alcotest.(check int) "two flops" 2 (Arch.flops_per_tile v);
  Alcotest.(check bool) "bigger tile than plain granular" true
    (v.Arch.tile_area > Arch.granular_plb.Arch.tile_area);
  Alcotest.(check bool) "same combinational fabric" true
    (v.Arch.comb_area = Arch.granular_plb.Arch.comb_area);
  (* two registered outputs can now share a tile *)
  let flop_item =
    { Packer.config = Config.Invb; pins = 1; flop = true }
  in
  Alcotest.(check bool) "two flops fit" true
    (Packer.fits v [ flop_item; flop_item ]);
  Alcotest.(check bool) "three flops do not" false
    (Packer.fits v [ flop_item; flop_item; flop_item ])

(* --- Packer: the paper's co-location examples --------------------------- *)

let mk config pins = { Packer.config; pins; flop = false }

let test_paper_packings () =
  let g = Arch.granular_plb in
  (* "three MX functions and one ND3 function" *)
  Alcotest.(check bool) "3 MX + ND3" true
    (Packer.fits g [ mk Config.Mx 3; mk Config.Mx 3; mk Config.Mx 3; mk Config.Nd3 3 ]);
  (* "one MX, one XOAMX, and one ND3" *)
  Alcotest.(check bool) "MX + XOAMX + ND3" true
    (Packer.fits g [ mk Config.Mx 3; mk Config.Xoamx 3; mk Config.Nd3 3 ]);
  (* "a NDMX and XOAMX function" (second NDMX realized as XOAMX) *)
  Alcotest.(check bool) "NDMX + XOAMX" true
    (Packer.fits g [ mk Config.Ndmx 3; mk Config.Xoamx 3 ]);
  (* but two XOAMX cannot share one XOA *)
  Alcotest.(check bool) "2 XOAMX infeasible" false
    (Packer.fits g [ mk Config.Xoamx 3; mk Config.Xoamx 3 ]);
  (* LUT PLB: one LUT + two ND3 *)
  let l = Arch.lut_plb in
  Alcotest.(check bool) "LUT + 2 ND3" true
    (Packer.fits l [ mk Config.Lut 3; mk Config.Nd3 3; mk Config.Nd3 3 ]);
  Alcotest.(check bool) "2 LUT infeasible" false
    (Packer.fits l [ mk Config.Lut 3; mk Config.Lut 3 ])

let test_flop_and_pin_limits () =
  let g = Arch.granular_plb in
  let with_flop = { (mk Config.Mx 3) with Packer.flop = true } in
  Alcotest.(check bool) "one flop ok" true (Packer.fits g [ with_flop ]);
  Alcotest.(check bool) "two flops too many" false
    (Packer.fits g [ with_flop; with_flop ]);
  (* pin limit: 5 x 3-pin items exceed 12 input pins *)
  Alcotest.(check bool) "pin limit" false
    (Packer.fits g (List.init 5 (fun _ -> mk Config.Invb 3)))

let test_pack_greedy () =
  let g = Arch.granular_plb in
  let items = List.init 6 (fun _ -> mk Config.Mx 2) in
  let tiles = Packer.pack g items in
  Alcotest.(check bool) "every tile fits" true
    (List.for_all (Packer.fits g) tiles);
  Alcotest.(check int) "6 MX in 2 tiles" 2 (List.length tiles);
  Alcotest.(check int) "total preserved" 6
    (List.fold_left (fun acc t -> acc + List.length t) 0 tiles)

let prop_pack_tiles_fit =
  let config_gen =
    QCheck.Gen.oneofl
      Config.[ Mx; Nd2; Nd3; Ndmx; Xoamx; Xoandmx; Invb ]
  in
  let items_gen =
    QCheck.Gen.(list_size (int_range 1 12) (map (fun c -> mk c 2) config_gen))
  in
  QCheck.Test.make ~name:"greedy packing always yields feasible tiles"
    ~count:100
    (QCheck.make items_gen)
    (fun items ->
      let tiles = Packer.pack Arch.granular_plb items in
      List.for_all (Packer.fits Arch.granular_plb) tiles
      && List.fold_left (fun acc t -> acc + List.length t) 0 tiles
         = List.length items)

(* --- Full adder (Section 2.2) ------------------------------------------ *)

let test_full_adder_equivalence () =
  match Equiv.check_exhaustive (Full_adder.reference ()) (Full_adder.granular_realization ()) with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch _ -> Alcotest.fail "granular FA realization is wrong"

let test_full_adder_tiles () =
  Alcotest.(check int) "granular: 1 tile (paper)" 1
    (Full_adder.tiles_needed Arch.granular_plb);
  Alcotest.(check int) "lut-based: 2 tiles (paper)" 2
    (Full_adder.tiles_needed Arch.lut_plb)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vpga_plb"
    [
      ( "arch",
        [
          Alcotest.test_case "paper area calibration" `Quick test_arch_calibration;
          Alcotest.test_case "vectors" `Quick test_vector;
        ] );
      ( "config",
        [
          Alcotest.test_case "examples" `Quick test_config_examples;
          Alcotest.test_case "lut arch" `Quick test_config_lut_arch;
          Alcotest.test_case "censuses" `Quick test_config_censuses;
          Alcotest.test_case "delay ordering" `Quick test_config_delay_ordering;
          Alcotest.test_case "demands" `Quick test_demand_alternatives;
          Alcotest.test_case "tile cost" `Quick test_tile_cost;
          Alcotest.test_case "granular 2ff variant" `Quick test_granular_2ff;
          qt prop_choose_is_feasible;
          qt prop_feasibility_monotone;
        ] );
      ( "packer",
        [
          Alcotest.test_case "paper packings" `Quick test_paper_packings;
          Alcotest.test_case "flop and pin limits" `Quick test_flop_and_pin_limits;
          Alcotest.test_case "greedy" `Quick test_pack_greedy;
          qt prop_pack_tiles_fit;
        ] );
      ( "full_adder",
        [
          Alcotest.test_case "equivalence" `Quick test_full_adder_equivalence;
          Alcotest.test_case "tile counts" `Quick test_full_adder_tiles;
        ] );
    ]
