test/test_logic.mli:
