test/test_plb.mli:
