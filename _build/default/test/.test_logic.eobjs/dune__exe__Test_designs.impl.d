test/test_designs.ml: Alcotest Alu Array Firewire Fpu Fsm List Netswitch Printf Random Vpga_designs Vpga_netlist Wordgen
