test/test_cells.mli:
