test/test_netlist.ml: Alcotest Array Equiv Kind Levelize List Netlist Printf QCheck QCheck_alcotest Random Simulate Stats Vpga_logic Vpga_netlist
