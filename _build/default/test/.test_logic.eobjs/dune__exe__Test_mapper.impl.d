test/test_mapper.ml: Alcotest Array Compact Flowmap List Printf QCheck QCheck_alcotest Random Techmap Vpga_aig Vpga_logic Vpga_mapper Vpga_netlist Vpga_plb
