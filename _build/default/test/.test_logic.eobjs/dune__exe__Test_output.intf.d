test/test_output.mli:
