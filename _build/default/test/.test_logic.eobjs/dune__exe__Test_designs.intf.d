test/test_designs.mli:
