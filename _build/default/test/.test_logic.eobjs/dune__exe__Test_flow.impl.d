test/test_flow.ml: Alcotest Array Experiments Float Flow Lazy List Printf QCheck QCheck_alcotest Random Vpga_designs Vpga_flow Vpga_logic Vpga_netlist Vpga_plb
