test/test_physical.mli:
