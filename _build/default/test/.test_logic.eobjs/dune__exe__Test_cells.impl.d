test/test_cells.ml: Alcotest Array List Printf Vpga_cells Vpga_designs Vpga_mapper Vpga_netlist Vpga_plb Vpga_timing
