test/test_output.ml: Alcotest Array Filename List Printf String Sys Vpga_designs Vpga_flow Vpga_mapper Vpga_netlist Vpga_pack Vpga_place Vpga_plb Vpga_route Vpga_timing
