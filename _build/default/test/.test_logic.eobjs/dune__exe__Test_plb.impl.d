test/test_plb.ml: Alcotest Arch Config Full_adder List Packer QCheck QCheck_alcotest Vector Vpga_logic Vpga_netlist Vpga_plb
