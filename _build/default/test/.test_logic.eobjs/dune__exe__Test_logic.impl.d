test/test_logic.ml: Alcotest Bfun Gates Lazy List Npn Printf QCheck QCheck_alcotest S3 Vpga_logic
