test/test_mapper.mli:
