(* Tests for the benchmark design generators: every netlist is validated,
   levelized and simulated against its software reference model. *)

module Netlist = Vpga_netlist.Netlist
module Levelize = Vpga_netlist.Levelize
module Simulate = Vpga_netlist.Simulate
module Stats = Vpga_netlist.Stats
open Vpga_designs

let bits_of v w = Array.init w (fun i -> (v lsr i) land 1 = 1)
let int_of_bits bits = Array.to_list bits |> List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0
let int_of_bus bits lo w =
  let v = ref 0 in
  for i = 0 to w - 1 do
    if bits.(lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let structurally_sound nl =
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "acyclic" true (Levelize.is_acyclic nl)

(* --- wordgen ------------------------------------------------------------ *)

let test_adder_sub () =
  let w = 8 in
  let nl = Netlist.create () in
  let a = Wordgen.input_bus nl "a" w in
  let b = Wordgen.input_bus nl "b" w in
  let sum, cout = Wordgen.ripple_adder nl a b in
  let diff, borrow = Wordgen.subtractor nl a b in
  let lt = Wordgen.less_than nl a b in
  Wordgen.output_bus nl "sum" sum;
  ignore (Netlist.output nl "cout" cout);
  Wordgen.output_bus nl "diff" diff;
  ignore (Netlist.output nl "borrow" borrow);
  ignore (Netlist.output nl "lt" lt);
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 200 do
    let av = Random.State.int rng 256 and bv = Random.State.int rng 256 in
    let po =
      Simulate.eval_comb sim (Array.append (bits_of av w) (bits_of bv w))
    in
    Alcotest.(check int) "sum" ((av + bv) land 255) (int_of_bus po 0 w);
    Alcotest.(check bool) "cout" (av + bv > 255) po.(w);
    Alcotest.(check int) "diff" ((av - bv) land 255) (int_of_bus po (w + 1) w);
    Alcotest.(check bool) "borrow" (av < bv) po.(2 * w + 1);
    Alcotest.(check bool) "lt" (av < bv) po.(2 * w + 2)
  done

let test_carry_select () =
  let w = 12 in
  List.iter
    (fun block ->
      let nl = Netlist.create () in
      let a = Wordgen.input_bus nl "a" w in
      let b = Wordgen.input_bus nl "b" w in
      let cin = Netlist.input nl "cin" in
      let sum, cout = Wordgen.carry_select_adder ~block nl ~cin a b in
      Wordgen.output_bus nl "sum" sum;
      ignore (Netlist.output nl "cout" cout);
      structurally_sound nl;
      let sim = Simulate.create nl in
      let rng = Random.State.make [| 7 * block |] in
      for _ = 1 to 200 do
        let av = Random.State.int rng (1 lsl w)
        and bv = Random.State.int rng (1 lsl w)
        and cv = Random.State.int rng 2 in
        let po =
          Simulate.eval_comb sim
            (Array.concat [ bits_of av w; bits_of bv w; [| cv = 1 |] ])
        in
        let total = av + bv + cv in
        Alcotest.(check int)
          (Printf.sprintf "block=%d %d+%d+%d" block av bv cv)
          (total land ((1 lsl w) - 1))
          (int_of_bus po 0 w);
        Alcotest.(check bool) "cout" (total >= 1 lsl w) po.(w)
      done)
    [ 1; 3; 4; 5; 12; 16 ]

let test_csa_multiplier () =
  let m = 7 in
  let nl = Netlist.create () in
  let a = Wordgen.input_bus nl "a" m in
  let b = Wordgen.input_bus nl "b" m in
  Wordgen.output_bus nl "p" (Wordgen.csa_multiplier nl a b);
  structurally_sound nl;
  let sim = Simulate.create nl in
  for av = 0 to (1 lsl m) - 1 do
    (* sample bv to keep the loop fast but cover edges *)
    List.iter
      (fun bv ->
        let po = Simulate.eval_comb sim (Array.append (bits_of av m) (bits_of bv m)) in
        Alcotest.(check int)
          (Printf.sprintf "%d*%d" av bv)
          (av * bv)
          (int_of_bus po 0 (2 * m)))
      [ 0; 1; 2; 63; 64; 127; (av * 37) mod 128 ]
  done

let test_csa_reduce () =
  let w = 8 in
  let nl = Netlist.create () in
  let buses = List.init 5 (fun i -> Wordgen.input_bus nl (Printf.sprintf "x%d" i) w) in
  let s, c = Wordgen.csa_reduce nl buses in
  let total, _ = Wordgen.ripple_adder nl s c in
  Wordgen.output_bus nl "t" total;
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 41 |] in
  for _ = 1 to 100 do
    let vs = List.map (fun _ -> Random.State.int rng 40) buses in
    let pi = Array.concat (List.map (fun v -> bits_of v w) vs) in
    let po = Simulate.eval_comb sim pi in
    Alcotest.(check int) "csa sum"
      (List.fold_left ( + ) 0 vs land 255)
      (int_of_bus po 0 w)
  done

let test_shifters () =
  let w = 8 in
  let nl = Netlist.create () in
  let a = Wordgen.input_bus nl "a" w in
  let amt = Wordgen.input_bus nl "amt" 3 in
  Wordgen.output_bus nl "shl" (Wordgen.shift_left nl a ~amount:amt);
  Wordgen.output_bus nl "shr" (Wordgen.shift_right nl a ~amount:amt);
  Wordgen.output_bus nl "lzc" (Wordgen.leading_zero_count nl a);
  structurally_sound nl;
  let sim = Simulate.create nl in
  for av = 0 to 255 do
    for s = 0 to 7 do
      let po = Simulate.eval_comb sim (Array.append (bits_of av w) (bits_of s 3)) in
      Alcotest.(check int) "shl" ((av lsl s) land 255) (int_of_bus po 0 w);
      Alcotest.(check int) "shr" (av lsr s) (int_of_bus po w w);
      let lzc =
        let rec go i = if i < 0 then w else if (av lsr i) land 1 = 1 then w - 1 - i else go (i - 1) in
        go (w - 1)
      in
      Alcotest.(check int) "lzc" lzc (int_of_bus po (2 * w) 4)
    done
  done

let test_mux_tree_and_compare () =
  let w = 4 in
  let nl = Netlist.create () in
  let sel = Wordgen.input_bus nl "sel" 2 in
  let buses =
    List.init 4 (fun i -> Wordgen.input_bus nl (Printf.sprintf "d%d" i) w)
  in
  Wordgen.output_bus nl "y" (Wordgen.mux_tree nl ~sel buses);
  let a = Wordgen.input_bus nl "a" w in
  let b = Wordgen.input_bus nl "b" w in
  ignore (Netlist.output nl "eq" (Wordgen.equal_bus nl a b));
  ignore (Netlist.output nl "eq7" (Wordgen.equal_const nl a 7));
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 200 do
    let s = Random.State.int rng 4 in
    let ds = List.map (fun _ -> Random.State.int rng 16) buses in
    let av = Random.State.int rng 16 and bv = Random.State.int rng 16 in
    let pi =
      Array.concat
        (bits_of s 2 :: List.map (fun d -> bits_of d w) ds
        @ [ bits_of av w; bits_of bv w ])
    in
    let po = Simulate.eval_comb sim pi in
    Alcotest.(check int) "mux tree" (List.nth ds s) (int_of_bus po 0 w);
    Alcotest.(check bool) "equal_bus" (av = bv) po.(w);
    Alcotest.(check bool) "equal_const" (av = 7) po.(w + 1)
  done

let test_counter_and_registers () =
  let nl = Netlist.create () in
  let en = Netlist.input nl "en" in
  let cnt = Wordgen.counter nl ~width:4 ~enable:en in
  Wordgen.output_bus nl "cnt" cnt;
  let d = Wordgen.input_bus nl "d" 3 in
  let q = Wordgen.register_bus nl ~enable:en d in
  Wordgen.output_bus nl "q" q;
  structurally_sound nl;
  let sim = Simulate.create nl in
  Simulate.reset sim;
  (* 5 enabled cycles with d=5, then 3 disabled with d=2 *)
  for i = 0 to 4 do
    let po = Simulate.step sim (Array.append [| true |] (bits_of 5 3)) in
    Alcotest.(check int) (Printf.sprintf "count@%d" i) i (int_of_bus po 0 4)
  done;
  let po = ref [||] in
  for _ = 1 to 3 do
    po := Simulate.step sim (Array.append [| false |] (bits_of 2 3))
  done;
  Alcotest.(check int) "count held" 5 (int_of_bus !po 0 4);
  Alcotest.(check int) "register held" 5 (int_of_bus !po 4 3)

let test_netswitch8 () =
  let nl = Netswitch.build ~ports:8 ~width:4 () in
  structurally_sound nl;
  Alcotest.(check int) "8 valid+dest+data inputs" (8 * (1 + 3 + 4))
    (List.length (Netlist.inputs nl));
  Alcotest.(check int) "8 valid+data outputs" (8 * (1 + 4))
    (List.length (Netlist.outputs nl))

let test_fpu_edge_cases () =
  let e = 4 and m = 6 in
  let nl = Fpu.build ~exp_bits:e ~mant_bits:m () in
  let sim = Simulate.create nl in
  let cases =
    [
      (* op, a, b: zero mantissas, equal magnitudes opposite signs, carries *)
      (0, (0, 0, 0), (0, 0, 0));
      (0, (0, 5, 33), (1, 5, 33));
      (0, (0, 15, 63), (0, 15, 63));
      (0, (1, 0, 1), (0, 15, 63));
      (1, (0, 15, 63), (1, 15, 63));
      (1, (0, 3, 0), (0, 2, 17));
      (1, (0, 0, 1), (0, 0, 1));
    ]
  in
  List.iter
    (fun (op, (sa, ea, ma), (sb, eb, mb)) ->
      let pi =
        Array.concat
          [
            bits_of op 1; bits_of sa 1; bits_of ea e; bits_of ma m;
            bits_of sb 1; bits_of eb e; bits_of mb m;
          ]
      in
      Simulate.reset sim;
      ignore (Simulate.step sim pi);
      ignore (Simulate.step sim pi);
      let po = Simulate.step sim pi in
      let rs, re, rm =
        Fpu.reference ~exp_bits:e ~mant_bits:m ~op ~a:(sa, ea, ma) ~b:(sb, eb, mb)
      in
      let label = Printf.sprintf "edge op=%d (%d,%d,%d)x(%d,%d,%d)" op sa ea ma sb eb mb in
      Alcotest.(check int) (label ^ " mant") rm (int_of_bus po 0 m);
      Alcotest.(check int) (label ^ " exp") re (int_of_bus po m e);
      Alcotest.(check bool) (label ^ " sign") (rs = 1) po.(m + e))
    cases

let software_crc poly bits =
  List.fold_left
    (fun state b ->
      let feedback = ((state lsr 15) land 1) lxor b in
      (((state lsl 1) land 0xFFFF) lxor (if feedback = 1 then poly else 0)))
    0 bits

let test_crc_step () =
  let nl = Netlist.create () in
  let state = Wordgen.input_bus nl "s" 16 in
  let din = Netlist.input nl "din" in
  Wordgen.output_bus nl "n" (Wordgen.crc_step nl ~poly:Firewire.crc_poly ~state ~din);
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 100 do
    let s = Random.State.int rng 0x10000 and d = Random.State.int rng 2 in
    let po = Simulate.eval_comb sim (Array.append (bits_of s 16) [| d = 1 |]) in
    let feedback = ((s lsr 15) land 1) lxor d in
    let expect = ((s lsl 1) land 0xFFFF) lxor (if feedback = 1 then Firewire.crc_poly else 0) in
    Alcotest.(check int) "crc step" expect (int_of_bus po 0 16)
  done

let test_fsm () =
  let nl = Netlist.create ~name:"fsm3" () in
  let go = Netlist.input nl "go" in
  let stop = Netlist.input nl "stop" in
  let fsm = Fsm.create nl ~states:3 in
  Fsm.on fsm ~from:0 ~cond:go ~next:1;
  Fsm.on fsm ~from:1 ~cond:stop ~next:2;
  (* priority: this conflicting edge is registered later, so it loses *)
  Fsm.on fsm ~from:1 ~cond:stop ~next:0;
  Fsm.always fsm ~from:2 ~next:0;
  Fsm.finalize fsm;
  Wordgen.output_bus nl "state" (Fsm.state_bus fsm);
  ignore (Netlist.output nl "busy" (Fsm.state_is fsm 1));
  structurally_sound nl;
  let sim = Simulate.create nl in
  Simulate.reset sim;
  let step go stop =
    let po = Simulate.step sim [| go; stop |] in
    int_of_bus po 0 2
  in
  Alcotest.(check int) "hold in 0" 0 (step false false);
  Alcotest.(check int) "still 0 (pre-update)" 0 (step true false);
  Alcotest.(check int) "went to 1" 1 (step false false);
  Alcotest.(check int) "hold in 1" 1 (step false true);
  Alcotest.(check int) "stop wins with registered priority" 2 (step false false);
  Alcotest.(check int) "unconditional back to 0" 0 (step false false);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Fsm.finalize: already finalized")
    (fun () -> Fsm.finalize fsm)

(* --- ALU ----------------------------------------------------------------- *)

let test_alu () =
  let w = 8 in
  let nl = Alu.build ~width:w () in
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 300 do
    let op = Random.State.int rng 8 in
    let a = Random.State.int rng 256 and b = Random.State.int rng 256 in
    let pi = Array.concat [ bits_of op 3; bits_of a w; bits_of b w ] in
    Simulate.reset sim;
    ignore (Simulate.step sim pi);
    ignore (Simulate.step sim pi);
    let po = Simulate.step sim pi in
    Alcotest.(check int)
      (Printf.sprintf "op=%d a=%d b=%d" op a b)
      (Alu.reference ~width:w ~op ~a ~b)
      (int_of_bus po 0 w)
  done

let test_alu_size () =
  let nl = Alu.build ~width:32 () in
  structurally_sound nl;
  Alcotest.(check bool) "alu32 is a real datapath" true
    (Stats.gate_count nl > 1000.0);
  Alcotest.(check bool) "datapath-dominated" true (Stats.flop_ratio nl < 0.25)

(* --- FPU ------------------------------------------------------------------ *)

let test_fpu () =
  let e = 5 and m = 8 in
  let nl = Fpu.build ~exp_bits:e ~mant_bits:m () in
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 300 do
    let op = Random.State.int rng 2 in
    let sa = Random.State.int rng 2 and sb = Random.State.int rng 2 in
    let ea = Random.State.int rng (1 lsl e) and eb = Random.State.int rng (1 lsl e) in
    let ma = Random.State.int rng (1 lsl m) and mb = Random.State.int rng (1 lsl m) in
    let pi =
      Array.concat
        [
          bits_of op 1; bits_of sa 1; bits_of ea e; bits_of ma m;
          bits_of sb 1; bits_of eb e; bits_of mb m;
        ]
    in
    Simulate.reset sim;
    ignore (Simulate.step sim pi);
    ignore (Simulate.step sim pi);
    let po = Simulate.step sim pi in
    let rs, re, rm =
      Fpu.reference ~exp_bits:e ~mant_bits:m ~op ~a:(sa, ea, ma) ~b:(sb, eb, mb)
    in
    let label = Printf.sprintf "op=%d a=(%d,%d,%d) b=(%d,%d,%d)" op sa ea ma sb eb mb in
    Alcotest.(check int) (label ^ " mant") rm (int_of_bus po 0 m);
    Alcotest.(check int) (label ^ " exp") re (int_of_bus po m e);
    Alcotest.(check bool) (label ^ " sign") (rs = 1) po.(m + e)
  done

let test_fpu_pipelined () =
  let e = 4 and m = 6 in
  let nl = Fpu.build ~exp_bits:e ~mant_bits:m ~pipelined:true () in
  structurally_sound nl;
  let sim = Simulate.create nl in
  let rng = Random.State.make [| 29 |] in
  for _ = 1 to 100 do
    let op = Random.State.int rng 2 in
    let sa = Random.State.int rng 2 and sb = Random.State.int rng 2 in
    let ea = Random.State.int rng (1 lsl e) and eb = Random.State.int rng (1 lsl e) in
    let ma = Random.State.int rng (1 lsl m) and mb = Random.State.int rng (1 lsl m) in
    let pi =
      Array.concat
        [
          bits_of op 1; bits_of sa 1; bits_of ea e; bits_of ma m;
          bits_of sb 1; bits_of eb e; bits_of mb m;
        ]
    in
    Simulate.reset sim;
    (* pipelined latency: one extra cycle *)
    ignore (Simulate.step sim pi);
    ignore (Simulate.step sim pi);
    ignore (Simulate.step sim pi);
    let po = Simulate.step sim pi in
    let rs, re, rm =
      Fpu.reference ~exp_bits:e ~mant_bits:m ~op ~a:(sa, ea, ma) ~b:(sb, eb, mb)
    in
    Alcotest.(check int) "pipelined mant" rm (int_of_bus po 0 m);
    Alcotest.(check int) "pipelined exp" re (int_of_bus po m e);
    Alcotest.(check bool) "pipelined sign" (rs = 1) po.(m + e)
  done;
  (* the pipeline rank roughly halves the combinational depth *)
  let flat = Fpu.build ~exp_bits:e ~mant_bits:m () in
  let depth nl = (Vpga_netlist.Levelize.run nl).Vpga_netlist.Levelize.depth in
  Alcotest.(check bool) "shallower logic between flop ranks" true
    (depth nl <= depth flat)

let test_fpu_size () =
  let nl = Fpu.build () in
  structurally_sound nl;
  Alcotest.(check bool) "fpu is the big datapath" true
    (Stats.gate_count nl > 8000.0)

(* --- Network switch -------------------------------------------------------- *)

let test_netswitch () =
  let ports = 4 and width = 8 in
  let lg = Wordgen.log2_up ports in
  let nl = Netswitch.build ~ports ~width () in
  structurally_sound nl;
  let sim = Simulate.create nl in
  Simulate.reset sim;
  let rng = Random.State.make [| 31 |] in
  let mk_packets () =
    Array.init ports (fun _ ->
        {
          Netswitch.valid = Random.State.bool rng;
          dest = Random.State.int rng ports;
          data = Random.State.int rng (1 lsl width);
        })
  in
  let pi_of packets =
    Array.concat
      (Array.to_list packets
      |> List.map (fun p ->
             Array.concat
               [
                 [| p.Netswitch.valid |];
                 bits_of p.Netswitch.dest lg;
                 bits_of p.Netswitch.data width;
               ]))
  in
  let history = ref [] in
  for t = 0 to 40 do
    let packets = mk_packets () in
    history := packets :: !history;
    let po = Simulate.step sim (pi_of packets) in
    if t >= 2 then begin
      let sent = List.nth !history 2 in
      let expect =
        Netswitch.reference_step ~ports ~width ~ptr:((t - 1) mod ports) sent
      in
      Array.iteri
        (fun o (ev, ed) ->
          let base = o * (1 + width) in
          Alcotest.(check bool)
            (Printf.sprintf "t=%d out%d valid" t o)
            ev po.(base);
          if ev then
            Alcotest.(check int)
              (Printf.sprintf "t=%d out%d data" t o)
              ed
              (int_of_bus po (base + 1) width))
        expect
    end
  done

(* --- Firewire --------------------------------------------------------------- *)

let test_firewire_frame () =
  let data_bits = 32 in
  let nl = Firewire.build ~data_bits () in
  structurally_sound nl;
  Alcotest.(check bool) "control-dominated (high flop ratio)" true
    (Stats.flop_ratio nl > 0.25);
  let sim = Simulate.create nl in
  Simulate.reset sim;
  let rng = Random.State.make [| 7 |] in
  let header = List.init 16 (fun _ -> Random.State.int rng 2) in
  let data = List.init data_bits (fun _ -> Random.State.int rng 2) in
  let crc = software_crc Firewire.crc_poly (header @ data) in
  let crc_bits = List.init 16 (fun i -> (crc lsr (15 - i)) land 1) in
  let stimulus =
    [ 1 ] (* start *) @ header @ data @ crc_bits
    @ List.init 10 (fun _ -> 0) (* ack + idle *)
  in
  let n_outputs = List.length (Netlist.outputs nl) in
  let crc_ok_idx = n_outputs - 1 in
  let tx_idx = 0 in
  let saw_tx = ref false in
  let last = ref [||] in
  List.iter
    (fun bit ->
      let po = Simulate.step sim [| bit = 1; false; false; false; false; false; false; false; false; false |] in
      if po.(tx_idx) then saw_tx := true;
      last := po)
    stimulus;
  Alcotest.(check bool) "crc accepted" true !last.(crc_ok_idx);
  Alcotest.(check bool) "ack transmitted" true !saw_tx;
  (* frames counter = 1 *)
  Alcotest.(check int) "one frame" 1 (int_of_bus !last 4 8);
  Alcotest.(check int) "no errors" 0 (int_of_bus !last 12 8);
  (* corrupted frame bumps the error counter *)
  let bad = [ 1 ] @ header @ data @ List.map (fun b -> 1 - b) crc_bits @ List.init 10 (fun _ -> 0) in
  List.iter
    (fun bit ->
      last := Simulate.step sim [| bit = 1; false; false; false; false; false; false; false; false; false |])
    bad;
  Alcotest.(check int) "error counted" 1 (int_of_bus !last 12 8)

let () =
  ignore int_of_bits;
  Alcotest.run "vpga_designs"
    [
      ( "wordgen",
        [
          Alcotest.test_case "adder/subtractor/compare" `Quick test_adder_sub;
          Alcotest.test_case "carry-select adder" `Quick test_carry_select;
          Alcotest.test_case "csa multiplier" `Quick test_csa_multiplier;
          Alcotest.test_case "csa reduction" `Quick test_csa_reduce;
          Alcotest.test_case "shifters and lzc" `Quick test_shifters;
          Alcotest.test_case "crc step" `Quick test_crc_step;
          Alcotest.test_case "mux tree and comparators" `Quick
            test_mux_tree_and_compare;
          Alcotest.test_case "counter and registers" `Quick
            test_counter_and_registers;
          Alcotest.test_case "fsm compiler" `Quick test_fsm;
        ] );
      ( "alu",
        [
          Alcotest.test_case "vs reference" `Quick test_alu;
          Alcotest.test_case "size and character" `Quick test_alu_size;
        ] );
      ( "fpu",
        [
          Alcotest.test_case "vs reference" `Quick test_fpu;
          Alcotest.test_case "edge cases" `Quick test_fpu_edge_cases;
          Alcotest.test_case "pipelined" `Quick test_fpu_pipelined;
          Alcotest.test_case "size" `Quick test_fpu_size;
        ] );
      ( "netswitch",
        [
          Alcotest.test_case "vs reference" `Quick test_netswitch;
          Alcotest.test_case "8 ports interface" `Quick test_netswitch8;
        ] );
      ("firewire", [ Alcotest.test_case "frame protocol" `Quick test_firewire_frame ]);
    ]
