# One-command CI-style verification and benchmarking.
#
#   make            build + full test suite (tier-1 gate)
#   make build      dune build
#   make test       dune runtest
#   make verify     lint + SAT-based formal equivalence suite only
#   make faults     fault-injection + retry/escalation resilience suite only
#   make obs        observability suite only (spans, counters, trace export)
#   make analyze    static-analysis suite only (dataflow passes, CEC-gated
#                   simplifier, region-ownership sanitizer)
#   make bench      full paper reproduction + kernel benchmarks;
#                   writes BENCH_sweep.json with a per-stage stages_s
#                   breakdown (JOBS=N to set worker domains)
#   make perfdiff   re-run just the kernels and diff against the committed
#                   BENCH_sweep.json; exits nonzero past TOLERANCE
#                   (fractional, default 0.25)
#   make stress     small fixed-seed defect-stress matrix: minimum channel
#                   width + survival per (design, arch, defect rate)
#   make metrics    regenerate the committed BENCH_metrics.json baseline
#                   (one fixed-seed alu/granular flow with --metrics)
#   make metricsdiff  run the same flow fresh and gate it against
#                   BENCH_metrics.json with `vpga perf diff` at 50%
#                   tolerance; exits nonzero on regression
#   make cachecheck   end-to-end stage-cache self-test: one flow cold
#                   against a throwaway disk store, rerun warm from a
#                   fresh process, assert a nonzero hit rate and
#                   identical outcomes; exits nonzero on divergence
#   make check      the full pre-merge gate: build, test suite, the
#                   static-analysis suite, the defect-stress matrix, the
#                   stage-cache self-test, the metrics snapshot diff,
#                   then the kernel perf regression diff at 25% tolerance
#   make trace      run one traced flow (alu / granular) and write
#                   trace.json -- open it at https://ui.perfetto.dev or
#                   summarize with `dune exec bin/vpga.exe -- report trace.json`

JOBS ?=
TOLERANCE ?=

.PHONY: all build test verify faults obs analyze bench perfdiff stress metrics metricsdiff cachecheck check trace clean

all: build test

build:
	dune build

test:
	dune build @runtest

verify:
	dune build @verify

faults:
	dune build @faults

obs:
	dune build @obs

analyze:
	dune build @analyze

trace:
	dune exec bin/vpga.exe -- flow -d alu -a granular --trace trace.json
	dune exec bin/vpga.exe -- report trace.json

bench:
	dune exec bench/main.exe -- $(if $(JOBS),-jobs $(JOBS),)

perfdiff:
	dune exec bench/main.exe -- -perfdiff $(if $(TOLERANCE),-tolerance $(TOLERANCE),)

stress:
	dune exec bin/vpga.exe -- stress --rates 0,0.05 --maps 2 $(if $(JOBS),-j $(JOBS),)

# The committed metrics baseline and its gate both run the same fixed-seed
# single-job flow, so counters/allocations are deterministic and only
# wall-clock quantities need the diff's noise floors.
metrics:
	dune exec bin/vpga.exe -- flow -d alu -a granular -j 1 --seed 1 --metrics BENCH_metrics.json

metricsdiff:
	dune exec bin/vpga.exe -- flow -d alu -a granular -j 1 --seed 1 --metrics _metrics_current.json
	dune exec bin/vpga.exe -- perf diff BENCH_metrics.json _metrics_current.json --tolerance 0.5
	rm -f _metrics_current.json

cachecheck:
	dune exec bin/vpga.exe -- cache check

check:
	dune build
	dune build @runtest
	dune build @analyze
	$(MAKE) stress
	$(MAKE) cachecheck
	$(MAKE) metricsdiff
	$(MAKE) perfdiff TOLERANCE=0.25

clean:
	dune clean
