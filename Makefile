# One-command CI-style verification and benchmarking.
#
#   make            build + full test suite (tier-1 gate)
#   make build      dune build
#   make test       dune runtest
#   make verify     lint + SAT-based formal equivalence suite only
#   make faults     fault-injection + retry/escalation resilience suite only
#   make obs        observability suite only (spans, counters, trace export)
#   make analyze    static-analysis suite only (dataflow passes, CEC-gated
#                   simplifier, region-ownership sanitizer)
#   make bench      full paper reproduction + kernel benchmarks;
#                   writes BENCH_sweep.json with a per-stage stages_s
#                   breakdown (JOBS=N to set worker domains)
#   make perfdiff   re-run just the kernels and diff against the committed
#                   BENCH_sweep.json; exits nonzero past TOLERANCE
#                   (fractional, default 0.25)
#   make stress     small fixed-seed defect-stress matrix: minimum channel
#                   width + survival per (design, arch, defect rate)
#   make check      the full pre-merge gate: build, test suite, the
#                   static-analysis suite, the defect-stress matrix, then
#                   the kernel perf regression diff at 25% tolerance
#   make trace      run one traced flow (alu / granular) and write
#                   trace.json -- open it at https://ui.perfetto.dev or
#                   summarize with `dune exec bin/vpga.exe -- report trace.json`

JOBS ?=
TOLERANCE ?=

.PHONY: all build test verify faults obs analyze bench perfdiff stress check trace clean

all: build test

build:
	dune build

test:
	dune build @runtest

verify:
	dune build @verify

faults:
	dune build @faults

obs:
	dune build @obs

analyze:
	dune build @analyze

trace:
	dune exec bin/vpga.exe -- flow -d alu -a granular --trace trace.json
	dune exec bin/vpga.exe -- report trace.json

bench:
	dune exec bench/main.exe -- $(if $(JOBS),-jobs $(JOBS),)

perfdiff:
	dune exec bench/main.exe -- -perfdiff $(if $(TOLERANCE),-tolerance $(TOLERANCE),)

stress:
	dune exec bin/vpga.exe -- stress --rates 0,0.05 --maps 2 $(if $(JOBS),-j $(JOBS),)

check:
	dune build
	dune build @runtest
	dune build @analyze
	$(MAKE) stress
	$(MAKE) perfdiff TOLERANCE=0.25

clean:
	dune clean
