# One-command CI-style verification and benchmarking.
#
#   make            build + full test suite (tier-1 gate)
#   make build      dune build
#   make test       dune runtest
#   make verify     lint + SAT-based formal equivalence suite only
#   make faults     fault-injection + retry/escalation resilience suite only
#   make bench      full paper reproduction + kernel benchmarks;
#                   writes BENCH_sweep.json (JOBS=N to set worker domains)

JOBS ?=

.PHONY: all build test verify faults bench clean

all: build test

build:
	dune build

test:
	dune build @runtest

verify:
	dune build @verify

faults:
	dune build @faults

bench:
	dune exec bench/main.exe -- $(if $(JOBS),-jobs $(JOBS),)

clean:
	dune clean
