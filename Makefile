# One-command CI-style verification and benchmarking.
#
#   make            build + full test suite (tier-1 gate)
#   make build      dune build
#   make test       dune runtest
#   make bench      full paper reproduction + kernel benchmarks;
#                   writes BENCH_sweep.json (JOBS=N to set worker domains)

JOBS ?=

.PHONY: all build test bench clean

all: build test

build:
	dune build

test:
	dune build @runtest

bench:
	dune exec bench/main.exe -- $(if $(JOBS),-jobs $(JOBS),)

clean:
	dune clean
