(** Detailed routing: track assignment within the global route.

    The paper's flow performs "ASIC-style custom global and detailed
    routing"; after {!Pathfinder} fixes each net's bin-to-bin path, this
    pass assigns every crossing to a physical track (0 .. capacity-1) on
    its boundary, preferring to continue on the same track through
    collinear segments.  Track changes and direction changes cost a via. *)

type t = {
  grid : Grid.t;
  track : (int * int, int) Hashtbl.t;  (** (edge, net index) -> track *)
  net_vias : int array;  (** per net: vias beyond the pin contacts *)
  total_vias : int;
  max_track : int;  (** highest track index used anywhere *)
}

val bins_of : Grid.t -> int -> int * int
(** The two bins an edge joins (independent of any track assignment);
    exposed for the routing-connectivity checker in [vpga_verify]. *)

val run_result : Grid.t -> Router.route list -> (t, string) result
(** [Error] describes the first edge holding more nets than its usable
    tracks (cannot happen on an overflow-free PathFinder result): the
    edge index, the (col,row) coordinates of the two bins it joins, its
    usable track count, and how many nets cross it — the retry policy's
    signal to escalate channel capacity.  Only a defective edge's usable
    tracks are candidates; dead tracks are skipped. *)

val run : Grid.t -> Router.route list -> t
(** {!run_result} as a hard gate.
    @raise Failure if an edge holds more nets than its capacity. *)

val track_of : t -> net:int -> edge:int -> int option
(** Track assigned to a net on an edge it crosses. *)

val validate : t -> Router.route list -> (unit, string) result
(** Checks that every crossing has a track, no (edge, track) pair is shared
    by two nets, and every assigned track is usable on its edge. *)
