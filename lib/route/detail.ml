type t = {
  grid : Grid.t;
  track : (int * int, int) Hashtbl.t;
  net_vias : int array;
  total_vias : int;
  max_track : int;
}

(* Is the edge horizontal (within a row)? *)
let horizontal grid e = e < (grid.Grid.cols - 1) * grid.Grid.rows

(* The two bins an edge joins. *)
let bins_of grid e =
  if horizontal grid e then begin
    let c = e mod (grid.Grid.cols - 1) and r = e / (grid.Grid.cols - 1) in
    let b = (r * grid.Grid.cols) + c in
    (b, b + 1)
  end
  else begin
    let e = e - ((grid.Grid.cols - 1) * grid.Grid.rows) in
    let c = e mod grid.Grid.cols and r = e / grid.Grid.cols in
    let b = (r * grid.Grid.cols) + c in
    (b, b + grid.Grid.cols)
  end

exception Over_capacity of string

(* Raises [Over_capacity] when an edge holds more nets than tracks. *)
let assign grid routes =
  let occupancy : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let track = Hashtbl.create 1024 in
  let n_nets = List.length routes in
  let net_vias = Array.make n_nets 0 in
  let max_track = ref 0 in
  List.iteri
    (fun net rt ->
      let edges = rt.Router.edges in
      (* Adjacency between this net's edges: edges sharing a bin. *)
      let by_bin = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let a, b = bins_of grid e in
          List.iter
            (fun bin ->
              Hashtbl.replace by_bin bin
                (e :: Option.value ~default:[] (Hashtbl.find_opt by_bin bin)))
            [ a; b ])
        edges;
      (* Assign in list order (back-traced tree order keeps runs together):
         prefer the track of an already-assigned collinear neighbour. *)
      List.iter
        (fun e ->
          let a, b = bins_of grid e in
          let preferred =
            List.concat_map
              (fun bin -> Option.value ~default:[] (Hashtbl.find_opt by_bin bin))
              [ a; b ]
            |> List.filter_map (fun e' ->
                   if e' <> e && horizontal grid e' = horizontal grid e then
                     Hashtbl.find_opt track (e', net)
                   else None)
          in
          let free t = not (Hashtbl.mem occupancy (e, t)) in
          (* Only tracks listed usable on this edge are candidates: a
             preferred (continuation) track must survive the defect filter
             here too, and the fallback scan walks the edge's usable-track
             array, skipping dead tracks entirely. *)
          let usable = grid.Grid.tracks.(e) in
          let chosen =
            match
              List.find_opt
                (fun t -> free t && Grid.track_usable grid e t)
                preferred
            with
            | Some t -> Some t
            | None ->
                let n = Array.length usable in
                let rec first i =
                  if i >= n then None
                  else if free usable.(i) then Some usable.(i)
                  else first (i + 1)
                in
                first 0
          in
          match chosen with
          | Some t ->
              Hashtbl.replace occupancy (e, t) ();
              Hashtbl.replace track (e, net) t;
              if t > !max_track then max_track := t
          | None ->
              let a, b = bins_of grid e in
              let ca, ra = Grid.coords grid a and cb, rb = Grid.coords grid b in
              let crossing =
                List.fold_left
                  (fun acc rt ->
                    if List.mem e rt.Router.edges then acc + 1 else acc)
                  0 routes
              in
              raise
                (Over_capacity
                   (Printf.sprintf
                      "edge %d between bins (%d,%d) and (%d,%d) over \
                       capacity: %d usable track(s), %d net(s) crossing"
                      e ca ra cb rb (Array.length usable) crossing)))
        edges;
      (* Count vias: within each bin, adjacent edge pairs of this net that
         change direction or track. *)
      let vias = ref 0 in
      Hashtbl.iter
        (fun _bin es ->
          let rec pairs = function
            | [] | [ _ ] -> ()
            | e1 :: rest ->
                List.iter
                  (fun e2 ->
                    let t1 = Hashtbl.find track (e1, net) in
                    let t2 = Hashtbl.find track (e2, net) in
                    if horizontal grid e1 <> horizontal grid e2 || t1 <> t2
                    then incr vias)
                  rest;
                pairs rest
          in
          pairs (List.sort_uniq Int.compare es))
        by_bin;
      net_vias.(net) <- !vias)
    routes;
  {
    grid;
    track;
    net_vias;
    total_vias = Array.fold_left ( + ) 0 net_vias;
    max_track = !max_track;
  }

let run_result grid routes =
  match assign grid routes with
  | t -> Ok t
  | exception Over_capacity msg -> Error msg

let run grid routes =
  match run_result grid routes with
  | Ok t -> t
  | Error msg -> failwith ("Detail.run: " ^ msg)

let track_of t ~net ~edge = Hashtbl.find_opt t.track (edge, net)

let validate t routes =
  let errors = ref [] in
  let seen = Hashtbl.create 1024 in
  List.iteri
    (fun net rt ->
      List.iter
        (fun e ->
          match track_of t ~net ~edge:e with
          | None -> errors := Printf.sprintf "net %d unassigned on edge %d" net e :: !errors
          | Some tr ->
              if tr < 0 || not (Grid.track_usable t.grid e tr) then
                errors :=
                  Printf.sprintf "net %d track %d not usable on edge %d" net
                    tr e
                  :: !errors;
              (match Hashtbl.find_opt seen (e, tr) with
              | Some other when other <> net ->
                  errors :=
                    Printf.sprintf "edge %d track %d shared by nets %d and %d" e
                      tr other net
                    :: !errors
              | Some _ | None -> ());
              Hashtbl.replace seen (e, tr) net)
        rt.Router.edges)
    routes;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)
