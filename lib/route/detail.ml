type t = {
  grid : Grid.t;
  track : (int * int, int) Hashtbl.t;
  net_vias : int array;
  total_vias : int;
  max_track : int;
}

(* Is the edge horizontal (within a row)? *)
let horizontal grid e = e < (grid.Grid.cols - 1) * grid.Grid.rows

(* The two bins an edge joins. *)
let bins_of grid e =
  if horizontal grid e then begin
    let c = e mod (grid.Grid.cols - 1) and r = e / (grid.Grid.cols - 1) in
    let b = (r * grid.Grid.cols) + c in
    (b, b + 1)
  end
  else begin
    let e = e - ((grid.Grid.cols - 1) * grid.Grid.rows) in
    let c = e mod grid.Grid.cols and r = e / grid.Grid.cols in
    let b = (r * grid.Grid.cols) + c in
    (b, b + grid.Grid.cols)
  end

exception Over_capacity of string

(* Raises [Over_capacity] when an edge holds more nets than tracks. *)
let assign grid routes =
  let occupancy : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let track = Hashtbl.create 1024 in
  let n_nets = List.length routes in
  let net_vias = Array.make n_nets 0 in
  let max_track = ref 0 in
  List.iteri
    (fun net rt ->
      let edges = rt.Router.edges in
      (* Adjacency between this net's edges: edges sharing a bin. *)
      let by_bin = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let a, b = bins_of grid e in
          List.iter
            (fun bin ->
              Hashtbl.replace by_bin bin
                (e :: Option.value ~default:[] (Hashtbl.find_opt by_bin bin)))
            [ a; b ])
        edges;
      (* Assign in list order (back-traced tree order keeps runs together):
         prefer the track of an already-assigned collinear neighbour. *)
      List.iter
        (fun e ->
          let a, b = bins_of grid e in
          let preferred =
            List.concat_map
              (fun bin -> Option.value ~default:[] (Hashtbl.find_opt by_bin bin))
              [ a; b ]
            |> List.filter_map (fun e' ->
                   if e' <> e && horizontal grid e' = horizontal grid e then
                     Hashtbl.find_opt track (e', net)
                   else None)
          in
          let free t = not (Hashtbl.mem occupancy (e, t)) in
          let chosen =
            match List.find_opt free preferred with
            | Some t -> Some t
            | None ->
                let rec first t =
                  if t >= grid.Grid.capacity then None
                  else if free t then Some t
                  else first (t + 1)
                in
                first 0
          in
          match chosen with
          | Some t ->
              Hashtbl.replace occupancy (e, t) ();
              Hashtbl.replace track (e, net) t;
              if t > !max_track then max_track := t
          | None ->
              raise
                (Over_capacity
                   (Printf.sprintf "edge %d over capacity %d" e
                      grid.Grid.capacity)))
        edges;
      (* Count vias: within each bin, adjacent edge pairs of this net that
         change direction or track. *)
      let vias = ref 0 in
      Hashtbl.iter
        (fun _bin es ->
          let rec pairs = function
            | [] | [ _ ] -> ()
            | e1 :: rest ->
                List.iter
                  (fun e2 ->
                    let t1 = Hashtbl.find track (e1, net) in
                    let t2 = Hashtbl.find track (e2, net) in
                    if horizontal grid e1 <> horizontal grid e2 || t1 <> t2
                    then incr vias)
                  rest;
                pairs rest
          in
          pairs (List.sort_uniq Int.compare es))
        by_bin;
      net_vias.(net) <- !vias)
    routes;
  {
    grid;
    track;
    net_vias;
    total_vias = Array.fold_left ( + ) 0 net_vias;
    max_track = !max_track;
  }

let run_result grid routes =
  match assign grid routes with
  | t -> Ok t
  | exception Over_capacity msg -> Error msg

let run grid routes =
  match run_result grid routes with
  | Ok t -> t
  | Error msg -> failwith ("Detail.run: " ^ msg)

let track_of t ~net ~edge = Hashtbl.find_opt t.track (edge, net)

let validate t routes =
  let errors = ref [] in
  let seen = Hashtbl.create 1024 in
  List.iteri
    (fun net rt ->
      List.iter
        (fun e ->
          match track_of t ~net ~edge:e with
          | None -> errors := Printf.sprintf "net %d unassigned on edge %d" net e :: !errors
          | Some tr ->
              if tr < 0 || tr >= t.grid.Grid.capacity then
                errors := Printf.sprintf "net %d track %d out of range" net tr :: !errors;
              (match Hashtbl.find_opt seen (e, tr) with
              | Some other when other <> net ->
                  errors :=
                    Printf.sprintf "edge %d track %d shared by nets %d and %d" e
                      tr other net
                    :: !errors
              | Some _ | None -> ());
              Hashtbl.replace seen (e, tr) net)
        rt.Router.edges)
    routes;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)
