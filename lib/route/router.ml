type route = { net : int array; edges : int list; wirelength : float }

(* Dead boundaries are priced huge-but-finite rather than removed: the
   search stays connected (no pin is ever unreachable through the grid
   graph), and any route forced across a dead edge surfaces as overflow —
   the signal the negotiation loop, the retry ladder and the
   minimum-channel-width search all key on.  The constant must dominate
   the congestion term, which grows like pres_fac ~ 1.8^iterations. *)
let dead_edge_penalty = 1e15

let edge_cost grid ~pres_fac e =
  let len = Grid.edge_length grid e /. max grid.Grid.bin_w grid.Grid.bin_h in
  let cap = Grid.cap grid e in
  if cap = 0 then len *. dead_edge_penalty
  else
    let u = grid.Grid.usage.(e) in
    let congestion =
      if u < cap then 1.0 else 1.0 +. (float_of_int (u + 1 - cap) *. pres_fac)
    in
    len *. (1.0 +. grid.Grid.history.(e)) *. congestion

(* Priority queue as a Set of (cost, bin). *)
module Pq = Set.Make (struct
  type t = float * int

  let compare (c1, b1) (c2, b2) =
    match Float.compare c1 c2 with 0 -> Int.compare b1 b2 | c -> c
end)

let route_net grid ~pres_fac ~pins =
  match List.sort_uniq Int.compare pins with
  | [] -> invalid_arg "Router.route_net: no pins"
  | [ _ ] -> Some []
  | first :: rest ->
      let n_bins = Grid.num_bins grid in
      let in_tree = Array.make n_bins false in
      in_tree.(first) <- true;
      let tree_edges = ref [] in
      let remaining = ref rest in
      let dist = Array.make n_bins infinity in
      let via = Array.make n_bins (-1) in
      (* predecessor bin *)
      let ok = ref true in
      while !remaining <> [] && !ok do
        (* Dijkstra from the whole tree to the nearest remaining pin. *)
        Array.fill dist 0 n_bins infinity;
        Array.fill via 0 n_bins (-1);
        let pq = ref Pq.empty in
        for b = 0 to n_bins - 1 do
          if in_tree.(b) then begin
            dist.(b) <- 0.0;
            pq := Pq.add (0.0, b) !pq
          end
        done;
        let is_target = Array.make n_bins false in
        List.iter (fun p -> is_target.(p) <- true) !remaining;
        let found = ref (-1) in
        while !found < 0 && not (Pq.is_empty !pq) do
          let (d, b) = Pq.min_elt !pq in
          pq := Pq.remove (d, b) !pq;
          if d <= dist.(b) then begin
            if is_target.(b) then found := b
            else
              List.iter
                (fun (e, nb) ->
                  let nd = d +. edge_cost grid ~pres_fac e in
                  if nd < dist.(nb) then begin
                    dist.(nb) <- nd;
                    via.(nb) <- b;
                    pq := Pq.add (nd, nb) !pq
                  end)
                (Grid.neighbors grid b)
          end
        done;
        if !found < 0 then ok := false
        else begin
          (* Back-trace into the tree, adding edges. *)
          let rec back b =
            if not in_tree.(b) then begin
              in_tree.(b) <- true;
              let p = via.(b) in
              tree_edges := Grid.edge_between grid p b :: !tree_edges;
              back p
            end
          in
          back !found;
          remaining := List.filter (fun p -> not in_tree.(p)) !remaining
        end
      done;
      if !ok then Some !tree_edges else None

let commit grid edges =
  List.iter (fun e -> grid.Grid.usage.(e) <- grid.Grid.usage.(e) + 1) edges

let uncommit grid edges =
  List.iter (fun e -> grid.Grid.usage.(e) <- grid.Grid.usage.(e) - 1) edges

let wirelength_of grid edges =
  List.fold_left (fun acc e -> acc +. Grid.edge_length grid e) 0.0 edges
