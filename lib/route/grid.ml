type t = {
  cols : int;
  rows : int;
  bin_w : float;
  bin_h : float;
  capacity : int;
  usage : int array;
  history : float array;
  tracks : int array array;
}

type track_fn =
  cx:float ->
  cy:float ->
  hw:float ->
  hh:float ->
  vertical:bool ->
  capacity:int ->
  int array

(* Edge layout: horizontal edges first ((cols-1) * rows of them, edge c,r =
   r*(cols-1)+c between bins (c,r) and (c+1,r)), then vertical edges
   (cols * (rows-1), edge c,r = base + r*cols+c between (c,r) and (c,r+1)). *)

let num_h t = (t.cols - 1) * t.rows
let num_edges t = num_h t + (t.cols * (t.rows - 1))
let num_bins t = t.cols * t.rows

let create ?tracks ~cols ~rows ~bin_w ~bin_h ~capacity () =
  if cols < 1 || rows < 1 then invalid_arg "Grid.create: empty grid";
  let t =
    {
      cols;
      rows;
      bin_w;
      bin_h;
      capacity;
      usage = [||];
      history = [||];
      tracks = [||];
    }
  in
  let e = num_edges t in
  let n = max 1 e in
  let track_arrays =
    match tracks with
    | None ->
        (* Healthy fabric: every edge shares one full-track array, so the
           per-edge representation costs one word per edge and the arrays
           compare physically equal. *)
        let full = Array.init capacity Fun.id in
        Array.make n full
    | Some f ->
        let die_w = float_of_int cols *. bin_w in
        let die_h = float_of_int rows *. bin_h in
        let hw = bin_w /. (2.0 *. die_w) and hh = bin_h /. (2.0 *. die_h) in
        let nh = num_h t in
        Array.init n (fun e ->
            if e >= num_edges t then [||]
            else if e < nh then
              let c = e mod (cols - 1) and r = e / (cols - 1) in
              let cx = float_of_int (c + 1) *. bin_w /. die_w in
              let cy = (float_of_int r +. 0.5) *. bin_h /. die_h in
              f ~cx ~cy ~hw ~hh ~vertical:false ~capacity
            else
              let e' = e - nh in
              let c = e' mod cols and r = e' / cols in
              let cx = (float_of_int c +. 0.5) *. bin_w /. die_w in
              let cy = float_of_int (r + 1) *. bin_h /. die_h in
              f ~cx ~cy ~hw ~hh ~vertical:true ~capacity)
  in
  {
    t with
    usage = Array.make n 0;
    history = Array.make n 0.0;
    tracks = track_arrays;
  }

(* Per-edge usable capacity: the healthy value is [t.capacity]; a defective
   edge exposes fewer (possibly zero) usable tracks. *)
let cap t e = Array.length t.tracks.(e)
let dead t e = cap t e = 0

let track_usable t e tr =
  (* The usable-track array is ascending; binary-search membership. *)
  let a = t.tracks.(e) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = tr then found := true
    else if v < tr then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* Routing tracks available per um of bin boundary: a handful of metal
   layers at sub-um pitch (see DESIGN.md's synthetic technology). *)
let tracks_per_um = 4.0

let of_placement ?target_cols ?capacity ?tracks pl =
  let die_w = pl.Vpga_place.Placement.die_w in
  let die_h = pl.Vpga_place.Placement.die_h in
  let cols =
    match target_cols with
    | Some c -> max 2 c
    | None ->
        (* target ~45 um bins *)
        min 48 (max 8 (int_of_float (Float.round (die_w /. 45.0))))
  in
  let rows =
    max 2
      (int_of_float (Float.round (float_of_int cols *. die_h /. max 1e-6 die_w)))
  in
  let bin_w = die_w /. float_of_int cols in
  let bin_h = die_h /. float_of_int rows in
  let capacity =
    match capacity with
    | Some c -> c
    | None -> max 8 (int_of_float (min bin_w bin_h *. tracks_per_um))
  in
  let t = create ?tracks ~cols ~rows ~bin_w ~bin_h ~capacity () in
  (match tracks with
  | None -> ()
  | Some _ ->
      let ne = num_edges t in
      let dead_edges = ref 0 and derated = ref 0 in
      for e = 0 to ne - 1 do
        let c = cap t e in
        if c = 0 then incr dead_edges
        else if c < capacity then incr derated
      done;
      Vpga_obs.Trace.emit "route.dead_edges" (float_of_int !dead_edges);
      Vpga_obs.Trace.emit "route.derated_edges" (float_of_int !derated));
  t

let bin_of t ~x ~y =
  let c = min (t.cols - 1) (max 0 (int_of_float (x /. t.bin_w))) in
  let r = min (t.rows - 1) (max 0 (int_of_float (y /. t.bin_h))) in
  (r * t.cols) + c

let coords t b = (b mod t.cols, b / t.cols)

let h_edge t c r = (r * (t.cols - 1)) + c
let v_edge t c r = num_h t + (r * t.cols) + c

let neighbors t b =
  let c, r = coords t b in
  let acc = ref [] in
  if c > 0 then acc := (h_edge t (c - 1) r, b - 1) :: !acc;
  if c < t.cols - 1 then acc := (h_edge t c r, b + 1) :: !acc;
  if r > 0 then acc := (v_edge t c (r - 1), b - t.cols) :: !acc;
  if r < t.rows - 1 then acc := (v_edge t c r, b + t.cols) :: !acc;
  !acc

let edge_between t a b =
  let ca, ra = coords t a and cb, rb = coords t b in
  if ra = rb && abs (ca - cb) = 1 then h_edge t (min ca cb) ra
  else if ca = cb && abs (ra - rb) = 1 then v_edge t ca (min ra rb)
  else invalid_arg "Grid.edge_between: bins not adjacent"

let edge_length t e = if e < num_h t then t.bin_w else t.bin_h

let overflow t =
  let acc = ref 0 in
  Array.iteri
    (fun e u -> acc := !acc + max 0 (u - Array.length t.tracks.(e)))
    t.usage;
  !acc

let center t b =
  let c, r = coords t b in
  ((float_of_int c +. 0.5) *. t.bin_w, (float_of_int r +. 0.5) *. t.bin_h)
