(** Global-routing grid: the die divided into bins, with a capacity (track
    count) on every bin-to-bin boundary.  This models the VPGA's ASIC-style
    routing on the metal layers above the PLB array.

    Defect awareness: every edge carries an explicit array of {e usable}
    track indices.  On a healthy fabric each array is the full
    [0..capacity-1] range (and all edges share one physical array, so the
    representation is free); a defect map supplies a {!track_fn} that
    derates or kills individual boundaries.  [capacity] remains the
    healthy per-boundary track count — the retry ladder's escalation base
    — while {!cap} is the per-edge usable count that congestion pricing,
    overflow accounting and track assignment consult. *)

type t = {
  cols : int;
  rows : int;
  bin_w : float;  (** um *)
  bin_h : float;
  capacity : int;  (** healthy tracks per boundary *)
  usage : int array;  (** per edge *)
  history : float array;  (** PathFinder history cost, per edge *)
  tracks : int array array;
      (** per edge, the ascending array of usable track indices; empty
          means the boundary is dead *)
}

type track_fn =
  cx:float ->
  cy:float ->
  hw:float ->
  hh:float ->
  vertical:bool ->
  capacity:int ->
  int array
(** Usable-track oracle consulted once per edge at grid construction.
    [cx], [cy] are the edge midpoint and [hw], [hh] the bin half-extents,
    all in normalized die coordinates ([0,1] x [0,1]) so one defect map
    applies to every grid discretization; [vertical] distinguishes the
    channel orientation.  Must return an ascending subset of
    [0..capacity-1]; [[||]] marks the boundary dead. *)

val create :
  ?tracks:track_fn ->
  cols:int ->
  rows:int ->
  bin_w:float ->
  bin_h:float ->
  capacity:int ->
  unit ->
  t

val of_placement :
  ?target_cols:int ->
  ?capacity:int ->
  ?tracks:track_fn ->
  Vpga_place.Placement.t ->
  t
(** Grid sized from a placement's die: ~45 um bins (8-48 columns) and a
    boundary capacity proportional to bin size ({!tracks_per_um}).  When
    [tracks] is supplied, emits the [route.dead_edges] /
    [route.derated_edges] counters to the ambient trace. *)

val tracks_per_um : float
(** Routing tracks per um of bin boundary in the synthetic technology. *)

val cap : t -> int -> int
(** Usable tracks on an edge; equals [capacity] on a healthy fabric. *)

val dead : t -> int -> bool
(** [cap t e = 0]. *)

val track_usable : t -> int -> int -> bool
(** [track_usable t e tr]: is track [tr] usable on edge [e]? *)

val bin_of : t -> x:float -> y:float -> int
(** Bin index containing a coordinate (clamped to the die). *)

val coords : t -> int -> int * int
(** Bin index to [(col, row)]. *)

val num_bins : t -> int
val num_edges : t -> int

val neighbors : t -> int -> (int * int) list
(** [(edge, bin)] pairs adjacent to a bin. *)

val edge_between : t -> int -> int -> int
(** Edge index between two adjacent bins. @raise Invalid_argument otherwise. *)

val edge_length : t -> int -> float
(** Physical length represented by crossing an edge, um. *)

val overflow : t -> int
(** Total usage above per-edge usable capacity, summed over edges. *)

val center : t -> int -> float * float
