module Placement = Vpga_place.Placement

type result = {
  grid : Grid.t;
  routes : Router.route list;
  iterations : int;
  final_overflow : int;
}

(* Synthetic-technology wire parasitics (see DESIGN.md): mid-layer metal. *)
let cap_per_um = 0.2 (* fF/um *)
let res_per_um = 0.00008 (* kOhm/um = ps/fF/um *)
let local_wire_um = 15.0 (* same-bin nets still have some local wire *)

let route_placement ?grid_cols ?capacity ?tracks ?(max_iterations = 30) pl =
  let grid = Grid.of_placement ?target_cols:grid_cols ?capacity ?tracks pl in
  let nets = Placement.nets_with_io pl in
  let pins_of net =
    Array.to_list net
    |> List.map (fun id ->
           Grid.bin_of grid ~x:pl.Placement.x.(id) ~y:pl.Placement.y.(id))
  in
  let net_list =
    Array.to_list nets |> List.map (fun net -> (net, pins_of net))
  in
  let current = Hashtbl.create (List.length net_list) in
  let route_pass ~pres_fac =
    List.iteri
      (fun i (_, pins) ->
        (match Hashtbl.find_opt current i with
        | Some edges -> Router.uncommit grid edges
        | None -> ());
        match Router.route_net grid ~pres_fac ~pins with
        | Some edges ->
            Router.commit grid edges;
            Hashtbl.replace current i edges
        | None -> assert false (* grids are connected *))
      net_list
  in
  let rec negotiate iter pres_fac =
    route_pass ~pres_fac;
    let ov = Grid.overflow grid in
    (* Convergence series: overflow after each rip-up/re-route pass. *)
    Vpga_obs.Trace.emit_sample "route.overflow_iter" (float_of_int ov);
    if ov = 0 || iter >= max_iterations then (iter, ov)
    else begin
      (* accumulate history on congested edges *)
      Array.iteri
        (fun e u ->
          let cap = Grid.cap grid e in
          if u > cap then
            grid.Grid.history.(e) <-
              grid.Grid.history.(e) +. (0.4 *. float_of_int (u - cap)))
        grid.Grid.usage;
      negotiate (iter + 1) (pres_fac *. 1.8)
    end
  in
  let iterations, final_overflow = negotiate 1 0.5 in
  (* Ambient-trace counters (no-op when tracing is off); accumulate
     across the escalation policy's repeated routing attempts. *)
  Vpga_obs.Trace.emit "route.ripup_iterations" (float_of_int iterations);
  Vpga_obs.Trace.emit "route.overflow" (float_of_int final_overflow);
  Vpga_obs.Trace.emit "route.nets" (float_of_int (List.length net_list));
  let routes =
    List.mapi
      (fun i (net, _) ->
        let edges = Hashtbl.find current i in
        {
          Router.net;
          edges;
          wirelength = Router.wirelength_of grid edges;
        })
      net_list
  in
  List.iter
    (fun rt ->
      Vpga_obs.Trace.emit_observe "route.net_wirelength_um" rt.Router.wirelength)
    routes;
  { grid; routes; iterations; final_overflow }

let total_wirelength r =
  List.fold_left (fun acc rt -> acc +. rt.Router.wirelength) 0.0 r.routes

let wire_loads_with ~extra_per_edge r =
  let tbl = Hashtbl.create (List.length r.routes) in
  List.iter
    (fun rt ->
      let driver = rt.Router.net.(0) in
      let len = max local_wire_um rt.Router.wirelength in
      let hops = float_of_int (List.length rt.Router.edges) in
      let er, ec = extra_per_edge in
      Hashtbl.replace tbl driver
        ( (len *. cap_per_um) +. (hops *. ec),
          (len *. res_per_um) +. (hops *. er) ))
    r.routes;
  fun driver ->
    match Hashtbl.find_opt tbl driver with
    | Some p -> p
    | None -> (local_wire_um *. cap_per_um, local_wire_um *. res_per_um)

let wire_loads r = wire_loads_with ~extra_per_edge:(0.0, 0.0) r

let wire_loads_regular ?(switch_r = 0.35) ?(switch_c = 1.2) r =
  wire_loads_with ~extra_per_edge:(switch_r, switch_c) r
