(** Negotiated-congestion routing (PathFinder): rip-up and re-route with
    growing present-congestion pricing and accumulated history costs until no
    routing-grid boundary is over capacity. *)

type result = {
  grid : Grid.t;
  routes : Router.route list;
  iterations : int;
  final_overflow : int;  (** 0 when routing converged *)
}

val route_placement :
  ?grid_cols:int -> ?capacity:int -> ?tracks:Grid.track_fn ->
  ?max_iterations:int -> Vpga_place.Placement.t -> result
(** Builds one multi-terminal net per driver from the placement's netlist
    and negotiates until overflow-free (or [max_iterations], default 30).
    [tracks] derates or kills individual boundaries (see
    {!Grid.track_fn}): dead edges are priced as unroutable, so any route
    forced across one leaves [final_overflow] nonzero. *)

val total_wirelength : result -> float

val wire_loads :
  result -> (int -> float * float)
(** Per-driver (wire capacitance fF, wire resistance ps/fF) lookup for
    timing; drivers without a routed net get a local-wire minimum.  Models
    the paper's ASIC-style {e custom} routing: plain metal on the upper
    layers. *)

val wire_loads_regular : ?switch_r:float -> ?switch_c:float ->
  result -> (int -> float * float)
(** The paper's future-work alternative: {e regular} (FPGA-style segmented)
    routing, where every bin crossing passes a programmable switch that adds
    resistance and capacitance ([switch_r] ps/fF, default 0.35; [switch_c]
    fF, default 1.2).  Same topology, heavier parasitics — experiment E14
    compares the two. *)
