(* Canonical byte encoder for cache-key derivation.

   Every primitive writes a one-byte type tag followed by a
   self-delimiting payload (length-prefixed strings, terminated decimal
   integers, raw IEEE-754 bits for floats), so no two distinct feed
   sequences can produce the same byte stream: [str "ab"; str "c"] and
   [str "a"; str "bc"] differ by their length prefixes, [int 12; int 3]
   and [int 1; int 23] by the terminators.  The stream is then hashed
   with MD5 ([Stdlib.Digest]) — digests are a pure function of the fed
   values, stable across processes, OCaml versions and architectures
   (64-bit ints assumed, as everywhere else in the repo). *)

type t = Buffer.t

let create () = Buffer.create 256

let str b s =
  Buffer.add_char b 's';
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let int b i =
  Buffer.add_char b 'i';
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let i64 b i =
  Buffer.add_char b 'q';
  Buffer.add_string b (Int64.to_string i);
  Buffer.add_char b ';'

(* Raw bit pattern: distinguishes -0.0 from 0.0 and maps every NaN
   payload to its exact bits, so float keys never alias. *)
let float b f =
  Buffer.add_char b 'f';
  Buffer.add_int64_be b (Int64.bits_of_float f)

let bool b v = Buffer.add_char b (if v then 'T' else 'F')

let opt f b = function
  | None -> Buffer.add_char b 'N'
  | Some v ->
      Buffer.add_char b 'S';
      f b v

let list f b l =
  Buffer.add_char b 'L';
  Buffer.add_string b (string_of_int (List.length l));
  Buffer.add_char b ':';
  List.iter (f b) l

let int_array b a =
  Buffer.add_char b 'A';
  Buffer.add_string b (string_of_int (Array.length a));
  Buffer.add_char b ':';
  Array.iter
    (fun i ->
      Buffer.add_string b (string_of_int i);
      Buffer.add_char b ',')
    a

let float_array b a =
  Buffer.add_char b 'G';
  Buffer.add_string b (string_of_int (Array.length a));
  Buffer.add_char b ':';
  Array.iter (fun f -> Buffer.add_int64_be b (Int64.bits_of_float f)) a

let digest_hex b = Digest.to_hex (Digest.string (Buffer.contents b))
