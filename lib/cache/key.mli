(** Content-addressed cache keys: a stage name plus the canonical digest
    of everything that determines the stage's output.

    Key discipline: one stage name = one value type (entries are revived
    with [Marshal], so mixing types under a stage would be unsound), and
    a stage's digest must cover {e every} input that can change its
    output — netlist structure, architecture, seeds, policy knobs,
    verify level, defect fingerprint.  The flow-level option record and
    its exhaustive digesting live in [Vpga_flow.Stagekey]; this module
    provides the generic machinery plus digests for the types every
    stage shares. *)

type t

val schema : string
(** Version tag fed into every key and naming the on-disk store's
    format directory.  Bump it whenever a canonical encoding or a cached
    value's type changes shape: old entries then simply never match. *)

val make : stage:string -> (Enc.t -> unit) -> t
(** [make ~stage feed] digests [schema], [stage] and whatever [feed]
    writes. *)

val stage : t -> string
val hex : t -> string
(** 32 hex chars (MD5). *)

val id : t -> string
(** ["stage/hex"], the store's entry name. *)

(** {2 Shared structural digests}

    Each is exhaustive over the type it encodes (compile-breaking
    pattern match or record destructure), so extending a type forces a
    digest decision. *)

val kind : Enc.t -> Vpga_netlist.Kind.t -> unit

val netlist : Enc.t -> Vpga_netlist.Netlist.t -> unit
(** Structural digest: design name, every node's kind/fanins/name in id
    order, and the input/output/flop lists. *)

val netlist_hex : Vpga_netlist.Netlist.t -> string

val cell : Enc.t -> Vpga_cells.Cell.t -> unit

val arch : Enc.t -> Vpga_plb.Arch.t -> unit
(** Name, capacity vector, component library (every cell's area/timing
    characterization), tile/comb areas, pins and via sites. *)

val arch_hex : Vpga_plb.Arch.t -> string
