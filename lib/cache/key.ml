module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Arch = Vpga_plb.Arch
module Cell = Vpga_cells.Cell

(* Bump when the canonical encodings below change shape: the tag is fed
   into every key and names the on-disk store's subdirectory, so stale
   formats self-invalidate instead of deserializing garbage.  The OCaml
   version rides along because entry payloads are [Marshal] format. *)
let schema = "vpga-cache/1"

type t = { stage : string; hex : string }

let make ~stage feed =
  let e = Enc.create () in
  Enc.str e schema;
  Enc.str e stage;
  feed e;
  { stage; hex = Enc.digest_hex e }

let stage k = k.stage
let hex k = k.hex
let id k = k.stage ^ "/" ^ k.hex

(* --- structural digests ------------------------------------------------ *)

(* Exhaustive over {!Kind.t}: adding a constructor breaks this match, so
   a new node kind cannot silently alias an existing tag. *)
let kind e (k : Kind.t) =
  match k with
  | Kind.Input -> Enc.int e 0
  | Kind.Output -> Enc.int e 1
  | Kind.Const b ->
      Enc.int e 2;
      Enc.bool e b
  | Kind.Buf -> Enc.int e 3
  | Kind.Inv -> Enc.int e 4
  | Kind.And2 -> Enc.int e 5
  | Kind.Or2 -> Enc.int e 6
  | Kind.Nand2 -> Enc.int e 7
  | Kind.Nor2 -> Enc.int e 8
  | Kind.Xor2 -> Enc.int e 9
  | Kind.Xnor2 -> Enc.int e 10
  | Kind.Mux2 -> Enc.int e 11
  | Kind.And3 -> Enc.int e 12
  | Kind.Or3 -> Enc.int e 13
  | Kind.Nand3 -> Enc.int e 14
  | Kind.Nor3 -> Enc.int e 15
  | Kind.Xor3 -> Enc.int e 16
  | Kind.Maj3 -> Enc.int e 17
  | Kind.Dff -> Enc.int e 18
  | Kind.Mapped { cell; fn } ->
      Enc.int e 19;
      Enc.str e cell;
      Enc.int e fn.Vpga_logic.Bfun.arity;
      Enc.int e fn.Vpga_logic.Bfun.tt

let netlist e nl =
  Enc.str e (Netlist.design_name nl);
  Enc.int e (Netlist.size nl);
  Array.iter
    (fun (n : Netlist.node) ->
      (* [id] is the dense creation index, implied by iteration order. *)
      kind e n.Netlist.kind;
      Enc.int_array e n.Netlist.fanins;
      Enc.opt Enc.str e n.Netlist.name)
    (Netlist.nodes nl);
  Enc.list Enc.int e (Netlist.inputs nl);
  Enc.list Enc.int e (Netlist.outputs nl);
  Enc.list Enc.int e (Netlist.flops nl)

let netlist_hex nl =
  let e = Enc.create () in
  netlist e nl;
  Enc.digest_hex e

(* Exhaustive over {!Cell.t}: a new timing/area field cannot be left out
   of the digest without breaking compilation. *)
let cell e (c : Cell.t) =
  let {
    Cell.name;
    area;
    input_cap;
    intrinsic;
    resistance;
    via_sites;
    sequential;
  } =
    c
  in
  Enc.str e name;
  Enc.float e area;
  Enc.float e input_cap;
  Enc.float e intrinsic;
  Enc.float e resistance;
  Enc.int e via_sites;
  Enc.opt
    (fun e { Cell.setup; clk_to_q } ->
      Enc.float e setup;
      Enc.float e clk_to_q)
    e sequential

(* Exhaustive over {!Arch.t}: the capacity vector is fed per resource
   kind in [all_resources] order. *)
let arch e (a : Arch.t) =
  let {
    Arch.name;
    capacity;
    library;
    tile_area;
    comb_area;
    input_pins;
    output_pins;
    via_sites;
  } =
    a
  in
  Enc.str e name;
  Enc.list
    (fun e r -> Enc.int e (Arch.Vector.get capacity r))
    e Arch.all_resources;
  Enc.str e library.Vpga_cells.Library.name;
  Enc.list cell e library.Vpga_cells.Library.cells;
  Enc.float e tile_area;
  Enc.float e comb_area;
  Enc.int e input_pins;
  Enc.int e output_pins;
  Enc.int e via_sites

let arch_hex a =
  let e = Enc.create () in
  arch e a;
  Enc.digest_hex e
