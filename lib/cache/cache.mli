(** Content-addressed artifact store: an in-memory table shared across
    domains, optionally backed by an on-disk store that survives runs.

    Values are stored as [Marshal] snapshots taken at {!put} time, and
    every hit deserializes a fresh copy — so neither the producer
    mutating its result after the store nor a consumer mutating a hit
    can poison the cache.  Only pure-data artifacts may be cached
    (no closures, no custom blocks beyond the stdlib's); all flow
    artifacts satisfy this.

    Thread-safety: all operations are [Mutex]-guarded and safe to call
    concurrently from the worker-pool domains.  The compute function
    passed to {!memo} runs {e outside} the lock, so concurrent misses of
    the same key may both compute (identical results, last store wins)
    but never deadlock. *)

type t

val none : t
(** The disabled cache: every lookup misses, every store is dropped, no
    statistics accumulate.  [--no-cache]. *)

val create : ?dir:string -> unit -> t
(** Fresh cache.  With [dir], entries are additionally persisted under
    [dir/<schema>/<stage>/<hex>] and lookups fall back to disk on a
    memory miss. *)

val enabled : t -> bool
val dir : t -> string option

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/vpga], else [~/.cache/vpga]. *)

(** {2 Lookup and insert} *)

type origin = Memory | Disk | Computed

val find : t -> Key.t -> 'a option
(** Counts as a hit or miss.  The ['a] is trusted: callers must respect
    the one-stage-one-type key discipline (see {!Key}). *)

val put : t -> Key.t -> 'a -> unit
(** Serializes [v] immediately; raises [Invalid_argument] (from
    [Marshal]) if [v] contains functional values. *)

val memo : t -> Key.t -> (unit -> 'a) -> 'a
(** [memo t k compute] returns the cached value for [k], or runs
    [compute], stores and returns its result. *)

val memo' : t -> Key.t -> (unit -> 'a) -> 'a * origin

(** {2 Statistics} *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  hit_bytes : int;  (** serialized size of returned hits *)
  store_bytes : int;  (** serialized size of stored values *)
  mem_entries : int;
  mem_bytes : int;
  stages : (string * (int * int * int)) list;
      (** per stage: (hits, misses, stores), sorted by stage name *)
}

val stats : t -> stats
val hit_rate : stats -> float

(** {2 Disk maintenance}

    Standalone (no live cache needed): operate on a cache directory
    across {e all} schema generations, so the CLI can inspect and bound
    a store containing entries from older formats. *)

type disk_stage = {
  d_schema : string;
  d_stage : string;
  d_entries : int;
  d_bytes : int;
}

val disk_stats : dir:string -> disk_stage list

val disk_clear : dir:string -> int
(** Removes every entry; returns the count removed. *)

type gc_result = {
  gc_kept : int;
  gc_kept_bytes : int;
  gc_removed : int;
  gc_removed_bytes : int;
}

val disk_gc : dir:string -> max_bytes:int -> gc_result
(** Evicts least-recently-used entries (hits touch their files) until
    the store fits in [max_bytes]. *)

val clear : t -> unit
(** Drops the in-memory table and, if disk-backed, its on-disk entries.
    Statistics are kept. *)
