(** Canonical byte encoder for cache-key derivation.

    A sink of typed primitives whose byte stream is injective in the fed
    value sequence: every write is tagged and self-delimiting, so
    distinct sequences can never produce equal streams (no concatenation
    aliasing).  {!digest_hex} hashes the stream with MD5; the result is
    stable across runs and processes — the property the fixed-vector
    digest tests pin down. *)

type t

val create : unit -> t

val str : t -> string -> unit
val int : t -> int -> unit
val i64 : t -> int64 -> unit

val float : t -> float -> unit
(** Fed as raw IEEE-754 bits: [-0.0] and [0.0] differ, NaN payloads are
    preserved. *)

val bool : t -> bool -> unit
val opt : (t -> 'a -> unit) -> t -> 'a option -> unit
val list : (t -> 'a -> unit) -> t -> 'a list -> unit
val int_array : t -> int array -> unit
val float_array : t -> float array -> unit

val digest_hex : t -> string
(** MD5 of the stream so far, as 32 lowercase hex characters.  Does not
    reset the encoder. *)
