module Trace = Vpga_obs.Trace

(* Entry payloads are [Marshal]-encoded snapshots: [put] serializes
   immediately (so later in-place mutation of the stored artifact can
   never poison the entry) and every hit deserializes a fresh copy (so
   callers may freely mutate what they get back).  Type safety rests on
   the key discipline documented in {!Key}: one stage name, one value
   type, with {!Key.schema} bumped whenever a cached type changes. *)

type stage_stats = {
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_stores : int;
}

type live = {
  mutex : Mutex.t;
  mem : (string, bytes) Hashtbl.t;  (* Key.id -> payload *)
  dir : string option;  (* on-disk store root; entries under [schema] *)
  by_stage : (string, stage_stats) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable hit_bytes : int;
  mutable store_bytes : int;
}

type t = Disabled | Live of live

type origin = Memory | Disk | Computed

type stats = {
  hits : int;
  misses : int;
  stores : int;
  hit_bytes : int;
  store_bytes : int;
  mem_entries : int;
  mem_bytes : int;
  stages : (string * (int * int * int)) list;
}

let none = Disabled
let enabled = function Disabled -> false | Live _ -> true
let dir = function Disabled -> None | Live l -> l.dir

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "vpga"
  | _ ->
      let home = Option.value ~default:"." (Sys.getenv_opt "HOME") in
      Filename.concat (Filename.concat home ".cache") "vpga"

let create ?dir () =
  Live
    {
      mutex = Mutex.create ();
      mem = Hashtbl.create 64;
      dir;
      by_stage = Hashtbl.create 16;
      hits = 0;
      misses = 0;
      stores = 0;
      hit_bytes = 0;
      store_bytes = 0;
    }

let locked l f =
  Mutex.lock l.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock l.mutex) f

let stage_slot l stage =
  match Hashtbl.find_opt l.by_stage stage with
  | Some s -> s
  | None ->
      let s = { s_hits = 0; s_misses = 0; s_stores = 0 } in
      Hashtbl.add l.by_stage stage s;
      s

(* --- on-disk entries ---------------------------------------------------

   Layout: [dir]/[schema with '/' -> '-']/[stage]/[hex].  One file per
   entry: a magic line, the payload's MD5 (hex) and length, then the
   payload — so truncation and corruption are both detected on read and
   fall back to recompute.  Writes go through a unique temp file plus
   [rename], so concurrent writers of one key are safe (last rename
   wins, same content). *)

let magic = "VPGACACHE1\n"

let schema_dirname = String.map (fun c -> if c = '/' then '-' else c) Key.schema

let entry_path root k =
  Filename.concat
    (Filename.concat (Filename.concat root schema_dirname) (Key.stage k))
    (Key.hex k)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with End_of_file | Sys_error _ -> None)

let disk_read root k =
  let path = entry_path root k in
  match read_file path with
  | None -> None
  | Some raw ->
      let ok =
        let ml = String.length magic in
        if String.length raw < ml + 32 + 1 + 20 then None
        else if String.sub raw 0 ml <> magic then None
        else
          let hex = String.sub raw ml 32 in
          match String.index_from_opt raw (ml + 32) '\n' with
          | None -> None
          | Some nl -> (
              let len_s = String.sub raw (ml + 32) (nl - ml - 32) in
              match int_of_string_opt (String.trim len_s) with
              | None -> None
              | Some len ->
                  if String.length raw - nl - 1 <> len then None
                  else
                    let payload = String.sub raw (nl + 1) len in
                    if Digest.to_hex (Digest.string payload) <> hex then None
                    else Some (Bytes.of_string payload))
      in
      (match ok with
      | Some _ ->
          (* LRU bookkeeping for [gc]: bump both timestamps to now. *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ())
      | None ->
          (* Corrupted or truncated: heal by removal, caller recomputes. *)
          try Sys.remove path with Sys_error _ -> ());
      ok

let disk_write root k payload =
  let path = entry_path root k in
  try
    mkdir_p (Filename.dirname path);
    let tmp, oc =
      Filename.open_temp_file ~mode:[ Open_binary ]
        ~temp_dir:(Filename.dirname path) ".vpga" ".tmp"
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_string oc (Digest.to_hex (Digest.bytes payload));
        output_string oc (string_of_int (Bytes.length payload));
        output_char oc '\n';
        output_bytes oc payload);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()
(* A full or read-only disk silently degrades to the in-memory store. *)

(* --- lookup / insert --------------------------------------------------- *)

let find_bytes l k =
  let id = Key.id k in
  match locked l (fun () -> Hashtbl.find_opt l.mem id) with
  | Some payload -> Some (payload, Memory)
  | None -> (
      match l.dir with
      | None -> None
      | Some root -> (
          match disk_read root k with
          | None -> None
          | Some payload ->
              locked l (fun () ->
                  if not (Hashtbl.mem l.mem id) then
                    Hashtbl.add l.mem id payload);
              Some (payload, Disk)))

let record_hit l k n =
  locked l (fun () ->
      l.hits <- l.hits + 1;
      l.hit_bytes <- l.hit_bytes + n;
      let s = stage_slot l (Key.stage k) in
      s.s_hits <- s.s_hits + 1);
  Trace.emit "cache.hits" 1.0;
  Trace.emit "cache.bytes" (float_of_int n)

let record_miss l k =
  locked l (fun () ->
      l.misses <- l.misses + 1;
      let s = stage_slot l (Key.stage k) in
      s.s_misses <- s.s_misses + 1);
  Trace.emit "cache.misses" 1.0

let put_bytes l k payload =
  let id = Key.id k in
  locked l (fun () ->
      Hashtbl.replace l.mem id payload;
      l.stores <- l.stores + 1;
      l.store_bytes <- l.store_bytes + Bytes.length payload;
      let s = stage_slot l (Key.stage k) in
      s.s_stores <- s.s_stores + 1);
  match l.dir with None -> () | Some root -> disk_write root k payload

let find : type a. t -> Key.t -> a option =
 fun t k ->
  match t with
  | Disabled -> None
  | Live l -> (
      match find_bytes l k with
      | None ->
          record_miss l k;
          None
      | Some (payload, _) ->
          record_hit l k (Bytes.length payload);
          Some (Marshal.from_bytes payload 0))

let put t k v =
  match t with
  | Disabled -> ()
  | Live l -> put_bytes l k (Marshal.to_bytes v [])

let memo' t k compute =
  match t with
  | Disabled -> (compute (), Computed)
  | Live l -> (
      match find_bytes l k with
      | Some (payload, origin) ->
          record_hit l k (Bytes.length payload);
          (Marshal.from_bytes payload 0, origin)
      | None ->
          record_miss l k;
          let v = compute () in
          put_bytes l k (Marshal.to_bytes v []);
          (v, Computed))

let memo t k compute = fst (memo' t k compute)

let stats = function
  | Disabled ->
      {
        hits = 0;
        misses = 0;
        stores = 0;
        hit_bytes = 0;
        store_bytes = 0;
        mem_entries = 0;
        mem_bytes = 0;
        stages = [];
      }
  | Live l ->
      locked l (fun () ->
          {
            hits = l.hits;
            misses = l.misses;
            stores = l.stores;
            hit_bytes = l.hit_bytes;
            store_bytes = l.store_bytes;
            mem_entries = Hashtbl.length l.mem;
            mem_bytes =
              Hashtbl.fold (fun _ p acc -> acc + Bytes.length p) l.mem 0;
            stages =
              List.sort compare
                (Hashtbl.fold
                   (fun stage s acc ->
                     (stage, (s.s_hits, s.s_misses, s.s_stores)) :: acc)
                   l.by_stage []);
          })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* --- disk maintenance (any schema generation, CLI-facing) -------------- *)

(* Walks [root]/<schema>/<stage>/<entry>; ignores anything that does not
   look like the store's layout. *)
let disk_entries root =
  let ls d = try Array.to_list (Sys.readdir d) with Sys_error _ -> [] in
  List.concat_map
    (fun schema ->
      let sd = Filename.concat root schema in
      if not (try Sys.is_directory sd with Sys_error _ -> false) then []
      else
        List.concat_map
          (fun stage ->
            let std = Filename.concat sd stage in
            if not (try Sys.is_directory std with Sys_error _ -> false) then
              []
            else
              List.filter_map
                (fun entry ->
                  let path = Filename.concat std entry in
                  match Unix.stat path with
                  | exception Unix.Unix_error _ -> None
                  | st when st.Unix.st_kind = Unix.S_REG ->
                      Some (schema, stage, path, st)
                  | _ -> None)
                (ls std))
          (ls sd))
    (ls root)

type disk_stage = {
  d_schema : string;
  d_stage : string;
  d_entries : int;
  d_bytes : int;
}

let disk_stats ~dir:root =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (schema, stage, _, st) ->
      let key = (schema, stage) in
      let e, b =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key)
      in
      Hashtbl.replace tbl key (e + 1, b + st.Unix.st_size))
    (disk_entries root);
  List.sort compare
    (Hashtbl.fold
       (fun (d_schema, d_stage) (d_entries, d_bytes) acc ->
         { d_schema; d_stage; d_entries; d_bytes } :: acc)
       tbl [])

let disk_clear ~dir:root =
  let removed = ref 0 in
  List.iter
    (fun (_, _, path, _) ->
      try
        Sys.remove path;
        incr removed
      with Sys_error _ -> ())
    (disk_entries root);
  !removed

type gc_result = {
  gc_kept : int;
  gc_kept_bytes : int;
  gc_removed : int;
  gc_removed_bytes : int;
}

let disk_gc ~dir:root ~max_bytes =
  if max_bytes < 0 then invalid_arg "Cache.disk_gc: max_bytes < 0";
  (* LRU by access time (reads touch entries), newest kept first. *)
  let entries =
    List.sort
      (fun (_, _, _, a) (_, _, _, b) ->
        compare b.Unix.st_atime a.Unix.st_atime)
      (disk_entries root)
  in
  let kept = ref 0
  and kept_bytes = ref 0
  and removed = ref 0
  and removed_bytes = ref 0 in
  List.iter
    (fun (_, _, path, st) ->
      if !kept_bytes + st.Unix.st_size <= max_bytes then begin
        incr kept;
        kept_bytes := !kept_bytes + st.Unix.st_size
      end
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        incr removed;
        removed_bytes := !removed_bytes + st.Unix.st_size
      end)
    entries;
  {
    gc_kept = !kept;
    gc_kept_bytes = !kept_bytes;
    gc_removed = !removed;
    gc_removed_bytes = !removed_bytes;
  }

let clear t =
  match t with
  | Disabled -> ()
  | Live l ->
      locked l (fun () -> Hashtbl.reset l.mem);
      match l.dir with
      | None -> ()
      | Some root -> ignore (disk_clear ~dir:root)
