(** And-Inverter Graph with structural hashing and constant folding — the
    logic-optimization core of the Design-Compiler substitute.

    Literals are [2 * node + complement]; node 0 is constant false, so
    {!const0} is literal 0 and {!const1} literal 1.  Node ids are dense and
    topologically ordered by construction. *)

module Netlist := Vpga_netlist.Netlist

type t
type lit = int

val create : unit -> t

val const0 : lit
val const1 : lit

val add_pi : t -> lit
(** Add a primary input node; returns its positive literal. *)

val not_ : lit -> lit
val and_ : t -> lit -> lit -> lit
(** Structurally hashed, constant-folded AND. *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux_ : t -> sel:lit -> lit -> lit -> lit

val add_fn : t -> Vpga_logic.Bfun.t -> lit array -> lit
(** Shannon-decompose an arbitrary function of the given argument literals
    into AND nodes. *)

val size : t -> int
(** Total node count, including constant and PIs. *)

val and_count : t -> int
val num_pis : t -> int

val node_of : lit -> int
val is_complement : lit -> bool
val is_pi : t -> int -> bool
val is_const : int -> bool
val fanins : t -> int -> lit * lit
(** Fanin literals of an AND node. *)

val pi_index : t -> int -> int
(** Index (0-based, creation order) of a PI node. *)

val eval : t -> bool array -> lit -> bool
(** Evaluate a literal under an assignment to the PIs. *)

(** Binding between a sequential netlist and its combinational AIG: flop Q
    pins become pseudo-PIs, flop D pins pseudo-POs. *)
type root = Po of int (** output node id *) | Flop_d of int (** flop node id *)

type bound = {
  aig : t;
  source : Netlist.t;
  pi_sources : int array;  (** netlist node id per AIG PI (inputs then flops) *)
  roots : (root * lit) list;
  node_lits : int array;
      (** per netlist node, the AIG literal computing it — the witness the
          redundancy analysis groups by: two nodes with the same literal
          strash to the same function.  [-1] for [Output] nodes (they
          carry no logic; see [roots]). *)
}

val of_netlist : Netlist.t -> bound
(** Build the AIG of the combinational portion; strash and constant folding
    run during construction. *)
