module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun

type lit = int

type t = {
  mutable fanin0 : int array; (* per node; PIs and const use -1 *)
  mutable fanin1 : int array;
  mutable pi_idx : int array; (* PI index or -1 *)
  mutable n : int;
  mutable npis : int;
  strash : (int * int, int) Hashtbl.t;
}

let const0 : lit = 0
let const1 : lit = 1

let create () =
  {
    fanin0 = Array.make 256 (-1);
    fanin1 = Array.make 256 (-1);
    pi_idx = Array.make 256 (-1);
    n = 1 (* node 0 = const false *);
    npis = 0;
    strash = Hashtbl.create 1024;
  }

let grow t =
  if t.n >= Array.length t.fanin0 then begin
    let len = 2 * Array.length t.fanin0 in
    let f0 = Array.make len (-1) and f1 = Array.make len (-1)
    and pi = Array.make len (-1) in
    Array.blit t.fanin0 0 f0 0 t.n;
    Array.blit t.fanin1 0 f1 0 t.n;
    Array.blit t.pi_idx 0 pi 0 t.n;
    t.fanin0 <- f0;
    t.fanin1 <- f1;
    t.pi_idx <- pi
  end

let add_pi t =
  grow t;
  let id = t.n in
  t.pi_idx.(id) <- t.npis;
  t.npis <- t.npis + 1;
  t.n <- t.n + 1;
  2 * id

let not_ l = l lxor 1
let node_of l = l lsr 1
let is_complement l = l land 1 = 1
let is_pi t id = t.pi_idx.(id) >= 0
let is_const id = id = 0
let pi_index t id = t.pi_idx.(id)

let and_ t a b =
  let a, b = if a < b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a = not_ b then const0
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> 2 * id
    | None ->
        grow t;
        let id = t.n in
        t.fanin0.(id) <- a;
        t.fanin1.(id) <- b;
        t.n <- t.n + 1;
        Hashtbl.add t.strash (a, b) id;
        2 * id

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let xor_ t a b = or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)
let mux_ t ~sel d0 d1 = or_ t (and_ t sel d1) (and_ t (not_ sel) d0)

let rec add_fn t fn args =
  if Array.length args <> Bfun.arity fn then
    invalid_arg "Aig.add_fn: argument count mismatch";
  if Bfun.is_const fn then (if Bfun.eval fn 0 then const1 else const0)
  else
    match Bfun.arity fn with
    | 1 -> if Bfun.table fn = 0b10 then args.(0) else not_ args.(0)
    | _ ->
        (* Split on the last variable that matters. *)
        let v = List.fold_left max 0 (Bfun.support fn) in
        let lo, hi = Bfun.cofactor_pair fn ~var:v in
        let sub = Array.init (Array.length args - 1) (fun i ->
            if i < v then args.(i) else args.(i + 1)) in
        let l = add_fn t lo sub and h = add_fn t hi sub in
        mux_ t ~sel:args.(v) l h

let size t = t.n
let num_pis t = t.npis
let and_count t = t.n - 1 - t.npis

let fanins t id =
  if t.fanin0.(id) < 0 then invalid_arg "Aig.fanins: not an AND node";
  (t.fanin0.(id), t.fanin1.(id))

let eval t pi_values l =
  let values = Array.make t.n false in
  for id = 1 to t.n - 1 do
    if is_pi t id then values.(id) <- pi_values.(t.pi_idx.(id))
    else begin
      let f0 = t.fanin0.(id) and f1 = t.fanin1.(id) in
      let v0 = values.(node_of f0) <> is_complement f0 in
      let v1 = values.(node_of f1) <> is_complement f1 in
      values.(id) <- v0 && v1
    end
  done;
  values.(node_of l) <> is_complement l

type root = Po of int | Flop_d of int

type bound = {
  aig : t;
  source : Netlist.t;
  pi_sources : int array;
  roots : (root * lit) list;
  node_lits : int array;
}

let of_netlist nl =
  let t = create () in
  let n = Netlist.size nl in
  let lit_of = Array.make n (-1) in
  let pi_srcs = ref [] in
  (* PIs, then flop Qs, become AIG PIs. *)
  List.iter
    (fun i ->
      lit_of.(i) <- add_pi t;
      pi_srcs := i :: !pi_srcs)
    (Netlist.inputs nl);
  List.iter
    (fun i ->
      lit_of.(i) <- add_pi t;
      pi_srcs := i :: !pi_srcs)
    (Netlist.flops nl);
  (* Combinational gates in id order (topological for comb edges). *)
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    match node.Netlist.kind with
    | Kind.Input | Kind.Dff | Kind.Output -> ()
    | Kind.Const b -> lit_of.(i) <- (if b then const1 else const0)
    | k ->
        let args = Array.map (fun f -> lit_of.(f)) node.Netlist.fanins in
        if Array.exists (fun l -> l < 0) args then
          invalid_arg "Aig.of_netlist: fanin not yet converted";
        lit_of.(i) <- add_fn t (Kind.fn k) args
  done;
  let roots =
    List.map
      (fun o -> (Po o, lit_of.((Netlist.node nl o).Netlist.fanins.(0))))
      (Netlist.outputs nl)
    @ List.map
        (fun f -> (Flop_d f, lit_of.((Netlist.node nl f).Netlist.fanins.(0))))
        (Netlist.flops nl)
  in
  {
    aig = t;
    source = nl;
    pi_sources = Array.of_list (List.rev !pi_srcs);
    roots;
    node_lits = lit_of;
  }
