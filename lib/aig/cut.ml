module Bfun = Vpga_logic.Bfun

type t = { leaves : int array; tt : Bfun.t }

let trivial id = { leaves = [| id |]; tt = Bfun.var ~arity:1 0 }

let leaf_count c = Array.length c.leaves

(* Re-express [tt] (over [leaves]) over the superset [union]. *)
let expand tt leaves union =
  let m = Array.length union in
  let pos =
    Array.map
      (fun leaf ->
        let rec find i = if union.(i) = leaf then i else find (i + 1) in
        find 0)
      leaves
  in
  let out = ref 0 in
  for minterm = 0 to (1 lsl m) - 1 do
    let sub = ref 0 in
    Array.iteri
      (fun i p -> if (minterm lsr p) land 1 = 1 then sub := !sub lor (1 lsl i))
      pos;
    if Bfun.eval tt !sub then out := !out lor (1 lsl minterm)
  done;
  Bfun.make ~arity:m !out

let merge_leaves ~k a b =
  let out = Array.make k 0 in
  let rec go i j n =
    if n > k then None
    else if i >= Array.length a && j >= Array.length b then
      Some (Array.sub out 0 n)
    else if
      j >= Array.length b || (i < Array.length a && a.(i) < b.(j))
    then begin
      if n = k then None
      else begin
        out.(n) <- a.(i);
        go (i + 1) j (n + 1)
      end
    end
    else if i >= Array.length a || b.(j) < a.(i) then begin
      if n = k then None
      else begin
        out.(n) <- b.(j);
        go i (j + 1) (n + 1)
      end
    end
    else begin
      (* equal *)
      if n = k then None
      else begin
        out.(n) <- a.(i);
        go (i + 1) (j + 1) (n + 1)
      end
    end
  in
  go 0 0 0

let merge ~k c0 pol0 c1 pol1 =
  match merge_leaves ~k c0.leaves c1.leaves with
  | None -> None
  | Some union ->
      let t0 = expand c0.tt c0.leaves union in
      let t1 = expand c1.tt c1.leaves union in
      let t0 = if pol0 then Bfun.lnot t0 else t0 in
      let t1 = if pol1 then Bfun.lnot t1 else t1 in
      Some { leaves = union; tt = Bfun.(t0 &&& t1) }

let same_leaves a b =
  Array.length a.leaves = Array.length b.leaves
  && (let rec eq i =
        i >= Array.length a.leaves
        || (a.leaves.(i) = b.leaves.(i) && eq (i + 1))
      in
      eq 0)

let enumerate aig ~k ~max_cuts =
  let n = Aig.size aig in
  let cuts = Array.make n [] in
  cuts.(0) <- [ trivial 0 ];
  for id = 1 to n - 1 do
    if Aig.is_pi aig id then cuts.(id) <- [ trivial id ]
    else begin
      let l0, l1 = Aig.fanins aig id in
      let c0s = cuts.(Aig.node_of l0) and c1s = cuts.(Aig.node_of l1) in
      let acc = ref [] in
      List.iter
        (fun c0 ->
          List.iter
            (fun c1 ->
              match
                merge ~k c0 (Aig.is_complement l0) c1 (Aig.is_complement l1)
              with
              | None -> ()
              | Some c -> if not (List.exists (same_leaves c) !acc) then acc := c :: !acc)
            c1s)
        c0s;
      (* Larger cuts first: they swallow more logic per supernode, which is
         what the area-oriented cover wants; the fanin pair cut and the
         trivial cut keep the small end covered. *)
      let sorted =
        List.stable_sort (fun a b -> Int.compare (leaf_count b) (leaf_count a)) !acc
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      cuts.(id) <- trivial id :: take max_cuts sorted
    end
  done;
  (* Ambient-trace counters (no-op when tracing is off). *)
  Vpga_obs.Trace.emit "cuts.nodes" (float_of_int n);
  Vpga_obs.Trace.emit "cuts.enumerated"
    (float_of_int (Array.fold_left (fun acc l -> acc + List.length l) 0 cuts));
  cuts
