let nand2_equivalents = function
  | Kind.Input | Kind.Output | Kind.Const _ -> 0.0
  | Kind.Buf -> 0.5
  | Kind.Inv -> 0.5
  | Kind.Nand2 | Kind.Nor2 -> 1.0
  | Kind.And2 | Kind.Or2 -> 1.5
  | Kind.Xor2 | Kind.Xnor2 -> 2.5
  | Kind.Mux2 -> 2.5
  | Kind.Nand3 | Kind.Nor3 -> 1.5
  | Kind.And3 | Kind.Or3 -> 2.0
  | Kind.Xor3 -> 5.0
  | Kind.Maj3 -> 3.0
  | Kind.Dff -> 4.0
  | Kind.Mapped { cell; _ } -> (
      (* Component cells of the PLB libraries. *)
      match cell with
      | "lut3" -> 6.0
      | "mux2" | "xoa" -> 2.5
      | "nd2wi" -> 1.0
      | "nd3wi" -> 1.5
      | "inv" | "buf" -> 0.5
      | "dff" -> 4.0
      | _ -> 1.0)

let gate_count nl =
  Array.fold_left
    (fun acc n -> acc +. nand2_equivalents n.Netlist.kind)
    0.0 (Netlist.nodes nl)

let flop_count nl = List.length (Netlist.flops nl)

let combinational_count nl =
  Array.fold_left
    (fun acc n ->
      match n.Netlist.kind with
      | Kind.Input | Kind.Output | Kind.Dff | Kind.Const _ -> acc
      | _ -> acc + 1)
    0 (Netlist.nodes nl)

let flop_ratio nl =
  let f = float_of_int (flop_count nl) in
  let c = float_of_int (combinational_count nl) in
  if f +. c = 0.0 then 0.0 else f /. (f +. c)

let histogram nl =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      let k = Kind.name n.Netlist.kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (Netlist.nodes nl);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
