type node = { id : int; kind : Kind.t; fanins : int array; name : string option }

type t = {
  dname : string;
  mutable arr : node option array;
  mutable count : int;
  mutable input_ids : int list; (* reversed *)
  mutable output_ids : int list; (* reversed *)
  mutable flop_ids : int list; (* reversed *)
}

let create ?(name = "design") () =
  { dname = name; arr = Array.make 64 None; count = 0;
    input_ids = []; output_ids = []; flop_ids = [] }

let design_name t = t.dname

let size t = t.count

let ensure t =
  if t.count >= Array.length t.arr then begin
    let arr = Array.make (2 * Array.length t.arr) None in
    Array.blit t.arr 0 arr 0 t.count;
    t.arr <- arr
  end

let push t node =
  ensure t;
  t.arr.(t.count) <- Some node;
  t.count <- t.count + 1;
  node.id

let node t i =
  if i < 0 || i >= t.count then invalid_arg "Netlist.node: id out of range";
  match t.arr.(i) with
  | Some n -> n
  | None -> assert false

let nodes t = Array.init t.count (fun i -> node t i)

let input t name =
  let id = push t { id = t.count; kind = Input; fanins = [||]; name = Some name } in
  t.input_ids <- id :: t.input_ids;
  id

let check_fanins t fanins ~seq =
  Array.iter
    (fun f ->
      if f < 0 || (f >= t.count && not seq) then
        invalid_arg "Netlist.gate: fanin id out of range")
    fanins

let gate ?name t kind fanins =
  (match kind with
  | Kind.Input -> invalid_arg "Netlist.gate: use Netlist.input"
  | Kind.Output -> invalid_arg "Netlist.gate: use Netlist.output"
  | _ -> ());
  if Array.length fanins <> Kind.arity kind then
    invalid_arg
      (Printf.sprintf "Netlist.gate: %s expects %d fanins, got %d"
         (Kind.name kind) (Kind.arity kind) (Array.length fanins));
  let seq = Kind.is_sequential kind in
  check_fanins t fanins ~seq;
  let id = push t { id = t.count; kind; fanins = Array.copy fanins; name } in
  if seq then t.flop_ids <- id :: t.flop_ids;
  id

let dff ?name t =
  let id = push t { id = t.count; kind = Kind.Dff; fanins = [| -1 |]; name } in
  t.flop_ids <- id :: t.flop_ids;
  id

let connect t ~flop ~d =
  let n = node t flop in
  if not (Kind.is_sequential n.kind) then
    invalid_arg "Netlist.connect: not a flop";
  if d < 0 || d >= t.count then invalid_arg "Netlist.connect: bad driver";
  n.fanins.(0) <- d

let output t name src =
  if src < 0 || src >= t.count then invalid_arg "Netlist.output: bad source";
  let id =
    push t { id = t.count; kind = Output; fanins = [| src |]; name = Some name }
  in
  t.output_ids <- id :: t.output_ids;
  id

let inputs t = List.rev t.input_ids
let outputs t = List.rev t.output_ids
let flops t = List.rev t.flop_ids

let fanout t =
  let deg = Array.make t.count 0 in
  for i = 0 to t.count - 1 do
    Array.iter (fun f -> if f >= 0 then deg.(f) <- deg.(f) + 1) (node t i).fanins
  done;
  let out = Array.init t.count (fun i -> Array.make deg.(i) (-1)) in
  let fill = Array.make t.count 0 in
  for i = 0 to t.count - 1 do
    Array.iter
      (fun f ->
        if f >= 0 then begin
          out.(f).(fill.(f)) <- i;
          fill.(f) <- fill.(f) + 1
        end)
      (node t i).fanins
  done;
  out

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  for i = 0 to t.count - 1 do
    let n = node t i in
    if Array.length n.fanins <> Kind.arity n.kind && n.kind <> Kind.Output then
      err "node %d (%s): arity mismatch" i (Kind.name n.kind);
    Array.iter
      (fun f ->
        if f < 0 || f >= t.count then
          err "node %d (%s): dangling fanin %d" i (Kind.name n.kind) f)
      n.fanins
  done;
  if t.output_ids = [] then err "netlist has no primary outputs";
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let map_combinational ?name t f =
  let dst = create ?name:(Some (Option.value ~default:t.dname name)) () in
  let map = Array.make t.count (-1) in
  (* Inputs first, preserving order. *)
  List.iter
    (fun i ->
      let n = node t i in
      map.(i) <- input dst (Option.value ~default:(Printf.sprintf "pi%d" i) n.name))
    (inputs t);
  (* Flops next, unconnected, so combinational feedback paths resolve. *)
  List.iter (fun i -> map.(i) <- dff ?name:(node t i).name dst) (flops t);
  (* Combinational nodes in id order (ids are topological for comb edges). *)
  for i = 0 to t.count - 1 do
    let n = node t i in
    match n.kind with
    | Kind.Input | Kind.Dff | Kind.Output -> ()
    | _ ->
        let fi = Array.map (fun j -> map.(j)) n.fanins in
        if Array.exists (fun j -> j < 0) fi then
          invalid_arg "Netlist.map_combinational: fanin not yet translated";
        map.(i) <- f dst n fi
  done;
  (* Reconnect flop D pins and emit outputs. *)
  List.iter
    (fun i ->
      let d = (node t i).fanins.(0) in
      if d < 0 then invalid_arg "Netlist.map_combinational: unconnected flop";
      connect dst ~flop:map.(i) ~d:map.(d))
    (flops t);
  List.iter
    (fun o ->
      let n = node t o in
      ignore
        (output dst
           (Option.value ~default:(Printf.sprintf "po%d" o) n.name)
           map.(n.fanins.(0))))
    (outputs t);
  dst

let pp_stats ppf t =
  let kinds = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      let k = Kind.name n.kind in
      Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
    (nodes t);
  Format.fprintf ppf "%s: %d nodes (%d PI, %d PO, %d FF)@." t.dname t.count
    (List.length (inputs t)) (List.length (outputs t)) (List.length (flops t));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
  |> List.iter (fun (k, v) -> Format.fprintf ppf "  %-8s %6d@." k v)
