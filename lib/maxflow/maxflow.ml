(* Dinic's algorithm with adjacency stored as a flat edge list; edge i and
   its residual partner are (i lxor 1).  Per-node adjacency is an intrusive
   linked list over edge ids ([head]/[edges_next]), so building and solving
   a network allocates nothing beyond the (geometrically grown) backing
   arrays.

   The structure is an arena: [reset] rewinds it to an empty network of a
   new size without releasing those arrays, so a caller that solves many
   small networks in a loop (FlowMap labeling solves one per AND node)
   reuses the same storage instead of allocating per decision. *)

type t = {
  mutable n : int;
  mutable edges_dst : int array;
  mutable edges_cap : int array;
  mutable edges_next : int array; (* next edge out of the same node, -1 ends *)
  mutable edge_count : int;
  mutable head : int array; (* first edge per node, -1 when none *)
  mutable solved : bool;
  mutable level : int array;
  mutable iter : int array; (* per-node current edge during a DFS phase *)
  mutable queue : int array; (* BFS scratch *)
}

let infinity = max_int

let create n =
  let cap = max 1 n in
  {
    n;
    edges_dst = Array.make 16 0;
    edges_cap = Array.make 16 0;
    edges_next = Array.make 16 (-1);
    edge_count = 0;
    head = Array.make cap (-1);
    solved = false;
    level = Array.make cap (-1);
    iter = Array.make cap (-1);
    queue = Array.make cap 0;
  }

let reset t n =
  if n < 0 then invalid_arg "Maxflow.reset: negative node count";
  if n > Array.length t.head then begin
    let len = max n (2 * Array.length t.head) in
    t.head <- Array.make len (-1);
    t.level <- Array.make len (-1);
    t.iter <- Array.make len (-1);
    t.queue <- Array.make len 0
  end
  else Array.fill t.head 0 t.n (-1);
  t.n <- n;
  t.edge_count <- 0;
  t.solved <- false

let grow t =
  if t.edge_count + 2 > Array.length t.edges_dst then begin
    let len = 2 * Array.length t.edges_dst in
    let dst = Array.make len 0
    and cap = Array.make len 0
    and nxt = Array.make len (-1) in
    Array.blit t.edges_dst 0 dst 0 t.edge_count;
    Array.blit t.edges_cap 0 cap 0 t.edge_count;
    Array.blit t.edges_next 0 nxt 0 t.edge_count;
    t.edges_dst <- dst;
    t.edges_cap <- cap;
    t.edges_next <- nxt
  end

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if t.solved then invalid_arg "Maxflow.add_edge: already solved";
  grow t;
  let e = t.edge_count in
  t.edges_dst.(e) <- dst;
  t.edges_cap.(e) <- cap;
  t.edges_next.(e) <- t.head.(src);
  t.head.(src) <- e;
  t.edges_dst.(e + 1) <- src;
  t.edges_cap.(e + 1) <- 0;
  t.edges_next.(e + 1) <- t.head.(dst);
  t.head.(dst) <- e + 1;
  t.edge_count <- t.edge_count + 2

let bfs t ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  let q = t.queue in
  let qh = ref 0 and qt = ref 0 in
  t.level.(source) <- 0;
  q.(!qt) <- source;
  incr qt;
  while !qh < !qt do
    let u = q.(!qh) in
    incr qh;
    let e = ref t.head.(u) in
    while !e >= 0 do
      let v = t.edges_dst.(!e) in
      if t.edges_cap.(!e) > 0 && t.level.(v) < 0 then begin
        t.level.(v) <- t.level.(u) + 1;
        q.(!qt) <- v;
        incr qt
      end;
      e := t.edges_next.(!e)
    done
  done;
  t.level.(sink) >= 0

let rec dfs t u ~sink pushed =
  if u = sink then pushed
  else begin
    let res = ref 0 in
    while !res = 0 && t.iter.(u) >= 0 do
      let e = t.iter.(u) in
      let v = t.edges_dst.(e) in
      if t.edges_cap.(e) > 0 && t.level.(v) = t.level.(u) + 1 then begin
        let d = dfs t v ~sink (min pushed t.edges_cap.(e)) in
        if d > 0 then begin
          if t.edges_cap.(e) <> infinity then
            t.edges_cap.(e) <- t.edges_cap.(e) - d;
          if t.edges_cap.(e lxor 1) <> infinity then
            t.edges_cap.(e lxor 1) <- t.edges_cap.(e lxor 1) + d;
          res := d
        end
        else t.iter.(u) <- t.edges_next.(e)
      end
      else t.iter.(u) <- t.edges_next.(e)
    done;
    !res
  end

let max_flow ?(limit = max_int) t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  t.solved <- true;
  let flow = ref 0 in
  while !flow <> infinity && !flow <= limit && bfs t ~source ~sink do
    Array.blit t.head 0 t.iter 0 t.n;
    let rec pump () =
      if !flow <> infinity && !flow <= limit then begin
        let f = dfs t source ~sink infinity in
        if f = infinity then flow := infinity
        else if f > 0 then begin
          flow := !flow + f;
          pump ()
        end
      end
    in
    pump ()
  done;
  if !flow = infinity then infinity else !flow

let min_cut_side t ~source =
  let side = Array.make t.n false in
  let q = t.queue in
  let qh = ref 0 and qt = ref 0 in
  side.(source) <- true;
  q.(!qt) <- source;
  incr qt;
  while !qh < !qt do
    let u = q.(!qh) in
    incr qh;
    let e = ref t.head.(u) in
    while !e >= 0 do
      let v = t.edges_dst.(!e) in
      if t.edges_cap.(!e) > 0 && not side.(v) then begin
        side.(v) <- true;
        q.(!qt) <- v;
        incr qt
      end;
      e := t.edges_next.(!e)
    done
  done;
  side
