(** Dinic max-flow / min-cut on small directed graphs.

    This is the kernel of the FlowMap-style clustering used by the paper's
    logic-compaction step: node-split unit-capacity networks whose min cut
    answers "is there a k-feasible cut?".

    A [t] is an arena: {!reset} rewinds it to an empty network of a new
    size while keeping the backing arrays, so callers that solve one small
    network per graph node (exact FlowMap labeling) pay no per-decision
    allocation. *)

type t

val create : int -> t
(** [create n] makes an empty flow network with nodes [0 .. n-1]. *)

val reset : t -> int -> unit
(** [reset t n] empties [t] and gives it nodes [0 .. n-1], reusing the
    existing storage.  Any previous solution is discarded; edges may be
    added again. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge (a reverse residual edge of capacity 0 is added
    automatically).  [cap] may be [max_int] for infinity. *)

val max_flow : ?limit:int -> t -> source:int -> sink:int -> int
(** Computes the max flow; saturates at [max_int] if the sink is reachable
    through infinite-capacity paths only.  May be called once per network
    (use {!reset} to solve another).  When [limit] is given the search
    stops as soon as the flow exceeds it: the result is exact if it is
    [<= limit] and otherwise only guaranteed to be [> limit] — the right
    tool for feasibility questions of the form "is the min cut at most
    k?". *)

val min_cut_side : t -> source:int -> bool array
(** After {!max_flow}: nodes reachable from the source in the residual graph
    (the source side of a minimum cut). *)

val infinity : int
