module Vector = Arch.Vector

let pure_flop (it : Packer.item) =
  it.Packer.flop && it.Packer.config = Config.Invb

(* Dense index for the config-multiset signature. *)
let config_index = function
  | Config.Invb -> 0
  | Config.Mx -> 1
  | Config.Nd2 -> 2
  | Config.Nd3 -> 3
  | Config.Ndmx -> 4
  | Config.Xoamx -> 5
  | Config.Xoandmx -> 6
  | Config.Mux3 -> 7
  | Config.Lut -> 8
  | Config.Carry -> 9

(* A tile holds at most [output_pins] items (<= 5 on every architecture), so
   4 bits per config count can never saturate. *)
let sig_bit c = 1 lsl (4 * config_index c)

type cache = {
  arch : Arch.t;
  memo : (int, bool) Hashtbl.t;
  comb_cap : int;
  demands : Vector.t list array;
      (* [Config.demand] rebuilds its vectors on every call; resolved here
         once per config so the hot path never re-allocates them *)
  min_slots : int array;
  mutable fits_calls : int;
  mutable cache_hits : int;
  mutable writer : int;
      (* region id this cache's walk mutates for, or -1: sanitizer off *)
  mutable guard_checks : int;
}

exception Race of { owner : int; writer : int }

let create_cache arch =
  let demands =
    Array.make (List.length Config.all) []
  in
  List.iter
    (fun c -> demands.(config_index c) <- Config.demand arch c)
    Config.all;
  let min_slots =
    Array.map
      (fun alts ->
        List.fold_left (fun acc d -> min acc (Vector.total d)) max_int alts)
      demands
  in
  {
    arch;
    memo = Hashtbl.create 256;
    comb_cap =
      Vector.total arch.Arch.capacity
      - Vector.get arch.Arch.capacity Arch.Ff;
    demands;
    min_slots;
    fits_calls = 0;
    cache_hits = 0;
    writer = -1;
    guard_checks = 0;
  }

let cache_arch c = c.arch
let fits_calls c = c.fits_calls
let cache_hits c = c.cache_hits
let set_writer c r = c.writer <- r
let writer c = c.writer
let guard_checks c = c.guard_checks

type slot = { s_item : Packer.item; s_alt : Vector.t }

type t = {
  cache : cache;
  mutable used : Vector.t;
  mutable pins : int;
  mutable outputs : int;
  mutable flops : int;
  mutable min_slots : int;
  mutable slots : slot list;
  mutable signature : int;
  mutable owner : int; (* region id owning this tile, or -1: unstamped *)
  mutable dead : bool; (* defective tile: admits nothing *)
}

let create cache =
  {
    cache;
    used = Vector.zero;
    pins = 0;
    outputs = 0;
    flops = 0;
    min_slots = 0;
    slots = [];
    signature = 0;
    owner = -1;
    dead = false;
  }

let arch t = t.cache.arch
let cache t = t.cache
let set_owner t r = t.owner <- r
let owner t = t.owner
let set_dead t b = t.dead <- b
let dead t = t.dead

(* Every mutation passes through here.  Armed (both stamps set), a
   mutation from a walk whose cache writes for region [writer] against a
   tile owned by another region is a cross-region write: the exact bug
   class the region decomposition must exclude.  Fail fast, loudly. *)
let guard t =
  let c = t.cache in
  if c.writer >= 0 && t.owner >= 0 then begin
    c.guard_checks <- c.guard_checks + 1;
    if t.owner <> c.writer then
      raise (Race { owner = t.owner; writer = c.writer })
  end
let count t = t.outputs
let is_empty t = t.slots = []
let items t = List.map (fun s -> s.s_item) t.slots

let min_slots_of (c : cache) (it : Packer.item) =
  if pure_flop it then 0 else c.min_slots.(config_index it.Packer.config)

(* The three counter checks of [Packer.fits], incrementally. *)
let counters_ok t (it : Packer.item) =
  let a = t.cache.arch in
  t.flops + (if it.Packer.flop then 1 else 0)
  <= Vector.get a.Arch.capacity Arch.Ff
  && t.outputs + 1 <= a.Arch.output_pins
  && t.pins + it.Packer.pins <= a.Arch.input_pins

(* Reference-complete backtracking over demand alternatives, returning the
   chosen alternative per item.  Same search as [Packer.fits], with the
   witness kept. *)
let solve c items =
  let cap = c.arch.Arch.capacity in
  let rec assign used acc = function
    | [] -> Some (List.rev acc)
    | it :: rest when pure_flop it -> assign used (Vector.zero :: acc) rest
    | it :: rest ->
        let rec try_alts = function
          | [] -> None
          | d :: ds -> (
              let used' = Vector.add used d in
              if Vector.fits used' ~cap then
                match assign used' (d :: acc) rest with
                | Some _ as r -> r
                | None -> try_alts ds
              else try_alts ds)
        in
        try_alts c.demands.(config_index it.Packer.config)
  in
  assign Vector.zero [] items

(* Reference-solver fallback, with its cost observed into the ambient
   trace's "occupancy.solve_us" histogram — the memoized backtracking
   misses are exactly the probes worth watching.  The clock is only read
   when a trace is installed, so untraced packing keeps the bare
   memo-miss path. *)
let timed_solve c items =
  let tr = Vpga_obs.Trace.ambient () in
  if Vpga_obs.Trace.enabled tr then begin
    let t0 = Vpga_obs.Clock.now_ns () in
    let r = solve c items in
    Vpga_obs.Trace.observe tr "occupancy.solve_us"
      (Vpga_obs.Clock.ns_to_us (Int64.sub (Vpga_obs.Clock.now_ns ()) t0));
    r
  end
  else solve c items

let fast_alt t (it : Packer.item) =
  let cap = t.cache.arch.Arch.capacity in
  let rec go = function
    | [] -> None
    | d :: ds ->
        if Vector.fits (Vector.add t.used d) ~cap then Some d else go ds
  in
  go t.cache.demands.(config_index it.Packer.config)

let query t it =
  let c = t.cache in
  c.fits_calls <- c.fits_calls + 1;
  if t.dead then false
  else if not (counters_ok t it) then false
  else if pure_flop it then true
  else if t.min_slots + min_slots_of c it > c.comb_cap then false
  else if fast_alt t it <> None then true
  else begin
    let key = t.signature + sig_bit it.Packer.config in
    match Hashtbl.find_opt c.memo key with
    | Some b ->
        c.cache_hits <- c.cache_hits + 1;
        b
    | None ->
        let b = timed_solve c (it :: items t) <> None in
        Hashtbl.add c.memo key b;
        b
  end

let item_equal (a : Packer.item) (b : Packer.item) =
  a.Packer.config = b.Packer.config
  && a.Packer.pins = b.Packer.pins
  && a.Packer.flop = b.Packer.flop

(* "Would [it] fit if resident [without] left?" — the refinement loop's
   swap probe, answered without mutating the tile.  Verdicts are exact
   functions of the resulting resident multiset (the same cascade as
   [query] over adjusted counters/vectors), so this equals
   [remove without; query it] followed by restoring [without]. *)
let query_replacing t ~without it =
  let c = t.cache in
  c.fits_calls <- c.fits_calls + 1;
  if t.dead then false
  else
  let a = c.arch in
  let flops = t.flops - (if without.Packer.flop then 1 else 0) in
  if
    flops + (if it.Packer.flop then 1 else 0)
    > Vector.get a.Arch.capacity Arch.Ff
    || t.outputs > a.Arch.output_pins (* -1 for the leaver, +1 for [it] *)
    || t.pins - without.Packer.pins + it.Packer.pins > a.Arch.input_pins
  then false
  else if pure_flop it then true
  else if
    t.min_slots - min_slots_of c without + min_slots_of c it > c.comb_cap
  then false
  else begin
    let leaver_alt =
      let rec find = function
        | [] -> invalid_arg "Occupancy.query_replacing: item not present"
        | s :: rest ->
            if item_equal s.s_item without then s.s_alt else find rest
      in
      find t.slots
    in
    let used = Vector.sub t.used leaver_alt in
    let cap = a.Arch.capacity in
    let rec probe = function
      | [] -> false
      | d :: ds -> Vector.fits (Vector.add used d) ~cap || probe ds
    in
    probe c.demands.(config_index it.Packer.config)
    ||
    let key =
      t.signature
      - (if pure_flop without then 0 else sig_bit without.Packer.config)
      + sig_bit it.Packer.config
    in
    match Hashtbl.find_opt c.memo key with
    | Some b ->
        c.cache_hits <- c.cache_hits + 1;
        b
    | None ->
        let rec drop_one acc = function
          | [] -> List.rev acc
          | s :: rest when item_equal s.s_item without ->
              List.rev_append acc (List.map (fun s -> s.s_item) rest)
          | s :: rest -> drop_one (s.s_item :: acc) rest
        in
        let b = timed_solve c (it :: drop_one [] t.slots) <> None in
        Hashtbl.add c.memo key b;
        b
  end

let bump t (it : Packer.item) =
  t.pins <- t.pins + it.Packer.pins;
  t.outputs <- t.outputs + 1;
  if it.Packer.flop then t.flops <- t.flops + 1;
  if not (pure_flop it) then begin
    t.min_slots <- t.min_slots + min_slots_of t.cache it;
    t.signature <- t.signature + sig_bit it.Packer.config
  end

let add t it =
  guard t;
  let c = t.cache in
  if t.dead then false
  else if not (counters_ok t it) then false
  else if pure_flop it then begin
    t.slots <- { s_item = it; s_alt = Vector.zero } :: t.slots;
    bump t it;
    true
  end
  else
    match fast_alt t it with
    | Some d ->
        t.used <- Vector.add t.used d;
        t.slots <- { s_item = it; s_alt = d } :: t.slots;
        bump t it;
        true
    | None -> (
        let key = t.signature + sig_bit it.Packer.config in
        if Hashtbl.find_opt c.memo key = Some false then false
        else
          let its = it :: items t in
          match solve c its with
          | None ->
              Hashtbl.replace c.memo key false;
              false
          | Some alts ->
              (* Commit the reassigned alternatives of every resident. *)
              let slots' =
                List.map2 (fun i d -> { s_item = i; s_alt = d }) its alts
              in
              t.slots <- slots';
              t.used <-
                List.fold_left
                  (fun u s -> Vector.add u s.s_alt)
                  Vector.zero slots';
              bump t it;
              Hashtbl.replace c.memo key true;
              true)

let remove t it =
  guard t;
  let rec go acc = function
    | [] -> invalid_arg "Occupancy.remove: item not present"
    | s :: rest when item_equal s.s_item it ->
        t.slots <- List.rev_append acc rest;
        t.used <- Vector.sub t.used s.s_alt;
        t.pins <- t.pins - it.Packer.pins;
        t.outputs <- t.outputs - 1;
        if it.Packer.flop then t.flops <- t.flops - 1;
        if not (pure_flop it) then begin
          t.min_slots <- t.min_slots - min_slots_of t.cache it;
          t.signature <- t.signature - sig_bit it.Packer.config
        end
    | s :: rest -> go (s :: acc) rest
  in
  go [] t.slots
