(** Mutable per-tile occupancy: the packer's hot-path replacement for
    recompute-from-scratch {!Packer.fits} queries.

    A tile tracks the committed resource vector (one demand alternative per
    resident item), the pin/output/flop counters, and a config-multiset
    signature.  A feasibility query then runs in three tiers:

    + the counter checks of {!Packer.fits}, O(1);
    + an O(alternatives) probe of the candidate's demand alternatives
      against the committed residual capacity (sound accept: the committed
      assignment plus the new alternative is a witness), after a sound
      reject on a slot-count lower bound;
    + full reference backtracking, memoized in a {!cache} keyed by the
      tile's config-multiset signature — repeated queries on identical
      contents hit the memo instead of re-running the search.

    Queries agree exactly with [Packer.fits arch (item :: items t)], which
    keeps legalization results bit-identical to the recompute-from-scratch
    packer (asserted by the randomized agreement test in [test_pack.ml]). *)

type cache
(** The fits memo plus query statistics, shared by every tile of one
    packing run.  Single-domain use only (one flow task = one domain). *)

val create_cache : Arch.t -> cache
val cache_arch : cache -> Arch.t

val fits_calls : cache -> int
(** Total {!query} calls served through this cache. *)

val cache_hits : cache -> int
(** Queries answered from the config-multiset memo (tier 3 hits). *)

type t
(** One tile's occupancy.  Mutable; not thread-safe. *)

val create : cache -> t
val arch : t -> Arch.t

val count : t -> int
(** Resident items. *)

val is_empty : t -> bool

val items : t -> Packer.item list
(** Newest-first; a multiset — order carries no meaning. *)

val query : t -> Packer.item -> bool
(** [query t it] iff [Packer.fits (arch t) (it :: items t)].  Read-only
    apart from cache statistics. *)

val query_replacing : t -> without:Packer.item -> Packer.item -> bool
(** [query_replacing t ~without it] iff [it] would fit once resident
    [without] left: the refinement loop's swap probe, equal to
    [remove t without; query t it] with [without] restored — but
    read-only, so a rejected swap never touches the tile.
    @raise Invalid_argument when [without] is not a resident. *)

val add : t -> Packer.item -> bool
(** Commit [it] if it fits (same predicate as {!query}); returns whether
    it was added.  May recommit residents to different demand
    alternatives when the backtracking tier finds the only witness. *)

val remove : t -> Packer.item -> unit
(** Remove one resident equal to [it] (config, pins, flop).  The
    remaining committed assignment stays valid, so a subsequent
    [add t it] is guaranteed to succeed (undo).
    @raise Invalid_argument when no such resident exists. *)
