(** Mutable per-tile occupancy: the packer's hot-path replacement for
    recompute-from-scratch {!Packer.fits} queries.

    A tile tracks the committed resource vector (one demand alternative per
    resident item), the pin/output/flop counters, and a config-multiset
    signature.  A feasibility query then runs in three tiers:

    + the counter checks of {!Packer.fits}, O(1);
    + an O(alternatives) probe of the candidate's demand alternatives
      against the committed residual capacity (sound accept: the committed
      assignment plus the new alternative is a witness), after a sound
      reject on a slot-count lower bound;
    + full reference backtracking, memoized in a {!cache} keyed by the
      tile's config-multiset signature — repeated queries on identical
      contents hit the memo instead of re-running the search.

    Queries agree exactly with [Packer.fits arch (item :: items t)], which
    keeps legalization results bit-identical to the recompute-from-scratch
    packer (asserted by the randomized agreement test in [test_pack.ml]). *)

type cache
(** The fits memo plus query statistics, shared by every tile of one
    packing run.  Single-domain use only (one flow task = one domain). *)

exception Race of { owner : int; writer : int }
(** A mutation crossed a region boundary while the ownership sanitizer
    was armed: a tile stamped [owner] was written through a cache
    stamped [writer <> owner].  In the region-parallel refinement this
    is a would-be data race, so it aborts immediately. *)

val create_cache : Arch.t -> cache
val cache_arch : cache -> Arch.t

val fits_calls : cache -> int
(** Total {!query} calls served through this cache. *)

val cache_hits : cache -> int
(** Queries answered from the config-multiset memo (tier 3 hits). *)

val set_writer : cache -> int -> unit
(** Arm the ownership sanitizer for mutations through this cache: they
    must target tiles owned by the given region.  [-1] (the default)
    disarms the guard. *)

val writer : cache -> int

val guard_checks : cache -> int
(** Mutations checked while the sanitizer was armed (both the cache's
    writer and the tile's owner stamped). *)

type t
(** One tile's occupancy.  Mutable; not thread-safe. *)

val create : cache -> t
val arch : t -> Arch.t

val cache : t -> cache
(** The shared cache this tile was created from. *)

val set_owner : t -> int -> unit
(** Stamp the region that owns this tile.  [-1] (the default) exempts
    the tile from the ownership guard. *)

val owner : t -> int

val set_dead : t -> bool -> unit
(** Mark the tile defective: {!query}, {!query_replacing} and {!add} all
    answer [false] (zero capacity — nothing is ever placed or spilled
    into it).  Defaults to [false], leaving the healthy semantics
    untouched. *)

val dead : t -> bool

val count : t -> int
(** Resident items. *)

val is_empty : t -> bool

val items : t -> Packer.item list
(** Newest-first; a multiset — order carries no meaning. *)

val query : t -> Packer.item -> bool
(** [query t it] iff [Packer.fits (arch t) (it :: items t)].  Read-only
    apart from cache statistics. *)

val query_replacing : t -> without:Packer.item -> Packer.item -> bool
(** [query_replacing t ~without it] iff [it] would fit once resident
    [without] left: the refinement loop's swap probe, equal to
    [remove t without; query t it] with [without] restored — but
    read-only, so a rejected swap never touches the tile.
    @raise Invalid_argument when [without] is not a resident. *)

val add : t -> Packer.item -> bool
(** Commit [it] if it fits (same predicate as {!query}); returns whether
    it was added.  May recommit residents to different demand
    alternatives when the backtracking tier finds the only witness.
    @raise Race when the armed ownership guard detects a cross-region
    write. *)

val remove : t -> Packer.item -> unit
(** Remove one resident equal to [it] (config, pins, flop).  The
    remaining committed assignment stays valid, so a subsequent
    [add t it] is guaranteed to succeed (undo).
    @raise Invalid_argument when no such resident exists.
    @raise Race when the armed ownership guard detects a cross-region
    write. *)
