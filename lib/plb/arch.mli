(** The two patternable-logic-block architectures compared by the paper.

    - {!lut_plb} is the Figure-1 block previously selected in [8]: one 3-LUT,
      two ND3WI gates, a D flip-flop and I/O buffers.
    - {!granular_plb} is the paper's Figure-4 proposal: three 2:1 MUXes (one
      of them the up-sized "XOA", which also serves as an ND2WI), one ND3WI,
      a D flip-flop and programmable buffers, with via-configurable local
      interconnect exposing intermediate outputs.

    Tile areas are calibrated to the paper's stated relations: the granular
    PLB is 20 % larger overall and has 26.6 % more combinational area. *)

type resource = Lut | Nd3 | Xoa | Mux | Ff | Bufr

val resource_name : resource -> string
val all_resources : resource list

(** A resource vector: demands and capacities over the six resource kinds. *)
module Vector : sig
  type t

  val zero : t
  val of_list : (resource * int) list -> t
  val get : t -> resource -> int
  val add : t -> t -> t

  val sub : t -> t -> t
  (** componentwise difference (may go negative; callers subtract only
      committed vectors they previously added) *)

  val fits : t -> cap:t -> bool
  (** componentwise [<=] *)

  val total : t -> int
  val pp : Format.formatter -> t -> unit
end

type t = {
  name : string;
  capacity : Vector.t;  (** resources per PLB tile *)
  library : Vpga_cells.Library.t;
  tile_area : float;  (** um^2, including local interconnect overhead *)
  comb_area : float;  (** combinational share of [tile_area] *)
  input_pins : int;  (** external signal pins per tile *)
  output_pins : int;
  via_sites : int;  (** potential configuration-via locations per tile *)
}

val lut_plb : t
val granular_plb : t

val granular_2ff : t
(** The paper's proposed remedy for flop-dominated designs ("a PLB with a
    greater ratio of Flip Flops to combinational logic elements"): the
    granular PLB with a second flip-flop.  Used by the domain-specific
    exploration experiment, not part of the paper's main comparison. *)

val all : t list
(** The two architectures of the paper's evaluation. *)

val flops_per_tile : t -> int
val pp : Format.formatter -> t -> unit
