type resource = Lut | Nd3 | Xoa | Mux | Ff | Bufr

let resource_name = function
  | Lut -> "lut3"
  | Nd3 -> "nd3wi"
  | Xoa -> "xoa"
  | Mux -> "mux2"
  | Ff -> "dff"
  | Bufr -> "buf"

let all_resources = [ Lut; Nd3; Xoa; Mux; Ff; Bufr ]

module Vector = struct
  type t = { lut : int; nd3 : int; xoa : int; mux : int; ff : int; bufr : int }

  let zero = { lut = 0; nd3 = 0; xoa = 0; mux = 0; ff = 0; bufr = 0 }

  let get v = function
    | Lut -> v.lut
    | Nd3 -> v.nd3
    | Xoa -> v.xoa
    | Mux -> v.mux
    | Ff -> v.ff
    | Bufr -> v.bufr

  let set v r n =
    match r with
    | Lut -> { v with lut = n }
    | Nd3 -> { v with nd3 = n }
    | Xoa -> { v with xoa = n }
    | Mux -> { v with mux = n }
    | Ff -> { v with ff = n }
    | Bufr -> { v with bufr = n }

  let of_list l =
    List.fold_left (fun v (r, n) -> set v r (get v r + n)) zero l

  let add a b =
    {
      lut = a.lut + b.lut;
      nd3 = a.nd3 + b.nd3;
      xoa = a.xoa + b.xoa;
      mux = a.mux + b.mux;
      ff = a.ff + b.ff;
      bufr = a.bufr + b.bufr;
    }

  let sub a b =
    {
      lut = a.lut - b.lut;
      nd3 = a.nd3 - b.nd3;
      xoa = a.xoa - b.xoa;
      mux = a.mux - b.mux;
      ff = a.ff - b.ff;
      bufr = a.bufr - b.bufr;
    }

  let fits v ~cap =
    v.lut <= cap.lut && v.nd3 <= cap.nd3 && v.xoa <= cap.xoa
    && v.mux <= cap.mux && v.ff <= cap.ff && v.bufr <= cap.bufr

  let total v = v.lut + v.nd3 + v.xoa + v.mux + v.ff + v.bufr

  let pp ppf v =
    let parts =
      List.filter_map
        (fun r ->
          let n = get v r in
          if n = 0 then None else Some (Printf.sprintf "%s:%d" (resource_name r) n))
        all_resources
    in
    Format.pp_print_string ppf
      (if parts = [] then "(empty)" else String.concat " " parts)
end

type t = {
  name : string;
  capacity : Vector.t;
  library : Vpga_cells.Library.t;
  tile_area : float;
  comb_area : float;
  input_pins : int;
  output_pins : int;
  via_sites : int;
}

(* Tile areas: component cells plus local-interconnect / polarity-buffer
   overhead, calibrated to the paper's relations (granular tile = 1.20x LUT
   tile; granular combinational area = 1.266x). *)
let lut_plb =
  {
    name = "lut_plb";
    capacity = Vector.of_list [ (Lut, 1); (Nd3, 2); (Ff, 1); (Bufr, 4) ];
    library = Vpga_cells.Library.lut_plb;
    tile_area = 300.0;
    comb_area = 200.0;
    input_pins = 9;
    output_pins = 3;
    via_sites = 64;
  }

let granular_plb =
  {
    name = "granular_plb";
    capacity = Vector.of_list [ (Xoa, 1); (Mux, 2); (Nd3, 1); (Ff, 1); (Bufr, 4) ];
    library = Vpga_cells.Library.granular_plb;
    tile_area = 360.0;
    comb_area = 253.2;
    input_pins = 12;
    output_pins = 4;
    via_sites = 104;
  }

(* The future-work variant: one more flip-flop (and its mux/buffer margin)
   per tile, costed at the characterized DFF area plus interconnect
   overhead. *)
let granular_2ff =
  {
    granular_plb with
    name = "granular_2ff";
    capacity =
      Vector.of_list
        [ (Xoa, 1); (Mux, 2); (Nd3, 1); (Ff, 2); (Bufr, 4) ];
    tile_area = 410.0;
    input_pins = 13;
    output_pins = 5;
    via_sites = 112;
  }

let all = [ lut_plb; granular_plb ]

let flops_per_tile t = Vector.get t.capacity Ff

let pp ppf t =
  Format.fprintf ppf "%s: [%a] tile=%.0fum2 comb=%.1fum2 pins=%d/%d vias=%d"
    t.name Vector.pp t.capacity t.tile_area t.comb_area t.input_pins
    t.output_pins t.via_sites
