(** Logic configurations of the PLB architectures (paper Section 2.3).

    The granular PLB implements 3-input functions with structures that are
    faster and denser than a 3-LUT:

    + MX — a single 2:1 MUX;
    + ND3 — a single ND3WI gate;
    + NDMX — a 2:1 MUX driven by a single ND2WI gate;
    + XOAMX — a 2:1 MUX driven by another 2:1 MUX;
    + XOANDMX — a 2:1 MUX driven by a 2:1 MUX and a ND3WI gate;

    plus ND2 (a lone 2-input NAND-type), INVB (buffer/inverter) and the MUX3
    fall-back (all three MUXes as a tree; needed for the two 3-input-XOR
    functions only).  The LUT-based PLB implements functions on its 3-LUT or
    its ND3WI gates. *)

type t = Invb | Mx | Nd2 | Nd3 | Ndmx | Xoamx | Xoandmx | Mux3 | Lut | Carry

(** [Carry] is the Section-2.2 full-adder carry: a single MUX whose select
    taps the propagate signal [P = a xor b] already produced by a sibling
    XOAMX supernode in the same tile (e.g. [maj(a,b,c) = mux(a xor b; a, c)]).
    It is only emitted by the compactor's full-adder extraction, never chosen
    standalone. *)

val name : t -> string
val all : t list

val feasible : t -> Vpga_logic.Bfun.t -> bool
(** Whether a 3-input function is implementable by the given configuration
    (structural enumeration over via-programmed pin sources).  [Mux3] and
    [Lut] are total; [Invb] accepts literals and constants. *)

val choose : Arch.t -> Vpga_logic.Bfun.t -> t
(** The configuration the mapper assigns to a 3-input function on the given
    architecture: the fastest feasible one. *)

val demand : Arch.t -> t -> Arch.Vector.t list
(** Resource-vector alternatives the configuration may occupy within one PLB
    (e.g. MX fits on either a plain MUX or the XOA). *)

val stage_cells : t -> Vpga_cells.Cell.t list
(** Cells along the configuration's critical path, first stage first. *)

val delay : t -> load:float -> float
(** Input-to-output delay (ps) driving [load] fF, internal stage loading
    included. *)

val input_cap : t -> float
(** Input pin capacitance presented by the first stage, fF. *)

val cell_area : t -> float
(** Sum of the component-cell areas the configuration occupies, um^2. *)

val via_count : t -> int
(** Configuration-via sites the configuration programs (sum over its
    component cells) — the VPGA's customization cost unit. *)

val tile_cost : Arch.t -> t -> float
(** Share of a PLB tile's combinational area the configuration consumes on
    the given architecture (cheapest resource alternative).  This is the
    cost the compaction cover minimizes: it reflects what packing actually
    pays, not free-standing cell area. *)

val carry_pair : Vpga_logic.Bfun.t -> (int * int) option
(** [Some (i, j)] when [f = mux(x_i xor x_j; x, y)] for plain-source data
    pins [x, y] — the condition under which a supernode may be emitted as
    [Carry] next to a sibling XOAMX over the same leaves. *)

val prewarm : unit -> unit
(** Force the module's shared (lazily built) feasibility sets.  Call once
    from the main domain before running flows on worker domains — OCaml 5
    lazies are not safe to force concurrently. *)

val cell_name : t -> string
(** Name used for configuration supernodes in mapped netlists
    ([Kind.Mapped] cells), e.g. ["cfg:ndmx"]. *)

val of_cell_name : string -> t option
(** Inverse of {!cell_name}; [None] for plain component-cell names. *)

val pp : Format.formatter -> t -> unit
