type item = { config : Config.t; pins : int; flop : bool }

let item ?(flop = false) config f =
  { config; pins = Vpga_logic.Bfun.support_size f; flop }

let fits arch items =
  let open Arch in
  let cap = arch.capacity in
  let n_flops = List.length (List.filter (fun i -> i.flop) items) in
  let n_outputs = List.length items in
  let total_pins = List.fold_left (fun acc i -> acc + i.pins) 0 items in
  n_flops <= Vector.get cap Ff
  && n_outputs <= arch.output_pins
  && total_pins <= arch.input_pins
  &&
  (* Backtracking over demand alternatives for each item.  A pure flop
     (registered pass-through: [flop = true] with config [Invb]) occupies
     only the tile's flip-flop, which the count above already covers. *)
  let pure_flop it = it.flop && it.config = Config.Invb in
  let rec assign used = function
    | [] -> true
    | it :: rest when pure_flop it -> assign used rest
    | it :: rest ->
        List.exists
          (fun d ->
            let used' = Vector.add used d in
            Vector.fits used' ~cap && assign used' rest)
          (Config.demand arch it.config)
  in
  assign Vector.zero items

(* First-fit-decreasing by resource weight. *)
let weight it =
  List.fold_left
    (fun acc d -> max acc (Arch.Vector.total d))
    0
    (Config.demand Arch.granular_plb it.config)

let pack arch items =
  let sorted =
    List.stable_sort (fun a b -> Int.compare (weight b) (weight a)) items
  in
  let rec insert it = function
    | [] -> [ [ it ] ]
    | tile :: rest ->
        if fits arch (it :: tile) then (it :: tile) :: rest
        else tile :: insert it rest
  in
  List.fold_left (fun tiles it -> insert it tiles) [] sorted

let tiles_needed arch items = List.length (pack arch items)
