module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize

type t = Invb | Mx | Nd2 | Nd3 | Ndmx | Xoamx | Xoandmx | Mux3 | Lut | Carry

let name = function
  | Invb -> "invb"
  | Mx -> "mx"
  | Nd2 -> "nd2"
  | Nd3 -> "nd3"
  | Ndmx -> "ndmx"
  | Xoamx -> "xoamx"
  | Xoandmx -> "xoandmx"
  | Mux3 -> "mux3"
  | Lut -> "lut"
  | Carry -> "carry"

let all = [ Invb; Mx; Nd2; Nd3; Ndmx; Xoamx; Xoandmx; Mux3; Lut; Carry ]

(* --- structural feasibility, by enumeration over via-programmed pins --- *)

(* All sets are over arity-3 truth tables (ints 0..255). *)
let table_set fs =
  let h = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace h (Bfun.table f) ()) fs;
  h

let sources =
  lazy
    (let vs = List.init 3 (fun i -> Bfun.var ~arity:3 i) in
     Bfun.const ~arity:3 false :: Bfun.const ~arity:3 true
     :: (vs @ List.map Bfun.lnot vs))

let all3 = lazy (Bfun.all ~arity:3)

(* ND2WI instances over two of the three inputs: nondegenerate AND-types with
   support <= 2 (degenerate cases are already pin sources). *)
let nd2_inners =
  lazy
    (List.filter
       (fun f -> Gates.nd3wi_feasible f && Bfun.support_size f <= 2)
       (Lazy.force all3))

let nd3_inners = lazy (List.filter Gates.nd3wi_feasible (Lazy.force all3))
let mux_inners = lazy (List.filter Gates.mux_feasible (Lazy.force all3))

let dedupe fs =
  let h = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let t = Bfun.table f in
      if Hashtbl.mem h t then false
      else begin
        Hashtbl.add h t ();
        true
      end)
    fs

(* Outer 2:1 MUX whose three pins each draw from [pins]: the set of
   via-routable signals in the configuration.  The programmable
   buffers/inverters make each inner output available in both polarities
   (the paper's 3-input XOR realization: "two 2:1 MUXes and an inverter"),
   so [pins] already contains complements. *)
let enumerate_outer h pins =
  List.iter
    (fun sel ->
      List.iter
        (fun d0 ->
          List.iter
            (fun d1 -> Hashtbl.replace h (Bfun.table (Bfun.mux ~sel d0 d1)) ())
            pins)
        pins)
    pins

(* One inner element driving the outer MUX. *)
let one_inner_set inners =
  let s = Lazy.force sources in
  let h = Hashtbl.create 256 in
  List.iter
    (fun g -> enumerate_outer h (g :: Bfun.lnot g :: s))
    (dedupe inners);
  h

let ndmx_set = lazy (one_inner_set (Lazy.force nd2_inners))
let xoamx_set = lazy (one_inner_set (Lazy.force mux_inners))

(* XOANDMX: the inner MUX and the ND3WI both feed the outer MUX. *)
let xoandmx_set =
  lazy
    (let s = Lazy.force sources in
     let ms = dedupe (Lazy.force mux_inners) in
     let ns = dedupe (Lazy.force nd3_inners) in
     let h = Hashtbl.create 256 in
     List.iter
       (fun g ->
         List.iter
           (fun k ->
             enumerate_outer h (g :: Bfun.lnot g :: k :: Bfun.lnot k :: s))
           ns)
       ms;
     h)

let mx_set = lazy (table_set (Lazy.force mux_inners))

(* Carry pattern: mux(xor(v_i, v_j); x, y) with x, y plain sources.  The
   select is the propagate signal shared with a sibling XOAMX. *)
let carry_pairs_of f =
  let s = Lazy.force sources in
  let pairs = [ (0, 1); (0, 2); (1, 2) ] in
  List.filter
    (fun (i, j) ->
      let p = Bfun.(var ~arity:3 i ^^^ var ~arity:3 j) in
      List.exists
        (fun x ->
          List.exists (fun y -> Bfun.equal f (Bfun.mux ~sel:p x y)) s)
        s)
    pairs

let carry_pair f =
  match carry_pairs_of f with [] -> None | p :: _ -> Some p

let check3 f =
  if Bfun.arity f <> 3 then invalid_arg "Config: function arity must be 3"

let feasible c f =
  check3 f;
  let mem set = Hashtbl.mem (Lazy.force set) (Bfun.table f) in
  match c with
  | Invb -> Bfun.is_const f || Bfun.is_literal f
  | Mx -> mem mx_set
  | Nd2 -> Gates.nd3wi_feasible f && Bfun.support_size f <= 2
  | Nd3 -> Gates.nd3wi_feasible f
  | Ndmx -> mem ndmx_set
  | Xoamx -> mem xoamx_set
  | Xoandmx -> mem xoandmx_set
  | Mux3 | Lut -> true
  | Carry -> carry_pairs_of f <> []

(* Preference order: single-stage before two-stage, cheaper resources first.
   On the LUT-based PLB everything that is not an ND3WI function burns the
   LUT (the drawback the paper's granular PLB removes). *)
let choose arch f =
  check3 f;
  let order =
    if arch.Arch.name = "lut_plb" then [ Invb; Nd2; Nd3; Lut ]
    else [ Invb; Nd2; Nd3; Mx; Ndmx; Xoamx; Xoandmx; Mux3 ]
  in
  match List.find_opt (fun c -> feasible c f) order with
  | Some c -> c
  | None -> assert false (* Lut and Mux3 are total *)

let demand arch c =
  let v = Arch.Vector.of_list in
  let lut_arch = arch.Arch.name = "lut_plb" in
  match c with
  | Invb -> [ v [ (Arch.Bufr, 1) ] ]
  | Lut -> [ v [ (Arch.Lut, 1) ] ]
  | Nd3 -> [ v [ (Arch.Nd3, 1) ] ]
  | Nd2 ->
      if lut_arch then [ v [ (Arch.Nd3, 1) ] ]
      else
        [ v [ (Arch.Nd3, 1) ]; v [ (Arch.Xoa, 1) ]; v [ (Arch.Mux, 1) ] ]
  | Mx -> [ v [ (Arch.Mux, 1) ]; v [ (Arch.Xoa, 1) ] ]
  | Ndmx ->
      [ v [ (Arch.Nd3, 1); (Arch.Mux, 1) ]; v [ (Arch.Xoa, 1); (Arch.Mux, 1) ] ]
  | Xoamx -> [ v [ (Arch.Xoa, 1); (Arch.Mux, 1) ] ]
  | Xoandmx -> [ v [ (Arch.Xoa, 1); (Arch.Nd3, 1); (Arch.Mux, 1) ] ]
  | Mux3 -> [ v [ (Arch.Xoa, 1); (Arch.Mux, 2) ] ]
  | Carry -> [ v [ (Arch.Mux, 1) ] ]

let stage_cells c =
  let f = Characterize.find in
  match c with
  | Invb -> [ f "buf" ]
  | Mx -> [ f "mux2" ]
  | Nd2 -> [ f "nd2wi" ]
  | Nd3 -> [ f "nd3wi" ]
  | Ndmx -> [ f "nd2wi"; f "mux2" ]
  | Xoamx -> [ f "xoa"; f "mux2" ]
  | Xoandmx -> [ f "xoa"; f "mux2" ]
  | Mux3 -> [ f "xoa"; f "mux2" ]
  | Lut -> [ f "lut3" ]
  | Carry -> [ f "xoa"; f "mux2" ] (* the shared P stage still bounds timing *)

let delay c ~load =
  let rec go = function
    | [] -> 0.0
    | [ last ] -> Cell.delay last ~load
    | stage :: (next :: _ as rest) ->
        Cell.delay stage ~load:next.Cell.input_cap +. go rest
  in
  go (stage_cells c)

let input_cap c =
  match stage_cells c with [] -> 0.0 | first :: _ -> first.Cell.input_cap

let cell_area c =
  let f n = (Characterize.find n).Cell.area in
  match c with
  | Invb -> f "buf"
  | Mx -> f "mux2"
  | Nd2 | Nd3 -> f "nd3wi"
  | Ndmx -> f "nd3wi" +. f "mux2"
  | Xoamx -> f "xoa" +. f "mux2"
  | Xoandmx -> f "xoa" +. f "nd3wi" +. f "mux2"
  | Mux3 -> f "xoa" +. (2.0 *. f "mux2")
  | Lut -> f "lut3"
  | Carry -> f "mux2" (* the XOA is attributed to the sibling XOAMX *)

(* Scarcity pricing of tile slots: the tile's combinational area is divided
   equally across the logic-resource *kinds* the architecture provides, then
   across each kind's slots.  A resource with a single slot per tile (the
   LUT, the XOA) is priced at a full kind-share, so covers that would
   oversubscribe the plentiful slots (e.g. re-decomposing muxes into NAND
   trees on the LUT-based PLB) pay their true packing cost. *)
let slot_area arch r =
  let is_comb = function
    | Arch.Lut | Arch.Nd3 | Arch.Xoa | Arch.Mux -> true
    | Arch.Ff | Arch.Bufr -> false
  in
  let kinds =
    List.length
      (List.filter
         (fun res -> is_comb res && Arch.Vector.get arch.Arch.capacity res > 0)
         Arch.all_resources)
  in
  let cap = Arch.Vector.get arch.Arch.capacity r in
  if (not (is_comb r)) || cap = 0 || kinds = 0 then 0.0
  else arch.Arch.comb_area /. (float_of_int kinds *. float_of_int cap)

let tile_cost arch c =
  let buffer_share = 6.0 in
  let of_vector v =
    List.fold_left
      (fun acc r ->
        acc
        +.
        match r with
        | Arch.Bufr -> float_of_int (Arch.Vector.get v r) *. buffer_share
        | Arch.Lut | Arch.Nd3 | Arch.Xoa | Arch.Mux | Arch.Ff ->
            float_of_int (Arch.Vector.get v r) *. slot_area arch r)
      0.0 Arch.all_resources
  in
  match demand arch c with
  | [] -> 0.0
  | alts -> List.fold_left (fun acc v -> min acc (of_vector v)) infinity alts

let via_count c =
  let v n = (Characterize.find n).Cell.via_sites in
  match c with
  | Invb -> v "buf"
  | Mx -> v "mux2"
  | Nd2 | Nd3 -> v "nd3wi"
  | Ndmx -> v "nd3wi" + v "mux2"
  | Xoamx -> v "xoa" + v "mux2"
  | Xoandmx -> v "xoa" + v "nd3wi" + v "mux2"
  | Mux3 -> v "xoa" + (2 * v "mux2")
  | Lut -> v "lut3"
  | Carry -> v "mux2"

let prewarm () =
  (* Force every shared lazy feasibility set (and, transitively,
     Gates.mux_tables) from one domain.  Worker domains must never race
     to force them: concurrent Lazy.force is unsafe in OCaml 5. *)
  let probe = Bfun.var ~arity:3 0 in
  List.iter (fun c -> ignore (feasible c probe)) all

let cell_name c = "cfg:" ^ name c

let of_cell_name s =
  match String.index_opt s ':' with
  | Some 3 when String.length s > 4 && String.sub s 0 3 = "cfg" ->
      let suffix = String.sub s 4 (String.length s - 4) in
      List.find_opt (fun c -> name c = suffix) all
  | Some _ | None -> None

let pp ppf c = Format.pp_print_string ppf (name c)
