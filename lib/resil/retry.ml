(* The generic fatal-ladder driver: run attempts until one succeeds or
   the policy's cap is hit, recording a Retry event before each rerun
   and raising a typed Stage_failure on exhaustion.  Stages whose
   exhaustion is survivable (route overflow, anneal divergence) drive
   their own loops in lib/flow and only share [reseed]. *)

module Diag = Vpga_verify.Diag

let run ~log ~(policy : Policy.t) ~stage ~design f =
  let rec go attempt =
    match f attempt with
    | Ok v -> v
    | Error reason ->
        let next = attempt + 1 in
        if next >= policy.Policy.max_attempts then
          Fail.raise_
            (Fail.make ~stage ~design ~attempts:next
               ~diags:[ Diag.error "retries-exhausted" "%s" reason ]
               ~events:(Log.strings log) ())
        else begin
          Log.record log (Log.Retry { stage; attempt = next; reason });
          go next
        end
  in
  go 0

(* Attempt [0] must reproduce the un-retried flow exactly, so the
   derived seed is the base seed itself; later attempts step by a prime
   far from the small per-stage seed offsets the flow already uses. *)
let reseed ~seed ~attempt = (seed + (7919 * attempt)) land 0x3FFFFFFF
