(* Seeded fault injection for every intermediate flow artifact.  Each
   corruptor deterministically picks a victim from the artifact, mutates
   it in place (or returns a corrupted copy for immutable artifacts) and
   hands back an undo closure, so a test can assert that vpga_verify
   catches the fault — or that a retry policy heals it — and then
   restore the artifact for the next injection.

   Targets mirror the flow's artifact chain:
   - [netlist_flip]: rewire one live gate fanin (the netlist-level
     analogue of flipping an AIG edge) — the lint / randomized-equiv /
     CEC gates must notice;
   - [placement_unplace] / [placement_offdie]: break placement legality
     — [Phys.check_placement] must notice;
   - [packing_uncover] / [packing_overfill]: drop a tile assignment, or
     cram duplicated slots into one tile past [Packer.fits] —
     [Phys.check_packing] must notice;
   - [route_drop_edge]: disconnect one routing tree —
     [Phys.check_routing] must notice. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Packer = Vpga_plb.Packer
module Config = Vpga_plb.Config
module Occupancy = Vpga_plb.Occupancy
module Placement = Vpga_place.Placement
module Quadrisect = Vpga_pack.Quadrisect
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Int_set = Set.Make (Int)

type fault = { what : string; undo : unit -> unit }

let rng seed = Random.State.make [| 0x5EED; seed |]

let pick st = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int st (List.length l)))

(* Nodes in the cone of an output or a flop D pin: mutating anything
   else is dead logic and not a fault any gate is required to catch. *)
let live_set nl =
  let n = Netlist.size nl in
  let live = Array.make n false in
  let rec mark i =
    if i >= 0 && not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (Netlist.node nl i).Netlist.fanins
    end
  in
  List.iter (fun o -> Array.iter mark (Netlist.node nl o).Netlist.fanins)
    (Netlist.outputs nl);
  List.iter (fun f -> Array.iter mark (Netlist.node nl f).Netlist.fanins)
    (Netlist.flops nl);
  live

let netlist_flip ~seed nl =
  let st = rng seed in
  let live = live_set nl in
  let is_gate node =
    match node.Netlist.kind with
    | Kind.Input | Kind.Output | Kind.Const _ | Kind.Dff -> false
    | _ -> Array.length node.Netlist.fanins > 0
  in
  (* A target must already exist (smaller id, so no combinational loop
     can form) and produce a value (anything but an Output). *)
  let target_ok id t =
    t < id
    &&
    match (Netlist.node nl t).Netlist.kind with
    | Kind.Output -> false
    | _ -> true
  in
  let victims =
    List.filter
      (fun node ->
        live.(node.Netlist.id) && is_gate node
        && List.exists
             (fun t -> target_ok node.Netlist.id t && t <> node.Netlist.fanins.(0))
             (List.init node.Netlist.id (fun i -> i)))
      (Array.to_list (Netlist.nodes nl))
  in
  match pick st victims with
  | None -> invalid_arg "Inject.netlist_flip: no mutable gate in netlist"
  | Some node ->
      let id = node.Netlist.id in
      let pin = Random.State.int st (Array.length node.Netlist.fanins) in
      let old = node.Netlist.fanins.(pin) in
      let targets =
        List.filter
          (fun t -> target_ok id t && t <> old)
          (List.init id (fun i -> i))
      in
      let t =
        match pick st targets with Some t -> t | None -> assert false
      in
      node.Netlist.fanins.(pin) <- t;
      {
        what =
          Printf.sprintf "netlist: rewired fanin %d of node %d from %d to %d"
            pin id old t;
        undo = (fun () -> node.Netlist.fanins.(pin) <- old);
      }

let placed_ids pl =
  let ids = ref [] in
  Array.iteri
    (fun id x -> if Float.is_finite x then ids := id :: !ids)
    pl.Placement.x;
  List.rev !ids

let placement_unplace ~seed pl =
  let st = rng seed in
  match pick st (placed_ids pl) with
  | None -> invalid_arg "Inject.placement_unplace: empty placement"
  | Some id ->
      let old = pl.Placement.x.(id) in
      pl.Placement.x.(id) <- Float.nan;
      {
        what = Printf.sprintf "placement: node %d lost its coordinates" id;
        undo = (fun () -> pl.Placement.x.(id) <- old);
      }

let placement_offdie ~seed pl =
  let st = rng seed in
  match pick st (placed_ids pl) with
  | None -> invalid_arg "Inject.placement_offdie: empty placement"
  | Some id ->
      let old = pl.Placement.x.(id) in
      pl.Placement.x.(id) <- (2.0 *. pl.Placement.die_w) +. 10.0;
      {
        what = Printf.sprintf "placement: node %d pushed outside the die" id;
        undo = (fun () -> pl.Placement.x.(id) <- old);
      }

let packed_ids q =
  let ids = ref [] in
  Array.iteri
    (fun id tile -> if tile >= 0 then ids := id :: !ids)
    q.Quadrisect.tile_of_node;
  List.rev !ids

let packing_uncover ~seed q =
  let st = rng seed in
  match pick st (packed_ids q) with
  | None -> invalid_arg "Inject.packing_uncover: empty packing"
  | Some id ->
      let old = q.Quadrisect.tile_of_node.(id) in
      q.Quadrisect.tile_of_node.(id) <- -1;
      {
        what = Printf.sprintf "packing: node %d dropped from tile %d" id old;
        undo = (fun () -> q.Quadrisect.tile_of_node.(id) <- old);
      }

(* Duplicate placement slots: reassign packable nodes onto one victim
   tile until its contents no longer satisfy [Packer.fits]. *)
let packing_overfill ~seed q nl =
  let st = rng seed in
  let ids = packed_ids q in
  match pick st ids with
  | None -> invalid_arg "Inject.packing_overfill: empty packing"
  | Some victim_id ->
      let tile = q.Quadrisect.tile_of_node.(victim_id) in
      let arch = q.Quadrisect.arch in
      let contents () =
        List.filter_map
          (fun id ->
            if q.Quadrisect.tile_of_node.(id) = tile then
              Quadrisect.item_of_node (Netlist.node nl id)
            else None)
          ids
      in
      let moved = ref [] in
      let others = List.filter (fun id -> q.Quadrisect.tile_of_node.(id) <> tile) ids in
      (try
         List.iter
           (fun id ->
             if not (Packer.fits arch (contents ())) then raise Exit;
             moved := (id, q.Quadrisect.tile_of_node.(id)) :: !moved;
             q.Quadrisect.tile_of_node.(id) <- tile)
           others
       with Exit -> ());
      if Packer.fits arch (contents ()) then begin
        (* Could not overflow (tiny design): restore and report. *)
        List.iter (fun (id, t) -> q.Quadrisect.tile_of_node.(id) <- t) !moved;
        invalid_arg "Inject.packing_overfill: design too small to overfill"
      end;
      let n_moved = List.length !moved in
      {
        what =
          Printf.sprintf "packing: %d duplicated slot(s) crammed into tile %d"
            n_moved tile;
        undo =
          (fun () ->
            List.iter (fun (id, t) -> q.Quadrisect.tile_of_node.(id) <- t)
              !moved);
      }

(* Cross-region occupancy write: mutate a tile that the region-ownership
   stamps say belongs to a different region than the one the tile's
   cache writes for — exactly the bug class [Refine]'s region
   decomposition must make impossible.  The written item is a pure flop
   (zero comb demand), so the write itself is as benign as a real race
   would look.  With the sanitizer armed, [Occupancy.add] raises
   {!Occupancy.Race} at the faulting write and no undo is needed; with
   the guard disarmed the write lands silently and [undo] removes it. *)
let occupancy_cross_region ~seed tiles =
  let st = rng seed in
  let item = { Packer.config = Config.Invb; pins = 0; flop = true } in
  let victims =
    List.filter
      (fun t ->
        Occupancy.owner t >= 0
        && Occupancy.owner t <> Occupancy.writer (Occupancy.cache t)
        && Occupancy.query t item)
      (Array.to_list tiles)
  in
  match pick st victims with
  | None ->
      invalid_arg "Inject.occupancy_cross_region: no cross-region victim tile"
  | Some t ->
      if not (Occupancy.add t item) then assert false;
      {
        what =
          Printf.sprintf
            "occupancy: wrote a flop into a tile owned by region %d through \
             a cache writing for region %d"
            (Occupancy.owner t)
            (Occupancy.writer (Occupancy.cache t));
        undo = (fun () -> Occupancy.remove t item);
      }

(* Routing artifacts are consumed immutably, so route corruptors take the
   result binding by reference: the ref is rebound to a corrupted copy
   (sharing the grid) and [undo] restores the original binding — the same
   fault/undo shape as every other corruptor. *)
let route_drop_edge ~seed (r : Pathfinder.result ref) =
  let st = rng seed in
  let orig = !r in
  let multi =
    List.filteri
      (fun _ rt -> List.length rt.Router.edges >= 2)
      orig.Pathfinder.routes
  in
  match pick st multi with
  | None -> invalid_arg "Inject.route_drop_edge: no multi-edge route"
  | Some victim ->
      let n = List.length victim.Router.edges in
      let drop = Random.State.int st n in
      let dropped = List.nth victim.Router.edges drop in
      let routes =
        List.map
          (fun rt ->
            if rt == victim then
              {
                rt with
                Router.edges = List.filteri (fun i _ -> i <> drop) rt.Router.edges;
              }
            else rt)
          orig.Pathfinder.routes
      in
      r := { orig with Pathfinder.routes };
      {
        what =
          Printf.sprintf "routing: dropped edge %d from a %d-edge tree" dropped
            n;
        undo = (fun () -> r := orig);
      }

(* Force a packed node onto a defective tile: the extended
   [Phys.check_packing ~dead_tile] must flag it ([defect-dead-tile]). *)
let defect_dead_tile ~seed ~dead (q : Quadrisect.t) =
  let st = rng seed in
  let n_tiles = q.Quadrisect.cols * q.Quadrisect.rows in
  let dead_tiles =
    List.filter dead (List.init n_tiles Fun.id)
  in
  match (pick st dead_tiles, pick st (packed_ids q)) with
  | None, _ -> invalid_arg "Inject.defect_dead_tile: defect map has no dead tile"
  | _, None -> invalid_arg "Inject.defect_dead_tile: empty packing"
  | Some tile, Some id ->
      let old = q.Quadrisect.tile_of_node.(id) in
      q.Quadrisect.tile_of_node.(id) <- tile;
      {
        what =
          Printf.sprintf "packing: node %d forced onto defective tile %d" id
            tile;
        undo = (fun () -> q.Quadrisect.tile_of_node.(id) <- old);
      }

(* Force a route across a defective (dead) boundary: prepend a pendant
   dead edge to one routing tree.  The far bin must not already be
   touched by the tree, so the result stays an acyclic single tree
   (|edges| = |bins| - 1) and only the capacity / dead-edge checks fire
   ([dead-edge]), not the connectivity ones. *)
let defect_dead_edge ~seed (r : Pathfinder.result ref) =
  let st = rng seed in
  let orig = !r in
  let grid = orig.Pathfinder.grid in
  let candidates =
    List.concat
      (List.mapi
         (fun i rt ->
           if rt.Router.edges = [] then []
           else begin
             let touched =
               List.fold_left
                 (fun acc e ->
                   let a, b = Detail.bins_of grid e in
                   Int_set.add a (Int_set.add b acc))
                 Int_set.empty rt.Router.edges
             in
             let edge_set = Int_set.of_list rt.Router.edges in
             let acc = ref [] in
             Int_set.iter
               (fun bin ->
                 List.iter
                   (fun (e, _) ->
                     let a, b = Detail.bins_of grid e in
                     let far = if Int_set.mem a touched then b else a in
                     if
                       Grid.dead grid e
                       && (not (Int_set.mem e edge_set))
                       && not (Int_set.mem far touched)
                     then acc := (i, e) :: !acc)
                   (Grid.neighbors grid bin))
               touched;
             List.sort_uniq compare !acc
           end)
         orig.Pathfinder.routes)
  in
  match pick st candidates with
  | None ->
      invalid_arg
        "Inject.defect_dead_edge: no pendant dead edge adjacent to a route"
  | Some (victim, e) ->
      let routes =
        List.mapi
          (fun i rt ->
            if i = victim then
              let edges = e :: rt.Router.edges in
              {
                rt with
                Router.edges;
                wirelength = Router.wirelength_of grid edges;
              }
            else rt)
          orig.Pathfinder.routes
      in
      r := { orig with Pathfinder.routes };
      {
        what =
          Printf.sprintf "routing: net %d forced across dead edge %d" victim e;
        undo = (fun () -> r := orig);
      }
