(** Generic retry driver for stages whose exhaustion is fatal.

    Stages that can survive policy exhaustion by degrading (routing
    overflow, anneal divergence) drive their own loops in [lib/flow]
    and share only {!reseed}. *)

val run :
  log:Log.t ->
  policy:Policy.t ->
  stage:string ->
  design:string ->
  (int -> ('a, string) result) ->
  'a
(** [run ~log ~policy ~stage ~design f] calls [f 0], [f 1], ... until
    one attempt returns [Ok] or [policy.max_attempts] attempts have
    failed.  A {!Log.Retry} event is recorded before each rerun.
    @raise Fail.Stage_failure on exhaustion, carrying the last failure
    reason and the full event trail. *)

val reseed : seed:int -> attempt:int -> int
(** The derived seed for attempt [attempt] of a randomized stage.
    [reseed ~seed ~attempt:0] is [seed] itself (attempt 0 reproduces the
    un-retried flow bit for bit); later attempts step deterministically,
    so retried flows remain independent of worker count and completion
    order. *)
