(* Per-stage retry-with-escalation knobs.  One record covers the whole
   flow; each stage reads the fields it cares about.  Every ladder is a
   pure function of (policy, attempt index), and every reseed derives
   from the base seed plus the attempt index, so a retried flow is as
   deterministic as a first-try one. *)

type t = {
  max_attempts : int;
  route_capacity : int option;
  route_capacity_growth : float;
  route_extra_iterations : int;
  anneal_t_start : float option;
  anneal_cooling : float;
  pack_utilization : float;
  pack_relaxation : float;
  cec_budgets : int option list;
}

let default =
  {
    max_attempts = 4;
    route_capacity = None;
    route_capacity_growth = 1.5;
    route_extra_iterations = 10;
    anneal_t_start = None;
    anneal_cooling = 1.0 /. 16.0;
    pack_utilization = 0.9;
    pack_relaxation = 0.8;
    cec_budgets = [ Some 50_000; None ];
  }

let strict = { default with max_attempts = 1; cec_budgets = [ None ] }

let name p = if p = strict then "strict" else "default"

let of_name = function
  | "default" -> Some default
  | "strict" -> Some strict
  | _ -> None
