(** Seeded fault injection for the flow's intermediate artifacts.

    Each corruptor deterministically (from [seed]) picks a victim,
    mutates the artifact in place and returns an undo closure, so tests
    can prove the verification layer catches the fault — or a retry
    policy heals it — and then restore the artifact.  Routing results
    are consumed immutably, so the route corruptors take the result
    binding as a [ref]: the ref is rebound to a corrupted copy (sharing
    the grid) and [undo] restores the original binding. *)

type fault = {
  what : string;  (** human-readable description of the injected fault *)
  undo : unit -> unit;
}

val netlist_flip : seed:int -> Vpga_netlist.Netlist.t -> fault
(** Rewire one fanin of a live gate to a different existing driver (the
    netlist-level analogue of flipping an AIG edge).  Targets always
    have smaller ids, so no combinational loop can form — detection is
    the equivalence gates' job, not the lint's.
    @raise Invalid_argument if the netlist has no mutable gate. *)

val placement_unplace : seed:int -> Vpga_place.Placement.t -> fault
(** Give one item a non-finite coordinate ([unplaced]). *)

val placement_offdie : seed:int -> Vpga_place.Placement.t -> fault
(** Push one item far outside the die ([outside-die]). *)

val packing_uncover : seed:int -> Vpga_pack.Quadrisect.t -> fault
(** Drop one packable node's tile assignment ([uncovered]). *)

val packing_overfill :
  seed:int -> Vpga_pack.Quadrisect.t -> Vpga_netlist.Netlist.t -> fault
(** Duplicate placement slots into one victim tile until its contents
    violate {!Vpga_plb.Packer.fits} ([tile-overflow]).
    @raise Invalid_argument if the design is too small to overfill. *)

val occupancy_cross_region :
  seed:int -> Vpga_plb.Occupancy.t array -> fault
(** Write a pure-flop item into a tile whose ownership stamp differs
    from its cache's writer stamp — a forced cross-region mutation.
    With the sanitizer armed ([Occupancy.set_writer] >= 0) the faulting
    write raises {!Vpga_plb.Occupancy.Race} before this function
    returns; with the guard disarmed the write lands silently and
    [undo] removes it again.
    @raise Vpga_plb.Occupancy.Race when the sanitizer is armed.
    @raise Invalid_argument when no tile qualifies as a victim. *)

val route_drop_edge : seed:int -> Vpga_route.Pathfinder.result ref -> fault
(** Rebind the ref to a copy of the routing result with one edge dropped
    from a multi-edge routing tree ([route-disconnected]); [undo]
    restores the original result.
    @raise Invalid_argument when no route has two edges. *)

val defect_dead_tile :
  seed:int -> dead:(int -> bool) -> Vpga_pack.Quadrisect.t -> fault
(** Force one packed node onto a tile the defect map marks dead
    ([dead] is the map's {!Vpga_resil.Defect.dead_pred} view at the
    packing's dims) — the extended
    [Phys.check_packing ~dead_tile] must flag it ([defect-dead-tile]).
    @raise Invalid_argument when the map kills no tile of this array or
    the packing is empty. *)

val defect_dead_edge : seed:int -> Vpga_route.Pathfinder.result ref -> fault
(** Rebind the ref to a copy of the routing result with one routing tree
    extended across a {e pendant} dead boundary of its grid: the tree
    stays a single acyclic tree, so only the capacity / dead-edge checks
    of [Phys.check_routing] fire ([dead-edge]), proving the checker sees
    defective-resource use rather than a connectivity artifact.
    @raise Invalid_argument when no route borders a usable pendant dead
    edge (e.g. the grid has no defects). *)
