(* Recovery-event recorder.  One [t] per flow run (tasks never share
   one, so no locking); the flow appends an event whenever a policy
   retries a stage, escalates a knob, or degrades a verification level.
   The sweep aggregates per-task summaries into the recovery counters
   reported by [bin/vpga sweep] and BENCH_sweep.json. *)

type event =
  | Retry of { stage : string; attempt : int; reason : string }
  | Escalation of { stage : string; what : string }
  | Degraded of { stage : string; what : string }

type t = { mutable events : event list (* newest first *) }

let create () = { events = [] }
let record t e = t.events <- e :: t.events
let events t = List.rev t.events

let event_to_string = function
  | Retry { stage; attempt; reason } ->
      Printf.sprintf "retry %s (attempt %d): %s" stage attempt reason
  | Escalation { stage; what } -> Printf.sprintf "escalate %s: %s" stage what
  | Degraded { stage; what } -> Printf.sprintf "degrade %s: %s" stage what

let strings t = List.map event_to_string (events t)

type summary = { retries : int; escalations : int; degraded : int }

let zero = { retries = 0; escalations = 0; degraded = 0 }

let add a b =
  {
    retries = a.retries + b.retries;
    escalations = a.escalations + b.escalations;
    degraded = a.degraded + b.degraded;
  }

let summary t =
  List.fold_left
    (fun acc e ->
      match e with
      | Retry _ -> { acc with retries = acc.retries + 1 }
      | Escalation _ -> { acc with escalations = acc.escalations + 1 }
      | Degraded _ -> { acc with degraded = acc.degraded + 1 })
    zero (events t)
