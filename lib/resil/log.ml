(* Recovery-event recorder.  One [t] per flow run (tasks never share
   one, so no locking); the flow appends an event whenever a policy
   retries a stage, escalates a knob, or degrades a verification level.
   The sweep aggregates per-task summaries into the recovery counters
   reported by [bin/vpga sweep] and BENCH_sweep.json. *)

type event =
  | Retry of { stage : string; attempt : int; reason : string }
  | Escalation of { stage : string; what : string }
  | Degraded of { stage : string; what : string }

type timed = { at_ns : int64; event : event }

type t = { mutable rev_timed : timed list (* newest first *) }

let create () = { rev_timed = [] }

let record t e =
  t.rev_timed <-
    { at_ns = Vpga_obs.Clock.now_ns (); event = e } :: t.rev_timed

let events t = List.rev_map (fun te -> te.event) t.rev_timed
let timed t = List.rev t.rev_timed

let event_to_string = function
  | Retry { stage; attempt; reason } ->
      Printf.sprintf "retry %s (attempt %d): %s" stage attempt reason
  | Escalation { stage; what } -> Printf.sprintf "escalate %s: %s" stage what
  | Degraded { stage; what } -> Printf.sprintf "degrade %s: %s" stage what

let strings t = List.map event_to_string (events t)

type summary = { retries : int; escalations : int; degraded : int }

let zero = { retries = 0; escalations = 0; degraded = 0 }

let add a b =
  {
    retries = a.retries + b.retries;
    escalations = a.escalations + b.escalations;
    degraded = a.degraded + b.degraded;
  }

let summary t =
  List.fold_left
    (fun acc e ->
      match e with
      | Retry _ -> { acc with retries = acc.retries + 1 }
      | Escalation _ -> { acc with escalations = acc.escalations + 1 }
      | Degraded _ -> { acc with degraded = acc.degraded + 1 })
    zero (events t)
