(** Typed stage failures.

    A flow stage whose retry policy is exhausted reports a {!t}: the
    stage name, the design, the number of attempts made, the
    {!Vpga_verify.Diag} diagnostics that condemned the last attempt, and
    the recovery-event trail ({!Log.strings}) leading up to it.
    {!Stage_failure} is the one exception a policy-driven flow run dies
    with; legacy [Failure]s are adopted via {!of_exn} at the boundary. *)

type t = {
  stage : string;  (** the stage boundary that gave up, e.g. ["route:a"] *)
  design : string;
  attempts : int;  (** attempts made, including the first *)
  diags : Vpga_verify.Diag.t list;
  events : string list;  (** rendered recovery events, oldest first *)
}

exception Stage_failure of t

val make :
  ?diags:Vpga_verify.Diag.t list ->
  ?events:string list ->
  stage:string ->
  design:string ->
  attempts:int ->
  unit ->
  t

val of_exn :
  ?events:string list ->
  stage:string ->
  design:string ->
  attempts:int ->
  exn ->
  t
(** Adopt any exception as a typed failure.  A {!Stage_failure} payload
    passes through unchanged; a [Failure msg] becomes a [stage-failed]
    diagnostic; anything else becomes [stage-exception]. *)

val to_string : t -> string
val raise_ : t -> 'a
