(** Seeded manufacturing-defect maps for the regular fabric.

    A defect map lives in {e normalized die coordinates} ([0,1] x [0,1]):
    the PLB array dims and the routing-grid discretization both vary
    across retry escalations and array growth, so a map records physical
    die locations and each stage projects them onto its own
    discretization at construction time ({!tile_dead} / {!dead_pred} for
    the packing stages, {!tracks} as a {!Vpga_route.Grid.track_fn} for
    the routing stages).

    Three defect kinds:
    - {e dead tiles}: the PLB tile containing the site admits nothing
      (zero capacity for placement, spill and refinement);
    - {e dead routing edges}: the channel boundary whose catchment
      contains the site exposes zero usable tracks — the router prices it
      unroutable, and any crossing surfaces as overflow;
    - {e derated boundaries}: rectangular regions whose boundaries expose
      only a seeded fraction of their tracks (a non-contiguous subset, so
      detailed routing genuinely skips dead track indices).

    Generation is a pure function of the parameters, so a map is
    bit-identical across jobs settings and sessions. *)

type dist = Uniform | Clustered
(** Spatial distribution: independent per-site defects, or a few seeded
    cluster centers each killing their 3x3 neighbourhood (particle-shower
    style). *)

type t = {
  seed : int;
  dist : dist;
  dead_tiles : (float * float) array;  (** normalized die points *)
  dead_edges : (float * float * bool) array;
      (** normalized die point plus channel orientation (vertical?) *)
  derated : (float * float * float * float * float) array;
      (** [(x0, y0, x1, y1, keep)] rectangles; boundaries inside expose
          [ceil (keep * capacity)] tracks *)
}

val empty : t
(** No defects; every view is fully transparent (bit-identical flow
    results to the pre-defect-layer code). *)

val is_empty : t -> bool

val generate :
  ?dist:dist ->
  ?resolution:int ->
  ?tile_rate:float ->
  ?edge_rate:float ->
  ?derate_rate:float ->
  ?derate_keep:float ->
  seed:int ->
  unit ->
  t
(** Draw a map on a virtual [resolution x resolution] (default 16) site
    grid: each site goes dead-tile with probability [tile_rate] and
    dead-edge with probability [edge_rate] (default 0; [Clustered] scales
    the same rates into cluster counts); [derate_rate] (default 0) scales
    the number of derated rectangles, each keeping [derate_keep] (default
    0.5) of its boundaries' tracks. *)

val at_rate : ?dist:dist -> seed:int -> float -> t
(** The stress sweep's one-knob generator: [at_rate ~seed r] is
    {!generate} with [tile_rate = r/2], [edge_rate = r] and
    [derate_rate = r]; [r <= 0] is {!empty}. *)

val tile_dead : t -> cols:int -> rows:int -> int -> bool
(** Is this tile of a [cols x rows] array dead?  Shaped for
    {!Vpga_pack.Quadrisect.legalize_result}'s [dead_tile]. *)

val dead_pred : t -> cols:int -> rows:int -> int -> bool
(** {!tile_dead} precomputed into a lookup array for one fixed
    discretization (the refinement and checker hot paths). *)

val tracks :
  t ->
  cx:float ->
  cy:float ->
  hw:float ->
  hh:float ->
  vertical:bool ->
  capacity:int ->
  int array
(** Usable tracks of the channel boundary at normalized midpoint
    [(cx, cy)] with bin half-extents [(hw, hh)]: [[||]] when a dead-edge
    site of the same orientation falls in the catchment, a seeded
    [ceil (keep * capacity)]-element subset inside a derated rectangle,
    the full range otherwise.  [tracks d] is a
    {!Vpga_route.Grid.track_fn}.  The surviving {e count} is monotone in
    [capacity] (membership may churn), which is what the
    minimum-channel-width binary search relies on. *)

val describe : t -> string
