(** Retry-with-escalation policy for the flow.

    One record carries every stage's knobs; {!Flow.run}[ ?policy] reads
    the fields relevant to each stage.  Determinism rule: every ladder
    value and every reseed is a pure function of the policy and the
    attempt index (see {!Retry.reseed}), never of wall-clock, worker
    count or completion order — a retried flow stays byte-identical
    across [jobs] settings. *)

type t = {
  max_attempts : int;
      (** per-stage attempt cap, including the first try (>= 1) *)
  route_capacity : int option;
      (** starting channel capacity for the routing grid ([None] = the
          geometric default of {!Vpga_route.Grid.of_placement}) *)
  route_capacity_growth : float;
      (** capacity multiplier per routing retry (> 1) *)
  route_extra_iterations : int;
      (** extra PathFinder rip-up iterations granted per retry *)
  anneal_t_start : float option;
      (** starting annealing temperature ([None] = adaptive default) *)
  anneal_cooling : float;
      (** temperature multiplier per anneal restart (< 1): restarts get
          {e cooler} so a diverging walk turns into a safe greedy pass *)
  pack_utilization : float;
      (** target PLB-array resource utilization for legalization *)
  pack_relaxation : float;
      (** utilization multiplier per packing retry (< 1): each retry
          sizes a roomier array *)
  cec_budgets : int option list;
      (** conflict-budget ladder for the Formal equivalence proofs;
          [None] entries are unbounded.  When the ladder is exhausted by
          [Undecided] verdicts (or empty), the stage degrades
          Formal -> Fast with a recorded warning instead of aborting. *)
}

val default : t
(** 4 attempts per stage, routing capacity x1.5 + 10 rip-up iterations
    per retry, cooling anneal restarts (x1/16), packing utilization x0.8
    per retry, CEC ladder [50k conflicts, unbounded]. *)

val strict : t
(** One attempt per stage, unbounded proofs: any stage failure is final.
    This reproduces the pre-policy fail-fast behavior, with the typed
    {!Fail.Stage_failure} instead of a bare [Failure]. *)

val name : t -> string
val of_name : string -> t option
(** ["default"] / ["strict"] (the [--policy] CLI values). *)
