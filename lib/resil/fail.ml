(* Typed stage failures.  A [t] is what a flow stage reports when its
   retry policy is exhausted: which stage, on which design, how many
   attempts were made, the verification diagnostics that condemned the
   last attempt, and the recovery events (retries/escalations) that led
   up to it.  [Stage_failure] is the only exception a policy-driven flow
   run is supposed to die with; bare [Failure]s from stage internals are
   converted at the stage boundary. *)

module Diag = Vpga_verify.Diag

type t = {
  stage : string;
  design : string;
  attempts : int;
  diags : Diag.t list;
  events : string list;
}

exception Stage_failure of t

let make ?(diags = []) ?(events = []) ~stage ~design ~attempts () =
  { stage; design; attempts; diags; events }

(* Adopt an arbitrary exception as a typed failure (used at task
   boundaries where legacy stages can still raise raw exceptions). *)
let of_exn ?(events = []) ~stage ~design ~attempts = function
  | Stage_failure f -> f
  | Failure msg ->
      make
        ~diags:[ Diag.error "stage-failed" "%s" msg ]
        ~events ~stage ~design ~attempts ()
  | e ->
      make
        ~diags:[ Diag.error "stage-exception" "%s" (Printexc.to_string e) ]
        ~events ~stage ~design ~attempts ()

let to_string f =
  Printf.sprintf "%s failed on %s after %d attempt%s: %s" f.stage f.design
    f.attempts
    (if f.attempts = 1 then "" else "s")
    (String.concat "; " (List.map Diag.to_string f.diags))

let raise_ f = raise (Stage_failure f)

let () =
  Printexc.register_printer (function
    | Stage_failure f -> Some ("Stage_failure: " ^ to_string f)
    | _ -> None)
