(** Recovery-event recorder: the attempt log of one flow run.

    The flow appends an event whenever a policy retries a stage,
    escalates a knob, or degrades a verification level.  One recorder
    per task — tasks never share one, so no synchronization. *)

type event =
  | Retry of { stage : string; attempt : int; reason : string }
      (** attempt [attempt] is about to run because the previous one
          failed for [reason] *)
  | Escalation of { stage : string; what : string }
      (** a knob was raised/relaxed for the next attempt *)
  | Degraded of { stage : string; what : string }
      (** the stage gave up on its strong guarantee but the flow
          continues (e.g. Formal -> Fast, or detailed routing skipped) *)

type timed = { at_ns : int64; event : event }
(** An event stamped with the monotonic clock ({!Vpga_obs.Clock}) at
    {!record} time, so recovery events can be correlated with trace spans
    on one timeline. *)

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

val timed : t -> timed list
(** Oldest first, with the monotonic timestamp each event was recorded
    at.  Timestamps are nondecreasing. *)

val event_to_string : event -> string
val strings : t -> string list

type summary = { retries : int; escalations : int; degraded : int }

val zero : summary
val add : summary -> summary -> summary
val summary : t -> summary
