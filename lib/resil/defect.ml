(* First-class manufacturing-defect maps for the regular fabric.

   A map lives in normalized die coordinates ([0,1] x [0,1]): the PLB
   array dims and the routing-grid discretization both vary across retry
   escalations and array growth, so defects are physical die locations
   that each stage maps onto its own discretization at construction time.
   Three defect kinds:

   - dead tiles: points; a PLB tile containing one admits nothing;
   - dead routing edges: points with an orientation; a channel boundary
     whose catchment contains one exposes zero usable tracks;
   - derated boundaries: rectangles with a keep fraction; boundaries
     inside expose only a (seeded, non-contiguous) subset of tracks.

   All generation is a pure function of the seed, so a map is identical
   across jobs settings and sessions. *)

type dist = Uniform | Clustered

type t = {
  seed : int;
  dist : dist;
  dead_tiles : (float * float) array;
  dead_edges : (float * float * bool) array; (* x, y, vertical *)
  derated : (float * float * float * float * float) array;
      (* x0, y0, x1, y1, keep *)
}

let empty =
  {
    seed = 0;
    dist = Uniform;
    dead_tiles = [||];
    dead_edges = [||];
    derated = [||];
  }

let is_empty d =
  Array.length d.dead_tiles = 0
  && Array.length d.dead_edges = 0
  && Array.length d.derated = 0

let rng seed = Random.State.make [| 0xDEF; seed |]

(* Virtual sampling resolution: defect sites are drawn on an R x R grid of
   die locations regardless of the actual array/grid dims.  Site centers
   (not corners) so a defect never sits exactly on a discretization
   boundary. *)
let site r i j =
  ((float_of_int i +. 0.5) /. float_of_int r,
   (float_of_int j +. 0.5) /. float_of_int r)

let generate ?(dist = Uniform) ?(resolution = 16) ?(tile_rate = 0.0)
    ?(edge_rate = 0.0) ?(derate_rate = 0.0) ?(derate_keep = 0.5) ~seed () =
  if resolution < 2 then invalid_arg "Defect.generate: resolution < 2";
  let st = rng seed in
  let r = resolution in
  let tiles = ref [] and edges = ref [] in
  (match dist with
  | Uniform ->
      (* Independent per-site coin flips, row-major so the draw order (and
         with it the map) is a function of (seed, resolution, rates)
         alone. *)
      for i = 0 to r - 1 do
        for j = 0 to r - 1 do
          if tile_rate > 0.0 && Random.State.float st 1.0 < tile_rate then
            tiles := site r i j :: !tiles;
          if edge_rate > 0.0 && Random.State.float st 1.0 < edge_rate then begin
            let vertical = Random.State.bool st in
            let x, y = site r i j in
            edges := (x, y, vertical) :: !edges
          end
        done
      done
  | Clustered ->
      (* Defects arrive in spatial clusters (slurry scratches, particle
         showers): a few seeded centers each killing their Chebyshev-1
         neighbourhood with certainty at the center and high probability
         on the ring. *)
      let sites = float_of_int (r * r) in
      let clusters rate = max 1 (int_of_float (Float.round (rate *. sites /. 5.0))) in
      let splat rate add =
        if rate > 0.0 then
          for _ = 1 to clusters rate do
            let ci = Random.State.int st r and cj = Random.State.int st r in
            for di = -1 to 1 do
              for dj = -1 to 1 do
                let i = ci + di and j = cj + dj in
                if i >= 0 && i < r && j >= 0 && j < r then begin
                  let p = if di = 0 && dj = 0 then 1.0 else 0.55 in
                  if Random.State.float st 1.0 < p then add i j
                end
              done
            done
          done
      in
      splat tile_rate (fun i j -> tiles := site r i j :: !tiles);
      splat edge_rate (fun i j ->
          let vertical = Random.State.bool st in
          let x, y = site r i j in
          edges := (x, y, vertical) :: !edges));
  let derated =
    if derate_rate <= 0.0 then [||]
    else
      Array.init
        (max 1 (int_of_float (Float.round (derate_rate *. 8.0))))
        (fun _ ->
          let cx = Random.State.float st 1.0 in
          let cy = Random.State.float st 1.0 in
          let hx = 0.05 +. Random.State.float st 0.15 in
          let hy = 0.05 +. Random.State.float st 0.15 in
          ( max 0.0 (cx -. hx),
            max 0.0 (cy -. hy),
            min 1.0 (cx +. hx),
            min 1.0 (cy +. hy),
            derate_keep ))
  in
  {
    seed;
    dist;
    dead_tiles = Array.of_list (List.rev !tiles);
    dead_edges = Array.of_list (List.rev !edges);
    derated;
  }

let at_rate ?dist ~seed rate =
  if rate <= 0.0 then empty
  else
    generate ?dist ~tile_rate:(0.5 *. rate) ~edge_rate:rate ~derate_rate:rate
      ~seed ()

(* --- per-discretization views --- *)

let tile_of_point ~cols ~rows (u, v) =
  let c = min (cols - 1) (max 0 (int_of_float (u *. float_of_int cols))) in
  let r = min (rows - 1) (max 0 (int_of_float (v *. float_of_int rows))) in
  (r * cols) + c

let tile_dead d ~cols ~rows tile =
  Array.exists (fun p -> tile_of_point ~cols ~rows p = tile) d.dead_tiles

let dead_pred d ~cols ~rows =
  if Array.length d.dead_tiles = 0 then fun _ -> false
  else begin
    let dead = Array.make (cols * rows) false in
    Array.iter
      (fun p -> dead.(tile_of_point ~cols ~rows p) <- true)
      d.dead_tiles;
    fun t -> dead.(t)
  end

(* Deterministic per-(edge, track) hash for derated boundaries: which
   tracks survive must not depend on the grid dims beyond the edge's own
   die location, and must not be a prefix of [0..capacity-1] — the
   detailed router has to genuinely skip interior dead tracks.  Mixing
   the quantized midpoint keeps the choice stable across capacity
   escalation (the surviving *count* scales with capacity; membership may
   churn, which the minimum-channel-width search tolerates because only
   the count drives its monotonicity). *)
let track_hash seed ~cx ~cy ~vertical tr =
  let mix h k = (h * 65599) + k in
  let q f = int_of_float (f *. 8192.0) in
  let h = mix (mix (mix (mix (mix 0 0xD1E) seed) (q cx)) (q cy)) tr in
  mix h (if vertical then 1 else 0) land 0x3FFFFFFF

let tracks d ~cx ~cy ~hw ~hh ~vertical ~capacity =
  let hit_dead =
    Array.exists
      (fun (x, y, v) ->
        v = vertical
        && Float.abs (x -. cx) <= hw
        && Float.abs (y -. cy) <= hh)
      d.dead_edges
  in
  if hit_dead then [||]
  else begin
    let keep =
      Array.fold_left
        (fun acc (x0, y0, x1, y1, k) ->
          if cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1 then min acc k
          else acc)
        1.0 d.derated
    in
    if keep >= 1.0 then Array.init capacity Fun.id
    else begin
      (* Keep the n lowest-hashed tracks, n monotone in capacity. *)
      let n =
        max 1 (int_of_float (ceil (keep *. float_of_int capacity)))
      in
      let ranked =
        Array.init capacity (fun tr ->
            (track_hash d.seed ~cx ~cy ~vertical tr, tr))
      in
      Array.sort compare ranked;
      let kept = Array.init n (fun i -> snd ranked.(i)) in
      Array.sort Int.compare kept;
      kept
    end
  end

let describe d =
  if is_empty d then "no defects"
  else
    Printf.sprintf
      "seed %d, %s: %d dead tile site(s), %d dead edge site(s), %d derated \
       region(s)"
      d.seed
      (match d.dist with Uniform -> "uniform" | Clustered -> "clustered")
      (Array.length d.dead_tiles)
      (Array.length d.dead_edges)
      (Array.length d.derated)
