(* The pass manager: runs the dataflow-based netlist analyses in a fixed
   order, collects their [Pass.report]s, and optionally runs the
   CEC-gated simplifier on top.  Counters are published to the ambient
   trace (lib/obs) under "analysis.*" so [vpga report] picks them up. *)

module Netlist = Vpga_netlist.Netlist
module Diag = Vpga_verify.Diag
module Trace = Vpga_obs.Trace

type t = {
  reports : Pass.report list;
  simplified : (Netlist.t * Simplify.stats * Diag.t list) option;
}

let pass_names = [ "constprop"; "xprop"; "redundancy"; "fanout" ]

let run ?passes ?fanout_threshold ?(simplify = false) nl =
  let wanted name =
    match passes with None -> true | Some ps -> List.mem name ps
  in
  let reports =
    List.filter_map
      (fun (name, f) -> if wanted name then Some (f nl) else None)
      [
        ("constprop", Constprop.run);
        ("xprop", Xprop.run);
        ("redundancy", Redund.run);
        ("fanout", Fanout.run ?threshold:fanout_threshold);
      ]
  in
  let simplified = if simplify then Some (Simplify.checked nl) else None in
  { reports; simplified }

let diags t =
  List.concat_map (fun (r : Pass.report) -> r.Pass.diags) t.reports
  @ match t.simplified with None -> [] | Some (_, _, ds) -> ds

let counters t =
  List.concat_map (fun (r : Pass.report) -> r.Pass.counters) t.reports

let emit t = List.iter (fun (k, v) -> Trace.emit k v) (counters t)

let pp fmt t =
  List.iter
    (fun (r : Pass.report) ->
      Format.fprintf fmt "@[<v 2>pass %s:@," r.Pass.name;
      if r.Pass.diags = [] then Format.fprintf fmt "clean@,"
      else
        List.iter (fun d -> Format.fprintf fmt "%a@," Diag.pp d) r.Pass.diags;
      List.iter
        (fun (k, v) -> Format.fprintf fmt "%s = %g@," k v)
        r.Pass.counters;
      Format.fprintf fmt "@]@,")
    t.reports;
  match t.simplified with
  | None -> ()
  | Some (_, stats, ds) ->
      Format.fprintf fmt "@[<v 2>simplify:@,";
      List.iter (fun d -> Format.fprintf fmt "%a@," Diag.pp d) ds;
      Format.fprintf fmt "rewrites = %d@]@," (Simplify.total stats)
