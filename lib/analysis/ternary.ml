module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Dataflow = Vpga_dataflow.Dataflow

type v = Bot | C0 | C1 | Def | Und

let equal (a : v) (b : v) = a = b

let join a b =
  if a = b then a
  else
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Und, _ | _, Und -> Und
    | Def, _ | _, Def -> Def
    | _ -> Def (* C0 join C1 *)

let of_bool b = if b then C1 else C0

let const = function C0 -> Some false | C1 -> Some true | _ -> None

let to_string = function
  | Bot -> "bot"
  | C0 -> "0"
  | C1 -> "1"
  | Def -> "def"
  | Und -> "X"

(* Enumerate every two-valued completion of the unknown arguments.  The
   recursion depth is the argument count (<= 5), so at most 32 calls of
   [Kind.eval]; [args] is scribbled on and restored by the caller's
   copy. *)
let eval kind (vs : v array) =
  if Array.exists (fun x -> x = Bot) vs then Bot
  else begin
    let n = Array.length vs in
    let args = Array.make n false in
    let unknown = ref [] in
    for i = n - 1 downto 0 do
      match vs.(i) with
      | C0 -> args.(i) <- false
      | C1 -> args.(i) <- true
      | _ -> unknown := i :: !unknown
    done;
    let rec sweep seen = function
      | [] ->
          let b = Kind.eval kind args in
          (match seen with
          | None -> Some (Some b)
          | Some (Some b') when b' = b -> seen
          | Some _ -> Some None (* completions disagree: not a constant *))
      | i :: rest -> (
          args.(i) <- false;
          match sweep seen rest with
          | Some None -> Some None
          | seen ->
              args.(i) <- true;
              sweep seen rest)
    in
    match sweep None !unknown with
    | Some (Some b) -> of_bool b (* every completion agrees: masked *)
    | _ ->
        if List.exists (fun i -> vs.(i) = Und) !unknown then Und else Def
  end

let in_range nl f = f >= 0 && f < Netlist.size nl

let values ~flop_init nl =
  let transfer nl values (node : Netlist.node) =
    match node.Netlist.kind with
    | Kind.Input -> Def
    | Kind.Const b -> of_bool b
    | Kind.Output ->
        let f = node.Netlist.fanins.(0) in
        if in_range nl f then values.(f) else Und
    | Kind.Dff ->
        let d =
          if Array.length node.Netlist.fanins = 1 then node.Netlist.fanins.(0)
          else -1
        in
        join flop_init (if in_range nl d then values.(d) else Und)
    | k ->
        if Array.length node.Netlist.fanins <> Kind.arity k then Und
        else
          eval k
            (Array.map
               (fun f -> if in_range nl f then values.(f) else Und)
               node.Netlist.fanins)
  in
  Dataflow.fixpoint nl
    {
      Dataflow.direction = Dataflow.Forward;
      init = (fun _ -> Bot);
      transfer;
      equal;
    }
