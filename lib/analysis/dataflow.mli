(** Generic fixed-point dataflow over a netlist, plus the graph traversals
    every static pass shares.

    The engine runs chaotic iteration with a deterministic FIFO worklist:
    node values start at [init], [transfer] recomputes a node from the
    current value array, and a changed node re-queues its dependents
    (fanouts for a {!Forward} analysis, fanins for a {!Backward} one).
    With a finite lattice and a monotone transfer the iteration terminates
    at the least fixed point; the [fuel] bound turns a non-monotone spec
    into a {!Diverged} failure instead of a hang.

    Determinism: the initial worklist is seeded in id order (reverse id
    order for backward analyses) and dependents are visited in the order
    {!Vpga_netlist.Netlist.fanout} reports them, so the relaxation
    sequence — and therefore any non-confluent result — is reproducible. *)

module Netlist := Vpga_netlist.Netlist

type direction = Forward | Backward

type 'v spec = {
  direction : direction;
  init : Netlist.node -> 'v;  (** starting value per node *)
  transfer : Netlist.t -> 'v array -> Netlist.node -> 'v;
      (** recompute one node from the current value array; dangling fanin
          ids (negative or out of range) are the transfer's to interpret *)
  equal : 'v -> 'v -> bool;
}

exception Diverged
(** The relaxation count exceeded [fuel]: the spec is not monotone over a
    finite lattice (or the fuel was set too tight). *)

val fixpoint : ?fuel:int -> Netlist.t -> 'v spec -> 'v array
(** Least fixed point of [spec] over the netlist.  [fuel] bounds the total
    number of node relaxations (default [max 10_000 (64 * size)]).
    @raise Diverged when the bound is hit. *)

(** {2 Shared traversals}

    The exact traversal code {!Vpga_verify.Lint} historically owned, made
    generic so lint and the analysis passes report identical provenance. *)

val cyclic_sccs : n:int -> succ:(int -> int array) -> int list list
(** Tarjan's strongly-connected components over nodes [0 .. n-1] with
    successor function [succ], iterative so deep graphs cannot overflow
    the stack.  Returns only the {e cyclic} components — size > 1, or a
    single node with a self-edge — in the order Tarjan completes them,
    each component in completion order. *)

val reachable : n:int -> roots:int list -> next:(int -> int array) -> bool array
(** Nodes reachable from [roots] following [next]; ids outside
    [0 .. n-1] returned by [next] are ignored (dangling pins). *)
