(* The unit of pass-manager output: one pass's structured diagnostics plus
   the counters it wants surfaced (ambient-trace names, so a traced flow
   lands them in `vpga report` untouched). *)

module Diag = Vpga_verify.Diag

type report = {
  name : string;  (* stable pass name, e.g. "constprop" *)
  diags : Diag.t list;  (* sorted: errors, then warnings, then infos *)
  counters : (string * float) list;  (* "analysis.*" counter names *)
}

let make name diags counters = { name; diags = Diag.sort diags; counters }
