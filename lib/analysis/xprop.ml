(* X-propagation: which nodes can still be undefined when flops start
   uninitialized (and undriven pins float)?  Same forward ternary fixed
   point as constant propagation, but flops seed at X instead of the
   reset constant, so a node is tainted exactly when some X source
   reaches it unmasked — AND(X, 0) stays 0, AND(X, 1) is X.  Tainted
   primary outputs are the actionable finding: their first-cycle value
   depends on power-up state the design never initializes. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Diag = Vpga_verify.Diag

type result = {
  values : Ternary.v array;
  x_nodes : int list;  (* every X-tainted node, ascending id *)
  x_outputs : int list;  (* X-tainted primary outputs *)
}

let analyze nl =
  let values = Ternary.values ~flop_init:Ternary.Und nl in
  let x_nodes = ref [] and x_outputs = ref [] in
  for i = Netlist.size nl - 1 downto 0 do
    if values.(i) = Ternary.Und then begin
      x_nodes := i :: !x_nodes;
      if (Netlist.node nl i).Netlist.kind = Kind.Output then
        x_outputs := i :: !x_outputs
    end
  done;
  { values; x_nodes = !x_nodes; x_outputs = !x_outputs }

let run nl =
  let r = analyze nl in
  let diags = ref [] in
  if r.x_outputs <> [] then
    diags :=
      Diag.warning ~nodes:r.x_outputs "x-output"
        "%d primary output(s) depend on uninitialized state"
        (List.length r.x_outputs)
      :: !diags;
  if r.x_nodes <> [] then
    diags :=
      Diag.info ~nodes:r.x_nodes "x-taint"
        "%d node(s) are reachable by an unmasked X from uninitialized \
         flops or undriven pins"
        (List.length r.x_nodes)
      :: !diags;
  Pass.make "xprop" !diags
    [ ("analysis.x_nodes", float_of_int (List.length r.x_nodes)) ]
