(** The 0/1/X value lattice shared by constant propagation and
    X-propagation, and the forward fixed-point analysis computing it.

    Ordering: [Bot] (unreached) below the two constants, which sit below
    [Def] (unknown but definitely two-valued), which sits below [Und]
    (possibly undefined — an X that escaped an uninitialized flop or an
    undriven pin).  The distinction between [Def] and [Und] is what makes
    X-propagation more than constant propagation's complement: a [Def]
    node merely varies with the inputs; an [Und] node can differ from any
    two-valued simulation. *)

module Netlist := Vpga_netlist.Netlist
module Kind := Vpga_netlist.Kind

type v = Bot | C0 | C1 | Def | Und

val equal : v -> v -> bool
val join : v -> v -> v
val of_bool : bool -> v

val const : v -> bool option
(** [Some b] iff the value is the constant [b]. *)

val to_string : v -> string

val eval : Kind.t -> v array -> v
(** Ternary evaluation of a combinational kind: enumerate every two-valued
    completion of the unknown arguments (arity <= 5, so at most 32); if
    all completions agree the result is that constant — unknowns are
    {e masked} — otherwise the result is [Und] when any unknown argument
    is [Und], else [Def].  Any [Bot] argument yields [Bot].
    @raise Invalid_argument on [Input], [Output] or [Dff]. *)

val values : flop_init:v -> Netlist.t -> v array
(** Forward fixed point over the netlist.  Primary inputs are [Def],
    constants themselves, and a flop's value is [flop_init] joined with
    every value its D pin takes — [flop_init = C0] models the
    simulator's all-zero reset (constant propagation); [flop_init = Und]
    models uninitialized state (X-propagation).  Dangling fanins and
    arity-mismatched gates evaluate to [Und]. *)
