(** Static region-ownership sanitizer for region-parallel refinement.

    Proves, on a concrete {!Vpga_pack.Quadrisect.t} and region grid, that
    the region decomposition is race-free by construction: the
    [region_bounds] rectangles tile the die exactly, [region_of_tile]
    agrees with rectangle membership, every packed node's tile is on the
    die, and the clamped move generation used by [Refine] cannot reach a
    tile owned by another region.  Any violation is reported as an
    [Error] diagnostic — it would be a latent data race in the parallel
    walks. *)

type result = {
  diags : Vpga_verify.Diag.t list;
  checks : int;  (** elementary assertions evaluated *)
}

val check : ?radius:int -> regions:int -> Vpga_pack.Quadrisect.t -> result
(** [check ~regions q] verifies the ownership contract for a [regions] x
    [regions] grid over [q].  [radius] (default 4, matching
    [Refine.run]) bounds the move displacement checked for closure. *)
