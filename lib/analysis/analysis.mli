(** The pass manager over the netlist dataflow analyses.

    Runs {!Constprop}, {!Xprop}, {!Redund} and {!Fanout} (any subset, in
    that fixed order) and optionally the CEC-gated {!Simplify} rewrite,
    returning per-pass {!Pass.report}s.  Counters use ambient-trace
    names ("analysis.*"); {!emit} publishes them so a traced flow
    surfaces them in [vpga report]. *)

type t = {
  reports : Pass.report list;
  simplified :
    (Vpga_netlist.Netlist.t * Simplify.stats * Vpga_verify.Diag.t list) option;
      (** present when [~simplify:true]: the rewritten netlist (or the
          original on a refuted rewrite), the rewrite counts, and the
          certification diagnostics *)
}

val pass_names : string list
(** ["constprop"; "xprop"; "redundancy"; "fanout"] — valid [?passes]. *)

val run :
  ?passes:string list ->
  ?fanout_threshold:int ->
  ?simplify:bool ->
  Vpga_netlist.Netlist.t ->
  t
(** [run nl] executes the selected passes (default: all, no simplify). *)

val diags : t -> Vpga_verify.Diag.t list
(** All diagnostics across passes (and the simplifier, when run). *)

val counters : t -> (string * float) list

val emit : t -> unit
(** Publish every counter once to the ambient trace ({!Vpga_obs.Trace}). *)

val pp : Format.formatter -> t -> unit
