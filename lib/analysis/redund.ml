(* Structural redundancy, read straight off the strashed AIG (lib/aig):
   replaying the netlist through [Aig.of_netlist] maps every combinational
   gate to a literal, so

   - two gates with the same literal compute the same function of the
     same inputs (a strash-equivalence class — duplicates past the first
     are redundant);
   - a gate whose literal is constant was folded away by construction
     (x AND NOT x, and-with-0 chains, ...) — stronger than ternary
     constant propagation, which treats reconvergent inputs
     independently;
   - a gate whose literal belongs to no root cone computes logic nothing
     observes even though the *netlist* node may reach an output (e.g.
     it feeds only gates the folding collapsed). *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Aig = Vpga_aig.Aig
module Diag = Vpga_verify.Diag
module Dataflow = Vpga_dataflow.Dataflow

type result = {
  bound : Aig.bound;
  classes : int list list;
      (* strash classes with >= 2 members, by ascending representative *)
  folded_const : int list;  (* non-[Const] gates with a constant literal *)
  dead_cones : int list;  (* gates whose AIG node no root cone reaches *)
}

let is_gate (node : Netlist.node) =
  match node.Netlist.kind with
  | Kind.Input | Kind.Output | Kind.Dff | Kind.Const _ -> false
  | _ -> true

let analyze nl =
  let bound = Aig.of_netlist nl in
  let n = Netlist.size nl in
  (* Group gates by literal, preserving ascending id order per class. *)
  let by_lit = Hashtbl.create (max 16 n) in
  let folded = ref [] in
  for i = n - 1 downto 0 do
    let node = Netlist.node nl i in
    if is_gate node then begin
      let lit = bound.Aig.node_lits.(i) in
      Hashtbl.replace by_lit lit
        (i :: Option.value ~default:[] (Hashtbl.find_opt by_lit lit));
      if Aig.is_const (Aig.node_of lit) then folded := i :: !folded
    end
  done;
  let classes = ref [] in
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    if is_gate node then
      match Hashtbl.find_opt by_lit bound.Aig.node_lits.(i) with
      | Some ((j :: _ :: _) as cls) when j = i -> classes := cls :: !classes
      | _ -> ()
  done;
  (* Live AIG cone: nodes reachable from the root literals through AND
     fanins.  A netlist gate whose literal's node is outside every cone
     is logic the folding already proved unobservable. *)
  let an = Aig.size bound.Aig.aig in
  let live =
    Dataflow.reachable ~n:an
      ~roots:(List.map (fun (_, l) -> Aig.node_of l) bound.Aig.roots)
      ~next:(fun v ->
        if Aig.is_const v || Aig.is_pi bound.Aig.aig v then [||]
        else
          let a, b = Aig.fanins bound.Aig.aig v in
          [| Aig.node_of a; Aig.node_of b |])
  in
  let dead = ref [] in
  for i = n - 1 downto 0 do
    let node = Netlist.node nl i in
    if is_gate node then begin
      let v = Aig.node_of bound.Aig.node_lits.(i) in
      if (not (Aig.is_const v)) && not live.(v) then dead := i :: !dead
    end
  done;
  {
    bound;
    classes = List.rev !classes;
    folded_const = !folded;
    dead_cones = !dead;
  }

let run nl =
  let r = analyze nl in
  let diags = ref [] in
  let dup_nodes =
    List.concat_map (function _ :: rest -> rest | [] -> []) r.classes
  in
  if dup_nodes <> [] then
    diags :=
      Diag.warning ~nodes:dup_nodes "strash-dup"
        "%d gate(s) duplicate the logic of an earlier gate (%d \
         strash-equivalence class(es))"
        (List.length dup_nodes) (List.length r.classes)
      :: !diags;
  if r.folded_const <> [] then
    diags :=
      Diag.warning ~nodes:r.folded_const "aig-const"
        "%d gate(s) fold to a constant under structural hashing"
        (List.length r.folded_const)
      :: !diags;
  if r.dead_cones <> [] then
    diags :=
      Diag.info ~nodes:r.dead_cones "dead-cone"
        "%d gate(s) compute logic no output or flop cone observes"
        (List.length r.dead_cones)
      :: !diags;
  Pass.make "redundancy" !diags
    [
      ( "analysis.redundant_nodes",
        float_of_int (List.length dup_nodes + List.length r.folded_const) );
    ]
