module Netlist = Vpga_netlist.Netlist

type direction = Forward | Backward

type 'v spec = {
  direction : direction;
  init : Netlist.node -> 'v;
  transfer : Netlist.t -> 'v array -> Netlist.node -> 'v;
  equal : 'v -> 'v -> bool;
}

exception Diverged

let fixpoint ?fuel nl spec =
  let n = Netlist.size nl in
  let values = Array.init n (fun i -> spec.init (Netlist.node nl i)) in
  (* Dependents to re-queue when a node's value changes: readers for a
     forward analysis, fanins for a backward one. *)
  let deps =
    match spec.direction with
    | Forward -> Netlist.fanout nl
    | Backward -> Array.init n (fun i -> (Netlist.node nl i).Netlist.fanins)
  in
  let fuel =
    match fuel with Some f -> f | None -> max 10_000 (64 * n)
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let push i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.add i queue
    end
  in
  (match spec.direction with
  | Forward ->
      for i = 0 to n - 1 do
        push i
      done
  | Backward ->
      for i = n - 1 downto 0 do
        push i
      done);
  let steps = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    queued.(i) <- false;
    incr steps;
    if !steps > fuel then raise Diverged;
    let v = spec.transfer nl values (Netlist.node nl i) in
    if not (spec.equal v values.(i)) then begin
      values.(i) <- v;
      Array.iter (fun j -> if j >= 0 && j < n then push j) deps.(i)
    end
  done;
  values

(* Tarjan's strongly-connected components, iterative (explicit DFS stack)
   so deep graphs cannot overflow the OCaml stack.  Returns only the
   cyclic components: size > 1, or a single node with a self-edge.  This
   is the traversal Lint's combinational-loop detection has always used,
   lifted out so every pass shares it. *)
let cyclic_sccs ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let visit root =
    (* Explicit DFS stack: (node, successors, next successor position). *)
    let work = ref [] in
    let push v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      on_stack.(v) <- true;
      work := (v, succ v, ref 0) :: !work
    in
    push root;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, fis, pos) :: rest ->
          if !pos < Array.length fis then begin
            let w = fis.(!pos) in
            incr pos;
            if index.(w) < 0 then push w
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            work := rest;
            (match rest with
            | (parent, _, _) :: _ ->
                lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    if w = v then w :: acc else pop (w :: acc)
              in
              let comp = pop [] in
              let cyclic =
                match comp with
                | [ w ] -> Array.exists (fun f -> f = w) (succ w)
                | _ -> List.length comp > 1
              in
              if cyclic then sccs := comp :: !sccs
            end
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  List.rev !sccs

let reachable ~n ~roots ~next =
  let seen = Array.make n false in
  let work = ref roots in
  while !work <> [] do
    match !work with
    | [] -> ()
    | i :: rest ->
        work := rest;
        if not seen.(i) then begin
          seen.(i) <- true;
          Array.iter
            (fun j -> if j >= 0 && j < n && not seen.(j) then work := j :: !work)
            (next i)
        end
  done;
  seen
