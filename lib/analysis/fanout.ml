(* Fanout and logic-depth shape of the netlist: power-of-two histograms
   plus a high-fanout-net detector.  High-fanout nets are the routing
   stress generator's raw material (ROADMAP item 5) and the reason the
   flow runs fanout buffering — surfacing them *before* buffering shows
   what the buffer pass is about to pay for. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Levelize = Vpga_netlist.Levelize
module Diag = Vpga_verify.Diag

type result = {
  fanout : int array;  (* per-node reader count *)
  fanout_histogram : (int * int) list;  (* (bucket upper bound, nets) *)
  high_fanout : int list;  (* driver ids with fanout > threshold *)
  max_fanout : int;
  depth : int;  (* combinational depth; -1 when a loop prevents levelizing *)
  depth_histogram : (int * int) list;  (* (bucket upper bound, nodes) *)
}

(* Power-of-two buckets: a value lands in the smallest (1, 2, 4, ...) not
   below it.  Returns (bound, count) pairs for non-empty buckets. *)
let histogram values =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      if v > 0 then begin
        let b = ref 1 in
        while !b < v do
          b := 2 * !b
        done;
        Hashtbl.replace tbl !b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl !b))
      end)
    values;
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let analyze ?(threshold = 8) nl =
  let fanout = Array.map Array.length (Netlist.fanout nl) in
  let n = Netlist.size nl in
  let high = ref [] and max_fanout = ref 0 in
  for i = n - 1 downto 0 do
    (* Only real signal drivers: outputs drive nothing, and an input or
       flop with huge fanout is just as much a routing problem as a gate. *)
    if (Netlist.node nl i).Netlist.kind <> Kind.Output then begin
      if fanout.(i) > !max_fanout then max_fanout := fanout.(i);
      if fanout.(i) > threshold then high := i :: !high
    end
  done;
  let depth, depth_histogram =
    match Levelize.run nl with
    | lv -> (lv.Levelize.depth, histogram lv.Levelize.level)
    | exception Levelize.Combinational_cycle _ -> (-1, [])
  in
  {
    fanout;
    fanout_histogram = histogram fanout;
    high_fanout = !high;
    max_fanout = !max_fanout;
    depth;
    depth_histogram;
  }

let pp_histogram fmt h =
  Format.fprintf fmt "%s"
    (String.concat ", "
       (List.map (fun (b, c) -> Printf.sprintf "<=%d: %d" b c) h))

let run ?threshold nl =
  let r = analyze ?threshold nl in
  let threshold = Option.value ~default:8 threshold in
  let diags = ref [] in
  if r.high_fanout <> [] then
    diags :=
      Diag.warning ~nodes:r.high_fanout "high-fanout"
        "%d net(s) drive more than %d sink(s) (max %d)"
        (List.length r.high_fanout) threshold r.max_fanout
      :: !diags;
  diags :=
    Diag.info "fanout-histogram" "%a" pp_histogram r.fanout_histogram
    :: !diags;
  if r.depth >= 0 then
    diags :=
      Diag.info "logic-depth" "depth %d; levels %a" r.depth pp_histogram
        r.depth_histogram
      :: !diags
  else
    diags :=
      Diag.warning "depth-unavailable"
        "combinational loop prevents logic-depth analysis"
      :: !diags;
  Pass.make "fanout" !diags
    [
      ("analysis.high_fanout_nets", float_of_int (List.length r.high_fanout));
      ("analysis.max_fanout", float_of_int r.max_fanout);
      ("analysis.logic_depth", float_of_int r.depth);
    ]
