(* Ternary 0/1/X constant propagation from the simulator's all-zero reset
   state: a flop's value is the join of 0 (reset) and everything its D pin
   ever takes, so "this flop never leaves reset" and "this gate is masked
   to a constant" both fall out of one forward fixed point. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Diag = Vpga_verify.Diag

type result = {
  values : Ternary.v array;
  constants : int list;
      (* combinational non-[Const] gates proven constant, ascending id *)
  const_flops : int list;  (* flops that provably never leave reset *)
  const_outputs : int list;  (* primary outputs driven by a constant *)
}

let analyze nl =
  let values = Ternary.values ~flop_init:Ternary.C0 nl in
  let constants = ref [] and const_flops = ref [] and const_outputs = ref [] in
  for i = Netlist.size nl - 1 downto 0 do
    if Ternary.const values.(i) <> None then
      match (Netlist.node nl i).Netlist.kind with
      | Kind.Input | Kind.Const _ -> ()
      | Kind.Output -> const_outputs := i :: !const_outputs
      | Kind.Dff -> const_flops := i :: !const_flops
      | _ -> constants := i :: !constants
  done;
  {
    values;
    constants = !constants;
    const_flops = !const_flops;
    const_outputs = !const_outputs;
  }

let run nl =
  let r = analyze nl in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if r.constants <> [] then
    add
      (Diag.warning ~nodes:r.constants "const-logic"
         "%d gate(s) compute a constant from the reset state"
         (List.length r.constants));
  if r.const_flops <> [] then
    add
      (Diag.warning ~nodes:r.const_flops "const-flop"
         "%d flop(s) provably never leave their reset value"
         (List.length r.const_flops));
  List.iter
    (fun o ->
      let v = r.values.(o) in
      add
        (Diag.warning ~nodes:[ o ] "const-output"
           "primary output %d is stuck at %s" o (Ternary.to_string v)))
    r.const_outputs;
  let found =
    List.length r.constants + List.length r.const_flops
  in
  Pass.make "constprop" !diags
    [ ("analysis.constants_found", float_of_int found) ]
