(* Static region-ownership sanitizer for the region-parallel refinement
   machinery (PR 6): proves, for a concrete packing and region grid, that

   - the [region_bounds] rectangles tile the die exactly (no gap, no
     overlap — every tile has exactly one owner);
   - [region_of_tile] agrees with rectangle membership (the two sides of
     the ownership contract cannot drift apart);
   - every packed node sits on a tile inside the die (so region
     ownership covers the whole packed population);
   - ownership is *closed under Refine's move generation*: a move from a
     tile of region r, displaced by any (dc, dr) and clamped to the
     region's rectangle exactly as [Refine.walk] clamps it, lands on a
     tile [region_of_tile] still assigns to r.  A violation here is a
     would-be data race: a region walk mutating a tile another region
     owns.

   The check is exhaustive over tiles and over the clamp extremes (the
   clamp is monotone, so the extreme displacements bound every
   intermediate one).  It runs on the real [Quadrisect.t] — the same
   array dims and the same integer-split arithmetic the parallel walks
   use — not on a model of it. *)

module Quadrisect = Vpga_pack.Quadrisect
module Diag = Vpga_verify.Diag

type result = {
  diags : Diag.t list;
  checks : int;  (* elementary assertions evaluated *)
}

let check ?(radius = 4) ~regions (q : Quadrisect.t) =
  let regions = max 1 regions in
  let cols = q.Quadrisect.cols and rows = q.Quadrisect.rows in
  let n_tiles = cols * rows in
  let n_regions = regions * regions in
  let diags = ref [] in
  let checks = ref 0 in
  let add d = diags := d :: !diags in
  let bounds = Array.init n_regions (Quadrisect.region_bounds ~regions q) in
  (* Exact cover: count owners per tile from the rectangles. *)
  let owners = Array.make n_tiles 0 in
  Array.iteri
    (fun r (c0, r0, c1, r1) ->
      incr checks;
      if c0 > c1 || r0 > r1 || c0 < 0 || r0 < 0 || c1 > cols || r1 > rows then
        add
          (Diag.error ~nodes:[ r ] "region-bounds"
             "region %d rectangle (%d,%d)-(%d,%d) exceeds the %dx%d array" r
             c0 r0 c1 r1 cols rows)
      else
        for row = r0 to r1 - 1 do
          for col = c0 to c1 - 1 do
            owners.((row * cols) + col) <- owners.((row * cols) + col) + 1
          done
        done)
    bounds;
  for t = 0 to n_tiles - 1 do
    incr checks;
    if owners.(t) <> 1 then
      add
        (Diag.error ~nodes:[ t ]
           (if owners.(t) = 0 then "region-gap" else "region-overlap")
           "tile %d is owned by %d region rectangle(s)" t owners.(t))
  done;
  (* region_of_tile must agree with rectangle membership. *)
  for t = 0 to n_tiles - 1 do
    incr checks;
    let r = Quadrisect.region_of_tile ~regions q t in
    let c = t mod cols and row = t / cols in
    let inside =
      r >= 0 && r < n_regions
      &&
      let c0, r0, c1, r1 = bounds.(r) in
      c >= c0 && c < c1 && row >= r0 && row < r1
    in
    if not inside then
      add
        (Diag.error ~nodes:[ t ] "region-mismatch"
           "region_of_tile says %d but tile %d is outside that rectangle" r t)
  done;
  (* Every packed node's tile must be on the die. *)
  Array.iteri
    (fun id tile ->
      incr checks;
      if tile >= n_tiles then
        add
          (Diag.error ~nodes:[ id ] "tile-range"
             "node %d sits on tile %d outside the %dx%d array" id tile cols
             rows))
    q.Quadrisect.tile_of_node;
  (* Closure under move generation: Refine clamps a displaced tile with
     nc = min (c1-1) (max c0 (c+dc)) (same for rows).  The clamp is
     monotone in the displacement, so checking the four extreme corners
     per tile bounds every (dc, dr) in [-radius, radius]^2. *)
  for t = 0 to n_tiles - 1 do
    let r = Quadrisect.region_of_tile ~regions q t in
    if r >= 0 && r < n_regions then begin
      let c0, r0, c1, r1 = bounds.(r) in
      if c0 < c1 && r0 < r1 then begin
        let cc = t mod cols and cr = t / cols in
        List.iter
          (fun (dc, dr) ->
            incr checks;
            let nc = min (c1 - 1) (max c0 (cc + dc)) in
            let nr = min (r1 - 1) (max r0 (cr + dr)) in
            let dest = (nr * cols) + nc in
            if Quadrisect.region_of_tile ~regions q dest <> r then
              add
                (Diag.error ~nodes:[ t; dest ] "region-escape"
                   "a clamped move from tile %d (region %d) reaches tile %d \
                    owned by region %d"
                   t r dest
                   (Quadrisect.region_of_tile ~regions q dest)))
          [ (-radius, -radius); (-radius, radius); (radius, -radius);
            (radius, radius) ]
      end
    end
  done;
  { diags = Diag.sort (List.rev !diags); checks = !checks }
