(* The implied-constant / redundancy simplifier, gated by the existing
   SAT CEC.

   Every rewrite must be provable by [Cec.check], which reasons by flop
   correspondence (flop Q pins are free pseudo-inputs).  That restricts
   the simplifier to *combinationally* justified rewrites:

   - gates whose AIG literal is constant (structural-hashing constant
     folding catches and-with-0, x AND NOT x, ...);
   - gates whose ternary value is constant with flops treated as free
     two-valued inputs ([flop_init = Def] — masking like AND(x, 0));
   - strash-duplicate gates, rewired to the class representative (or to
     an inverter of it when only the complement exists).

   Constants that hold only on the reset-reachable state space (what
   {!Constprop} reports with [flop_init = C0], e.g. a gate fed by a flop
   that never leaves reset) are deliberately NOT rewritten: they are
   sequentially sound but combinationally wrong, so the CEC gate would —
   correctly — refuse to certify them.  They stay diagnostics. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Aig = Vpga_aig.Aig
module Cec = Vpga_verify.Cec
module Diag = Vpga_verify.Diag

type stats = {
  constants : int;  (* gates rewritten to a [Const] *)
  duplicates : int;  (* gates rewired to a strash representative *)
  inverters : int;  (* complement-class reuses (an [Inv] was inserted) *)
}

let total s = s.constants + s.duplicates + s.inverters

let run nl =
  let bound = Aig.of_netlist nl in
  let lits = bound.Aig.node_lits in
  let comb = Ternary.values ~flop_init:Ternary.Def nl in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let const_ids : (bool, int) Hashtbl.t = Hashtbl.create 2 in
  let constants = ref 0 and duplicates = ref 0 and inverters = ref 0 in
  let nl' =
    Netlist.map_combinational nl (fun dst node fi ->
        let id = node.Netlist.id in
        let mk_const b =
          match Hashtbl.find_opt const_ids b with
          | Some c -> c
          | None ->
              let c = Netlist.gate dst (Kind.Const b) [||] in
              Hashtbl.add const_ids b c;
              c
        in
        let lit = lits.(id) in
        let const_of_lit =
          if lit = Aig.const0 then Some false
          else if lit = Aig.const1 then Some true
          else None
        in
        let proven_const =
          match const_of_lit with
          | Some _ as c -> c
          | None -> Ternary.const comb.(id)
        in
        match (node.Netlist.kind, proven_const) with
        | Kind.Const b, _ -> mk_const b
        | _, Some b ->
            incr constants;
            mk_const b
        | _, None -> (
            match Hashtbl.find_opt seen lit with
            | Some rep ->
                incr duplicates;
                rep
            | None -> (
                match Hashtbl.find_opt seen (Aig.not_ lit) with
                | Some rep ->
                    incr inverters;
                    let inv = Netlist.gate dst Kind.Inv [| rep |] in
                    Hashtbl.replace seen lit inv;
                    inv
                | None ->
                    let g =
                      Netlist.gate ?name:node.Netlist.name dst
                        node.Netlist.kind fi
                    in
                    Hashtbl.replace seen lit g;
                    g)))
  in
  (nl', { constants = !constants; duplicates = !duplicates; inverters = !inverters })

(* Simplify and certify: the rewritten netlist is returned only with a
   CEC proof of equivalence in hand; a refuted rewrite (which would be a
   simplifier bug) keeps the original netlist and reports an error. *)
let checked nl =
  let nl', stats = run nl in
  if total stats = 0 then
    (nl, stats, [ Diag.info "simplify-noop" "no combinationally provable rewrites" ])
  else
    match Cec.check nl nl' with
    | Cec.Equivalent ->
        ( nl',
          stats,
          [
            Diag.info "simplified"
              "%d constant(s), %d duplicate(s), %d inverter-share(s) \
               rewritten; CEC-proven equivalent"
              stats.constants stats.duplicates stats.inverters;
          ] )
    | Cec.Inequivalent { Cec.root; root_is_flop; _ } ->
        ( nl,
          { constants = 0; duplicates = 0; inverters = 0 },
          [
            Diag.error "simplify-unsound"
              "simplifier rewrite refuted by CEC (%s %d differs); keeping \
               the original netlist"
              (if root_is_flop then "flop D pin" else "output")
              root;
          ] )
