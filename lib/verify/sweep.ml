(* Simulation-guided SAT sweeping (fraiging).

   A monolithic miter between two versions of an arithmetic-heavy design
   (the FPU's multiplier, say) is exactly the classic hard case for CDCL.
   The standard cure is to exploit the huge number of *internal*
   equivalences the flow preserves: random simulation partitions the shared
   AIG's nodes into candidate-equivalence classes, and each candidate is
   then proven (or refuted) with a small budgeted SAT call against an
   already-processed member of its class, bottom-up.  Proven nodes are
   merged, so by the time the primary-output miter is formed almost all of
   it has collapsed by structural hashing, and what remains is trivial for
   the solver.

   Random patterns alone alias badly on arithmetic logic (deep AND cones
   are heavily probability-skewed), so every refuting SAT model is fed
   back as a fresh simulation pattern that splits *all* classes it
   distinguishes — the counterexample-guided refinement loop of
   fraig-style sweeping.

   [reduce] rebuilds [aig] into a fresh AIG, returning it with a
   substitution from old literals to new ones.  Every merge is either
   structural or SAT-proven (UNSAT), so the substitution is exact: the new
   literal computes the same function of the (order-preserved) primary
   inputs as the old one. *)

module Aig = Vpga_aig.Aig

let sim_words = 4 (* 4 x 62 random patterns per initial signature *)
let merge_budget = 4_000 (* CDCL conflicts per candidate merge proof *)
let word_mask = (1 lsl 62) - 1

(* Bit-parallel random simulation of the whole AIG; one int array of
   [sim_words] signature words per node.  Node 0 (constant false) keeps an
   all-zero signature, so constant cones class with it. *)
let simulate aig ~seed =
  let rng = Random.State.make [| seed |] in
  let n = Aig.size aig in
  let sig_of = Array.make_matrix n sim_words 0 in
  for id = 1 to n - 1 do
    if Aig.is_pi aig id then
      for w = 0 to sim_words - 1 do
        sig_of.(id).(w) <-
          Random.State.bits rng
          lor (Random.State.bits rng lsl 30)
          lor ((Random.State.bits rng land 3) lsl 60)
      done
    else begin
      let f0, f1 = Aig.fanins aig id in
      let v l w =
        let x = sig_of.(Aig.node_of l).(w) in
        if Aig.is_complement l then lnot x land word_mask else x
      in
      for w = 0 to sim_words - 1 do
        sig_of.(id).(w) <- v f0 w land v f1 w
      done
    end
  done;
  sig_of

(* Single-pattern simulation: the value of every node under [pi_values]. *)
let simulate_one aig pi_values =
  let n = Aig.size aig in
  let values = Array.make n false in
  for id = 1 to n - 1 do
    if Aig.is_pi aig id then values.(id) <- pi_values.(Aig.pi_index aig id)
    else begin
      let f0, f1 = Aig.fanins aig id in
      let v l = values.(Aig.node_of l) <> Aig.is_complement l in
      values.(id) <- v f0 && v f1
    end
  done;
  values

let reduce ?(seed = 97) ?(merge_budget = merge_budget) aig =
  let n = Aig.size aig in
  let sig_of = simulate aig ~seed in
  (* Normalization phase per node: complement-equivalent nodes share a
     class.  The phase is fixed by the initial signature and never changes
     (refinement patterns are compared phase-relative). *)
  let phase = Array.init n (fun id -> sig_of.(id).(0) land 1) in
  (* Initial candidate classes: nodes with equal normalized signatures. *)
  let class_of = Array.make n (-1) in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let n_classes = ref 0 in
  let tbl = Hashtbl.create (2 * n) in
  for id = 0 to n - 1 do
    let key =
      Array.to_list
        (Array.map
           (fun w -> if phase.(id) = 1 then lnot w land word_mask else w)
           sig_of.(id))
    in
    let c =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
          let c = !n_classes in
          incr n_classes;
          Hashtbl.add tbl key c;
          c
    in
    class_of.(id) <- c;
    Hashtbl.replace members c
      (id :: (try Hashtbl.find members c with Not_found -> []))
  done;
  let keys = Hashtbl.fold (fun c ms acc -> (c, ms) :: acc) members [] in
  List.iter (fun (c, ms) -> Hashtbl.replace members c (List.rev ms)) keys;
  (* Split every class along one distinguishing pattern. *)
  let refine pi_values =
    let values = simulate_one aig pi_values in
    let nv id = values.(id) <> (phase.(id) = 1) in
    let split c ms =
      let zeros, ones = List.partition (fun id -> not (nv id)) ms in
      match (zeros, ones) with
      | [], _ | _, [] -> ()
      | _ ->
          Hashtbl.replace members c zeros;
          let c' = !n_classes in
          incr n_classes;
          Hashtbl.replace members c' ones;
          List.iter (fun id -> class_of.(id) <- c') ones
    in
    let snapshot = Hashtbl.fold (fun c ms acc -> (c, ms) :: acc) members [] in
    List.iter (fun (c, ms) -> split c ms) snapshot
  in
  (* Rebuild in topological (id) order.  [subl] is the image literal of
     each processed node; merging picks the first already-processed class
     member that the SAT solver proves equal. *)
  let dst = Aig.create () in
  let subl = Array.make n Aig.const0 in
  let nimg id = subl.(id) lxor phase.(id) in
  (* Primary inputs of [dst] are created in the same order as [aig]'s, so
     PI k of the original reads the model value of PI k of [dst]. *)
  let model_pattern model =
    let pat = Array.make (Aig.num_pis aig) false in
    for id = 1 to n - 1 do
      if Aig.is_pi aig id then begin
        let l = subl.(id) in
        pat.(Aig.pi_index aig id) <-
          model.(Aig.node_of l) <> Aig.is_complement l
      end
    done;
    pat
  in
  for id = 1 to n - 1 do
    if Aig.is_pi aig id then subl.(id) <- Aig.add_pi dst
    else begin
      let f0, f1 = Aig.fanins aig id in
      let map l = subl.(Aig.node_of l) lxor (l land 1) in
      let fresh = Aig.and_ dst (map f0) (map f1) in
      let nfresh = fresh lxor phase.(id) in
      (* Try to merge with processed members of the current class; a
         refuting model refines the classes, after which the candidate
         list is recomputed from the (smaller) new class. *)
      let merged = ref false in
      let finished = ref false in
      while not !finished do
        let candidates =
          List.filter (fun m -> m < id)
            (try Hashtbl.find members class_of.(id) with Not_found -> [])
        in
        let rec go = function
          | [] -> finished := true
          | m :: rest -> (
              if nimg m = nfresh then begin
                subl.(id) <- fresh;
                merged := true;
                finished := true
              end
              else
                let cnf = Cnf.of_inequiv dst (nimg m) nfresh in
                match
                  Sat.solve ~max_conflicts:merge_budget
                    ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses
                with
                | Sat.Unsat ->
                    subl.(id) <- nimg m lxor phase.(id);
                    merged := true;
                    finished := true
                | Sat.Unknown -> go rest
                | Sat.Sat model ->
                    (* [m] and [id] genuinely differ: refine and retry
                       against the node's reduced class. *)
                    refine (model_pattern model))
        in
        go candidates
      done;
      if not !merged then subl.(id) <- fresh
    end
  done;
  (dst, fun l -> subl.(Aig.node_of l) lxor (l land 1))
