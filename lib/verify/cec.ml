(* Formal combinational equivalence checking between two netlists.

   Sequential designs are handled by the standard flop-correspondence
   reduction: every flow stage preserves primary-input, primary-output and
   flop *order*, so flop k of the reference corresponds to flop k of the
   candidate.  Flop Q pins become shared pseudo-primary-inputs and flop D
   pins become pseudo-primary-outputs; proving the resulting combinational
   (transition + output) functions equal proves sequential equivalence from
   the common all-zero reset state.

   Both netlists are replayed into one shared structurally-hashed AIG, so
   any logic the flow left untouched strashes to the *same* literal and
   falls out of the miter for free; only genuinely restructured cones reach
   the SAT solver.  The miter (OR of XORs of corresponding outputs) is
   Tseitin-encoded and decided by the CDCL solver in {!Sat}: UNSAT is a
   proof of equivalence, SAT yields a concrete distinguishing input
   vector.

   A monolithic miter over an arithmetic design (the FPU's 8x8 multiplier)
   can defeat CDCL outright, so the direct solve gets a conflict budget;
   if it runs out, the shared AIG is first reduced by simulation-guided
   SAT sweeping ({!Sweep}), which merges internally equivalent nodes one
   small proof at a time, and the (now near-trivial) miter is re-formed
   over the swept AIG and decided without a budget. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Aig = Vpga_aig.Aig

type counterexample = {
  root : int; (* index among POs, then flop D pins *)
  root_is_flop : bool;
  inputs : bool array; (* values over PIs, then flop Q pins *)
}

type verdict = Equivalent | Inequivalent of counterexample

type bounded_verdict =
  | Proved
  | Refuted of counterexample
  | Undecided (* conflict budget exhausted at every pipeline step *)

(* Replay [nl] into [aig], using [in_lits] for its primary inputs followed
   by its flop Q pins.  Returns the output literals: POs first, then flop D
   pins (matching [Aig.of_netlist]'s root convention). *)
let replay aig nl in_lits =
  let n = Netlist.size nl in
  let lit_of = Array.make n (-1) in
  List.iteri (fun k i -> lit_of.(i) <- in_lits.(k)) (Netlist.inputs nl);
  let npi = List.length (Netlist.inputs nl) in
  List.iteri (fun k i -> lit_of.(i) <- in_lits.(npi + k)) (Netlist.flops nl);
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    match node.Netlist.kind with
    | Kind.Input | Kind.Dff | Kind.Output -> ()
    | Kind.Const b -> lit_of.(i) <- (if b then Aig.const1 else Aig.const0)
    | k ->
        let args = Array.map (fun f -> lit_of.(f)) node.Netlist.fanins in
        if Array.exists (fun l -> l < 0) args then
          invalid_arg "Cec.replay: fanin not yet converted";
        lit_of.(i) <- Aig.add_fn aig (Kind.fn k) args
  done;
  List.map (fun o -> lit_of.((Netlist.node nl o).Netlist.fanins.(0)))
    (Netlist.outputs nl)
  @ List.map
      (fun f ->
        let d = (Netlist.node nl f).Netlist.fanins.(0) in
        if d < 0 then invalid_arg "Cec.replay: unconnected flop";
        lit_of.(d))
      (Netlist.flops nl)

let same_interface a b =
  List.length (Netlist.inputs a) = List.length (Netlist.inputs b)
  && List.length (Netlist.outputs a) = List.length (Netlist.outputs b)
  && List.length (Netlist.flops a) = List.length (Netlist.flops b)

(* The decision pipeline, optionally bounded: [budget = Some mc] caps
   total effort (direct solve, per-merge sweeping proofs, and the final
   post-sweep solve all run under [mc] conflicts) and may come back
   [Undecided]; [budget = None] is the unbounded pipeline of {!check},
   whose final solve cannot time out. *)
let decide budget a b =
  if not (same_interface a b) then
    invalid_arg "Cec.check: interface mismatch (PI/PO/flop counts differ)";
  let npi = List.length (Netlist.inputs a) in
  let nff = List.length (Netlist.flops a) in
  let npo = List.length (Netlist.outputs a) in
  let aig = Aig.create () in
  let in_lits = Array.init (npi + nff) (fun _ -> Aig.add_pi aig) in
  let roots_a = replay aig a in_lits in
  let roots_b = replay aig b in_lits in
  let miter =
    List.fold_left2
      (fun acc la lb -> Aig.or_ aig acc (Aig.xor_ aig la lb))
      Aig.const0 roots_a roots_b
  in
  let counterexample inputs =
    (* Locate the first differing root under [inputs]. *)
    let rec find k ra rb =
      match (ra, rb) with
      | la :: ra', lb :: rb' ->
          if Aig.eval aig inputs la <> Aig.eval aig inputs lb then k
          else find (k + 1) ra' rb'
      | _ -> invalid_arg "Cec.check: SAT model does not distinguish outputs"
    in
    let k = find 0 roots_a roots_b in
    Refuted
      { root = (if k < npo then k else k - npo); root_is_flop = k >= npo; inputs }
  in
  let model_inputs model subst =
    Array.map
      (fun l ->
        let l' = subst l in
        model.(Aig.node_of l') <> Aig.is_complement l')
      in_lits
  in
  let direct_budget =
    match budget with Some mc -> min mc 2_000 | None -> 2_000
  in
  if miter = Aig.const0 then Proved
  else if miter = Aig.const1 then
    counterexample (Array.make (npi + nff) false)
  else begin
    let cnf = Cnf.of_cone aig miter in
    match
      Sat.solve ~max_conflicts:direct_budget ~nvars:cnf.Cnf.nvars
        cnf.Cnf.clauses
    with
    | Sat.Unsat -> Proved
    | Sat.Sat model -> counterexample (model_inputs model (fun l -> l))
    | Sat.Unknown -> begin
        (* Budget exhausted: sweep internal equivalences, then re-decide.
           The substitution is exact (every merge is SAT-proven), so a
           verdict on the swept miter transfers to the original. *)
        let swept, subst =
          Sweep.reduce
            ?merge_budget:(Option.map (fun mc -> min mc 4_000) budget)
            aig
        in
        let miter' =
          List.fold_left2
            (fun acc la lb ->
              Aig.or_ swept acc (Aig.xor_ swept (subst la) (subst lb)))
            Aig.const0 roots_a roots_b
        in
        if miter' = Aig.const0 then Proved
        else if miter' = Aig.const1 then
          counterexample (Array.make (npi + nff) false)
        else
          let cnf = Cnf.of_cone swept miter' in
          match Sat.solve ?max_conflicts:budget ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses with
          | Sat.Unsat -> Proved
          | Sat.Sat model -> counterexample (model_inputs model subst)
          | Sat.Unknown -> Undecided (* only reachable when bounded *)
      end
  end

let check_bounded ~max_conflicts a b = decide (Some max_conflicts) a b

let check a b =
  match decide None a b with
  | Proved -> Equivalent
  | Refuted cex -> Inequivalent cex
  | Undecided -> assert false (* unbounded final solve cannot time out *)

(* Hard-failure wrapper used by the flow gates. *)
let prove ~stage reference candidate =
  match check reference candidate with
  | Equivalent -> ()
  | Inequivalent { root; root_is_flop; _ } ->
      failwith
        (Printf.sprintf
           "%s: SAT equivalence check refuted design %s (%s %d differs)"
           stage
           (Netlist.design_name reference)
           (if root_is_flop then "flop D pin" else "output")
           root)
