(* Structured diagnostics shared by every verification pass: lint, formal
   equivalence, and the physical invariant checkers.  A diagnostic carries a
   severity, a stable machine-readable code (for tests and tooling), the
   offending node ids (netlist ids, tile indices, or net indices depending on
   the pass), and a human-readable message. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string; (* stable kebab-case identifier, e.g. "comb-loop" *)
  message : string;
  nodes : int list; (* provenance: ids in the checked structure *)
}

let make ?(nodes = []) severity code message = { severity; code; message; nodes }

let error ?nodes code fmt =
  Format.kasprintf (fun m -> make ?nodes Error code m) fmt

let warning ?nodes code fmt =
  Format.kasprintf (fun m -> make ?nodes Warning code m) fmt

let info ?nodes code fmt = Format.kasprintf (fun m -> make ?nodes Info code m) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds

let by_code code ds = List.filter (fun d -> d.code = code) ds
let has_code code ds = List.exists (fun d -> d.code = code) ds

(* Errors first, then warnings, then infos; stable within a severity. *)
let sort ds =
  let rank d =
    match d.severity with Error -> 0 | Warning -> 1 | Info -> 2
  in
  List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) ds

let to_string d =
  let nodes =
    match d.nodes with
    | [] -> ""
    | ns ->
        Printf.sprintf " [%s]"
          (String.concat "," (List.map string_of_int ns))
  in
  Printf.sprintf "%s(%s): %s%s" (severity_name d.severity) d.code d.message
    nodes

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let n sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." (n Error)
    (n Warning) (n Info)

(* Raise [Failure] when any diagnostic in [ds] is an error: the verification
   entry points use this to turn structured reports into hard flow stops. *)
let fail_on_errors ~stage ds =
  match errors ds with
  | [] -> ()
  | errs ->
      failwith
        (Printf.sprintf "%s: %d verification error(s): %s" stage
           (List.length errs)
           (String.concat "; " (List.map to_string errs)))
