(* Netlist lint: static well-formedness checks beyond the basic
   [Netlist.validate] structural pass.

   - combinational loops, found as non-trivial SCCs of the combinational
     edge graph (flop D pins are sequential boundaries and cut the graph);
   - undriven pins: dangling fanin ids, unconnected flop D inputs;
   - arity mismatches between a node's kind and its fanin list;
   - dead logic: nodes from which no primary output is reachable, even
     through flop boundaries (the output-unreachable cone);
   - unused primary inputs (a warning-level special case of dead logic);
   - duplicate primary input / output names;
   - missing primary outputs.

   Every finding is a structured {!Diag.t} carrying the offending node ids,
   so callers can map a report back to netlist provenance. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Dataflow = Vpga_dataflow.Dataflow

let in_range nl f = f >= 0 && f < Netlist.size nl

(* Combinational fanins: a flop's D edge is a sequential boundary.  Dangling
   ids are dropped here (reported separately by the structural pass). *)
let comb_fanins nl n =
  match n.Netlist.kind with
  | Kind.Dff -> [||]
  | _ -> Array.of_list (List.filter (in_range nl) (Array.to_list n.Netlist.fanins))

(* Combinational loops are the cyclic SCCs of the combinational edge graph.
   The iterative Tarjan traversal itself now lives in {!Dataflow} (shared
   with the analysis passes); the successor function here reproduces the
   historical edge set exactly, so reported components and their order are
   unchanged. *)
let combinational_sccs nl =
  Dataflow.cyclic_sccs ~n:(Netlist.size nl)
    ~succ:(fun v -> comb_fanins nl (Netlist.node nl v))

(* Nodes from which some primary output is reachable, traversing fanins from
   the POs and crossing flop D edges (a flop that only feeds flops feeding a
   PO is alive). *)
let live_cone nl =
  Dataflow.reachable ~n:(Netlist.size nl) ~roots:(Netlist.outputs nl)
    ~next:(fun i -> (Netlist.node nl i).Netlist.fanins)

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (id, name) ->
      if Hashtbl.mem seen name then Some (id, name)
      else begin
        Hashtbl.add seen name id;
        None
      end)
    names

let io_names nl ids =
  List.map
    (fun i ->
      (i, Option.value ~default:(Printf.sprintf "<anon%d>" i)
            (Netlist.node nl i).Netlist.name))
    ids

let run nl =
  let n = Netlist.size nl in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Structural: arity and dangling / undriven pins. *)
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    if
      Array.length node.Netlist.fanins <> Kind.arity node.Netlist.kind
      && node.Netlist.kind <> Kind.Output
    then
      add
        (Diag.error ~nodes:[ i ] "arity-mismatch"
           "node %d (%s): has %d fanins, kind expects %d" i
           (Kind.name node.Netlist.kind)
           (Array.length node.Netlist.fanins)
           (Kind.arity node.Netlist.kind));
    Array.iteri
      (fun k f ->
        if not (in_range nl f) then
          if node.Netlist.kind = Kind.Dff && f < 0 then
            add
              (Diag.error ~nodes:[ i ] "undriven-pin"
                 "flop %d: D input is unconnected" i)
          else
            add
              (Diag.error ~nodes:[ i ] "undriven-pin"
                 "node %d (%s): fanin %d references missing driver %d" i
                 (Kind.name node.Netlist.kind) k f))
      node.Netlist.fanins
  done;
  (* Interface checks. *)
  if Netlist.outputs nl = [] then
    add (Diag.error "no-outputs" "netlist has no primary outputs");
  List.iter
    (fun (id, name) ->
      add
        (Diag.error ~nodes:[ id ] "dup-name"
           "duplicate primary input name %S" name))
    (duplicates (io_names nl (Netlist.inputs nl)));
  List.iter
    (fun (id, name) ->
      add
        (Diag.error ~nodes:[ id ] "dup-name"
           "duplicate primary output name %S" name))
    (duplicates (io_names nl (Netlist.outputs nl)));
  (* Combinational loops. *)
  List.iter
    (fun comp ->
      add
        (Diag.error ~nodes:comp "comb-loop"
           "combinational loop through %d node(s)" (List.length comp)))
    (combinational_sccs nl);
  (* Dead logic: output-unreachable cones. *)
  let live = live_cone nl in
  let dead_gates = ref [] and dead_inputs = ref [] in
  for i = n - 1 downto 0 do
    if not live.(i) then
      match (Netlist.node nl i).Netlist.kind with
      | Kind.Input -> dead_inputs := i :: !dead_inputs
      | Kind.Output -> ()
      | _ -> dead_gates := i :: !dead_gates
  done;
  if !dead_gates <> [] then
    add
      (Diag.warning ~nodes:!dead_gates "dead-logic"
         "%d node(s) reach no primary output" (List.length !dead_gates));
  if !dead_inputs <> [] then
    add
      (Diag.warning ~nodes:!dead_inputs "unused-input"
         "%d primary input(s) reach no primary output"
         (List.length !dead_inputs));
  Diag.sort (List.rev !diags)

let check ~stage nl = Diag.fail_on_errors ~stage (run nl)
