(* Netlist lint: static well-formedness checks beyond the basic
   [Netlist.validate] structural pass.

   - combinational loops, found as non-trivial SCCs of the combinational
     edge graph (flop D pins are sequential boundaries and cut the graph);
   - undriven pins: dangling fanin ids, unconnected flop D inputs;
   - arity mismatches between a node's kind and its fanin list;
   - dead logic: nodes from which no primary output is reachable, even
     through flop boundaries (the output-unreachable cone);
   - unused primary inputs (a warning-level special case of dead logic);
   - duplicate primary input / output names;
   - missing primary outputs.

   Every finding is a structured {!Diag.t} carrying the offending node ids,
   so callers can map a report back to netlist provenance. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

let in_range nl f = f >= 0 && f < Netlist.size nl

(* Combinational fanins: a flop's D edge is a sequential boundary.  Dangling
   ids are dropped here (reported separately by the structural pass). *)
let comb_fanins nl n =
  match n.Netlist.kind with
  | Kind.Dff -> [||]
  | _ -> Array.of_list (List.filter (in_range nl) (Array.to_list n.Netlist.fanins))

(* Tarjan's strongly-connected components over the combinational edge graph,
   iterative so deep netlists cannot overflow the stack.  Returns only the
   cyclic SCCs: components of size > 1, or single nodes with a self-edge. *)
let combinational_sccs nl =
  let n = Netlist.size nl in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let visit root =
    (* Explicit DFS stack: (node, fanins, next fanin position). *)
    let work = ref [] in
    let push v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      on_stack.(v) <- true;
      work := (v, comb_fanins nl (Netlist.node nl v), ref 0) :: !work
    in
    push root;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, fis, pos) :: rest ->
          if !pos < Array.length fis then begin
            let w = fis.(!pos) in
            incr pos;
            if index.(w) < 0 then push w
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            work := rest;
            (match rest with
            | (parent, _, _) :: _ ->
                lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    if w = v then w :: acc else pop (w :: acc)
              in
              let comp = pop [] in
              let cyclic =
                match comp with
                | [ w ] ->
                    Array.exists (fun f -> f = w)
                      (comb_fanins nl (Netlist.node nl w))
                | _ -> List.length comp > 1
              in
              if cyclic then sccs := comp :: !sccs
            end
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  List.rev !sccs

(* Nodes from which some primary output is reachable, traversing fanins from
   the POs and crossing flop D edges (a flop that only feeds flops feeding a
   PO is alive). *)
let live_cone nl =
  let n = Netlist.size nl in
  let live = Array.make n false in
  let work = ref (Netlist.outputs nl) in
  while !work <> [] do
    match !work with
    | [] -> ()
    | i :: rest ->
        work := rest;
        if not live.(i) then begin
          live.(i) <- true;
          Array.iter
            (fun f -> if in_range nl f && not live.(f) then work := f :: !work)
            (Netlist.node nl i).Netlist.fanins
        end
  done;
  live

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (id, name) ->
      if Hashtbl.mem seen name then Some (id, name)
      else begin
        Hashtbl.add seen name id;
        None
      end)
    names

let io_names nl ids =
  List.map
    (fun i ->
      (i, Option.value ~default:(Printf.sprintf "<anon%d>" i)
            (Netlist.node nl i).Netlist.name))
    ids

let run nl =
  let n = Netlist.size nl in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Structural: arity and dangling / undriven pins. *)
  for i = 0 to n - 1 do
    let node = Netlist.node nl i in
    if
      Array.length node.Netlist.fanins <> Kind.arity node.Netlist.kind
      && node.Netlist.kind <> Kind.Output
    then
      add
        (Diag.error ~nodes:[ i ] "arity-mismatch"
           "node %d (%s): has %d fanins, kind expects %d" i
           (Kind.name node.Netlist.kind)
           (Array.length node.Netlist.fanins)
           (Kind.arity node.Netlist.kind));
    Array.iteri
      (fun k f ->
        if not (in_range nl f) then
          if node.Netlist.kind = Kind.Dff && f < 0 then
            add
              (Diag.error ~nodes:[ i ] "undriven-pin"
                 "flop %d: D input is unconnected" i)
          else
            add
              (Diag.error ~nodes:[ i ] "undriven-pin"
                 "node %d (%s): fanin %d references missing driver %d" i
                 (Kind.name node.Netlist.kind) k f))
      node.Netlist.fanins
  done;
  (* Interface checks. *)
  if Netlist.outputs nl = [] then
    add (Diag.error "no-outputs" "netlist has no primary outputs");
  List.iter
    (fun (id, name) ->
      add
        (Diag.error ~nodes:[ id ] "dup-name"
           "duplicate primary input name %S" name))
    (duplicates (io_names nl (Netlist.inputs nl)));
  List.iter
    (fun (id, name) ->
      add
        (Diag.error ~nodes:[ id ] "dup-name"
           "duplicate primary output name %S" name))
    (duplicates (io_names nl (Netlist.outputs nl)));
  (* Combinational loops. *)
  List.iter
    (fun comp ->
      add
        (Diag.error ~nodes:comp "comb-loop"
           "combinational loop through %d node(s)" (List.length comp)))
    (combinational_sccs nl);
  (* Dead logic: output-unreachable cones. *)
  let live = live_cone nl in
  let dead_gates = ref [] and dead_inputs = ref [] in
  for i = n - 1 downto 0 do
    if not live.(i) then
      match (Netlist.node nl i).Netlist.kind with
      | Kind.Input -> dead_inputs := i :: !dead_inputs
      | Kind.Output -> ()
      | _ -> dead_gates := i :: !dead_gates
  done;
  if !dead_gates <> [] then
    add
      (Diag.warning ~nodes:!dead_gates "dead-logic"
         "%d node(s) reach no primary output" (List.length !dead_gates));
  if !dead_inputs <> [] then
    add
      (Diag.warning ~nodes:!dead_inputs "unused-input"
         "%d primary input(s) reach no primary output"
         (List.length !dead_inputs));
  Diag.sort (List.rev !diags)

let check ~stage nl = Diag.fail_on_errors ~stage (run nl)
