(* Physical invariant checkers for the back half of the flow, generalizing
   the ad-hoc [Detail.validate] to every physical stage:

   - placement legality: every item has finite coordinates inside the die;
   - PLB packing coverage: every packable netlist node is assigned exactly
     one in-range tile, every tile's contents satisfy the architecture's
     resource/pin capacities ([Packer.fits]), and every mapped cell's
     function is actually in the feasibility set of the configuration it
     claims ([Config.feasible]);
   - routing connectivity: each global route is a connected *tree* (no
     cycles, one component) spanning exactly its net's pin bins, and the
     per-edge channel capacities hold; the detailed-routing track
     assignment is delegated to [Detail.validate] and reported through the
     same diagnostics. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Placement = Vpga_place.Placement
module Quadrisect = Vpga_pack.Quadrisect
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail

(* --- placement legality --- *)

let check_placement ?(eps = 1e-6) (pl : Placement.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let bad_x = ref [] and bad_y = ref [] and not_placed = ref [] in
  Array.iteri
    (fun id x ->
      let y = pl.Placement.y.(id) in
      if not (Float.is_finite x && Float.is_finite y) then
        not_placed := id :: !not_placed
      else begin
        if x < -.eps || x > pl.Placement.die_w +. eps then bad_x := id :: !bad_x;
        if y < -.eps || y > pl.Placement.die_h +. eps then bad_y := id :: !bad_y
      end)
    pl.Placement.x;
  if !not_placed <> [] then
    add
      (Diag.error ~nodes:(List.rev !not_placed) "unplaced"
         "%d item(s) have no finite placement" (List.length !not_placed));
  if !bad_x <> [] then
    add
      (Diag.error ~nodes:(List.rev !bad_x) "outside-die"
         "%d item(s) placed outside the die in x (die %.1f x %.1f)"
         (List.length !bad_x) pl.Placement.die_w pl.Placement.die_h);
  if !bad_y <> [] then
    add
      (Diag.error ~nodes:(List.rev !bad_y) "outside-die"
         "%d item(s) placed outside the die in y (die %.1f x %.1f)"
         (List.length !bad_y) pl.Placement.die_w pl.Placement.die_h);
  Diag.sort (List.rev !diags)

(* --- PLB packing coverage --- *)

let check_packing ?(dead_tile = fun _ -> false) (q : Quadrisect.t) nl =
  let arch = q.Quadrisect.arch in
  let n_tiles = q.Quadrisect.cols * q.Quadrisect.rows in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let tile_items = Array.make (max 1 n_tiles) [] in
  Array.iter
    (fun node ->
      let id = node.Netlist.id in
      let tile = q.Quadrisect.tile_of_node.(id) in
      match Quadrisect.item_of_node node with
      | None ->
          if tile >= 0 then
            add
              (Diag.error ~nodes:[ id ] "spurious-tile"
                 "non-packable node %d (%s) is assigned tile %d" id
                 (Kind.name node.Netlist.kind) tile)
      | Some item ->
          if tile < 0 then
            add
              (Diag.error ~nodes:[ id ] "uncovered"
                 "packable node %d (%s) is not assigned to any tile" id
                 (Kind.name node.Netlist.kind))
          else if tile >= n_tiles then
            add
              (Diag.error ~nodes:[ id ] "tile-range"
                 "node %d assigned to tile %d outside the %dx%d array" id tile
                 q.Quadrisect.cols q.Quadrisect.rows)
          else begin
            if dead_tile tile then
              add
                (Diag.error ~nodes:[ id ] "defect-dead-tile"
                   "node %d is packed into defective tile %d" id tile);
            tile_items.(tile) <- (id, item) :: tile_items.(tile);
            (* The configuration must actually implement the node's
               function. *)
            match node.Netlist.kind with
            | Kind.Mapped { cell; fn } -> (
                match Config.of_cell_name cell with
                | Some cfg ->
                    if
                      not (Config.feasible cfg (Bfun.extend fn ~arity:3))
                    then
                      add
                        (Diag.error ~nodes:[ id ] "infeasible-config"
                           "node %d: function %s is not implementable by \
                            configuration %s"
                           id (Bfun.to_string fn) (Config.name cfg))
                | None -> ())
            | _ -> ()
          end)
    (Netlist.nodes nl);
  Array.iteri
    (fun tile items ->
      if items <> [] && not (Packer.fits arch (List.map snd items)) then
        add
          (Diag.error ~nodes:(List.map fst items) "tile-overflow"
             "tile %d exceeds the %s capacity with %d item(s)" tile
             arch.Arch.name (List.length items)))
    tile_items;
  Diag.sort (List.rev !diags)

(* --- routing connectivity --- *)

(* Union-find over grid bins. *)
let uf_find parent b =
  let rec go b = if parent.(b) = b then b else go parent.(b) in
  let root = go b in
  let rec compress b =
    if parent.(b) <> root then begin
      let next = parent.(b) in
      parent.(b) <- root;
      compress next
    end
  in
  compress b;
  root

let check_route grid ~net_index ~pins ~edges =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_bins = Grid.num_bins grid in
  let n_edges = Grid.num_edges grid in
  let parent = Array.init n_bins Fun.id in
  let touched = Hashtbl.create 16 in
  let cycle = ref false in
  List.iter
    (fun e ->
      if e < 0 || e >= n_edges then
        add
          (Diag.error ~nodes:[ net_index ] "bad-edge"
             "net %d: route uses out-of-range edge %d" net_index e)
      else begin
        let a, b = Detail.bins_of grid e in
        Hashtbl.replace touched a ();
        Hashtbl.replace touched b ();
        let ra = uf_find parent a and rb = uf_find parent b in
        if ra = rb then cycle := true else parent.(ra) <- rb
      end)
    edges;
  if !cycle then
    add
      (Diag.error ~nodes:[ net_index ] "route-cycle"
         "net %d: route edges contain a cycle (not a tree)" net_index);
  (* Spanning: every pin bin must be in the single connected component. *)
  (match pins with
  | [] -> ()
  | p0 :: rest ->
      let r0 = uf_find parent p0 in
      List.iter
        (fun p ->
          if uf_find parent p <> r0 then
            add
              (Diag.error ~nodes:[ net_index ] "route-disconnected"
                 "net %d: route does not connect all pin bins" net_index))
        rest);
  (* Exactly its net's pins: edges must not wander into bins that connect
     nothing (a tree on the touched bins has |edges| = |bins| - 1; with the
     cycle check above this is equivalent, but it catches detached edge
     clumps that happen to be acyclic). *)
  let n_touched = Hashtbl.length touched in
  if (not !cycle) && edges <> [] && List.length edges <> n_touched - 1 then
    add
      (Diag.error ~nodes:[ net_index ] "route-forest"
         "net %d: %d edges over %d bins is not a single tree" net_index
         (List.length edges) n_touched);
  List.rev !diags

let check_routing (r : Pathfinder.result) (pl : Placement.t) =
  let grid = r.Pathfinder.grid in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let usage = Array.make (max 1 (Grid.num_edges grid)) 0 in
  List.iteri
    (fun net_index rt ->
      let pins =
        Array.to_list rt.Router.net
        |> List.map (fun id ->
               Grid.bin_of grid ~x:pl.Placement.x.(id) ~y:pl.Placement.y.(id))
        |> List.sort_uniq Int.compare
      in
      List.iter
        (fun e ->
          if e >= 0 && e < Array.length usage then usage.(e) <- usage.(e) + 1)
        rt.Router.edges;
      diags :=
        List.rev_append
          (check_route grid ~net_index ~pins ~edges:rt.Router.edges)
          !diags)
    r.Pathfinder.routes;
  (* Channel capacities.  When the negotiation itself gave up with leftover
     overflow the result is advertised as such ([final_overflow > 0]); only
     an inconsistency between the claim and the routes is an error. *)
  let over = ref 0 and dead_used = ref 0 in
  Array.iteri
    (fun e u ->
      let cap = Grid.cap grid e in
      over := !over + max 0 (u - cap);
      if cap = 0 && u > 0 then dead_used := !dead_used + u)
    usage;
  if !over > 0 && r.Pathfinder.final_overflow = 0 then
    add
      (Diag.error "capacity"
         "routes exceed channel capacity by %d but the router claimed none"
         !over);
  (* Any crossing of a dead boundary is also counted in [over], so a
     converged result ([final_overflow = 0]) can never hide one; flag the
     defect use explicitly when the claim and the routes disagree. *)
  if !dead_used > 0 && r.Pathfinder.final_overflow = 0 then
    add
      (Diag.error "dead-edge"
         "routes cross defective (dead) boundaries %d time(s) but the \
          router claimed convergence"
         !dead_used);
  if !over <> r.Pathfinder.final_overflow then
    add
      (Diag.warning "overflow-mismatch"
         "recomputed overflow %d differs from reported %d" !over
         r.Pathfinder.final_overflow)
  else if !over > 0 then
    add
      (Diag.info "unrouted-overflow"
         "global routing left %d unit(s) of channel overflow" !over);
  Diag.sort (List.rev !diags)

(* Detailed-routing track assignment, reported as diagnostics. *)
let check_tracks (d : Detail.t) routes =
  match Detail.validate d routes with
  | Ok () -> []
  | Error msg -> [ Diag.error "track-conflict" "%s" msg ]
