(* Tseitin encoding of an AIG cone into CNF.

   The encoding exploits the shared literal convention: an AIG literal
   (2 * node + complement) is used verbatim as a SAT literal over variable
   [node], so no translation table is needed.  Only the cone of the
   requested roots is encoded; nodes outside it stay unconstrained. *)

module Aig = Vpga_aig.Aig

type t = { nvars : int; clauses : int array list }

(* Clauses for c <-> a AND b, with c the positive literal of an AND node. *)
let and_clauses c a b =
  [ [| c lxor 1; a |]; [| c lxor 1; b |]; [| c; a lxor 1; b lxor 1 |] ]

(* Defining clauses for the union of the cones of [roots] under the AIG's
   AND semantics (no root asserted). *)
let cone_clauses aig roots =
  let n = Aig.size aig in
  let visited = Array.make n false in
  let clauses = ref [] in
  let stack = ref (List.map Aig.node_of roots) in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not visited.(id) then begin
          visited.(id) <- true;
          if Aig.is_const id then
            (* Node 0 is constant false. *)
            clauses := [| 1 |] :: !clauses
          else if not (Aig.is_pi aig id) then begin
            let f0, f1 = Aig.fanins aig id in
            clauses := and_clauses (2 * id) f0 f1 @ !clauses;
            stack := Aig.node_of f0 :: Aig.node_of f1 :: !stack
          end
        end
  done;
  !clauses

(* CNF whose models are exactly the assignments of the cone of [root] with
   [root] asserted true. *)
let of_cone aig root =
  { nvars = Aig.size aig; clauses = [| root |] :: cone_clauses aig [ root ] }

(* CNF whose models are exactly the cone assignments under which literals
   [p] and [q] differ: both cones plus the inequality clauses (p or q) and
   (not p or not q).  Used by the SAT sweeper to test a candidate merge
   without materializing an XOR in the AIG. *)
let of_inequiv aig p q =
  {
    nvars = Aig.size aig;
    clauses =
      [| p; q |] :: [| p lxor 1; q lxor 1 |] :: cone_clauses aig [ p; q ];
  }
