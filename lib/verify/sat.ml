(* A small self-contained CDCL SAT solver for the combinational equivalence
   checker: two-watched-literal unit propagation, first-UIP conflict
   analysis with clause learning and non-chronological backjumping, VSIDS
   variable activities, phase saving, and geometric restarts.

   Literal encoding matches the AIG's: variable [v] appears as literal
   [2*v] (positive) and [2*v+1] (negated), so an AIG literal is directly a
   SAT literal over the AIG node id.  An assignment maps variables to
   booleans; a clause is an int array of literals. *)

type result = Sat of bool array | Unsat | Unknown

type solver = {
  nvars : int;
  mutable clauses : int array array; (* problem + learned clauses *)
  mutable n_clauses : int;
  watches : int list array; (* watches.(l) = clauses watching literal l *)
  assign : int array; (* -1 unassigned / 0 false / 1 true, per var *)
  level : int array; (* decision level, per var *)
  reason : int array; (* antecedent clause index or -1, per var *)
  trail : int array;
  mutable trail_n : int;
  mutable qhead : int;
  trail_lim : int array; (* trail length at each decision level *)
  mutable dlevel : int;
  activity : float array;
  mutable var_inc : float;
  phase : bool array; (* saved phase per var *)
  seen : bool array; (* scratch for conflict analysis *)
  (* effort counters, reported through [solve_stats] and the ambient
     trace *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_props : int;
}

let var l = l lsr 1
let neg l = l lxor 1

(* 1 true / 0 false / -1 unassigned. *)
let lit_value s l =
  let a = s.assign.(var l) in
  if a < 0 then -1 else a lxor (l land 1)

let create nvars =
  {
    nvars;
    clauses = Array.make 64 [||];
    n_clauses = 0;
    watches = Array.make (max 2 (2 * nvars)) [];
    assign = Array.make (max 1 nvars) (-1);
    level = Array.make (max 1 nvars) 0;
    reason = Array.make (max 1 nvars) (-1);
    trail = Array.make (max 1 nvars) 0;
    trail_n = 0;
    qhead = 0;
    trail_lim = Array.make (max 1 (nvars + 1)) 0;
    dlevel = 0;
    activity = Array.make (max 1 nvars) 0.0;
    var_inc = 1.0;
    phase = Array.make (max 1 nvars) false;
    seen = Array.make (max 1 nvars) false;
    n_conflicts = 0;
    n_decisions = 0;
    n_props = 0;
  }

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

let enqueue s l reason =
  s.n_props <- s.n_props + 1;
  let v = var l in
  s.assign.(v) <- 1 - (l land 1);
  s.level.(v) <- s.dlevel;
  s.reason.(v) <- reason;
  s.phase.(v) <- l land 1 = 0;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

let add_clause_watched s c =
  if s.n_clauses >= Array.length s.clauses then begin
    let bigger = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 bigger 0 s.n_clauses;
    s.clauses <- bigger
  end;
  let ci = s.n_clauses in
  s.clauses.(ci) <- c;
  s.n_clauses <- ci + 1;
  s.watches.(c.(0)) <- ci :: s.watches.(c.(0));
  s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
  ci

(* Unit propagation.  Returns the index of a conflicting clause, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    let falsified = neg p in
    let ws = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest -> (
          let c = s.clauses.(ci) in
          (* Normalize: the falsified literal sits at position 1. *)
          if c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if lit_value s c.(0) = 1 then begin
            (* Clause already satisfied by the other watch. *)
            s.watches.(falsified) <- ci :: s.watches.(falsified);
            go rest
          end
          else
            (* Look for a replacement watch. *)
            let len = Array.length c in
            let rec find k =
              if k >= len then -1
              else if lit_value s c.(k) <> 0 then k
              else find (k + 1)
            in
            match find 2 with
            | k when k >= 0 ->
                c.(1) <- c.(k);
                c.(k) <- falsified;
                s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
                go rest
            | _ ->
                s.watches.(falsified) <- ci :: s.watches.(falsified);
                if lit_value s c.(0) = 0 then begin
                  (* Conflict: restore the remaining watch list. *)
                  conflict := ci;
                  List.iter
                    (fun cj ->
                      s.watches.(falsified) <- cj :: s.watches.(falsified))
                    rest
                end
                else begin
                  enqueue s c.(0) ci;
                  go rest
                end)
    in
    go ws
  done;
  !conflict

(* First-UIP conflict analysis.  Returns the learned clause (asserting
   literal first, a maximal-level literal second) and the backjump level. *)
let analyze s confl =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (s.trail_n - 1) in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length c - 1 do
      let q = c.(k) in
      let v = var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump s v;
        if s.level.(v) >= s.dlevel then incr counter
        else learned := q :: !learned
      end
    done;
    (* Next marked literal on the trail. *)
    while not s.seen.(var s.trail.(!index)) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    s.seen.(var !p) <- false;
    decr counter;
    if !counter > 0 then confl := s.reason.(var !p) else continue := false
  done;
  let learned = !learned in
  List.iter (fun q -> s.seen.(var q) <- false) learned;
  let asserting = neg !p in
  (* Backjump to the highest level among the remaining literals; put one
     literal of that level in watch position 1. *)
  match learned with
  | [] -> ([| asserting |], 0)
  | _ ->
      let blevel =
        List.fold_left (fun acc q -> max acc s.level.(var q)) 0 learned
      in
      let rest =
        match
          List.partition (fun q -> s.level.(var q) = blevel) learned
        with
        | at :: ats, others -> at :: (ats @ others)
        | [], _ -> assert false
      in
      (Array.of_list (asserting :: rest), blevel)

let cancel_until s blevel =
  if s.dlevel > blevel then begin
    let target = s.trail_lim.(blevel) in
    for k = s.trail_n - 1 downto target do
      let v = var s.trail.(k) in
      s.assign.(v) <- -1;
      s.reason.(v) <- -1
    done;
    s.trail_n <- target;
    s.qhead <- target;
    s.dlevel <- blevel
  end

(* Branch only over [vars], the variables that occur in the input clauses;
   on CNFs built from a cone of a large AIG most variables never appear,
   and scanning them would dominate the solve. *)
let decide s vars =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  Array.iter
    (fun v ->
      if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
        best := v;
        best_act := s.activity.(v)
      end)
    vars;
  match !best with
  | -1 -> false
  | v ->
      s.n_decisions <- s.n_decisions + 1;
      s.trail_lim.(s.dlevel) <- s.trail_n;
      s.dlevel <- s.dlevel + 1;
      enqueue s ((2 * v) lor (if s.phase.(v) then 0 else 1)) (-1);
      true

exception Trivially_unsat

(* Preprocess one input clause: drop duplicate and false literals,
   recognize tautologies and satisfied clauses.  Level-0 units are enqueued
   directly.  Returns [None] when the clause needs no watching. *)
let simplify_clause s c =
  let lits = ref [] in
  let taut = ref false in
  let sat = ref false in
  Array.iter
    (fun l ->
      if l < 0 || var l >= s.nvars then invalid_arg "Sat.solve: bad literal";
      if not (List.mem l !lits) then
        match lit_value s l with
        | 1 -> sat := true
        | 0 -> () (* already false at level 0 *)
        | _ ->
            if List.mem (neg l) !lits then taut := true
            else lits := l :: !lits)
    c;
  if !sat || !taut then None
  else
    match !lits with
    | [] -> raise Trivially_unsat
    | [ l ] ->
        if lit_value s l = 0 then raise Trivially_unsat;
        if lit_value s l < 0 then enqueue s l (-1);
        None
    | lits -> Some (Array.of_list lits)

(* [max_conflicts] bounds the search effort; when exhausted the solver
   answers [Unknown] (used by the SAT sweeper, whose merges are optional).
   Without it the search runs to completion. *)

type stats = { conflicts : int; decisions : int; propagations : int }

let solve_counted ?max_conflicts ~nvars clauses =
  let s = create nvars in
  let vars =
    let mark = Array.make (max 1 nvars) false in
    List.iter
      (Array.iter (fun l ->
           if l >= 0 && var l < nvars then mark.(var l) <- true))
      clauses;
    let acc = ref [] in
    for v = nvars - 1 downto 0 do
      if mark.(v) then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  match
    List.iter
      (fun c ->
        match simplify_clause s c with
        | None -> ()
        | Some c -> ignore (add_clause_watched s c))
      clauses
  with
  | exception Trivially_unsat -> (Unsat, s)
  | () ->
      let restart_limit = ref 100 in
      let conflicts_here = ref 0 in
      let conflicts_total = ref 0 in
      let answer = ref None in
      (* Top-level propagation of input units. *)
      if propagate s >= 0 then (Unsat, s)
      else begin
        while !answer = None do
          let confl = propagate s in
          if confl >= 0 then begin
            incr conflicts_here;
            incr conflicts_total;
            s.n_conflicts <- s.n_conflicts + 1;
            (match max_conflicts with
            | Some limit when !conflicts_total >= limit ->
                answer := Some Unknown
            | _ -> ());
            if !answer <> None then ()
            else if s.dlevel = 0 then answer := Some Unsat
            else begin
              let learned, blevel = analyze s confl in
              cancel_until s blevel;
              decay s;
              if Array.length learned = 1 then enqueue s learned.(0) (-1)
              else begin
                let ci = add_clause_watched s learned in
                enqueue s learned.(0) ci
              end
            end
          end
          else if !conflicts_here >= !restart_limit then begin
            conflicts_here := 0;
            restart_limit := !restart_limit + (!restart_limit / 2);
            cancel_until s 0
          end
          else if not (decide s vars) then
            answer :=
              Some (Sat (Array.map (fun a -> a = 1) (Array.sub s.assign 0 nvars)))
        done;
        match !answer with Some r -> (r, s) | None -> assert false
      end

let stats_of s =
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_props;
  }

(* Every solve reports its effort into the ambient trace's counter
   registry (no-op when tracing is off), so the flow's per-task counters
   see all SAT work — CEC miters and sweeping merge proofs alike. *)
let emit_stats st =
  Vpga_obs.Trace.emit "sat.solves" 1.0;
  Vpga_obs.Trace.emit "sat.conflicts" (float_of_int st.conflicts);
  Vpga_obs.Trace.emit "sat.decisions" (float_of_int st.decisions);
  Vpga_obs.Trace.emit "sat.propagations" (float_of_int st.propagations);
  (* Conflict-rate series: one sample per solve, so a verify stage's
     hardness profile over time is visible, not just its total. *)
  Vpga_obs.Trace.emit_sample "sat.conflicts_per_solve"
    (float_of_int st.conflicts)

let solve_stats ?max_conflicts ~nvars clauses =
  let r, s = solve_counted ?max_conflicts ~nvars clauses in
  let st = stats_of s in
  emit_stats st;
  (r, st)

let solve ?max_conflicts ~nvars clauses =
  fst (solve_stats ?max_conflicts ~nvars clauses)

(* Convenience for tests: check a full assignment against a CNF. *)
let satisfies assignment clauses =
  List.for_all
    (fun c ->
      Array.exists
        (fun l -> assignment.(var l) <> (l land 1 = 1))
        c)
    clauses
