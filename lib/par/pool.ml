(* Fixed worker pool over OCaml 5 domains: a bounded FIFO protected by one
   mutex and two condition variables ([not_empty] for workers, [not_full]
   for producers).  No work stealing — tasks here are whole flow runs, so
   queue contention is negligible next to task cost. *)

type task = Run of { f : unit -> unit; enq_ns : int64 } | Stop

type stats = {
  tasks : int;
  queue_wait_ns : int64;
  busy_ns : int64 array;
  wait_samples_ns : int64 array;
}

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : task Queue.t;
  capacity : int;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
  (* Accounting, guarded by [lock]; touched once per task, so contention
     stays negligible next to task cost. *)
  mutable tasks_run : int;
  mutable wait_ns : int64;
  mutable rwait_samples : int64 list; (* per-task queue wait, newest first *)
  worker_busy_ns : int64 array;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_done : Condition.t;
  mutable state : 'a state;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let rec worker p i =
  Mutex.lock p.lock;
  while Queue.is_empty p.queue do
    Condition.wait p.not_empty p.lock
  done;
  let task = Queue.pop p.queue in
  Condition.signal p.not_full;
  Mutex.unlock p.lock;
  match task with
  | Stop -> ()
  | Run { f; enq_ns } ->
      let deq_ns = Vpga_obs.Clock.now_ns () in
      (* [submit] already captures task exceptions into the future, but a
         worker domain must survive (and keep serving siblings) even if a
         raw task leaks one — a dead worker would strand every queued
         task behind it and leak the domain at shutdown. *)
      (try f () with _ -> ());
      let done_ns = Vpga_obs.Clock.now_ns () in
      Mutex.lock p.lock;
      p.tasks_run <- p.tasks_run + 1;
      p.wait_ns <- Int64.add p.wait_ns (Int64.sub deq_ns enq_ns);
      p.rwait_samples <- Int64.sub deq_ns enq_ns :: p.rwait_samples;
      p.worker_busy_ns.(i) <-
        Int64.add p.worker_busy_ns.(i) (Int64.sub done_ns deq_ns);
      Mutex.unlock p.lock;
      worker p i

let create ?capacity ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let capacity = match capacity with Some c -> c | None -> 2 * jobs in
  if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
  let p =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity;
      workers = [];
      stopped = false;
      tasks_run = 0;
      wait_ns = 0L;
      rwait_samples = [];
      worker_busy_ns = Array.make jobs 0L;
    }
  in
  p.workers <- List.init jobs (fun i -> Domain.spawn (fun () -> worker p i));
  p

let stats p =
  Mutex.lock p.lock;
  let s =
    {
      tasks = p.tasks_run;
      queue_wait_ns = p.wait_ns;
      busy_ns = Array.copy p.worker_busy_ns;
      wait_samples_ns = Array.of_list (List.rev p.rwait_samples);
    }
  in
  Mutex.unlock p.lock;
  s

let enqueue p task =
  Mutex.lock p.lock;
  if p.stopped then begin
    Mutex.unlock p.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length p.queue >= p.capacity do
    Condition.wait p.not_full p.lock
  done;
  Queue.push task p.queue;
  Condition.signal p.not_empty;
  Mutex.unlock p.lock

let submit p f =
  let fut = { f_lock = Mutex.create (); f_done = Condition.create (); state = Pending } in
  let run () =
    let result =
      (* The worker loop must survive any task failure: capture it here and
         hand it to whoever awaits. *)
      try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_lock;
    fut.state <- result;
    Condition.broadcast fut.f_done;
    Mutex.unlock fut.f_lock
  in
  enqueue p (Run { f = run; enq_ns = Vpga_obs.Clock.now_ns () });
  fut

let await_state fut =
  Mutex.lock fut.f_lock;
  while (match fut.state with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait fut.f_done fut.f_lock
  done;
  let s = fut.state in
  Mutex.unlock fut.f_lock;
  s

let await fut =
  match await_state fut with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown p =
  let to_join =
    Mutex.lock p.lock;
    if p.stopped then begin
      Mutex.unlock p.lock;
      []
    end
    else begin
      p.stopped <- true;
      let ws = p.workers in
      p.workers <- [];
      Mutex.unlock p.lock;
      (* Stop tokens go through the same bounded queue, behind every already
         submitted task: workers drain the backlog before exiting.  Bypass
         [enqueue]'s stopped check (we just set it) but keep the bound. *)
      List.iter
        (fun _ ->
          Mutex.lock p.lock;
          while Queue.length p.queue >= p.capacity do
            Condition.wait p.not_full p.lock
          done;
          Queue.push Stop p.queue;
          Condition.signal p.not_empty;
          Mutex.unlock p.lock)
        ws;
      ws
    end
  in
  List.iter Domain.join to_join

let with_pool ?capacity ~jobs f =
  let p = create ?capacity ~jobs () in
  match f p with
  | v ->
      shutdown p;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown p;
      Printexc.raise_with_backtrace e bt

let run ?jobs thunks =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length thunks in
  if jobs = 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let p = create ~jobs:(min jobs n) () in
    (* Submission blocks when the queue fills, so collect futures as we go. *)
    let futs = List.map (submit p) thunks in
    let states = List.map await_state futs in
    shutdown p;
    List.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      states
  end

let run_stats ?jobs thunks =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length thunks in
  if jobs = 1 || n <= 1 then begin
    (* Inline reference semantics, still accounted: one "worker" slot,
       zero queue wait. *)
    let busy = ref 0L in
    let results =
      List.map
        (fun f ->
          let t0 = Vpga_obs.Clock.now_ns () in
          let v = f () in
          busy := Int64.add !busy (Int64.sub (Vpga_obs.Clock.now_ns ()) t0);
          v)
        thunks
    in
    ( results,
      {
        tasks = n;
        queue_wait_ns = 0L;
        busy_ns = [| !busy |];
        (* inline tasks never queue: n waits of exactly zero *)
        wait_samples_ns = Array.make n 0L;
      } )
  end
  else begin
    let p = create ~jobs:(min jobs n) () in
    let futs = List.map (submit p) thunks in
    let states = List.map await_state futs in
    (* Snapshot only after the workers have joined: a worker fulfills a
       task's future before it books the task's accounting, so a snapshot
       taken right after the last await could miss the final task. *)
    shutdown p;
    let st = stats p in
    ( List.map
        (function
          | Done v -> v
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending -> assert false)
        states,
      st )
  end

let try_run ?jobs thunks =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length thunks in
  if jobs = 1 || n <= 1 then
    List.map
      (fun f -> match f () with v -> Ok v | exception e -> Error e)
      thunks
  else begin
    let p = create ~jobs:(min jobs n) () in
    let futs = List.map (submit p) thunks in
    let states = List.map await_state futs in
    shutdown p;
    List.map
      (function
        | Done v -> Ok v
        | Failed (e, _) -> Error e
        | Pending -> assert false)
      states
  end

let map ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)

(* Publish a stats snapshot onto a trace: scheduling health as gauges,
   the per-task queue waits as a histogram (so snapshots get p50/p90/p99
   of queue wait, the [vpga serve] fairness signal). *)
let publish_stats st tr =
  let ms ns = Int64.to_float ns /. 1e6 in
  Vpga_obs.Trace.set tr "pool.tasks" (float_of_int st.tasks);
  Vpga_obs.Trace.set tr "pool.workers" (float_of_int (Array.length st.busy_ns));
  Vpga_obs.Trace.set tr "pool.queue_wait_ms" (ms st.queue_wait_ns);
  Vpga_obs.Trace.set tr "pool.busy_ms_total"
    (Array.fold_left (fun acc b -> acc +. ms b) 0.0 st.busy_ns);
  Vpga_obs.Trace.set tr "pool.busy_ms_max"
    (Array.fold_left (fun acc b -> Float.max acc (ms b)) 0.0 st.busy_ns);
  Array.iter
    (fun w ->
      Vpga_obs.Trace.observe tr "pool.queue_wait_us"
        (Int64.to_float w /. 1e3))
    st.wait_samples_ns
