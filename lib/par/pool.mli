(** A fixed worker pool over OCaml 5 domains.

    [jobs] worker domains pull thunks from one bounded FIFO queue
    (mutex + condition variables, no work stealing).  Results come back
    through futures; a worker exception is captured and re-raised, with
    its backtrace, at the {!await} site.  Submission blocks while the
    queue holds [capacity] pending tasks, which keeps a producer that is
    faster than the workers from buffering the whole workload.

    The pool is intended for coarse tasks (an entire RTL-to-layout flow
    run per task); nothing here is tuned for fine-grained parallelism.

    Determinism: the pool imposes no ordering on task execution, so tasks
    must not share mutable state or a common RNG.  Callers that need
    run-to-run reproducibility derive an independent seed per task (see
    [Experiments.run_all]).  {!run} and {!map} return results in
    submission order regardless of completion order, and with [jobs = 1]
    they run every thunk inline on the calling domain — the sequential
    reference semantics. *)

type t
(** A running pool.  Workers live until {!shutdown}. *)

type 'a future
(** The pending result of a submitted task. *)

type stats = {
  tasks : int;  (** tasks executed to completion *)
  queue_wait_ns : int64;
      (** total time tasks spent queued (submit to dequeue), summed *)
  busy_ns : int64 array;
      (** per-worker time spent executing tasks, by worker index *)
  wait_samples_ns : int64 array;
      (** per-task queue wait, in completion order (all zero for inline
          [jobs = 1] execution) *)
}
(** Pool accounting on the monotonic clock ({!Vpga_obs.Clock}); updated
    once per task, so the cost is invisible next to coarse tasks. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], floor 1: leave one
    hardware context for the submitting domain. *)

val create : ?capacity:int -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains (at least 1) sharing a bounded queue of
    [capacity] pending tasks (default [2 * jobs]).
    @raise Invalid_argument if [jobs < 1] or [capacity < 1]. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task; blocks while the queue is full.
    @raise Invalid_argument if the pool is already shut down. *)

val await : 'a future -> 'a
(** Block until the task finishes.  Re-raises the task's exception (with
    the worker-side backtrace) if it failed.  May be called more than
    once and from any domain. *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.  Already
    submitted tasks all run before the workers exit.  Idempotent. *)

val stats : t -> stats
(** A consistent snapshot of the pool's accounting so far. *)

val with_pool : ?capacity:int -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] against a freshly created pool and
    guarantees {!shutdown} on every exit path — the scoped-submission
    helper for finer-grained fan-out (e.g. region-parallel refinement
    inside one flow stage) that must not leak worker domains when a task
    raises.  The pool argument is only valid during [f]. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks]: execute every thunk on a transient pool of
    [min jobs (length thunks)] workers and return the results in
    submission order.  [jobs] defaults to {!default_jobs}; [jobs = 1]
    runs inline, sequentially, without spawning a domain.  If any task
    raised, the pool is still shut down cleanly and then the first
    failure (in submission order) is re-raised. *)

val run_stats : ?jobs:int -> (unit -> 'a) list -> 'a list * stats
(** {!run}, also returning the transient pool's {!type-stats}.  With
    [jobs = 1] (inline execution) the stats carry one busy slot and zero
    queue wait. *)

val try_run : ?jobs:int -> (unit -> 'a) list -> ('a, exn) result list
(** Like {!run}, but a task's exception is captured into its own slot
    instead of being re-raised, so one failing task never hides the
    results of its siblings.  [jobs = 1] runs inline with the same
    per-task capture. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs = run ~jobs (List.map (fun x () -> f x) xs)]. *)

val publish_stats : stats -> Vpga_obs.Trace.t -> unit
(** Surface a stats snapshot on a trace: [pool.tasks], [pool.workers],
    [pool.queue_wait_ms], [pool.busy_ms_total] and [pool.busy_ms_max]
    gauges, plus every per-task queue wait observed into the
    [pool.queue_wait_us] histogram.  No-op on a null trace. *)
