(** A placement: coordinates (um) for every netlist node on a die.

    Placeable cells live inside the core; primary inputs/outputs sit on the
    die boundary (left/right edges respectively, evenly spread). *)

type t = {
  graph : Hypergraph.t;
  die_w : float;
  die_h : float;
  x : float array;  (** per netlist node id *)
  y : float array;
}

val die_of_area : ?utilization:float -> float -> float * float
(** Square die sized so the given cell area fits at [utilization]
    (default 0.7, a typical standard-cell row utilization). *)

val create : ?utilization:float -> Vpga_netlist.Netlist.t -> t
(** Builds the hypergraph, sizes the die and pins I/O to the boundary; cell
    coordinates start at the die center. *)

val net_hpwl : t -> int array -> float
(** Half-perimeter wirelength of one net given as netlist node ids. *)

val hpwl : ?nets:int array array -> t -> float
(** Total half-perimeter wirelength over all nets (I/O included).  Pass
    [~nets] (from {!nets_with_io}) to skip rebuilding the net list —
    the fast path for callers that evaluate HPWL repeatedly. *)

val nets_with_io : t -> int array array
(** Nets as netlist-node-id arrays, including I/O terminals (used by HPWL,
    annealing and routing). *)

val scatter : seed:int -> t -> unit
(** Uniform random cell coordinates (baseline / annealing start). *)

(** Cached per-net bounding boxes for incremental HPWL maintenance.

    A record keeps the net's bounds plus the number of pins sitting
    exactly on each bound.  Moving one pin updates the record in O(1)
    unless the pin was alone on a bound and left it inward, in which
    case the net is rescanned (O(degree)) — the classic VPR-style
    incremental bounding box.  This is the annealer's hot path. *)
module Bbox : sig
  type b = {
    mutable min_x : float;
    mutable max_x : float;
    mutable min_y : float;
    mutable max_y : float;
    mutable n_min_x : int;  (** pins at [min_x] *)
    mutable n_max_x : int;
    mutable n_min_y : int;
    mutable n_max_y : int;
  }

  val of_net : t -> int array -> b
  (** Scan the net at the placement's current coordinates. *)

  val hpwl : b -> float

  val copy : b -> b

  val dummy : b
  (** Shared all-zero placeholder for array slots whose net is tracked by
      plain rescans rather than incrementally (e.g. nets below the
      annealer's small-net cutoff).  Must never be mutated. *)

  exception Rescan
  (** Raised when a cached record cannot absorb a move: the pin held a
      bound alone and left it inward, so only a rescan ({!of_net}) knows
      the next pin. *)

  val shift : b -> ox:float -> oy:float -> nx:float -> ny:float -> unit
  (** Update [b] in place for one pin moved [(ox, oy)] -> [(nx, ny)].
      @raise Rescan when the record is insufficient; [b] may then be
      partially updated and must be rebuilt with {!of_net}. *)

  val shift_hpwl : b -> ox:float -> oy:float -> nx:float -> ny:float -> float
  (** The HPWL [b] would have after the move, without mutating [b] and
      without allocating.
      @raise Rescan under the same condition as {!shift}. *)

  val shifted : t -> b -> int array -> ox:float -> oy:float -> nx:float -> ny:float -> b
  (** [shifted t b net ~ox ~oy ~nx ~ny] is a fresh record reflecting one
      pin of [net] having moved from [(ox, oy)] to [(nx, ny)] — the
      coordinate arrays of [t] must already hold the new position (they
      are only consulted on the rescan fallback).  [b] is not mutated. *)
end
