module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type t = {
  nl : Netlist.t;
  vertex_of_node : int array;
  node_of_vertex : int array;
  nets : int array array;
  vertex_area : float array;
}

let placeable n =
  match n.Netlist.kind with
  | Kind.Input | Kind.Output | Kind.Const _ -> false
  | _ -> true

let build nl =
  let n = Netlist.size nl in
  let vertex_of_node = Array.make n (-1) in
  let node_ids = ref [] in
  Array.iter
    (fun node -> if placeable node then node_ids := node.Netlist.id :: !node_ids)
    (Netlist.nodes nl);
  let node_of_vertex = Array.of_list (List.rev !node_ids) in
  Array.iteri (fun v id -> vertex_of_node.(id) <- v) node_of_vertex;
  let fanout = Netlist.fanout nl in
  let nets = ref [] in
  Array.iteri
    (fun id sinks ->
      if vertex_of_node.(id) >= 0 then begin
        let members =
          vertex_of_node.(id)
          :: List.filter_map
               (fun s -> if vertex_of_node.(s) >= 0 then Some vertex_of_node.(s) else None)
               (Array.to_list sinks)
        in
        let members = List.sort_uniq Int.compare members in
        if List.length members >= 2 then nets := Array.of_list members :: !nets
      end)
    fanout;
  let vertex_area =
    Array.map
      (fun id -> Vpga_mapper.Techmap.cell_area_of_node (Netlist.node nl id))
      node_of_vertex
  in
  { nl; vertex_of_node; node_of_vertex; nets = Array.of_list !nets; vertex_area }

let num_vertices t = Array.length t.node_of_vertex
let num_nets t = Array.length t.nets
let total_area t = Array.fold_left ( +. ) 0.0 t.vertex_area
