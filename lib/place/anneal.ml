type stats = {
  initial_cost : float;
  final_cost : float;
  moves : int;
  accepted : int;
}

module Bbox = Placement.Bbox

let refine ?iterations ?(t_start = 0.0) ?(t_end = 0.0) ?criticality ~seed pl =
  let g = pl.Placement.graph in
  let movable = g.Hypergraph.node_of_vertex in
  let n_cells = Array.length movable in
  let nets = Placement.nets_with_io pl in
  let n_nets = Array.length nets in
  let n_nodes = Array.length pl.Placement.x in
  if n_cells = 0 then
    { initial_cost = 0.0; final_cost = 0.0; moves = 0; accepted = 0 }
  else begin
    let rng = Random.State.make [| seed |] in
    (* Net weights: critical nets count more. *)
    let crit id =
      match criticality with None -> 0.0 | Some c -> c.(id)
    in
    let weight =
      Array.map
        (fun net -> 1.0 +. (3.0 *. Array.fold_left (fun a id -> max a (crit id)) 0.0 net))
        nets
    in
    (* Incidence: node id -> net indices. *)
    let deg = Array.make n_nodes 0 in
    Array.iter (fun net -> Array.iter (fun id -> deg.(id) <- deg.(id) + 1) net) nets;
    let incident = Array.init n_nodes (fun id -> Array.make deg.(id) 0) in
    let fill = Array.make n_nodes 0 in
    Array.iteri
      (fun e net ->
        Array.iter
          (fun id ->
            incident.(id).(fill.(id)) <- e;
            fill.(id) <- fill.(id) + 1)
          net)
      nets;
    (* Cached per-net bounding boxes: proposals cost O(1) per touched net
       instead of an O(degree) rescan, except when a mover leaves a bound
       it held alone (Bbox's rescan fallback).  Nets at or below the cutoff
       always rescan: with 2-4 pins the mover holds a bound alone so often
       that the fallback fires constantly, and a direct scan is cheaper
       than bookkeeping plus the exception. *)
    let small_cutoff = 4 in
    let small = Array.map (fun net -> Array.length net <= small_cutoff) nets in
    let bbs =
      Array.mapi
        (fun e net -> if small.(e) then Bbox.dummy else Bbox.of_net pl net)
        nets
    in
    let net_cost =
      Array.mapi
        (fun e net ->
          weight.(e)
          *. (if small.(e) then Placement.net_hpwl pl net else Bbox.hpwl bbs.(e)))
        nets
    in
    let total = ref (Array.fold_left ( +. ) 0.0 net_cost) in
    let initial_cost = !total in
    let iterations =
      match iterations with Some i -> i | None -> 100 * n_cells
    in
    let t_start =
      if t_start > 0.0 then t_start
      else max 1.0 (initial_cost /. float_of_int (max 1 n_nets))
    in
    let t_end = if t_end > 0.0 then t_end else t_start /. 1000.0 in
    let alpha =
      exp (log (t_end /. t_start) /. float_of_int (max 1 iterations))
    in
    let temp = ref t_start in
    let accepted = ref 0 in
    (* Per-proposal scratch: which nets the movers touch, how many movers
       touch each (a swap can land both endpoints in one net), and which
       mover stamped it first.  [stamp] doubles as the dedup set. *)
    let stamp = Array.make n_nets 0 in
    let movers_in = Array.make n_nets 0 in
    let mover_of = Array.make n_nets (-1) in
    let max_deg = Array.fold_left max 0 deg in
    let buf_len = max 1 (2 * max_deg) in
    let touched = Array.make buf_len 0 in
    let tentative = Array.make buf_len 0.0 in
    let n_touched = ref 0 in
    let window_w = ref (pl.Placement.die_w /. 2.0) in
    let window_h = ref (pl.Placement.die_h /. 2.0) in
    (* Convergence series: ~64 samples per walk of temperature, running
       cost, and acceptance rate over the sampling window.  Sampling
       never touches [rng], so traced and untraced walks are
       move-for-move identical. *)
    let sample_every = max 1 (iterations / 64) in
    let accepted_at_sample = ref 0 in
    for step = 1 to iterations do
      let id = movable.(Random.State.int rng n_cells) in
      let swap = Random.State.bool rng && n_cells > 1 in
      let ox = pl.Placement.x.(id) and oy = pl.Placement.y.(id) in
      let other =
        if swap then
          let id2 = movable.(Random.State.int rng n_cells) in
          if id2 <> id then
            Some (id2, pl.Placement.x.(id2), pl.Placement.y.(id2))
          else None
        else None
      in
      (match other with
      | Some (id2, ox2, oy2) ->
          pl.Placement.x.(id) <- ox2;
          pl.Placement.y.(id) <- oy2;
          pl.Placement.x.(id2) <- ox;
          pl.Placement.y.(id2) <- oy
      | None ->
          let clamp v lo hi = max lo (min hi v) in
          pl.Placement.x.(id) <-
            clamp (ox +. Random.State.float rng (2.0 *. !window_w) -. !window_w)
              0.0 pl.Placement.die_w;
          pl.Placement.y.(id) <-
            clamp (oy +. Random.State.float rng (2.0 *. !window_h) -. !window_h)
              0.0 pl.Placement.die_h);
      let register m =
        Array.iter
          (fun e ->
            if stamp.(e) <> step then begin
              stamp.(e) <- step;
              movers_in.(e) <- 1;
              mover_of.(e) <- m;
              touched.(!n_touched) <- e;
              incr n_touched
            end
            else movers_in.(e) <- movers_in.(e) + 1)
          incident.(m)
      in
      n_touched := 0;
      register id;
      (match other with Some (id2, _, _) -> register id2 | None -> ());
      (* Tentative cost per touched net — pure float math against the cached
         record, no mutation, no per-net allocation.  Caches are only touched
         on accept. *)
      let d = ref 0.0 in
      for i = 0 to !n_touched - 1 do
        let e = touched.(i) in
        let w =
          if small.(e) || movers_in.(e) > 1 then Placement.net_hpwl pl nets.(e)
          else if mover_of.(e) = id then (
            try
              Bbox.shift_hpwl bbs.(e) ~ox ~oy ~nx:pl.Placement.x.(id)
                ~ny:pl.Placement.y.(id)
            with Bbox.Rescan -> Placement.net_hpwl pl nets.(e))
          else
            match other with
            | Some (id2, ox2, oy2) -> (
                try
                  Bbox.shift_hpwl bbs.(e) ~ox:ox2 ~oy:oy2
                    ~nx:pl.Placement.x.(id2) ~ny:pl.Placement.y.(id2)
                with Bbox.Rescan -> Placement.net_hpwl pl nets.(e))
            | None -> assert false
        in
        let cost = weight.(e) *. w in
        tentative.(i) <- cost;
        d := !d +. (cost -. net_cost.(e))
      done;
      let d = !d in
      let accept =
        d <= 0.0
        || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
      in
      if accept then begin
        for i = 0 to !n_touched - 1 do
          let e = touched.(i) in
          (if small.(e) then ()
           else if movers_in.(e) > 1 then bbs.(e) <- Bbox.of_net pl nets.(e)
           else if mover_of.(e) = id then (
             try
               Bbox.shift bbs.(e) ~ox ~oy ~nx:pl.Placement.x.(id)
                 ~ny:pl.Placement.y.(id)
             with Bbox.Rescan -> bbs.(e) <- Bbox.of_net pl nets.(e))
           else
             match other with
             | Some (id2, ox2, oy2) -> (
                 try
                   Bbox.shift bbs.(e) ~ox:ox2 ~oy:oy2
                     ~nx:pl.Placement.x.(id2) ~ny:pl.Placement.y.(id2)
                 with Bbox.Rescan -> bbs.(e) <- Bbox.of_net pl nets.(e))
             | None -> assert false);
          net_cost.(e) <- tentative.(i)
        done;
        total := !total +. d;
        incr accepted
      end
      else begin
        pl.Placement.x.(id) <- ox;
        pl.Placement.y.(id) <- oy;
        match other with
        | Some (id2, ox2, oy2) ->
            pl.Placement.x.(id2) <- ox2;
            pl.Placement.y.(id2) <- oy2
        | None -> ()
      end;
      temp := !temp *. alpha;
      if step mod sample_every = 0 then begin
        Vpga_obs.Trace.emit_sample "anneal.temperature" !temp;
        Vpga_obs.Trace.emit_sample "anneal.cost" !total;
        Vpga_obs.Trace.emit_sample "anneal.acceptance"
          (float_of_int (!accepted - !accepted_at_sample)
          /. float_of_int sample_every);
        accepted_at_sample := !accepted
      end;
      if step mod (max 1 (iterations / 20)) = 0 then begin
        window_w := max (pl.Placement.die_w /. 50.0) (!window_w *. 0.8);
        window_h := max (pl.Placement.die_h /. 50.0) (!window_h *. 0.8)
      end
    done;
    (* Feed the ambient trace's counter registry (no-op when tracing is
       off); one walk may run several times under a restart policy, so
       these accumulate across attempts. *)
    Vpga_obs.Trace.emit "anneal.walks" 1.0;
    Vpga_obs.Trace.emit "anneal.moves" (float_of_int iterations);
    Vpga_obs.Trace.emit "anneal.accepted" (float_of_int !accepted);
    {
      initial_cost;
      final_cost = !total;
      moves = iterations;
      accepted = !accepted;
    }
  end
