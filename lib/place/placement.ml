module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind

type t = {
  graph : Hypergraph.t;
  die_w : float;
  die_h : float;
  x : float array;
  y : float array;
}

let die_of_area ?(utilization = 0.7) area =
  let side = sqrt (area /. utilization) in
  (side, side)

let nets_with_io_of nl =
  let fanout = Netlist.fanout nl in
  let nets = ref [] in
  Array.iteri
    (fun id sinks ->
      let node = Netlist.node nl id in
      let drives =
        match node.Netlist.kind with
        | Kind.Output -> false (* output pads drive nothing *)
        | Kind.Const _ -> false (* constants are tie-offs, not wires *)
        | _ -> Array.length sinks > 0
      in
      if drives then nets := Array.append [| id |] sinks :: !nets)
    fanout;
  Array.of_list !nets

let create ?utilization nl =
  let graph = Hypergraph.build nl in
  let die_w, die_h = die_of_area ?utilization (Hypergraph.total_area graph) in
  let n = Netlist.size nl in
  let x = Array.make n (die_w /. 2.0) and y = Array.make n (die_h /. 2.0) in
  let spread ids x0 =
    let k = List.length ids in
    List.iteri
      (fun i id ->
        x.(id) <- x0;
        y.(id) <- die_h *. (float_of_int (i + 1) /. float_of_int (k + 1)))
      ids
  in
  spread (Netlist.inputs nl) 0.0;
  spread (Netlist.outputs nl) die_w;
  { graph; die_w; die_h; x; y }

let net_hpwl t net =
  (* Bounds in a float array (min_x, max_x, min_y, max_y): element writes
     stay unboxed, where float refs would allocate on every update — this
     scan is the annealer's and the refiner's rescan primitive. *)
  let b = [| infinity; neg_infinity; infinity; neg_infinity |] in
  let xs = t.x and ys = t.y in
  for i = 0 to Array.length net - 1 do
    let id = net.(i) in
    let x = xs.(id) and y = ys.(id) in
    if x < b.(0) then b.(0) <- x;
    if x > b.(1) then b.(1) <- x;
    if y < b.(2) then b.(2) <- y;
    if y > b.(3) then b.(3) <- y
  done;
  b.(1) -. b.(0) +. (b.(3) -. b.(2))

let nets_with_io t = nets_with_io_of t.graph.Hypergraph.nl

let hpwl ?nets t =
  let nets = match nets with Some n -> n | None -> nets_with_io t in
  Array.fold_left (fun acc net -> acc +. net_hpwl t net) 0.0 nets

(* Cached per-net bounding boxes with boundary multiplicity, for incremental
   HPWL maintenance (the annealer's hot path).  [n_*] counts the pins sitting
   exactly on each boundary: while a bound has multiplicity > 1, a pin can
   leave it without a rescan. *)
module Bbox = struct
  type b = {
    mutable min_x : float;
    mutable max_x : float;
    mutable min_y : float;
    mutable max_y : float;
    mutable n_min_x : int;
    mutable n_max_x : int;
    mutable n_min_y : int;
    mutable n_max_y : int;
  }

  let of_net t net =
    let b =
      {
        min_x = infinity;
        max_x = neg_infinity;
        min_y = infinity;
        max_y = neg_infinity;
        n_min_x = 0;
        n_max_x = 0;
        n_min_y = 0;
        n_max_y = 0;
      }
    in
    Array.iter
      (fun id ->
        let x = t.x.(id) and y = t.y.(id) in
        if x < b.min_x then begin b.min_x <- x; b.n_min_x <- 1 end
        else if x = b.min_x then b.n_min_x <- b.n_min_x + 1;
        if x > b.max_x then begin b.max_x <- x; b.n_max_x <- 1 end
        else if x = b.max_x then b.n_max_x <- b.n_max_x + 1;
        if y < b.min_y then begin b.min_y <- y; b.n_min_y <- 1 end
        else if y = b.min_y then b.n_min_y <- b.n_min_y + 1;
        if y > b.max_y then begin b.max_y <- y; b.n_max_y <- 1 end
        else if y = b.max_y then b.n_max_y <- b.n_max_y + 1)
      net;
    b

  let hpwl b = b.max_x -. b.min_x +. (b.max_y -. b.min_y)

  let copy b = { b with min_x = b.min_x }

  (* Shared placeholder for slots whose net is tracked by rescan instead of
     incrementally (e.g. the annealer's small-net cutoff).  Never mutated. *)
  let dummy =
    {
      min_x = 0.0;
      max_x = 0.0;
      min_y = 0.0;
      max_y = 0.0;
      n_min_x = 0;
      n_max_x = 0;
      n_min_y = 0;
      n_max_y = 0;
    }

  exception Rescan

  (* One coordinate axis, min side: pin moved [o] -> [n] against bound
     [bound] held by [count] pins.  Returns the new (bound, count);
     raises [Rescan] when the pin was alone on the bound and moved off
     it inward (the cached record can't tell where the next pin is). *)
  let min_side bound count ~o ~n =
    if o = bound then
      if n <= bound then ((n, if n = bound then count else 1))
      else if count > 1 then (bound, count - 1)
      else raise Rescan
    else if n < bound then (n, 1)
    else if n = bound then (bound, count + 1)
    else (bound, count)

  let max_side bound count ~o ~n =
    if o = bound then
      if n >= bound then ((n, if n = bound then count else 1))
      else if count > 1 then (bound, count - 1)
      else raise Rescan
    else if n > bound then (n, 1)
    else if n = bound then (bound, count + 1)
    else (bound, count)

  (* In-place update of [b] for one pin moved (ox,oy) -> (nx,ny).
     Raises [Rescan] when the cached record is insufficient; the caller
     must rebuild with [of_net] (coordinate arrays already hold the new
     position).  [b] may be left partially updated on raise — callers
     always rebuild it in that case. *)
  let shift b ~ox ~oy ~nx ~ny =
    if nx <> ox then begin
      let mn, cn = min_side b.min_x b.n_min_x ~o:ox ~n:nx in
      let mx, cx = max_side b.max_x b.n_max_x ~o:ox ~n:nx in
      b.min_x <- mn;
      b.n_min_x <- cn;
      b.max_x <- mx;
      b.n_max_x <- cx
    end;
    if ny <> oy then begin
      let mn, cn = min_side b.min_y b.n_min_y ~o:oy ~n:ny in
      let mx, cx = max_side b.max_y b.n_max_y ~o:oy ~n:ny in
      b.min_y <- mn;
      b.n_min_y <- cn;
      b.max_y <- mx;
      b.n_max_y <- cx
    end

  (* Allocation-free tentative evaluation: the HPWL after the move, or
     [Rescan].  One branch per bound, mirroring [min_side]/[max_side]. *)
  let shift_hpwl b ~ox ~oy ~nx ~ny =
    let min_bound bound count o n =
      if n <= bound then n
      else if o > bound then bound
      else if count > 1 then bound
      else raise Rescan
    in
    let max_bound bound count o n =
      if n >= bound then n
      else if o < bound then bound
      else if count > 1 then bound
      else raise Rescan
    in
    let min_x = if nx = ox then b.min_x else min_bound b.min_x b.n_min_x ox nx in
    let max_x = if nx = ox then b.max_x else max_bound b.max_x b.n_max_x ox nx in
    let min_y = if ny = oy then b.min_y else min_bound b.min_y b.n_min_y oy ny in
    let max_y = if ny = oy then b.max_y else max_bound b.max_y b.n_max_y oy ny in
    max_x -. min_x +. (max_y -. min_y)

  let shifted t b net ~ox ~oy ~nx ~ny =
    let b' = copy b in
    match shift b' ~ox ~oy ~nx ~ny with
    | () -> b'
    | exception Rescan -> of_net t net
end

let scatter ~seed t =
  let rng = Random.State.make [| seed |] in
  Array.iter
    (fun id ->
      t.x.(id) <- Random.State.float rng t.die_w;
      t.y.(id) <- Random.State.float rng t.die_h)
    t.graph.Hypergraph.node_of_vertex
