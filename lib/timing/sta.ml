module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Levelize = Vpga_netlist.Levelize
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize
module Config = Vpga_plb.Config

type endpoint = { node : int; slack : float }

type result = {
  period : float;
  arrival : float array;
  slack : float array;
  endpoints : endpoint list;
  wns : float;
  critical_path : int list;
}

let output_pad_cap = 5.0

(* Not lazy: module initialization must complete before worker domains
   start (concurrently forcing a shared lazy is racy in OCaml 5). *)
let dff_cell = lazy (Characterize.find "dff")
let () = ignore (Lazy.force dff_cell)

let dff_seq () =
  match (Lazy.force dff_cell).Cell.sequential with
  | Some s -> s
  | None -> assert false

let unmapped () =
  invalid_arg "Sta.run: netlist contains unmapped generic gates"

(* Capacitance presented by one input pin of a node. *)
let pin_cap node =
  match node.Netlist.kind with
  | Kind.Mapped { cell; _ } -> (
      match Config.of_cell_name cell with
      | Some c -> Config.input_cap c
      | None -> (Characterize.find cell).Cell.input_cap)
  | Kind.Dff -> (Lazy.force dff_cell).Cell.input_cap
  | Kind.Output -> output_pad_cap
  | Kind.Input | Kind.Const _ -> 0.0
  | Kind.Buf | Kind.Inv -> (Characterize.find "inv").Cell.input_cap
  | Kind.And2 | Kind.Or2 | Kind.Nand2 | Kind.Nor2 | Kind.Xor2 | Kind.Xnor2
  | Kind.Mux2 | Kind.And3 | Kind.Or3 | Kind.Nand3 | Kind.Nor3 | Kind.Xor3
  | Kind.Maj3 ->
      unmapped ()

(* Input-to-output delay of a node driving [load] fF. *)
let cell_delay node ~load =
  match node.Netlist.kind with
  | Kind.Mapped { cell; _ } -> (
      match Config.of_cell_name cell with
      | Some c -> Config.delay c ~load
      | None -> Cell.delay (Characterize.find cell) ~load)
  | Kind.Dff ->
      let s = dff_seq () in
      s.Cell.clk_to_q +. ((Lazy.force dff_cell).Cell.resistance *. load)
  | Kind.Input ->
      (* driven by an I/O pad modelled as a buffer *)
      Cell.delay (Characterize.find "buf") ~load -. (Characterize.find "buf").Cell.intrinsic
  | Kind.Const _ | Kind.Output -> 0.0
  | Kind.Buf | Kind.Inv -> Cell.delay (Characterize.find "inv") ~load
  | Kind.And2 | Kind.Or2 | Kind.Nand2 | Kind.Nor2 | Kind.Xor2 | Kind.Xnor2
  | Kind.Mux2 | Kind.And3 | Kind.Or3 | Kind.Nand3 | Kind.Nor3 | Kind.Xor3
  | Kind.Maj3 ->
      unmapped ()

let no_wire _ = (0.0, 0.0)

let run ?(period = 500.0) ?(wire = no_wire) nl =
  let n = Netlist.size nl in
  let topo = Levelize.run nl in
  let fanout = Netlist.fanout nl in
  (* Per-driver loads: sink pins plus wire capacitance. *)
  let sink_cap = Array.make n 0.0 in
  let wire_cap = Array.make n 0.0 and wire_res = Array.make n 0.0 in
  for id = 0 to n - 1 do
    let c, r = wire id in
    wire_cap.(id) <- c;
    wire_res.(id) <- r;
    sink_cap.(id) <-
      Array.fold_left
        (fun acc s -> acc +. pin_cap (Netlist.node nl s))
        0.0 fanout.(id)
  done;
  let stage_delay id =
    let node = Netlist.node nl id in
    if Array.length fanout.(id) = 0 && node.Netlist.kind <> Kind.Output then
      cell_delay node ~load:0.0
    else
      cell_delay node ~load:(sink_cap.(id) +. wire_cap.(id))
      +. (wire_res.(id) *. ((wire_cap.(id) /. 2.0) +. sink_cap.(id)))
  in
  let arrival = Array.make n 0.0 in
  let pred = Array.make n (-1) in
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Kind.Input | Kind.Const _ | Kind.Dff -> arrival.(id) <- stage_delay id
      | Kind.Output ->
          let d = node.Netlist.fanins.(0) in
          arrival.(id) <- arrival.(d);
          pred.(id) <- d
      | _ ->
          let at = ref neg_infinity and best = ref (-1) in
          Array.iter
            (fun f ->
              if arrival.(f) > !at then begin
                at := arrival.(f);
                best := f
              end)
            node.Netlist.fanins;
          let at = if !best < 0 then 0.0 else !at in
          arrival.(id) <- at +. stage_delay id;
          pred.(id) <- !best)
    topo.Levelize.order;
  (* Endpoints. *)
  let setup = (dff_seq ()).Cell.setup in
  let endpoints = ref [] in
  List.iter
    (fun f ->
      let d = (Netlist.node nl f).Netlist.fanins.(0) in
      endpoints := { node = f; slack = period -. setup -. arrival.(d) } :: !endpoints)
    (Netlist.flops nl);
  List.iter
    (fun o -> endpoints := { node = o; slack = period -. arrival.(o) } :: !endpoints)
    (Netlist.outputs nl);
  let endpoints =
    List.sort (fun (a : endpoint) (b : endpoint) -> Float.compare a.slack b.slack) !endpoints
  in
  (* Backward required times. *)
  let required = Array.make n infinity in
  List.iter
    (fun ep ->
      let node = Netlist.node nl ep.node in
      match node.Netlist.kind with
      | Kind.Dff ->
          let d = node.Netlist.fanins.(0) in
          required.(d) <- min required.(d) (period -. setup)
      | _ -> required.(ep.node) <- min required.(ep.node) period)
    endpoints;
  let order_rev = Array.copy topo.Levelize.order in
  let len = Array.length order_rev in
  for i = 0 to (len / 2) - 1 do
    let t = order_rev.(i) in
    order_rev.(i) <- order_rev.(len - 1 - i);
    order_rev.(len - 1 - i) <- t
  done;
  Array.iter
    (fun id ->
      let node = Netlist.node nl id in
      match node.Netlist.kind with
      | Kind.Input | Kind.Const _ | Kind.Dff -> ()
      | Kind.Output ->
          let d = node.Netlist.fanins.(0) in
          required.(d) <- min required.(d) required.(id)
      | _ ->
          let r = required.(id) -. stage_delay id in
          Array.iter
            (fun f -> required.(f) <- min required.(f) r)
            node.Netlist.fanins)
    order_rev;
  let slack =
    Array.init n (fun id ->
        if required.(id) = infinity then infinity
        else required.(id) -. arrival.(id))
  in
  let wns =
    match endpoints with [] -> period | (ep : endpoint) :: _ -> ep.slack
  in
  (* Critical path back-trace from the worst endpoint. *)
  let critical_path =
    match endpoints with
    | [] -> []
    | ep :: _ ->
        let start =
          let node = Netlist.node nl ep.node in
          match node.Netlist.kind with
          | Kind.Dff -> node.Netlist.fanins.(0)
          | _ -> ep.node
        in
        let rec back id acc =
          if id < 0 then acc else back pred.(id) (id :: acc)
        in
        back start []
  in
  { period; arrival; slack; endpoints; wns; critical_path }

let top_slacks r n =
  let rec take n = function
    | [] -> []
    | (ep : endpoint) :: rest ->
        if n = 0 then [] else ep.slack :: take (n - 1) rest
  in
  take n r.endpoints

let average_top_slack r n =
  match top_slacks r n with
  | [] -> r.period
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let criticality r =
  Array.map
    (fun s ->
      if s = infinity then 0.0
      else min 1.0 (max 0.0 (1.0 -. (s /. r.period))))
    r.slack
