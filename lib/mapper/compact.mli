(** Regularity-driven logic compaction (paper Section 3.1).

    Rebuilds the combinational logic as {e supernodes} — functions of at most
    three inputs found by k-feasible-cut clustering over the design's AIG —
    and matches each supernode to the cheapest logic configuration of the
    target PLB architecture ("matches these computed supernodes to the
    appropriate combination of PLB components").  Area-flow dynamic
    programming selects the cover.  On the paper's designs this step reduces
    total gate area by roughly 15 %.

    The result is a netlist of [Kind.Mapped] nodes named ["cfg:<config>"]
    whose functions are the supernode truth tables; it is what the packing
    and placement stages consume. *)

val run :
  ?objective:[ `Area | `Depth ] ->
  ?passes:int ->
  Vpga_plb.Arch.t ->
  Vpga_netlist.Netlist.t ->
  Vpga_netlist.Netlist.t
(** Equivalent compacted netlist.  Accepts generic or technology-mapped
    input.  [`Area] (default) is the paper's compaction objective — minimum
    area flow; [`Depth] is timing-driven covering (minimum estimated
    arrival, area as tiebreak).  [passes] (default 1) adds area-recovery
    iterations: each extra pass re-runs cover selection with reference
    counts taken from the previous cover instead of structural fanout.
    [passes = 1] is byte-identical to the historical single-shot cover. *)

type pass_trace = {
  pass : int;
  changed : int list;
      (** ids whose chosen cut differs from the previous pass (empty for
          pass 1) *)
  labels : int array;
      (** the incrementally maintained FlowMap labels after this pass *)
}

val run_traced :
  ?objective:[ `Area | `Depth ] ->
  ?passes:int ->
  Vpga_plb.Arch.t ->
  Vpga_netlist.Netlist.t ->
  Vpga_netlist.Netlist.t * pass_trace list
(** {!run}, also maintaining exact FlowMap labels across the compaction
    passes through {!Flowmap.Incremental}: after each pass the nodes whose
    chosen cut changed are marked dirty and only their dependent cones are
    relabeled.  Returns one {!pass_trace} per pass (diagnostics and the
    incremental-labeling validation tests).  Exact labeling is quadratic —
    intended for test-scale blocks, not the production flow. *)

val config_histogram :
  Vpga_netlist.Netlist.t -> (Vpga_plb.Config.t * int) list
(** Count of supernodes per configuration in a compacted netlist (the
    paper's "majority of the functions ... are mapped to a NDMX or XOAMX
    configuration" observation; experiment E9). *)
