module Aig = Vpga_aig.Aig
module Maxflow = Vpga_maxflow.Maxflow

(* Labeling arena: epoch-stamped cone membership / flow-network indexing
   scratch plus one Dinic network, all sized once per AIG and reused for
   every per-node cut decision instead of allocating a fresh [Hashtbl]
   and network per node. *)
type arena = {
  aig : Aig.t;
  k : int;
  stamp : int array; (* cone membership, valid when equal to [epoch] *)
  index : int array; (* flow-network index of a non-collapsed cone node *)
  order : int array; (* cone members in discovery order *)
  mutable n_cone : int;
  mutable epoch : int;
  net : Maxflow.t;
  mutable maxflow_calls : int;
}

let arena aig ~k =
  let n = Aig.size aig in
  {
    aig;
    k;
    stamp = Array.make (max 1 n) 0;
    index = Array.make (max 1 n) (-1);
    order = Array.make (max 1 n) 0;
    n_cone = 0;
    epoch = 0;
    net = Maxflow.create 2;
    maxflow_calls = 0;
  }

(* Transitive fanin cone of [t] (including [t], PIs and const) into
   [a.order.(0 .. a.n_cone - 1)]. *)
let rec collect a id =
  if a.stamp.(id) <> a.epoch then begin
    a.stamp.(id) <- a.epoch;
    a.order.(a.n_cone) <- id;
    a.n_cone <- a.n_cone + 1;
    if (not (Aig.is_pi a.aig id)) && not (Aig.is_const id) then begin
      let l0, l1 = Aig.fanins a.aig id in
      collect a (Aig.node_of l0);
      collect a (Aig.node_of l1)
    end
  end

(* Does node [t] admit a k-feasible cut all of whose leaves have labels < p,
   where p is the max fanin label?  Decided by max-flow on the node-split
   cone with label-p nodes collapsed into the sink. *)
let decide a t labels =
  let aig = a.aig in
  let l0, l1 = Aig.fanins aig t in
  let p = max labels.(Aig.node_of l0) labels.(Aig.node_of l1) in
  if p = 0 then
    (* Every source of the cone carries label 0 = p and would be collapsed
       into the sink, making it inseparable from the source: no cut of
       height p - 1 exists.  (This is the common case for nodes directly
       above the PIs; skipping the flow solve preserves the result.) *)
    false
  else begin
    a.epoch <- a.epoch + 1;
    a.n_cone <- 0;
    collect a t;
    let collapsed id = id = t || labels.(id) = p in
    (* Assign flow-network indices to non-collapsed cone nodes. *)
    let n_split = ref 0 in
    for i = 0 to a.n_cone - 1 do
      let id = a.order.(i) in
      if collapsed id then a.index.(id) <- -1
      else begin
        a.index.(id) <- !n_split;
        incr n_split
      end
    done;
    let source = 0 and sink = 1 in
    let v_in id = 2 + (2 * a.index.(id)) in
    let v_out id = 3 + (2 * a.index.(id)) in
    let net = a.net in
    Maxflow.reset net (2 + (2 * !n_split));
    let inf = Maxflow.infinity in
    let infeasible = ref false in
    for i = 0 to a.n_cone - 1 do
      let id = a.order.(i) in
      let c = collapsed id in
      (* Node capacity. *)
      if not c then Maxflow.add_edge net ~src:(v_in id) ~dst:(v_out id) ~cap:1;
      if Aig.is_pi aig id || Aig.is_const id then begin
        (* Source feeds the cone's own sources (PIs / const). *)
        if c then infeasible := true
        else Maxflow.add_edge net ~src:source ~dst:(v_in id) ~cap:inf
      end
      else begin
        (* Internal edges. *)
        let f0, f1 = Aig.fanins aig id in
        let connect src_id =
          if not (collapsed src_id) then
            Maxflow.add_edge net ~src:(v_out src_id)
              ~dst:(if c then sink else v_in id)
              ~cap:inf
        in
        connect (Aig.node_of f0);
        connect (Aig.node_of f1)
      end
    done;
    if !infeasible then false
    else begin
      a.maxflow_calls <- a.maxflow_calls + 1;
      Maxflow.max_flow ~limit:a.k net ~source ~sink <= a.k
    end
  end

let min_height_cut_exists aig ~k t labels = decide (arena aig ~k) t labels

let label_node a labels id =
  let l0, l1 = Aig.fanins a.aig id in
  let p = max labels.(Aig.node_of l0) labels.(Aig.node_of l1) in
  if decide a id labels then p else p + 1

let labels_into a labels =
  let n = Aig.size a.aig in
  for id = 1 to n - 1 do
    if not (Aig.is_pi a.aig id) then labels.(id) <- label_node a labels id
  done

let labels aig ~k =
  let a = arena aig ~k in
  let labels = Array.make (Aig.size aig) 0 in
  labels_into a labels;
  Vpga_obs.Trace.emit "flowmap.maxflow_calls" (float_of_int a.maxflow_calls);
  labels

let depth aig ~k = Array.fold_left max 0 (labels aig ~k)

module Incremental = struct
  type t = {
    arena : arena;
    labels : int array;
    affected : bool array; (* scratch, valid only during [relabel] *)
  }

  let create aig ~k =
    let a = arena aig ~k in
    let labels = Array.make (Aig.size aig) 0 in
    labels_into a labels;
    Vpga_obs.Trace.emit "flowmap.maxflow_calls" (float_of_int a.maxflow_calls);
    { arena = a; labels; affected = Array.make (max 1 (Aig.size aig)) false }

  let labels t = t.labels

  (* Invalidation rule: a node's max-flow decision depends on the labels of
     its whole fanin cone, and cone(t) = {t} ∪ cone(fanin0) ∪ cone(fanin1),
     so [affected t = dirty t || affected fanin0 || affected fanin1]
     (computed in ascending = topological id order) over-approximates "some
     node of cone(t) is dirty".  Unaffected nodes keep their label: their
     cone is untouched, so the collapsed set and the flow network — hence
     the decision — are unchanged.  The flag deliberately stays set even
     when recomputation confirms the old label: downstream cones contain
     this node's *ancestors* too, and one of those may still differ. *)
  let relabel t ~dirty =
    let a = t.arena in
    let aig = a.aig in
    let n = Aig.size aig in
    Array.fill t.affected 0 n false;
    List.iter
      (fun id ->
        if id < 0 || id >= n then invalid_arg "Flowmap.Incremental.relabel";
        t.affected.(id) <- true)
      dirty;
    let calls0 = a.maxflow_calls in
    let reused = ref 0 in
    for id = 1 to n - 1 do
      if not (Aig.is_pi aig id) then begin
        let l0, l1 = Aig.fanins aig id in
        if
          t.affected.(id)
          || t.affected.(Aig.node_of l0)
          || t.affected.(Aig.node_of l1)
        then begin
          t.affected.(id) <- true;
          t.labels.(id) <- label_node a t.labels id
        end
        else incr reused
      end
    done;
    Vpga_obs.Trace.emit "flowmap.maxflow_calls"
      (float_of_int (a.maxflow_calls - calls0));
    Vpga_obs.Trace.emit "flowmap.labels_reused" (float_of_int !reused)
end
