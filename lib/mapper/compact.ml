module Bfun = Vpga_logic.Bfun
module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Aig = Vpga_aig.Aig
module Cut = Vpga_aig.Cut
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config

let cut_k = 3
let max_cuts = 16

let config_of_tt arch tt = Config.choose arch (Bfun.extend tt ~arity:3)

(* Cover cost is the share of a PLB tile the supernode's configuration will
   occupy after packing (see {!Config.tile_cost}); evaluated inside
   [select_cover] against its per-cut config memo. *)

(* Cover selection over the AIG.  [`Area] minimizes area flow (the paper's
   compaction objective); [`Depth] minimizes estimated arrival first, with
   area flow as the tiebreak (the Design-Compiler-style timing-driven
   mode).  [refs] overrides the structural reference estimate — the
   area-recovery passes of {!select_iterated} feed back the reference
   counts of the previously chosen cover. *)
let select_cover ?(objective = `Area) ?refs:refs_override arch bound =
  let aig = bound.Aig.aig in
  let n = Aig.size aig in
  let cuts = Cut.enumerate aig ~k:cut_k ~max_cuts in
  (* Reference estimate: structural fanout plus root references. *)
  let refs =
    match refs_override with
    | Some r -> r
    | None ->
        let refs = Array.make n 0 in
        for id = 1 to n - 1 do
          if not (Aig.is_pi aig id) then begin
            let l0, l1 = Aig.fanins aig id in
            refs.(Aig.node_of l0) <- refs.(Aig.node_of l0) + 1;
            refs.(Aig.node_of l1) <- refs.(Aig.node_of l1) + 1
          end
        done;
        List.iter
          (fun (_, l) -> refs.(Aig.node_of l) <- refs.(Aig.node_of l) + 1)
          bound.Aig.roots;
        refs
  in
  (* Per-cut PLB config memo: a cut's truth table has arity <= cut_k = 3,
     so (arity, table) packs into 10 bits and the NPN canonization +
     [Config.choose] behind [config_of_tt] runs once per distinct function
     instead of twice (area + arrival) per candidate evaluation. *)
  let cfg_memo = Array.make 1024 None in
  let config_of tt =
    let key = (Bfun.arity tt lsl 8) lor Bfun.table tt in
    if key >= Array.length cfg_memo then config_of_tt arch tt
    else
      match cfg_memo.(key) with
      | Some c -> c
      | None ->
          let c = config_of_tt arch tt in
          cfg_memo.(key) <- Some c;
          c
  in
  let area_flow = Array.make n 0.0 in
  let arrival = Array.make n 0.0 in
  let best_cut = Array.make n None in
  let nominal_load = 10.0 in
  for id = 1 to n - 1 do
    if not (Aig.is_pi aig id) then begin
      let eval_area cfg (c : Cut.t) =
        Array.fold_left
          (fun acc leaf -> acc +. area_flow.(leaf))
          (Config.tile_cost arch cfg) c.Cut.leaves
      in
      let eval_arrival cfg (c : Cut.t) =
        let at =
          Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0.0 c.Cut.leaves
        in
        at +. Config.delay cfg ~load:nominal_load
      in
      let better c (bc, ba, bt) =
        let cfg = config_of c.Cut.tt in
        let a = eval_area cfg c and t = eval_arrival cfg c in
        let wins =
          match objective with
          | `Area -> a < ba || (a = ba && t < bt)
          | `Depth -> t < bt || (t = bt && a < ba)
        in
        if wins then (Some c, a, t) else (bc, ba, bt)
      in
      let candidates =
        List.filter (fun c -> Cut.leaf_count c > 1 || c.Cut.leaves.(0) <> id)
          cuts.(id)
      in
      let chosen, a, t =
        List.fold_left
          (fun acc c -> better c acc)
          (None, infinity, infinity) candidates
      in
      match chosen with
      | None -> assert false (* AND nodes always have their fanin cut *)
      | Some c ->
          best_cut.(id) <- Some c;
          area_flow.(id) <- a /. float_of_int (max 1 refs.(id));
          arrival.(id) <- t
    end
  done;
  (cuts, best_cut)

(* Reference counts of the *chosen* cover: each needed supernode references
   its cut leaves once, each root its node once.  Feeding these back into
   [select_cover] is classic area recovery — nodes the cover duplicates or
   drops get truthful (not structural) sharing estimates on the next
   pass. *)
let cover_refs aig roots best_cut needed =
  let refs = Array.make (Aig.size aig) 0 in
  Hashtbl.iter
    (fun id () ->
      if (not (Aig.is_const id)) && not (Aig.is_pi aig id) then
        match best_cut.(id) with
        | Some c ->
            Array.iter (fun l -> refs.(l) <- refs.(l) + 1) c.Cut.leaves
        | None -> assert false)
    needed;
  List.iter
    (fun (_, l) -> refs.(Aig.node_of l) <- refs.(Aig.node_of l) + 1)
    roots;
  refs

let cut_equal (a : Cut.t) (b : Cut.t) =
  a.Cut.leaves = b.Cut.leaves && Bfun.equal a.Cut.tt b.Cut.tt

(* Nodes actually used by the cover, reachable from the roots through the
   chosen cuts. *)
let needed_nodes aig roots best_cut =
  let needed = Hashtbl.create 256 in
  let rec visit id =
    if not (Hashtbl.mem needed id) then begin
      Hashtbl.add needed id ();
      if (not (Aig.is_const id)) && not (Aig.is_pi aig id) then
        match best_cut.(id) with
        | Some c -> Array.iter visit c.Cut.leaves
        | None -> assert false
    end
  in
  List.iter (fun (_, l) -> visit (Aig.node_of l)) roots;
  needed

(* Iterated cover selection: pass 1 is the single-shot default; each
   further pass re-runs the DP with reference counts taken from the cover
   before it (area recovery), so sharing estimates reflect the actual
   cover rather than structural fanout.  [on_pass] observes, per extra
   pass, the ids whose chosen cut changed — {!run_traced} uses it to drive
   incremental FlowMap relabeling. *)
let select_iterated ?objective ?(passes = 1) ?on_pass arch bound =
  let aig = bound.Aig.aig in
  let _, best0 = select_cover ?objective arch bound in
  let best = ref best0 in
  for pass = 2 to passes do
    let needed = needed_nodes aig bound.Aig.roots !best in
    let refs = cover_refs aig bound.Aig.roots !best needed in
    let _, best' = select_cover ?objective ~refs arch bound in
    (match on_pass with
    | Some f ->
        let changed = ref [] in
        for id = Aig.size aig - 1 downto 1 do
          match (!best.(id), best'.(id)) with
          | None, None -> ()
          | Some a, Some b ->
              if not (cut_equal a b) then changed := id :: !changed
          | Some _, None | None, Some _ -> changed := id :: !changed
        done;
        f ~pass ~changed:!changed
    | None -> ());
    best := best'
  done;
  !best

(* Full-adder extraction (paper Section 2.2): among supernodes sharing the
   same three leaves, a 3-input-XOR "sum" will be realized as an XOAMX whose
   first stage is the propagate P = x_i xor x_j; sibling supernodes of the
   form mux(P; source, source) — e.g. the majority carry — can then occupy a
   single extra MUX ([Config.Carry]) instead of their own XOA.  Only
   meaningful on architectures that have MUX resources. *)
let carry_overrides arch aig best_cut needed =
  let overrides = Hashtbl.create 16 in
  if Arch.Vector.get arch.Arch.capacity Arch.Mux = 0 then overrides
  else begin
    let groups = Hashtbl.create 64 in
    Hashtbl.iter
      (fun id () ->
        if (not (Aig.is_const id)) && not (Aig.is_pi aig id) then
          match best_cut.(id) with
          | Some c when Cut.leaf_count c = 3 ->
              let key = Array.to_list c.Cut.leaves in
              Hashtbl.replace groups key
                ((id, c.Cut.tt)
                :: Option.value ~default:[] (Hashtbl.find_opt groups key))
          | Some _ | None -> ())
      needed;
    let xor3 = Bfun.(var ~arity:3 0 ^^^ var ~arity:3 1 ^^^ var ~arity:3 2) in
    Hashtbl.iter
      (fun _key members ->
        let sums =
          List.filter
            (fun (_, tt) -> Bfun.equal tt xor3 || Bfun.equal tt (Bfun.lnot xor3))
            members
        in
        if sums <> [] then begin
          (* The XOA pair of the sum is free (XOR3 is symmetric); the first
             carry fixes it, later carries must agree. *)
          let fixed = ref None in
          List.iter
            (fun (id, tt) ->
              if not (List.exists (fun (s, _) -> s = id) sums) then
                match Config.carry_pair tt with
                | Some pair
                  when (match !fixed with None -> true | Some p -> p = pair) ->
                    fixed := Some pair;
                    Hashtbl.replace overrides id Config.Carry
                | Some _ | None -> ())
            members
        end)
      groups;
    overrides
  end

(* Emit the supernode netlist of a chosen cover. *)
let emit arch nl bound best_cut =
  let aig = bound.Aig.aig in
  let needed = needed_nodes aig bound.Aig.roots best_cut in
  let overrides = carry_overrides arch aig best_cut needed in
  let dst = Netlist.create ~name:(Netlist.design_name nl) () in
  (* Recreate the interface. *)
  let src_size = Netlist.size nl in
  let new_of_src = Array.make src_size (-1) in
  List.iter
    (fun i ->
      let name = Option.value ~default:(Printf.sprintf "pi%d" i)
          (Netlist.node nl i).Netlist.name in
      new_of_src.(i) <- Netlist.input dst name)
    (Netlist.inputs nl);
  List.iter
    (fun i -> new_of_src.(i) <- Netlist.dff ?name:(Netlist.node nl i).Netlist.name dst)
    (Netlist.flops nl);
  (* Emit selected supernodes bottom-up, positive polarity. *)
  let emitted = Array.make (Aig.size aig) (-1) in
  let rec emit_node id =
    if emitted.(id) >= 0 then emitted.(id)
    else begin
      let v =
        if Aig.is_const id then Netlist.gate dst (Kind.Const false) [||]
        else if Aig.is_pi aig id then
          new_of_src.(bound.Aig.pi_sources.(Aig.pi_index aig id))
        else begin
          let c =
            match best_cut.(id) with Some c -> c | None -> assert false
          in
          let fanins = Array.map emit_node c.Cut.leaves in
          let cfg =
            match Hashtbl.find_opt overrides id with
            | Some cfg -> cfg
            | None -> config_of_tt arch c.Cut.tt
          in
          Netlist.gate dst
            (Kind.Mapped { cell = Config.cell_name cfg; fn = c.Cut.tt })
            fanins
        end
      in
      emitted.(id) <- v;
      v
    end
  in
  (* A root literal: positive polarity reuses the node's supernode; negative
     polarity derives the complemented supernode from the same cut without
     forcing the positive one into existence (Invb for PIs/constant). *)
  let neg_emitted = Hashtbl.create 16 in
  let emit_root l =
    let id = Aig.node_of l in
    if not (Aig.is_complement l) then emit_node id
    else
      match Hashtbl.find_opt neg_emitted id with
      | Some v -> v
      | None ->
          let v =
            if Aig.is_const id then Netlist.gate dst (Kind.Const true) [||]
            else if Aig.is_pi aig id then
              let inv1 = Bfun.lnot (Bfun.var ~arity:1 0) in
              Netlist.gate dst
                (Kind.Mapped { cell = Config.cell_name Config.Invb; fn = inv1 })
                [| emit_node id |]
            else
              let c =
                match best_cut.(id) with Some c -> c | None -> assert false
              in
              let fanins = Array.map emit_node c.Cut.leaves in
              let tt = Bfun.lnot c.Cut.tt in
              let cfg =
                match Hashtbl.find_opt overrides id with
                | Some cfg -> cfg
                | None -> config_of_tt arch tt
              in
              Netlist.gate dst
                (Kind.Mapped { cell = Config.cell_name cfg; fn = tt })
                fanins
          in
          Hashtbl.replace neg_emitted id v;
          v
  in
  List.iter
    (fun (root, l) ->
      let v = emit_root l in
      match root with
      | Aig.Po o ->
          let name = Option.value ~default:(Printf.sprintf "po%d" o)
              (Netlist.node nl o).Netlist.name in
          ignore (Netlist.output dst name v)
      | Aig.Flop_d f -> Netlist.connect dst ~flop:new_of_src.(f) ~d:v)
    bound.Aig.roots;
  dst

let run ?objective ?passes arch nl =
  let bound = Aig.of_netlist nl in
  let best_cut = select_iterated ?objective ?passes arch bound in
  emit arch nl bound best_cut

type pass_trace = { pass : int; changed : int list; labels : int array }

let run_traced ?objective ?passes arch nl =
  let bound = Aig.of_netlist nl in
  let inc = Flowmap.Incremental.create bound.Aig.aig ~k:cut_k in
  let snapshot pass changed =
    { pass; changed; labels = Array.copy (Flowmap.Incremental.labels inc) }
  in
  let traces = ref [ snapshot 1 [] ] in
  let relabeled = ref false in
  let on_pass ~pass ~changed =
    relabeled := true;
    Flowmap.Incremental.relabel inc ~dirty:changed;
    traces := snapshot pass changed :: !traces
  in
  let best_cut = select_iterated ?objective ?passes ~on_pass arch bound in
  (* Single-pass runs never relabel; certify the from-scratch labels with
     an empty dirty set so the reuse counters still reach the trace (every
     label reused, zero max-flow decisions re-run). *)
  if not !relabeled then Flowmap.Incremental.relabel inc ~dirty:[];
  (emit arch nl bound best_cut, List.rev !traces)

let config_histogram nl =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      match n.Netlist.kind with
      | Kind.Mapped { cell; _ } -> (
          match Config.of_cell_name cell with
          | Some c ->
              Hashtbl.replace counts c
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
          | None -> ())
      | _ -> ())
    (Netlist.nodes nl);
  List.filter_map
    (fun c ->
      match Hashtbl.find_opt counts c with
      | Some n -> Some (c, n)
      | None -> None)
    Config.all
