(** Exact FlowMap labeling (Cong & Ding) via max-flow min-cut — the
    "maxflow-mincut algorithm similar to Flowmap" the paper's compaction is
    built on.

    [label v] is the depth of a depth-optimal k-feasible-cut cover at node
    [v]; a node's label exceeds the max fanin label only when no k-feasible
    cut of that height exists, decided by a unit-node-capacity max-flow
    computation on the collapsed fanin cone.

    Per-node decisions run on a reused arena (stamp-array cone collection
    plus one {!Vpga_maxflow.Maxflow} network rewound per node), and emit
    the ambient counters [flowmap.maxflow_calls] / [flowmap.labels_reused].

    Exact labeling is quadratic; use it on blocks up to a few thousand AND
    nodes (the production cover in {!Compact} uses priority cuts instead,
    which this module's tests cross-validate). *)

val labels : Vpga_aig.Aig.t -> k:int -> int array
(** Per-node FlowMap label; PIs and the constant are 0. *)

val depth : Vpga_aig.Aig.t -> k:int -> int
(** Maximum label = depth of the depth-optimal k-LUT mapping. *)

val min_height_cut_exists : Vpga_aig.Aig.t -> k:int -> int -> int array -> bool
(** [min_height_cut_exists aig ~k v labels] decides, via max-flow, whether
    node [v] has a k-feasible cut all of whose leaves have labels strictly
    below the maximum fanin label (exposed for testing). *)

(** Labels maintained incrementally across compaction passes.  A node is
    relabeled only when its fanin cone may contain a dirty node — the
    invalidation rule is [affected t = dirty t || affected fanin0 ||
    affected fanin1], folded in topological order — and every other node
    reuses its stored label, which is sound because an untouched cone
    yields the same collapsed set and flow network. *)
module Incremental : sig
  type t

  val create : Vpga_aig.Aig.t -> k:int -> t
  (** From-scratch labeling (equal to {!val:labels}) plus the reusable
      decision arena. *)

  val labels : t -> int array
  (** The current labels; owned by [t], do not mutate. *)

  val relabel : t -> dirty:int list -> unit
  (** Recompute the labels of every node whose cone may contain a node in
      [dirty] (and of the dirty nodes themselves); all other labels are
      reused.  Emits [flowmap.maxflow_calls] (decisions re-run) and
      [flowmap.labels_reused] (decisions skipped). *)
end
