module Netlist = Vpga_netlist.Netlist
module Equiv = Vpga_netlist.Equiv
module Stats = Vpga_netlist.Stats
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Anneal = Vpga_place.Anneal
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Pathfinder = Vpga_route.Pathfinder
module Grid = Vpga_route.Grid
module Detail = Vpga_route.Detail
module Sta = Vpga_timing.Sta
module Power = Vpga_timing.Power
module Lint = Vpga_verify.Lint
module Analysis = Vpga_analysis.Analysis
module Ownership = Vpga_analysis.Ownership
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Diag = Vpga_verify.Diag
module Fail = Vpga_resil.Fail
module Defect = Vpga_resil.Defect
module Policy = Vpga_resil.Policy
module Log = Vpga_resil.Log
module Retry = Vpga_resil.Retry
module Trace = Vpga_obs.Trace
module Attr = Vpga_obs.Span
module Cache = Vpga_cache.Cache
module Ckey = Vpga_cache.Key

type kind = Flow_a | Flow_b

type verify = Off | Fast | Formal

type outcome = {
  design : string;
  arch : Arch.t;
  kind : kind;
  die_area : float;
  cell_area : float;
  gate_count : float;
  avg_top10_slack : float;
  wns : float;
  wirelength : float;
  array_dims : (int * int) option;
  tiles_used : int;
  compaction_gain : float;
  config_histogram : (Config.t * int) list;
  displacement : float;
  displacement_tiles : float;
  power_uw : float;  (* total power estimate, uW *)
  routed_vias : int;  (* detailed-routing via count *)
}

type pair = { a : outcome; b : outcome }

let check_equivalence reference candidate =
  match Equiv.check ~vectors:24 ~sequence_length:6 ~seed:2024 reference candidate with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch { cycle; output; _ } ->
      failwith
        (Printf.sprintf "flow stage broke design %s (cycle %d, output %d)"
           (Netlist.design_name reference) cycle output)

let check_structure ~stage nl =
  match Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: invalid netlist: %s" stage msg)

let run ?(seed = 1) ?(period = 500.0) ?(utilization = 0.7)
    ?anneal_iterations ?(refine = true) ?(use_criticality = true)
    ?(jobs = 1) ?(verify = Fast) ?(policy = Policy.default) ?log
    ?(trace = Trace.null) ?(trace_labels = true) ?(analyze = false) ?defect
    ?(cache = Cache.none) arch nl =
  let design = Netlist.design_name nl in
  let log = match log with Some l -> l | None -> Log.create () in
  (* An empty defect map is the healthy fabric: normalize it away so the
     no-defect flow stays bit-identical to the pre-defect-layer code
     (shared full-track arrays, no dead-tile plumbing). *)
  let defect =
    match defect with Some d when Defect.is_empty d -> None | d -> d
  in
  let track_fn = Option.map Defect.tracks defect in
  let dead_tile_fn = Option.map Defect.tile_dead defect in
  (* Content-addressed memoization of the stage boundaries.  Every key is
     built in [Stagekey] from the digests of the stage's actual inputs,
     so a hit is exactly a rerun of the same deterministic computation;
     values revive as fresh copies ([Cache]'s put-time serialization), so
     the flow's in-place mutation of placements never reaches an entry. *)
  let keyed = Cache.enabled cache in
  let opts =
    {
      Stagekey.seed;
      period;
      utilization;
      anneal_iterations;
      use_criticality;
      verify = (match verify with Off -> 0 | Fast -> 1 | Formal -> 2);
      policy;
      defect;
    }
  in
  let d_nl = lazy (Ckey.netlist_hex nl) in
  let d_arch = lazy (Ckey.arch_hex arch) in
  (* Every stage boundary opens a span on [trace]; [Trace.with_span] also
     installs the trace as the domain's ambient sink, so counters emitted
     deep inside the annealer / PathFinder / SAT / cut enumeration land in
     this task's registry.  With [trace = Trace.null] every span is one
     branch and nothing else. *)
  let span ?attrs name f = Trace.with_span ?attrs trace name f in
  (* Replay the recovery log onto the trace timeline as instant events;
     [Log.record] stamps the same monotonic clock the spans use, so they
     correlate exactly. *)
  let flush_recovery () =
    List.iter
      (fun { Log.at_ns; event } ->
        let name, stage, detail =
          match event with
          | Log.Retry { stage; attempt; reason } ->
              ( "resil:retry",
                stage,
                Printf.sprintf "attempt %d: %s" attempt reason )
          | Log.Escalation { stage; what } -> ("resil:escalate", stage, what)
          | Log.Degraded { stage; what } -> ("resil:degrade", stage, what)
        in
        Trace.instant ~ts_ns:at_ns
          ~attrs:[ ("stage", Attr.Str stage); ("detail", Attr.Str detail) ]
          trace name)
      (Log.timed log)
  in
  (* [cmemo stage mk compute]: look the stage up under [mk ()]'s key; on
     a hit, replay the recovery events its compute recorded (so warm
     summaries match cold ones) and mark the timeline; on a miss, run
     [compute] and store its value together with the event suffix it
     appended to [log].  Failures propagate and are never cached. *)
  let cmemo : 'a. string -> (unit -> Ckey.t) -> (unit -> 'a) -> 'a =
   fun stage mk compute ->
    if not keyed then compute ()
    else
      let k = mk () in
      match Cache.find cache k with
      | Some (v, events) ->
          List.iter (Log.record log) events;
          Trace.instant ~attrs:[ ("stage", Attr.Str stage) ] trace "cache:hit";
          v
      | None ->
          let before = List.length (Log.events log) in
          let v = compute () in
          let suffix =
            let rec drop n l =
              if n <= 0 then l
              else match l with [] -> [] | _ :: t -> drop (n - 1) t
            in
            drop before (Log.events log)
          in
          Cache.put cache k (v, suffix);
          v
  in
  let vfast = verify <> Off in
  let vformal = verify = Formal in
  (* Verification gates abort with a *typed* failure: the stage name,
     attempt count and the diagnostics that condemned it. *)
  let guard ?(attempts = 1) stage f =
    try f ()
    with Failure msg ->
      Fail.raise_
        (Fail.make ~stage ~design ~attempts
           ~diags:[ Diag.error "verify-failed" "%s" msg ]
           ~events:(Log.strings log) ())
  in
  (* Structural well-formedness at every stage boundary. *)
  let structure stage nl' =
    if vfast then guard stage (fun () -> check_structure ~stage nl')
  in
  (* Formal proofs walk the policy's conflict-budget ladder; when every
     budget comes back [Undecided] the stage degrades Formal -> Fast
     (the randomized gate already passed) with a recorded warning. *)
  let formal_prove stage candidate =
    let refute attempts { Cec.root; root_is_flop; _ } =
      Fail.raise_
        (Fail.make ~stage ~design ~attempts
           ~diags:
             [
               Diag.error "cec-refuted"
                 "SAT equivalence check refuted design %s (%s %d differs)"
                 design
                 (if root_is_flop then "flop D pin" else "output")
                 root;
             ]
           ~events:(Log.strings log) ())
    in
    let degrade () =
      Log.record log
        (Log.Degraded
           {
             stage;
             what =
               "SAT proof undecided within the policy's conflict budgets; \
                relying on the randomized equivalence gate";
           })
    in
    let rec go attempt = function
      | [] -> degrade ()
      | budget :: rest -> (
          let verdict =
            match budget with
            | None -> (
                match Cec.check nl candidate with
                | Cec.Equivalent -> Cec.Proved
                | Cec.Inequivalent cex -> Cec.Refuted cex)
            | Some mc -> Cec.check_bounded ~max_conflicts:mc nl candidate
          in
          match verdict with
          | Cec.Proved -> ()
          | Cec.Refuted cex -> refute (attempt + 1) cex
          | Cec.Undecided -> (
              match rest with
              | [] -> degrade ()
              | next :: _ ->
                  let show = function
                    | Some b -> string_of_int b
                    | None -> "unbounded"
                  in
                  Log.record log
                    (Log.Retry
                       {
                         stage;
                         attempt = attempt + 1;
                         reason = "SAT proof undecided within conflict budget";
                       });
                  Log.record log
                    (Log.Escalation
                       {
                         stage;
                         what =
                           Printf.sprintf "conflict budget %s -> %s"
                             (show budget) (show next);
                       });
                  go (attempt + 1) rest))
    in
    go 0 policy.Policy.cec_budgets
  in
  (* Functional equivalence against the source netlist: the randomized
     simulation gate is a fast pre-filter; at [Formal] the SAT-based
     checker then proves what simulation only sampled. *)
  let equiv stage candidate =
    if vfast then guard stage (fun () -> check_equivalence nl candidate);
    if vformal then formal_prove stage candidate
  in
  (* Cached equivalence gate: the simulation + SAT work dominates these
     spans; the structural check stays live as a per-run spot check.
     With verification off the gate is a no-op, so nothing is cached. *)
  let equiv_gate stage candidate d_candidate =
    if vfast then
      cmemo stage
        (fun () ->
          Stagekey.verify_gate ~stage ~source:(Lazy.force d_nl)
            ~candidate:(Lazy.force d_candidate) opts)
        (fun () -> equiv stage candidate)
  in
  let phys stage check =
    if vfast then
      span stage (fun () ->
          guard stage (fun () -> Diag.fail_on_errors ~stage (check ())))
  in
  let body () =
  span "verify:input" (fun () ->
      structure "verify:input" nl;
      if vfast then
        guard "verify:lint" (fun () -> Lint.check ~stage:"verify:lint" nl));
  (* Static dataflow analysis over the source netlist: detection only
     (no simplification inside the flow — rewrites belong to explicit
     [vpga analyze --simplify] invocations), counters onto the ambient
     trace, errors fatal like any other verification gate. *)
  if analyze then
    span "analyze:input" (fun () ->
        let a = Analysis.run ~simplify:false nl in
        Analysis.emit a;
        guard "analyze:input" (fun () ->
            Diag.fail_on_errors ~stage:"analyze:input" (Analysis.diags a)));
  let gate_count = Stats.gate_count nl in
  (* Front-end: map, compact, buffer. *)
  let mapped =
    span "map" (fun () ->
        cmemo "map"
          (fun () ->
            Stagekey.map ~nl:(Lazy.force d_nl) ~arch:(Lazy.force d_arch) opts)
          (fun () -> Techmap.map arch nl))
  in
  let d_mapped = lazy (Ckey.netlist_hex mapped) in
  span "verify:techmap" (fun () ->
      structure "verify:techmap" mapped;
      equiv_gate "verify:techmap" mapped d_mapped);
  let compacted, compaction_gain =
    span "compact" (fun () ->
        (* Traced runs go through [run_traced]: same cover at the same pass
           count, but the incremental FlowMap labeler runs alongside, so
           [flowmap.*] counters land in the trace.  From-scratch labeling is
           far costlier than the compaction DP on large inputs, so callers
           that trace for stage {e timings} (the bench sweep) opt out via
           [trace_labels:false]. *)
        let compacted =
          cmemo "compact"
            (fun () ->
              Stagekey.compact ~nl:(Lazy.force d_nl)
                ~arch:(Lazy.force d_arch) opts)
            (fun () ->
              if trace_labels && Trace.enabled trace then
                fst (Compact.run_traced arch nl)
              else Compact.run arch nl)
        in
        let before = Techmap.cell_area mapped in
        let gain =
          if before <= 0.0 then 0.0
          else 1.0 -. (Techmap.cell_area compacted /. before)
        in
        (compacted, gain))
  in
  let d_compacted = lazy (Ckey.netlist_hex compacted) in
  span "verify:compact" (fun () ->
      structure "verify:compact" compacted;
      equiv_gate "verify:compact" compacted d_compacted);
  let buffered, cell_area, config_histogram =
    span "buffer" (fun () ->
        let buffered =
          cmemo "buffer"
            (fun () ->
              Stagekey.buffer ~compacted:(Lazy.force d_compacted)
                ~max_fanout:8 opts)
            (fun () -> Buffering.insert ~max_fanout:8 compacted)
        in
        ( buffered,
          Techmap.cell_area buffered,
          Compact.config_histogram buffered ))
  in
  let d_buffered = lazy (Ckey.netlist_hex buffered) in
  span "verify:buffer" (fun () ->
      structure "verify:buffer" buffered;
      equiv_gate "verify:buffer" buffered d_buffered);
  Trace.set trace "flow.gate_count" gate_count;
  Trace.set trace "flow.cells" (float_of_int (Netlist.size buffered));
  (* Placement (shared).  The cached value is the coordinate arrays:
     [Placement.create] (graph construction) reruns on a hit — cheap —
     and the coordinates blit into the fresh placement, so downstream
     mutation (annealing, snapping) works on this run's own arrays. *)
  let pl =
    span "place:global" (fun () ->
        let pl = Placement.create ~utilization buffered in
        let px, py =
          cmemo "place:global"
            (fun () ->
              Stagekey.place_global ~buffered:(Lazy.force d_buffered) opts)
            (fun () ->
              Global.place ~seed pl;
              (pl.Placement.x, pl.Placement.y))
        in
        (* A miss hands back [pl]'s own arrays; only a hit needs the blit. *)
        if px != pl.Placement.x then begin
          Array.blit px 0 pl.Placement.x 0 (Array.length px);
          Array.blit py 0 pl.Placement.y 0 (Array.length py)
        end;
        pl)
  in
  let d_pl_global = if keyed then Stagekey.placement_hex pl else "" in
  (* Criticality from a pre-route timing estimate. *)
  let crit =
    span "sta:pre" (fun () ->
        if use_criticality then Sta.criticality (Sta.run ~period buffered)
        else Array.make (Netlist.size buffered) 0.0)
  in
  let iterations =
    match anneal_iterations with
    | Some i -> Some i
    | None -> Some (min 400_000 (40 * Netlist.size buffered))
  in
  (* Annealing with divergence detection: if a walk ends above its
     starting cost, restore the pre-anneal placement and restart with a
     derived reseed at a cooler temperature; attempt 0 reproduces the
     policy-free flow exactly.  Exhaustion is survivable — the pre-anneal
     (global) placement is already legal, so the flow continues on it. *)
  let () =
    span "place:anneal" @@ fun () ->
    let stage = "place:anneal" in
    let base_seed = seed + 1 in
    let n = Array.length pl.Placement.x in
    let rec go attempt t_start =
      let sx = Array.copy pl.Placement.x and sy = Array.copy pl.Placement.y in
      let stats =
        Anneal.refine ?iterations ~criticality:crit ?t_start
          ~seed:(Retry.reseed ~seed:base_seed ~attempt)
          pl
      in
      if stats.Anneal.final_cost > stats.Anneal.initial_cost then begin
        Array.blit sx 0 pl.Placement.x 0 n;
        Array.blit sy 0 pl.Placement.y 0 n;
        let reason =
          Printf.sprintf "annealing cost diverged (%.0f -> %.0f)"
            stats.Anneal.initial_cost stats.Anneal.final_cost
        in
        if attempt + 1 < policy.Policy.max_attempts then begin
          let t' =
            match t_start with
            | Some t -> t *. policy.Policy.anneal_cooling
            | None -> 1.0 (* restart well below the adaptive default *)
          in
          Log.record log (Log.Retry { stage; attempt = attempt + 1; reason });
          Log.record log
            (Log.Escalation
               {
                 stage;
                 what =
                   Printf.sprintf
                     "restart with derived reseed at t_start %.3g" t';
               });
          go (attempt + 1) (Some t')
        end
        else
          Log.record log
            (Log.Degraded
               { stage; what = reason ^ "; keeping the pre-anneal placement" })
      end
    in
    let ax, ay =
      cmemo stage
        (fun () ->
          Stagekey.place_anneal ~buffered:(Lazy.force d_buffered)
            ~pl:d_pl_global opts)
        (fun () ->
          go 0 policy.Policy.anneal_t_start;
          (pl.Placement.x, pl.Placement.y))
    in
    if ax != pl.Placement.x then begin
      Array.blit ax 0 pl.Placement.x 0 n;
      Array.blit ay 0 pl.Placement.y 0 n
    end
  in
  phys "verify:placement(a)" (fun () -> Phys.check_placement pl);
  let d_pl = if keyed then Stagekey.placement_hex pl else "" in
  let activities =
    span "power:activities" (fun () ->
        cmemo "power:activities"
          (fun () ->
            Stagekey.activities ~buffered:(Lazy.force d_buffered) opts)
          (fun () -> Power.activities ~seed:(seed + 7) buffered))
  in
  (* Global + detailed routing under the escalation ladder: leftover
     channel overflow or a track-assignment conflict buys the next
     attempt a wider channel and a bigger rip-up budget.  Exhaustion
     with overflow degrades (detailed routing is skipped, vias = -1,
     matching the policy-free flow's behavior on congested results);
     exhaustion on a track conflict is fatal. *)
  let route_stage tag pl =
    let stage = "route:" ^ tag in
    let iterations_of attempt =
      30 + (policy.Policy.route_extra_iterations * attempt)
    in
    let rec go attempt capacity =
      let routed =
        Pathfinder.route_placement ?capacity ?tracks:track_fn
          ~max_iterations:(iterations_of attempt) pl
      in
      let escalate reason =
        let base = routed.Pathfinder.grid.Grid.capacity in
        let cap =
          max (base + 1)
            (int_of_float
               (ceil (float_of_int base *. policy.Policy.route_capacity_growth)))
        in
        Log.record log (Log.Retry { stage; attempt = attempt + 1; reason });
        Log.record log
          (Log.Escalation
             {
               stage;
               what =
                 Printf.sprintf
                   "channel capacity %d -> %d, rip-up iterations %d -> %d" base
                   cap (iterations_of attempt)
                   (iterations_of (attempt + 1));
             });
        go (attempt + 1) (Some cap)
      in
      let exhausted = attempt + 1 >= policy.Policy.max_attempts in
      if routed.Pathfinder.final_overflow > 0 then begin
        let reason =
          Printf.sprintf "%d unit(s) of channel overflow left after %d rip-up \
                          iteration(s)"
            routed.Pathfinder.final_overflow routed.Pathfinder.iterations
        in
        if not exhausted then escalate reason
        else begin
          Log.record log
            (Log.Degraded { stage; what = reason ^ "; detailed routing skipped" });
          (routed, -1)
        end
      end
      else
        match
          span "route:detail" (fun () ->
              Detail.run_result routed.Pathfinder.grid routed.Pathfinder.routes)
        with
        | Ok d ->
            phys
              (Printf.sprintf "verify:tracks(%s)" tag)
              (fun () -> Phys.check_tracks d routed.Pathfinder.routes);
            (routed, d.Detail.total_vias)
        | Error reason ->
            if not exhausted then escalate reason
            else
              Fail.raise_
                (Fail.make ~stage ~design ~attempts:(attempt + 1)
                   ~diags:[ Diag.error "track-overflow" "%s" reason ]
                   ~events:(Log.strings log) ())
    in
    go 0 policy.Policy.route_capacity
  in
  (* Caches the whole escalation ladder — global routing, detailed
     routing, the embedded track gate — as one entry per placement. *)
  let cached_route tag pl_for d_pl_for =
    cmemo ("route:" ^ tag)
      (fun () ->
        Stagekey.route ~tag ~buffered:(Lazy.force d_buffered) ~pl:d_pl_for
          opts)
      (fun () -> route_stage tag pl_for)
  in
  (* ---- Flow a: ASIC-style ---- *)
  let routed_a, vias_a = span "route:a" (fun () -> cached_route "a" pl d_pl) in
  phys "verify:routing(a)" (fun () -> Phys.check_routing routed_a pl);
  let wire_a, sta_a =
    span "sta:a" (fun () ->
        let wire = Pathfinder.wire_loads routed_a in
        (wire, Sta.run ~period ~wire buffered))
  in
  let power_a =
    span "power:a" (fun () ->
        Power.estimate ~period ~wire:wire_a ~activities buffered)
  in
  let outcome_a =
    {
      design;
      arch;
      kind = Flow_a;
      die_area = pl.Placement.die_w *. pl.Placement.die_h;
      cell_area;
      gate_count;
      avg_top10_slack = Sta.average_top_slack sta_a 10;
      wns = sta_a.Sta.wns;
      wirelength = Pathfinder.total_wirelength routed_a;
      array_dims = None;
      tiles_used = 0;
      compaction_gain;
      config_histogram;
      displacement = 0.0;
      displacement_tiles = 0.0;
      power_uw = power_a.Power.total_uw;
      routed_vias = vias_a;
    }
  in
  (* ---- Flow b: pack into the PLB array ---- *)
  (* Legalization under the relaxation ladder: an unfittable design buys
     the next attempt a roomier array (lower target utilization).
     Exhaustion is fatal — there is no flow b without a legal packing. *)
  let q =
    span "pack:quadrisect" @@ fun () ->
    let stage = "pack:quadrisect" in
    cmemo stage
      (fun () ->
        Stagekey.quadrisect ~arch:(Lazy.force d_arch)
          ~buffered:(Lazy.force d_buffered) ~pl:d_pl opts)
    @@ fun () ->
    let rec go attempt utilization =
      match
        Quadrisect.legalize_result ~utilization ~criticality:crit
          ?dead_tile:dead_tile_fn arch pl
      with
      | Ok q -> q
      | Error fe ->
          let reason = Quadrisect.fit_error_to_string fe in
          if attempt + 1 < policy.Policy.max_attempts then begin
            let u = utilization *. policy.Policy.pack_relaxation in
            Log.record log (Log.Retry { stage; attempt = attempt + 1; reason });
            Log.record log
              (Log.Escalation
                 {
                   stage;
                   what =
                     Printf.sprintf
                       "grow the array: target utilization %.2f -> %.2f"
                       utilization u;
                 });
            go (attempt + 1) u
          end
          else
            Fail.raise_
              (Fail.make ~stage ~design ~attempts:(attempt + 1)
                 ~diags:[ Diag.error "pack-unfit" "%s" reason ]
                 ~events:(Log.strings log) ())
    in
    go 0 policy.Policy.pack_utilization
  in
  (* One precomputed dead-tile view at the final packing's dims, shared
     by the checker and the refinement loop. *)
  let dead_pred =
    Option.map
      (fun d ->
        Defect.dead_pred d ~cols:q.Quadrisect.cols ~rows:q.Quadrisect.rows)
      defect
  in
  phys "verify:packing" (fun () ->
      Phys.check_packing ?dead_tile:dead_pred q buffered);
  let pl_b =
    span "pack:snap" (fun () ->
        let side = sqrt arch.Arch.tile_area in
        let pl_b =
          {
            pl with
            Placement.die_w = float_of_int q.Quadrisect.cols *. side;
            die_h = float_of_int q.Quadrisect.rows *. side;
          }
        in
        Quadrisect.snap q pl_b;
        pl_b)
  in
  (* The paper's packing <-> physical-synthesis iteration: refine tile
     assignments under the criticality-weighted wirelength cost. *)
  if refine then begin
    (* Region grid: a fixed function of the array dims (never of [jobs],
       which only bounds worker domains), so refinement is reproducible
       at any parallelism.  Small arrays stay on the single-region
       reference walk. *)
    let regions =
      if min q.Quadrisect.cols q.Quadrisect.rows >= 12 then 2 else 1
    in
    (* Static ownership proof before the walks run, then the dynamic
       guard ([sanitize]) inside them: a decomposition bug surfaces as a
       structured diagnostic here, or as an [Occupancy.Race] at the
       faulting write instead of silent corruption. *)
    if analyze then
      span "analyze:regions" (fun () ->
          let r = Ownership.check ~regions q in
          Trace.emit "analysis.sanitizer_checks" (float_of_int r.Ownership.checks);
          guard "analyze:regions" (fun () ->
              Diag.fail_on_errors ~stage:"analyze:regions" r.Ownership.diags));
    span "pack:refine" (fun () ->
        (* [Refine.run] mutates exactly the tile assignment and the
           snapped coordinates, so that triple is the cached value; a hit
           blits it over this run's packing. *)
        let tiles, rx, ry =
          cmemo "pack:refine"
            (fun () ->
              Stagekey.refine ~buffered:(Lazy.force d_buffered)
                ~q:(Stagekey.quad_hex q) opts)
            (fun () ->
              (try
                 ignore
                   (Vpga_pack.Refine.run ~criticality:crit ~seed:(seed + 2)
                      ~iterations:(min 400_000 (60 * Netlist.size buffered))
                      ~jobs ~regions ~sanitize:analyze ?dead_tile:dead_pred q
                      pl_b)
               with
              | Vpga_pack.Refine.Infeasible msg ->
                  Fail.raise_
                    (Fail.make ~stage:"pack:refine" ~design ~attempts:1
                       ~diags:[ Diag.error "pack-infeasible" "%s" msg ]
                       ~events:(Log.strings log) ())
              | Vpga_plb.Occupancy.Race { owner; writer } ->
                  Fail.raise_
                    (Fail.make ~stage:"pack:refine" ~design ~attempts:1
                       ~diags:
                         [
                           Diag.error "region-race"
                             "cross-region occupancy write: tile owned by \
                              region %d mutated by region %d's walk"
                             owner writer;
                         ]
                       ~events:(Log.strings log) ()));
              (q.Quadrisect.tile_of_node, pl_b.Placement.x, pl_b.Placement.y))
        in
        if tiles != q.Quadrisect.tile_of_node then begin
          Array.blit tiles 0 q.Quadrisect.tile_of_node 0 (Array.length tiles);
          Array.blit rx 0 pl_b.Placement.x 0 (Array.length rx);
          Array.blit ry 0 pl_b.Placement.y 0 (Array.length ry)
        end)
  end;
  phys "verify:placement(b)" (fun () -> Phys.check_placement pl_b);
  let d_pl_b = if keyed then Stagekey.placement_hex pl_b else "" in
  let routed_b, vias_b =
    span "route:b" (fun () -> cached_route "b" pl_b d_pl_b)
  in
  phys "verify:routing(b)" (fun () -> Phys.check_routing routed_b pl_b);
  let wire_b, sta_b =
    span "sta:b" (fun () ->
        let wire = Pathfinder.wire_loads routed_b in
        (wire, Sta.run ~period ~wire buffered))
  in
  let power_b =
    span "power:b" (fun () ->
        Power.estimate ~period ~wire:wire_b ~activities buffered)
  in
  let outcome_b =
    {
      design;
      arch;
      kind = Flow_b;
      die_area = Quadrisect.array_area q;
      cell_area;
      gate_count;
      avg_top10_slack = Sta.average_top_slack sta_b 10;
      wns = sta_b.Sta.wns;
      wirelength = Pathfinder.total_wirelength routed_b;
      array_dims = Some (q.Quadrisect.cols, q.Quadrisect.rows);
      tiles_used = q.Quadrisect.tiles_used;
      compaction_gain;
      config_histogram;
      displacement = q.Quadrisect.displacement;
      displacement_tiles = q.Quadrisect.mean_displacement_tiles;
      power_uw = power_b.Power.total_uw;
      routed_vias = vias_b;
    }
  in
  { a = outcome_a; b = outcome_b }
  in
  match
    span "flow"
      ~attrs:
        [
          ("design", Attr.Str design);
          ("arch", Attr.Str arch.Arch.name);
          ("seed", Attr.Int seed);
        ]
      body
  with
  | pair ->
      flush_recovery ();
      pair
  | exception e ->
      flush_recovery ();
      raise e
