module Netlist = Vpga_netlist.Netlist
module Equiv = Vpga_netlist.Equiv
module Stats = Vpga_netlist.Stats
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Anneal = Vpga_place.Anneal
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Sta = Vpga_timing.Sta
module Power = Vpga_timing.Power
module Lint = Vpga_verify.Lint
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Diag = Vpga_verify.Diag

type kind = Flow_a | Flow_b

type verify = Off | Fast | Formal

type outcome = {
  design : string;
  arch : Arch.t;
  kind : kind;
  die_area : float;
  cell_area : float;
  gate_count : float;
  avg_top10_slack : float;
  wns : float;
  wirelength : float;
  array_dims : (int * int) option;
  tiles_used : int;
  compaction_gain : float;
  config_histogram : (Config.t * int) list;
  displacement : float;
  displacement_tiles : float;
  power_uw : float;  (* total power estimate, uW *)
  routed_vias : int;  (* detailed-routing via count *)
}

type pair = { a : outcome; b : outcome }

let check_equivalence reference candidate =
  match Equiv.check ~vectors:24 ~sequence_length:6 ~seed:2024 reference candidate with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch { cycle; output; _ } ->
      failwith
        (Printf.sprintf "flow stage broke design %s (cycle %d, output %d)"
           (Netlist.design_name reference) cycle output)

let check_structure ~stage nl =
  match Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: invalid netlist: %s" stage msg)

let run ?(seed = 1) ?(period = 500.0) ?(utilization = 0.7)
    ?anneal_iterations ?(refine = true) ?(use_criticality = true)
    ?(verify = Fast) arch nl =
  let design = Netlist.design_name nl in
  let vfast = verify <> Off in
  let vformal = verify = Formal in
  (* Structural well-formedness at every stage boundary. *)
  let structure stage nl' = if vfast then check_structure ~stage nl' in
  (* Functional equivalence against the source netlist: the randomized
     simulation gate is a fast pre-filter; at [Formal] the SAT-based
     checker then proves what simulation only sampled. *)
  let equiv stage candidate =
    if vfast then check_equivalence nl candidate;
    if vformal then Cec.prove ~stage nl candidate
  in
  let phys stage diags = if vfast then Diag.fail_on_errors ~stage diags in
  structure "verify:input" nl;
  if vfast then Lint.check ~stage:"verify:lint" nl;
  let gate_count = Stats.gate_count nl in
  (* Front-end: map, compact, buffer. *)
  let mapped = Techmap.map arch nl in
  structure "verify:techmap" mapped;
  equiv "verify:techmap" mapped;
  let compacted = Compact.run arch nl in
  structure "verify:compact" compacted;
  equiv "verify:compact" compacted;
  let compaction_gain =
    let before = Techmap.cell_area mapped in
    if before <= 0.0 then 0.0
    else 1.0 -. (Techmap.cell_area compacted /. before)
  in
  let buffered = Buffering.insert ~max_fanout:8 compacted in
  structure "verify:buffer" buffered;
  equiv "verify:buffer" buffered;
  let cell_area = Techmap.cell_area buffered in
  let config_histogram = Compact.config_histogram buffered in
  (* Placement (shared). *)
  let pl = Placement.create ~utilization buffered in
  Global.place ~seed pl;
  (* Criticality from a pre-route timing estimate. *)
  let pre_sta = Sta.run ~period buffered in
  let crit =
    if use_criticality then Sta.criticality pre_sta
    else Array.make (Netlist.size buffered) 0.0
  in
  let iterations =
    match anneal_iterations with
    | Some i -> Some i
    | None -> Some (min 400_000 (40 * Netlist.size buffered))
  in
  ignore (Anneal.refine ?iterations ~criticality:crit ~seed:(seed + 1) pl);
  phys "verify:placement(a)" (Phys.check_placement pl);
  let activities = Power.activities ~seed:(seed + 7) buffered in
  (* ---- Flow a: ASIC-style ---- *)
  let routed_a = Pathfinder.route_placement pl in
  phys "verify:routing(a)" (Phys.check_routing routed_a pl);
  let wire_a = Pathfinder.wire_loads routed_a in
  let detail_vias stage routed =
    (* track assignment needs an overflow-free global result *)
    if routed.Pathfinder.final_overflow = 0 then begin
      let d = Detail.run routed.Pathfinder.grid routed.Pathfinder.routes in
      phys stage (Phys.check_tracks d routed.Pathfinder.routes);
      d.Detail.total_vias
    end
    else -1
  in
  let vias_a = detail_vias "verify:tracks(a)" routed_a in
  let sta_a = Sta.run ~period ~wire:wire_a buffered in
  let power_a = Power.estimate ~period ~wire:wire_a ~activities buffered in
  let outcome_a =
    {
      design;
      arch;
      kind = Flow_a;
      die_area = pl.Placement.die_w *. pl.Placement.die_h;
      cell_area;
      gate_count;
      avg_top10_slack = Sta.average_top_slack sta_a 10;
      wns = sta_a.Sta.wns;
      wirelength = Pathfinder.total_wirelength routed_a;
      array_dims = None;
      tiles_used = 0;
      compaction_gain;
      config_histogram;
      displacement = 0.0;
      displacement_tiles = 0.0;
      power_uw = power_a.Power.total_uw;
      routed_vias = vias_a;
    }
  in
  (* ---- Flow b: pack into the PLB array ---- *)
  let q = Quadrisect.legalize ~criticality:crit arch pl in
  phys "verify:packing" (Phys.check_packing q buffered);
  let side = sqrt arch.Arch.tile_area in
  let pl_b =
    {
      pl with
      Placement.die_w = float_of_int q.Quadrisect.cols *. side;
      die_h = float_of_int q.Quadrisect.rows *. side;
    }
  in
  Quadrisect.snap q pl_b;
  (* The paper's packing <-> physical-synthesis iteration: refine tile
     assignments under the criticality-weighted wirelength cost. *)
  if refine then
    ignore
      (Vpga_pack.Refine.run ~criticality:crit ~seed:(seed + 2)
         ~iterations:(min 400_000 (60 * Netlist.size buffered))
         q pl_b);
  phys "verify:placement(b)" (Phys.check_placement pl_b);
  let routed_b = Pathfinder.route_placement pl_b in
  phys "verify:routing(b)" (Phys.check_routing routed_b pl_b);
  let wire_b = Pathfinder.wire_loads routed_b in
  let vias_b = detail_vias "verify:tracks(b)" routed_b in
  let sta_b = Sta.run ~period ~wire:wire_b buffered in
  let power_b = Power.estimate ~period ~wire:wire_b ~activities buffered in
  let outcome_b =
    {
      design;
      arch;
      kind = Flow_b;
      die_area = Quadrisect.array_area q;
      cell_area;
      gate_count;
      avg_top10_slack = Sta.average_top_slack sta_b 10;
      wns = sta_b.Sta.wns;
      wirelength = Pathfinder.total_wirelength routed_b;
      array_dims = Some (q.Quadrisect.cols, q.Quadrisect.rows);
      tiles_used = q.Quadrisect.tiles_used;
      compaction_gain;
      config_histogram;
      displacement = q.Quadrisect.displacement;
      displacement_tiles = q.Quadrisect.mean_displacement_tiles;
      power_uw = power_b.Power.total_uw;
      routed_vias = vias_b;
    }
  in
  { a = outcome_a; b = outcome_b }
