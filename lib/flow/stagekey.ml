(* One place that decides, per flow stage, which inputs reach the cache
   key.  Every builder destructures the full {!options} record — field
   punning with no wildcard — so adding a result-affecting option breaks
   every builder here until someone routes the new field into (or
   deliberately out of) each stage's digest.  Warning 9 is fatal under
   the dev profile, which is what makes the destructure load-bearing. *)

module E = Vpga_cache.Enc
module Key = Vpga_cache.Key
module Policy = Vpga_resil.Policy
module Defect = Vpga_resil.Defect
module Placement = Vpga_place.Placement
module Quadrisect = Vpga_pack.Quadrisect

type options = {
  seed : int;
  period : float;
  utilization : float;
  anneal_iterations : int option;
  use_criticality : bool;
  verify : int;
  policy : Policy.t;
  defect : Defect.t option;
}

(* Exhaustive over {!Policy.t}: a new knob cannot ship without being fed
   here (or explicitly bound away), so policy-sensitive stages never hit
   on entries computed under a different ladder. *)
let policy e (p : Policy.t) =
  let {
    Policy.max_attempts;
    route_capacity;
    route_capacity_growth;
    route_extra_iterations;
    anneal_t_start;
    anneal_cooling;
    pack_utilization;
    pack_relaxation;
    cec_budgets;
  } =
    p
  in
  E.int e max_attempts;
  E.opt E.int e route_capacity;
  E.float e route_capacity_growth;
  E.int e route_extra_iterations;
  E.opt E.float e anneal_t_start;
  E.float e anneal_cooling;
  E.float e pack_utilization;
  E.float e pack_relaxation;
  E.list (E.opt E.int) e cec_budgets

(* Exhaustive over {!Defect.t}: the full map content, not a summary —
   two maps drawn from different seeds must never collide. *)
let defect e (d : Defect.t) =
  let { Defect.seed; dist; dead_tiles; dead_edges; derated } = d in
  E.int e seed;
  E.int e (match dist with Defect.Uniform -> 0 | Defect.Clustered -> 1);
  E.int e (Array.length dead_tiles);
  Array.iter
    (fun (x, y) ->
      E.float e x;
      E.float e y)
    dead_tiles;
  E.int e (Array.length dead_edges);
  Array.iter
    (fun (x, y, vertical) ->
      E.float e x;
      E.float e y;
      E.bool e vertical)
    dead_edges;
  E.int e (Array.length derated);
  Array.iter
    (fun (x0, y0, x1, y1, keep) ->
      E.float e x0;
      E.float e y0;
      E.float e x1;
      E.float e y1;
      E.float e keep)
    derated

let opt_defect e d = E.opt defect e d

(* --- artifact digests (inputs that are earlier stages' outputs) ------- *)

let placement_hex (pl : Placement.t) =
  let e = E.create () in
  E.float e pl.Placement.die_w;
  E.float e pl.Placement.die_h;
  E.float_array e pl.Placement.x;
  E.float_array e pl.Placement.y;
  E.digest_hex e

let quad_hex (q : Quadrisect.t) =
  let e = E.create () in
  E.int e q.Quadrisect.cols;
  E.int e q.Quadrisect.rows;
  E.int_array e q.Quadrisect.tile_of_node;
  E.digest_hex e

(* --- per-stage keys ----------------------------------------------------

   Stage value types (the one-stage-one-type discipline {!Vpga_cache.Key}
   requires; every entry also carries the recovery-event suffix its
   compute recorded):

   - "map", "compact", "buffer": a netlist
   - "verify:*": unit (the gate either passed or raised — failures are
     never cached)
   - "place:global", "place:anneal": the (x, y) coordinate arrays
   - "power:activities": the per-node activity array
   - "route:a", "route:b": (Pathfinder.result, via count)
   - "pack:quadrisect", "stress:pack": a Quadrisect.t
   - "pack:refine": (tile_of_node, x, y)
   - "minchan:probe": (Pathfinder.result, Detail.t option) *)

let map ~nl ~arch o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"map" (fun e ->
      E.str e nl;
      E.str e arch)

let compact ~nl ~arch o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"compact" (fun e ->
      E.str e nl;
      E.str e arch)

let buffer ~compacted ~max_fanout o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"buffer" (fun e ->
      E.str e compacted;
      E.int e max_fanout)

(* The Formal ladder consults the policy's conflict budgets, and the
   degrade event it may record is part of the cached value — so both the
   level and the budgets key the gate. *)
let verify_gate ~stage ~source ~candidate o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify;
    policy = p;
    defect = _;
  } =
    o
  in
  Key.make ~stage (fun e ->
      E.str e source;
      E.str e candidate;
      E.int e verify;
      policy e p)

(* No defect feed: the healthy front-end is shared across defect maps —
   the property the stress sweep's compute-once-per-(design, arch)
   invariant rests on. *)
let place_global ~buffered o =
  let {
    seed;
    period = _;
    utilization;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"place:global" (fun e ->
      E.str e buffered;
      E.int e seed;
      E.float e utilization)

let place_anneal ~buffered ~pl o =
  let {
    seed;
    period;
    utilization;
    anneal_iterations;
    use_criticality;
    verify = _;
    policy = p;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"place:anneal" (fun e ->
      E.str e buffered;
      E.str e pl;
      E.int e seed;
      E.float e period;
      E.float e utilization;
      E.opt E.int e anneal_iterations;
      E.bool e use_criticality;
      policy e p)

let activities ~buffered o =
  let {
    seed;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = _;
  } =
    o
  in
  Key.make ~stage:"power:activities" (fun e ->
      E.str e buffered;
      E.int e seed)

(* Covers the whole escalation ladder including the embedded detailed
   routing and its verify:tracks gate, hence policy + verify + defect. *)
let route ~tag ~buffered ~pl o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify;
    policy = p;
    defect = d;
  } =
    o
  in
  Key.make ~stage:("route:" ^ tag) (fun e ->
      E.str e buffered;
      E.str e pl;
      E.int e verify;
      policy e p;
      opt_defect e d)

let quadrisect ~arch ~buffered ~pl o =
  let {
    seed = _;
    period;
    utilization = _;
    anneal_iterations = _;
    use_criticality;
    verify = _;
    policy = p;
    defect = d;
  } =
    o
  in
  Key.make ~stage:"pack:quadrisect" (fun e ->
      E.str e arch;
      E.str e buffered;
      E.str e pl;
      E.float e period;
      E.bool e use_criticality;
      policy e p;
      opt_defect e d)

let refine ~buffered ~q o =
  let {
    seed;
    period;
    utilization = _;
    anneal_iterations = _;
    use_criticality;
    verify = _;
    policy = _;
    defect = d;
  } =
    o
  in
  Key.make ~stage:"pack:refine" (fun e ->
      E.str e buffered;
      E.str e q;
      E.int e seed;
      E.float e period;
      E.bool e use_criticality;
      opt_defect e d)

(* Minchan's criticality-free legalization: distinct stage (distinct
   compute, distinct value provenance) even though it shares the
   Quadrisect.t value shape. *)
let stress_pack ~arch ~buffered ~pl o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = p;
    defect = d;
  } =
    o
  in
  Key.make ~stage:"stress:pack" (fun e ->
      E.str e arch;
      E.str e buffered;
      E.str e pl;
      policy e p;
      opt_defect e d)

let minchan_probe ~plb ~w ~max_iterations o =
  let {
    seed = _;
    period = _;
    utilization = _;
    anneal_iterations = _;
    use_criticality = _;
    verify = _;
    policy = _;
    defect = d;
  } =
    o
  in
  Key.make ~stage:"minchan:probe" (fun e ->
      E.str e plb;
      E.int e w;
      E.int e max_iterations;
      opt_defect e d)
