(** Minimum-channel-width search and the congestion-stress sweep.

    Per (design, architecture, defect map), {!search} binary-searches the
    smallest channel capacity [W_min] for which PathFinder converges
    ([Pathfinder.final_overflow = 0]) {e and} detailed track assignment
    succeeds, packing once and re-routing the same snapped placement at
    each probed capacity.  The probe count is O(log w_max): usable-track
    counts are monotone in the capacity ([Defect.tracks] exposes
    [ceil (keep * W)] tracks of a derated boundary and none of a dead
    one), so routability is monotone in [W].

    {!stress} sweeps (design x architecture x defect rate x seeded map)
    through {!search} on a deterministic task pool — defect-map seeds and
    search seeds derive from the task identity alone, so results are
    bit-identical at every [jobs] setting — and aggregates a
    routability-vs-area-vs-delay Pareto cell per (design, arch, rate):
    survival rate plus mean [W_min], wirelength, vias, worst slack and
    array area over the surviving maps. *)

type metrics = {
  wirelength : float;  (** um, at [W_min] *)
  vias : int;  (** detailed-routing vias at [W_min] *)
  wns : float;  (** ps, at [W_min] *)
}

type search_result = {
  w_min : int option;  (** [None]: unroutable even at [w_max] *)
  probes : int;  (** routing probes spent by the search *)
  array_cols : int;
  array_rows : int;
  array_area : float;  (** um^2 *)
  metrics : metrics option;  (** [Some] iff [w_min] is [Some] *)
}

val search :
  ?seed:int ->
  ?period:float ->
  ?policy:Vpga_resil.Policy.t ->
  ?w_max:int ->
  ?max_iterations:int ->
  ?log:Vpga_resil.Log.t ->
  ?trace:Vpga_obs.Trace.t ->
  ?defect:Vpga_resil.Defect.t ->
  ?cache:Vpga_cache.Cache.t ->
  Vpga_plb.Arch.t ->
  Vpga_netlist.Netlist.t ->
  search_result
(** Find the minimum routable channel capacity of one design on one
    architecture under one defect map.  The front-end (compact, buffer,
    place, legalize, snap) runs once; legalization reuses the policy's
    relaxation ladder and raises a typed failure when exhausted, so a
    sweep task that cannot even pack fails in isolation.  Probes are
    memoized per capacity and traced as [minchan:probe] spans with a
    [minchan.probes] counter.

    With [cache], the defect-independent front-end stages feed the same
    content-addressed keys {!Flow.run} builds (identical computes), so
    the sweep's defect maps share one front-end per (design, arch) and
    a stress sweep shares work with a paper sweep; the defect-dependent
    legalization and the routing probes key on the defect map's full
    fingerprint.  The [probes] count records {e requested} probes —
    identical whether the cache serves them or not.
    @raise Vpga_resil.Fail.Stage_failure when legalization exhausts the
    policy's relaxation ladder.
    @raise Invalid_argument when [w_max < 1]. *)

type point = {
  p_design : string;
  p_arch : Vpga_plb.Arch.t;
  p_rate : float;
  p_map_seed : int;  (** the defect map's generator seed *)
  p_defect : Vpga_resil.Defect.t;
  p_result : (search_result, Vpga_resil.Fail.t) result;
  p_trace : Vpga_obs.Trace.t;
}
(** One sweep task: a (design, arch, rate, map) combination with its
    search result or isolated failure. *)

type cell = {
  c_design : string;
  c_arch : string;
  c_rate : float;
  c_maps : int;
  c_survived : int;  (** maps with a [W_min <= w_max] *)
  c_w_min : float;  (** means over survivors; 0 when none survived *)
  c_wirelength : float;
  c_vias : float;
  c_wns : float;
  c_area : float;
}
(** One Pareto row: (design, arch, defect rate) with the survival count
    and mean metrics over the surviving maps. *)

type report = {
  r_seed : int;
  r_w_max : int;
  r_rates : float list;
  r_maps_per_rate : int;
  r_points : point list;
  r_cells : cell list;
}

val map_seed :
  seed:int -> string -> Vpga_plb.Arch.t -> float -> int -> int
(** [map_seed ~seed design arch rate k] mixes the task identity into the
    defect-map generator seed — a pure function of the sweep seed and
    the task's coordinates, never of submission order or worker count. *)

val stress :
  ?seed:int ->
  ?jobs:int ->
  ?policy:Vpga_resil.Policy.t ->
  ?dist:Vpga_resil.Defect.dist ->
  ?rates:float list ->
  ?maps_per_rate:int ->
  ?w_max:int ->
  ?traced:bool ->
  ?cache:Vpga_cache.Cache.t ->
  ?designs:(string * Vpga_netlist.Netlist.t) list ->
  Experiments.scale ->
  report
(** Run the congestion-stress sweep: every design (of [designs] when
    given, else {!Experiments.designs} at [scale]) x both paper
    architectures x [rates] (default [[0.0; 0.02; 0.05; 0.10]]) x
    [maps_per_rate] (default 3; the defect-free rate always runs exactly
    one map) seeded defect maps of distribution [dist].  Tasks run on
    {!Vpga_par.Pool} under [jobs] domains; a task that fails (e.g. its
    relaxation ladder exhausts) is recorded as a non-survivor without
    disturbing its siblings.  [traced] attaches a per-task
    {!Vpga_obs.Trace} to each point. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable Pareto table (one row per {!cell}) followed by any
    isolated task failures. *)

val json_report : ?indent:string -> report -> string
(** The report as the [robustness] JSON block of [BENCH_sweep.json]:
    sweep parameters plus one object per Pareto {!cell}. *)
