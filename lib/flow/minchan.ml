(* Minimum-channel-width search and the congestion-stress sweep.

   The 2004 paper routes both fabrics on a fixed flawless grid; this
   driver asks the robustness question instead: per (design, arch,
   defect map), what is the smallest channel capacity W_min that still
   routes ([Pathfinder.final_overflow = 0] and a conflict-free detailed
   track assignment)?  A defect-rate sweep over seeded maps then yields
   the routability-vs-area-vs-delay Pareto per architecture: W_min,
   wirelength, vias and critical path at each defect rate, plus the
   survival rate (fraction of seeded maps still routable at W <= w_max).

   Search invariant: the usable-track count of every boundary is
   monotone in the channel capacity (dead edges stay dead, derated
   boundaries expose [ceil (keep * W)] tracks — see [Defect.tracks]), so
   routability is monotone in W and an exponential ascent plus bisection
   finds W_min in O(log w_max) probes.  Every probe routes the same
   snapped packing, so the search isolates the routing question from the
   placement one. *)

module Netlist = Vpga_netlist.Netlist
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Compact = Vpga_mapper.Compact
module Buffering = Vpga_place.Buffering
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Quadrisect = Vpga_pack.Quadrisect
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Sta = Vpga_timing.Sta
module Diag = Vpga_verify.Diag
module Fail = Vpga_resil.Fail
module Policy = Vpga_resil.Policy
module Defect = Vpga_resil.Defect
module Log = Vpga_resil.Log
module Trace = Vpga_obs.Trace
module Attr = Vpga_obs.Span
module Pool = Vpga_par.Pool
module Cache = Vpga_cache.Cache
module Ckey = Vpga_cache.Key

type metrics = {
  wirelength : float;  (* um, at W_min *)
  vias : int;  (* detailed-routing vias at W_min *)
  wns : float;  (* ps, at W_min *)
}

type search_result = {
  w_min : int option;  (* None: unroutable even at w_max *)
  probes : int;
  array_cols : int;
  array_rows : int;
  array_area : float;  (* um^2 *)
  metrics : metrics option;  (* Some iff [w_min] is Some *)
}

let search ?(seed = 1) ?(period = 500.0) ?(policy = Policy.default)
    ?(w_max = 64) ?(max_iterations = 30) ?log ?(trace = Trace.null)
    ?(defect = Defect.empty) ?(cache = Cache.none) arch nl =
  if w_max < 1 then invalid_arg "Minchan.search: w_max < 1";
  let design = Netlist.design_name nl in
  let log = match log with Some l -> l | None -> Log.create () in
  let span ?attrs name f = Trace.with_span ?attrs trace name f in
  let dead_tile =
    if Defect.is_empty defect then None else Some (Defect.tile_dead defect)
  in
  let tracks =
    if Defect.is_empty defect then None else Some (Defect.tracks defect)
  in
  (* The defect-free stages feed the same keys {!Flow.run} builds —
     identical computes, [Placement.create]'s default 0.7 utilization —
     so a stress sweep shares its front-end with a paper sweep, and the
     defect maps of every rate share one (design, arch) front-end. *)
  let keyed = Cache.enabled cache in
  let opts =
    {
      Stagekey.seed;
      period;
      utilization = 0.7;
      anneal_iterations = None;
      use_criticality = false;
      verify = 0;
      policy;
      defect = (if Defect.is_empty defect then None else Some defect);
    }
  in
  let d_nl = lazy (Ckey.netlist_hex nl) in
  let d_arch = lazy (Ckey.arch_hex arch) in
  let cmemo : 'a. string -> (unit -> Ckey.t) -> (unit -> 'a) -> 'a =
   fun stage mk compute ->
    if not keyed then compute ()
    else
      let k = mk () in
      match Cache.find cache k with
      | Some (v, events) ->
          List.iter (Log.record log) events;
          Trace.instant ~attrs:[ ("stage", Attr.Str stage) ] trace "cache:hit";
          v
      | None ->
          let before = List.length (Log.events log) in
          let v = compute () in
          let suffix =
            let rec drop n l =
              if n <= 0 then l
              else match l with [] -> [] | _ :: t -> drop (n - 1) t
            in
            drop before (Log.events log)
          in
          Cache.put cache k (v, suffix);
          v
  in
  (* Shared front-end, run once per search: compact, buffer, place, then
     legalize under the policy's relaxation ladder (the same escalation
     the flow uses, so an unfittable probe fails as a typed
     [Stage_failure] instead of killing sibling tasks). *)
  let q, pl_b, buffered =
    span "minchan:frontend" @@ fun () ->
    let compacted =
      cmemo "compact"
        (fun () ->
          Stagekey.compact ~nl:(Lazy.force d_nl) ~arch:(Lazy.force d_arch)
            opts)
        (fun () -> Compact.run arch nl)
    in
    let d_compacted = lazy (Ckey.netlist_hex compacted) in
    let buffered =
      cmemo "buffer"
        (fun () ->
          Stagekey.buffer ~compacted:(Lazy.force d_compacted) ~max_fanout:8
            opts)
        (fun () -> Buffering.insert ~max_fanout:8 compacted)
    in
    let d_buffered = lazy (Ckey.netlist_hex buffered) in
    let pl = Placement.create buffered in
    let px, py =
      cmemo "place:global"
        (fun () ->
          Stagekey.place_global ~buffered:(Lazy.force d_buffered) opts)
        (fun () ->
          Global.place ~seed pl;
          (pl.Placement.x, pl.Placement.y))
    in
    if px != pl.Placement.x then begin
      Array.blit px 0 pl.Placement.x 0 (Array.length px);
      Array.blit py 0 pl.Placement.y 0 (Array.length py)
    end;
    let d_pl = if keyed then Stagekey.placement_hex pl else "" in
    let stage = "stress:pack" in
    let rec pack attempt utilization =
      match
        Quadrisect.legalize_result ~utilization ?dead_tile arch pl
      with
      | Ok q -> q
      | Error fe ->
          let reason = Quadrisect.fit_error_to_string fe in
          if attempt + 1 < policy.Policy.max_attempts then begin
            let u = utilization *. policy.Policy.pack_relaxation in
            Log.record log
              (Log.Retry { stage; attempt = attempt + 1; reason });
            Log.record log
              (Log.Escalation
                 {
                   stage;
                   what =
                     Printf.sprintf
                       "grow the array: target utilization %.2f -> %.2f"
                       utilization u;
                 });
            pack (attempt + 1) u
          end
          else
            Fail.raise_
              (Fail.make ~stage ~design ~attempts:(attempt + 1)
                 ~diags:[ Diag.error "pack-unfit" "%s" reason ]
                 ~events:(Log.strings log) ())
    in
    let q =
      cmemo stage
        (fun () ->
          Stagekey.stress_pack ~arch:(Lazy.force d_arch)
            ~buffered:(Lazy.force d_buffered) ~pl:d_pl opts)
        (fun () -> pack 0 policy.Policy.pack_utilization)
    in
    let side = sqrt arch.Arch.tile_area in
    let pl_b =
      {
        pl with
        Placement.die_w = float_of_int q.Quadrisect.cols *. side;
        die_h = float_of_int q.Quadrisect.rows *. side;
      }
    in
    Quadrisect.snap q pl_b;
    (q, pl_b, buffered)
  in
  (* One probe per capacity, memoized twice over: the per-search table
     (the bisection revisits endpoints, the metrics pass reuses the
     W_min artifacts) in front of the shared cache (identical searches —
     the bench's warm pass — skip the routing).  The probe counter and
     trajectory samples record {e requested} probes, before the shared
     cache, so a search's [probes] count is identical cold and warm. *)
  let probe_table = Hashtbl.create 8 in
  let probes = ref 0 in
  let d_plb = if keyed then Stagekey.placement_hex pl_b else "" in
  let probe w =
    match Hashtbl.find_opt probe_table w with
    | Some r -> r
    | None ->
        let r =
          span ~attrs:[ ("w", Attr.Int w) ] "minchan:probe" @@ fun () ->
          incr probes;
          Trace.emit "minchan.probes" 1.0;
          (* Search-trajectory series: which capacity each probe tried,
             and whether it routed (1.0) or not (0.0). *)
          Trace.emit_sample "minchan.probe_w" (float_of_int w);
          let r =
            cmemo "minchan:probe"
              (fun () ->
                Stagekey.minchan_probe ~plb:d_plb ~w ~max_iterations opts)
              (fun () ->
                let routed =
                  Pathfinder.route_placement ~capacity:w ~max_iterations
                    ?tracks pl_b
                in
                if routed.Pathfinder.final_overflow > 0 then (routed, None)
                else
                  match
                    Detail.run_result routed.Pathfinder.grid
                      routed.Pathfinder.routes
                  with
                  | Ok d -> (routed, Some d)
                  | Error _ -> (routed, None))
          in
          Trace.emit_sample "minchan.probe_ok"
            (if snd r <> None then 1.0 else 0.0);
          r
        in
        Hashtbl.add probe_table w r;
        r
  in
  let routable w = snd (probe w) <> None in
  (* Exponential ascent to the first routable capacity, then bisection
     on [lo unroutable, hi routable]. *)
  let w_min =
    let rec ascend w =
      let w = min w w_max in
      if routable w then Some w
      else if w >= w_max then None
      else ascend (2 * w)
    in
    match ascend 1 with
    | None -> None
    | Some hi ->
        let rec bisect lo hi =
          (* invariant: lo unroutable (or 0), hi routable *)
          if hi - lo <= 1 then hi
          else begin
            let mid = (lo + hi) / 2 in
            if routable mid then bisect lo mid else bisect mid hi
          end
        in
        Some (bisect (hi / 2) hi)
  in
  let metrics =
    match w_min with
    | None -> None
    | Some w ->
        let routed, detail = probe w in
        let d = match detail with Some d -> d | None -> assert false in
        let sta =
          span "minchan:sta" (fun () ->
              Sta.run ~period ~wire:(Pathfinder.wire_loads routed) buffered)
        in
        Some
          {
            wirelength = Pathfinder.total_wirelength routed;
            vias = d.Detail.total_vias;
            wns = sta.Sta.wns;
          }
  in
  (match w_min with
  | Some w -> Trace.set trace "minchan.w_min" (float_of_int w)
  | None -> ());
  {
    w_min;
    probes = !probes;
    array_cols = q.Quadrisect.cols;
    array_rows = q.Quadrisect.rows;
    array_area = Quadrisect.array_area q;
    metrics;
  }

(* --- the stress sweep --- *)

type point = {
  p_design : string;
  p_arch : Arch.t;
  p_rate : float;
  p_map_seed : int;  (* the defect map's generator seed *)
  p_defect : Defect.t;
  p_result : (search_result, Fail.t) result;
  p_trace : Trace.t;
}

type cell = {
  c_design : string;
  c_arch : string;
  c_rate : float;
  c_maps : int;
  c_survived : int;  (* maps with a W_min <= w_max *)
  c_w_min : float;  (* means over survivors; 0 when none survived *)
  c_wirelength : float;
  c_vias : float;
  c_wns : float;
  c_area : float;
}

type report = {
  r_seed : int;
  r_w_max : int;
  r_rates : float list;
  r_maps_per_rate : int;
  r_points : point list;
  r_cells : cell list;
}

(* Defect-map seed from the task identity alone (never submission order
   or worker count), the same mixing discipline as
   [Experiments.task_seed]. *)
let map_seed ~seed name arch rate k =
  let mix h v = (h * 65599) + v in
  let h = ref (mix 0 seed) in
  String.iter (fun c -> h := mix !h (Char.code c)) name;
  String.iter (fun c -> h := mix !h (Char.code c)) arch.Arch.name;
  h := mix !h (int_of_float (rate *. 1e6));
  h := mix !h k;
  !h land 0x3FFFFFFF

let survivors points =
  List.filter_map
    (fun p ->
      match p.p_result with
      | Ok ({ w_min = Some _; _ } as r) -> Some r
      | Ok _ | Error _ -> None)
    points

let cell_of ~design ~arch ~rate points =
  let surv = survivors points in
  let n = List.length surv in
  let mean f =
    if n = 0 then 0.0
    else List.fold_left (fun a r -> a +. f r) 0.0 surv /. float_of_int n
  in
  let metric f =
    mean (fun r -> match r.metrics with Some m -> f m | None -> 0.0)
  in
  {
    c_design = design;
    c_arch = arch.Arch.name;
    c_rate = rate;
    c_maps = List.length points;
    c_survived = n;
    c_w_min =
      mean (fun r -> match r.w_min with Some w -> float_of_int w | None -> 0.0);
    c_wirelength = metric (fun m -> m.wirelength);
    c_vias = metric (fun m -> float_of_int m.vias);
    c_wns = metric (fun m -> m.wns);
    c_area = mean (fun r -> r.array_area);
  }

let stress ?(seed = 1) ?jobs ?(policy = Policy.default)
    ?(dist = Defect.Uniform) ?(rates = [ 0.0; 0.02; 0.05; 0.10 ])
    ?(maps_per_rate = 3) ?(w_max = 64) ?(traced = false) ?cache ?designs:ds
    scale =
  (* Populate every shared lazy table from this domain before workers
     race for them (Lazy.force is not domain-safe in OCaml 5). *)
  Config.prewarm ();
  let ds = match ds with Some ds -> ds | None -> Experiments.designs scale in
  let specs =
    List.concat_map
      (fun (name, nl) ->
        List.concat_map
          (fun arch ->
            List.concat_map
              (fun rate ->
                (* The defect-free point needs exactly one map. *)
                let maps = if rate <= 0.0 then 1 else maps_per_rate in
                List.init maps (fun k -> (name, nl, arch, rate, k)))
              rates)
          [ Arch.lut_plb; Arch.granular_plb ])
      ds
  in
  let tasks =
    List.mapi
      (fun i (name, nl, arch, rate, k) () ->
        (* Fault isolation: one probe exhausting its ladder becomes its
           own failure record; sibling probes never see it.  The trace is
           created on the worker domain so its events belong to exactly
           one task. *)
        let ms = map_seed ~seed name arch rate k in
        let defect = Defect.at_rate ~dist ~seed:ms rate in
        let log = Log.create () in
        let trace =
          if traced then
            Trace.create ~tid:i
              ~label:
                (Printf.sprintf "%s/%s@%.3g#%d" name arch.Arch.name rate k)
              ()
          else Trace.null
        in
        let result =
          try
            Ok
              (search ~seed:(Experiments.task_seed ~seed name arch) ~policy
                 ~w_max ~log ~trace ~defect ?cache arch nl)
          with
          | Fail.Stage_failure f -> Error f
          | e ->
              Error
                (Fail.of_exn ~stage:"stress" ~design:name ~attempts:1
                   ~events:(Log.strings log) e)
        in
        {
          p_design = name;
          p_arch = arch;
          p_rate = rate;
          p_map_seed = ms;
          p_defect = defect;
          p_result = result;
          p_trace = trace;
        })
      specs
  in
  let points = Pool.run ?jobs tasks in
  (* Aggregate in spec order: one Pareto cell per (design, arch, rate). *)
  let cells =
    List.concat_map
      (fun (name, _) ->
        List.concat_map
          (fun arch ->
            List.map
              (fun rate ->
                let mine =
                  List.filter
                    (fun p ->
                      p.p_design = name
                      && p.p_arch.Arch.name = arch.Arch.name
                      && p.p_rate = rate)
                    points
                in
                cell_of ~design:name ~arch ~rate mine)
              rates)
          [ Arch.lut_plb; Arch.granular_plb ])
      ds
  in
  {
    r_seed = seed;
    r_w_max = w_max;
    r_rates = rates;
    r_maps_per_rate = maps_per_rate;
    r_points = points;
    r_cells = cells;
  }

(* --- rendering --- *)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>stress sweep: seed %d, w_max %d, %d map(s) per nonzero rate@,@,"
    r.r_seed r.r_w_max r.r_maps_per_rate;
  Format.fprintf ppf "%-16s %-14s %6s %5s %9s %6s %10s %6s %9s %12s@,"
    "design" "arch" "rate" "maps" "survival" "W_min" "wire(um)" "vias"
    "wns(ps)" "area(um^2)";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-16s %-14s %6.3f %5d %8.0f%% " c.c_design c.c_arch
        c.c_rate c.c_maps
        (100.0 *. float_of_int c.c_survived /. float_of_int (max 1 c.c_maps));
      if c.c_survived = 0 then Format.fprintf ppf "%6s %10s %6s %9s %12s@," "-" "-" "-" "-" "-"
      else
        Format.fprintf ppf "%6.1f %10.0f %6.0f %9.1f %12.0f@," c.c_w_min
          c.c_wirelength c.c_vias c.c_wns c.c_area)
    r.r_cells;
  let failed =
    List.length (List.filter (fun p -> Result.is_error p.p_result) r.r_points)
  in
  if failed > 0 then
    Format.fprintf ppf "@,%d probe task(s) failed before routing:@," failed;
  List.iter
    (fun p ->
      match p.p_result with
      | Error f ->
          Format.fprintf ppf "  %-16s %-14s rate %.3f: %s@," p.p_design
            p.p_arch.Arch.name p.p_rate (Fail.to_string f)
      | Ok _ -> ())
    r.r_points;
  Format.fprintf ppf "@]"

(* JSON fragment for the BENCH_sweep.json [robustness] block; emitted
   with the same hand-rolled style as the bench's writer so the two stay
   trivially mergeable. *)
let json_report ?(indent = "  ") r =
  let b = Buffer.create 1024 in
  let i1 = indent and i2 = indent ^ "  " and i3 = indent ^ "    " in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "%s\"seed\": %d,\n%s\"w_max\": %d,\n%s\"maps_per_rate\": %d,\n"
       i1 r.r_seed i1 r.r_w_max i1 r.r_maps_per_rate);
  Buffer.add_string b
    (Printf.sprintf "%s\"rates\": [%s],\n" i1
       (String.concat ", " (List.map (Printf.sprintf "%g") r.r_rates)));
  Buffer.add_string b (Printf.sprintf "%s\"cells\": [\n" i1);
  let n_cells = List.length r.r_cells in
  List.iteri
    (fun i c ->
      Buffer.add_string b (Printf.sprintf "%s{\n" i2);
      Buffer.add_string b
        (Printf.sprintf "%s\"design\": %S, \"arch\": %S, \"rate\": %g,\n" i3
           c.c_design c.c_arch c.c_rate);
      Buffer.add_string b
        (Printf.sprintf "%s\"maps\": %d, \"survived\": %d, \"survival\": %g,\n"
           i3 c.c_maps c.c_survived
           (float_of_int c.c_survived /. float_of_int (max 1 c.c_maps)));
      Buffer.add_string b
        (Printf.sprintf
           "%s\"w_min\": %g, \"wirelength_um\": %g, \"vias\": %g, \
            \"wns_ps\": %g, \"area_um2\": %g\n"
           i3 c.c_w_min c.c_wirelength c.c_vias c.c_wns c.c_area);
      Buffer.add_string b
        (Printf.sprintf "%s}%s\n" i2 (if i = n_cells - 1 then "" else ",")))
    r.r_cells;
  Buffer.add_string b (Printf.sprintf "%s]\n" i1);
  (* closing brace at the parent's indentation *)
  Buffer.add_string b
    (String.sub indent 0 (max 0 (String.length indent - 2)) ^ "}");
  Buffer.contents b
