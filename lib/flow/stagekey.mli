(** Per-stage cache-key construction — the one place that decides which
    flow inputs reach which stage's digest.

    {!options} gathers every {!Flow.run} option that can affect a
    result.  Each builder destructures the {e full} record (no
    wildcard), so adding a field here refuses to compile until every
    stage has routed it into — or deliberately out of — its key; the
    same compile-breaking discipline covers {!Vpga_resil.Policy.t} and
    {!Vpga_resil.Defect.t}.

    Stage value types (one stage = one marshalled type, see
    {!Vpga_cache.Key}): netlists for [map]/[compact]/[buffer], [unit]
    for the verify gates, coordinate arrays for the placement stages,
    the activity array for [power:activities],
    [(Pathfinder.result, vias)] for the route stages, [Quadrisect.t]
    for the packing stages, [(tile_of_node, x, y)] for [pack:refine]
    and [(Pathfinder.result, Detail.t option)] for [minchan:probe].
    Every entry also carries the recovery-event suffix recorded during
    its compute, replayed on hit. *)

type options = {
  seed : int;
  period : float;
  utilization : float;
  anneal_iterations : int option;
  use_criticality : bool;
  verify : int;  (** 0 = Off, 1 = Fast, 2 = Formal *)
  policy : Vpga_resil.Policy.t;
  defect : Vpga_resil.Defect.t option;
      (** normalized: [None] for the empty map *)
}

val policy : Vpga_cache.Enc.t -> Vpga_resil.Policy.t -> unit
val defect : Vpga_cache.Enc.t -> Vpga_resil.Defect.t -> unit

val placement_hex : Vpga_place.Placement.t -> string
(** Digest of the die dims and coordinate arrays (not the graph: that is
    covered by the buffered netlist's digest). *)

val quad_hex : Vpga_pack.Quadrisect.t -> string
(** Digest of the array dims and tile assignment. *)

(** {2 Stage keys}

    String arguments are upstream artifact digests
    ({!Vpga_cache.Key.netlist_hex} / {!Vpga_cache.Key.arch_hex} /
    {!placement_hex} / {!quad_hex}), computed once by the caller. *)

val map : nl:string -> arch:string -> options -> Vpga_cache.Key.t
val compact : nl:string -> arch:string -> options -> Vpga_cache.Key.t
val buffer : compacted:string -> max_fanout:int -> options -> Vpga_cache.Key.t

val verify_gate :
  stage:string -> source:string -> candidate:string -> options ->
  Vpga_cache.Key.t
(** Keys a front-end equivalence gate ([verify:techmap] /
    [verify:compact] / [verify:buffer]) on both endpoints, the verify
    level and the policy's conflict budgets. *)

val place_global : buffered:string -> options -> Vpga_cache.Key.t
(** Deliberately defect-free: the healthy front-end is shared across
    defect maps (the stress sweep's compute-once invariant). *)

val place_anneal : buffered:string -> pl:string -> options -> Vpga_cache.Key.t
val activities : buffered:string -> options -> Vpga_cache.Key.t

val route :
  tag:string -> buffered:string -> pl:string -> options -> Vpga_cache.Key.t
(** [tag] is ["a"] or ["b"]; covers the whole escalation ladder
    including detailed routing and its verify gates. *)

val quadrisect :
  arch:string -> buffered:string -> pl:string -> options -> Vpga_cache.Key.t

val refine : buffered:string -> q:string -> options -> Vpga_cache.Key.t

val stress_pack :
  arch:string -> buffered:string -> pl:string -> options -> Vpga_cache.Key.t
(** {!Minchan}'s criticality-free legalization — its own stage name
    because its compute differs from [pack:quadrisect]. *)

val minchan_probe :
  plb:string -> w:int -> max_iterations:int -> options -> Vpga_cache.Key.t
