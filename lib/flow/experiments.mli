(** The paper's evaluation, experiment by experiment (see DESIGN.md's
    per-experiment index).  Everything returns plain data; {!Report} formats
    the tables. *)

module Config := Vpga_plb.Config

type scale = Test | Paper
(** [Test] builds small design instances (seconds); [Paper] builds
    paper-comparable ones (the bench default). *)

val designs : scale -> (string * Vpga_netlist.Netlist.t) list
(** ALU, Firewire, FPU, Network switch — the paper's four benchmarks. *)

type row = { name : string; lut : Flow.pair; granular : Flow.pair }

type task_report = {
  t_design : string;
  t_arch : Vpga_plb.Arch.t;
  t_result : (Flow.pair, Vpga_resil.Fail.t) result;
      (** the flow pair, or the typed failure that exhausted the policy *)
  t_recovery : Vpga_resil.Log.summary;
      (** retry/escalation/degradation counts for this task alone *)
  t_trace : Vpga_obs.Trace.t;
      (** this task's span/counter trace; {!Vpga_obs.Trace.null} unless
          the sweep ran with [~traced:true] *)
}

val task_seed : seed:int -> string -> Vpga_plb.Arch.t -> int
(** Per-task seed derived from the sweep seed and the task identity
    (design name, architecture name) alone — never from submission order
    or worker count — so any fan-out over tasks stays deterministic at
    every [jobs] setting.  {!Minchan.stress} reuses it so a design's
    placement is identical across defect rates. *)

val run_tasks :
  ?seed:int ->
  ?jobs:int ->
  ?verify:Flow.verify ->
  ?policy:Vpga_resil.Policy.t ->
  ?traced:bool ->
  ?analyze:bool ->
  ?cache:Vpga_cache.Cache.t ->
  ?designs:(string * Vpga_netlist.Netlist.t) list ->
  scale ->
  task_report list
(** The fault-isolated sweep: every (design, arch) flow run becomes a
    {!task_report}, so one task exhausting its retry policy yields a
    per-task failure record while the remaining tasks complete.  Reports
    come back in task order (designs x [lut; granular]).  [designs]
    overrides the benchmark list (fault-injection tests sweep corrupted
    designs alongside healthy ones).  Never raises for a task failure.

    With [~traced:true] (default false) each task gets its own
    {!Vpga_obs.Trace.t} — created on the worker domain, thread id = task
    index — returned in [t_trace]; merge them with
    {!Vpga_obs.Export.chrome} for one timeline of the whole sweep.
    Tracing does not change results: every recorded quantity derives
    from the task's own deterministic run.

    [analyze] is forwarded to each {!Flow.run}: the static dataflow
    analyses plus the region-ownership sanitizer, detection-only, so it
    too changes no results.

    [cache] is forwarded to each {!Flow.run}: one
    {!Vpga_cache.Cache.t} shared by every task on every worker domain
    (the store is mutex-guarded), so stages repeated across tasks —
    or across whole sweeps — compute once.  Results are unchanged by
    construction: a hit replays the identical deterministic artifact. *)

val run_tasks_with_stats :
  ?seed:int ->
  ?jobs:int ->
  ?verify:Flow.verify ->
  ?policy:Vpga_resil.Policy.t ->
  ?traced:bool ->
  ?analyze:bool ->
  ?cache:Vpga_cache.Cache.t ->
  ?designs:(string * Vpga_netlist.Netlist.t) list ->
  scale ->
  task_report list * Vpga_par.Pool.stats
(** {!run_tasks}, also returning the worker pool's accounting
    ({!Vpga_par.Pool.type-stats}: tasks run, total queue wait, per-worker
    busy time) for the sweep. *)

val recovery : task_report list -> Vpga_resil.Log.summary
(** Aggregate recovery counters across a sweep's reports. *)

val rows : task_report list -> row list
(** Pair each design's two architecture reports into a table row.
    @raise Vpga_resil.Fail.Stage_failure the first per-task failure, in
    task order — for callers that cannot render a partial sweep. *)

val run_all :
  ?seed:int ->
  ?jobs:int ->
  ?verify:Flow.verify ->
  ?policy:Vpga_resil.Policy.t ->
  ?cache:Vpga_cache.Cache.t ->
  scale ->
  row list
(** [rows (run_tasks ...)]: both architectures through both flows on
    every design (Table 1 and Table 2 in one pass).  The eight
    (design, arch) flow runs execute on a pool of [jobs] worker domains
    ([Vpga_par.Pool]; default [Domain.recommended_domain_count () - 1],
    floor 1).  Results are independent of [jobs]: each run's RNG seed is
    derived from [(seed, design name, arch name)], so [~jobs:1] (fully
    sequential, no domain spawned) and [~jobs:n] return identical rows —
    including any policy-driven retries, whose knobs and reseeds are
    pure functions of the task seed and attempt index.  [verify] is
    passed to each {!Flow.run} (default {!Flow.Fast}). *)

(** Derived Section-3.2 claims, computed from the rows. *)
type headline = {
  datapath_area_reduction : float;
      (** mean flow-b die-area saving of granular vs LUT over the three
          datapath designs (paper: ~32 %) *)
  fpu_area_reduction : float;  (** paper: up to 40 % *)
  packing_overhead_reduction : float;
      (** mean reduction of the flow-a -> flow-b area overhead (paper:
          ~48 %) *)
  firewire_reversal : bool;
      (** granular flow-b die area exceeds LUT's on the flop-dominated
          design (paper: yes) *)
  slack_improvement : float;
      (** mean top-10 slack gain of granular over LUT, flow b (paper:
          ~18 %) *)
  degradation_reduction : float;
      (** mean reduction of flow-a -> flow-b slack degradation (paper:
          ~68 %; inverts on our substrate — see EXPERIMENTS.md) *)
  displacement_reduction : float;
      (** mean change of per-item legalization displacement (tile units),
          granular vs LUT.  Reported as data: on this substrate both
          architectures land near one tile of perturbation. *)
}

val headlines : row list -> headline

val s3_census : unit -> Vpga_logic.S3.census
(** E1/E2. *)

val full_adder_tiles : unit -> (string * int) list
(** E3: tiles needed per architecture. *)

val config_delays : unit -> (Config.t * float * float) list
(** E4: (configuration, delay at FO4-ish load, cell area). *)

val compaction_table : scale -> (string * string * float * float * float) list
(** E5: (design, arch, techmap area, compacted area, gain). *)

val config_distribution :
  row list -> (string * (Config.t * int) list) list
(** E9: per-design granular-PLB configuration histograms. *)

val firewire_remedy : ?seed:int -> scale -> (string * float * float) list
(** E10 (the paper's future-work claim, Section 3.2: the Firewire overhead
    "can be avoided by using a PLB with a greater ratio of Flip Flops to
    combinational logic elements"): flow-b die area and top-10 slack of the
    Firewire design on the LUT PLB, the granular PLB, and the 2-flop
    granular variant. *)

val ablation : ?seed:int -> scale -> (string * Flow.outcome) list
(** E11: flow-b outcomes for the granular ALU with the packing-refinement
    loop and the criticality weighting individually disabled (the design
    choices DESIGN.md calls out). *)

val via_table : ?seed:int -> scale -> (string * string * int) list
(** E13: programmed configuration-via sites per design and architecture —
    the VPGA's customization-cost unit ("the cost of higher granularity is
    significantly lower for the VPGA fabric", Section 1). *)

val routing_styles : ?seed:int -> scale -> (string * float * float) list
(** E14 (the paper's closing future-work item, Section 4: "exploring regular
    routing architectures for the VPGA fabric"): per design, the flow-b
    top-10 slack (ps) under ASIC-style custom routing vs switched regular
    routing, same topology (granular PLB). *)
