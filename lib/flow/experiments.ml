module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Full_adder = Vpga_plb.Full_adder
module S3 = Vpga_logic.S3
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
open Vpga_designs

type scale = Test | Paper

let designs scale =
  match scale with
  | Test ->
      [
        ("ALU", Alu.build ~width:8 ());
        ("Firewire", Firewire.build ~data_bits:16 ());
        ("FPU", Fpu.build ~exp_bits:5 ~mant_bits:8 ());
        ("Network switch", Netswitch.build ~ports:4 ~width:8 ());
      ]
  | Paper ->
      [
        ("ALU", Alu.build ~width:32 ());
        ("Firewire", Firewire.build ~data_bits:32 ());
        ("FPU", Fpu.build ~exp_bits:8 ~mant_bits:24 ());
        ("Network switch", Netswitch.build ~ports:8 ~width:48 ());
      ]

type row = { name : string; lut : Flow.pair; granular : Flow.pair }

type task_report = {
  t_design : string;
  t_arch : Arch.t;
  t_result : (Flow.pair, Vpga_resil.Fail.t) result;
  t_recovery : Vpga_resil.Log.summary;
  t_trace : Vpga_obs.Trace.t;
}

(* Each (design, arch) flow run is an independent task with its own RNG
   seed derived from the task identity — never from a shared Random.State
   or from submission order — so the sweep's results do not depend on how
   many workers execute it or in what order tasks complete. *)
let task_seed ~seed name arch =
  let mix h k = (h * 65599) + k in
  let h = ref (mix 0 seed) in
  String.iter (fun c -> h := mix !h (Char.code c)) name;
  String.iter (fun c -> h := mix !h (Char.code c)) arch.Arch.name;
  !h land 0x3FFFFFFF

let run_tasks_with_stats ?(seed = 1) ?jobs ?verify ?policy ?(traced = false)
    ?analyze ?cache ?designs:ds scale =
  (* Populate every shared lazy table from this domain before workers
     race for them (Lazy.force is not domain-safe in OCaml 5). *)
  Config.prewarm ();
  let ds = match ds with Some ds -> ds | None -> designs scale in
  let specs =
    List.concat_map
      (fun (name, nl) ->
        List.map
          (fun arch -> (name, nl, arch))
          [ Arch.lut_plb; Arch.granular_plb ])
      ds
  in
  let tasks =
    List.mapi
      (fun i (name, nl, arch) () ->
        (* Fault isolation: whatever one task dies with becomes its
           own failure record; sibling tasks never see it.  The trace is
           created here, on the worker domain, so every event it records
           (spans, counters, resil instants) belongs to exactly one task
           and no synchronization is ever needed. *)
        let log = Vpga_resil.Log.create () in
        let trace =
          if traced then
            Vpga_obs.Trace.create ~tid:i
              ~label:(name ^ "/" ^ arch.Arch.name)
              ()
          else Vpga_obs.Trace.null
        in
        let result =
          try
            Ok
              (* [trace_labels:false]: sweep traces exist for stage
                 timings (the BENCH_sweep.json record), which must
                 reflect the production flow — observational FlowMap
                 labeling would dominate [compact] at paper scale. *)
              (Flow.run ~seed:(task_seed ~seed name arch) ?verify ?policy
                 ?analyze ?cache ~log ~trace ~trace_labels:false arch nl)
          with
          | Vpga_resil.Fail.Stage_failure f -> Error f
          | e ->
              Error
                (Vpga_resil.Fail.of_exn ~stage:"flow" ~design:name
                   ~attempts:1
                   ~events:(Vpga_resil.Log.strings log)
                   e)
        in
        {
          t_design = name;
          t_arch = arch;
          t_result = result;
          t_recovery = Vpga_resil.Log.summary log;
          t_trace = trace;
        })
      specs
  in
  Vpga_par.Pool.run_stats ?jobs tasks

let run_tasks ?seed ?jobs ?verify ?policy ?traced ?analyze ?cache ?designs
    scale =
  fst
    (run_tasks_with_stats ?seed ?jobs ?verify ?policy ?traced ?analyze ?cache
       ?designs scale)

let recovery reports =
  List.fold_left
    (fun acc r -> Vpga_resil.Log.add acc r.t_recovery)
    Vpga_resil.Log.zero reports

(* Rows for the table renderers; re-raises the first per-task failure
   (in task order), so callers that cannot render a partial sweep keep
   the fail-fast contract. *)
let rows reports =
  (match
     List.find_opt (fun r -> Result.is_error r.t_result) reports
   with
  | Some { t_result = Error f; _ } -> Vpga_resil.Fail.raise_ f
  | Some _ | None -> ());
  let rec pair_up = function
    | [] -> []
    | a :: b :: rest when a.t_design = b.t_design ->
        {
          name = a.t_design;
          lut = Result.get_ok a.t_result;
          granular = Result.get_ok b.t_result;
        }
        :: pair_up rest
    | _ -> assert false
  in
  pair_up reports

let run_all ?seed ?jobs ?verify ?policy ?cache scale =
  rows (run_tasks ?seed ?jobs ?verify ?policy ?cache scale)

type headline = {
  datapath_area_reduction : float;
  fpu_area_reduction : float;
  packing_overhead_reduction : float;
  firewire_reversal : bool;
  slack_improvement : float;
  degradation_reduction : float;
  displacement_reduction : float;
}

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let is_datapath r = r.name <> "Firewire"

let headlines rows =
  let datapath = List.filter is_datapath rows in
  let area_saving r =
    1.0 -. (r.granular.Flow.b.Flow.die_area /. r.lut.Flow.b.Flow.die_area)
  in
  (* Overhead of packing into the regular array, um^2 of die given up going
     from flow a to flow b. *)
  let overhead pair = pair.Flow.b.Flow.die_area -. pair.Flow.a.Flow.die_area in
  let overhead_saving r =
    let lut_ov = overhead r.lut and g_ov = overhead r.granular in
    if lut_ov <= 0.0 then 0.0 else 1.0 -. (g_ov /. lut_ov)
  in
  let slack_gain r =
    let l = r.lut.Flow.b.Flow.avg_top10_slack in
    let g = r.granular.Flow.b.Flow.avg_top10_slack in
    if l = 0.0 then 0.0 else (g -. l) /. Float.abs l
  in
  let degradation pair =
    pair.Flow.a.Flow.avg_top10_slack -. pair.Flow.b.Flow.avg_top10_slack
  in
  let degradation_saving r =
    let l = degradation r.lut and g = degradation r.granular in
    if l <= 0.0 then 0.0 else 1.0 -. (g /. l)
  in
  let fpu = List.find_opt (fun r -> r.name = "FPU") rows in
  let firewire = List.find_opt (fun r -> r.name = "Firewire") rows in
  {
    datapath_area_reduction = mean (List.map area_saving datapath);
    fpu_area_reduction =
      (match fpu with Some r -> area_saving r | None -> 0.0);
    packing_overhead_reduction = mean (List.map overhead_saving datapath);
    firewire_reversal =
      (match firewire with
      | Some r ->
          r.granular.Flow.b.Flow.die_area > r.lut.Flow.b.Flow.die_area
      | None -> false);
    slack_improvement = mean (List.map slack_gain datapath);
    degradation_reduction = mean (List.map degradation_saving datapath);
    displacement_reduction =
      (let saving r =
         let l = r.lut.Flow.b.Flow.displacement in
         if l <= 0.0 then 0.0
         else 1.0 -. (r.granular.Flow.b.Flow.displacement /. l)
       in
       mean (List.map saving datapath));
  }

let s3_census () = S3.census ()

let full_adder_tiles () =
  List.map (fun arch -> (arch.Arch.name, Full_adder.tiles_needed arch)) Arch.all

let config_delays () =
  let load = 10.0 in
  List.map
    (fun c -> (c, Config.delay c ~load, Config.cell_area c))
    Config.all

let compaction_table scale =
  List.concat_map
    (fun (name, nl) ->
      List.map
        (fun arch ->
          let before = Techmap.cell_area (Techmap.map arch nl) in
          let after = Techmap.cell_area (Compact.run arch nl) in
          (name, arch.Arch.name, before, after, 1.0 -. (after /. before)))
        Arch.all)
    (designs scale)

let config_distribution rows =
  List.map
    (fun r -> (r.name, r.granular.Flow.b.Flow.config_histogram))
    rows

let firewire_remedy ?(seed = 1) scale =
  let nl =
    match List.assoc_opt "Firewire" (designs scale) with
    | Some nl -> nl
    | None -> assert false
  in
  List.map
    (fun arch ->
      let p = Flow.run ~seed arch nl in
      (arch.Arch.name, p.Flow.b.Flow.die_area, p.Flow.b.Flow.avg_top10_slack))
    [ Arch.lut_plb; Arch.granular_plb; Arch.granular_2ff ]

let ablation ?(seed = 1) scale =
  let nl =
    match List.assoc_opt "ALU" (designs scale) with
    | Some nl -> nl
    | None -> assert false
  in
  let arch = Arch.granular_plb in
  let run ~refine ~use_criticality =
    (Flow.run ~seed ~refine ~use_criticality arch nl).Flow.b
  in
  [
    ("full flow", run ~refine:true ~use_criticality:true);
    ("no packing refinement", run ~refine:false ~use_criticality:true);
    ("no criticality weighting", run ~refine:true ~use_criticality:false);
    ("neither", run ~refine:false ~use_criticality:false);
  ]

(* E13: configuration-via accounting — the VPGA's customization cost. *)
let via_table ?(seed = 1) scale =
  ignore seed;
  List.concat_map
    (fun (name, nl) ->
      List.map
        (fun arch ->
          let compacted = Compact.run arch nl in
          let used =
            List.fold_left
              (fun acc (c, n) -> acc + (n * Config.via_count c))
              0
              (Compact.config_histogram compacted)
          in
          (name, arch.Arch.name, used))
        Arch.all)
    (designs scale)

(* E14: the paper's closing future-work item — regular vs custom routing
   for the VPGA fabric.  Same packed design and routed topology, two
   extraction models: ASIC-style custom metal vs switched regular tracks. *)
let routing_styles ?(seed = 1) scale =
  let module Placement = Vpga_place.Placement in
  let module Global = Vpga_place.Global in
  let module Buffering = Vpga_place.Buffering in
  let module Quadrisect = Vpga_pack.Quadrisect in
  let module Pathfinder = Vpga_route.Pathfinder in
  let module Sta = Vpga_timing.Sta in
  let arch = Arch.granular_plb in
  List.map
    (fun (name, nl) ->
      let buffered = Buffering.insert ~max_fanout:8 (Compact.run arch nl) in
      let pl = Placement.create buffered in
      Global.place ~seed pl;
      let q = Quadrisect.legalize arch pl in
      let side = sqrt arch.Arch.tile_area in
      let pl_b =
        {
          pl with
          Placement.die_w = float_of_int q.Quadrisect.cols *. side;
          die_h = float_of_int q.Quadrisect.rows *. side;
        }
      in
      Quadrisect.snap q pl_b;
      let routed = Pathfinder.route_placement pl_b in
      let slack wire =
        Sta.average_top_slack (Sta.run ~wire buffered) 10
      in
      ( name,
        slack (Pathfinder.wire_loads routed),
        slack (Pathfinder.wire_loads_regular routed) ))
    (designs scale)
