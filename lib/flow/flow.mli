(** The full Figure-6 design flow.

    Shared front-end: characterize (library) -> synthesize/map (AIG +
    technology mapping) -> regularity-driven compaction -> fanout buffering
    -> global + annealed detailed placement (criticality-driven).

    - {e Flow a} (the ASIC-style baseline): route and time the detailed
      placement directly; die area is cell area at standard-cell row
      utilization.
    - {e Flow b} (the VPGA flow): legalize by recursive quadrisection into
      the PLB array, snap to tiles, route over the array and time; die area
      is the PLB-array area. *)

type kind = Flow_a | Flow_b

type verify = Off | Fast | Formal
(** Verification level threaded through {!run}:

    - [Off] runs no checks at all (ablation / raw-speed benchmarking);
    - [Fast] (the default) checks structural well-formedness
      ({!Vpga_netlist.Netlist.validate}) and lint at every stage boundary,
      gates each front-end stage with the randomized simulation
      equivalence check, and enforces the physical invariants (placement
      legality, PLB packing coverage and feasibility, routing
      connectivity and capacity, detailed-track consistency);
    - [Formal] additionally {e proves} each front-end stage equivalent to
      the source netlist with the SAT-based combinational equivalence
      checker in {!Vpga_verify.Cec}. *)

type outcome = {
  design : string;
  arch : Vpga_plb.Arch.t;
  kind : kind;
  die_area : float;  (** um^2 *)
  cell_area : float;  (** sum of component/configuration areas, um^2 *)
  gate_count : float;  (** NAND2 equivalents of the source design *)
  avg_top10_slack : float;  (** ps, the paper's Table-2 metric *)
  wns : float;
  wirelength : float;  (** um *)
  array_dims : (int * int) option;  (** flow b: PLB array cols x rows *)
  tiles_used : int;
  compaction_gain : float;  (** fractional gate-area saving of compaction *)
  config_histogram : (Vpga_plb.Config.t * int) list;
  displacement : float;  (** flow b: legalization perturbation, um *)
  displacement_tiles : float;
      (** flow b: mean per-item perturbation in tile units *)
  power_uw : float;
      (** total (dynamic + leakage) power estimate at the target period, uW *)
  routed_vias : int;
      (** vias used by the detailed (track-assignment) routing *)
}

type pair = { a : outcome; b : outcome }

val run :
  ?seed:int ->
  ?period:float ->
  ?utilization:float ->
  ?anneal_iterations:int ->
  ?refine:bool ->
  ?use_criticality:bool ->
  ?jobs:int ->
  ?verify:verify ->
  ?policy:Vpga_resil.Policy.t ->
  ?log:Vpga_resil.Log.t ->
  ?trace:Vpga_obs.Trace.t ->
  ?trace_labels:bool ->
  ?analyze:bool ->
  ?defect:Vpga_resil.Defect.t ->
  ?cache:Vpga_cache.Cache.t ->
  Vpga_plb.Arch.t ->
  Vpga_netlist.Netlist.t ->
  pair
(** Runs both flows on a design, sharing the front-end.  [period] defaults
    to 500 ps (the paper's 0.5 ns); [utilization] (0.7) is the flow-a
    standard-cell row utilization; [seed] (1) drives every randomized stage
    deterministically.  [refine] (true) enables the packing <->
    physical-synthesis iteration; [use_criticality] (true) enables
    timing-criticality weighting in placement and packing — both exist for
    the ablation benches.  [jobs] (default 1) bounds the worker domains
    the region-parallel refinement may use; the region grid itself is a
    fixed function of the PLB array dims, so results are identical at
    every [jobs] setting.  [verify] (default {!Fast}) selects the
    verification level; see {!type-verify}.

    [policy] (default {!Vpga_resil.Policy.default}) controls what happens
    when a heuristic stage fails: global/detailed routing retries with
    escalated channel capacity and rip-up budget, legalization retries
    with a grown PLB array, a diverging anneal restarts with a derived
    reseed at a cooler temperature, and undecided Formal SAT proofs walk
    the conflict-budget ladder before degrading Formal -> Fast with a
    recorded warning.  Every retry's knobs and reseeds derive from the
    policy and the attempt index alone, so a retried flow remains
    deterministic.  Recovery events (retries, escalations, degradations)
    are recorded into [log] when supplied.

    [trace] (default {!Vpga_obs.Trace.null}, i.e. disabled) receives a
    hierarchical span per stage boundary (mapping, packing, placement,
    routing, timing, power and every verification gate), counter updates
    from the inner loops (annealer moves, PathFinder rip-up iterations,
    SAT conflicts/decisions/propagations, cut enumeration) via the
    ambient-trace mechanism, and the recovery log replayed as instant
    events on the same monotonic timeline.  Export with
    {!Vpga_obs.Export}.  A [null] trace reduces every probe to a single
    branch, so the instrumented flow's cost is unchanged when tracing is
    off.  [trace_labels] (default true) makes a {e traced} run compact
    through {!Vpga_mapper.Compact.run_traced} — the identical cover, with
    the incremental FlowMap labeler running alongside so the
    [flowmap.maxflow_calls] / [flowmap.labels_reused] counters land in
    the trace; pass [false] when the trace is collected for stage timings
    (from-scratch labeling can dwarf the compaction DP on large
    designs).

    [analyze] (default false) runs the static dataflow analyses
    ({!Vpga_analysis.Analysis}) over the source netlist — constant
    propagation, X-propagation, structural redundancy, fanout/depth
    shape — publishing [analysis.*] counters to the ambient trace, plus
    the region-ownership sanitizer around the packing refinement: the
    static proof ({!Vpga_analysis.Ownership.check}) before the region
    walks run, and the dynamic cross-region write guard
    ([Refine.run ~sanitize]) inside them.  Detection only: analysis
    never rewrites the netlist inside the flow, and the sanitizer
    changes no refinement verdicts, so results are identical with it on
    or off.  Analysis errors abort the flow like any verification gate.

    [defect] (default none) threads a manufacturing-defect map
    ({!Vpga_resil.Defect}) through the physical stages: legalization and
    refinement treat dead tiles as zero-capacity, both routing stages
    price dead boundaries unroutable and negotiate around derated ones,
    detailed routing skips dead tracks, and the physical checkers verify
    no artifact uses a defective resource.  An empty map is normalized
    away, so results are bit-identical to a run without the argument.

    [cache] (default {!Vpga_cache.Cache.none}, i.e. disabled) memoizes
    every stage boundary content-addressed on the stage's actual inputs
    (netlist structural digest, architecture digest, seeds, policy,
    verify level, defect-map fingerprint — see {!Stagekey}): rerunning
    an identical (sub)flow replays stored artifacts instead of
    recomputing them, with byte-identical outcomes — the flow is
    deterministic, so a hit is exactly a rerun.  Recovery events
    recorded during a cached compute replay into [log] on a hit, and
    each hit marks the trace timeline with a [cache:hit] instant plus
    [cache.*] counters.  A shared cache is safe across worker domains.
    Cheap stages (STA, power estimates, structural and physical checks)
    stay live and double as per-run spot checks of revived artifacts.

    @raise Vpga_resil.Fail.Stage_failure when an enabled verification
    check finds a violation or a stage exhausts its retry policy; the
    payload carries the stage name, attempt count, diagnostics and the
    recovery-event trail. *)

val check_equivalence : Vpga_netlist.Netlist.t -> Vpga_netlist.Netlist.t -> unit
(** Randomized equivalence gate used between flow stages.
    @raise Failure on a mismatch. *)

val check_structure : stage:string -> Vpga_netlist.Netlist.t -> unit
(** {!Vpga_netlist.Netlist.validate} as a hard flow gate.
    @raise Failure when the netlist is structurally invalid. *)
