(** Trace events: hierarchical spans and instants with typed attributes.

    A {e span} is a named interval on the monotonic clock; spans recorded
    through {!Trace.with_span} nest properly (a child's interval is
    contained in its parent's), and each carries the nesting [depth] it was
    opened at (0 = root).  An {e instant} is a point event — the flow uses
    them to place {!Vpga_resil.Log} recovery events on the same timeline
    as the stage spans. *)

type attr = Str of string | Int of int | Float of float | Bool of bool
(** Typed attribute values; exported verbatim into the Chrome trace
    event's [args] object. *)

type event =
  | Complete of {
      name : string;
      ts_ns : int64;  (** begin, monotonic ns *)
      dur_ns : int64;
      depth : int;  (** nesting depth at open: 0 = root *)
      attrs : (string * attr) list;
    }
  | Instant of { name : string; ts_ns : int64; attrs : (string * attr) list }

val name : event -> string
val ts_ns : event -> int64

val end_ns : event -> int64
(** [ts_ns + dur_ns] for a span; [ts_ns] for an instant. *)

val attr_to_string : attr -> string
