(** Monotonic clock (CLOCK_MONOTONIC, nanoseconds).

    Every timestamp in the observability layer — span begin/end, instant
    events, {!Vpga_resil.Log} recovery events — comes from this one clock,
    so events recorded by different subsystems land on a single timeline. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin.  Never decreases. *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the Chrome trace-event unit). *)
