(** Metric primitives: exact-percentile histograms with a derived
    log-binned shape, and the snapshot-diff engine behind
    [vpga perf diff]. *)

module Histogram : sig
  type t

  val create : unit -> t

  (** Record one sample.  Non-finite values (NaN, infinities) are
      rejected and counted in {!rejected} instead of corrupting the
      percentile extraction or the JSON export. *)
  val add : t -> float -> unit

  val count : t -> int
  val rejected : t -> int
  val min_value : t -> float
  val max_value : t -> float
  val sum : t -> float
  val mean : t -> float

  (** [percentile h p] is the exact nearest-rank percentile for
      [p] in \[0, 100\]: the ceil(p/100*n)-th smallest sample.  An empty
      histogram answers [0.0]. *)
  val percentile : t -> float -> float

  val merge : into:t -> t -> unit

  (** Log-binned shape: [(lo, hi, count)] triples with geometric edges
      (ratio [gamma], default 2{^1/4}), sorted by [lo]; samples <= 0
      fall into a single [(0, 0, n)] underflow bin.  Edges are monotone
      and consecutive bins share their boundary exactly. *)
  val bins : ?gamma:float -> t -> (float * float * int) list
end

(** One compared metric from a snapshot diff. *)
type delta = {
  d_key : string;
  d_base : float;
  d_current : float;
  d_floor : float;  (** noise floor of this metric's unit (0 for counts) *)
  d_regressed : bool;
}

(** [diff ~base ~current ()] compares two metrics snapshots (the JSON
    written by [Export.write_snapshot]) entry by entry: counters,
    per-stage wall/alloc, histogram counts and percentiles.  Count-like
    quantities regress when [current > base * (1 + tolerance)] (or
    appear from a zero baseline); time-valued quantities (names ending
    [_us]/[_ms]/[_s] or prefixed [span:]) additionally require the
    baseline to clear an absolute noise floor before they can flag.
    Default tolerance: 0.25. *)
val diff : ?tolerance:float -> base:Json.t -> current:Json.t -> unit -> delta list

val regressions : delta list -> delta list
val pp_diff : Format.formatter -> delta list -> unit
