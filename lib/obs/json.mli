(** Minimal self-contained JSON: a value type, a compact printer, and a
    recursive-descent parser.

    Exists so the trace exporter has no external dependency and so [vpga
    report] can read back the Chrome-trace files it writes.  The parser
    accepts standard JSON (with [\uXXXX] escapes decoded to UTF-8); it is
    not lenient — trailing garbage is an error. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace). *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** The error carries a character offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** [Num] payload. *)

val to_str : t -> string option
(** [Str] payload. *)
