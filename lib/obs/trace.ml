(* Per-task trace sink.  [t] is [sink option]: [None] is the disabled
   trace, so every operation starts with one cheap match and the disabled
   path allocates nothing.  A sink is only ever mutated from the domain
   running its task (the sweep hands finished traces back through a pool
   join, which publishes them), so there is no lock. *)

(* A time series keeps at most [series_cap] timestamped samples.  When a
   probe overruns the cap (a SAT-heavy verify can solve tens of
   thousands of times), the buffer is decimated: every other sample is
   dropped and the recording stride doubles, so retained samples stay
   spread over the whole run instead of truncating the tail. *)
let series_cap = 4096

type series_buf = {
  mutable sb_rsamples : (int64 * float) list; (* newest first *)
  mutable sb_len : int;
  mutable sb_stride : int; (* record every sb_stride-th offered sample *)
  mutable sb_skip : int; (* offered samples to skip before next record *)
  mutable sb_total : int; (* samples offered, including decimated ones *)
}

type sink = {
  s_tid : int;
  s_label : string;
  mutable revents : Span.event list; (* newest first *)
  mutable depth : int; (* currently open spans *)
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, series_buf) Hashtbl.t;
  hists : (string, Metrics.Histogram.t) Hashtbl.t;
}

type t = sink option

let null = None

let create ?(tid = 0) ?(label = "") () =
  Some
    {
      s_tid = tid;
      s_label = label;
      revents = [];
      depth = 0;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8;
      series = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }

let enabled = function Some _ -> true | None -> false
let tid = function Some s -> s.s_tid | None -> 0
let label = function Some s -> s.s_label | None -> ""

(* ---- spans ---- *)

type span =
  | Inert
  | Open of {
      o_sink : sink;
      o_name : string;
      o_t0 : int64;
      o_depth : int;
      o_attrs : (string * Span.attr) list;
      (* Gc.quick_stat baseline at open, so the close records per-span
         allocation deltas.  quick_stat is O(1) and domain-local: work a
         span farms out to other domains (region-parallel refine, the
         sweep pool) allocates on those domains and is not charged here. *)
      o_gc_minor : float;
      o_gc_major : float;
      o_gc_colls : int;
      mutable o_closed : bool;
    }

(* forward ref to [observe] below; spans auto-feed a duration histogram *)
let observe_hist : (sink -> string -> float -> unit) ref =
  ref (fun _ _ _ -> ())

let begin_span ?(attrs = []) t name =
  match t with
  | None -> Inert
  | Some s ->
      let d = s.depth in
      s.depth <- d + 1;
      let g = Gc.quick_stat () in
      Open
        {
          o_sink = s;
          o_name = name;
          o_t0 = Clock.now_ns ();
          o_depth = d;
          o_attrs = attrs;
          o_gc_minor = g.Gc.minor_words;
          o_gc_major = g.Gc.major_words;
          o_gc_colls = g.Gc.major_collections;
          o_closed = false;
        }

let end_span ?(attrs = []) sp =
  match sp with
  | Inert -> ()
  | Open o ->
      if not o.o_closed then begin
        o.o_closed <- true;
        let s = o.o_sink in
        s.depth <- s.depth - 1;
        let g = Gc.quick_stat () in
        let dur_ns = Int64.sub (Clock.now_ns ()) o.o_t0 in
        let gc_attrs =
          [
            ("gc.minor_words", Span.Float (g.Gc.minor_words -. o.o_gc_minor));
            ("gc.major_words", Span.Float (g.Gc.major_words -. o.o_gc_major));
            ( "gc.major_collections",
              Span.Int (g.Gc.major_collections - o.o_gc_colls) );
          ]
        in
        s.revents <-
          Span.Complete
            {
              name = o.o_name;
              ts_ns = o.o_t0;
              dur_ns;
              depth = o.o_depth;
              attrs = o.o_attrs @ attrs @ gc_attrs;
            }
          :: s.revents;
        !observe_hist s ("span:" ^ o.o_name) (Clock.ns_to_us dur_ns)
      end

let instant ?ts_ns ?(attrs = []) t name =
  match t with
  | None -> ()
  | Some s ->
      let ts_ns = match ts_ns with Some ts -> ts | None -> Clock.now_ns () in
      s.revents <- Span.Instant { name; ts_ns; attrs } :: s.revents

let events = function Some s -> List.rev s.revents | None -> []
let open_spans = function Some s -> s.depth | None -> 0

(* ---- counters / gauges ---- *)

let slot tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add tbl name r;
      r

let add t name v =
  match t with
  | None -> ()
  | Some s ->
      let r = slot s.counters name in
      r := !r +. v

let set t name v =
  match t with None -> () | Some s -> slot s.gauges name := v

let sorted tbl =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function Some s -> sorted s.counters | None -> []
let gauges = function Some s -> sorted s.gauges | None -> []

(* ---- time series ---- *)

let series_slot s name =
  match Hashtbl.find_opt s.series name with
  | Some b -> b
  | None ->
      let b =
        { sb_rsamples = []; sb_len = 0; sb_stride = 1; sb_skip = 0; sb_total = 0 }
      in
      Hashtbl.add s.series name b;
      b

(* Halve a full buffer, keeping chronologically even-indexed samples so
   coverage stays uniform over the run. *)
let decimate b =
  let a = Array.of_list b.sb_rsamples in
  (* a.(0) is newest; chronological index of a.(j) is len-1-j *)
  let keep = ref [] in
  for j = 0 to Array.length a - 1 do
    if (Array.length a - 1 - j) mod 2 = 0 then keep := a.(j) :: !keep
  done;
  b.sb_rsamples <- List.rev !keep;
  b.sb_len <- List.length b.sb_rsamples;
  b.sb_stride <- b.sb_stride * 2

let sample t name v =
  match t with
  | None -> ()
  | Some s ->
      let b = series_slot s name in
      b.sb_total <- b.sb_total + 1;
      if b.sb_skip > 0 then b.sb_skip <- b.sb_skip - 1
      else begin
        b.sb_rsamples <- (Clock.now_ns (), v) :: b.sb_rsamples;
        b.sb_len <- b.sb_len + 1;
        if b.sb_len >= series_cap then decimate b;
        b.sb_skip <- b.sb_stride - 1
      end

let series = function
  | None -> []
  | Some s ->
      Hashtbl.fold
        (fun name b acc ->
          (name, Array.of_list (List.rev b.sb_rsamples), b.sb_total) :: acc)
        s.series []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* ---- histograms ---- *)

let hist_slot s name =
  match Hashtbl.find_opt s.hists name with
  | Some h -> h
  | None ->
      let h = Metrics.Histogram.create () in
      Hashtbl.add s.hists name h;
      h

let () = observe_hist := fun s name v -> Metrics.Histogram.add (hist_slot s name) v

let observe t name v =
  match t with
  | None -> ()
  | Some s -> Metrics.Histogram.add (hist_slot s name) v

let histograms = function
  | None -> []
  | Some s ->
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) s.hists []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Counter = struct
  type t = float ref

  (* On a null trace the handle is a fresh unregistered cell: writes land
     nowhere visible, reads give back what was written — harmless. *)
  let make tr name =
    match tr with None -> ref 0.0 | Some s -> slot s.counters name

  let add c v = c := !c +. v
  let incr c = c := !c +. 1.0
  let value c = !c
end

module Gauge = struct
  type t = float ref

  let make tr name =
    match tr with None -> ref 0.0 | Some s -> slot s.gauges name

  let set g v = g := v
  let value g = !g
end

(* ---- ambient trace (domain-local) ---- *)

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_ambient t f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let ambient () = Domain.DLS.get ambient_key
let emit name v = add (Domain.DLS.get ambient_key) name v
let emit_set name v = set (Domain.DLS.get ambient_key) name v
let emit_sample name v = sample (Domain.DLS.get ambient_key) name v
let emit_observe name v = observe (Domain.DLS.get ambient_key) name v

let with_span ?attrs t name f =
  match t with
  | None -> f ()
  | Some _ ->
      let sp = begin_span ?attrs t name in
      with_ambient t (fun () ->
          Fun.protect ~finally:(fun () -> end_span sp) f)
