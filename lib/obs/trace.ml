(* Per-task trace sink.  [t] is [sink option]: [None] is the disabled
   trace, so every operation starts with one cheap match and the disabled
   path allocates nothing.  A sink is only ever mutated from the domain
   running its task (the sweep hands finished traces back through a pool
   join, which publishes them), so there is no lock. *)

type sink = {
  s_tid : int;
  s_label : string;
  mutable revents : Span.event list; (* newest first *)
  mutable depth : int; (* currently open spans *)
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
}

type t = sink option

let null = None

let create ?(tid = 0) ?(label = "") () =
  Some
    {
      s_tid = tid;
      s_label = label;
      revents = [];
      depth = 0;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8;
    }

let enabled = function Some _ -> true | None -> false
let tid = function Some s -> s.s_tid | None -> 0
let label = function Some s -> s.s_label | None -> ""

(* ---- spans ---- *)

type span =
  | Inert
  | Open of {
      o_sink : sink;
      o_name : string;
      o_t0 : int64;
      o_depth : int;
      o_attrs : (string * Span.attr) list;
      mutable o_closed : bool;
    }

let begin_span ?(attrs = []) t name =
  match t with
  | None -> Inert
  | Some s ->
      let d = s.depth in
      s.depth <- d + 1;
      Open
        {
          o_sink = s;
          o_name = name;
          o_t0 = Clock.now_ns ();
          o_depth = d;
          o_attrs = attrs;
          o_closed = false;
        }

let end_span ?(attrs = []) sp =
  match sp with
  | Inert -> ()
  | Open o ->
      if not o.o_closed then begin
        o.o_closed <- true;
        let s = o.o_sink in
        s.depth <- s.depth - 1;
        s.revents <-
          Span.Complete
            {
              name = o.o_name;
              ts_ns = o.o_t0;
              dur_ns = Int64.sub (Clock.now_ns ()) o.o_t0;
              depth = o.o_depth;
              attrs = o.o_attrs @ attrs;
            }
          :: s.revents
      end

let instant ?ts_ns ?(attrs = []) t name =
  match t with
  | None -> ()
  | Some s ->
      let ts_ns = match ts_ns with Some ts -> ts | None -> Clock.now_ns () in
      s.revents <- Span.Instant { name; ts_ns; attrs } :: s.revents

let events = function Some s -> List.rev s.revents | None -> []
let open_spans = function Some s -> s.depth | None -> 0

(* ---- counters / gauges ---- *)

let slot tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add tbl name r;
      r

let add t name v =
  match t with
  | None -> ()
  | Some s ->
      let r = slot s.counters name in
      r := !r +. v

let set t name v =
  match t with None -> () | Some s -> slot s.gauges name := v

let sorted tbl =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters = function Some s -> sorted s.counters | None -> []
let gauges = function Some s -> sorted s.gauges | None -> []

module Counter = struct
  type t = float ref

  (* On a null trace the handle is a fresh unregistered cell: writes land
     nowhere visible, reads give back what was written — harmless. *)
  let make tr name =
    match tr with None -> ref 0.0 | Some s -> slot s.counters name

  let add c v = c := !c +. v
  let incr c = c := !c +. 1.0
  let value c = !c
end

module Gauge = struct
  type t = float ref

  let make tr name =
    match tr with None -> ref 0.0 | Some s -> slot s.gauges name

  let set g v = g := v
  let value g = !g
end

(* ---- ambient trace (domain-local) ---- *)

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_ambient t f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let ambient () = Domain.DLS.get ambient_key
let emit name v = add (Domain.DLS.get ambient_key) name v
let emit_set name v = set (Domain.DLS.get ambient_key) name v

let with_span ?attrs t name f =
  match t with
  | None -> f ()
  | Some _ ->
      let sp = begin_span ?attrs t name in
      with_ambient t (fun () ->
          Fun.protect ~finally:(fun () -> end_span sp) f)
