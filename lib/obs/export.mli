(** Trace export: Chrome trace-event JSON (loadable in Perfetto /
    [chrome://tracing]) and a compact per-stage text report.

    The Chrome document is one JSON object with a [traceEvents] array;
    traces merge into it by task id (each {!Trace.t} becomes one thread,
    named by its label).  Spans become ["ph":"X"] complete events (with
    their nesting depth in [args.depth]), instants ["ph":"i"], and each
    counter/gauge one ["ph":"C"] counter sample at the trace's end.
    Timestamps are microseconds relative to the earliest event, so the
    file is stable under everything but the run's own durations. *)

val chrome : ?process_name:string -> Trace.t list -> Json.t
(** Merge traces into one Chrome trace-event document.  Null traces are
    skipped; [process_name] (default ["vpga"]) names the single process. *)

val write_chrome : ?process_name:string -> string -> Trace.t list -> unit
(** [chrome] serialized to a file. *)

val load : string -> (Json.t, string) result
(** Read a Chrome trace-event file back (for [vpga report]). *)

val stage_totals : Trace.t list -> (string * float) list
(** Total seconds per {e stage} span — the depth-1 spans, i.e. the direct
    children of each trace's root — summed across all given traces,
    name-sorted.  This is the [stages_s] block of [BENCH_sweep.json]. *)

val stage_allocs : Trace.t list -> (string * (float * float * int)) list
(** Per-stage [(minor_words, major_words, major_collections)] from the
    GC attrs every closed span carries, summed like {!stage_totals}.
    This is the [stages_alloc] block of [BENCH_sweep.json]. *)

val merged_histograms : Trace.t list -> (string * Metrics.Histogram.t) list
(** All histograms of the given traces merged by name, name-sorted. *)

val snapshot : ?label:string -> Trace.t list -> Json.t
(** Self-contained metrics snapshot (schema [vpga-metrics/1]): counter
    and gauge totals, per-stage wall/alloc accounting, merged histograms
    with exact p50/p90/p99 and log-binned shape, and series trajectory
    summaries (sample counts and endpoints — full series live in the
    Chrome export).  This is the input format of [vpga perf diff]. *)

val write_snapshot : ?label:string -> string -> Trace.t list -> unit
(** [snapshot] serialized to a file. *)

val report : Format.formatter -> Json.t -> unit
(** The per-stage summary of a Chrome trace-event document: a span table
    (calls, total time, share of root wall time, minor allocation), the
    counter totals — including the stage cache's [cache.*] counters,
    with a derived hit-rate line when any lookups happened — series
    sample counts, and the instant-event counts. *)

val report_json : Json.t -> Json.t
(** The same aggregation as {!report} but machine-readable (schema
    [vpga-report/1]) — for [vpga report --json]. *)

val report_traces : Format.formatter -> Trace.t list -> unit
(** [report] on [chrome traces] — the in-process shortcut. *)
