type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_str f)
  | Str s -> escape buf s
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing ---- *)

exception Parse_error of int * string

let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub src !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf cp =
    (* BMP only; surrogate pairs are recombined by the caller. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'u' ->
              advance ();
              let hi = hex4 () in
              let cp =
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* surrogate pair *)
                  expect '\\';
                  expect 'u';
                  let lo = hex4 () in
                  0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else hi
              in
              utf8 buf cp;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
