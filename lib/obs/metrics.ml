(* Metric primitives for the observability layer: histograms with exact
   percentile extraction plus a log-binned shape for export, and the
   snapshot *diff* — the pure-JSON comparison engine behind
   [vpga perf diff].  (Snapshot *construction* needs [Trace] and lives in
   [Export]; this module stays below [Trace] so the trace registry can
   hold histograms.) *)

module Histogram = struct
  (* Samples are retained exactly (doubling array), so percentiles are
     exact nearest-rank selections; the log-binned view is derived on
     demand for export.  Series sampled through this module are bounded
     in practice (per-net wirelength, span durations, queue waits), so
     retention costs one float per sample. *)
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable rejected : int; (* non-finite samples, dropped *)
  }

  let create () = { data = [||]; n = 0; rejected = 0 }

  let add h v =
    if not (Float.is_finite v) then h.rejected <- h.rejected + 1
    else begin
      if h.n = Array.length h.data then begin
        let d = Array.make (max 16 (2 * h.n)) 0.0 in
        Array.blit h.data 0 d 0 h.n;
        h.data <- d
      end;
      h.data.(h.n) <- v;
      h.n <- h.n + 1
    end

  let count h = h.n
  let rejected h = h.rejected

  let fold f acc h =
    let acc = ref acc in
    for i = 0 to h.n - 1 do
      acc := f !acc h.data.(i)
    done;
    !acc

  let min_value h = if h.n = 0 then 0.0 else fold Float.min infinity h
  let max_value h = if h.n = 0 then 0.0 else fold Float.max neg_infinity h
  let sum h = fold ( +. ) 0.0 h
  let mean h = if h.n = 0 then 0.0 else sum h /. float_of_int h.n

  let sorted_copy h =
    let a = Array.sub h.data 0 h.n in
    Array.sort Float.compare a;
    a

  (* Exact nearest-rank percentile: the ceil(p/100 * n)-th smallest
     sample (1-based), clamped into [1, n].  Empty histograms answer 0.0
     so snapshots stay valid JSON (no NaN). *)
  let percentile h p =
    if h.n = 0 then 0.0
    else begin
      let a = sorted_copy h in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int h.n))
      in
      a.(max 0 (min (h.n - 1) (rank - 1)))
    end

  let merge ~into src =
    for i = 0 to src.n - 1 do
      add into src.data.(i)
    done;
    into.rejected <- into.rejected + src.rejected

  (* Log-binned shape: geometric bins with ratio [gamma] (default 2^1/4,
     about 12 bins per decade).  Samples <= 0 collapse into one (0, 0)
     underflow bin; consecutive bin edges share the exact float
     computation, so the edge sequence is monotone by construction. *)
  let default_gamma = Float.pow 2.0 0.25

  let bins ?(gamma = default_gamma) h =
    if gamma <= 1.0 then invalid_arg "Histogram.bins: gamma must be > 1";
    let lg = log gamma in
    let tbl = Hashtbl.create 32 in
    let bump k =
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    for i = 0 to h.n - 1 do
      let v = h.data.(i) in
      if v <= 0.0 then bump min_int
      else bump (int_of_float (Float.floor (log v /. lg)))
    done;
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (k, c) ->
           if k = min_int then (0.0, 0.0, c)
           else (Float.pow gamma (float_of_int k),
                 Float.pow gamma (float_of_int (k + 1)),
                 c))
end

(* ---- snapshot diff ---- *)

(* A snapshot (written by [Export.write_snapshot]) is compared block by
   block: counters, per-stage wall/alloc, histogram count + percentiles.
   Counters and allocation are deterministic for a fixed seed, so any
   increase past the tolerance is a real change; wall-clock quantities
   are noisy, so time-valued keys additionally need the baseline to
   clear an absolute floor before they can flag (sub-floor timings are
   measurement noise, not signal). *)

type delta = {
  d_key : string;
  d_base : float;
  d_current : float;
  d_floor : float; (* noise floor of this metric's unit (0 for counts) *)
  d_regressed : bool;
}

type unit_kind = Count | Seconds | Micros

(* 10 ms either way: spans shorter than that jitter by tens of percent
   under ordinary scheduler noise, and the Bechamel kernel perfdiff
   already guards sub-10ms code paths with proper repetition. *)
let floor_of = function Count -> 0.0 | Seconds -> 0.01 | Micros -> 10_000.0

(* Histogram / series names carry their unit as a suffix; span-duration
   histograms are recorded in microseconds under a [span:] prefix. *)
let kind_of_name name =
  let suffix s = String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  let prefix s = String.length name >= String.length s
    && String.sub name 0 (String.length s) = s
  in
  if prefix "span:" || suffix "_us" || suffix "_ms" then Micros
  else if suffix "_s" then Seconds
  else Count

let regressed ~tolerance kind ~base ~current =
  match kind with
  | Count ->
      if base = 0.0 then current > 0.0
      else current > base *. (1.0 +. tolerance)
  | Seconds | Micros ->
      base >= floor_of kind && current > base *. (1.0 +. tolerance)

let num_members = function
  | Json.Obj fields ->
      List.filter_map
        (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
        fields
  | _ -> []

let obj_members = function
  | Json.Obj fields ->
      List.filter_map
        (fun (k, v) -> match v with Json.Obj _ -> Some (k, v) | _ -> None)
        fields
  | _ -> []

let block name doc = Option.value ~default:(Json.Obj []) (Json.member name doc)

let diff ?(tolerance = 0.25) ~base ~current () =
  let out = ref [] in
  let compare_num ~kind key b c =
    out :=
      {
        d_key = key;
        d_base = b;
        d_current = c;
        d_floor = floor_of kind;
        d_regressed = regressed ~tolerance kind ~base:b ~current:c;
      }
      :: !out
  in
  (* Counters: flat name -> number.  Keys present only in the baseline
     are improvements (or removed probes), never regressions; keys new in
     the current snapshot gate like a 0 baseline. *)
  let flat_block label bl cur =
    let b = num_members bl and c = num_members cur in
    List.iter
      (fun (k, cv) ->
        let bv = Option.value ~default:0.0 (List.assoc_opt k b) in
        compare_num ~kind:(kind_of_name k) (label ^ " " ^ k) bv cv)
      c
  in
  flat_block "counter" (block "counters" base) (block "counters" current);
  (* Stages: name -> { wall_s; calls; minor_words; major_words;
     major_collections }. *)
  let bstages = obj_members (block "stages" base) in
  List.iter
    (fun (stage, cobj) ->
      let bobj =
        Option.value ~default:(Json.Obj []) (List.assoc_opt stage bstages)
      in
      let bf = num_members bobj and cf = num_members cobj in
      List.iter
        (fun (field, cv) ->
          let bv = Option.value ~default:0.0 (List.assoc_opt field bf) in
          compare_num ~kind:(kind_of_name field)
            (Printf.sprintf "stage %s %s" stage field)
            bv cv)
        cf)
    (obj_members (block "stages" current));
  (* Histograms: name -> { count; p50; p90; p99; ... }.  The unit comes
     from the histogram's name; only count and the percentiles gate
     (min/max/mean/bins are shape, not trajectory). *)
  let bhists = obj_members (block "histograms" base) in
  List.iter
    (fun (name, cobj) ->
      let bobj =
        Option.value ~default:(Json.Obj []) (List.assoc_opt name bhists)
      in
      let bf = num_members bobj and cf = num_members cobj in
      let kind = kind_of_name name in
      List.iter
        (fun field ->
          match List.assoc_opt field cf with
          | None -> ()
          | Some cv ->
              let bv = Option.value ~default:0.0 (List.assoc_opt field bf) in
              let kind = if field = "count" then Count else kind in
              compare_num ~kind
                (Printf.sprintf "histogram %s %s" name field)
                bv cv)
        [ "count"; "p50"; "p90"; "p99" ])
    (obj_members (block "histograms" current));
  List.rev !out

let regressions ds = List.filter (fun d -> d.d_regressed) ds

let pp_delta ppf d =
  let pct =
    if d.d_base > 0.0 then
      Printf.sprintf "%+7.1f%%" (100.0 *. ((d.d_current /. d.d_base) -. 1.0))
    else "    new"
  in
  Format.fprintf ppf "%-52s %14.3f %14.3f %s%s" d.d_key d.d_base d.d_current
    pct
    (if d.d_regressed then "  REGRESSION" else "")

let pp_diff ppf ds =
  (* Display is filtered like the gate: time-valued metrics below their
     noise floor don't clutter the table with jitter. *)
  let changed =
    List.filter
      (fun d ->
        d.d_regressed
        || (d.d_base >= d.d_floor
            &&
            if d.d_base = 0.0 then d.d_current <> 0.0
            else Float.abs ((d.d_current /. d.d_base) -. 1.0) > 0.05))
      ds
  in
  Format.fprintf ppf "@[<v>%-52s %14s %14s@," "metric" "base" "current";
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_delta d) changed;
  let n_reg = List.length (regressions ds) in
  Format.fprintf ppf "@,%d metric(s) compared, %d changed >5%%, %d regression(s)@]"
    (List.length ds) (List.length changed) n_reg
