type attr = Str of string | Int of int | Float of float | Bool of bool

type event =
  | Complete of {
      name : string;
      ts_ns : int64;
      dur_ns : int64;
      depth : int;
      attrs : (string * attr) list;
    }
  | Instant of { name : string; ts_ns : int64; attrs : (string * attr) list }

let name = function Complete { name; _ } | Instant { name; _ } -> name
let ts_ns = function Complete { ts_ns; _ } | Instant { ts_ns; _ } -> ts_ns

let end_ns = function
  | Complete { ts_ns; dur_ns; _ } -> Int64.add ts_ns dur_ns
  | Instant { ts_ns; _ } -> ts_ns

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
