let attr_json : Span.attr -> Json.t = function
  | Span.Str s -> Json.Str s
  | Span.Int i -> Json.Num (float_of_int i)
  | Span.Float f -> Json.Num f
  | Span.Bool b -> Json.Bool b

let args_json attrs = Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

(* All events of all traces share one time base: the earliest event
   timestamp (0 when there are no events at all). *)
let time_base traces =
  List.fold_left
    (fun base t ->
      List.fold_left
        (fun base e -> Int64.min base (Span.ts_ns e))
        base (Trace.events t))
    Int64.max_int traces
  |> fun b -> if b = Int64.max_int then 0L else b

let us_since base ns = Clock.ns_to_us (Int64.sub ns base)

let chrome ?(process_name = "vpga") traces =
  let traces = List.filter Trace.enabled traces in
  let base = time_base traces in
  let common tid name ph =
    [
      ("name", Json.Str name);
      ("ph", Json.Str ph);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let meta =
    Json.Obj
      (common 0 "process_name" "M" @ [ ("args", Json.Obj [ ("name", Json.Str process_name) ]) ])
    :: List.map
         (fun t ->
           Json.Obj
             (common (Trace.tid t) "thread_name" "M"
             @ [ ("args", Json.Obj [ ("name", Json.Str (Trace.label t)) ]) ]))
         traces
  in
  let of_event tid = function
    | Span.Complete { name; ts_ns; dur_ns; depth; attrs } ->
        Json.Obj
          (common tid name "X"
          @ [
              ("cat", Json.Str "flow");
              ("ts", Json.Num (us_since base ts_ns));
              ("dur", Json.Num (Clock.ns_to_us dur_ns));
              ("args", args_json (("depth", Span.Int depth) :: attrs));
            ])
    | Span.Instant { name; ts_ns; attrs } ->
        Json.Obj
          (common tid name "i"
          @ [
              ("cat", Json.Str "resil");
              ("s", Json.Str "t");
              ("ts", Json.Num (us_since base ts_ns));
              ("args", args_json attrs);
            ])
  in
  let trace_end t =
    List.fold_left
      (fun acc e -> Int64.max acc (Span.end_ns e))
      base (Trace.events t)
  in
  let counter_events t =
    let ts = Json.Num (us_since base (trace_end t)) in
    List.map
      (fun (name, v) ->
        Json.Obj
          (common (Trace.tid t) name "C"
          @ [ ("ts", ts); ("args", Json.Obj [ ("value", Json.Num v) ]) ]))
      (Trace.counters t @ Trace.gauges t)
  in
  let events =
    List.concat_map
      (fun t ->
        List.map (of_event (Trace.tid t)) (Trace.events t) @ counter_events t)
      traces
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (meta @ events));
    ]

let write_chrome ?process_name path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (chrome ?process_name traces);
      output_char oc '\n')

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> Json.parse src
  | exception Sys_error msg -> Error msg

let stage_totals traces =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (function
          | Span.Complete { name; dur_ns; depth = 1; _ } ->
              let r =
                match Hashtbl.find_opt tbl name with
                | Some r -> r
                | None ->
                    let r = ref 0.0 in
                    Hashtbl.add tbl name r;
                    r
              in
              r := !r +. Clock.ns_to_s dur_ns
          | _ -> ())
        (Trace.events t))
    traces;
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- the per-stage text report over a (possibly reloaded) document ---- *)

type row = { mutable calls : int; mutable total_us : float }

let report fmt doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> []
  in
  let str k ev = Option.bind (Json.member k ev) Json.to_str in
  let num k ev = Option.bind (Json.member k ev) Json.to_float in
  let spans : (int * string, row) Hashtbl.t = Hashtbl.create 32 in
  let counters : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let instants : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let root_us = ref 0.0 in
  List.iter
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "X", Some name ->
          let dur = Option.value ~default:0.0 (num "dur" ev) in
          let depth =
            match Option.bind (Json.member "args" ev) (num "depth") with
            | Some d -> int_of_float d
            | None -> 0
          in
          if depth = 0 then root_us := !root_us +. dur;
          let key = (depth, name) in
          let row =
            match Hashtbl.find_opt spans key with
            | Some r -> r
            | None ->
                let r = { calls = 0; total_us = 0.0 } in
                Hashtbl.add spans key r;
                r
          in
          row.calls <- row.calls + 1;
          row.total_us <- row.total_us +. dur
      | Some "C", Some name ->
          let v =
            match Option.bind (Json.member "args" ev) (num "value") with
            | Some v -> v
            | None -> 0.0
          in
          Hashtbl.replace counters name
            (v +. Option.value ~default:0.0 (Hashtbl.find_opt counters name))
      | Some "i", Some name ->
          Hashtbl.replace instants name
            (1 + Option.value ~default:0 (Hashtbl.find_opt instants name))
      | _ -> ())
    events;
  let span_rows =
    Hashtbl.fold (fun k r acc -> (k, r) :: acc) spans []
    |> List.sort (fun ((d1, n1), r1) ((d2, n2), r2) ->
           if d1 <> d2 then Int.compare d1 d2
           else if r1.total_us <> r2.total_us then
             Float.compare r2.total_us r1.total_us
           else String.compare n1 n2)
  in
  Format.fprintf fmt "%-28s %5s %6s %12s %8s@." "span" "depth" "calls"
    "total ms" "share";
  List.iter
    (fun ((depth, name), r) ->
      let share =
        if !root_us > 0.0 then 100.0 *. r.total_us /. !root_us else 0.0
      in
      Format.fprintf fmt "%-28s %5d %6d %12.3f %7.1f%%@." name depth r.calls
        (r.total_us /. 1e3) share)
    span_rows;
  let sorted tbl fold_val =
    Hashtbl.fold (fun k v acc -> (k, fold_val v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let counter_rows = sorted counters (fun v -> v) in
  if counter_rows <> [] then begin
    Format.fprintf fmt "@.%-28s %12s@." "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%-28s %12.0f@." name v)
      counter_rows
  end;
  let instant_rows = sorted instants float_of_int in
  if instant_rows <> [] then begin
    Format.fprintf fmt "@.%-28s %12s@." "instant event" "count";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%-28s %12.0f@." name v)
      instant_rows
  end

let report_traces fmt traces = report fmt (chrome traces)
