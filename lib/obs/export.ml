let attr_json : Span.attr -> Json.t = function
  | Span.Str s -> Json.Str s
  | Span.Int i -> Json.Num (float_of_int i)
  | Span.Float f -> Json.Num f
  | Span.Bool b -> Json.Bool b

let args_json attrs = Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

(* All events of all traces share one time base: the earliest event or
   series-sample timestamp (0 when there is nothing at all). *)
let time_base traces =
  List.fold_left
    (fun base t ->
      let base =
        List.fold_left
          (fun base e -> Int64.min base (Span.ts_ns e))
          base (Trace.events t)
      in
      List.fold_left
        (fun base (_, samples, _) ->
          if Array.length samples = 0 then base
          else Int64.min base (fst samples.(0)))
        base (Trace.series t))
    Int64.max_int traces
  |> fun b -> if b = Int64.max_int then 0L else b

let us_since base ns = Clock.ns_to_us (Int64.sub ns base)

let chrome ?(process_name = "vpga") traces =
  let traces = List.filter Trace.enabled traces in
  let base = time_base traces in
  let common tid name ph =
    [
      ("name", Json.Str name);
      ("ph", Json.Str ph);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let meta =
    Json.Obj
      (common 0 "process_name" "M" @ [ ("args", Json.Obj [ ("name", Json.Str process_name) ]) ])
    :: List.map
         (fun t ->
           Json.Obj
             (common (Trace.tid t) "thread_name" "M"
             @ [ ("args", Json.Obj [ ("name", Json.Str (Trace.label t)) ]) ]))
         traces
  in
  let of_event tid = function
    | Span.Complete { name; ts_ns; dur_ns; depth; attrs } ->
        Json.Obj
          (common tid name "X"
          @ [
              ("cat", Json.Str "flow");
              ("ts", Json.Num (us_since base ts_ns));
              ("dur", Json.Num (Clock.ns_to_us dur_ns));
              ("args", args_json (("depth", Span.Int depth) :: attrs));
            ])
    | Span.Instant { name; ts_ns; attrs } ->
        Json.Obj
          (common tid name "i"
          @ [
              ("cat", Json.Str "resil");
              ("s", Json.Str "t");
              ("ts", Json.Num (us_since base ts_ns));
              ("args", args_json attrs);
            ])
  in
  let trace_end t =
    List.fold_left
      (fun acc e -> Int64.max acc (Span.end_ns e))
      base (Trace.events t)
  in
  let counter_events t =
    let ts = Json.Num (us_since base (trace_end t)) in
    List.map
      (fun (name, v) ->
        Json.Obj
          (common (Trace.tid t) name "C"
          @ [ ("ts", ts); ("args", Json.Obj [ ("value", Json.Num v) ]) ]))
      (Trace.counters t @ Trace.gauges t)
  in
  (* Time series render as counter tracks at their real sample times —
     tagged [cat:"series"] so the report can tell them from the
     end-of-trace counter totals above. *)
  let series_events t =
    List.concat_map
      (fun (name, samples, _total) ->
        Array.to_list samples
        |> List.map (fun (ts_ns, v) ->
               Json.Obj
                 (common (Trace.tid t) name "C"
                 @ [
                     ("cat", Json.Str "series");
                     ("ts", Json.Num (us_since base ts_ns));
                     ("args", Json.Obj [ ("value", Json.Num v) ]);
                   ])))
      (Trace.series t)
  in
  let events =
    List.concat_map
      (fun t ->
        List.map (of_event (Trace.tid t)) (Trace.events t)
        @ counter_events t @ series_events t)
      traces
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (meta @ events));
    ]

let write_chrome ?process_name path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (chrome ?process_name traces);
      output_char oc '\n')

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> Json.parse src
  | exception Sys_error msg -> Error msg

(* ---- direct per-stage aggregation over live traces ---- *)

type stage_acc = {
  mutable st_calls : int;
  mutable st_wall_s : float;
  mutable st_minor_w : float;
  mutable st_major_w : float;
  mutable st_colls : int;
}

let attr_float = function
  | Span.Float f -> f
  | Span.Int i -> float_of_int i
  | _ -> 0.0

let gc_of_attrs attrs =
  let get k =
    match List.assoc_opt k attrs with Some a -> attr_float a | None -> 0.0
  in
  (get "gc.minor_words", get "gc.major_words",
   int_of_float (get "gc.major_collections"))

let stage_accs traces =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (function
          | Span.Complete { name; dur_ns; depth = 1; attrs; _ } ->
              let acc =
                match Hashtbl.find_opt tbl name with
                | Some a -> a
                | None ->
                    let a =
                      {
                        st_calls = 0;
                        st_wall_s = 0.0;
                        st_minor_w = 0.0;
                        st_major_w = 0.0;
                        st_colls = 0;
                      }
                    in
                    Hashtbl.add tbl name a;
                    a
              in
              let minor, major, colls = gc_of_attrs attrs in
              acc.st_calls <- acc.st_calls + 1;
              acc.st_wall_s <- acc.st_wall_s +. Clock.ns_to_s dur_ns;
              acc.st_minor_w <- acc.st_minor_w +. minor;
              acc.st_major_w <- acc.st_major_w +. major;
              acc.st_colls <- acc.st_colls + colls
          | _ -> ())
        (Trace.events t))
    traces;
  Hashtbl.fold (fun name a acc -> (name, a) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stage_totals traces =
  List.map (fun (name, a) -> (name, a.st_wall_s)) (stage_accs traces)

let stage_allocs traces =
  List.map
    (fun (name, a) -> (name, (a.st_minor_w, a.st_major_w, a.st_colls)))
    (stage_accs traces)

let merged_histograms traces =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t ->
      List.iter
        (fun (name, h) ->
          let into =
            match Hashtbl.find_opt tbl name with
            | Some m -> m
            | None ->
                let m = Metrics.Histogram.create () in
                Hashtbl.add tbl name m;
                m
          in
          Metrics.Histogram.merge ~into h)
        (Trace.histograms t))
    traces;
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- metrics snapshot ---- *)

let histogram_json h =
  let open Metrics.Histogram in
  Json.Obj
    [
      ("count", Json.Num (float_of_int (count h)));
      ("rejected", Json.Num (float_of_int (rejected h)));
      ("min", Json.Num (min_value h));
      ("max", Json.Num (max_value h));
      ("mean", Json.Num (mean h));
      ("p50", Json.Num (percentile h 50.0));
      ("p90", Json.Num (percentile h 90.0));
      ("p99", Json.Num (percentile h 99.0));
      ( "bins",
        Json.Arr
          (List.map
             (fun (lo, hi, n) ->
               Json.Obj
                 [
                   ("lo", Json.Num lo);
                   ("hi", Json.Num hi);
                   ("n", Json.Num (float_of_int n));
                 ])
             (bins h)) );
    ]

let snapshot ?(label = "") traces =
  let traces = List.filter Trace.enabled traces in
  (* Counters sum across traces; gauges are point-in-time, so a later
     trace's value wins on a name collision. *)
  let counters = Hashtbl.create 32 and gauges = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (name, v) ->
          Hashtbl.replace counters name
            (v +. Option.value ~default:0.0 (Hashtbl.find_opt counters name)))
        (Trace.counters t);
      List.iter (fun (name, v) -> Hashtbl.replace gauges name v) (Trace.gauges t))
    traces;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, Json.Num v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let wall_s =
    List.fold_left
      (fun acc t ->
        List.fold_left
          (fun acc e ->
            match e with
            | Span.Complete { dur_ns; depth = 0; _ } ->
                acc +. Clock.ns_to_s dur_ns
            | _ -> acc)
          acc (Trace.events t))
      0.0 traces
  in
  let stages =
    List.map
      (fun (name, a) ->
        ( name,
          Json.Obj
            [
              ("calls", Json.Num (float_of_int a.st_calls));
              ("wall_s", Json.Num a.st_wall_s);
              ("minor_words", Json.Num a.st_minor_w);
              ("major_words", Json.Num a.st_major_w);
              ("major_collections", Json.Num (float_of_int a.st_colls));
            ] ))
      (stage_accs traces)
  in
  let hists =
    List.map (fun (name, h) -> (name, histogram_json h)) (merged_histograms traces)
  in
  (* Series summarize to trajectory endpoints; the full sample list
     lives in the Chrome export, not the snapshot. *)
  let series =
    List.concat_map
      (fun t ->
        List.map
          (fun (name, samples, total) ->
            let n = Array.length samples in
            let vs = Array.map snd samples in
            let fold f init = Array.fold_left f init vs in
            ( name,
              Json.Obj
                [
                  ("samples", Json.Num (float_of_int n));
                  ("offered", Json.Num (float_of_int total));
                  ("first", Json.Num (if n = 0 then 0.0 else vs.(0)));
                  ("last", Json.Num (if n = 0 then 0.0 else vs.(n - 1)));
                  ("min", Json.Num (if n = 0 then 0.0 else fold Float.min infinity));
                  ("max", Json.Num (if n = 0 then 0.0 else fold Float.max neg_infinity));
                ] ))
          (Trace.series t))
      traces
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("schema", Json.Str "vpga-metrics/1");
      ("label", Json.Str label);
      ("wall_s", Json.Num wall_s);
      ("counters", Json.Obj (sorted counters));
      ("gauges", Json.Obj (sorted gauges));
      ("stages", Json.Obj stages);
      ("histograms", Json.Obj hists);
      ("series", Json.Obj series);
    ]

let write_snapshot ?label path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (snapshot ?label traces);
      output_char oc '\n')

(* ---- the per-stage report over a (possibly reloaded) document ---- *)

type row = {
  mutable calls : int;
  mutable total_us : float;
  mutable minor_w : float;
  mutable major_w : float;
}

type series_row = { mutable samples : int; mutable last : float }

type summary = {
  su_spans : ((int * string) * row) list; (* (depth, name), depth then time *)
  su_root_us : float;
  su_counters : (string * float) list; (* name-sorted totals *)
  su_instants : (string * int) list;
  su_series : (string * series_row) list;
}

let summarize doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr evs) -> evs
    | _ -> []
  in
  let str k ev = Option.bind (Json.member k ev) Json.to_str in
  let num k ev = Option.bind (Json.member k ev) Json.to_float in
  let spans : (int * string, row) Hashtbl.t = Hashtbl.create 32 in
  let counters : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let instants : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let series : (string, series_row) Hashtbl.t = Hashtbl.create 8 in
  let root_us = ref 0.0 in
  List.iter
    (fun ev ->
      match (str "ph" ev, str "name" ev) with
      | Some "X", Some name ->
          let dur = Option.value ~default:0.0 (num "dur" ev) in
          let args k =
            Option.value ~default:0.0
              (Option.bind (Json.member "args" ev) (num k))
          in
          let depth = int_of_float (args "depth") in
          if depth = 0 then root_us := !root_us +. dur;
          let key = (depth, name) in
          let row =
            match Hashtbl.find_opt spans key with
            | Some r -> r
            | None ->
                let r =
                  { calls = 0; total_us = 0.0; minor_w = 0.0; major_w = 0.0 }
                in
                Hashtbl.add spans key r;
                r
          in
          row.calls <- row.calls + 1;
          row.total_us <- row.total_us +. dur;
          row.minor_w <- row.minor_w +. args "gc.minor_words";
          row.major_w <- row.major_w +. args "gc.major_words"
      | Some "C", Some name ->
          let v =
            match Option.bind (Json.member "args" ev) (num "value") with
            | Some v -> v
            | None -> 0.0
          in
          if str "cat" ev = Some "series" then begin
            let r =
              match Hashtbl.find_opt series name with
              | Some r -> r
              | None ->
                  let r = { samples = 0; last = 0.0 } in
                  Hashtbl.add series name r;
                  r
            in
            r.samples <- r.samples + 1;
            r.last <- v
          end
          else
            Hashtbl.replace counters name
              (v +. Option.value ~default:0.0 (Hashtbl.find_opt counters name))
      | Some "i", Some name ->
          Hashtbl.replace instants name
            (1 + Option.value ~default:0 (Hashtbl.find_opt instants name))
      | _ -> ())
    events;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    su_spans =
      Hashtbl.fold (fun k r acc -> (k, r) :: acc) spans []
      |> List.sort (fun ((d1, n1), r1) ((d2, n2), r2) ->
             if d1 <> d2 then Int.compare d1 d2
             else if r1.total_us <> r2.total_us then
               Float.compare r2.total_us r1.total_us
             else String.compare n1 n2);
    su_root_us = !root_us;
    su_counters = sorted counters;
    su_instants = sorted instants;
    su_series = sorted series;
  }

let report fmt doc =
  let su = summarize doc in
  Format.fprintf fmt "%-28s %5s %6s %12s %8s %11s@." "span" "depth" "calls"
    "total ms" "share" "minor Mw";
  List.iter
    (fun ((depth, name), r) ->
      let share =
        if su.su_root_us > 0.0 then 100.0 *. r.total_us /. su.su_root_us
        else 0.0
      in
      Format.fprintf fmt "%-28s %5d %6d %12.3f %7.1f%% %11.2f@." name depth
        r.calls (r.total_us /. 1e3) share
        (r.minor_w /. 1e6))
    su.su_spans;
  if su.su_counters <> [] then begin
    Format.fprintf fmt "@.%-28s %12s@." "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%-28s %12.0f@." name v)
      su.su_counters
  end;
  (* The stage cache publishes cache.hits/cache.misses like any other
     counter; the derived rate earns a line because it is the number a
     perf investigation actually wants. *)
  (let v name =
     Option.value ~default:0.0 (List.assoc_opt name su.su_counters)
   in
   let hits = v "cache.hits" and misses = v "cache.misses" in
   let lookups = hits +. misses in
   if lookups > 0.0 then
     Format.fprintf fmt "@.cache hit rate %.1f%% (%.0f of %.0f lookups)@."
       (100.0 *. hits /. lookups)
       hits lookups);
  if su.su_series <> [] then begin
    Format.fprintf fmt "@.%-28s %12s %12s@." "series" "samples" "last";
    List.iter
      (fun (name, r) ->
        Format.fprintf fmt "%-28s %12d %12.3f@." name r.samples r.last)
      su.su_series
  end;
  if su.su_instants <> [] then begin
    Format.fprintf fmt "@.%-28s %12s@." "instant event" "count";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%-28s %12d@." name v)
      su.su_instants
  end

let report_json doc =
  let su = summarize doc in
  Json.Obj
    [
      ("schema", Json.Str "vpga-report/1");
      ("root_ms", Json.Num (su.su_root_us /. 1e3));
      ( "spans",
        Json.Arr
          (List.map
             (fun ((depth, name), r) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("depth", Json.Num (float_of_int depth));
                   ("calls", Json.Num (float_of_int r.calls));
                   ("total_ms", Json.Num (r.total_us /. 1e3));
                   ( "share",
                     Json.Num
                       (if su.su_root_us > 0.0 then
                          100.0 *. r.total_us /. su.su_root_us
                        else 0.0) );
                   ("minor_words", Json.Num r.minor_w);
                   ("major_words", Json.Num r.major_w);
                 ])
             su.su_spans) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) su.su_counters) );
      ( "cache",
        let v name =
          Option.value ~default:0.0 (List.assoc_opt name su.su_counters)
        in
        let hits = v "cache.hits" and misses = v "cache.misses" in
        let lookups = hits +. misses in
        Json.Obj
          [
            ("hits", Json.Num hits);
            ("misses", Json.Num misses);
            ("bytes", Json.Num (v "cache.bytes"));
            ( "hit_rate",
              Json.Num (if lookups > 0.0 then hits /. lookups else 0.0) );
          ] );
      ( "series",
        Json.Obj
          (List.map
             (fun (k, r) ->
               ( k,
                 Json.Obj
                   [
                     ("samples", Json.Num (float_of_int r.samples));
                     ("last", Json.Num r.last);
                   ] ))
             su.su_series) );
      ( "instants",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             su.su_instants) );
    ]

let report_traces fmt traces = report fmt (chrome traces)
