(** Per-task trace sink: span events, instants, and a counter/gauge
    registry, all on the monotonic clock.

    One [t] per flow task — tasks never share one, so recording needs no
    synchronization (the sweep merges finished traces by task id at export
    time).  {!null} is the disabled sink: every operation on it is a
    no-op, so an uninstrumented run pays one branch per call site and
    nothing else.

    {2 Ambient trace}

    Inner loops (the SAT solver, cut enumeration, the annealer,
    PathFinder) publish their counters through the domain-local {e
    ambient} trace instead of threading a [t] through every signature:
    {!with_span}/{!with_ambient} install the task's trace for the dynamic
    extent of the flow run, and {!emit} adds to it — or does nothing when
    no trace is installed.  Each flow task runs wholly on one domain, so
    the ambient trace is never shared across domains. *)

type t

val null : t
(** The disabled sink. *)

val create : ?tid:int -> ?label:string -> unit -> t
(** A live sink.  [tid] (default 0) becomes the Chrome-trace thread id
    when traces are merged at export; [label] the thread name. *)

val enabled : t -> bool
val tid : t -> int
val label : t -> string

(** {2 Spans} *)

type span
(** An open span handle.  On {!null} traces the handle is inert. *)

val begin_span : ?attrs:(string * Span.attr) list -> t -> string -> span

val end_span : ?attrs:(string * Span.attr) list -> span -> unit
(** Records the completed span; [attrs] are appended to the open-time
    attributes.  Closing a span twice is a no-op.

    Every closed span additionally carries allocation accounting —
    [gc.minor_words] / [gc.major_words] (floats) and
    [gc.major_collections] (int) attrs, deltas of [Gc.quick_stat]
    between open and close — and feeds its duration (µs) into the
    [span:<name>] histogram of its sink.  [Gc.quick_stat] is
    domain-local: allocation a span delegates to other domains is
    charged to those domains, not to the span. *)

val with_span : ?attrs:(string * Span.attr) list -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span, closing it even when [f]
    raises — spans recorded this way always balance and nest properly.
    Also installs [t] as the ambient trace for the extent of [f]. *)

val instant : ?ts_ns:int64 -> ?attrs:(string * Span.attr) list -> t -> string -> unit
(** A point event; [ts_ns] (default: now) lets callers replay events
    recorded elsewhere — e.g. timestamped {!Vpga_resil.Log} entries —
    onto the trace timeline. *)

val events : t -> Span.event list
(** In recording order (a span is recorded when it {e closes}, so parents
    follow their children).  Empty for {!null}. *)

val open_spans : t -> int
(** Currently open (begun, not yet ended) spans; 0 after a balanced run. *)

(** {2 Counter / gauge registry} *)

val add : t -> string -> float -> unit
(** Accumulate into the named counter (registered on first use). *)

val set : t -> string -> float -> unit
(** Set the named gauge to its latest value. *)

val counters : t -> (string * float) list
(** Name-sorted.  Empty for {!null}. *)

val gauges : t -> (string * float) list
(** Name-sorted.  Empty for {!null}. *)

(** {2 Time series}

    Timestamped convergence probes (annealer temperature, PathFinder
    overflow per iteration, SAT conflicts per solve, ...).  Buffers are
    bounded: past 4096 samples a series is decimated — every other
    retained sample dropped and the recording stride doubled — so
    retained samples stay spread over the whole run. *)

val sample : t -> string -> float -> unit
(** Append a [(now, v)] sample to the named series (registered on first
    use).  No-op on {!null}. *)

val series : t -> (string * (int64 * float) array * int) list
(** Name-sorted [(name, samples, offered)] triples; [samples] are in
    chronological order and [offered] counts every {!sample} call,
    including ones dropped by decimation.  Empty for {!null}. *)

(** {2 Histograms}

    Distribution probes (per-net wirelength, occupancy solve cost,
    queue waits) recorded into {!Metrics.Histogram} slots; span
    durations feed [span:<name>] histograms automatically. *)

val observe : t -> string -> float -> unit
(** Add a sample to the named histogram (registered on first use).
    Non-finite samples are rejected by the histogram.  No-op on
    {!null}. *)

val histograms : t -> (string * Metrics.Histogram.t) list
(** Name-sorted.  Empty for {!null}. *)

(** Handle-style counter: resolve the registry slot once, bump it from a
    hot loop without further lookups. *)
module Counter : sig
  type trace := t
  type t

  val make : trace -> string -> t
  val add : t -> float -> unit
  val incr : t -> unit
  val value : t -> float
end

(** Latest-value gauge handle. *)
module Gauge : sig
  type trace := t
  type t

  val make : trace -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** {2 Ambient trace} *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as this domain's ambient trace for the extent of the
    thunk (restoring the previous one after, even on exceptions). *)

val ambient : unit -> t
(** The installed trace, or {!null}. *)

val emit : string -> float -> unit
(** [add] on the ambient trace; no-op when none is installed. *)

val emit_set : string -> float -> unit
(** [set] on the ambient trace; no-op when none is installed. *)

val emit_sample : string -> float -> unit
(** [sample] on the ambient trace; no-op when none is installed. *)

val emit_observe : string -> float -> unit
(** [observe] on the ambient trace; no-op when none is installed. *)
