external now_ns : unit -> int64 = "vpga_obs_clock_now_ns"

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3
