/* Monotonic clock for the tracing layer: CLOCK_MONOTONIC nanoseconds as
   an int64.  Wall-clock time (gettimeofday) can step backwards under NTP
   adjustment, which would produce negative span durations; the monotonic
   clock cannot. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value vpga_obs_clock_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
