(** Public facade of the VPGA granularity-exploration library.

    Re-exports the stable surface of every subsystem under one roof and
    provides the three one-call entry points a downstream user needs:
    {!classify_functions} (the Section-2 Boolean analysis),
    {!compare_architectures} (run a design through both PLBs and both
    flows), and {!run_flow} (one architecture).

    See DESIGN.md for the system inventory and EXPERIMENTS.md for the
    paper-reproduction results. *)

(** {1 Subsystems} *)

module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module S3 = Vpga_logic.S3
module Npn = Vpga_logic.Npn
module Kind = Vpga_netlist.Kind
module Netlist = Vpga_netlist.Netlist
module Levelize = Vpga_netlist.Levelize
module Simulate = Vpga_netlist.Simulate
module Equiv = Vpga_netlist.Equiv
module Stats = Vpga_netlist.Stats
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize
module Library = Vpga_cells.Library
module Maxflow = Vpga_maxflow.Maxflow
module Aig = Vpga_aig.Aig
module Cut = Vpga_aig.Cut
module Flowmap = Vpga_mapper.Flowmap
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Full_adder = Vpga_plb.Full_adder
module Placement = Vpga_place.Placement
module Global_place = Vpga_place.Global
module Anneal = Vpga_place.Anneal
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Refine = Vpga_pack.Refine
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Sta = Vpga_timing.Sta
module Power = Vpga_timing.Power
module Wordgen = Vpga_designs.Wordgen
module Alu = Vpga_designs.Alu
module Fpu = Vpga_designs.Fpu
module Netswitch = Vpga_designs.Netswitch
module Firewire = Vpga_designs.Firewire
module Pool = Vpga_par.Pool

module Obs = Vpga_obs
(** Observability: monotonic spans, counter registry, Chrome-trace
    export ({!Vpga_obs.Trace}, {!Vpga_obs.Export}). *)

module Trace = Vpga_obs.Trace
module Flow = Vpga_flow.Flow
module Minchan = Vpga_flow.Minchan
module Experiments = Vpga_flow.Experiments
module Report = Vpga_flow.Report
module Export = Vpga_flow.Export
module Diag = Vpga_verify.Diag
module Lint = Vpga_verify.Lint

module Dataflow = Vpga_dataflow.Dataflow
(** Generic forward/backward fixed-point dataflow engine plus the shared
    graph traversals (Tarjan SCCs, cone reachability). *)

module Analysis = Vpga_analysis.Analysis
(** Static-analysis pass manager: constant propagation, X-propagation,
    structural redundancy, fanout/depth shape, CEC-gated simplification. *)

module Ternary = Vpga_analysis.Ternary
module Constprop = Vpga_analysis.Constprop
module Xprop = Vpga_analysis.Xprop
module Redund = Vpga_analysis.Redund
module Fanout_analysis = Vpga_analysis.Fanout
module Simplify = Vpga_analysis.Simplify

module Ownership = Vpga_analysis.Ownership
(** Static region-ownership sanitizer for region-parallel refinement. *)

module Sat = Vpga_verify.Sat
module Cnf = Vpga_verify.Cnf
module Sweep = Vpga_verify.Sweep
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Fail = Vpga_resil.Fail
module Policy = Vpga_resil.Policy
module Recovery = Vpga_resil.Log
module Retry = Vpga_resil.Retry
module Inject = Vpga_resil.Inject
module Defect = Vpga_resil.Defect

module Cache = Vpga_cache.Cache
(** Content-addressed stage cache: memoizes flow stage boundaries on
    canonical input digests ({!Stagekey}); share one across sweeps to
    skip repeated work with byte-identical outcomes. *)

module Cachekey = Vpga_cache.Key
module Cacheenc = Vpga_cache.Enc
module Stagekey = Vpga_flow.Stagekey

(** {1 One-call entry points} *)

val classify_functions : unit -> S3.census
(** Exhaustive Section-2.1 classification of the 256 3-input functions. *)

val run_flow :
  ?seed:int -> ?period:float -> ?verify:Flow.verify -> ?policy:Policy.t ->
  ?trace:Trace.t -> ?jobs:int -> ?analyze:bool -> ?cache:Cache.t ->
  Arch.t -> Netlist.t -> Flow.pair
(** Both flows (ASIC-style a, packed-array b) on one architecture.
    [verify] selects the verification level (default {!Flow.Fast});
    [policy] the retry-with-escalation policy (default
    {!Policy.default}); [trace] (default disabled) records stage spans
    and inner-loop counters — see {!Obs}; [jobs] (default 1) caps the
    worker domains for region-parallel refinement — results are
    identical for any value; [analyze] (default false) runs the static
    dataflow analyses and arms the region-ownership sanitizer — see
    {!Analysis} and {!Ownership}. *)

val compare_architectures :
  ?seed:int -> ?period:float -> ?verify:Flow.verify -> Netlist.t ->
  Flow.pair * Flow.pair
(** [(lut, granular)] flow pairs for a design. *)
