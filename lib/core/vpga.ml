module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module S3 = Vpga_logic.S3
module Npn = Vpga_logic.Npn
module Kind = Vpga_netlist.Kind
module Netlist = Vpga_netlist.Netlist
module Levelize = Vpga_netlist.Levelize
module Simulate = Vpga_netlist.Simulate
module Equiv = Vpga_netlist.Equiv
module Stats = Vpga_netlist.Stats
module Cell = Vpga_cells.Cell
module Characterize = Vpga_cells.Characterize
module Library = Vpga_cells.Library
module Maxflow = Vpga_maxflow.Maxflow
module Aig = Vpga_aig.Aig
module Cut = Vpga_aig.Cut
module Flowmap = Vpga_mapper.Flowmap
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Full_adder = Vpga_plb.Full_adder
module Placement = Vpga_place.Placement
module Global_place = Vpga_place.Global
module Anneal = Vpga_place.Anneal
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Refine = Vpga_pack.Refine
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Sta = Vpga_timing.Sta
module Power = Vpga_timing.Power
module Wordgen = Vpga_designs.Wordgen
module Alu = Vpga_designs.Alu
module Fpu = Vpga_designs.Fpu
module Netswitch = Vpga_designs.Netswitch
module Firewire = Vpga_designs.Firewire
module Pool = Vpga_par.Pool
module Obs = Vpga_obs
module Trace = Vpga_obs.Trace
module Flow = Vpga_flow.Flow
module Minchan = Vpga_flow.Minchan
module Experiments = Vpga_flow.Experiments
module Report = Vpga_flow.Report
module Export = Vpga_flow.Export
module Diag = Vpga_verify.Diag
module Lint = Vpga_verify.Lint
module Dataflow = Vpga_dataflow.Dataflow
module Analysis = Vpga_analysis.Analysis
module Ternary = Vpga_analysis.Ternary
module Constprop = Vpga_analysis.Constprop
module Xprop = Vpga_analysis.Xprop
module Redund = Vpga_analysis.Redund
module Fanout_analysis = Vpga_analysis.Fanout
module Simplify = Vpga_analysis.Simplify
module Ownership = Vpga_analysis.Ownership
module Sat = Vpga_verify.Sat
module Cnf = Vpga_verify.Cnf
module Sweep = Vpga_verify.Sweep
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Fail = Vpga_resil.Fail
module Policy = Vpga_resil.Policy
module Recovery = Vpga_resil.Log
module Retry = Vpga_resil.Retry
module Inject = Vpga_resil.Inject
module Defect = Vpga_resil.Defect

module Cache = Vpga_cache.Cache

module Cachekey = Vpga_cache.Key
module Cacheenc = Vpga_cache.Enc
module Stagekey = Vpga_flow.Stagekey

let classify_functions () = S3.census ()

let run_flow ?seed ?period ?verify ?policy ?trace ?jobs ?analyze ?cache arch
    nl =
  Flow.run ?seed ?period ?verify ?policy ?trace ?jobs ?analyze ?cache arch nl

let compare_architectures ?seed ?period ?verify nl =
  ( Flow.run ?seed ?period ?verify Arch.lut_plb nl,
    Flow.run ?seed ?period ?verify Arch.granular_plb nl )
