(** Post-legalization refinement: the paper's iterative loop between the
    packing step and physical synthesis ("the packing algorithm [runs] in an
    iterative loop with the physical synthesis tool Dolphin ... It ensures
    that the performance degradation due to legalizing the ASIC-style
    placement is minimal").

    Simulated annealing over tile assignments: single-item moves to nearby
    tiles and item swaps, accepted only when the destination tiles remain
    feasible ({!Vpga_plb.Packer.fits}), minimizing criticality-weighted
    half-perimeter wirelength.  Mutates the quadrisection result and the
    snapped placement coordinates in place.

    With [regions > 1] the die is cut into a [regions x regions] grid
    ({!Quadrisect.region_bounds}); each region anneals its own items
    (ownership by current tile, so walks are conflict-free) on a private
    bookkeeping slice with an RNG stream derived from [(seed, region)],
    optionally fanned out over a {!Vpga_par.Pool}, then a sequential
    cross-boundary pass with the original seed restores inter-region
    moves.  Results are identical at every [jobs] setting. *)

type stats = {
  moves : int;
  accepted : int;
  initial_cost : float;
  final_cost : float;
  region_moves : int;  (** moves spent inside region walks *)
  boundary_moves : int;  (** moves spent in the cross-boundary pass *)
}

exception Infeasible of string
(** The initial packing violates per-tile feasibility — a stage
    precondition failure, adopted as a typed
    [Vpga_resil.Fail.Stage_failure] by the flow driver. *)

val run :
  ?iterations:int ->
  ?radius:int ->
  ?criticality:float array ->
  ?jobs:int ->
  ?regions:int ->
  ?sanitize:bool ->
  ?dead_tile:(int -> bool) ->
  seed:int ->
  Quadrisect.t ->
  Vpga_place.Placement.t ->
  stats
(** [run ~seed q pl] — [pl] must already be snapped to [q]'s tile grid;
    [radius] (default 4) bounds how far (in tiles) a single move may go;
    [iterations] defaults to [60 * packed items].  [regions] (default 1)
    selects the region grid; with the default the run is the sequential
    reference walk, bit-identical to the historical implementation.
    [jobs] (default 1) bounds the worker domains used for region walks;
    it affects wall time only, never results.

    [sanitize] (default false) arms the dynamic region-ownership guard:
    every occupancy tile is stamped with its owning region and every
    walk's cache with the region it writes for, so a cross-region
    mutation raises {!Vpga_plb.Occupancy.Race} at the faulting write
    instead of corrupting a neighbouring walk's state.  Stamping changes
    no verdicts — results stay bit-identical to an unsanitized run.

    [dead_tile] (default [fun _ -> false]) marks defective tiles at this
    array's discretization: they answer every feasibility query false, so
    no move or swap ever lands on one.  An initial packing already
    occupying a dead tile raises {!Infeasible}.

    Counters emitted on the ambient {!Vpga_obs.Trace}:
    [pack.fits_calls], [pack.fits_cache_hits], [refine.region_moves],
    [refine.boundary_moves] (single-region runs count every move as a
    region move), and [analysis.sanitizer_checks] when sanitizing.
    @raise Infeasible if the initial packing is infeasible.
    @raise Vpga_plb.Occupancy.Race when [sanitize] catches a
    cross-region write. *)
