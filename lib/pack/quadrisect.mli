(** Legalization of an ASIC-style placement onto the regular PLB array by
    recursive quadrisection (paper Section 3.1).

    The die is a [cols x rows] array of PLB tiles.  Starting from the
    detailed placement, items (logic configurations and flops) are assigned
    to quadrants recursively; when a quadrant's resource demand exceeds its
    tiles' aggregate capacity, the least critical items are relocated to the
    sibling quadrant with the most spare capacity ("the cost function ...
    takes into consideration the criticality of the cells being moved and
    also tries to minimize perturbation").  A final per-tile pass enforces
    exact co-location feasibility ({!Vpga_plb.Packer.fits}), spilling to the
    nearest tile with room. *)

type t = {
  arch : Vpga_plb.Arch.t;
  cols : int;
  rows : int;
  tile_of_node : int array;  (** netlist node id -> tile index, or -1 *)
  displacement : float;  (** total movement from the ASIC placement, um *)
  mean_displacement_tiles : float;
      (** mean per-item movement in tile-diagonal units — the
          architecture-comparable perturbation measure *)
  tiles_used : int;  (** tiles holding at least one item *)
}

val item_of_node : Vpga_netlist.Netlist.node -> Vpga_plb.Packer.item option
(** The packing item of a netlist node ([None] for I/O and constants).
    Accepts configuration supernodes, component cells and flops. *)

type fit_error = {
  design : string;
  dims_tried : int list;  (** array dims attempted, in growth order *)
  unplaced : int;  (** items without a feasible tile on the last attempt *)
}

val fit_error_to_string : fit_error -> string

val legalize_result :
  ?utilization:float ->
  ?criticality:float array ->
  ?dead_tile:(cols:int -> rows:int -> int -> bool) ->
  Vpga_plb.Arch.t ->
  Vpga_place.Placement.t ->
  (t, fit_error) result
(** Sizes a PLB array (target resource [utilization], default 0.9, growing
    it if legalization needs room), then quadrisects.  [Error] reports the
    design, the dims tried, and the residual unplaced-item count when the
    design cannot fit even after growth retries — the retry policy's signal
    to relax [utilization].

    [dead_tile ~cols ~rows t] marks tile [t] defective at the given array
    discretization (the defect map's view; see {!Vpga_resil.Defect}):
    dead tiles contribute nothing to quadrant capacity, are never placed
    or spilled into, and grow the starting dims when they eat into the
    lower bound.  Omitted, behaviour is bit-identical to the healthy
    fabric. *)

val legalize :
  ?utilization:float ->
  ?criticality:float array ->
  ?dead_tile:(cols:int -> rows:int -> int -> bool) ->
  Vpga_plb.Arch.t ->
  Vpga_place.Placement.t ->
  t
(** {!legalize_result} as a hard gate.
    @raise Failure with {!fit_error_to_string} detail on an unfittable
    design. *)

val array_area : t -> float
(** [cols * rows * tile_area]: the flow-b die area. *)

val tile_side : t -> float
(** Side length of one (square) tile, um. *)

val tile_center : t -> int -> float * float
val snap : t -> Vpga_place.Placement.t -> unit
(** Move every packed node's coordinates to its tile center (the geometry
    the router sees). *)

(** {2 Region decomposition}

    A [regions x regions] grid of tile rectangles with balanced integer
    splits, used by {!Refine} to partition the die for region-parallel
    annealing.  The decomposition depends only on the array dims — never
    on worker count — so region ownership is reproducible at any
    parallelism. *)

val region_bounds : regions:int -> t -> int -> int * int * int * int
(** [region_bounds ~regions t r] is the tile rectangle
    [(c0, r0, c1, r1)] (half-open: columns [c0 <= c < c1], rows
    [r0 <= r < r1]) owned by region [r] of the grid, for
    [0 <= r < regions * regions].  Rectangles tile the array exactly;
    some are empty when [regions] exceeds the dims. *)

val region_of_tile : regions:int -> t -> int -> int
(** The region whose rectangle contains the given tile. *)
