module Netlist = Vpga_netlist.Netlist
module Packer = Vpga_plb.Packer
module Occupancy = Vpga_plb.Occupancy
module Placement = Vpga_place.Placement
module Bbox = Placement.Bbox
module Pool = Vpga_par.Pool

type stats = {
  moves : int;
  accepted : int;
  initial_cost : float;
  final_cost : float;
  region_moves : int;
  boundary_moves : int;
}

exception Infeasible of string

(* Nets at or below this pin count are cheaper to rescan than to track
   with a cached bounding box (the annealer's cutoff). *)
let small_cutoff = 4

(* Immutable per-run data shared by every walk (and safe to read from
   worker domains: nothing here is mutated once built). *)
type shared = {
  arch : Vpga_plb.Arch.t;
  cols : int;
  rows : int;
  side : float; (* tile side, um *)
  radius : int;
  item_of : Packer.item option array;
  nets : int array array;
  weight : float array;
  incident : int array array; (* per node: incident net ids, ascending *)
  small : bool array;
  n_nets : int;
  scratch : int; (* touched-net scratch capacity: 2 * max packed degree *)
  dead_tile : int -> bool; (* defective tiles: no move may land on one *)
}

(* One annealing walk: a tile rectangle [c0,c1) x [r0,r1), the ids it may
   move, and a full bookkeeping slice — membership, incremental occupancy,
   per-net cost and bounding box — over its own coordinate/tile views.
   Views either alias the caller's arrays (sequential walks mutate in
   place) or are private copies (region walks, merged afterwards). *)
type ctx = {
  sh : shared;
  c0 : int;
  r0 : int;
  c1 : int;
  r1 : int;
  ids : int array;
  tile_of : int array;
  view : Placement.t;
  mem : int array array;
  mem_n : int array;
  cache : Occupancy.cache;
  occ : Occupancy.t array;
  net_cost : float array;
  bbs : Bbox.b array;
  (* per-move scratch: touched nets (ascending), moved-pin counts, which
     mover touched them (bit 1 = first, bit 2 = second), tentative costs *)
  touched : int array;
  t_pins : int array;
  t_which : int array;
  tentative : float array;
  mutable total : float;
}

(* Tile membership: per-tile dynamic arrays storing ids in reverse list
   order (array slot [count - 1 - k] is what [List.nth _ k] of the
   original list representation returned), so the swap-candidate draw
   consumes the RNG identically.  Prepend is an append; removal shifts
   the (at most [output_pins]-long) tail, preserving order. *)
let push ctx t id =
  let a = ctx.mem.(t) in
  let c = ctx.mem_n.(t) in
  if c = Array.length a then begin
    let a' = Array.make (max 4 (2 * c)) (-1) in
    Array.blit a 0 a' 0 c;
    ctx.mem.(t) <- a'
  end;
  ctx.mem.(t).(c) <- id;
  ctx.mem_n.(t) <- c + 1

let drop ctx t id =
  let a = ctx.mem.(t) and c = ctx.mem_n.(t) in
  let k = ref 0 in
  while a.(!k) <> id do
    incr k
  done;
  Array.blit a (!k + 1) a !k (c - !k - 1);
  ctx.mem_n.(t) <- c - 1

let set_tile ctx id tile =
  let old = ctx.tile_of.(id) in
  drop ctx old id;
  push ctx tile id;
  ctx.tile_of.(id) <- tile;
  let sh = ctx.sh in
  ctx.view.Placement.x.(id) <-
    (float_of_int (tile mod sh.cols) +. 0.5) *. sh.side;
  ctx.view.Placement.y.(id) <-
    (float_of_int (tile / sh.cols) +. 0.5) *. sh.side

let make_ctx sh ~bounds:(bc0, br0, bc1, br1) ~ids ~tile_of ~view =
  let n_tiles = sh.cols * sh.rows in
  let cache = Occupancy.create_cache sh.arch in
  let ctx =
    {
      sh;
      c0 = bc0;
      r0 = br0;
      c1 = bc1;
      r1 = br1;
      ids;
      tile_of;
      view;
      mem = Array.make n_tiles [||];
      mem_n = Array.make n_tiles 0;
      cache;
      occ = Array.init n_tiles (fun _ -> Occupancy.create cache);
      net_cost = Array.make (max 1 sh.n_nets) 0.0;
      bbs = Array.make (max 1 sh.n_nets) Bbox.dummy;
      touched = Array.make sh.scratch 0;
      t_pins = Array.make sh.scratch 0;
      t_which = Array.make sh.scratch 0;
      tentative = Array.make sh.scratch 0.0;
      total = 0.0;
    }
  in
  (* Dead tiles answer every feasibility query false, so neither plain
     moves nor swaps ever land on them; an initial packing that already
     occupies one fails the population below as infeasible. *)
  for t = 0 to n_tiles - 1 do
    if sh.dead_tile t then Occupancy.set_dead ctx.occ.(t) true
  done;
  Array.iter
    (fun id ->
      let t = tile_of.(id) in
      push ctx t id;
      match sh.item_of.(id) with
      | Some it ->
          if not (Occupancy.add ctx.occ.(t) it) then
            raise (Infeasible "Refine.run: initial packing is infeasible")
      | None -> assert false)
    ids;
  for e = 0 to sh.n_nets - 1 do
    ctx.net_cost.(e) <-
      (if sh.small.(e) then
         sh.weight.(e) *. Placement.net_hpwl view sh.nets.(e)
       else begin
         let b = Bbox.of_net view sh.nets.(e) in
         ctx.bbs.(e) <- b;
         sh.weight.(e) *. Bbox.hpwl b
       end)
  done;
  ctx.total <- Array.fold_left ( +. ) 0.0 ctx.net_cost;
  ctx

(* Touched nets of a single mover: its incident array is already ascending
   in net id (nets are numbered in construction order), so the scratch is
   filled by one sweep; a net listed twice (a node driving itself through
   two pins of the same net) coalesces into a pin count of 2. *)
let collect1 ctx ida =
  let inc = ctx.sh.incident.(ida) in
  let k = ref 0 in
  Array.iter
    (fun e ->
      if !k > 0 && ctx.touched.(!k - 1) = e then
        ctx.t_pins.(!k - 1) <- ctx.t_pins.(!k - 1) + 1
      else begin
        ctx.touched.(!k) <- e;
        ctx.t_pins.(!k) <- 1;
        ctx.t_which.(!k) <- 1;
        incr k
      end)
    inc;
  !k

(* Touched nets of a swap: a two-way merge of the movers' ascending
   incident arrays, so the result is ascending with shared nets
   coalesced — the same order (and the same dedup) as the original
   [List.sort_uniq] of their union. *)
let collect2 ctx ida idb =
  let a = ctx.sh.incident.(ida) and b = ctx.sh.incident.(idb) in
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push_net e which =
    if !k > 0 && ctx.touched.(!k - 1) = e then begin
      ctx.t_pins.(!k - 1) <- ctx.t_pins.(!k - 1) + 1;
      ctx.t_which.(!k - 1) <- ctx.t_which.(!k - 1) lor which
    end
    else begin
      ctx.touched.(!k) <- e;
      ctx.t_pins.(!k) <- 1;
      ctx.t_which.(!k) <- which;
      incr k
    end
  in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && a.(!i) <= b.(!j)) then begin
      push_net a.(!i) 1;
      incr i
    end
    else begin
      push_net b.(!j) 2;
      incr j
    end
  done;
  !k

(* Delta of the current move over the touched nets, folded in ascending
   net order exactly like the original full-recomputation loop (the float
   sums must stay bit-identical).  Coordinates are already updated; the
   cached pre-move bounding box plus the mover's old/new tile centers give
   the post-move HPWL without a rescan unless the bound collapses
   ([Bbox.Rescan]), the net is small, or more than one pin moved. *)
let eval_delta ctx nt ~oax ~oay ~nax ~nay ~obx ~oby ~nbx ~nby =
  let sh = ctx.sh in
  let d = ref 0.0 in
  for i = 0 to nt - 1 do
    let e = ctx.touched.(i) in
    let w =
      if sh.small.(e) || ctx.t_pins.(i) > 1 then
        Placement.net_hpwl ctx.view sh.nets.(e)
      else begin
        let b = ctx.bbs.(e) in
        if ctx.t_which.(i) land 1 <> 0 then
          match Bbox.shift_hpwl b ~ox:oax ~oy:oay ~nx:nax ~ny:nay with
          | v -> v
          | exception Bbox.Rescan -> Placement.net_hpwl ctx.view sh.nets.(e)
        else
          match Bbox.shift_hpwl b ~ox:obx ~oy:oby ~nx:nbx ~ny:nby with
          | v -> v
          | exception Bbox.Rescan -> Placement.net_hpwl ctx.view sh.nets.(e)
      end
    in
    let c = sh.weight.(e) *. w in
    ctx.tentative.(i) <- c;
    d := !d +. (c -. ctx.net_cost.(e))
  done;
  !d

(* Commit the move: bounding boxes shift (or rebuild on [Rescan] / multi-
   pin nets) and the stashed tentative costs become current. *)
let commit ctx nt ~oax ~oay ~nax ~nay ~obx ~oby ~nbx ~nby =
  let sh = ctx.sh in
  for i = 0 to nt - 1 do
    let e = ctx.touched.(i) in
    if not sh.small.(e) then begin
      if ctx.t_pins.(i) > 1 then
        ctx.bbs.(e) <- Bbox.of_net ctx.view sh.nets.(e)
      else begin
        let b = ctx.bbs.(e) in
        if ctx.t_which.(i) land 1 <> 0 then (
          match Bbox.shift b ~ox:oax ~oy:oay ~nx:nax ~ny:nay with
          | () -> ()
          | exception Bbox.Rescan ->
              ctx.bbs.(e) <- Bbox.of_net ctx.view sh.nets.(e))
        else
          match Bbox.shift b ~ox:obx ~oy:oby ~nx:nbx ~ny:nby with
          | () -> ()
          | exception Bbox.Rescan ->
              ctx.bbs.(e) <- Bbox.of_net ctx.view sh.nets.(e)
      end
    end;
    ctx.net_cost.(e) <- ctx.tentative.(i)
  done

(* One annealing walk over [ctx]'s rectangle.  With the full-die rectangle
   and the full packed id set this consumes the RNG and produces exactly
   the same move/accept sequence as the original implementation. *)
let walk ctx ~rng ~iterations =
  let sh = ctx.sh in
  let n_ids = Array.length ctx.ids in
  let accepted = ref 0 in
  if n_ids > 0 && iterations > 0 then begin
    let t_start = max 1.0 (ctx.total /. float_of_int (max 1 sh.n_nets)) in
    let t_end = t_start /. 1000.0 in
    let alpha =
      exp (log (t_end /. t_start) /. float_of_int (max 1 iterations))
    in
    let temp = ref t_start in
    for _ = 1 to iterations do
      let id = ctx.ids.(Random.State.int rng n_ids) in
      let cur = ctx.tile_of.(id) in
      let cc = cur mod sh.cols and cr = cur / sh.cols in
      let dc = Random.State.int rng ((2 * sh.radius) + 1) - sh.radius in
      let dr = Random.State.int rng ((2 * sh.radius) + 1) - sh.radius in
      let nc = min (ctx.c1 - 1) (max ctx.c0 (cc + dc)) in
      let nr = min (ctx.r1 - 1) (max ctx.r0 (cr + dr)) in
      let dest = (nr * sh.cols) + nc in
      if dest <> cur then begin
        let item =
          match sh.item_of.(id) with Some i -> i | None -> assert false
        in
        let cx = (float_of_int cc +. 0.5) *. sh.side in
        let cy = (float_of_int cr +. 0.5) *. sh.side in
        let dx = (float_of_int nc +. 0.5) *. sh.side in
        let dy = (float_of_int nr +. 0.5) *. sh.side in
        (* Try a plain move; if the destination is full, try swapping with
           a random resident.  Occupancy verdicts are exact functions of
           the resident multiset, so commits can be deferred to accepted
           moves — the rejected-move path never touches occupancy. *)
        if Occupancy.query ctx.occ.(dest) item then begin
          set_tile ctx id dest;
          let nt = collect1 ctx id in
          let d =
            eval_delta ctx nt ~oax:cx ~oay:cy ~nax:dx ~nay:dy ~obx:0.0
              ~oby:0.0 ~nbx:0.0 ~nby:0.0
          in
          if
            d <= 0.0
            || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
          then begin
            commit ctx nt ~oax:cx ~oay:cy ~nax:dx ~nay:dy ~obx:0.0 ~oby:0.0
              ~nbx:0.0 ~nby:0.0;
            ctx.total <- ctx.total +. d;
            incr accepted;
            Occupancy.remove ctx.occ.(cur) item;
            if not (Occupancy.add ctx.occ.(dest) item) then assert false
          end
          else set_tile ctx id cur
        end
        else if ctx.mem_n.(dest) > 0 then begin
          let other =
            ctx.mem.(dest).(ctx.mem_n.(dest)
                            - 1
                            - Random.State.int rng ctx.mem_n.(dest))
          in
          let other_item =
            match sh.item_of.(other) with
            | Some i -> i
            | None -> assert false
          in
          (* Both feasibility questions ("does [item] fit in [dest]
             without [other]?" and vice versa) are answered read-only;
             occupancy mutates only when the swap is accepted. *)
          let fwd =
            Occupancy.query_replacing ctx.occ.(dest) ~without:other_item item
          in
          let bwd =
            fwd
            && Occupancy.query_replacing ctx.occ.(cur) ~without:item
                 other_item
          in
          if fwd && bwd then begin
            set_tile ctx id dest;
            set_tile ctx other cur;
            let nt = collect2 ctx id other in
            let d =
              eval_delta ctx nt ~oax:cx ~oay:cy ~nax:dx ~nay:dy ~obx:dx
                ~oby:dy ~nbx:cx ~nby:cy
            in
            if
              d <= 0.0
              || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
            then begin
              commit ctx nt ~oax:cx ~oay:cy ~nax:dx ~nay:dy ~obx:dx ~oby:dy
                ~nbx:cx ~nby:cy;
              ctx.total <- ctx.total +. d;
              incr accepted;
              Occupancy.remove ctx.occ.(dest) other_item;
              if not (Occupancy.add ctx.occ.(dest) item) then assert false;
              Occupancy.remove ctx.occ.(cur) item;
              if not (Occupancy.add ctx.occ.(cur) other_item) then
                assert false
            end
            else begin
              set_tile ctx id cur;
              set_tile ctx other dest
            end
          end
        end
      end;
      temp := !temp *. alpha
    done
  end;
  !accepted

(* Ownership stamping for the dynamic race sanitizer: every tile of the
   walk's occupancy array gets its owning region, the walk's cache gets
   the region it writes for.  Stamps go on *after* [make_ctx] populated
   the tiles, so only walk mutations are guarded.  A full-die walk (the
   sequential path and the boundary pass) legitimately writes anywhere,
   so it is stamped as one region. *)
let arm_full ctx =
  Occupancy.set_writer ctx.cache 0;
  Array.iter (fun o -> Occupancy.set_owner o 0) ctx.occ

let arm_region ctx ~grid q r =
  Occupancy.set_writer ctx.cache r;
  Array.iteri
    (fun t o -> Occupancy.set_owner o (Quadrisect.region_of_tile ~regions:grid q t))
    ctx.occ

let run ?iterations ?(radius = 4) ?criticality ?(jobs = 1) ?(regions = 1)
    ?(sanitize = false) ?(dead_tile = fun _ -> false) ~seed q pl =
  if jobs < 1 then invalid_arg "Refine.run: jobs must be positive";
  if regions < 1 then invalid_arg "Refine.run: regions must be positive";
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let n = Netlist.size nl in
  let item_of = Array.make n None in
  Array.iter
    (fun node -> item_of.(node.Netlist.id) <- Quadrisect.item_of_node node)
    (Netlist.nodes nl);
  let packed =
    Array.of_list
      (List.filter
         (fun id -> q.Quadrisect.tile_of_node.(id) >= 0 && item_of.(id) <> None)
         (List.init n Fun.id))
  in
  let n_packed = Array.length packed in
  if n_packed = 0 then
    {
      moves = 0;
      accepted = 0;
      initial_cost = 0.0;
      final_cost = 0.0;
      region_moves = 0;
      boundary_moves = 0;
    }
  else begin
    (* Net bookkeeping (criticality-weighted HPWL), as in the annealer. *)
    let nets = Placement.nets_with_io pl in
    let n_nets = Array.length nets in
    let crit id = match criticality with None -> 0.0 | Some c -> c.(id) in
    let weight =
      Array.map
        (fun net ->
          1.0 +. (3.0 *. Array.fold_left (fun a id -> max a (crit id)) 0.0 net))
        nets
    in
    let deg = Array.make n 0 in
    Array.iter
      (fun net -> Array.iter (fun id -> deg.(id) <- deg.(id) + 1) net)
      nets;
    let incident = Array.init n (fun id -> Array.make deg.(id) 0) in
    let fill = Array.make n 0 in
    Array.iteri
      (fun e net ->
        Array.iter
          (fun id ->
            incident.(id).(fill.(id)) <- e;
            fill.(id) <- fill.(id) + 1)
          net)
      nets;
    let small =
      Array.map (fun net -> Array.length net <= small_cutoff) nets
    in
    let scratch =
      2 * Array.fold_left (fun a id -> max a deg.(id)) 1 packed
    in
    let sh =
      {
        arch = q.Quadrisect.arch;
        cols = q.Quadrisect.cols;
        rows = q.Quadrisect.rows;
        side = Quadrisect.tile_side q;
        radius;
        item_of;
        nets;
        weight;
        incident;
        small;
        n_nets;
        scratch;
        dead_tile;
      }
    in
    let iterations =
      match iterations with Some i -> i | None -> 60 * n_packed
    in
    (* The region grid is a function of the array dims only (clamped so a
       region is at least one tile wide), never of [jobs]. *)
    let g = max 1 (min regions (min sh.cols sh.rows)) in
    let emit_occupancy fits hits =
      Vpga_obs.Trace.emit "pack.fits_calls" (float_of_int fits);
      Vpga_obs.Trace.emit "pack.fits_cache_hits" (float_of_int hits)
    in
    let emit_moves region boundary =
      Vpga_obs.Trace.emit "refine.region_moves" (float_of_int region);
      Vpga_obs.Trace.emit "refine.boundary_moves" (float_of_int boundary)
    in
    let emit_guards checks =
      if sanitize then
        Vpga_obs.Trace.emit "analysis.sanitizer_checks" (float_of_int checks)
    in
    if g = 1 then begin
      (* Single region: the sequential reference walk, bit-identical to
         the original implementation. *)
      let ctx =
        make_ctx sh
          ~bounds:(0, 0, sh.cols, sh.rows)
          ~ids:packed ~tile_of:q.Quadrisect.tile_of_node ~view:pl
      in
      if sanitize then arm_full ctx;
      let initial_cost = ctx.total in
      let rng = Random.State.make [| seed |] in
      let accepted = walk ctx ~rng ~iterations in
      emit_occupancy (Occupancy.fits_calls ctx.cache)
        (Occupancy.cache_hits ctx.cache);
      emit_moves iterations 0;
      emit_guards (Occupancy.guard_checks ctx.cache);
      Vpga_obs.Trace.emit_sample "refine.region_accepted"
        (float_of_int accepted);
      {
        moves = iterations;
        accepted;
        initial_cost;
        final_cost = ctx.total;
        region_moves = iterations;
        boundary_moves = 0;
      }
    end
    else begin
      let initial_cost =
        let tot = ref 0.0 in
        Array.iteri
          (fun e net -> tot := !tot +. (weight.(e) *. Placement.net_hpwl pl net))
          nets;
        !tot
      in
      let n_regions = g * g in
      (* Region ownership: a packed id belongs to the region whose tile
         rectangle holds its current tile, so every region walk is
         conflict-free by construction. *)
      let owned = Array.make n_regions [] in
      Array.iter
        (fun id ->
          let r =
            Quadrisect.region_of_tile ~regions:g q
              q.Quadrisect.tile_of_node.(id)
          in
          owned.(r) <- id :: owned.(r))
        packed;
      let region_ids = Array.map (fun l -> Array.of_list (List.rev l)) owned in
      (* Budget: about two thirds of the iterations run inside the regions
         (split proportionally to their populations), the rest go to the
         sequential cross-boundary pass that restores inter-region
         mobility. *)
      let region_budget = iterations - (iterations / 3) in
      let share =
        Array.map
          (fun ids -> region_budget * Array.length ids / n_packed)
          region_ids
      in
      let region_total = Array.fold_left ( + ) 0 share in
      let boundary_iters = iterations - region_total in
      (* Region walks read only frozen snapshots (private tile/coordinate
         copies taken before any walk runs) and their own RNG stream
         derived from (seed, region), so results are independent of
         worker count and scheduling. *)
      let thunk r () =
        let ids = region_ids.(r) in
        if Array.length ids = 0 then None
        else begin
          let tile_of = Array.copy q.Quadrisect.tile_of_node in
          let view =
            {
              pl with
              Placement.x = Array.copy pl.Placement.x;
              y = Array.copy pl.Placement.y;
            }
          in
          let ctx =
            make_ctx sh
              ~bounds:(Quadrisect.region_bounds ~regions:g q r)
              ~ids ~tile_of ~view
          in
          if sanitize then arm_region ctx ~grid:g q r;
          let rng = Random.State.make [| seed; r |] in
          let accepted = walk ctx ~rng ~iterations:share.(r) in
          Some (ctx, accepted)
        end
      in
      let thunks = List.init n_regions thunk in
      let results =
        if jobs > 1 then
          Pool.with_pool ~jobs:(min jobs n_regions) (fun p ->
              let futs = List.map (Pool.submit p) thunks in
              List.map Pool.await futs)
        else List.map (fun f -> f ()) thunks
      in
      (* Merge region results in region order (deterministic; regions own
         disjoint id sets, so order only matters for reproducibility, not
         for the outcome). *)
      let accepted = ref 0 in
      let fits = ref 0 and hits = ref 0 and guards = ref 0 in
      (* Per-region accepted-moves series, sampled on the calling domain
         during the deterministic region-order merge — worker domains
         never see the ambient trace, so this is the one place the
         samples are both ordered and visible. *)
      List.iter
        (function
          | None -> ()
          | Some (ctx, acc) ->
              Vpga_obs.Trace.emit_sample "refine.region_accepted"
                (float_of_int acc);
              accepted := !accepted + acc;
              fits := !fits + Occupancy.fits_calls ctx.cache;
              hits := !hits + Occupancy.cache_hits ctx.cache;
              guards := !guards + Occupancy.guard_checks ctx.cache;
              Array.iter
                (fun id ->
                  q.Quadrisect.tile_of_node.(id) <- ctx.tile_of.(id);
                  pl.Placement.x.(id) <- ctx.view.Placement.x.(id);
                  pl.Placement.y.(id) <- ctx.view.Placement.y.(id))
                ctx.ids)
        results;
      (* Sequential cross-boundary pass with the original seed: swaps may
         now cross region borders, so the decomposition costs no
         reachability. *)
      let bctx =
        make_ctx sh
          ~bounds:(0, 0, sh.cols, sh.rows)
          ~ids:packed ~tile_of:q.Quadrisect.tile_of_node ~view:pl
      in
      if sanitize then arm_full bctx;
      let rng = Random.State.make [| seed |] in
      let bacc = walk bctx ~rng ~iterations:boundary_iters in
      emit_occupancy
        (!fits + Occupancy.fits_calls bctx.cache)
        (!hits + Occupancy.cache_hits bctx.cache);
      emit_moves region_total boundary_iters;
      emit_guards (!guards + Occupancy.guard_checks bctx.cache);
      Vpga_obs.Trace.emit_sample "refine.boundary_accepted"
        (float_of_int bacc);
      {
        moves = iterations;
        accepted = !accepted + bacc;
        initial_cost;
        final_cost = bctx.total;
        region_moves = region_total;
        boundary_moves = boundary_iters;
      }
    end
  end
