module Netlist = Vpga_netlist.Netlist
module Packer = Vpga_plb.Packer
module Occupancy = Vpga_plb.Occupancy
module Placement = Vpga_place.Placement

type stats = { moves : int; accepted : int; initial_cost : float; final_cost : float }

let run ?iterations ?(radius = 4) ?criticality ~seed q pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let n = Netlist.size nl in
  let rng = Random.State.make [| seed |] in
  let item_of = Array.make n None in
  Array.iter
    (fun node -> item_of.(node.Netlist.id) <- Quadrisect.item_of_node node)
    (Netlist.nodes nl);
  let packed =
    Array.of_list
      (List.filter
         (fun id -> q.Quadrisect.tile_of_node.(id) >= 0 && item_of.(id) <> None)
         (List.init n Fun.id))
  in
  let n_packed = Array.length packed in
  if n_packed = 0 then
    { moves = 0; accepted = 0; initial_cost = 0.0; final_cost = 0.0 }
  else begin
    let cols = q.Quadrisect.cols and rows = q.Quadrisect.rows in
    let n_tiles = cols * rows in
    (* Tile membership: per-tile dynamic arrays storing ids in reverse
       list order (array slot [count - 1 - k] is what [List.nth _ k] of
       the former list representation returned), so the swap-candidate
       draw below consumes the RNG identically.  Prepend is an append;
       removal shifts the (at most [output_pins]-long) tail, preserving
       order. *)
    let mem = Array.make n_tiles [||] in
    let mem_n = Array.make n_tiles 0 in
    let push t id =
      let a = mem.(t) in
      let c = mem_n.(t) in
      if c = Array.length a then begin
        let a' = Array.make (max 4 (2 * c)) (-1) in
        Array.blit a 0 a' 0 c;
        mem.(t) <- a'
      end;
      mem.(t).(c) <- id;
      mem_n.(t) <- c + 1
    in
    let drop t id =
      let a = mem.(t) and c = mem_n.(t) in
      let k = ref 0 in
      while a.(!k) <> id do
        incr k
      done;
      Array.blit a (!k + 1) a !k (c - !k - 1);
      mem_n.(t) <- c - 1
    in
    Array.iter
      (fun id -> push q.Quadrisect.tile_of_node.(id) id)
      packed;
    (* Incremental occupancy per tile, replacing per-probe [Packer.fits]
       recomputation; one shared fits memo for the whole refinement. *)
    let cache = Occupancy.create_cache q.Quadrisect.arch in
    let occ = Array.init n_tiles (fun _ -> Occupancy.create cache) in
    Array.iter
      (fun id ->
        match item_of.(id) with
        | Some it ->
            if not (Occupancy.add occ.(q.Quadrisect.tile_of_node.(id)) it)
            then invalid_arg "Refine.run: initial packing is infeasible"
        | None -> assert false)
      packed;
    (* Net bookkeeping (criticality-weighted HPWL), as in the annealer. *)
    let nets = Placement.nets_with_io pl in
    let crit id = match criticality with None -> 0.0 | Some c -> c.(id) in
    let weight =
      Array.map
        (fun net ->
          1.0 +. (3.0 *. Array.fold_left (fun a id -> max a (crit id)) 0.0 net))
        nets
    in
    let deg = Array.make n 0 in
    Array.iter (fun net -> Array.iter (fun id -> deg.(id) <- deg.(id) + 1) net) nets;
    let incident = Array.init n (fun id -> Array.make deg.(id) 0) in
    let fill = Array.make n 0 in
    Array.iteri
      (fun e net ->
        Array.iter
          (fun id ->
            incident.(id).(fill.(id)) <- e;
            fill.(id) <- fill.(id) + 1)
          net)
      nets;
    let net_cost =
      Array.mapi (fun e net -> weight.(e) *. Placement.net_hpwl pl net) nets
    in
    let total = ref (Array.fold_left ( +. ) 0.0 net_cost) in
    let initial_cost = !total in
    (* [delta_of] stashes each touched net's recomputed cost so an
       accepting [commit] reuses it instead of re-walking the net. *)
    let new_cost = Array.make (max 1 (Array.length nets)) 0.0 in
    let delta_of touched =
      List.fold_left
        (fun acc e ->
          let c = weight.(e) *. Placement.net_hpwl pl nets.(e) in
          new_cost.(e) <- c;
          acc +. (c -. net_cost.(e)))
        0.0 touched
    in
    let commit touched =
      List.iter (fun e -> net_cost.(e) <- new_cost.(e)) touched
    in
    (* Stamp-array dedup of the nets incident to the moved ids; the small
       deduped list is then sorted so [delta_of] folds in the same
       (ascending-net) order as the former [List.sort_uniq]. *)
    let stamp = Array.make (max 1 (Array.length nets)) (-1) in
    let epoch = ref 0 in
    let touched_of ids =
      incr epoch;
      let e = !epoch in
      let acc = ref [] in
      List.iter
        (fun id ->
          Array.iter
            (fun net ->
              if stamp.(net) <> e then begin
                stamp.(net) <- e;
                acc := net :: !acc
              end)
            incident.(id))
        ids;
      List.sort Int.compare !acc
    in
    let set_tile id tile =
      let old = q.Quadrisect.tile_of_node.(id) in
      drop old id;
      push tile id;
      q.Quadrisect.tile_of_node.(id) <- tile;
      let x, y = Quadrisect.tile_center q tile in
      pl.Placement.x.(id) <- x;
      pl.Placement.y.(id) <- y
    in
    let iterations =
      match iterations with Some i -> i | None -> 60 * n_packed
    in
    let t_start =
      max 1.0 (initial_cost /. float_of_int (max 1 (Array.length nets)))
    in
    let t_end = t_start /. 1000.0 in
    let alpha = exp (log (t_end /. t_start) /. float_of_int (max 1 iterations)) in
    let temp = ref t_start in
    let accepted = ref 0 in
    for _ = 1 to iterations do
      let id = packed.(Random.State.int rng n_packed) in
      let cur = q.Quadrisect.tile_of_node.(id) in
      let cc = cur mod cols and cr = cur / cols in
      let dc = Random.State.int rng ((2 * radius) + 1) - radius in
      let dr = Random.State.int rng ((2 * radius) + 1) - radius in
      let nc = min (cols - 1) (max 0 (cc + dc)) in
      let nr = min (rows - 1) (max 0 (cr + dr)) in
      let dest = (nr * cols) + nc in
      if dest <> cur then begin
        let item = match item_of.(id) with Some i -> i | None -> assert false in
        (* Try a plain move; if the destination is full, try swapping with a
           random resident. *)
        let try_swap_with =
          if Occupancy.query occ.(dest) item then None
          else if mem_n.(dest) = 0 then Some (-1) (* nothing to swap; give up *)
          else
            Some mem.(dest).(mem_n.(dest) - 1 - Random.State.int rng mem_n.(dest))
        in
        let apply () =
          match try_swap_with with
          | None ->
              Occupancy.remove occ.(cur) item;
              if not (Occupancy.add occ.(dest) item) then assert false;
              set_tile id dest;
              Some [ id ]
          | Some other when other >= 0 ->
              let other_item =
                match item_of.(other) with Some i -> i | None -> assert false
              in
              Occupancy.remove occ.(dest) other_item;
              let fwd = Occupancy.query occ.(dest) item in
              Occupancy.remove occ.(cur) item;
              let bwd = Occupancy.query occ.(cur) other_item in
              if fwd && bwd then begin
                if not (Occupancy.add occ.(dest) item) then assert false;
                if not (Occupancy.add occ.(cur) other_item) then assert false;
                set_tile id dest;
                set_tile other cur;
                Some [ id; other ]
              end
              else begin
                if not (Occupancy.add occ.(cur) item) then assert false;
                if not (Occupancy.add occ.(dest) other_item) then assert false;
                None
              end
          | Some _ -> None
        in
        match apply () with
        | None -> ()
        | Some moved ->
            let touched = touched_of moved in
            let d = delta_of touched in
            let accept =
              d <= 0.0
              || Random.State.float rng 1.0 < exp (-.d /. max 1e-9 !temp)
            in
            if accept then begin
              commit touched;
              total := !total +. d;
              incr accepted
            end
            else begin
              (* undo, occupancy included *)
              match moved with
              | [ only ] ->
                  Occupancy.remove occ.(dest) item;
                  if not (Occupancy.add occ.(cur) item) then assert false;
                  set_tile only cur
              | [ a; b ] ->
                  let ib =
                    match item_of.(b) with Some i -> i | None -> assert false
                  in
                  Occupancy.remove occ.(dest) item;
                  Occupancy.remove occ.(cur) ib;
                  if not (Occupancy.add occ.(cur) item) then assert false;
                  if not (Occupancy.add occ.(dest) ib) then assert false;
                  set_tile a cur;
                  set_tile b dest
              | _ -> assert false
            end
      end;
      temp := !temp *. alpha
    done;
    Vpga_obs.Trace.emit "pack.fits_calls"
      (float_of_int (Occupancy.fits_calls cache));
    Vpga_obs.Trace.emit "pack.fits_cache_hits"
      (float_of_int (Occupancy.cache_hits cache));
    { moves = iterations; accepted = !accepted; initial_cost; final_cost = !total }
  end
