module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Occupancy = Vpga_plb.Occupancy
module Placement = Vpga_place.Placement

type t = {
  arch : Arch.t;
  cols : int;
  rows : int;
  tile_of_node : int array;
  displacement : float;
  mean_displacement_tiles : float;
  tiles_used : int;
}

let item_of_node node =
  match node.Netlist.kind with
  | Kind.Input | Kind.Output | Kind.Const _ -> None
  | Kind.Dff -> Some { Packer.config = Config.Invb; pins = 1; flop = true }
  | Kind.Buf | Kind.Inv ->
      Some { Packer.config = Config.Invb; pins = 1; flop = false }
  | Kind.Mapped { cell; fn } -> (
      match Config.of_cell_name cell with
      | Some c -> Some (Packer.item c fn)
      | None ->
          let cfg =
            match cell with
            | "buf" | "inv" -> Config.Invb
            | "mux2" | "xoa" -> Config.Mx
            | "lut3" -> Config.Lut
            | "nd3wi" | "nd2wi" ->
                if Bfun.support_size fn <= 2 then Config.Nd2 else Config.Nd3
            | other ->
                invalid_arg ("Quadrisect: unknown component cell " ^ other)
          in
          Some (Packer.item cfg fn))
  | Kind.And2 | Kind.Or2 | Kind.Nand2 | Kind.Nor2 | Kind.Xor2 | Kind.Xnor2
  | Kind.Mux2 | Kind.And3 | Kind.Or3 | Kind.Nand3 | Kind.Nor3 | Kind.Xor3
  | Kind.Maj3 ->
      invalid_arg "Quadrisect: netlist is not technology-mapped"

(* The smallest resource vector an item can occupy (its preferred
   alternative), used for the aggregate quadrant balance.  Pure flops
   (registered pass-throughs) occupy only the flip-flop, accounted
   separately. *)
let min_demand arch item =
  if item.Packer.flop && item.Packer.config = Config.Invb then
    Arch.Vector.zero
  else
    match Config.demand arch item.Packer.config with
    | [] -> Arch.Vector.zero
    | d :: _ -> d

type fit_error = {
  design : string;
  dims_tried : int list;
  unplaced : int;
}

let fit_error_to_string fe =
  let last = match List.rev fe.dims_tried with d :: _ -> d | [] -> 0 in
  Printf.sprintf
    "could not fit design %s: %d item(s) still unplaced after growing the \
     array to %dx%d (tried %s)"
    fe.design fe.unplaced last last
    (String.concat ", "
       (List.map (fun d -> Printf.sprintf "%dx%d" d d) fe.dims_tried))

type work_item = {
  node : int;
  item : Packer.item;
  ix : float; (* original placement coordinates *)
  iy : float;
  crit : float;
}

let legalize_result ?(utilization = 0.9) ?criticality ?dead_tile arch pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let n = Netlist.size nl in
  let crit id = match criticality with None -> 0.0 | Some c -> c.(id) in
  let items =
    List.filter_map
      (fun node ->
        match item_of_node node with
        | None -> None
        | Some item ->
            let id = node.Netlist.id in
            Some
              {
                node = id;
                item;
                ix = pl.Placement.x.(id);
                iy = pl.Placement.y.(id);
                crit = crit id;
              })
      (Array.to_list (Netlist.nodes nl))
  in
  (* Array sizing: lower bounds at the target utilization.
     - per-resource, counting only items that need the resource in *every*
       demand alternative (Mx may go to a MUX or the XOA, so it binds
       neither individually);
     - total combinational slots (every alternative occupies at least its
       cheapest slot count);
     - flops.
     The growth loop below handles any residual infeasibility. *)
  let pure_flop w =
    w.item.Packer.flop && w.item.Packer.config = Config.Invb
  in
  let alternatives w =
    if pure_flop w then [] else Config.demand arch w.item.Packer.config
  in
  let must_use r w =
    match alternatives w with
    | [] -> false
    | alts -> List.for_all (fun d -> Arch.Vector.get d r > 0) alts
  in
  let count f = List.fold_left (fun acc w -> acc + if f w then 1 else 0) 0 items in
  let ceil_div_util demand cap =
    if cap <= 0 || demand <= 0 then 0
    else
      int_of_float
        (ceil (float_of_int demand /. (float_of_int cap *. utilization)))
  in
  let resource_bound r =
    ceil_div_util (count (must_use r)) (Arch.Vector.get arch.Arch.capacity r)
  in
  let slots w =
    List.fold_left
      (fun acc d -> min acc (Arch.Vector.total d))
      max_int (alternatives w)
  in
  let comb_slots_demand =
    List.fold_left
      (fun acc w -> acc + (match alternatives w with [] -> 0 | _ -> slots w))
      0 items
  in
  let comb_slots_cap =
    List.fold_left
      (fun acc r ->
        if r = Arch.Ff then acc else acc + Arch.Vector.get arch.Arch.capacity r)
      0 Arch.all_resources
  in
  let ff_bound =
    ceil_div_util
      (count (fun w -> w.item.Packer.flop))
      (Arch.Vector.get arch.Arch.capacity Arch.Ff)
  in
  let min_tiles =
    List.fold_left
      (fun acc r -> max acc (resource_bound r))
      (max 1 (max ff_bound (ceil_div_util comb_slots_demand comb_slots_cap)))
      Arch.all_resources
  in
  (* ---- incremental machinery shared by every attempt ---- *)
  let ws = Array.of_list items in
  let nws = Array.length ws in
  let n_res = List.length Arch.all_resources in
  (* Position in [Arch.all_resources]; [wdem] below is laid out in the
     same order. *)
  let res_index r =
    let rec go i = function
      | [] -> invalid_arg "Quadrisect: unknown resource"
      | x :: rest -> if x = r then i else go (i + 1) rest
    in
    go 0 Arch.all_resources
  in
  (* Per-item aggregate-balance demand (min alternative + the flop), as a
     dense int vector: the drain ledger's unit of account. *)
  let wdem =
    Array.map
      (fun w ->
        let base = min_demand arch w.item in
        let a = Array.make n_res 0 in
        List.iteri (fun i r -> a.(i) <- Arch.Vector.get base r)
          Arch.all_resources;
        if w.item.Packer.flop then begin
          let fi = res_index Arch.Ff in
          a.(fi) <- a.(fi) + 1
        end;
        a)
      ws
  in
  (* One fits memo across all attempts: array growth retries re-ask the
     same multiset questions. *)
  let cache = Occupancy.create_cache arch in
  let drain_moves = ref 0 and ring_steps = ref 0 in
  let attempt dims =
    let cols = dims and rows = dims in
    let tile_w = pl.Placement.die_w /. float_of_int cols in
    let tile_h = pl.Placement.die_h /. float_of_int rows in
    let tile_index c r = (r * cols) + c in
    (* Defective tiles at this discretization: excluded from the ledger's
       aggregate capacity and marked zero-capacity in the occupancy state,
       so neither the balance drains nor the spill search ever target
       them.  [None] (the healthy fabric) takes the unchanged fast path. *)
    let dead =
      match dead_tile with
      | None -> None
      | Some f ->
          let dd = Array.init (cols * rows) (fun t -> f ~cols ~rows t) in
          Vpga_obs.Trace.emit "pack.dead_tiles"
            (float_of_int
               (Array.fold_left (fun a d -> if d then a + 1 else a) 0 dd));
          Some dd
    in
    let dead_pre =
      match dead with
      | None -> [||]
      | Some dd ->
          (* 2D prefix sums over a (cols+1) x (rows+1) grid. *)
          let p = Array.make ((cols + 1) * (rows + 1)) 0 in
          for r = 0 to rows - 1 do
            for c = 0 to cols - 1 do
              let d = if dd.((r * cols) + c) then 1 else 0 in
              p.(((r + 1) * (cols + 1)) + c + 1) <-
                p.((r * (cols + 1)) + c + 1)
                + p.(((r + 1) * (cols + 1)) + c)
                - p.((r * (cols + 1)) + c)
                + d
            done
          done;
          p
    in
    let dead_in (a, b, c, d) =
      if Array.length dead_pre = 0 || c <= a || d <= b then 0
      else
        dead_pre.((d * (cols + 1)) + c)
        - dead_pre.((b * (cols + 1)) + c)
        - dead_pre.((d * (cols + 1)) + a)
        + dead_pre.((b * (cols + 1)) + a)
    in
    (* Recursive quadrisection: fills (node -> tile) assignments.
       Quadrant membership is an intrusive doubly-linked list over
       work-item indices (O(1) move), mirroring the prepend/remove order
       of the original list representation so results stay bit-identical;
       per-quadrant resource demand is a ledger updated on each move
       instead of a full fold per balance query. *)
    let assignment = Array.make n (-1) in
    let nxt = Array.make (max 1 nws) (-1) in
    let prv = Array.make (max 1 nws) (-1) in
    let rec quadrise members c0 r0 c1 r1 =
      if Array.length members = 0 then ()
      else if c1 - c0 = 1 && r1 - r0 = 1 then
        Array.iter
          (fun i -> assignment.(ws.(i).node) <- tile_index c0 r0)
          members
      else begin
        (* Split the region (vertical first when wider). *)
        let cm = if c1 - c0 > 1 then (c0 + c1) / 2 else c1 in
        let rm = if r1 - r0 > 1 then (r0 + r1) / 2 else r1 in
        (* Quadrants: 0 = (c0..cm, r0..rm), 1 = (cm..c1, r0..rm),
           2 = (c0..cm, rm..r1), 3 = (cm..c1, rm..r1); degenerate quadrants
           (zero tiles) stay empty. *)
        let bounds =
          [|
            (c0, r0, cm, rm); (cm, r0, c1, rm); (c0, rm, cm, r1); (cm, rm, c1, r1);
          |]
        in
        let tiles_in (a, b, c, d) = max 0 (c - a) * max 0 (d - b) in
        let quad_of i =
          let w = ws.(i) in
          let qc =
            if cm >= c1 then 0
            else if w.ix >= float_of_int cm *. tile_w then 1
            else 0
          in
          let qr =
            if rm >= r1 then 0
            else if w.iy >= float_of_int rm *. tile_h then 1
            else 0
          in
          (qr * 2) + qc
        in
        let head = Array.make 4 (-1) in
        let qcount = Array.make 4 0 in
        let dem = Array.make_matrix 4 n_res 0 in
        let prepend q i =
          nxt.(i) <- head.(q);
          prv.(i) <- -1;
          if head.(q) >= 0 then prv.(head.(q)) <- i;
          head.(q) <- i;
          qcount.(q) <- qcount.(q) + 1;
          let d = wdem.(i) in
          for r = 0 to n_res - 1 do
            dem.(q).(r) <- dem.(q).(r) + d.(r)
          done
        in
        let unlink q i =
          if prv.(i) >= 0 then nxt.(prv.(i)) <- nxt.(i)
          else head.(q) <- nxt.(i);
          if nxt.(i) >= 0 then prv.(nxt.(i)) <- prv.(i);
          qcount.(q) <- qcount.(q) - 1;
          let d = wdem.(i) in
          for r = 0 to n_res - 1 do
            dem.(q).(r) <- dem.(q).(r) - d.(r)
          done
        in
        Array.iter (fun i -> prepend (quad_of i) i) members;
        (* Balance each resource across quadrants: move least-critical
           users of [res] out of overfull quadrants into the emptiest
           sibling.  Users are sorted by criticality once per
           (resource, quadrant) — drains only remove from the quadrant,
           so the sorted queue stays a faithful view — and [over] reads
           the ledger instead of refolding the membership. *)
        List.iter
          (fun res ->
            let ri = res_index res in
            let cap_per_tile = Arch.Vector.get arch.Arch.capacity res in
            if cap_per_tile > 0 then
              let cap q =
                max 0 (tiles_in bounds.(q) - dead_in bounds.(q))
                * cap_per_tile
              in
              let over q = dem.(q).(ri) - cap q in
              for q = 0 to 3 do
                let users = ref [] in
                let i = ref head.(q) in
                while !i >= 0 do
                  if wdem.(!i).(ri) > 0 then users := !i :: !users;
                  i := nxt.(!i)
                done;
                let users =
                  List.stable_sort
                    (fun a b -> Float.compare ws.(a).crit ws.(b).crit)
                    (List.rev !users)
                in
                let guard = ref qcount.(q) in
                let rec drain = function
                  | [] -> ()
                  | w :: rest ->
                      if !guard > 0 && over q > 0 then begin
                        let dest = ref (-1) in
                        for q2 = 0 to 3 do
                          if q2 <> q && cap q2 > 0 then
                            if !dest < 0 || over q2 < over !dest then
                              dest := q2
                        done;
                        if !dest >= 0 && over !dest < 0 then begin
                          unlink q w;
                          prepend !dest w;
                          incr drain_moves;
                          decr guard;
                          drain rest
                        end
                        (* else: nothing changed, so every remaining
                           iteration would retry the same head against the
                           same ledger — a guaranteed no-op; stop. *)
                      end
                in
                drain users
              done)
          Arch.all_resources;
        let sub =
          Array.init 4 (fun q ->
              let arr = Array.make qcount.(q) 0 in
              let i = ref head.(q) and k = ref 0 in
              while !i >= 0 do
                arr.(!k) <- !i;
                incr k;
                i := nxt.(!i)
              done;
              arr)
        in
        Array.iteri
          (fun q (a, b, c, d) ->
            if tiles_in bounds.(q) > 0 then quadrise sub.(q) a b c d)
          bounds
      end
    in
    quadrise (Array.init nws Fun.id) 0 0 cols rows;
    (* Exact per-tile feasibility with nearest-tile spill, against the
       incremental occupancy state (query == [Packer.fits] on the tile's
       multiset).  Ring offsets are precomputed per Chebyshev distance and
       shared by every spill search of this attempt. *)
    let occ = Array.init (cols * rows) (fun _ -> Occupancy.create cache) in
    (match dead with
    | None -> ()
    | Some dd ->
        Array.iteri (fun t d -> if d then Occupancy.set_dead occ.(t) true) dd);
    let unplaced = ref 0 in
    let max_ring = cols + rows in
    let rings = Array.make (max_ring + 1) [||] in
    let ring_offsets d =
      if Array.length rings.(d) = 0 then begin
        let acc = ref [] in
        for dc = -d to d do
          for dr = -d to d do
            if max (abs dc) (abs dr) = d then acc := (dc, dr) :: !acc
          done
        done;
        rings.(d) <- Array.of_list (List.rev !acc)
      end;
      rings.(d)
    in
    let place_or_spill i =
      let w = ws.(i) in
      let home = assignment.(w.node) in
      let hc = home mod cols and hr = home / cols in
      let rec ring d =
        if d > max_ring then None
        else begin
          let offs = ring_offsets d in
          let found = ref (-1) in
          let k = ref 0 in
          let nk = Array.length offs in
          while !found < 0 && !k < nk do
            let dc, dr = offs.(!k) in
            let c = hc + dc and r = hr + dr in
            if c >= 0 && c < cols && r >= 0 && r < rows then begin
              incr ring_steps;
              let t = tile_index c r in
              if Occupancy.query occ.(t) w.item then found := t
            end;
            incr k
          done;
          if !found >= 0 then Some !found else ring (d + 1)
        end
      in
      let dest =
        if Occupancy.query occ.(home) w.item then Some home else ring 1
      in
      match dest with
      | Some t ->
          if not (Occupancy.add occ.(t) w.item) then assert false;
          assignment.(w.node) <- t
      | None -> incr unplaced
    in
    (* Critical items first so they keep their preferred tiles. *)
    let ordered =
      List.stable_sort
        (fun a b -> Float.compare ws.(b).crit ws.(a).crit)
        (List.init nws Fun.id)
    in
    List.iter place_or_spill ordered;
    if !unplaced > 0 then Error !unplaced
    else begin
      let displacement =
        Array.fold_left
          (fun acc w ->
            let t = assignment.(w.node) in
            let cx = (float_of_int (t mod cols) +. 0.5) *. tile_w in
            let cy = (float_of_int (t / cols) +. 0.5) *. tile_h in
            acc +. Float.hypot (cx -. w.ix) (cy -. w.iy))
          0.0 ws
      in
      let mean_displacement_tiles =
        displacement
        /. (Float.hypot tile_w tile_h *. float_of_int (max 1 nws))
      in
      let used =
        Array.fold_left
          (fun acc o -> if Occupancy.is_empty o then acc else acc + 1)
          0 occ
      in
      Ok
        {
          arch;
          cols;
          rows;
          tile_of_node = assignment;
          displacement;
          mean_displacement_tiles;
          tiles_used = used;
        }
    end
  in
  let start_dims =
    let base = max 2 (int_of_float (ceil (sqrt (float_of_int min_tiles)))) in
    match dead_tile with
    | None -> base
    | Some f ->
        (* Dead tiles shrink the effective array; start from dims whose
           live tile count still meets the lower bound, so the growth
           loop's 12 retries are not wasted rediscovering it. *)
        let live dims =
          let dead_count = ref 0 in
          for t = 0 to (dims * dims) - 1 do
            if f ~cols:dims ~rows:dims t then incr dead_count
          done;
          (dims * dims) - !dead_count
        in
        let rec grow dims =
          if dims >= 64 || live dims >= min_tiles then dims
          else grow (dims + max 1 (dims / 8))
        in
        grow base
  in
  let rec try_dims dims guard tried last_unplaced =
    if guard = 0 then
      Error
        {
          design = Netlist.design_name nl;
          dims_tried = List.rev tried;
          unplaced = last_unplaced;
        }
    else
      match attempt dims with
      | Ok t -> Ok t
      | Error unplaced ->
          try_dims (dims + max 1 (dims / 8)) (guard - 1) (dims :: tried)
            unplaced
  in
  let result = try_dims start_dims 12 [] 0 in
  Vpga_obs.Trace.emit "pack.fits_calls"
    (float_of_int (Occupancy.fits_calls cache));
  Vpga_obs.Trace.emit "pack.fits_cache_hits"
    (float_of_int (Occupancy.cache_hits cache));
  Vpga_obs.Trace.emit "pack.spill_ring_steps" (float_of_int !ring_steps);
  Vpga_obs.Trace.emit "pack.drain_moves" (float_of_int !drain_moves);
  result

let legalize ?utilization ?criticality ?dead_tile arch pl =
  match legalize_result ?utilization ?criticality ?dead_tile arch pl with
  | Ok t -> t
  | Error fe -> failwith ("Quadrisect.legalize: " ^ fit_error_to_string fe)

let array_area t =
  float_of_int (t.cols * t.rows) *. t.arch.Arch.tile_area

let tile_side t = sqrt t.arch.Arch.tile_area

let tile_center t tile =
  (* Tile geometry in the PLB array's own coordinate system. *)
  let side = tile_side t in
  ( (float_of_int (tile mod t.cols) +. 0.5) *. side,
    (float_of_int (tile / t.cols) +. 0.5) *. side )

(* Region decomposition for parallel refinement: a [regions x regions]
   grid of tile rectangles with balanced integer splits, a pure function
   of the array dims — never of worker count — so region ownership (and
   with it every region-local RNG stream) is identical at any [jobs]. *)
let region_bounds ~regions t r =
  if regions < 1 || r < 0 || r >= regions * regions then
    invalid_arg "Quadrisect.region_bounds";
  let gc = r mod regions and gr = r / regions in
  ( gc * t.cols / regions,
    gr * t.rows / regions,
    (gc + 1) * t.cols / regions,
    (gr + 1) * t.rows / regions )

let region_of_tile ~regions t tile =
  if regions < 1 || tile < 0 || tile >= t.cols * t.rows then
    invalid_arg "Quadrisect.region_of_tile";
  let c = tile mod t.cols and r = tile / t.cols in
  (* Inverse of the balanced split: the g with [g*n/regions <= i <
     (g+1)*n/regions] is [((i+1)*regions - 1) / n]. *)
  let gc = (((c + 1) * regions) - 1) / t.cols in
  let gr = (((r + 1) * regions) - 1) / t.rows in
  (gr * regions) + gc

let snap t pl =
  Array.iteri
    (fun id tile ->
      if tile >= 0 then begin
        let x, y = tile_center t tile in
        pl.Placement.x.(id) <- x;
        pl.Placement.y.(id) <- y
      end)
    t.tile_of_node
