module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Bfun = Vpga_logic.Bfun
module Gates = Vpga_logic.Gates
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Placement = Vpga_place.Placement

type t = {
  arch : Arch.t;
  cols : int;
  rows : int;
  tile_of_node : int array;
  displacement : float;
  mean_displacement_tiles : float;
  tiles_used : int;
}

let item_of_node node =
  match node.Netlist.kind with
  | Kind.Input | Kind.Output | Kind.Const _ -> None
  | Kind.Dff -> Some { Packer.config = Config.Invb; pins = 1; flop = true }
  | Kind.Buf | Kind.Inv ->
      Some { Packer.config = Config.Invb; pins = 1; flop = false }
  | Kind.Mapped { cell; fn } -> (
      match Config.of_cell_name cell with
      | Some c -> Some (Packer.item c fn)
      | None ->
          let cfg =
            match cell with
            | "buf" | "inv" -> Config.Invb
            | "mux2" | "xoa" -> Config.Mx
            | "lut3" -> Config.Lut
            | "nd3wi" | "nd2wi" ->
                if Bfun.support_size fn <= 2 then Config.Nd2 else Config.Nd3
            | other ->
                invalid_arg ("Quadrisect: unknown component cell " ^ other)
          in
          Some (Packer.item cfg fn))
  | Kind.And2 | Kind.Or2 | Kind.Nand2 | Kind.Nor2 | Kind.Xor2 | Kind.Xnor2
  | Kind.Mux2 | Kind.And3 | Kind.Or3 | Kind.Nand3 | Kind.Nor3 | Kind.Xor3
  | Kind.Maj3 ->
      invalid_arg "Quadrisect: netlist is not technology-mapped"

(* The smallest resource vector an item can occupy (its preferred
   alternative), used for the aggregate quadrant balance.  Pure flops
   (registered pass-throughs) occupy only the flip-flop, accounted
   separately. *)
let min_demand arch item =
  if item.Packer.flop && item.Packer.config = Config.Invb then
    Arch.Vector.zero
  else
    match Config.demand arch item.Packer.config with
    | [] -> Arch.Vector.zero
    | d :: _ -> d

type fit_error = {
  design : string;
  dims_tried : int list;
  unplaced : int;
}

let fit_error_to_string fe =
  let last = match List.rev fe.dims_tried with d :: _ -> d | [] -> 0 in
  Printf.sprintf
    "could not fit design %s: %d item(s) still unplaced after growing the \
     array to %dx%d (tried %s)"
    fe.design fe.unplaced last last
    (String.concat ", "
       (List.map (fun d -> Printf.sprintf "%dx%d" d d) fe.dims_tried))

type work_item = {
  node : int;
  item : Packer.item;
  ix : float; (* original placement coordinates *)
  iy : float;
  crit : float;
}

let legalize_result ?(utilization = 0.9) ?criticality arch pl =
  let nl = pl.Placement.graph.Vpga_place.Hypergraph.nl in
  let n = Netlist.size nl in
  let crit id = match criticality with None -> 0.0 | Some c -> c.(id) in
  let items =
    List.filter_map
      (fun node ->
        match item_of_node node with
        | None -> None
        | Some item ->
            let id = node.Netlist.id in
            Some
              {
                node = id;
                item;
                ix = pl.Placement.x.(id);
                iy = pl.Placement.y.(id);
                crit = crit id;
              })
      (Array.to_list (Netlist.nodes nl))
  in
  (* Array sizing: lower bounds at the target utilization.
     - per-resource, counting only items that need the resource in *every*
       demand alternative (Mx may go to a MUX or the XOA, so it binds
       neither individually);
     - total combinational slots (every alternative occupies at least its
       cheapest slot count);
     - flops.
     The growth loop below handles any residual infeasibility. *)
  let pure_flop w =
    w.item.Packer.flop && w.item.Packer.config = Config.Invb
  in
  let alternatives w =
    if pure_flop w then [] else Config.demand arch w.item.Packer.config
  in
  let must_use r w =
    match alternatives w with
    | [] -> false
    | alts -> List.for_all (fun d -> Arch.Vector.get d r > 0) alts
  in
  let count f = List.fold_left (fun acc w -> acc + if f w then 1 else 0) 0 items in
  let ceil_div_util demand cap =
    if cap <= 0 || demand <= 0 then 0
    else
      int_of_float
        (ceil (float_of_int demand /. (float_of_int cap *. utilization)))
  in
  let resource_bound r =
    ceil_div_util (count (must_use r)) (Arch.Vector.get arch.Arch.capacity r)
  in
  let slots w =
    List.fold_left
      (fun acc d -> min acc (Arch.Vector.total d))
      max_int (alternatives w)
  in
  let comb_slots_demand =
    List.fold_left
      (fun acc w -> acc + (match alternatives w with [] -> 0 | _ -> slots w))
      0 items
  in
  let comb_slots_cap =
    List.fold_left
      (fun acc r ->
        if r = Arch.Ff then acc else acc + Arch.Vector.get arch.Arch.capacity r)
      0 Arch.all_resources
  in
  let ff_bound =
    ceil_div_util
      (count (fun w -> w.item.Packer.flop))
      (Arch.Vector.get arch.Arch.capacity Arch.Ff)
  in
  let min_tiles =
    List.fold_left
      (fun acc r -> max acc (resource_bound r))
      (max 1 (max ff_bound (ceil_div_util comb_slots_demand comb_slots_cap)))
      Arch.all_resources
  in
  let attempt dims =
    let cols = dims and rows = dims in
    let tile_w = pl.Placement.die_w /. float_of_int cols in
    let tile_h = pl.Placement.die_h /. float_of_int rows in
    let tile_index c r = (r * cols) + c in
    (* Recursive quadrisection: fills (node -> tile) assignments. *)
    let assignment = Array.make n (-1) in
    let rec quadrise items c0 r0 c1 r1 =
      if items = [] then ()
      else if c1 - c0 = 1 && r1 - r0 = 1 then
        List.iter (fun w -> assignment.(w.node) <- tile_index c0 r0) items
      else begin
        (* Split the region (vertical first when wider). *)
        let cm = if c1 - c0 > 1 then (c0 + c1) / 2 else c1 in
        let rm = if r1 - r0 > 1 then (r0 + r1) / 2 else r1 in
        (* Quadrants: 0 = (c0..cm, r0..rm), 1 = (cm..c1, r0..rm),
           2 = (c0..cm, rm..r1), 3 = (cm..c1, rm..r1); degenerate quadrants
           (zero tiles) stay empty. *)
        let bounds =
          [|
            (c0, r0, cm, rm); (cm, r0, c1, rm); (c0, rm, cm, r1); (cm, rm, c1, r1);
          |]
        in
        let tiles_in (a, b, c, d) = max 0 (c - a) * max 0 (d - b) in
        let quad_of w =
          let qc =
            if cm >= c1 then 0
            else if w.ix >= float_of_int cm *. tile_w then 1
            else 0
          in
          let qr =
            if rm >= r1 then 0
            else if w.iy >= float_of_int rm *. tile_h then 1
            else 0
          in
          (qr * 2) + qc
        in
        let quads = Array.make 4 [] in
        List.iter (fun w -> quads.(quad_of w) <- w :: quads.(quad_of w)) items;
        (* Balance each resource across quadrants. *)
        let demand_of q =
          List.fold_left
            (fun acc w ->
              Arch.Vector.add acc
                (Arch.Vector.add (min_demand arch w.item)
                   (if w.item.Packer.flop then
                      Arch.Vector.of_list [ (Arch.Ff, 1) ]
                    else Arch.Vector.zero)))
            Arch.Vector.zero quads.(q)
        in
        let cap_of q =
          let tiles = tiles_in bounds.(q) in
          float_of_int tiles
        in
        List.iter
          (fun res ->
            let cap_per_tile = Arch.Vector.get arch.Arch.capacity res in
            if cap_per_tile > 0 then begin
              let cap q =
                int_of_float (cap_of q) * cap_per_tile
              in
              let over q = Arch.Vector.get (demand_of q) res - cap q in
              (* Move least-critical users of [res] out of overfull
                 quadrants into the emptiest sibling. *)
              let rec drain q guard =
                if guard > 0 && over q > 0 then begin
                  let users =
                    List.filter
                      (fun w ->
                        Arch.Vector.get (min_demand arch w.item) res > 0
                        || (res = Arch.Ff && w.item.Packer.flop))
                      quads.(q)
                  in
                  match
                    List.sort
                      (fun a b -> Float.compare a.crit b.crit)
                      users
                  with
                  | [] -> ()
                  | w :: _ ->
                      let dest =
                        List.filter (fun q2 -> q2 <> q && cap q2 > 0)
                          [ 0; 1; 2; 3 ]
                        |> List.fold_left
                             (fun best q2 ->
                               match best with
                               | None -> Some q2
                               | Some b ->
                                   if over q2 < over b then Some q2 else Some b)
                             None
                      in
                      (match dest with
                      | Some d when over d < 0 ->
                          quads.(q) <- List.filter (fun u -> u != w) quads.(q);
                          quads.(d) <- w :: quads.(d)
                      | Some _ | None -> ());
                      drain q (guard - 1)
                end
              in
              List.iter (fun q -> drain q (List.length quads.(q))) [ 0; 1; 2; 3 ]
            end)
          Arch.all_resources;
        Array.iteri
          (fun q (a, b, c, d) ->
            if tiles_in bounds.(q) > 0 then quadrise quads.(q) a b c d)
          bounds
      end
    in
    quadrise items 0 0 cols rows;
    (* Exact per-tile feasibility with nearest-tile spill. *)
    let tile_items = Array.make (cols * rows) [] in
    let unplaced = ref 0 in
    let fits_tile tile w =
      Packer.fits arch (w.item :: List.map (fun u -> u.item) tile_items.(tile))
    in
    let place_or_spill w =
      let home = assignment.(w.node) in
      let hc = home mod cols and hr = home / cols in
      let rec ring d =
        if d > cols + rows then None
        else begin
          let candidates = ref [] in
          for c = max 0 (hc - d) to min (cols - 1) (hc + d) do
            for r = max 0 (hr - d) to min (rows - 1) (hr + d) do
              if max (abs (c - hc)) (abs (r - hr)) = d then
                candidates := tile_index c r :: !candidates
            done
          done;
          match List.find_opt (fun t -> fits_tile t w) (List.rev !candidates) with
          | Some t -> Some t
          | None -> ring (d + 1)
        end
      in
      let dest = if fits_tile home w then Some home else ring 1 in
      match dest with
      | Some t ->
          tile_items.(t) <- w :: tile_items.(t);
          assignment.(w.node) <- t
      | None -> incr unplaced
    in
    (* Critical items first so they keep their preferred tiles. *)
    let ordered =
      List.sort (fun a b -> Float.compare b.crit a.crit) items
    in
    List.iter place_or_spill ordered;
    if !unplaced > 0 then Error !unplaced
    else begin
      let displacement =
        List.fold_left
          (fun acc w ->
            let t = assignment.(w.node) in
            let cx = (float_of_int (t mod cols) +. 0.5) *. tile_w in
            let cy = (float_of_int (t / cols) +. 0.5) *. tile_h in
            acc +. Float.hypot (cx -. w.ix) (cy -. w.iy))
          0.0 items
      in
      let mean_displacement_tiles =
        displacement
        /. (Float.hypot tile_w tile_h *. float_of_int (max 1 (List.length items)))
      in
      let used =
        Array.fold_left
          (fun acc l -> if l = [] then acc else acc + 1)
          0 tile_items
      in
      Ok
        {
          arch;
          cols;
          rows;
          tile_of_node = assignment;
          displacement;
          mean_displacement_tiles;
          tiles_used = used;
        }
    end
  in
  let start_dims =
    max 2 (int_of_float (ceil (sqrt (float_of_int min_tiles))))
  in
  let rec try_dims dims guard tried last_unplaced =
    if guard = 0 then
      Error
        {
          design = Netlist.design_name nl;
          dims_tried = List.rev tried;
          unplaced = last_unplaced;
        }
    else
      match attempt dims with
      | Ok t -> Ok t
      | Error unplaced ->
          try_dims (dims + max 1 (dims / 8)) (guard - 1) (dims :: tried)
            unplaced
  in
  try_dims start_dims 12 [] 0

let legalize ?utilization ?criticality arch pl =
  match legalize_result ?utilization ?criticality arch pl with
  | Ok t -> t
  | Error fe -> failwith ("Quadrisect.legalize: " ^ fit_error_to_string fe)

let array_area t =
  float_of_int (t.cols * t.rows) *. t.arch.Arch.tile_area

let tile_center t tile =
  (* Tile geometry in the PLB array's own coordinate system. *)
  let side = sqrt t.arch.Arch.tile_area in
  ( (float_of_int (tile mod t.cols) +. 0.5) *. side,
    (float_of_int (tile / t.cols) +. 0.5) *. side )

let snap t pl =
  Array.iteri
    (fun id tile ->
      if tile >= 0 then begin
        let x, y = tile_center t tile in
        pl.Placement.x.(id) <- x;
        pl.Placement.y.(id) <- y
      end)
    t.tile_of_node
