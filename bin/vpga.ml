(* Command-line driver: regenerate any of the paper's experiments.

     vpga s3                  Section-2.1 function classification (E1/E2)
     vpga fa                  full-adder packing (E3)
     vpga configs             configuration delay/area table (E4)
     vpga compaction [-p]     compaction ablation (E5)
     vpga tables [-p]         Tables 1 and 2 plus the headline claims (E6-E8)
     vpga flow -d NAME -a ARCH  one design through one architecture
     vpga sweep [-p] [-j N]   fault-isolated sweep with a recovery summary
     vpga stress [-p] [-j N]  minimum-channel-width search under defect maps
     vpga lint -d NAME [-a ARCH]  lint a design and its front-end stages
     vpga analyze -d NAME [-a ARCH]  dataflow analyses over the stages
     vpga report FILE         per-stage summary of a Chrome trace file
     vpga perf diff A B       compare two metrics snapshots, exit 1 past
                              tolerance
     vpga cache ...           stats/clear/gc/check of the stage cache *)

open Cmdliner
open Vpga_core.Vpga

let paper_flag =
  Arg.(
    value & flag
    & info [ "p"; "paper-scale" ]
        ~doc:"Use paper-comparable design sizes (slower).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for the flow.")

(* Like [Arg.int] but rejects non-positive values at parse time, before
   any flow work starts. *)
let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Error _ as e -> e
    | Ok n when n < 1 ->
        Error (`Msg (Printf.sprintf "expected a positive count, got %d" n))
    | Ok n -> Ok n
  in
  Arg.conv ~docv:"JOBS" (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(
    value
    & opt positive_int (Vpga_par.Pool.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the flow sweep (default: cores - 1, at least \
           1).  Results are identical for any value; 1 runs fully \
           sequentially.")

let scale_of p = if p then Experiments.Paper else Experiments.Test

let s3_cmd =
  let run () = Report.s3 Format.std_formatter () in
  Cmd.v (Cmd.info "s3" ~doc:"Classify all 256 3-input functions (E1/E2)")
    Term.(const run $ const ())

let fa_cmd =
  let run () = Report.full_adder Format.std_formatter () in
  Cmd.v (Cmd.info "fa" ~doc:"Full-adder tile packing (E3)")
    Term.(const run $ const ())

let configs_cmd =
  let run () = Report.config_delays Format.std_formatter () in
  Cmd.v (Cmd.info "configs" ~doc:"Configuration delay/area table (E4)")
    Term.(const run $ const ())

let compaction_cmd =
  let run paper = Report.compaction Format.std_formatter (scale_of paper) in
  Cmd.v (Cmd.info "compaction" ~doc:"Compaction ablation (E5)")
    Term.(const run $ paper_flag)

let tables_cmd =
  let run paper seed jobs =
    let rows = Experiments.run_all ~seed ~jobs (scale_of paper) in
    Report.table1 Format.std_formatter rows;
    Format.printf "@.";
    Report.table2 Format.std_formatter rows;
    Format.printf "@.";
    Report.headlines Format.std_formatter (Experiments.headlines rows);
    Format.printf "@.";
    Report.config_distribution Format.std_formatter rows
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce Tables 1 and 2 and the headline claims (E6-E9)")
    Term.(const run $ paper_flag $ seed_arg $ jobs_arg)

let design_of_name paper name =
  let scale = scale_of paper in
  match
    List.find_opt
      (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name)
      (Experiments.designs scale)
  with
  | Some (_, nl) -> nl
  | None ->
      Fmt.failwith "unknown design %s (alu, firewire, fpu, 'network switch')"
        name

let arch_of_name arch_name =
  match String.lowercase_ascii arch_name with
  | "granular" | "granular_plb" -> Arch.granular_plb
  | "granular2ff" | "granular_2ff" -> Arch.granular_2ff
  | "lut" | "lut_plb" -> Arch.lut_plb
  | other -> Fmt.failwith "unknown architecture %s" other

let design_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "design" ] ~doc:"Design: alu, firewire, fpu, network switch.")

let arch_arg =
  Arg.(
    value & opt string "granular"
    & info [ "a"; "arch" ] ~doc:"PLB architecture: granular, lut, or granular2ff.")

let verify_arg =
  let level =
    Arg.enum [ ("off", Flow.Off); ("fast", Flow.Fast); ("formal", Flow.Formal) ]
  in
  Arg.(
    value & opt level Flow.Fast
    & info [ "verify" ]
        ~doc:
          "Verification level: off (no checks), fast (lint + randomized \
           equivalence + physical invariants), or formal (fast plus \
           SAT-proven equivalence of every front-end stage).")

let policy_arg =
  let policy =
    Arg.enum [ ("default", Policy.default); ("strict", Policy.strict) ]
  in
  Arg.(
    value & opt policy Policy.default
    & info [ "policy" ]
        ~doc:
          "Retry-with-escalation policy: default (up to 4 attempts per \
           stage with escalating channel capacity / array size / anneal \
           restarts, and Formal->Fast degradation on undecided SAT \
           proofs), or strict (one attempt, any stage failure is final).")

let analyze_flag =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Run the static dataflow analyses (constant propagation, \
           X-propagation, redundancy, fanout shape) over the source \
           netlist and arm the region-ownership sanitizer around the \
           packing refinement.  Detection only: results are identical \
           with or without it.")

let fail_on_warning_flag =
  Arg.(
    value & flag
    & info [ "fail-on-warning" ]
        ~doc:"Exit with status 2 when any warning-level diagnostic is found.")

(* Unified diagnostic exit codes, shared by lint and analyze: errors are
   always exit 1; warnings are exit 2 only under --fail-on-warning. *)
let diag_exit ~fail_on_warning ~errors ~warnings =
  if errors then exit 1;
  if fail_on_warning && warnings then exit 2

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a hierarchical span trace of the flow (stage timings, \
           inner-loop counters, recovery events) and write it to $(docv) as \
           Chrome trace-event JSON (open in Perfetto / chrome://tracing, or \
           summarize with $(b,vpga report)).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a self-contained metrics snapshot of the run to $(docv): \
           counter totals, per-stage wall time and GC allocation, \
           histogram percentiles (p50/p90/p99) and convergence-series \
           summaries.  Compare two snapshots with $(b,vpga perf diff).")

(* --- the content-addressed stage cache ------------------------------- *)

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the content-addressed stage cache, recomputing every \
           stage.  Results are identical either way (a hit replays the \
           same deterministic artifact); this is the escape hatch for \
           timing uncached runs or ruling the cache out while debugging.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist cache entries under $(docv) so later runs start warm \
           (entries are versioned by schema tag, so stale formats never \
           match).  Without it the cache lives in memory for the \
           duration of the run.  Inspect and bound the store with \
           $(b,vpga cache).")

let cache_term =
  let mk no dir = if no then Cache.none else Cache.create ?dir () in
  Term.(const mk $ no_cache_flag $ cache_dir_arg)

let print_cache_stats cache =
  let cs = Cache.stats cache in
  let lookups = cs.Cache.hits + cs.Cache.misses in
  if Cache.enabled cache && lookups > 0 && cs.Cache.hits > 0 then
    Format.printf "cache: %d hit(s) in %d lookup(s) (%.0f%% hit rate)@."
      cs.Cache.hits lookups
      (100.0 *. Cache.hit_rate cs)

let flow_cmd =
  let run paper seed design arch_name verify policy trace_file metrics_file
      jobs analyze cache =
    let nl = design_of_name paper design in
    let arch = arch_of_name arch_name in
    let label = design ^ "/" ^ arch_name in
    let trace =
      match (trace_file, metrics_file) with
      | None, None -> Trace.null
      | _ -> Trace.create ~label ()
    in
    let pair =
      run_flow ~seed ~verify ~policy ~trace ~jobs ~analyze ~cache arch nl
    in
    let show (o : Flow.outcome) =
      Format.printf
        "flow %s: die %.0f um^2, cells %.0f um^2, wire %.0f um, top-10 slack %.1f ps, wns %.1f ps%s@."
        (match o.Flow.kind with Flow.Flow_a -> "a" | Flow.Flow_b -> "b")
        o.Flow.die_area o.Flow.cell_area o.Flow.wirelength
        o.Flow.avg_top10_slack o.Flow.wns
        (match o.Flow.array_dims with
        | Some (c, r) -> Printf.sprintf " [array %dx%d]" c r
        | None -> "")
    in
    Format.printf "%s on %s (compaction saved %.1f%%)@."
      (Netlist.design_name nl) arch.Arch.name
      (100.0 *. pair.Flow.a.Flow.compaction_gain);
    show pair.Flow.a;
    show pair.Flow.b;
    print_cache_stats cache;
    (match trace_file with
    | None -> ()
    | Some file ->
        Obs.Export.write_chrome ~process_name:"vpga flow" file [ trace ];
        Format.printf "wrote %s@." file);
    match metrics_file with
    | None -> ()
    | Some file ->
        Obs.Export.write_snapshot ~label file [ trace ];
        Format.printf "wrote %s@." file
  in
  Cmd.v (Cmd.info "flow" ~doc:"Run one design through one architecture")
    Term.(
      const run $ paper_flag $ seed_arg $ design_arg $ arch_arg $ verify_arg
      $ policy_arg $ trace_arg $ metrics_arg $ jobs_arg $ analyze_flag
      $ cache_term)

let sweep_cmd =
  let verbose_flag =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Also print the worker pool's accounting: tasks run, total \
             queue wait, and per-worker busy time.")
  in
  let run paper seed jobs verify policy verbose analyze trace_file cache =
    let traced = trace_file <> None in
    let reports, pstats =
      Experiments.run_tasks_with_stats ~seed ~jobs ~verify ~policy ~analyze
        ~traced ~cache (scale_of paper)
    in
    let failed =
      List.length (List.filter (fun r -> Result.is_error r.Experiments.t_result) reports)
    in
    List.iter
      (fun r ->
        let s = r.Experiments.t_recovery in
        match r.Experiments.t_result with
        | Ok pair ->
            Format.printf
              "%-16s %-14s ok      die %.0f/%.0f um^2  (retries %d, \
               escalations %d, degraded %d)@."
              r.Experiments.t_design r.Experiments.t_arch.Arch.name
              pair.Flow.a.Flow.die_area pair.Flow.b.Flow.die_area
              s.Recovery.retries s.Recovery.escalations s.Recovery.degraded
        | Error f ->
            Format.printf "%-16s %-14s FAILED  %s@." r.Experiments.t_design
              r.Experiments.t_arch.Arch.name (Fail.to_string f);
            List.iter (fun e -> Format.printf "    %s@." e) f.Fail.events)
      reports;
    let tot = Experiments.recovery reports in
    Format.printf
      "@.recovery: %d retried attempt(s), %d escalation(s), %d degraded \
       guarantee(s)@."
      tot.Recovery.retries tot.Recovery.escalations tot.Recovery.degraded;
    Format.printf "%d/%d task(s) completed@."
      (List.length reports - failed)
      (List.length reports);
    print_cache_stats cache;
    if verbose then begin
      let ms ns = Int64.to_float ns /. 1e6 in
      Format.printf "@.pool: %d task(s), total queue wait %.1f ms@."
        pstats.Pool.tasks
        (ms pstats.Pool.queue_wait_ns);
      Array.iteri
        (fun i busy -> Format.printf "  worker %d: busy %.1f ms@." i (ms busy))
        pstats.Pool.busy_ns
    end;
    (match trace_file with
    | None -> ()
    | Some file ->
        (* The pool's accounting rides along as its own thread: stats
           gauges plus the queue-wait histogram. *)
        let pool_trace =
          Trace.create ~tid:(List.length reports) ~label:"pool" ()
        in
        Pool.publish_stats pstats pool_trace;
        Obs.Export.write_chrome ~process_name:"vpga sweep" file
          (List.map (fun r -> r.Experiments.t_trace) reports @ [ pool_trace ]);
        Format.printf "wrote %s@." file);
    if failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the full (design x architecture) sweep with per-task fault \
          isolation: one task exhausting its retry policy is reported as a \
          failure record while the rest complete.  Exits nonzero only if a \
          task failed.")
    Term.(
      const run $ paper_flag $ seed_arg $ jobs_arg $ verify_arg $ policy_arg
      $ verbose_flag $ analyze_flag $ trace_arg $ cache_term)

let stress_cmd =
  let rates_arg =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.02; 0.05; 0.10 ]
      & info [ "rates" ] ~docv:"R,..."
          ~doc:"Defect rates to sweep (comma-separated fractions).")
  in
  let maps_arg =
    Arg.(
      value & opt positive_int 3
      & info [ "maps" ] ~docv:"N"
          ~doc:"Seeded defect maps per nonzero rate (the defect-free point \
                always runs one).")
  in
  let wmax_arg =
    Arg.(
      value & opt positive_int 64
      & info [ "w-max" ] ~docv:"W"
          ~doc:"Channel-capacity search ceiling; a map needing more is \
                counted as a casualty.")
  in
  let dist_arg =
    let dist =
      Arg.enum [ ("uniform", Defect.Uniform); ("clustered", Defect.Clustered) ]
    in
    Arg.(
      value & opt dist Defect.Uniform
      & info [ "dist" ]
          ~doc:"Defect distribution: uniform (independent sites) or \
                clustered (wafer-style blobs).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the robustness block (BENCH_sweep.json schema) instead \
                of the table.")
  in
  let design_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "design" ]
          ~doc:"Restrict the sweep to one design (default: all four).")
  in
  let run paper seed jobs rates maps w_max dist json design trace_file cache =
    let scale = scale_of paper in
    let designs =
      match design with
      | None -> None
      | Some name ->
          (* reuse the flow commands' lookup, keeping the canonical name *)
          ignore (design_of_name paper name);
          Some
            (List.filter
               (fun (n, _) ->
                 String.lowercase_ascii n = String.lowercase_ascii name)
               (Experiments.designs scale))
    in
    let traced = trace_file <> None in
    let report =
      Minchan.stress ~seed ~jobs ~dist ~rates ~maps_per_rate:maps ~w_max
        ~traced ~cache ?designs scale
    in
    if json then print_string (Minchan.json_report report)
    else begin
      Format.printf "%a@." Minchan.pp_report report;
      print_cache_stats cache
    end;
    match trace_file with
    | None -> ()
    | Some file ->
        Obs.Export.write_chrome ~process_name:"vpga stress" file
          (List.map (fun p -> p.Minchan.p_trace) report.Minchan.r_points);
        Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Congestion-stress Pareto exploration: per (design x architecture \
          x defect rate), binary-search the minimum routable channel width \
          over seeded defect maps and report survival rate, W_min, \
          wirelength, vias, worst slack and array area.  Deterministic at \
          every $(b,--jobs) setting.")
    Term.(
      const run $ paper_flag $ seed_arg $ jobs_arg $ rates_arg $ maps_arg
      $ wmax_arg $ dist_arg $ json_flag $ design_filter $ trace_arg
      $ cache_term)

let lint_cmd =
  let formal_flag =
    Arg.(
      value & flag
      & info [ "formal" ]
          ~doc:
            "Also prove each front-end stage equivalent to the source \
             netlist with the SAT-based checker.")
  in
  let run paper design arch_name formal fail_on_warning =
    let nl = design_of_name paper design in
    let arch = arch_of_name arch_name in
    let report title nl' =
      let ds = Lint.run nl' in
      Format.printf "== %s ==@." title;
      if ds = [] then Format.printf "clean@."
      else Diag.pp_report Format.std_formatter ds;
      ds
    in
    let stages =
      [
        ("source", nl);
        ("techmap " ^ arch.Arch.name, Techmap.map arch nl);
        ("compact " ^ arch.Arch.name, Compact.run arch nl);
        ( "buffered " ^ arch.Arch.name,
          Buffering.insert ~max_fanout:8 (Compact.run arch nl) );
      ]
    in
    let all = List.concat_map (fun (t, d) -> report t d) stages in
    if formal then
      List.iter
        (fun (title, d) ->
          if d != nl then begin
            Cec.prove ~stage:("cec:" ^ title) nl d;
            Format.printf "cec %s: proven equivalent@." title
          end)
        stages;
    diag_exit ~fail_on_warning ~errors:(Diag.has_errors all)
      ~warnings:(List.exists (fun d -> d.Diag.severity = Diag.Warning) all)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint a design and its front-end stages (combinational loops, \
          undriven pins, dead logic, duplicate names); exits 1 on errors, \
          2 on warnings under $(b,--fail-on-warning)")
    Term.(
      const run $ paper_flag $ design_arg $ arch_arg $ formal_flag
      $ fail_on_warning_flag)

let analyze_cmd =
  let simplify_flag =
    Arg.(
      value & flag
      & info [ "simplify" ]
          ~doc:
            "Also run the implied-constant / redundancy simplifier on each \
             stage; every rewritten netlist is proven equivalent to its \
             source by the SAT-based CEC before being reported.")
  in
  let run paper design arch_name simplify fail_on_warning =
    let nl = design_of_name paper design in
    let arch = arch_of_name arch_name in
    let stages =
      [
        ("source", nl);
        ("techmap " ^ arch.Arch.name, Techmap.map arch nl);
        ("compact " ^ arch.Arch.name, Compact.run arch nl);
        ( "buffered " ^ arch.Arch.name,
          Buffering.insert ~max_fanout:8 (Compact.run arch nl) );
      ]
    in
    let all =
      List.concat_map
        (fun (title, nl') ->
          let a = Analysis.run ~simplify nl' in
          Format.printf "== %s ==@." title;
          Format.printf "@[<v>%a@]@." Analysis.pp a;
          Analysis.diags a)
        stages
    in
    diag_exit ~fail_on_warning ~errors:(Diag.has_errors all)
      ~warnings:(List.exists (fun d -> d.Diag.severity = Diag.Warning) all)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the dataflow analyses (constant propagation, X-propagation, \
          structural redundancy, fanout/depth shape) over a design and its \
          front-end stages; exits 1 on errors, 2 on warnings under \
          $(b,--fail-on-warning)")
    Term.(
      const run $ paper_flag $ design_arg $ arch_arg $ simplify_flag
      $ fail_on_warning_flag)

let export_cmd =
  let design =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "design" ] ~doc:"Design: alu, firewire, fpu, network switch.")
  in
  let prefix =
    Arg.(value & opt string "out" & info [ "o" ] ~doc:"Output file prefix.")
  in
  let run paper seed design prefix =
    let nl = design_of_name paper design in
    let arch = Arch.granular_plb in
    let compacted = Compact.run arch nl in
    let buffered = Buffering.insert ~max_fanout:8 compacted in
    let pl = Placement.create buffered in
    Global_place.place ~seed pl;
    let q = Quadrisect.legalize arch pl in
    Quadrisect.snap q pl;
    Export.write_file (prefix ^ ".v") (Export.verilog buffered);
    Export.write_file (prefix ^ ".def") (Export.def_ ~packing:q pl);
    Export.write_file (prefix ^ ".svg") (Export.svg q pl);
    Format.printf "wrote %s.v, %s.def, %s.svg@." prefix prefix prefix
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Pack a design and write Verilog/DEF/SVG artifacts")
    Term.(const run $ paper_flag $ seed_arg $ design $ prefix)

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON written by $(b,vpga flow --trace).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as JSON (schema vpga-report/1) instead of \
                the text tables.")
  in
  let run file json =
    match Obs.Export.load file with
    | Ok doc ->
        if json then
          print_endline (Obs.Json.to_string (Obs.Export.report_json doc))
        else Obs.Export.report Format.std_formatter doc
    | Error msg -> Fmt.failwith "%s: %s" file msg
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a recorded flow trace: per-stage wall time, allocation \
          and share, inner-loop counters, convergence series, and recovery \
          instants")
    Term.(const run $ file $ json_flag)

let perf_cmd =
  let snapshot_file idx name =
    Arg.(
      required
      & pos idx (some file) None
      & info [] ~docv:name
          ~doc:
            (Printf.sprintf
               "The %s metrics snapshot (written by $(b,vpga flow \
                --metrics))."
               (String.lowercase_ascii name)))
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Allowed fractional growth per metric before it counts as a \
             regression (time-valued metrics also get an absolute noise \
             floor).")
  in
  let diff_cmd =
    let run base_file cur_file tolerance =
      let load file =
        match Obs.Export.load file with
        | Ok doc -> doc
        | Error msg ->
            Format.eprintf "%s: %s@." file msg;
            exit 2
      in
      let base = load base_file and current = load cur_file in
      let deltas = Obs.Metrics.diff ~tolerance ~base ~current () in
      Format.printf "%a@." Obs.Metrics.pp_diff deltas;
      if Obs.Metrics.regressions deltas <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two metrics snapshots (counters, per-stage wall/alloc, \
            histogram percentiles, convergence iteration counts); exits 1 \
            when any metric grew past $(b,--tolerance), 2 when a snapshot \
            cannot be read.")
      Term.(
        const run $ snapshot_file 0 "BASE" $ snapshot_file 1 "CURRENT"
        $ tolerance_arg)
  in
  Cmd.group
    (Cmd.info "perf"
       ~doc:"Performance-trajectory tools over metrics snapshots")
    [ diff_cmd ]

let cache_cmd =
  let dir_arg =
    Arg.(
      value
      & opt string (Cache.default_dir ())
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Cache directory to operate on (default: \
             \\$XDG_CACHE_HOME/vpga, else ~/.cache/vpga).")
  in
  let stats_cmd =
    let run dir =
      match Cache.disk_stats ~dir with
      | [] -> Format.printf "%s: no cache entries@." dir
      | stages ->
          Format.printf "%-14s %-16s %8s %12s@." "schema" "stage" "entries"
            "bytes";
          let entries = ref 0 and bytes = ref 0 in
          List.iter
            (fun s ->
              entries := !entries + s.Cache.d_entries;
              bytes := !bytes + s.Cache.d_bytes;
              Format.printf "%-14s %-16s %8d %12d@." s.Cache.d_schema
                s.Cache.d_stage s.Cache.d_entries s.Cache.d_bytes)
            stages;
          Format.printf "total: %d entries, %d bytes in %s@." !entries !bytes
            dir
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Per-schema, per-stage entry counts and sizes of an on-disk cache \
            (all schema generations, including stale ones).")
      Term.(const run $ dir_arg)
  in
  let clear_cmd =
    let run dir =
      let n = Cache.disk_clear ~dir in
      Format.printf "removed %d entr%s from %s@." n
        (if n = 1 then "y" else "ies")
        dir
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Remove every on-disk cache entry, of every schema generation.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let max_bytes_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"N"
            ~doc:"Target store size in bytes.")
    in
    let run dir max_bytes =
      let r = Cache.disk_gc ~dir ~max_bytes in
      Format.printf
        "kept %d entries (%d bytes), evicted %d entries (%d bytes)@."
        r.Cache.gc_kept r.Cache.gc_kept_bytes r.Cache.gc_removed
        r.Cache.gc_removed_bytes
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Evict least-recently-used entries (every hit refreshes its \
            entry) until the store fits in $(b,--max-bytes).")
      Term.(const run $ dir_arg $ max_bytes_arg)
  in
  let check_cmd =
    let run paper seed =
      let nl = design_of_name paper "alu" in
      (* A private throwaway store: never touches the user's cache dir. *)
      let dir =
        let f = Filename.temp_file "vpga-cachecheck" "" in
        Sys.remove f;
        f
      in
      let archs = [ Arch.lut_plb; Arch.granular_plb ] in
      let flow cache arch = run_flow ~seed ~cache arch nl in
      let cold_cache = Cache.create ~dir () in
      let cold = List.map (flow cold_cache) archs in
      (* Fresh in-memory table: every warm hit must come from disk. *)
      let warm_cache = Cache.create ~dir () in
      let warm = List.map (flow warm_cache) archs in
      let ws = Cache.stats warm_cache in
      let identical = List.for_all2 (fun a b -> compare a b = 0) cold warm in
      let entries = Cache.disk_clear ~dir in
      let rec rm_tree d =
        if Sys.file_exists d && Sys.is_directory d then begin
          Array.iter (fun f -> rm_tree (Filename.concat d f)) (Sys.readdir d);
          try Sys.rmdir d with Sys_error _ -> ()
        end
      in
      rm_tree dir;
      Format.printf
        "cold run stored %d entr%s; warm run: %d hit(s) in %d lookup(s) \
         (%.0f%% hit rate)@."
        entries
        (if entries = 1 then "y" else "ies")
        ws.Cache.hits
        (ws.Cache.hits + ws.Cache.misses)
        (100.0 *. Cache.hit_rate ws);
      if not identical then begin
        Format.printf "cache check FAILED: warm outcomes differ from cold@.";
        exit 1
      end;
      if ws.Cache.hits = 0 then begin
        Format.printf "cache check FAILED: warm run hit nothing@.";
        exit 1
      end;
      Format.printf "cache check ok: warm outcomes identical to cold@."
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Self-test the cache end to end: run a flow cold against a \
            throwaway disk store, rerun it warm from a fresh process-level \
            table, and verify the warm outcomes are identical with a \
            nonzero hit rate.  Exits 1 on any divergence.")
      Term.(const run $ paper_flag $ seed_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect, bound and validate the content-addressed stage cache \
          (see $(b,--cache-dir) on flow/sweep/stress).")
    [ stats_cmd; clear_cmd; gc_cmd; check_cmd ]

let () =
  let doc = "VPGA logic-block granularity exploration (DATE 2004 reproduction)" in
  let info = Cmd.info "vpga" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            s3_cmd;
            fa_cmd;
            configs_cmd;
            compaction_cmd;
            tables_cmd;
            flow_cmd;
            sweep_cmd;
            stress_cmd;
            lint_cmd;
            analyze_cmd;
            export_cmd;
            report_cmd;
            perf_cmd;
            cache_cmd;
          ]))
