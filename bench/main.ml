(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (at paper-comparable design sizes), then times the flow's
   kernels with Bechamel.  Writes BENCH_sweep.json (sweep wall-clock,
   worker count, per-kernel estimates) so successive revisions have a
   machine-readable perf trajectory.

     dune exec bench/main.exe -- [-jobs N] [-json FILE]

   The experiment tables correspond to DESIGN.md's per-experiment index:
   E1/E2 (S3 classification, Figure 2), E3 (full adder), E4 (configuration
   delay/area), E5 (compaction ablation), E6 (Table 1), E7 (Table 2),
   E8 (headline claims), E9 (configuration distribution), E10 (flop-rich
   PLB variant), E11 (flow ablations), E12 (power), E13 (vias), E14 (routing
   styles), E15 (defect stress: minimum channel width vs defect rate). *)

open Vpga_core.Vpga

let jobs = ref (Vpga_par.Pool.default_jobs ())
let json_path = ref "BENCH_sweep.json"
let perfdiff = ref false
let tolerance = ref 0.25

let set_jobs n =
  if n < 1 then
    raise (Arg.Bad (Printf.sprintf "-jobs expects a positive count, got %d" n));
  jobs := n

let set_tolerance f =
  if f <= 0.0 then
    raise (Arg.Bad (Printf.sprintf "-tolerance expects a positive fraction, got %g" f));
  tolerance := f

let () =
  Arg.parse
    [
      ("-jobs", Arg.Int set_jobs, "N  worker domains for the E6-E9 flow sweep");
      ("-json", Arg.Set_string json_path, "FILE  where to write the JSON record");
      ( "-perfdiff",
        Arg.Set perfdiff,
        "  skip the tables; re-run the kernels and diff against the \
         committed baseline, exiting nonzero on regression" );
      ( "-tolerance",
        Arg.Float set_tolerance,
        "FRAC  allowed fractional per-kernel slowdown for -perfdiff \
         (default 0.25)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe [-jobs N] [-json FILE] [-perfdiff [-tolerance FRAC]]"

let sweep_seconds = ref 0.0
let sweep_recovery = ref Recovery.zero
let sweep_stages : (string * float) list ref = ref []
let sweep_alloc : (string * (float * float * int)) list ref = ref []
let sweep_percentiles : (string * (int * float * float * float)) list ref =
  ref []
let robustness : Minchan.report option ref = ref None

(* E16, the stage cache: cold vs warm wall for the jobs=1 paper sweep
   (acceptance: warm well under half of cold), plus a load-generator run
   of mixed repeated/overlapping Test-scale requests with per-request
   latency percentiles split by cold (first occurrence) vs warm. *)
type cache_sweep = {
  cs_cold_s : float;
  cs_warm_s : float;
  cs_hits : int;
  cs_lookups : int;
  cs_identical : bool;
}

type cache_load = {
  cl_requests : int;
  cl_distinct : int;
  cl_hit_rate : float;
  cl_cold_ms : int * float * float * float;  (** count, p50, p90, p99 *)
  cl_warm_ms : int * float * float * float;
}

let cache_sweep : cache_sweep option ref = ref None
let cache_load : cache_load option ref = ref None

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let reproduce_tables () =
  section "E1/E2: S3 classification of 3-input functions (Figure 2)";
  Report.s3 Format.std_formatter ();
  section "E3: Full-adder packing (Section 2.2)";
  Report.full_adder Format.std_formatter ();
  section "E4: Logic-configuration delay and area (Section 2.3)";
  Report.config_delays Format.std_formatter ();
  section "E5: Regularity-driven compaction ablation (Section 3.1)";
  Report.compaction Format.std_formatter Experiments.Paper;
  section "E6-E9: Full evaluation (paper-scale designs, both PLBs, both flows)";
  let t0 = Unix.gettimeofday () in
  let reports, pstats =
    Experiments.run_tasks_with_stats ~seed:1 ~jobs:!jobs ~traced:true
      Experiments.Paper
  in
  sweep_seconds := Unix.gettimeofday () -. t0;
  sweep_recovery := Experiments.recovery reports;
  let traces = List.map (fun r -> r.Experiments.t_trace) reports in
  (* The pool's accounting becomes its own trace: stats gauges plus the
     per-task queue-wait histogram, so scheduling health lands in the
     percentile block below alongside the flow histograms. *)
  let pool_trace = Trace.create ~tid:(List.length reports) ~label:"pool" () in
  Pool.publish_stats pstats pool_trace;
  (* Per-stage wall time and GC allocation summed across the sweep's
     traces: where the sweep's seconds and words actually go, revision
     over revision. *)
  sweep_stages := Obs.Export.stage_totals traces;
  sweep_alloc := Obs.Export.stage_allocs traces;
  sweep_percentiles :=
    List.map
      (fun (name, h) ->
        ( name,
          ( Obs.Metrics.Histogram.count h,
            Obs.Metrics.Histogram.percentile h 50.0,
            Obs.Metrics.Histogram.percentile h 90.0,
            Obs.Metrics.Histogram.percentile h 99.0 ) ))
      (Obs.Export.merged_histograms (traces @ [ pool_trace ]));
  let rows = Experiments.rows reports in
  Format.printf
    "(flow sweep took %.1f s on %d worker domain%s; %d retried attempt(s), \
     %d escalation(s), %d degraded guarantee(s))@.@."
    !sweep_seconds !jobs
    (if !jobs = 1 then "" else "s")
    !sweep_recovery.Recovery.retries !sweep_recovery.Recovery.escalations
    !sweep_recovery.Recovery.degraded;
  Report.table1 Format.std_formatter rows;
  Format.printf "@.";
  Report.table2 Format.std_formatter rows;
  Format.printf "@.";
  Report.headlines Format.std_formatter (Experiments.headlines rows);
  Format.printf "@.";
  Report.config_distribution Format.std_formatter rows;
  section
    "E10: Domain-specific PLB exploration (flop-rich granular variant)";
  Report.firewire_remedy Format.std_formatter Experiments.Paper;
  section "E11: Flow ablations (refinement loop, criticality weighting)";
  Report.ablation Format.std_formatter Experiments.Paper;
  section "E12: Power comparison (flow b)";
  Report.power Format.std_formatter rows;
  section "E13: Configuration-via accounting";
  Report.vias Format.std_formatter Experiments.Paper;
  section "E14: Regular vs custom routing (future work)";
  Report.routing_styles Format.std_formatter Experiments.Paper;
  section "E15: Defect stress (minimum channel width vs defect rate)";
  (* Test-scale designs: each Pareto cell re-routes its packing O(log w)
     times per defect map, so paper-scale instances would dominate the
     whole bench; the trend (W_min and survival vs rate, per arch) is the
     tracked quantity, not absolute magnitudes. *)
  let rep =
    Minchan.stress ~seed:1 ~jobs:!jobs ~maps_per_rate:2 Experiments.Test
  in
  robustness := Some rep;
  Format.printf "%a@." Minchan.pp_report rep;
  section "E16: Content-addressed stage cache (cold vs warm, load generator)";
  (* Cold vs warm: the same jobs=1 paper sweep twice against one shared
     cache.  The warm run must replay every stage from the store with
     identical outcomes — the memoization contract, timed end to end. *)
  let cache = Cache.create () in
  let timed_sweep () =
    let t0 = Unix.gettimeofday () in
    let reports = Experiments.run_tasks ~seed:1 ~jobs:1 ~cache Experiments.Paper in
    (Unix.gettimeofday () -. t0, reports)
  in
  let cold_s, cold_reports = timed_sweep () in
  let warm_s, warm_reports = timed_sweep () in
  let cs = Cache.stats cache in
  let identical =
    List.for_all2
      (fun (a : Experiments.task_report) b ->
        compare a.Experiments.t_result b.Experiments.t_result = 0)
      cold_reports warm_reports
  in
  cache_sweep :=
    Some
      {
        cs_cold_s = cold_s;
        cs_warm_s = warm_s;
        cs_hits = cs.Cache.hits;
        cs_lookups = cs.Cache.hits + cs.Cache.misses;
        cs_identical = identical;
      };
  Format.printf
    "paper sweep (jobs=1): cold %.2f s, warm %.2f s (%.0f%% of cold); %d \
     hit(s) in %d lookup(s); outcomes %s@."
    cold_s warm_s
    (100.0 *. warm_s /. cold_s)
    cs.Cache.hits
    (cs.Cache.hits + cs.Cache.misses)
    (if identical then "identical" else "DIVERGED");
  (* Load generator: a deterministic pseudo-random stream of requests
     over a pool of (design, arch, seed) jobs, many repeated, all served
     by one shared cache — the memoized-service shape rather than the
     batch-sweep shape. *)
  let pool =
    List.concat_map
      (fun (_, nl) ->
        List.concat_map
          (fun arch -> List.map (fun seed -> (nl, arch, seed)) [ 1; 2; 3 ])
          [ Arch.lut_plb; Arch.granular_plb ])
      (Experiments.designs Experiments.Test)
  in
  let pool = Array.of_list pool in
  let n_requests = 240 in
  let rng = Random.State.make [| 0xC0FFEE; 16 |] in
  let cache = Cache.create () in
  let seen = Hashtbl.create 64 in
  let cold_h = Obs.Metrics.Histogram.create () in
  let warm_h = Obs.Metrics.Histogram.create () in
  for _ = 1 to n_requests do
    let i = Random.State.int rng (Array.length pool) in
    let nl, arch, seed = pool.(i) in
    let t0 = Unix.gettimeofday () in
    ignore (Flow.run ~seed ~cache arch nl);
    let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    let h = if Hashtbl.mem seen i then warm_h else cold_h in
    Hashtbl.replace seen i ();
    Obs.Metrics.Histogram.add h ms
  done;
  let cs = Cache.stats cache in
  let pctl h =
    Obs.Metrics.Histogram.
      (count h, percentile h 50.0, percentile h 90.0, percentile h 99.0)
  in
  cache_load :=
    Some
      {
        cl_requests = n_requests;
        cl_distinct = Hashtbl.length seen;
        cl_hit_rate = Cache.hit_rate cs;
        cl_cold_ms = pctl cold_h;
        cl_warm_ms = pctl warm_h;
      };
  let pp_pctl name (count, p50, p90, p99) =
    Format.printf "  %-14s %4d request(s)  p50 %7.2f ms  p90 %7.2f ms  p99 %7.2f ms@."
      name count p50 p90 p99
  in
  Format.printf
    "load generator: %d request(s) over %d distinct job(s), hit rate %.0f%%@."
    n_requests (Hashtbl.length seen)
    (100.0 *. Cache.hit_rate cs);
  pp_pctl "cold (first)" (pctl cold_h);
  pp_pctl "warm (repeat)" (pctl warm_h)

(* ---- Bechamel micro-benchmarks: one per experiment/table kernel ---- *)

open Bechamel
open Toolkit

let alu8 = lazy (Alu.build ~width:8 ())
let fixture_compacted =
  lazy (Compact.run Arch.granular_plb (Lazy.force alu8))
let fixture_placed =
  lazy
    (let nl = Buffering.insert ~max_fanout:8 (Lazy.force fixture_compacted) in
     let pl = Placement.create nl in
     Global_place.place ~seed:3 pl;
     pl)

(* A legalized, snapped packing for the refinement kernels (each kernel
   gets its own so refinement moves never disturb a shared fixture). *)
let make_packed () =
  let nl = Buffering.insert ~max_fanout:8 (Lazy.force fixture_compacted) in
  let pl = Placement.create nl in
  Global_place.place ~seed:3 pl;
  let q = Quadrisect.legalize Arch.granular_plb pl in
  let side = sqrt Arch.granular_plb.Arch.tile_area in
  let pl_b =
    {
      pl with
      Placement.die_w = float_of_int q.Quadrisect.cols *. side;
      die_h = float_of_int q.Quadrisect.rows *. side;
    }
  in
  Quadrisect.snap q pl_b;
  (q, pl_b)

let fixture_packed = lazy (make_packed ())
let fixture_packed_regions = lazy (make_packed ())

let bench_tests =
  [
    (* E1: the Section-2 classification *)
    Test.make ~name:"e1_s3_census" (Staged.stage (fun () -> ignore (S3.census ())));
    (* E3: full-adder packing decision *)
    Test.make ~name:"e3_full_adder_tiles"
      (Staged.stage (fun () ->
           ignore (Full_adder.tiles_needed Arch.granular_plb)));
    (* E5 kernel: technology map + compact a small ALU *)
    Test.make ~name:"e5_techmap_alu8"
      (Staged.stage (fun () ->
           ignore (Techmap.map Arch.granular_plb (Lazy.force alu8))));
    Test.make ~name:"e5_compact_alu8"
      (Staged.stage (fun () ->
           ignore (Compact.run Arch.granular_plb (Lazy.force alu8))));
    (* E6 kernels: the physical pipeline stages behind Table 1 *)
    Test.make ~name:"e6_global_place"
      (Staged.stage (fun () ->
           let pl = Placement.create (Lazy.force fixture_compacted) in
           Global_place.place ~seed:3 pl));
    Test.make ~name:"e6_anneal_20k_moves"
      (Staged.stage (fun () ->
           ignore
             (Anneal.refine ~iterations:20000 ~seed:5 (Lazy.force fixture_placed))));
    Test.make ~name:"e6_quadrisect_pack"
      (Staged.stage (fun () ->
           ignore (Quadrisect.legalize Arch.granular_plb (Lazy.force fixture_placed))));
    (* The packing <-> physical-synthesis refinement loop (mutates its own
       fixture in place, like the annealer kernel above). *)
    Test.make ~name:"e6_refine_pack"
      (Staged.stage (fun () ->
           let q, pl_b = Lazy.force fixture_packed in
           ignore (Refine.run ~iterations:20_000 ~seed:7 q pl_b)));
    (* The region-decomposed variant: 2x2 grid plus boundary pass, the
       flow's configuration on larger arrays. *)
    Test.make ~name:"e6_refine_regions"
      (Staged.stage (fun () ->
           let q, pl_b = Lazy.force fixture_packed_regions in
           ignore
             (Refine.run ~iterations:20_000 ~regions:2 ~seed:7 q pl_b)));
    (* E7 kernels: routing and timing behind Table 2 *)
    Test.make ~name:"e7_pathfinder_route"
      (Staged.stage (fun () ->
           ignore (Pathfinder.route_placement (Lazy.force fixture_placed))));
    Test.make ~name:"e7_sta"
      (Staged.stage (fun () ->
           ignore (Sta.run (Lazy.force fixture_compacted))));
    (* E7 detailed routing and the packing refinement loop *)
    Test.make ~name:"e7_detail_route"
      (Staged.stage (fun () ->
           let r = Pathfinder.route_placement (Lazy.force fixture_placed) in
           if r.Pathfinder.final_overflow = 0 then
             ignore (Detail.run r.Pathfinder.grid r.Pathfinder.routes)));
    (* E15 kernel: the whole minimum-channel-width search (front-end once
       plus the probe bisection) on the small ALU, defect-free *)
    Test.make ~name:"minchan_alu8"
      (Staged.stage (fun () ->
           ignore (Minchan.search ~w_max:32 Arch.granular_plb (Lazy.force alu8))));
    (* FlowMap (exact max-flow labeling) on the ALU AIG *)
    Test.make ~name:"flowmap_labels_alu8"
      (Staged.stage (fun () ->
           let b = Aig.of_netlist (Lazy.force alu8) in
           ignore (Flowmap.labels b.Aig.aig ~k:3)));
    (* E16 kernel: a fully warm flow — every stage a cache hit — so the
       hit path (key digesting, Marshal revival, event replay) sits under
       the same perfdiff gate as the compute kernels. *)
    Test.make ~name:"cache_warm_flow_alu8"
      (Staged.stage
         (let warmed =
            lazy
              (let c = Cache.create () in
               ignore (Flow.run ~seed:3 ~cache:c Arch.granular_plb (Lazy.force alu8));
               c)
          in
          fun () ->
            ignore
              (Flow.run ~seed:3 ~cache:(Lazy.force warmed) Arch.granular_plb
                 (Lazy.force alu8))));
  ]

let run_benchmarks () =
  section "Kernel micro-benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols_results = Analyze.all ols instance results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let short =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Format.printf "  %-24s %12.0f ns/run@." short est;
              (short, est) :: acc
          | Some _ | None ->
              Format.printf "  %-24s (no estimate)@." short;
              acc)
        ols_results [])
    bench_tests

(* Machine-readable perf record: the sweep wall-clock and the per-kernel
   Bechamel estimates, one JSON object per revision to diff against. *)
let write_json kernels =
  let oc = open_out !json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"vpga-bench-sweep/5\",\n";
  out "  \"jobs\": %d,\n" !jobs;
  out "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"sweep_wall_s\": %.3f,\n" !sweep_seconds;
  out "  \"recovery\": { \"retries\": %d, \"escalations\": %d, \"degraded\": %d },\n"
    !sweep_recovery.Recovery.retries !sweep_recovery.Recovery.escalations
    !sweep_recovery.Recovery.degraded;
  (* CPU seconds per flow stage, summed over the sweep's (design x arch)
     tasks; name-sorted so revisions diff cleanly. *)
  out "  \"stages_s\": {\n";
  List.iteri
    (fun i (name, secs) ->
      out "    %S: %.3f%s\n" name secs
        (if i = List.length !sweep_stages - 1 then "" else ","))
    !sweep_stages;
  out "  },\n";
  (* GC allocation per flow stage over the same sweep: minor/major words
     and major collections, the memory half of the stage accounting. *)
  out "  \"stages_alloc\": {\n";
  List.iteri
    (fun i (name, (minor_w, major_w, colls)) ->
      out
        "    %S: { \"minor_words\": %.0f, \"major_words\": %.0f, \
         \"major_collections\": %d }%s\n"
        name minor_w major_w colls
        (if i = List.length !sweep_alloc - 1 then "" else ","))
    !sweep_alloc;
  out "  },\n";
  (* Distribution tails for the sweep's histograms (per-net wirelength,
     span durations, occupancy probe costs, pool queue waits): exact
     nearest-rank p50/p90/p99 over all retained samples. *)
  out "  \"percentiles\": {\n";
  List.iteri
    (fun i (name, (count, p50, p90, p99)) ->
      out
        "    %S: { \"count\": %d, \"p50\": %.3f, \"p90\": %.3f, \
         \"p99\": %.3f }%s\n"
        name count p50 p90 p99
        (if i = List.length !sweep_percentiles - 1 then "" else ","))
    !sweep_percentiles;
  out "  },\n";
  (match !robustness with
  | Some r -> out "  \"robustness\": %s,\n" (Minchan.json_report ~indent:"    " r)
  | None -> ());
  (* The stage cache's headline numbers: warm-over-cold wall ratio for
     the jobs=1 paper sweep (the memoization payoff, tracked revision
     over revision) and the load generator's latency split. *)
  (match (!cache_sweep, !cache_load) with
  | Some s, Some l ->
      out "  \"cache\": {\n";
      out "    \"sweep_cold_wall_s\": %.3f,\n" s.cs_cold_s;
      out "    \"sweep_warm_wall_s\": %.3f,\n" s.cs_warm_s;
      out "    \"warm_over_cold\": %.4f,\n" (s.cs_warm_s /. s.cs_cold_s);
      out "    \"sweep_hits\": %d,\n" s.cs_hits;
      out "    \"sweep_lookups\": %d,\n" s.cs_lookups;
      out "    \"sweep_outcomes_identical\": %b,\n" s.cs_identical;
      let pctl name (count, p50, p90, p99) last =
        out
          "      %S: { \"count\": %d, \"p50\": %.3f, \"p90\": %.3f, \
           \"p99\": %.3f }%s\n"
          name count p50 p90 p99
          (if last then "" else ",")
      in
      out "    \"load\": {\n";
      out "      \"requests\": %d,\n" l.cl_requests;
      out "      \"distinct_jobs\": %d,\n" l.cl_distinct;
      out "      \"hit_rate\": %.4f,\n" l.cl_hit_rate;
      pctl "cold_ms" l.cl_cold_ms false;
      pctl "warm_ms" l.cl_warm_ms true;
      out "    }\n";
      out "  },\n"
  | _ -> ());
  out "  \"kernels_ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns) ->
      out "    %S: %.1f%s\n" name ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  out "  }\n}\n";
  close_out oc;
  Format.printf "@.wrote %s@." !json_path

(* Perf regression gate: re-run the kernels and compare against the
   committed baseline record, failing loudly past the tolerance.  Bechamel
   estimates on shared machines are noisy, so the tolerance is a fraction
   (default 0.25 = fail on >25 % slowdown); speedups and kernels without a
   baseline entry are reported but never fail. *)
let run_perfdiff () =
  let baseline =
    let ic = open_in !json_path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Obs.Json.parse s with
    | Error msg ->
        Format.printf "perfdiff: cannot parse %s: %s@." !json_path msg;
        exit 2
    | Ok j -> (
        match Obs.Json.member "kernels_ns_per_run" j with
        | Some (Obs.Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                Option.map (fun f -> (k, f)) (Obs.Json.to_float v))
              fields
        | Some _ | None ->
            Format.printf "perfdiff: %s has no kernels_ns_per_run object@."
              !json_path;
            exit 2)
  in
  let kernels = run_benchmarks () in
  section
    (Printf.sprintf "Per-kernel delta vs %s (tolerance %.0f%%)" !json_path
       (100.0 *. !tolerance));
  let regressions = ref 0 in
  List.iter
    (fun (name, ns) ->
      match List.assoc_opt name baseline with
      | None -> Format.printf "  %-24s %12.0f ns/run  (no baseline)@." name ns
      | Some base ->
          let ratio = ns /. base in
          let flag =
            if ratio > 1.0 +. !tolerance then begin
              incr regressions;
              "  REGRESSION"
            end
            else ""
          in
          Format.printf "  %-24s %12.0f ns/run  %+7.1f%%%s@." name ns
            (100.0 *. (ratio -. 1.0))
            flag)
    (List.rev kernels);
  if !regressions > 0 then begin
    Format.printf "@.perfdiff: %d kernel(s) regressed beyond %.0f%%@."
      !regressions
      (100.0 *. !tolerance);
    exit 1
  end
  else Format.printf "@.perfdiff: all kernels within tolerance.@."

let () =
  Format.printf "VPGA granularity exploration: paper-reproduction benchmark@.";
  if !perfdiff then run_perfdiff ()
  else begin
    reproduce_tables ();
    let kernels = run_benchmarks () in
    write_json kernels;
    Format.printf "@.done.@."
  end
