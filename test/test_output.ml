(* Tests for the flow's output artifacts (detailed routing, Verilog/DEF/SVG
   export) and the timing-driven cover option. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Levelize = Vpga_netlist.Levelize
module Arch = Vpga_plb.Arch
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Detail = Vpga_route.Detail
module Pathfinder = Vpga_route.Pathfinder
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Quadrisect = Vpga_pack.Quadrisect
module Compact = Vpga_mapper.Compact
module Export = Vpga_flow.Export
module Sta = Vpga_timing.Sta

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let rec go i acc =
    if i + String.length needle > String.length hay then acc
    else if String.sub hay i (String.length needle) = needle then
      go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* --- Detailed routing -------------------------------------------------- *)

let test_detail_straight () =
  let grid = Grid.create ~cols:6 ~rows:1 ~bin_w:10.0 ~bin_h:10.0 ~capacity:3 () in
  match Router.route_net grid ~pres_fac:1.0 ~pins:[ 0; 5 ] with
  | Some edges ->
      Router.commit grid edges;
      let routes =
        [ { Router.net = [| 0; 1 |]; edges; wirelength = 50.0 } ]
      in
      let d = Detail.run grid routes in
      (match Detail.validate d routes with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* a straight run stays on one track: no vias *)
      Alcotest.(check int) "straight run has no vias" 0 d.Detail.net_vias.(0)
  | None -> Alcotest.fail "unroutable"

let test_detail_bend_costs_via () =
  let grid = Grid.create ~cols:4 ~rows:4 ~bin_w:10.0 ~bin_h:10.0 ~capacity:3 () in
  match Router.route_net grid ~pres_fac:1.0 ~pins:[ 0; 15 ] with
  | Some edges ->
      Router.commit grid edges;
      let routes = [ { Router.net = [| 0; 1 |]; edges; wirelength = 60.0 } ] in
      let d = Detail.run grid routes in
      Alcotest.(check bool) "corner-to-corner path bends" true
        (d.Detail.net_vias.(0) >= 1)
  | None -> Alcotest.fail "unroutable"

let test_detail_on_design () =
  let nl =
    Compact.run Arch.granular_plb (Vpga_designs.Alu.build ~width:6 ())
  in
  let pl = Placement.create nl in
  Global.place ~seed:3 pl;
  let r = Pathfinder.route_placement pl in
  Alcotest.(check int) "overflow-free global" 0 r.Pathfinder.final_overflow;
  let d = Detail.run r.Pathfinder.grid r.Pathfinder.routes in
  (match Detail.validate d r.Pathfinder.routes with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "tracks within capacity" true
    (d.Detail.max_track < r.Pathfinder.grid.Grid.capacity);
  Alcotest.(check bool) "some vias on a real design" true (d.Detail.total_vias > 0)

(* --- Export ------------------------------------------------------------- *)

let full_adder () =
  let nl = Netlist.create ~name:"fa" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let cin = Netlist.input nl "cin" in
  ignore (Netlist.output nl "sum" (Netlist.gate nl Kind.Xor3 [| a; b; cin |]));
  ignore (Netlist.output nl "cout" (Netlist.gate nl Kind.Maj3 [| a; b; cin |]));
  nl

let test_verilog_structure () =
  let v = Export.verilog (full_adder ()) in
  Alcotest.(check bool) "module header" true (contains v "module fa(clk, a, b, cin, sum, cout);");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule");
  Alcotest.(check bool) "xor3 comment" true (contains v "// xor3");
  Alcotest.(check bool) "maj3 comment" true (contains v "// maj3");
  Alcotest.(check int) "two output assigns + two logic assigns" 4
    (count_substring v "assign ")

let test_verilog_sop () =
  (* single and2: exact sum-of-products text *)
  let nl = Netlist.create ~name:"tiny" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  ignore (Netlist.output nl "y" (Netlist.gate nl Kind.And2 [| a; b |]));
  let v = Export.verilog nl in
  Alcotest.(check bool) "minterm" true (contains v "(n0 & n1)")

let test_verilog_sequential () =
  let nl = Netlist.create ~name:"seq" () in
  let d = Netlist.input nl "d" in
  let q = Netlist.dff nl in
  Netlist.connect nl ~flop:q ~d;
  ignore (Netlist.output nl "q" q);
  let v = Export.verilog nl in
  Alcotest.(check bool) "clocked process" true (contains v "always @(posedge clk)");
  Alcotest.(check bool) "nonblocking assign" true (contains v "<=")

let packed_fixture () =
  let nl =
    Compact.run Arch.granular_plb (Vpga_designs.Alu.build ~width:4 ())
  in
  let pl = Placement.create nl in
  Global.place ~seed:3 pl;
  let q = Quadrisect.legalize Arch.granular_plb pl in
  Quadrisect.snap q pl;
  (nl, pl, q)

let test_def_and_svg () =
  let nl, pl, q = packed_fixture () in
  let def = Export.def_ ~packing:q pl in
  Alcotest.(check bool) "design header" true
    (contains def (Printf.sprintf "DESIGN %s ;" (Netlist.design_name nl)));
  Alcotest.(check bool) "array line" true (contains def "PLBARRAY");
  Alcotest.(check bool) "placements with tiles" true (contains def "TILE");
  let svg = Export.svg q pl in
  Alcotest.(check bool) "svg root" true (contains svg "<svg");
  Alcotest.(check int) "one rect per tile"
    (q.Quadrisect.cols * q.Quadrisect.rows)
    (count_substring svg "<rect");
  (* round-trip through a file *)
  let path = Filename.temp_file "vpga" ".svg" in
  Export.write_file path svg;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "file written" (String.length svg) len

(* --- Depth-oriented compaction ------------------------------------------- *)

let test_depth_objective () =
  let nl = Vpga_designs.Alu.build ~width:8 () in
  List.iter
    (fun arch ->
      let area_cover = Compact.run ~objective:`Area arch nl in
      let depth_cover = Compact.run ~objective:`Depth arch nl in
      (match Vpga_netlist.Equiv.check ~seed:5 nl depth_cover with
      | Vpga_netlist.Equiv.Equivalent -> ()
      | Vpga_netlist.Equiv.Mismatch _ ->
          Alcotest.fail "depth cover broke the design");
      (* the depth objective minimizes nominal-load estimated arrival (the
         DP's own metric); real STA differs through fanout loading *)
      let estimated_depth cover =
        let topo = Levelize.run cover in
        let at = Array.make (Netlist.size cover) 0.0 in
        Array.iter
          (fun id ->
            let node = Netlist.node cover id in
            match node.Netlist.kind with
            | Kind.Mapped { cell; _ } -> (
                match Vpga_plb.Config.of_cell_name cell with
                | Some cfg ->
                    let d = Vpga_plb.Config.delay cfg ~load:10.0 in
                    at.(id) <-
                      Array.fold_left
                        (fun acc f -> max acc at.(f))
                        0.0 node.Netlist.fanins
                      +. d
                | None -> ())
            | _ ->
                at.(id) <-
                  Array.fold_left (fun acc f -> max acc at.(f)) 0.0
                    node.Netlist.fanins)
          topo.Levelize.order;
        Array.fold_left max 0.0 at
      in
      Alcotest.(check bool)
        (arch.Arch.name ^ ": depth cover has no worse estimated depth")
        true
        (estimated_depth depth_cover <= estimated_depth area_cover +. 1.0);
      (* the area objective minimizes tile share, so compare that metric *)
      let tile_cost cover =
        List.fold_left
          (fun acc (c, n) ->
            acc +. (float_of_int n *. Vpga_plb.Config.tile_cost arch c))
          0.0
          (Compact.config_histogram cover)
      in
      Alcotest.(check bool)
        (arch.Arch.name ^ ": area cover occupies no more tile share")
        true
        (tile_cost area_cover <= tile_cost depth_cover +. 1.0))
    Arch.all

let () =
  Alcotest.run "vpga_output"
    [
      ( "detail",
        [
          Alcotest.test_case "straight run" `Quick test_detail_straight;
          Alcotest.test_case "bend costs a via" `Quick test_detail_bend_costs_via;
          Alcotest.test_case "full design" `Quick test_detail_on_design;
        ] );
      ( "export",
        [
          Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
          Alcotest.test_case "verilog sop" `Quick test_verilog_sop;
          Alcotest.test_case "verilog sequential" `Quick test_verilog_sequential;
          Alcotest.test_case "def and svg" `Quick test_def_and_svg;
        ] );
      ( "objectives",
        [ Alcotest.test_case "depth vs area" `Quick test_depth_objective ] );
    ]
