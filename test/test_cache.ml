(* Tests for the content-addressed stage cache: the canonical encoder's
   fixed byte layout and non-aliasing, structural digest stability and
   sensitivity, memoization identity and statistics, put-time snapshot
   isolation, the on-disk store (roundtrip, corruption fallback, LRU gc,
   clear), the flow-level hit == recompute property over designs x
   architectures x verify levels, a randomized equivalence spot-check of
   a cached front-end artifact, and the stress sweep's compute-each-
   front-end-once invariant. *)

module Enc = Vpga_cache.Enc
module Key = Vpga_cache.Key
module Cache = Vpga_cache.Cache
module Stagekey = Vpga_flow.Stagekey
module Flow = Vpga_flow.Flow
module Minchan = Vpga_flow.Minchan
module Experiments = Vpga_flow.Experiments
module Netlist = Vpga_netlist.Netlist
module Equiv = Vpga_netlist.Equiv
module Techmap = Vpga_mapper.Techmap
module Arch = Vpga_plb.Arch
module Policy = Vpga_resil.Policy
open Vpga_designs

let alu2 = lazy (Alu.build ~width:2 ())
let alu4 = lazy (Alu.build ~width:4 ())

let digest_of feeds =
  let b = Enc.create () in
  List.iter (fun f -> f b) feeds;
  Enc.digest_hex b

(* --- encoder ---------------------------------------------------------- *)

(* The canonical byte layout, pinned: these digests must never change
   without a Key.schema bump (old on-disk entries would otherwise be
   revived against new keys). *)
let test_enc_fixed_vectors () =
  Alcotest.(check string)
    "empty stream is MD5 of the empty string"
    "d41d8cd98f00b204e9800998ecf8427e"
    (digest_of []);
  let pin name expected_bytes feeds =
    Alcotest.(check string)
      name
      (Digest.to_hex (Digest.string expected_bytes))
      (digest_of feeds)
  in
  pin "str" "s2:ab" [ (fun b -> Enc.str b "ab") ];
  pin "int" "i5;" [ (fun b -> Enc.int b 5) ];
  pin "negative int" "i-5;" [ (fun b -> Enc.int b (-5)) ];
  pin "i64" "q1099511627776;" [ (fun b -> Enc.i64 b 1_099_511_627_776L) ];
  pin "bools" "TF" [ (fun b -> Enc.bool b true); (fun b -> Enc.bool b false) ];
  pin "option" "NSi3;"
    [ (fun b -> Enc.opt Enc.int b None); (fun b -> Enc.opt Enc.int b (Some 3)) ];
  pin "list" "L2:i1;i2;" [ (fun b -> Enc.list Enc.int b [ 1; 2 ]) ];
  pin "int array" "A3:7,8,9," [ (fun b -> Enc.int_array b [| 7; 8; 9 |]) ];
  (* floats are raw big-endian IEEE-754 bits after the tag *)
  let bits f =
    let b = Buffer.create 8 in
    Buffer.add_int64_be b (Int64.bits_of_float f);
    Buffer.contents b
  in
  pin "float" ("f" ^ bits 1.5) [ (fun b -> Enc.float b 1.5) ];
  pin "float array"
    ("G2:" ^ bits 0.5 ^ bits (-2.0))
    [ (fun b -> Enc.float_array b [| 0.5; -2.0 |]) ]

let test_enc_no_aliasing () =
  let differs name a b =
    Alcotest.(check bool) name false (digest_of a = digest_of b)
  in
  differs "string split"
    [ (fun b -> Enc.str b "ab"); (fun b -> Enc.str b "c") ]
    [ (fun b -> Enc.str b "a"); (fun b -> Enc.str b "bc") ];
  differs "int split"
    [ (fun b -> Enc.int b 12); (fun b -> Enc.int b 3) ]
    [ (fun b -> Enc.int b 1); (fun b -> Enc.int b 23) ];
  differs "list vs elements"
    [ (fun b -> Enc.list Enc.str b [ "a"; "b" ]) ]
    [ (fun b -> Enc.str b "a"); (fun b -> Enc.str b "b") ];
  differs "array split"
    [ (fun b -> Enc.int_array b [| 1; 2 |]) ]
    [ (fun b -> Enc.int_array b [| 12 |]) ];
  differs "signed zero"
    [ (fun b -> Enc.float b 0.0) ]
    [ (fun b -> Enc.float b (-0.0)) ];
  differs "int vs i64"
    [ (fun b -> Enc.int b 5) ]
    [ (fun b -> Enc.i64 b 5L) ]

(* --- structural digests ----------------------------------------------- *)

let test_key_digests_stable_and_sensitive () =
  let a1 = Key.netlist_hex (Alu.build ~width:4 ()) in
  let a2 = Key.netlist_hex (Alu.build ~width:4 ()) in
  Alcotest.(check string) "same build, same digest" a1 a2;
  Alcotest.(check bool)
    "different width, different digest" false
    (a1 = Key.netlist_hex (Lazy.force alu2));
  Alcotest.(check bool)
    "lut and granular differ" false
    (Key.arch_hex Arch.lut_plb = Key.arch_hex Arch.granular_plb);
  let k1 = Key.make ~stage:"x" (fun b -> Enc.int b 1) in
  let k2 = Key.make ~stage:"x" (fun b -> Enc.int b 1) in
  let k3 = Key.make ~stage:"y" (fun b -> Enc.int b 1) in
  Alcotest.(check string) "key deterministic" (Key.id k1) (Key.id k2);
  Alcotest.(check bool)
    "stage name reaches the digest" false
    (Key.hex k1 = Key.hex k3);
  Alcotest.(check string) "id shape" ("x/" ^ Key.hex k1) (Key.id k1);
  Alcotest.(check int) "hex width" 32 (String.length (Key.hex k1))

(* --- memoization ------------------------------------------------------ *)

let test_memo_hit_and_stats () =
  let c = Cache.create () in
  Alcotest.(check bool) "enabled" true (Cache.enabled c);
  let k = Key.make ~stage:"s" (fun b -> Enc.int b 1) in
  let computes = ref 0 in
  let compute () =
    incr computes;
    [| 1; 2; 3 |]
  in
  let v1 = Cache.memo c k compute in
  let v2 = Cache.memo c k compute in
  Alcotest.(check int) "computed once" 1 !computes;
  Alcotest.(check (array int)) "hit equals computed" v1 v2;
  Alcotest.(check bool) "hit is a fresh copy" true (v1 != v2);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "stores" 1 s.Cache.stores;
  Alcotest.(check int) "mem entries" 1 s.Cache.mem_entries;
  (match s.Cache.stages with
  | [ ("s", (1, 1, 1)) ] -> ()
  | _ -> Alcotest.fail "per-stage stats");
  Cache.clear c;
  ignore (Cache.memo c k compute);
  Alcotest.(check int) "clear drops the entry" 2 !computes

let test_disabled_cache () =
  let k = Key.make ~stage:"s" (fun b -> Enc.int b 1) in
  let computes = ref 0 in
  let compute () = incr computes; !computes in
  Alcotest.(check int) "first" 1 (Cache.memo Cache.none k compute);
  Alcotest.(check int) "second recomputes" 2 (Cache.memo Cache.none k compute);
  Alcotest.(check bool) "disabled" false (Cache.enabled Cache.none);
  let s = Cache.stats Cache.none in
  Alcotest.(check int) "no stats" 0 (s.Cache.hits + s.Cache.misses)

(* The put-time-snapshot invariant: neither the producer mutating its
   result after the store nor a consumer mutating a hit can poison the
   cache. *)
let test_put_snapshot_isolation () =
  let c = Cache.create () in
  let k = Key.make ~stage:"s" (fun b -> Enc.int b 2) in
  let producer = [| 10; 20 |] in
  Cache.put c k producer;
  producer.(0) <- 99;
  (match Cache.find c k with
  | Some a -> Alcotest.(check (array int)) "producer mutation" [| 10; 20 |] a
  | None -> Alcotest.fail "expected a hit");
  (match Cache.find c k with
  | Some a -> (a : int array).(1) <- 99
  | None -> Alcotest.fail "expected a hit");
  match Cache.find c k with
  | Some a -> Alcotest.(check (array int)) "consumer mutation" [| 10; 20 |] a
  | None -> Alcotest.fail "expected a hit"

(* --- the on-disk store ------------------------------------------------ *)

let temp_dir () =
  let f = Filename.temp_file "vpga-cache-test" "" in
  Sys.remove f;
  f

let rec rm_tree d =
  if Sys.file_exists d && Sys.is_directory d then begin
    Array.iter (fun f -> rm_tree (Filename.concat d f)) (Sys.readdir d);
    try Sys.rmdir d with Sys_error _ -> ()
  end
  else if Sys.file_exists d then Sys.remove d

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_tree dir) (fun () -> f dir)

(* All regular files under [dir], depth-first. *)
let rec files_under d =
  if not (Sys.file_exists d) then []
  else if Sys.is_directory d then
    Array.to_list (Sys.readdir d)
    |> List.concat_map (fun f -> files_under (Filename.concat d f))
  else [ d ]

let test_disk_roundtrip () =
  with_dir @@ fun dir ->
  let k = Key.make ~stage:"s" (fun b -> Enc.str b "disk") in
  let c1 = Cache.create ~dir () in
  Cache.put c1 k (42, "payload");
  (* a fresh cache has an empty memory table: the hit must come from disk *)
  let c2 = Cache.create ~dir () in
  (match Cache.find c2 k with
  | Some (n, s) ->
      Alcotest.(check int) "int" 42 n;
      Alcotest.(check string) "string" "payload" s
  | None -> Alcotest.fail "expected a disk hit");
  let s = Cache.stats c2 in
  Alcotest.(check int) "counted as a hit" 1 s.Cache.hits;
  match Cache.disk_stats ~dir with
  | [ d ] ->
      Alcotest.(check string) "stage dir" "s" d.Cache.d_stage;
      Alcotest.(check int) "one entry" 1 d.Cache.d_entries
  | _ -> Alcotest.fail "expected one stage"

let test_disk_corruption_falls_back () =
  let corrupt mangle =
    with_dir @@ fun dir ->
    let k = Key.make ~stage:"s" (fun b -> Enc.str b "corrupt") in
    let c1 = Cache.create ~dir () in
    Cache.put c1 k [| 1.0; 2.0 |];
    let path =
      match files_under dir with [ p ] -> p | _ -> Alcotest.fail "one file"
    in
    mangle path;
    let c2 = Cache.create ~dir () in
    (match Cache.find c2 k with
    | None -> ()
    | Some (_ : float array) -> Alcotest.fail "corrupted entry revived");
    (* the bad entry is gone; a recompute stores cleanly over it *)
    Alcotest.(check (list string)) "bad entry unlinked" [] (files_under dir);
    let v = Cache.memo c2 k (fun () -> [| 3.0 |]) in
    Alcotest.(check (float 0.0)) "recomputed" 3.0 v.(0);
    match Cache.find (Cache.create ~dir ()) k with
    | Some (a : float array) ->
        Alcotest.(check (float 0.0)) "restored" 3.0 a.(0)
    | None -> Alcotest.fail "expected a hit after recompute"
  in
  corrupt (fun path ->
      (* truncate mid-payload *)
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
      output_string oc "VPGACACHE1\n";
      close_out oc);
  corrupt (fun path ->
      (* flip one payload byte, keeping the length intact *)
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      close_in ic;
      let b = Bytes.of_string bytes in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc)

let test_disk_gc_lru () =
  with_dir @@ fun dir ->
  let c = Cache.create ~dir () in
  let key i = Key.make ~stage:"s" (fun b -> Enc.int b i) in
  let payload = String.make 100 'x' in
  List.iter (fun i -> Cache.put c (key i) (i, payload)) [ 1; 2; 3 ];
  let paths = files_under dir in
  Alcotest.(check int) "three entries" 3 (List.length paths);
  let entry_bytes = (Unix.stat (List.hd paths)).Unix.st_size in
  (* pin distinct access times: entry of key 2 is most recent *)
  let set_atime k t =
    let b = Enc.create () in
    Enc.str b Key.schema;
    Enc.str b "s";
    Enc.int b k;
    let hex = Enc.digest_hex b in
    match List.find_opt (fun p -> Filename.basename p = hex) paths with
    | Some p -> Unix.utimes p t t
    | None -> Alcotest.fail "entry path not found"
  in
  set_atime 1 1000.0;
  set_atime 2 3000.0;
  set_atime 3 2000.0;
  let r = Cache.disk_gc ~dir ~max_bytes:(2 * entry_bytes) in
  Alcotest.(check int) "kept" 2 r.Cache.gc_kept;
  Alcotest.(check int) "removed" 1 r.Cache.gc_removed;
  Alcotest.(check int) "kept bytes" (2 * entry_bytes) r.Cache.gc_kept_bytes;
  let c2 = Cache.create ~dir () in
  (match Cache.find c2 (key 1) with
  | Some (_ : int * string) -> Alcotest.fail "LRU entry survived gc"
  | None -> ());
  (match Cache.find c2 (key 2) with
  | Some ((n, _) : int * string) -> Alcotest.(check int) "MRU kept" 2 n
  | None -> Alcotest.fail "MRU entry evicted");
  let n = Cache.disk_clear ~dir in
  Alcotest.(check int) "clear counts survivors" 2 n;
  Alcotest.(check (list string)) "store empty" [] (files_under dir)

(* --- flow integration ------------------------------------------------- *)

(* The tentpole's correctness contract: for any (design, arch, verify)
   combination, a warm run against a shared cache produces a result
   [compare]-identical to both its own cold run and an uncached run. *)
let prop_cache_hit_equals_recompute =
  QCheck.Test.make ~name:"cache hit == recompute (flow pairs)" ~count:6
    QCheck.(triple small_int bool bool)
    (fun (seed, wide, granular) ->
      let nl = Lazy.force (if wide then alu4 else alu2) in
      let arch = if granular then Arch.granular_plb else Arch.lut_plb in
      let verify = if wide then Flow.Fast else Flow.Off in
      let cache = Cache.create () in
      let run c = Flow.run ~seed ~verify ~cache:c arch nl in
      let cold = run cache in
      let warm = run cache in
      let uncached = run Cache.none in
      let s = Cache.stats cache in
      s.Cache.hits > 0
      && compare cold warm = 0
      && compare cold uncached = 0)

(* A cached front-end artifact is a real netlist, not just equal bytes:
   pull the [map] entry a warm flow hit on and drive it against the
   source design with randomized simulation. *)
let test_cached_map_is_equivalent () =
  let nl = Lazy.force alu4 in
  let arch = Arch.granular_plb in
  let cache = Cache.create () in
  ignore (Flow.run ~seed:1 ~cache arch nl);
  let opts =
    {
      Stagekey.seed = 1;
      period = 500.0;
      utilization = 0.7;
      anneal_iterations = None;
      use_criticality = true;
      verify = 1;
      policy = Policy.default;
      defect = None;
    }
  in
  let k =
    Stagekey.map ~nl:(Key.netlist_hex nl) ~arch:(Key.arch_hex arch) opts
  in
  match Cache.find cache k with
  | None -> Alcotest.fail "no cached map artifact"
  | Some ((mapped, _events) : Netlist.t * _) ->
      (match Equiv.check ~seed:7 nl mapped with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ -> Alcotest.fail "cached map artifact not equivalent");
      (* and it matches a recompute structurally *)
      Alcotest.(check string)
        "same structural digest"
        (Key.netlist_hex (Techmap.map arch nl))
        (Key.netlist_hex mapped)

(* The stress sweep's headline invariant: with a shared cache, the
   defect-independent front-end of each (design, arch) is computed
   exactly once across all defect rates and maps.  One design, both
   archs, 4 rates x 1 map = 4 tasks per arch: per front-end stage, 2
   misses (one per arch) and 6 hits. *)
let test_stress_frontend_computed_once () =
  let cache = Cache.create () in
  let report =
    Minchan.stress ~seed:1 ~jobs:1 ~rates:[ 0.0; 0.02; 0.05; 0.1 ]
      ~maps_per_rate:1 ~cache
      ~designs:[ ("alu", Lazy.force alu4) ]
      Experiments.Test
  in
  Alcotest.(check int) "8 tasks" 8 (List.length report.Minchan.r_points);
  let s = Cache.stats cache in
  List.iter
    (fun stage ->
      match List.assoc_opt stage s.Cache.stages with
      | Some (hits, misses, _) ->
          Alcotest.(check (pair int int))
            (stage ^ " computed once per (design, arch)")
            (6, 2) (hits, misses)
      | None -> Alcotest.fail (stage ^ " never keyed"))
    [ "compact"; "buffer"; "place:global" ]

let () =
  Alcotest.run "cache"
    [
      ( "encoder",
        [
          Alcotest.test_case "fixed vectors" `Quick test_enc_fixed_vectors;
          Alcotest.test_case "no aliasing" `Quick test_enc_no_aliasing;
        ] );
      ( "keys",
        [
          Alcotest.test_case "stable and sensitive" `Quick
            test_key_digests_stable_and_sensitive;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit and stats" `Quick test_memo_hit_and_stats;
          Alcotest.test_case "disabled" `Quick test_disabled_cache;
          Alcotest.test_case "put-time snapshot" `Quick
            test_put_snapshot_isolation;
        ] );
      ( "disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "corruption falls back" `Quick
            test_disk_corruption_falls_back;
          Alcotest.test_case "gc is LRU" `Quick test_disk_gc_lru;
        ] );
      ( "flow",
        [
          QCheck_alcotest.to_alcotest prop_cache_hit_equals_recompute;
          Alcotest.test_case "cached map equivalent (CEC spot-check)" `Quick
            test_cached_map_is_equivalent;
          Alcotest.test_case "stress front-end once" `Slow
            test_stress_frontend_computed_once;
        ] );
    ]
