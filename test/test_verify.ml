(* Tests for the verification layer: the CDCL SAT solver, the SAT sweeper,
   formal equivalence checking over the real flow stages, netlist lint, and
   the physical invariant checkers — each checker is also exercised against
   a deliberately seeded violation. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Equiv = Vpga_netlist.Equiv
module Simulate = Vpga_netlist.Simulate
module Aig = Vpga_aig.Aig
module Arch = Vpga_plb.Arch
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Pathfinder = Vpga_route.Pathfinder
module Router = Vpga_route.Router
module Diag = Vpga_verify.Diag
module Lint = Vpga_verify.Lint
module Sat = Vpga_verify.Sat
module Cnf = Vpga_verify.Cnf
module Sweep = Vpga_verify.Sweep
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Flow = Vpga_flow.Flow

(* --- SAT solver --- *)

let lit v ~neg = (2 * v) lor if neg then 1 else 0

let test_sat_trivial () =
  (match Sat.solve ~nvars:1 [ [| lit 0 ~neg:false |] ] with
  | Sat.Sat m -> Alcotest.(check bool) "x true" true m.(0)
  | _ -> Alcotest.fail "expected sat");
  (match
     Sat.solve ~nvars:1 [ [| lit 0 ~neg:false |]; [| lit 0 ~neg:true |] ]
   with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat");
  (* Empty CNF is satisfiable; empty clause is not. *)
  (match Sat.solve ~nvars:0 [] with
  | Sat.Sat _ -> ()
  | _ -> Alcotest.fail "empty cnf should be sat");
  match Sat.solve ~nvars:1 [ [||] ] with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "empty clause should be unsat"

(* Pigeonhole PHP(holes+1, holes): unsatisfiable, and requires real
   conflict-driven search rather than pure propagation. *)
let pigeonhole holes =
  let pigeons = holes + 1 in
  let v p h = (p * holes) + h in
  let at_least_one =
    List.init pigeons (fun p ->
        Array.init holes (fun h -> lit (v p h) ~neg:false))
  in
  let no_sharing =
    List.concat_map
      (fun h ->
        List.concat
          (List.init pigeons (fun p ->
               List.filter_map
                 (fun p' ->
                   if p' > p then
                     Some [| lit (v p h) ~neg:true; lit (v p' h) ~neg:true |]
                   else None)
                 (List.init pigeons Fun.id))))
      (List.init holes Fun.id)
  in
  (pigeons * holes, at_least_one @ no_sharing)

let test_sat_pigeonhole () =
  let nvars, clauses = pigeonhole 3 in
  (match Sat.solve ~nvars clauses with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "PHP(4,3) must be unsat");
  (* With a tiny conflict budget the same instance answers Unknown. *)
  let nvars, clauses = pigeonhole 5 in
  match Sat.solve ~max_conflicts:3 ~nvars clauses with
  | Sat.Unknown -> ()
  | Sat.Unsat -> Alcotest.fail "3 conflicts cannot refute PHP(6,5)"
  | Sat.Sat _ -> Alcotest.fail "PHP(6,5) is unsat"

(* Random 3-CNFs against brute force. *)
let test_sat_random () =
  let rng = Random.State.make [| 42 |] in
  let nvars = 8 in
  for _ = 1 to 50 do
    let n_clauses = 5 + Random.State.int rng 30 in
    let clauses =
      List.init n_clauses (fun _ ->
          Array.init 3 (fun _ ->
              lit (Random.State.int rng nvars)
                ~neg:(Random.State.bool rng)))
    in
    let brute_sat =
      let rec go m =
        if m >= 1 lsl nvars then false
        else
          let asg = Array.init nvars (fun v -> (m lsr v) land 1 = 1) in
          Sat.satisfies asg clauses || go (m + 1)
      in
      go 0
    in
    match Sat.solve ~nvars clauses with
    | Sat.Sat model ->
        Alcotest.(check bool) "brute force agrees sat" true brute_sat;
        Alcotest.(check bool) "model satisfies" true
          (Sat.satisfies model clauses)
    | Sat.Unsat -> Alcotest.(check bool) "brute force agrees unsat" false brute_sat
    | Sat.Unknown -> Alcotest.fail "no budget was given"
  done

(* --- Tseitin encoding --- *)

let test_cnf_cone () =
  let aig = Aig.create () in
  let a = Aig.add_pi aig and b = Aig.add_pi aig in
  let c = Aig.and_ aig a b in
  (* c is satisfiable (a=b=1)... *)
  let cnf = Cnf.of_cone aig c in
  (match Sat.solve ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses with
  | Sat.Sat m ->
      Alcotest.(check bool) "a" true m.(Aig.node_of a);
      Alcotest.(check bool) "b" true m.(Aig.node_of b)
  | _ -> Alcotest.fail "AND cone should be satisfiable");
  (* ...but a AND (not a) is not. *)
  let contradiction = Aig.and_ aig a (Aig.not_ a) in
  Alcotest.(check int) "strash folds to const0" Aig.const0 contradiction;
  (* Inequality of a literal with itself is unsat. *)
  let cnf = Cnf.of_inequiv aig c c in
  match Sat.solve ~nvars:cnf.Cnf.nvars cnf.Cnf.clauses with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "x <> x should be unsat"

(* --- SAT sweeping --- *)

let test_sweep_merges () =
  (* (a AND b) AND c and a AND (b AND c): structurally different nodes,
     same function.  The sweep must map both roots to one literal. *)
  let aig = Aig.create () in
  let a = Aig.add_pi aig and b = Aig.add_pi aig and c = Aig.add_pi aig in
  let left = Aig.and_ aig (Aig.and_ aig a b) c in
  let right = Aig.and_ aig a (Aig.and_ aig b c) in
  Alcotest.(check bool) "strash alone keeps them apart" true (left <> right);
  let _swept, subst = Sweep.reduce aig in
  Alcotest.(check int) "sweep merges them" (subst left) (subst right);
  (* Complement-equivalent roots merge up to negation. *)
  let nleft = Aig.not_ left in
  Alcotest.(check int) "phase handled" (subst nleft) (subst right lxor 1)

let test_sweep_constant () =
  (* xor(a, a) is constant false but not strash-trivial when built from
     distinct structure. *)
  let aig = Aig.create () in
  let a = Aig.add_pi aig and b = Aig.add_pi aig in
  let ab = Aig.and_ aig a b in
  let ba = Aig.and_ aig b a in
  Alcotest.(check int) "commutative strash" ab ba;
  let x = Aig.and_ aig ab (Aig.not_ (Aig.and_ aig a b)) in
  Alcotest.(check int) "strash already folds" Aig.const0 x;
  (* A genuinely structural constant: (a AND b) AND (not a). *)
  let y = Aig.and_ aig ab (Aig.not_ a) in
  Alcotest.(check bool) "not folded by strash" true (y <> Aig.const0);
  let _swept, subst = Sweep.reduce aig in
  Alcotest.(check int) "sweep proves constant" Aig.const0 (subst y)

(* --- combinational equivalence checking --- *)

let mk_gate2 kind =
  let nl = Netlist.create ~name:"g2" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  ignore (Netlist.output nl "y" (Netlist.gate nl kind [| a; b |]));
  nl

let test_cec_refutes_comb () =
  let x = mk_gate2 Kind.And2 and o = mk_gate2 Kind.Or2 in
  match Cec.check x o with
  | Cec.Equivalent -> Alcotest.fail "And2 vs Or2 cannot be equivalent"
  | Cec.Inequivalent { root; root_is_flop; inputs } ->
      Alcotest.(check bool) "combinational root" false root_is_flop;
      Alcotest.(check int) "single output" 0 root;
      (* The counterexample must actually distinguish the designs. *)
      let eval nl =
        (Simulate.eval_comb (Simulate.create nl) inputs).(root)
      in
      Alcotest.(check bool) "inputs distinguish" true (eval x <> eval o)

let counter3 ~bug () =
  let nl = Netlist.create ~name:"cnt3" () in
  let en = Netlist.input nl "en" in
  let q0 = Netlist.dff ~name:"q0" nl in
  let q1 = Netlist.dff ~name:"q1" nl in
  let d0 = Netlist.gate nl Kind.Xor2 [| q0; en |] in
  let c0 = Netlist.gate nl (if bug then Kind.Or2 else Kind.And2) [| q0; en |] in
  let d1 = Netlist.gate nl Kind.Xor2 [| q1; c0 |] in
  Netlist.connect nl ~flop:q0 ~d:d0;
  Netlist.connect nl ~flop:q1 ~d:d1;
  ignore (Netlist.output nl "b0" q0);
  ignore (Netlist.output nl "b1" q1);
  nl

let test_cec_refutes_seq () =
  (* The carry-chain bug only shows in the *next-state* function: the flop
     correspondence reduction must find it on a flop D pin. *)
  (match Cec.check (counter3 ~bug:false ()) (counter3 ~bug:true ()) with
  | Cec.Equivalent -> Alcotest.fail "carry bug not caught"
  | Cec.Inequivalent { root_is_flop; _ } ->
      Alcotest.(check bool) "found on a flop D pin" true root_is_flop);
  (* Sanity: the good counter is equivalent to itself. *)
  match Cec.check (counter3 ~bug:false ()) (counter3 ~bug:false ()) with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "self-equivalence"

let test_cec_interface_mismatch () =
  let two = mk_gate2 Kind.And2 in
  let one =
    let nl = Netlist.create () in
    let a = Netlist.input nl "a" in
    ignore (Netlist.output nl "y" (Netlist.gate nl Kind.Inv [| a |]));
    nl
  in
  match Cec.check two one with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interface mismatch must be rejected"

(* The acceptance criterion: SAT-based CEC proves techmap, compaction and
   buffering sound on every benchmark design, for both architectures. *)
let test_cec_proves_flow_stages () =
  List.iter
    (fun (_, nl) ->
      List.iter
        (fun arch ->
          Cec.prove ~stage:"techmap" nl (Techmap.map arch nl);
          let compacted = Compact.run arch nl in
          Cec.prove ~stage:"compact" nl compacted;
          Cec.prove ~stage:"buffer" nl
            (Buffering.insert ~max_fanout:8 compacted))
        [ Arch.lut_plb; Arch.granular_plb ])
    (Vpga_flow.Experiments.designs Vpga_flow.Experiments.Test)

(* --- exhaustive-equivalence edge cases --- *)

let test_exhaustive_edge_cases () =
  (* Zero-input designs: a single constant output each. *)
  let const_nl b =
    let nl = Netlist.create () in
    ignore (Netlist.output nl "y" (Netlist.gate nl (Kind.Const b) [||]));
    nl
  in
  (match Equiv.check_exhaustive (const_nl true) (const_nl true) with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch _ -> Alcotest.fail "const1 = const1");
  (match Equiv.check_exhaustive (const_nl true) (const_nl false) with
  | Equiv.Mismatch { cycle = 0; output = 0; _ } -> ()
  | _ -> Alcotest.fail "const1 <> const0 must mismatch at output 0");
  (* 17 inputs exceed the exhaustive limit. *)
  let wide =
    let nl = Netlist.create () in
    let pis = List.init 17 (fun i -> Netlist.input nl (Printf.sprintf "i%d" i)) in
    let acc =
      List.fold_left
        (fun acc pi -> Netlist.gate nl Kind.And2 [| acc; pi |])
        (List.hd pis) (List.tl pis)
    in
    ignore (Netlist.output nl "y" acc);
    nl
  in
  (match Equiv.check_exhaustive wide wide with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "17 inputs must be rejected");
  (* Interface mismatch. *)
  match Equiv.check_exhaustive (const_nl true) (mk_gate2 Kind.And2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interface mismatch must be rejected"

(* --- lint, against seeded violations --- *)

let test_lint_clean () =
  List.iter
    (fun (_, nl) ->
      Alcotest.(check bool)
        "benchmarks have no lint errors" false
        (Diag.has_errors (Lint.run nl)))
    (Vpga_flow.Experiments.designs Vpga_flow.Experiments.Test)

let test_lint_comb_loop () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let g1 = Netlist.gate nl Kind.And2 [| a; b |] in
  let g2 = Netlist.gate nl Kind.Or2 [| g1; a |] in
  ignore (Netlist.output nl "y" g2);
  Alcotest.(check bool) "clean before seeding" false
    (Diag.has_errors (Lint.run nl));
  (* Seed the loop: g1's first fanin now reads g2 downstream. *)
  (Netlist.node nl g1).Netlist.fanins.(0) <- g2;
  let ds = Lint.run nl in
  Alcotest.(check bool) "loop found" true (Diag.has_code "comb-loop" ds);
  let loop = List.hd (Diag.by_code "comb-loop" ds) in
  Alcotest.(check (list int))
    "loop provenance" [ g1; g2 ]
    (List.sort compare loop.Diag.nodes);
  (* A flop in the cycle makes it sequential, not combinational. *)
  let seq = counter3 ~bug:false () in
  Alcotest.(check bool) "flop feedback is fine" false
    (Diag.has_code "comb-loop" (Lint.run seq))

let test_lint_undriven_flop () =
  let nl = Netlist.create () in
  let q = Netlist.dff nl in
  ignore (Netlist.output nl "y" q);
  let ds = Lint.run nl in
  Alcotest.(check bool) "undriven pin" true (Diag.has_code "undriven-pin" ds);
  Alcotest.(check bool) "is an error" true (Diag.has_errors ds)

let test_lint_dup_names () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "a" in
  ignore (Netlist.output nl "y" (Netlist.gate nl Kind.And2 [| a; b |]));
  Alcotest.(check bool) "duplicate input name" true
    (Diag.has_code "dup-name" (Lint.run nl))

let test_lint_dead_logic () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let live = Netlist.gate nl Kind.And2 [| a; b |] in
  let dead = Netlist.gate nl Kind.Or2 [| a; b |] in
  ignore (Netlist.output nl "y" live);
  let ds = Lint.run nl in
  Alcotest.(check bool) "dead gate flagged" true (Diag.has_code "dead-logic" ds);
  let d = List.hd (Diag.by_code "dead-logic" ds) in
  Alcotest.(check (list int)) "dead provenance" [ dead ] d.Diag.nodes;
  (* Dead logic is a warning, not an error. *)
  Alcotest.(check bool) "not an error" false (Diag.has_errors ds);
  (* No primary outputs at all is an error. *)
  let empty = Netlist.create () in
  ignore (Netlist.input empty "a");
  Alcotest.(check bool) "no outputs" true
    (Diag.has_code "no-outputs" (Lint.run empty))

(* --- physical checkers, against seeded violations --- *)

(* One packed ALU, shared by the physical tests. *)
let packed =
  lazy
    (let nl = Vpga_designs.Alu.build ~width:4 () in
     let arch = Arch.granular_plb in
     let buffered = Buffering.insert ~max_fanout:8 (Compact.run arch nl) in
     let pl = Placement.create buffered in
     Global.place ~seed:3 pl;
     let q = Quadrisect.legalize arch pl in
     (* Mirror the flow: the packed placement lives on the array die. *)
     let side = sqrt arch.Arch.tile_area in
     let pl =
       {
         pl with
         Placement.die_w = float_of_int q.Quadrisect.cols *. side;
         die_h = float_of_int q.Quadrisect.rows *. side;
       }
     in
     Quadrisect.snap q pl;
     (buffered, pl, q))

let test_phys_placement () =
  let _, pl, _ = Lazy.force packed in
  Alcotest.(check bool) "legal placement" false
    (Diag.has_errors (Phys.check_placement pl));
  let x0 = pl.Placement.x.(0) in
  pl.Placement.x.(0) <- pl.Placement.die_w +. 1000.0;
  let ds = Phys.check_placement pl in
  pl.Placement.x.(0) <- x0;
  Alcotest.(check bool) "outside die caught" true
    (Diag.has_code "outside-die" ds);
  pl.Placement.x.(0) <- Float.nan;
  let ds = Phys.check_placement pl in
  pl.Placement.x.(0) <- x0;
  Alcotest.(check bool) "non-finite caught" true (Diag.has_code "unplaced" ds)

let test_phys_packing () =
  let buffered, _, q = Lazy.force packed in
  Alcotest.(check bool) "legal packing" false
    (Diag.has_errors (Phys.check_packing q buffered));
  (* Seed a coverage hole: un-assign one packed node. *)
  let victim =
    let found = ref (-1) in
    Array.iteri
      (fun id t -> if !found < 0 && t >= 0 then found := id)
      q.Quadrisect.tile_of_node;
    !found
  in
  let saved = q.Quadrisect.tile_of_node.(victim) in
  q.Quadrisect.tile_of_node.(victim) <- -1;
  let ds = Phys.check_packing q buffered in
  Alcotest.(check bool) "uncovered caught" true (Diag.has_code "uncovered" ds);
  (* Seed an overflow: cram every packed node into one tile. *)
  let all = Array.copy q.Quadrisect.tile_of_node in
  Array.iteri
    (fun id t -> if t >= 0 then q.Quadrisect.tile_of_node.(id) <- saved)
    all;
  let ds = Phys.check_packing q buffered in
  Array.blit all 0 q.Quadrisect.tile_of_node 0 (Array.length all);
  q.Quadrisect.tile_of_node.(victim) <- saved;
  Alcotest.(check bool) "tile overflow caught" true
    (Diag.has_code "tile-overflow" ds)

let test_phys_routing () =
  let _, pl, _ = Lazy.force packed in
  let routed = Pathfinder.route_placement pl in
  Alcotest.(check bool) "routes are connected trees" false
    (Diag.has_errors (Phys.check_routing routed pl));
  (* Seed a break: drop one edge from the longest route. *)
  let grid = routed.Pathfinder.grid in
  let longest =
    List.fold_left
      (fun acc r ->
        if List.length r.Router.edges > List.length acc.Router.edges then r
        else acc)
      (List.hd routed.Pathfinder.routes)
      routed.Pathfinder.routes
  in
  Alcotest.(check bool) "has a multi-edge route" true
    (List.length longest.Router.edges >= 2);
  let pins =
    Array.to_list longest.Router.net
    |> List.map (fun id ->
           Vpga_route.Grid.bin_of grid ~x:pl.Placement.x.(id)
             ~y:pl.Placement.y.(id))
    |> List.sort_uniq compare
  in
  let broken = List.tl longest.Router.edges in
  let ds = Phys.check_route grid ~net_index:0 ~pins ~edges:broken in
  Alcotest.(check bool) "broken route caught" true
    (Diag.has_code "route-disconnected" ds || Diag.has_code "route-forest" ds);
  (* And an out-of-range edge id. *)
  let ds =
    Phys.check_route grid ~net_index:0 ~pins
      ~edges:(Vpga_route.Grid.num_edges grid :: longest.Router.edges)
  in
  Alcotest.(check bool) "bad edge caught" true (Diag.has_code "bad-edge" ds)

(* --- the flow under Formal verification --- *)

let test_flow_formal () =
  let nl = Vpga_designs.Alu.build ~width:4 () in
  let pair =
    Flow.run ~seed:5 ~anneal_iterations:2_000 ~verify:Flow.Formal
      Arch.granular_plb nl
  in
  Alcotest.(check bool) "formal flow completes" true (pair.Flow.a.Flow.die_area > 0.0)

let () =
  Alcotest.run "vpga_verify"
    [
      ( "sat",
        [
          Alcotest.test_case "trivial" `Quick test_sat_trivial;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "random vs brute force" `Quick test_sat_random;
          Alcotest.test_case "tseitin cones" `Quick test_cnf_cone;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "merges equivalences" `Quick test_sweep_merges;
          Alcotest.test_case "proves constants" `Quick test_sweep_constant;
        ] );
      ( "cec",
        [
          Alcotest.test_case "refutes comb bug" `Quick test_cec_refutes_comb;
          Alcotest.test_case "refutes seq bug" `Quick test_cec_refutes_seq;
          Alcotest.test_case "interface mismatch" `Quick
            test_cec_interface_mismatch;
          Alcotest.test_case "proves flow stages" `Slow
            test_cec_proves_flow_stages;
          Alcotest.test_case "exhaustive edge cases" `Quick
            test_exhaustive_edge_cases;
        ] );
      ( "lint",
        [
          Alcotest.test_case "benchmarks clean" `Quick test_lint_clean;
          Alcotest.test_case "comb loop" `Quick test_lint_comb_loop;
          Alcotest.test_case "undriven flop" `Quick test_lint_undriven_flop;
          Alcotest.test_case "duplicate names" `Quick test_lint_dup_names;
          Alcotest.test_case "dead logic" `Quick test_lint_dead_logic;
        ] );
      ( "phys",
        [
          Alcotest.test_case "placement" `Quick test_phys_placement;
          Alcotest.test_case "packing" `Quick test_phys_packing;
          Alcotest.test_case "routing" `Quick test_phys_routing;
        ] );
      ( "flow",
        [ Alcotest.test_case "formal level" `Slow test_flow_formal ] );
    ]
