(* Tests for the packing fast path: the incremental tile-occupancy
   structure must agree exactly with the reference [Packer.fits]
   backtracking predicate, and the rewritten quadrisection/refinement
   pipeline must reproduce the pre-rewrite packings bit for bit (the
   golden checksums below were recorded against the list-based
   implementation at the same seeds). *)

module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Occupancy = Vpga_plb.Occupancy
module Compact = Vpga_mapper.Compact
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Refine = Vpga_pack.Refine
module Diag = Vpga_verify.Diag
module Phys = Vpga_verify.Phys

(* --- Occupancy agrees with the reference predicate ----------------------- *)

let item_print (it : Packer.item) =
  Printf.sprintf "{%s pins=%d flop=%b}" (Config.name it.Packer.config)
    it.Packer.pins it.Packer.flop

let items_arb =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 8)
        (map3
           (fun config pins flop -> { Packer.config; pins; flop })
           (oneofl Config.all) (int_bound 4) bool))
  in
  QCheck.make ~print:(fun l -> String.concat "; " (List.map item_print l)) gen

(* Walk a random multiset through query/add, then remove half and re-query:
   at every step [query] and [add]'s verdict must equal [Packer.fits] run
   from scratch on the would-be resident multiset. *)
let occupancy_matches_fits arch items =
  let cache = Occupancy.create_cache arch in
  let t = Occupancy.create cache in
  let shadow = ref [] in
  let step it =
    let want = Packer.fits arch (it :: !shadow) in
    if Occupancy.query t it <> want then
      QCheck.Test.fail_reportf "query disagrees on %s over [%s]"
        (item_print it)
        (String.concat "; " (List.map item_print !shadow));
    let added = Occupancy.add t it in
    if added <> want then
      QCheck.Test.fail_reportf "add disagrees on %s over [%s]"
        (item_print it)
        (String.concat "; " (List.map item_print !shadow));
    if added then shadow := it :: !shadow
  in
  List.iter step items;
  if Occupancy.count t <> List.length !shadow then
    QCheck.Test.fail_reportf "count %d after adds, expected %d"
      (Occupancy.count t) (List.length !shadow);
  (* Remove every other resident (undo path), then the survivors must
     still answer queries exactly like the reference predicate. *)
  let keep, evict =
    List.partition (fun (i, _) -> i mod 2 = 0)
      (List.mapi (fun i it -> (i, it)) !shadow)
  in
  List.iter (fun (_, it) -> Occupancy.remove t it) evict;
  shadow := List.map snd keep;
  if Occupancy.count t <> List.length !shadow then
    QCheck.Test.fail_reportf "count %d after removals, expected %d"
      (Occupancy.count t) (List.length !shadow);
  List.iter
    (fun it ->
      let want = Packer.fits arch (it :: !shadow) in
      if Occupancy.query t it <> want then
        QCheck.Test.fail_reportf "post-remove query disagrees on %s over [%s]"
          (item_print it)
          (String.concat "; " (List.map item_print !shadow)))
    items;
  (* The read-only swap probe must agree with the reference predicate on
     the replaced multiset, and must leave the tile untouched. *)
  let remove_one x l =
    let rec go acc = function
      | [] -> List.rev acc
      | y :: rest when y = x -> List.rev_append acc rest
      | y :: rest -> go (y :: acc) rest
    in
    go [] l
  in
  List.iter
    (fun without ->
      List.iter
        (fun it ->
          let want = Packer.fits arch (it :: remove_one without !shadow) in
          if Occupancy.query_replacing t ~without it <> want then
            QCheck.Test.fail_reportf
              "query_replacing disagrees on %s replacing %s over [%s]"
              (item_print it) (item_print without)
              (String.concat "; " (List.map item_print !shadow));
          if Occupancy.count t <> List.length !shadow then
            QCheck.Test.fail_reportf "query_replacing mutated the tile")
        items)
    !shadow;
  true

let prop_occupancy =
  QCheck.Test.make ~name:"occupancy query/add/remove == Packer.fits"
    ~count:500 items_arb (fun items ->
      List.for_all (fun arch -> occupancy_matches_fits arch items) Arch.all)

(* --- Bit-identical packing across the rewrite ---------------------------- *)

let checksum q =
  Array.fold_left
    (fun h t -> (h * 1000003) + t + 1)
    0 q.Quadrisect.tile_of_node
  land 0x3FFFFFFF

(* Same pipeline and seeds as the flow's packing stages; returns the
   post-quadrisection and post-refinement tile assignment checksums. *)
let pack_pipeline arch nl =
  let nl = Compact.run arch nl in
  let nl = Buffering.insert ~max_fanout:8 nl in
  let pl = Placement.create nl in
  Global.place ~seed:3 pl;
  let q = Quadrisect.legalize arch pl in
  let cq = checksum q in
  let side = sqrt arch.Arch.tile_area in
  let pl_b =
    {
      pl with
      Placement.die_w = float_of_int q.Quadrisect.cols *. side;
      die_h = float_of_int q.Quadrisect.rows *. side;
    }
  in
  Quadrisect.snap q pl_b;
  let (_ : Refine.stats) = Refine.run ~seed:7 q pl_b in
  (cq, checksum q, q, nl)

(* Recorded from the pre-rewrite list-based implementation: (design,
   arch, checksum after quadrisection, checksum after refinement). *)
let golden =
  [
    ("alu", "lut_plb", 385550985, 439551777);
    ("alu", "granular_plb", 729192024, 687928136);
    ("firewire", "lut_plb", 980101115, 649259017);
    ("firewire", "granular_plb", 842440562, 131999017);
    ("fpu", "lut_plb", 98161773, 52802791);
    ("fpu", "granular_plb", 210259331, 359546099);
    ("netswitch", "lut_plb", 999482610, 480209560);
    ("netswitch", "granular_plb", 118428857, 112062853);
  ]

let designs =
  [
    ("alu", fun () -> Vpga_designs.Alu.build ~width:8 ());
    ("firewire", fun () -> Vpga_designs.Firewire.build ~data_bits:16 ());
    ("fpu", fun () -> Vpga_designs.Fpu.build ~exp_bits:5 ~mant_bits:8 ());
    ("netswitch", fun () -> Vpga_designs.Netswitch.build ~ports:4 ~width:8 ());
  ]

let test_golden_checksums () =
  Config.prewarm ();
  List.iter
    (fun (dname, build) ->
      let nl = build () in
      List.iter
        (fun arch ->
          let cq, cr, q, buffered = pack_pipeline arch nl in
          let _, _, want_q, want_r =
            List.find
              (fun (d, a, _, _) -> d = dname && a = arch.Arch.name)
              (List.map (fun (d, a, x, y) -> (d, a, x, y)) golden)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s quadrisect checksum" dname arch.Arch.name)
            want_q cq;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s refine checksum" dname arch.Arch.name)
            want_r cr;
          (* The result must also be physically legal, not merely stable. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s packing invariants" dname arch.Arch.name)
            false
            (Diag.has_errors (Phys.check_packing q buffered)))
        Arch.all)
    designs

(* --- Region-parallel refinement: jobs-independence ----------------------- *)

(* Packing state through snap (the refinement precondition), built once
   per design x arch and refined on private copies, so one fixture serves
   every (jobs, regions, seed) combination. *)
let prepared =
  lazy
    (Config.prewarm ();
     List.concat_map
       (fun (dname, build) ->
         let nl = build () in
         List.map
           (fun arch ->
             let nl = Compact.run arch nl in
             let nl = Buffering.insert ~max_fanout:8 nl in
             let pl = Placement.create nl in
             Global.place ~seed:3 pl;
             let q = Quadrisect.legalize arch pl in
             let side = sqrt arch.Arch.tile_area in
             let pl_b =
               {
                 pl with
                 Placement.die_w = float_of_int q.Quadrisect.cols *. side;
                 die_h = float_of_int q.Quadrisect.rows *. side;
               }
             in
             Quadrisect.snap q pl_b;
             (Printf.sprintf "%s/%s" dname arch.Arch.name, q, pl_b))
           Arch.all)
       designs)

let refine_copy ~jobs ~regions ~seed (q, pl) =
  let q' =
    {
      q with
      Quadrisect.tile_of_node = Array.copy q.Quadrisect.tile_of_node;
    }
  in
  let pl' =
    {
      pl with
      Placement.x = Array.copy pl.Placement.x;
      y = Array.copy pl.Placement.y;
    }
  in
  let st = Refine.run ~iterations:20_000 ~jobs ~regions ~seed q' pl' in
  (q'.Quadrisect.tile_of_node, st)

(* Region-parallel refinement must produce identical results at any
   worker count: region walks read frozen snapshots and own disjoint id
   sets, so scheduling cannot leak into the outcome. *)
let prop_jobs_independent =
  QCheck.Test.make ~name:"refine: jobs=1 == jobs=4 (regions=2)" ~count:3
    QCheck.(int_bound 1000)
    (fun seed ->
      List.for_all
        (fun (name, q, pl) ->
          let t1, s1 = refine_copy ~jobs:1 ~regions:2 ~seed (q, pl) in
          let t4, s4 = refine_copy ~jobs:4 ~regions:2 ~seed (q, pl) in
          if t1 <> t4 then
            QCheck.Test.fail_reportf "%s: tile assignment differs" name;
          if s1.Refine.final_cost <> s4.Refine.final_cost then
            QCheck.Test.fail_reportf "%s: final cost differs (%f vs %f)" name
              s1.Refine.final_cost s4.Refine.final_cost;
          if s1.Refine.region_moves + s1.Refine.boundary_moves
             <> s1.Refine.moves
          then
            QCheck.Test.fail_reportf "%s: move budget leaks (%d + %d <> %d)"
              name s1.Refine.region_moves s1.Refine.boundary_moves
              s1.Refine.moves;
          true)
        (Lazy.force prepared))

let test_same_seed_determinism () =
  Config.prewarm ();
  let nl = Vpga_designs.Alu.build ~width:8 () in
  let arch = Arch.granular_plb in
  let cq1, cr1, _, _ = pack_pipeline arch nl in
  let cq2, cr2, _, _ = pack_pipeline arch nl in
  Alcotest.(check int) "quadrisect deterministic" cq1 cq2;
  Alcotest.(check int) "refine deterministic" cr1 cr2

let () =
  Alcotest.run "pack"
    [
      ( "occupancy",
        [ QCheck_alcotest.to_alcotest prop_occupancy ] );
      ( "bit-identical",
        [
          Alcotest.test_case "golden checksums (all designs, both archs)"
            `Slow test_golden_checksums;
          Alcotest.test_case "same seed twice" `Quick
            test_same_seed_determinism;
        ] );
      ( "region-parallel",
        [ QCheck_alcotest.to_alcotest prop_jobs_independent ] );
    ]
