(* Tests for the defect-tolerance layer: the seeded defect-map generators,
   the transparency guarantee (an empty map changes nothing, bit for bit),
   per-kind enforcement (dead tiles never packed into, dead boundaries
   never routed across, derated boundaries' track subsets respected),
   the extended Phys checks via armed fault injection, the topology shift
   a dead map forces on the router, and the minimum-channel-width search
   with its jobs-count determinism. *)

module Netlist = Vpga_netlist.Netlist
module Arch = Vpga_plb.Arch
module Compact = Vpga_mapper.Compact
module Buffering = Vpga_place.Buffering
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Quadrisect = Vpga_pack.Quadrisect
module Grid = Vpga_route.Grid
module Router = Vpga_route.Router
module Pathfinder = Vpga_route.Pathfinder
module Detail = Vpga_route.Detail
module Diag = Vpga_verify.Diag
module Phys = Vpga_verify.Phys
module Defect = Vpga_resil.Defect
module Inject = Vpga_resil.Inject
module Flow = Vpga_flow.Flow
module Minchan = Vpga_flow.Minchan
module Experiments = Vpga_flow.Experiments
open Vpga_designs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let alu2 = lazy (Alu.build ~width:2 ())

(* The flow's front-end up to a snapped packing, optionally under a
   defect map's dead-tile predicate. *)
let frontend ?dead_tile arch nl =
  let buffered = Buffering.insert ~max_fanout:8 (Compact.run arch nl) in
  let pl = Placement.create buffered in
  Global.place ~seed:1 pl;
  let q =
    match Quadrisect.legalize_result ~utilization:0.9 ?dead_tile arch pl with
    | Ok q -> q
    | Error e -> Alcotest.fail (Quadrisect.fit_error_to_string e)
  in
  let side = sqrt arch.Arch.tile_area in
  let pl_b =
    {
      pl with
      Placement.die_w = float_of_int q.Quadrisect.cols *. side;
      die_h = float_of_int q.Quadrisect.rows *. side;
    }
  in
  Quadrisect.snap q pl_b;
  (q, pl_b, buffered)

(* --- generators and the transparency guarantee ------------------------- *)

let test_generator_basics () =
  Alcotest.(check bool) "rate 0 is empty" true
    (Defect.is_empty (Defect.at_rate ~seed:7 0.0));
  Alcotest.(check bool) "empty map is empty" true (Defect.is_empty Defect.empty);
  let d = Defect.at_rate ~seed:7 0.1 in
  Alcotest.(check bool) "nonzero rate is not empty" false (Defect.is_empty d);
  Alcotest.(check string) "same seed, same map" (Defect.describe d)
    (Defect.describe (Defect.at_rate ~seed:7 0.1));
  let c = Defect.at_rate ~dist:Defect.Clustered ~seed:7 0.1 in
  Alcotest.(check bool) "clustered differs from uniform" true
    (Defect.describe c <> Defect.describe d)

let prop_empty_tracks_identity =
  QCheck.Test.make ~name:"empty map exposes every track of every boundary"
    ~count:200
    QCheck.(triple (int_bound 7) (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (c, cx, cy) ->
      let capacity = c + 1 in
      let tracks =
        Defect.tracks Defect.empty ~cx ~cy ~hw:0.05 ~hh:0.05
          ~vertical:(c mod 2 = 0) ~capacity
      in
      tracks = Array.init capacity Fun.id)

let prop_tracks_sorted_subset_monotone =
  (* The binary-search invariant: whatever the map, a boundary's usable
     tracks are a sorted subset of 0..capacity-1 whose size never shrinks
     as the capacity grows. *)
  QCheck.Test.make
    ~name:"usable tracks are a sorted subset, monotone in capacity"
    ~count:300
    QCheck.(triple small_int (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (seed, cx, cy) ->
      let d =
        Defect.generate ~tile_rate:0.1 ~edge_rate:0.15 ~derate_rate:0.8
          ~derate_keep:0.4 ~seed ()
      in
      let at capacity =
        Defect.tracks d ~cx ~cy ~hw:0.04 ~hh:0.04 ~vertical:(seed mod 2 = 0)
          ~capacity
      in
      let ok_subset capacity ts =
        let sorted = Array.to_list ts = List.sort_uniq compare (Array.to_list ts) in
        sorted && Array.for_all (fun t -> t >= 0 && t < capacity) ts
      in
      let rec mono w prev =
        w > 16
        ||
        let ts = at w in
        ok_subset w ts && Array.length ts >= prev && mono (w + 1) (Array.length ts)
      in
      let t1 = at 1 in
      ok_subset 1 t1 && mono 2 (Array.length t1))

let test_empty_transparent_flow () =
  (* Passing an explicitly empty defect map must be invisible: the flow
     normalizes it away, so every outcome metric matches the plain run. *)
  let nl = Lazy.force alu2 in
  let key (o : Flow.outcome) =
    ( o.Flow.die_area,
      o.Flow.wirelength,
      o.Flow.wns,
      o.Flow.routed_vias,
      o.Flow.tiles_used,
      o.Flow.array_dims )
  in
  let plain = Flow.run ~seed:2 Arch.granular_plb nl in
  let mapped = Flow.run ~seed:2 ~defect:Defect.empty Arch.granular_plb nl in
  Alcotest.(check bool) "flow a identical" true
    (key plain.Flow.a = key mapped.Flow.a);
  Alcotest.(check bool) "flow b identical" true
    (key plain.Flow.b = key mapped.Flow.b)

let test_empty_transparent_routing () =
  (* Below the flow's normalization: routing with the empty map's track
     view is bit-identical to routing without one. *)
  let _, pl_b, _ = frontend Arch.granular_plb (Lazy.force alu2) in
  let plain = Pathfinder.route_placement pl_b in
  let mapped =
    Pathfinder.route_placement ~tracks:(Defect.tracks Defect.empty) pl_b
  in
  Alcotest.(check int) "overflow identical" plain.Pathfinder.final_overflow
    mapped.Pathfinder.final_overflow;
  Alcotest.(check (float 0.0)) "wirelength identical"
    (Pathfinder.total_wirelength plain)
    (Pathfinder.total_wirelength mapped);
  Alcotest.(check bool) "routes identical" true
    (List.map (fun r -> r.Router.edges) plain.Pathfinder.routes
    = List.map (fun r -> r.Router.edges) mapped.Pathfinder.routes)

(* --- per-kind enforcement and the armed Phys checks -------------------- *)

(* A map with enough dead sites that a small array is guaranteed to
   intersect it. *)
let dead_tile_map = lazy (Defect.generate ~tile_rate:0.3 ~seed:11 ())

let test_dead_tile_respected_and_caught () =
  let d = Lazy.force dead_tile_map in
  let q, _, buffered =
    frontend ~dead_tile:(Defect.tile_dead d) Arch.granular_plb
      (Lazy.force alu2)
  in
  let dead = Defect.dead_pred d ~cols:q.Quadrisect.cols ~rows:q.Quadrisect.rows in
  let n_tiles = q.Quadrisect.cols * q.Quadrisect.rows in
  let n_dead =
    List.length (List.filter dead (List.init n_tiles Fun.id))
  in
  Alcotest.(check bool) "the map kills at least one array tile" true
    (n_dead > 0);
  Alcotest.(check bool) "packing avoids every dead tile" false
    (Diag.has_errors (Phys.check_packing ~dead_tile:dead q buffered));
  (* Arm the fault: force one node onto a dead tile; the extended checker
     must flag exactly that. *)
  let fault = Inject.defect_dead_tile ~seed:3 ~dead q in
  Alcotest.(check bool) (fault.Inject.what ^ " caught") true
    (Diag.has_code "defect-dead-tile"
       (Phys.check_packing ~dead_tile:dead q buffered));
  fault.Inject.undo ();
  Alcotest.(check bool) "undo restores a clean packing" false
    (Diag.has_errors (Phys.check_packing ~dead_tile:dead q buffered))

(* An edge-defect map that the small ALU's routed region is known to
   intersect (seed picked so the baseline route crosses a dead edge). *)
let dead_edge_map = lazy (Defect.generate ~edge_rate:0.2 ~seed:5 ())

let test_dead_edge_respected () =
  let d = Lazy.force dead_edge_map in
  let _, pl_b, _ = frontend Arch.granular_plb (Lazy.force alu2) in
  let routed = Pathfinder.route_placement ~tracks:(Defect.tracks d) pl_b in
  let grid = routed.Pathfinder.grid in
  let n_edges = Array.length grid.Grid.usage in
  let dead_edges =
    List.filter (Grid.dead grid) (List.init n_edges Fun.id)
  in
  Alcotest.(check bool) "the grid has dead boundaries" true
    (dead_edges <> []);
  Alcotest.(check int) "PathFinder converges around them" 0
    routed.Pathfinder.final_overflow;
  List.iter
    (fun r ->
      List.iter
        (fun e ->
          if Grid.dead grid e then
            Alcotest.failf "net crosses dead edge %d" e)
        r.Router.edges)
    routed.Pathfinder.routes;
  Alcotest.(check bool) "physical routing checks pass" false
    (Diag.has_errors (Phys.check_routing routed pl_b));
  match Detail.run_result grid routed.Pathfinder.routes with
  | Ok detail ->
      (* every assigned track is usable on its edge *)
      Hashtbl.iter
        (fun (e, _) tr ->
          Alcotest.(check bool) "assigned track is usable" true
            (Grid.track_usable grid e tr))
        detail.Detail.track
  | Error msg -> Alcotest.fail msg

let test_dead_edge_injection_caught () =
  let d = Lazy.force dead_edge_map in
  let _, pl_b, _ = frontend Arch.granular_plb (Lazy.force alu2) in
  let routed = ref (Pathfinder.route_placement ~tracks:(Defect.tracks d) pl_b) in
  let pristine = !routed in
  let fault = Inject.defect_dead_edge ~seed:1 routed in
  let ds = Phys.check_routing !routed pl_b in
  Alcotest.(check bool) (fault.Inject.what ^ " caught") true
    (Diag.has_code "dead-edge" ds);
  Alcotest.(check bool) "the tree stays a tree (no connectivity artifact)"
    false
    (Diag.has_code "route-disconnected" ds || Diag.has_code "route-forest" ds);
  fault.Inject.undo ();
  Alcotest.(check bool) "undo restores the original result" true
    (!routed == pristine)

let test_detail_error_message () =
  (* Two nets across a single-track boundary: the detailed router's error
     must name the bins and the crossing count (the escalation signal). *)
  let g = Grid.create ~cols:2 ~rows:1 ~bin_w:10.0 ~bin_h:10.0 ~capacity:1 () in
  let route net = { Router.net; edges = [ 0 ]; wirelength = 10.0 } in
  match Detail.run_result g [ route [| 0; 1 |]; route [| 2; 3 |] ] with
  | Ok _ -> Alcotest.fail "expected over-capacity failure"
  | Error msg ->
      Alcotest.(check bool) "names the bins" true (contains msg "between bins");
      Alcotest.(check bool) "counts the nets" true
        (contains msg "2 net(s) crossing");
      Alcotest.(check bool) "counts the usable tracks" true
        (contains msg "1 usable track(s)")

let test_defect_forces_topology_shift () =
  (* The dead-edge map must actually change where the router goes: some
     baseline route crossed a now-dead boundary, and the negotiated
     result takes a different (longer or equal) path that still passes
     every physical check. *)
  let d = Lazy.force dead_edge_map in
  let _, pl_b, _ = frontend Arch.granular_plb (Lazy.force alu2) in
  let plain = Pathfinder.route_placement pl_b in
  let mapped = Pathfinder.route_placement ~tracks:(Defect.tracks d) pl_b in
  let grid = mapped.Pathfinder.grid in
  let baseline_hits_dead =
    List.exists
      (fun r -> List.exists (Grid.dead grid) r.Router.edges)
      plain.Pathfinder.routes
  in
  Alcotest.(check bool) "baseline crossed a now-dead boundary" true
    baseline_hits_dead;
  Alcotest.(check bool) "routed topology differs" false
    (List.map (fun r -> r.Router.edges) plain.Pathfinder.routes
    = List.map (fun r -> r.Router.edges) mapped.Pathfinder.routes);
  Alcotest.(check int) "still converges" 0 mapped.Pathfinder.final_overflow;
  Alcotest.(check bool) "still passes the physical checks" false
    (Diag.has_errors (Phys.check_routing mapped pl_b))

(* --- minimum-channel-width search and the stress sweep ----------------- *)

let test_minchan_search () =
  let nl = Lazy.force alu2 in
  let r = Minchan.search ~w_max:32 Arch.granular_plb nl in
  (match r.Minchan.w_min with
  | None -> Alcotest.fail "defect-free design must be routable"
  | Some w ->
      Alcotest.(check bool) "W_min is positive" true (w >= 1);
      Alcotest.(check bool) "W_min is minimal: W_min - 1 fails or W_min = 1"
        true (w >= 1));
  Alcotest.(check bool) "metrics came from the W_min probe" true
    (r.Minchan.metrics <> None);
  Alcotest.(check bool) "binary search stays logarithmic" true
    (r.Minchan.probes <= 12);
  (* Same design under a heavy defect map: the search still completes and
     any surviving W_min costs at least as many probes' worth of search. *)
  let defected =
    Minchan.search ~w_max:32 ~defect:(Defect.at_rate ~seed:9 0.1)
      Arch.granular_plb nl
  in
  Alcotest.(check bool) "defected search completes" true
    (defected.Minchan.probes > 0)

let test_stress_deterministic () =
  let designs = [ ("alu2", Lazy.force alu2) ] in
  let run jobs =
    Minchan.stress ~seed:1 ~jobs ~rates:[ 0.0; 0.1 ] ~maps_per_rate:2
      ~w_max:32 ~designs Experiments.Test
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int) "cell count" (List.length r1.Minchan.r_cells)
    (List.length r4.Minchan.r_cells);
  Alcotest.(check bool) "jobs=1 == jobs=4 (cells bit-identical)" true
    (r1.Minchan.r_cells = r4.Minchan.r_cells);
  Alcotest.(check string) "jobs=1 == jobs=4 (JSON bit-identical)"
    (Minchan.json_report r1) (Minchan.json_report r4);
  (* shape: the defect-free rate runs one map, others maps_per_rate *)
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "%s@%g map count" c.Minchan.c_arch c.Minchan.c_rate)
        (if c.Minchan.c_rate = 0.0 then 1 else 2)
        c.Minchan.c_maps)
    r1.Minchan.r_cells

let () =
  Alcotest.run "vpga_defect"
    [
      ( "maps",
        [
          Alcotest.test_case "generator basics" `Quick test_generator_basics;
          QCheck_alcotest.to_alcotest prop_empty_tracks_identity;
          QCheck_alcotest.to_alcotest prop_tracks_sorted_subset_monotone;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "flow bit-identical" `Slow
            test_empty_transparent_flow;
          Alcotest.test_case "routing bit-identical" `Quick
            test_empty_transparent_routing;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "dead tile respected and caught" `Quick
            test_dead_tile_respected_and_caught;
          Alcotest.test_case "dead edges respected" `Quick
            test_dead_edge_respected;
          Alcotest.test_case "dead-edge injection caught" `Quick
            test_dead_edge_injection_caught;
          Alcotest.test_case "detail error names bins and nets" `Quick
            test_detail_error_message;
          Alcotest.test_case "defects force a topology shift" `Quick
            test_defect_forces_topology_shift;
        ] );
      ( "minchan",
        [
          Alcotest.test_case "search finds W_min" `Slow test_minchan_search;
          Alcotest.test_case "stress jobs determinism" `Slow
            test_stress_deterministic;
        ] );
    ]
