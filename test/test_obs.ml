(* The observability layer (Vpga_obs): span balance and nesting, the
   counter/gauge registry, the ambient-trace mechanism, Chrome trace-event
   export and readback, the per-stage report, and the contracts the flow
   depends on — tracing changes no result, counters are jobs-independent,
   stage spans cover (almost) all of the flow's wall time, and recovery
   events land on the trace timeline. *)

open Vpga_flow
(* after the open: Vpga_flow also has an Export module (artifacts), so
   the observability aliases must shadow it, not the other way round *)
module Clock = Vpga_obs.Clock
module Span = Vpga_obs.Span
module Trace = Vpga_obs.Trace
module Json = Vpga_obs.Json
module Export = Vpga_obs.Export
module Metrics = Vpga_obs.Metrics
module Pool = Vpga_par.Pool
module Log = Vpga_resil.Log
module Arch = Vpga_plb.Arch

let alu4 = lazy (Vpga_designs.Alu.build ~width:4 ())

(* --- Clock ------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  Alcotest.(check (float 1e-9)) "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000L)

(* --- Spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Trace.create ~label:"spans" () in
  let r =
    Trace.with_span t "outer" (fun () ->
        Trace.with_span t "inner1" (fun () -> ());
        Trace.with_span t "inner2" (fun () ->
            Trace.with_span t "leaf" (fun () -> ()));
        42)
  in
  Alcotest.(check int) "result through spans" 42 r;
  Alcotest.(check int) "balanced" 0 (Trace.open_spans t);
  (* A span records when it closes: children precede their parents. *)
  let names =
    List.filter_map
      (function Span.Complete { name; depth; _ } -> Some (name, depth) | _ -> None)
      (Trace.events t)
  in
  Alcotest.(check (list (pair string int)))
    "close order and depth"
    [ ("inner1", 1); ("leaf", 2); ("inner2", 1); ("outer", 0) ]
    names;
  (* Children fit inside their parent's interval. *)
  let find n =
    List.find_map
      (function
        | Span.Complete { name; ts_ns; dur_ns; _ } when name = n ->
            Some (ts_ns, Int64.add ts_ns dur_ns)
        | _ -> None)
      (Trace.events t)
    |> Option.get
  in
  let os, oe = find "outer" and is_, ie = find "inner2" in
  Alcotest.(check bool) "child starts after parent" true (is_ >= os);
  Alcotest.(check bool) "child ends before parent" true (ie <= oe)

let test_span_balance_on_exception () =
  let t = Trace.create () in
  (try
     Trace.with_span t "outer" (fun () ->
         Trace.with_span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "balanced after raise" 0 (Trace.open_spans t);
  Alcotest.(check int) "both spans recorded" 2 (List.length (Trace.events t))

let test_span_manual_and_double_close () =
  let t = Trace.create () in
  let s = Trace.begin_span t "manual" in
  Alcotest.(check int) "open" 1 (Trace.open_spans t);
  Trace.end_span s;
  Trace.end_span s;
  Alcotest.(check int) "closed once" 1 (List.length (Trace.events t));
  Alcotest.(check int) "no longer open" 0 (Trace.open_spans t)

let test_null_trace_no_ops () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.with_span t "s" (fun () -> ());
  Trace.add t "c" 1.0;
  Trace.set t "g" 2.0;
  Trace.instant t "i";
  let c = Trace.Counter.make t "c" in
  Trace.Counter.incr c;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events t));
  Alcotest.(check int) "no counters" 0 (List.length (Trace.counters t))

(* --- Counters / gauges ------------------------------------------------ *)

let test_counter_registry () =
  let t = Trace.create () in
  Trace.add t "b" 1.0;
  Trace.add t "a" 2.0;
  Trace.add t "b" 3.0;
  Trace.set t "g" 7.0;
  Trace.set t "g" 9.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "counters accumulate, name-sorted"
    [ ("a", 2.0); ("b", 4.0) ]
    (Trace.counters t);
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge keeps latest" [ ("g", 9.0) ] (Trace.gauges t);
  let h = Trace.Counter.make t "a" in
  Trace.Counter.incr h;
  Trace.Counter.add h 10.0;
  Alcotest.(check (float 0.0)) "handle shares the slot" 13.0 (Trace.Counter.value h);
  let g = Trace.Gauge.make t "g" in
  Trace.Gauge.set g 1.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge handle" [ ("g", 1.0) ] (Trace.gauges t)

let test_ambient_scoping () =
  let t = Trace.create () in
  Trace.emit "outside" 1.0;
  Trace.with_ambient t (fun () -> Trace.emit "inside" 2.0);
  Trace.emit "outside" 1.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "only in-scope emissions land" [ ("inside", 2.0) ]
    (Trace.counters t);
  (* with_span installs the ambient trace too. *)
  let t2 = Trace.create () in
  Trace.with_span t2 "s" (fun () -> Trace.emit "k" 5.0);
  Alcotest.(check (list (pair string (float 0.0))))
    "with_span installs ambient" [ ("k", 5.0) ]
    (Trace.counters t2)

(* --- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Arr [ Json.Num 1.0; Json.Num 2.5; Json.Null ]);
        ("s", Json.Str "q\"uo\\te\n");
        ("b", Json.Bool true);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')

let test_json_escapes_and_errors () =
  (match Json.parse {|"Aé"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  (match Json.parse "{\"a\": 1} garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array accepted"

(* --- Chrome export ---------------------------------------------------- *)

let traced_flow ?log ?(seed = 11) () =
  let t = Trace.create ~tid:3 ~label:"alu/granular" () in
  let pair =
    Flow.run ~seed ?log ~trace:t Arch.granular_plb (Lazy.force alu4)
  in
  (t, pair)

let test_chrome_export_valid () =
  let t, _ = traced_flow () in
  let doc = Export.chrome ~process_name:"test" [ t ] in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome doc is not valid JSON: %s" e
  | Ok doc' -> (
      match Json.member "traceEvents" doc' with
      | Some (Json.Arr events) ->
          Alcotest.(check bool) "has events" true (List.length events > 10);
          List.iter
            (fun ev ->
              let has k = Json.member k ev <> None in
              Alcotest.(check bool) "event has name" true (has "name");
              Alcotest.(check bool) "event has ph" true (has "ph");
              Alcotest.(check bool) "event has pid" true (has "pid"))
            events;
          (* Every complete event's ts is relative to the earliest one. *)
          let ts_of ev = Option.bind (Json.member "ts" ev) Json.to_float in
          let tss = List.filter_map ts_of events in
          Alcotest.(check bool)
            "timestamps rebased to zero" true
            (List.for_all (fun ts -> ts >= 0.0) tss
            && List.exists (fun ts -> ts = 0.0) tss)
      | _ -> Alcotest.fail "no traceEvents array")

let test_flow_span_coverage () =
  let t, _ = traced_flow () in
  let root_dur = ref 0.0 and stage_dur = ref 0.0 in
  List.iter
    (function
      | Span.Complete { name; dur_ns; depth; _ } ->
          let d = Clock.ns_to_s dur_ns in
          if depth = 0 then begin
            Alcotest.(check string) "single root is the flow span" "flow" name;
            root_dur := !root_dur +. d
          end
          else if depth = 1 then stage_dur := !stage_dur +. d
      | Span.Instant _ -> ())
    (Trace.events t);
  Alcotest.(check bool) "root span present" true (!root_dur > 0.0);
  let coverage = !stage_dur /. !root_dur in
  if coverage < 0.95 then
    Alcotest.failf "stage spans cover %.1f%% of the flow (< 95%%)"
      (100.0 *. coverage);
  (* The taxonomy's tentpole stages all appear. *)
  let names =
    List.filter_map
      (function
        | Span.Complete { name; depth = 1; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " span present") true
        (List.mem stage names))
    [
      "map"; "pack:quadrisect"; "place:anneal"; "route:a"; "route:b";
      "sta:a"; "sta:b"; "verify:packing";
    ]

let test_flow_counters_populated () =
  let t, _ = traced_flow () in
  let c = Trace.counters t in
  let has n = List.mem_assoc n c in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " counted") true (has n))
    [
      "anneal.walks"; "anneal.moves"; "anneal.accepted";
      "route.ripup_iterations"; "route.nets"; "cuts.nodes";
      "cuts.enumerated";
    ];
  Alcotest.(check bool) "moves > 0" true (List.assoc "anneal.moves" c > 0.0)

let test_resil_events_on_timeline () =
  (* Events recorded into the caller's log land on the trace timeline as
     instants, tagged with their stage. *)
  let log = Log.create () in
  Log.record log (Log.Degraded { stage = "verify:cec"; what = "budget" });
  Log.record log
    (Log.Retry { stage = "route"; attempt = 1; reason = "overflow" });
  let t, _ = traced_flow ~log () in
  let instants =
    List.filter_map
      (function Span.Instant { name; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  Alcotest.(check bool) "degrade instant" true
    (List.mem "resil:degrade" instants);
  Alcotest.(check bool) "retry instant" true (List.mem "resil:retry" instants)

let test_trace_off_same_result () =
  let nl = Lazy.force alu4 in
  let run trace = Flow.run ~seed:7 ~trace Arch.granular_plb nl in
  let a = run Trace.null in
  let b = run (Trace.create ()) in
  let check name f = Alcotest.(check (float 0.0)) name (f a) (f b) in
  check "die a" (fun p -> p.Flow.a.Flow.die_area);
  check "die b" (fun p -> p.Flow.b.Flow.die_area);
  check "wire a" (fun p -> p.Flow.a.Flow.wirelength);
  check "wire b" (fun p -> p.Flow.b.Flow.wirelength);
  check "slack b" (fun p -> p.Flow.b.Flow.avg_top10_slack);
  check "power b" (fun p -> p.Flow.b.Flow.power_uw);
  Alcotest.(check int) "vias b" b.Flow.b.Flow.routed_vias
    a.Flow.b.Flow.routed_vias

let test_report_rendering () =
  let t, _ = traced_flow () in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Export.report_traces fmt [ t ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length out && (String.sub out i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("report mentions " ^ s) true (contains s))
    [ "flow"; "place:anneal"; "anneal.moves" ]

let test_stage_totals () =
  let t, _ = traced_flow () in
  let totals = Export.stage_totals [ t; Trace.null ] in
  Alcotest.(check bool) "nonempty" true (totals <> []);
  let names = List.map fst totals in
  Alcotest.(check (list string)) "name-sorted" (List.sort compare names) names;
  Alcotest.(check bool) "no root in stage totals" true
    (not (List.mem "flow" names));
  Alcotest.(check bool) "all positive" true
    (List.for_all (fun (_, s) -> s >= 0.0) totals)

(* --- Sweep integration ------------------------------------------------ *)

let test_sweep_counters_jobs_independent () =
  let designs = [ ("ALU", Lazy.force alu4) ] in
  let sweep jobs =
    Experiments.run_tasks ~seed:1 ~jobs ~traced:true ~designs Experiments.Test
  in
  let c1 = List.map (fun r -> Trace.counters r.Experiments.t_trace) (sweep 1) in
  let c4 = List.map (fun r -> Trace.counters r.Experiments.t_trace) (sweep 4) in
  Alcotest.(check (list (list (pair string (float 0.0)))))
    "counters jobs=1 == jobs=4" c1 c4;
  Alcotest.(check bool) "counters nonempty" true
    (List.for_all (fun c -> c <> []) c1)

let test_pool_run_stats () =
  let tasks = List.init 8 (fun i -> fun () -> Unix.sleepf 0.002; i) in
  let results, st = Pool.run_stats ~jobs:4 tasks in
  Alcotest.(check (list int)) "results" (List.init 8 Fun.id) results;
  Alcotest.(check int) "tasks counted" 8 st.Pool.tasks;
  Alcotest.(check int) "one busy slot per worker" 4
    (Array.length st.Pool.busy_ns);
  let total_busy = Array.fold_left Int64.add 0L st.Pool.busy_ns in
  Alcotest.(check bool) "workers were busy" true (total_busy > 0L);
  Alcotest.(check bool) "queue wait non-negative" true
    (st.Pool.queue_wait_ns >= 0L);
  (* Inline execution: one busy slot, zero queue wait. *)
  let _, st1 = Pool.run_stats ~jobs:1 [ (fun () -> ()); (fun () -> ()) ] in
  Alcotest.(check int) "inline tasks" 2 st1.Pool.tasks;
  Alcotest.(check int) "inline busy slots" 1 (Array.length st1.Pool.busy_ns);
  Alcotest.(check bool) "inline no queue wait" true
    (st1.Pool.queue_wait_ns = 0L)

(* --- Histograms ------------------------------------------------------- *)

let test_histogram_empty_and_single () =
  let h = Metrics.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Metrics.Histogram.count h);
  Alcotest.(check (float 0.0)) "empty p50" 0.0
    (Metrics.Histogram.percentile h 50.0);
  Alcotest.(check bool) "empty bins" true (Metrics.Histogram.bins h = []);
  Metrics.Histogram.add h 42.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single sample p%g" p)
        42.0
        (Metrics.Histogram.percentile h p))
    [ 50.0; 90.0; 99.0 ];
  Alcotest.(check (float 0.0)) "single min" 42.0
    (Metrics.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "single max" 42.0
    (Metrics.Histogram.max_value h)

let test_histogram_rejects_non_finite () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 1.0;
  Metrics.Histogram.add h Float.nan;
  Metrics.Histogram.add h Float.infinity;
  Metrics.Histogram.add h Float.neg_infinity;
  Metrics.Histogram.add h 2.0;
  Alcotest.(check int) "finite samples kept" 2 (Metrics.Histogram.count h);
  Alcotest.(check int) "non-finite rejected" 3 (Metrics.Histogram.rejected h);
  Alcotest.(check (float 0.0)) "mean unpolluted" 1.5 (Metrics.Histogram.mean h)

let test_histogram_percentiles_exact () =
  (* 1..100: nearest-rank pK is exactly K. *)
  let h = Metrics.Histogram.create () in
  for i = 100 downto 1 do
    Metrics.Histogram.add h (float_of_int i)
  done;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0)) (Printf.sprintf "p%g" p) p
        (Metrics.Histogram.percentile h p))
    [ 1.0; 50.0; 90.0; 99.0; 100.0 ]

let test_histogram_bins_monotone () =
  let h = Metrics.Histogram.create () in
  (* Samples across several decades, plus a non-positive one for the
     underflow bin. *)
  List.iter (Metrics.Histogram.add h)
    [ 0.0; 0.003; 0.4; 1.0; 7.0; 7.1; 250.0; 9_000.0; 9_001.0; 1e6 ];
  let bins = Metrics.Histogram.bins h in
  Alcotest.(check bool) "has underflow bin" true
    (match bins with (0.0, 0.0, 1) :: _ -> true | _ -> false);
  let total = List.fold_left (fun a (_, _, n) -> a + n) 0 bins in
  Alcotest.(check int) "bin counts partition the samples"
    (Metrics.Histogram.count h) total;
  let rec monotone = function
    | (lo1, hi1, _) :: ((lo2, hi2, _) :: _ as rest) ->
        lo1 < hi1 && lo1 < lo2 && hi1 <= lo2 && lo2 < hi2 && monotone rest
    | [ (lo, hi, _) ] -> lo < hi || (lo = 0.0 && hi = 0.0)
    | [] -> true
  in
  (* Skip the underflow sentinel when checking edge monotonicity. *)
  let regular = List.filter (fun (_, hi, _) -> hi > 0.0) bins in
  Alcotest.(check bool) "edges strictly increasing" true (monotone regular);
  (* Every positive sample falls inside its bin's [lo, hi). *)
  List.iter
    (fun (lo, hi, _) ->
      Alcotest.(check bool) "bin nonempty by construction" true (lo < hi))
    regular

let test_histogram_merge () =
  let a = Metrics.Histogram.create () and b = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Metrics.Histogram.add b) [ 3.0; Float.nan ];
  Metrics.Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 3 (Metrics.Histogram.count a);
  Alcotest.(check int) "merged rejects" 1 (Metrics.Histogram.rejected a);
  Alcotest.(check (float 0.0)) "merged p99" 3.0
    (Metrics.Histogram.percentile a 99.0)

(* --- Series ----------------------------------------------------------- *)

let test_series_ordering_and_decimation () =
  let t = Trace.create () in
  let n = 10_000 in
  for i = 1 to n do
    Trace.sample t "probe" (float_of_int i)
  done;
  (match Trace.series t with
  | [ ("probe", samples, offered) ] ->
      Alcotest.(check int) "every offer counted" n offered;
      Alcotest.(check bool) "decimated below the cap" true
        (Array.length samples <= 4096);
      Alcotest.(check bool) "kept a substantial fraction" true
        (Array.length samples >= 1024);
      (* Chronological: timestamps and (here) values non-decreasing. *)
      for i = 1 to Array.length samples - 1 do
        let t0, v0 = samples.(i - 1) and t1, v1 = samples.(i) in
        if Int64.compare t0 t1 > 0 then Alcotest.fail "timestamps regressed";
        if v0 >= v1 then Alcotest.fail "sample order lost"
      done;
      (* Decimation keeps whole-run coverage, not just a prefix. *)
      let _, last = samples.(Array.length samples - 1) in
      Alcotest.(check bool) "tail survives decimation" true
        (last >= float_of_int n *. 0.9)
  | other ->
      Alcotest.failf "expected one series, got %d" (List.length other));
  (* Ambient emission lands on the installed trace; no-op outside. *)
  Trace.emit_sample "ambient" 1.0;
  let t2 = Trace.create () in
  Trace.with_ambient t2 (fun () -> Trace.emit_sample "ambient" 2.0);
  match Trace.series t2 with
  | [ ("ambient", samples, 1) ] ->
      Alcotest.(check int) "one ambient sample" 1 (Array.length samples)
  | _ -> Alcotest.fail "ambient sample did not land"

let test_observe_feeds_histograms () =
  let t = Trace.create () in
  Trace.observe t "net_wl" 10.0;
  Trace.observe t "net_wl" 20.0;
  Trace.with_ambient t (fun () -> Trace.emit_observe "net_wl" 30.0);
  match Trace.histograms t with
  | [ ("net_wl", h) ] ->
      Alcotest.(check int) "three observations" 3 (Metrics.Histogram.count h);
      Alcotest.(check (float 0.0)) "p99 is max" 30.0
        (Metrics.Histogram.percentile h 99.0)
  | other -> Alcotest.failf "expected one histogram, got %d" (List.length other)

(* --- GC accounting ---------------------------------------------------- *)

let test_span_gc_deltas_non_negative () =
  let t = Trace.create () in
  let sink = Sys.opaque_identity (ref []) in
  (* quick_stat's minor-word counter only refreshes at collection
     boundaries in native code, so force a minor collection after each
     span's allocation to make the per-span delta observable. *)
  let churn () =
    sink := List.init 10_000 (fun i -> string_of_int i) :: !sink;
    Gc.minor ()
  in
  Trace.with_span t "outer" (fun () ->
      churn ();
      Trace.with_span t "inner" (fun () -> churn ()));
  let checked = ref 0 in
  List.iter
    (function
      | Span.Complete { name; attrs; _ } ->
          let fattr k =
            match List.assoc_opt k attrs with
            | Some (Span.Float f) -> f
            | _ -> Alcotest.failf "%s: missing %s" name k
          in
          let iattr k =
            match List.assoc_opt k attrs with
            | Some (Span.Int i) -> i
            | _ -> Alcotest.failf "%s: missing %s" name k
          in
          incr checked;
          Alcotest.(check bool) (name ^ " minor_words >= 0") true
            (fattr "gc.minor_words" >= 0.0);
          Alcotest.(check bool) (name ^ " major_words >= 0") true
            (fattr "gc.major_words" >= 0.0);
          Alcotest.(check bool) (name ^ " collections >= 0") true
            (iattr "gc.major_collections" >= 0);
          (* Both spans allocated ~10k list cells: the minor delta cannot
             be zero. *)
          Alcotest.(check bool) (name ^ " saw the allocation") true
            (fattr "gc.minor_words" > 0.0)
      | Span.Instant _ -> ())
    (Trace.events t);
  Alcotest.(check int) "both spans carried GC attrs" 2 !checked

(* --- Metrics snapshot and diff ---------------------------------------- *)

let test_snapshot_valid_and_diff_clean () =
  let t, _ = traced_flow () in
  let doc = Export.snapshot ~label:"test" [ t ] in
  (match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "snapshot is not valid JSON: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "schema tagged" true
        (Json.member "schema" doc' = Some (Json.Str "vpga-metrics/1"));
      (match Json.member "counters" doc' with
      | Some (Json.Obj fields) ->
          Alcotest.(check bool) "counters populated" true (fields <> [])
      | _ -> Alcotest.fail "no counters object");
      match Json.member "histograms" doc' with
      | Some (Json.Obj fields) ->
          Alcotest.(check bool) "span histograms present" true
            (List.exists (fun (k, _) -> k = "span:flow") fields)
      | _ -> Alcotest.fail "no histograms object");
  (* A snapshot diffed against itself never regresses. *)
  let deltas = Metrics.diff ~base:doc ~current:doc () in
  Alcotest.(check bool) "self-diff compares something" true (deltas <> []);
  Alcotest.(check int) "self-diff is clean" 0
    (List.length (Metrics.regressions deltas))

let counters_snap kvs =
  Json.Obj
    [
      ("schema", Json.Str "vpga-metrics/1");
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs));
    ]

let test_diff_flags_seeded_regression () =
  let base = counters_snap [ ("route.ripups", 100.0) ] in
  let bad = counters_snap [ ("route.ripups", 1000.0) ] in
  let deltas = Metrics.diff ~tolerance:0.25 ~base ~current:bad () in
  (match Metrics.regressions deltas with
  | [ d ] ->
      Alcotest.(check string) "key" "counter route.ripups" d.Metrics.d_key;
      Alcotest.(check bool) "flagged" true d.Metrics.d_regressed
  | other -> Alcotest.failf "expected 1 regression, got %d" (List.length other));
  (* A generous tolerance absorbs the same change... *)
  Alcotest.(check int) "tolerance respected" 0
    (List.length
       (Metrics.regressions (Metrics.diff ~tolerance:20.0 ~base ~current:bad ())));
  (* ...improvements never flag... *)
  Alcotest.(check int) "improvement is not a regression" 0
    (List.length
       (Metrics.regressions (Metrics.diff ~base:bad ~current:base ())));
  (* ...and a counter appearing from a zero baseline does. *)
  let appeared = counters_snap [ ("route.ripups", 100.0); ("new", 1.0) ] in
  Alcotest.(check int) "new-from-zero flags" 1
    (List.length
       (Metrics.regressions (Metrics.diff ~base ~current:appeared ())))

let test_diff_time_noise_floor () =
  (* Sub-floor timings are measurement noise: a huge relative change on a
     microscopic baseline must not flag; the same ratio above the floor
     must. *)
  let hist_snap p50 =
    Json.Obj
      [
        ("schema", Json.Str "vpga-metrics/1");
        ( "histograms",
          Json.Obj
            [
              ( "span:blink_us",
                Json.Obj [ ("count", Json.Num 1.0); ("p50", Json.Num p50) ] );
            ] );
      ]
  in
  Alcotest.(check int) "sub-floor jitter ignored" 0
    (List.length
       (Metrics.regressions
          (Metrics.diff ~base:(hist_snap 5.0) ~current:(hist_snap 500.0) ())));
  Alcotest.(check int) "sub-floor span duration ignored" 0
    (List.length
       (Metrics.regressions
          (Metrics.diff ~base:(hist_snap 5000.0) ~current:(hist_snap 9000.0) ())));
  Alcotest.(check int) "above the floor it flags" 1
    (List.length
       (Metrics.regressions
          (Metrics.diff ~base:(hist_snap 50_000.0)
             ~current:(hist_snap 500_000.0) ())))

let test_report_json_shape () =
  let t, _ = traced_flow () in
  let rep = Export.report_json (Export.chrome [ t ]) in
  match Json.parse (Json.to_string rep) with
  | Error e -> Alcotest.failf "report JSON invalid: %s" e
  | Ok rep' ->
      Alcotest.(check bool) "schema tagged" true
        (Json.member "schema" rep' = Some (Json.Str "vpga-report/1"));
      (match Json.member "spans" rep' with
      | Some (Json.Arr rows) ->
          Alcotest.(check bool) "span rows" true (List.length rows > 3);
          List.iter
            (fun row ->
              List.iter
                (fun k ->
                  Alcotest.(check bool) ("span row has " ^ k) true
                    (Json.member k row <> None))
                [ "name"; "depth"; "calls"; "total_ms"; "minor_words" ])
            rows
      | _ -> Alcotest.fail "no spans array");
      match Json.member "counters" rep' with
      | Some (Json.Obj fields) ->
          Alcotest.(check bool) "counters present" true (fields <> [])
      | _ -> Alcotest.fail "no counters object"

(* --- Pool wait samples ------------------------------------------------ *)

let test_pool_wait_samples_and_publish () =
  let tasks = List.init 8 (fun i -> fun () -> Unix.sleepf 0.002; i) in
  let _, st = Pool.run_stats ~jobs:2 tasks in
  Alcotest.(check int) "one wait sample per task" 8
    (Array.length st.Pool.wait_samples_ns);
  Array.iter
    (fun w ->
      Alcotest.(check bool) "waits non-negative" true (Int64.compare w 0L >= 0))
    st.Pool.wait_samples_ns;
  let total = Array.fold_left Int64.add 0L st.Pool.wait_samples_ns in
  Alcotest.(check bool) "samples sum to the aggregate" true
    (total = st.Pool.queue_wait_ns);
  let t = Trace.create () in
  Pool.publish_stats st t;
  Alcotest.(check bool) "tasks gauge" true
    (List.assoc_opt "pool.tasks" (Trace.gauges t) = Some 8.0);
  (match List.assoc_opt "pool.queue_wait_us" (Trace.histograms t) with
  | Some h -> Alcotest.(check int) "wait histogram fed" 8
      (Metrics.Histogram.count h)
  | None -> Alcotest.fail "no queue-wait histogram");
  (* Inline execution: defined, all-zero waits. *)
  let _, st1 = Pool.run_stats ~jobs:1 [ (fun () -> ()); (fun () -> ()) ] in
  Alcotest.(check int) "inline wait samples" 2
    (Array.length st1.Pool.wait_samples_ns);
  Array.iter
    (fun w -> Alcotest.(check bool) "inline waits zero" true (w = 0L))
    st1.Pool.wait_samples_ns

(* --- Resil log timestamps --------------------------------------------- *)

let test_log_timestamps () =
  let log = Log.create () in
  Log.record log (Log.Retry { stage = "s"; attempt = 1; reason = "r" });
  Log.record log (Log.Escalation { stage = "s"; what = "w" });
  Log.record log (Log.Degraded { stage = "s"; what = "w" });
  let timed = Log.timed log in
  Alcotest.(check int) "all recorded" 3 (List.length timed);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        Int64.compare a.Log.at_ns b.Log.at_ns <= 0 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (nondecreasing timed);
  (* The string rendering predates the timestamps and must not change:
     failure records and tests key on it. *)
  Alcotest.(check (list string))
    "event_to_string stable"
    [
      "retry s (attempt 1): r"; "escalate s: w"; "degrade s: w";
    ]
    (Log.strings log)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and close order" `Quick test_span_nesting;
          Alcotest.test_case "balance on exception" `Quick
            test_span_balance_on_exception;
          Alcotest.test_case "manual and double close" `Quick
            test_span_manual_and_double_close;
          Alcotest.test_case "null trace no-ops" `Quick test_null_trace_no_ops;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counter_registry;
          Alcotest.test_case "ambient scoping" `Quick test_ambient_scoping;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes and errors" `Quick
            test_json_escapes_and_errors;
        ] );
      ( "flow tracing",
        [
          Alcotest.test_case "chrome export is valid JSON" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "stage spans cover the flow" `Quick
            test_flow_span_coverage;
          Alcotest.test_case "inner-loop counters populated" `Quick
            test_flow_counters_populated;
          Alcotest.test_case "resil events become instants" `Quick
            test_resil_events_on_timeline;
          Alcotest.test_case "tracing changes no result" `Quick
            test_trace_off_same_result;
          Alcotest.test_case "report renders stages" `Quick
            test_report_rendering;
          Alcotest.test_case "stage totals" `Quick test_stage_totals;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "empty and single sample" `Quick
            test_histogram_empty_and_single;
          Alcotest.test_case "non-finite rejection" `Quick
            test_histogram_rejects_non_finite;
          Alcotest.test_case "exact nearest-rank percentiles" `Quick
            test_histogram_percentiles_exact;
          Alcotest.test_case "log bins monotone and complete" `Quick
            test_histogram_bins_monotone;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "series",
        [
          Alcotest.test_case "ordering and decimation" `Quick
            test_series_ordering_and_decimation;
          Alcotest.test_case "observe feeds histograms" `Quick
            test_observe_feeds_histograms;
        ] );
      ( "gc accounting",
        [
          Alcotest.test_case "span deltas non-negative" `Quick
            test_span_gc_deltas_non_negative;
        ] );
      ( "metrics diff",
        [
          Alcotest.test_case "snapshot valid, self-diff clean" `Quick
            test_snapshot_valid_and_diff_clean;
          Alcotest.test_case "seeded regression flags" `Quick
            test_diff_flags_seeded_regression;
          Alcotest.test_case "time noise floor" `Quick
            test_diff_time_noise_floor;
          Alcotest.test_case "report --json shape" `Quick
            test_report_json_shape;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "counters jobs=1 == jobs=4" `Slow
            test_sweep_counters_jobs_independent;
          Alcotest.test_case "pool run_stats" `Quick test_pool_run_stats;
          Alcotest.test_case "pool wait samples + publish" `Quick
            test_pool_wait_samples_and_publish;
        ] );
      ( "resil log",
        [ Alcotest.test_case "timestamps" `Quick test_log_timestamps ] );
    ]
